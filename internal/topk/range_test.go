package topk

import (
	"math/rand"
	"testing"
)

// windowExclude composes a query's exclude set with an item-window
// restriction, so a full-catalog BruteForce can stand in for the
// ground truth of a windowed index.
func windowExclude(lo, hi int, exclude Exclude) Exclude {
	return func(v int) bool {
		if v < lo || v >= hi {
			return true
		}
		return exclude != nil && exclude(v)
	}
}

// splitRanges cuts v items into n contiguous windows, ceil-chunked like
// shard.Partition.
func splitRanges(v, n int) [][2]int {
	if n > v {
		n = v
	}
	chunk := (v + n - 1) / n
	var out [][2]int
	for lo := 0; lo < v; lo += chunk {
		hi := lo + chunk
		if hi > v {
			hi = v
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// TestRangeIndexMatchesBruteForce checks the windowed-index contract:
// for every window, queries return exactly the full-catalog brute-force
// top-k restricted to the window — same items (global indices), same
// scores bit for bit, same order.
func TestRangeIndexMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := randomModel(rng, 6, 37)
	for _, shards := range []int{1, 2, 4} {
		for _, r := range splitRanges(f.NumItems(), shards) {
			ix := BuildIndexRange(f, r[0], r[1])
			if lo, hi := ix.ItemRange(); lo != r[0] || hi != r[1] {
				t.Fatalf("ItemRange() = [%d,%d), want [%d,%d)", lo, hi, r[0], r[1])
			}
			for trial := 0; trial < 40; trial++ {
				q := randomQuery(rng, 6, trial%2 == 0)
				k := 1 + rng.Intn(12)
				var exclude Exclude
				if trial%3 == 0 {
					banned := rng.Intn(f.NumItems())
					exclude = func(v int) bool { return v == banned }
				}
				got, _ := ix.QueryWeights(q, k, exclude)
				want, _ := BruteForce(queryModel{f: f, q: q}, 0, 0, k, windowExclude(r[0], r[1], exclude))
				if len(got) != len(want) {
					t.Fatalf("shards=%d window=[%d,%d): got %d results, want %d",
						shards, r[0], r[1], len(got), len(want))
				}
				for i := range got {
					if got[i].Item != want[i].Item || got[i].Score != want[i].Score {
						t.Fatalf("shards=%d window=[%d,%d) k=%d rank %d: got %+v, want %+v",
							shards, r[0], r[1], k, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestRangeIndexMergeBitIdentical is the coordinator-merge argument at
// the topk level: merging the per-window top-k lists of a disjoint
// partition by (score desc, item asc) reproduces the monolithic index's
// top-k bit for bit, for shard counts 1, 2 and 4.
func TestRangeIndexMergeBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := randomModel(rng, 5, 53)
	mono := BuildIndex(f)
	for _, shards := range []int{1, 2, 4} {
		var windows []*Index
		for _, r := range splitRanges(f.NumItems(), shards) {
			windows = append(windows, BuildIndexRange(f, r[0], r[1]))
		}
		for trial := 0; trial < 60; trial++ {
			q := randomQuery(rng, 5, trial%2 == 1)
			k := 1 + rng.Intn(15)
			want, _ := mono.QueryWeights(q, k, nil)
			var partials [][]Result
			for _, w := range windows {
				res, _ := w.QueryWeights(q, k, nil)
				partials = append(partials, res)
			}
			got := mergeTopK(partials, k)
			if len(got) != len(want) {
				t.Fatalf("shards=%d k=%d: merged %d results, want %d", shards, k, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("shards=%d k=%d rank %d: merged %+v, want %+v", shards, k, i, got[i], want[i])
				}
			}
		}
	}
}

// mergeTopK is the reference merge: concatenate, sort by the serving
// tie-break (score desc, item asc), truncate. The shard coordinator
// implements the same order; this test pins the semantics.
func mergeTopK(partials [][]Result, k int) []Result {
	var all []Result
	for _, p := range partials {
		all = append(all, p...)
	}
	// Insertion sort keeps the comparison explicit (and mirrors the
	// strict-order comparators used on the serving path).
	for i := 1; i < len(all); i++ {
		for j := i; j > 0; j-- {
			a, b := all[j-1], all[j]
			better := b.Score > a.Score || (!(b.Score < a.Score) && b.Item < a.Item)
			if !better {
				break
			}
			all[j-1], all[j] = all[j], all[j-1]
		}
	}
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func TestBuildIndexRangeBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := randomModel(rng, 3, 10)
	for _, bad := range [][2]int{{-1, 5}, {4, 2}, {0, 11}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("BuildIndexRange(%d, %d) did not panic", bad[0], bad[1])
				}
			}()
			BuildIndexRange(f, bad[0], bad[1])
		}()
	}
	// An empty window is legal and answers every query with nothing.
	empty := BuildIndexRange(f, 4, 4)
	if res, _ := empty.QueryWeights([]float64{1, 0, 0}, 5, nil); res != nil {
		t.Errorf("empty window returned %+v", res)
	}
}
