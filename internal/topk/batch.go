package topk

import (
	"context"

	"tcam/internal/faultinject"
	"tcam/internal/model"
)

// BatchQuery is one temporal top-k query of a batch: recommend K items
// for user U at interval T, filtered by the optional Exclude.
type BatchQuery struct {
	U, T    int
	K       int
	Exclude Exclude
}

// BatchResult pairs one batch query's ranked items with its work stats.
// Results is caller-owned. Done reports whether the query actually ran:
// QueryBatchContext leaves entries it abandoned on cancellation with
// Done == false (a zero result is otherwise indistinguishable from a
// legitimate empty ranking, e.g. K == 0).
type BatchResult struct {
	Results []Result
	Stats   Stats
	Done    bool
}

// QueryBatch answers a slice of queries concurrently, fanning contiguous
// chunks across workers (non-positive workers means one per CPU). Each
// worker reuses a single pooled Searcher for its whole chunk, so the
// per-query cost matches the allocation-free fast path plus one result
// copy. Results align with queries by position and are each
// bit-identical to BruteForce; ts must be the scorer the index was
// built from.
func (ix *Index) QueryBatch(ts model.TopicScorer, queries []BatchQuery, workers int) []BatchResult {
	return ix.QueryBatchContext(context.Background(), ts, queries, workers)
}

// QueryBatchContext is QueryBatch with cooperative cancellation: each
// worker checks ctx between queries and stops TA work as soon as the
// context is done, leaving the remaining entries of its chunk with
// Done == false. Completed entries are always fully correct — a query
// is never half-answered. The serving layer uses this to honor request
// deadlines mid-batch and return the completed prefix.
func (ix *Index) QueryBatchContext(ctx context.Context, ts model.TopicScorer, queries []BatchQuery, workers int) []BatchResult {
	out := make([]BatchResult, len(queries))
	model.ParallelRanges(len(queries), model.Workers(workers), func(_, lo, hi int) {
		s := ix.AcquireSearcher()
		defer s.Release()
		for i := lo; i < hi; i++ {
			faultinject.Fire("topk.batch.query")
			if ctx.Err() != nil {
				return
			}
			q := queries[i]
			res, st := s.Query(ts, q.U, q.T, q.K, q.Exclude)
			out[i] = BatchResult{Results: cloneResults(res), Stats: st, Done: true}
		}
	})
	return out
}
