package topk

import "tcam/internal/model"

// BatchQuery is one temporal top-k query of a batch: recommend K items
// for user U at interval T, filtered by the optional Exclude.
type BatchQuery struct {
	U, T    int
	K       int
	Exclude Exclude
}

// BatchResult pairs one batch query's ranked items with its work stats.
// Results is caller-owned.
type BatchResult struct {
	Results []Result
	Stats   Stats
}

// QueryBatch answers a slice of queries concurrently, fanning contiguous
// chunks across workers (non-positive workers means one per CPU). Each
// worker reuses a single pooled Searcher for its whole chunk, so the
// per-query cost matches the allocation-free fast path plus one result
// copy. Results align with queries by position and are each
// bit-identical to BruteForce; ts must be the scorer the index was
// built from.
func (ix *Index) QueryBatch(ts model.TopicScorer, queries []BatchQuery, workers int) []BatchResult {
	out := make([]BatchResult, len(queries))
	model.ParallelRanges(len(queries), model.Workers(workers), func(_, lo, hi int) {
		s := ix.AcquireSearcher()
		defer s.Release()
		for i := lo; i < hi; i++ {
			q := queries[i]
			res, st := s.Query(ts, q.U, q.T, q.K, q.Exclude)
			out[i] = BatchResult{Results: cloneResults(res), Stats: st}
		}
	})
	return out
}
