package topk

// Serving benchmarks (ISSUE 1): the TA fast path must show 0 allocs/op
// at steady state, BuildIndex must scale with cores, and the batch path
// amortizes fan-out. scripts/bench_query.sh snapshots these (plus the
// httptest server benches) into BENCH_query.json.

import (
	"math/rand"
	"testing"
)

// skewedModel builds a topic model whose item weights decay like
// 1/rank (a fresh random ranking per topic) — the Zipf-like regime
// trained topic models live in and the one TA's early termination
// exploits. Uniform weights would degenerate TA into a full scan and
// benchmark the wrong thing.
func skewedModel(rng *rand.Rand, k, v int) *fakeTopicModel {
	f := &fakeTopicModel{queries: map[[2]int][]float64{}}
	harmonic := 0.0
	for r := 1; r <= v; r++ {
		harmonic += 1 / float64(r)
	}
	for z := 0; z < k; z++ {
		row := make([]float64, v)
		for r, item := range rng.Perm(v) {
			row[item] = 1 / (float64(r+1) * harmonic)
		}
		f.topics = append(f.topics, row)
	}
	return f
}

// benchSetup builds a mid-sized skewed topic model, its index, and one
// pre-materialized query-weight vector (so the benchmark isolates the
// TA core from model-side ϑq materialization).
func benchSetup(b *testing.B, topics, items int) (*fakeTopicModel, *Index, []float64) {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	f := skewedModel(rng, topics, items)
	q := randomQuery(rng, topics, false)
	f.queries[[2]int{0, 0}] = q
	return f, BuildIndex(f), q
}

func BenchmarkTAQuery(b *testing.B) {
	_, ix, q := benchSetup(b, 32, 8192)
	s := ix.AcquireSearcher()
	defer s.Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.QueryWeights(q, 10, nil)
	}
}

// BenchmarkTAQueryApprox measures the eps-budgeted early stop at a gap
// budget of 1% of the typical top score — the SLO-serving configuration
// DESIGN.md §12 describes. Must also stay allocation-free.
func BenchmarkTAQueryApprox(b *testing.B) {
	_, ix, q := benchSetup(b, 32, 8192)
	s := ix.AcquireSearcher()
	defer s.Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.QueryWeightsApprox(q, 10, 1e-5, nil)
	}
}

func BenchmarkTAQueryParallel(b *testing.B) {
	_, ix, q := benchSetup(b, 32, 8192)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		s := ix.AcquireSearcher()
		defer s.Release()
		for pb.Next() {
			s.QueryWeights(q, 10, nil)
		}
	})
}

func BenchmarkBuildIndex(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	f := randomModel(rng, 64, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildIndex(f)
	}
}

func BenchmarkQueryBatch(b *testing.B) {
	f, ix, _ := benchSetup(b, 32, 8192)
	qs := make([]BatchQuery, 64)
	for i := range qs {
		qs[i] = BatchQuery{U: 0, T: 0, K: 10}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.QueryBatch(f, qs, 0)
	}
}
