package topk

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tcam/internal/model"
)

// fakeTopicModel is a hand-built TopicScorer for exercising TA without
// training anything.
type fakeTopicModel struct {
	topics  [][]float64 // K×V item weights
	queries map[[2]int][]float64
}

func (f *fakeTopicModel) Name() string   { return "fake" }
func (f *fakeTopicModel) NumItems() int  { return len(f.topics[0]) }
func (f *fakeTopicModel) NumTopics() int { return len(f.topics) }
func (f *fakeTopicModel) TopicItems(z int) []float64 {
	return f.topics[z]
}
func (f *fakeTopicModel) QueryWeights(u, t int) []float64 {
	if q, ok := f.queries[[2]int{u, t}]; ok {
		return q
	}
	q := make([]float64, len(f.topics))
	for i := range q {
		q[i] = 1 / float64(len(q))
	}
	return q
}
func (f *fakeTopicModel) Score(u, t, v int) float64 {
	q := f.QueryWeights(u, t)
	var s float64
	for z, w := range q {
		s += w * f.topics[z][v]
	}
	return s
}

var _ model.TopicScorer = (*fakeTopicModel)(nil)

func randomModel(rng *rand.Rand, k, v int) *fakeTopicModel {
	f := &fakeTopicModel{queries: map[[2]int][]float64{}}
	for z := 0; z < k; z++ {
		row := make([]float64, v)
		var sum float64
		for i := range row {
			row[i] = rng.Float64()
			sum += row[i]
		}
		for i := range row {
			row[i] /= sum
		}
		f.topics = append(f.topics, row)
	}
	return f
}

func randomQuery(rng *rand.Rand, k int, zeros bool) []float64 {
	q := make([]float64, k)
	var sum float64
	for i := range q {
		if zeros && rng.Float64() < 0.4 {
			continue
		}
		q[i] = rng.Float64()
		sum += q[i]
	}
	if sum == 0 {
		// All-zero queries are a documented degenerate case (TA returns
		// nil; see TestTAAllZeroQuery) — keep random queries proper.
		q[0] = 1
		sum = 1
	}
	for i := range q {
		q[i] /= sum
	}
	return q
}

func TestBruteForceOrdering(t *testing.T) {
	f := &fakeTopicModel{topics: [][]float64{{0.1, 0.5, 0.2, 0.2}}, queries: map[[2]int][]float64{}}
	res, st := BruteForce(f, 0, 0, 2, nil)
	if len(res) != 2 || res[0].Item != 1 || res[1].Item != 2 {
		t.Fatalf("BruteForce = %+v, want items [1 2]", res)
	}
	if st.ItemsExamined != 4 {
		t.Errorf("ItemsExamined = %d, want 4", st.ItemsExamined)
	}
}

func TestBruteForceTieBreaksByItem(t *testing.T) {
	f := &fakeTopicModel{topics: [][]float64{{0.25, 0.25, 0.25, 0.25}}, queries: map[[2]int][]float64{}}
	res, _ := BruteForce(f, 0, 0, 3, nil)
	if res[0].Item != 0 || res[1].Item != 1 || res[2].Item != 2 {
		t.Fatalf("tie-break order = %+v, want [0 1 2]", res)
	}
}

func TestBruteForceExclude(t *testing.T) {
	f := &fakeTopicModel{topics: [][]float64{{0.1, 0.5, 0.2, 0.2}}, queries: map[[2]int][]float64{}}
	res, _ := BruteForce(f, 0, 0, 2, func(v int) bool { return v == 1 })
	for _, r := range res {
		if r.Item == 1 {
			t.Fatal("excluded item recommended")
		}
	}
}

func TestBruteForceZeroK(t *testing.T) {
	f := &fakeTopicModel{topics: [][]float64{{1}}, queries: map[[2]int][]float64{}}
	if res, _ := BruteForce(f, 0, 0, 0, nil); res != nil {
		t.Error("k=0 should return nil")
	}
}

func TestTAMatchesBruteForceSimple(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := randomModel(rng, 5, 50)
	ix := BuildIndex(f)
	for k := 1; k <= 12; k++ {
		ta, _ := ix.Query(f, 0, 0, k, nil)
		bf, _ := BruteForce(f, 0, 0, k, nil)
		assertSameResults(t, ta, bf)
	}
}

func assertSameResults(t *testing.T, ta, bf []Result) {
	t.Helper()
	if len(ta) != len(bf) {
		t.Fatalf("length mismatch: TA %d vs BF %d", len(ta), len(bf))
	}
	for i := range ta {
		if ta[i].Item != bf[i].Item {
			t.Fatalf("rank %d: TA item %d vs BF item %d (TA=%v BF=%v)", i, ta[i].Item, bf[i].Item, ta, bf)
		}
		if diff := ta[i].Score - bf[i].Score; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("rank %d: score mismatch %v vs %v", i, ta[i].Score, bf[i].Score)
		}
	}
}

func TestTAExaminesFewerItems(t *testing.T) {
	// Skewed topics: a few heavy items per topic → TA should stop early.
	f := &fakeTopicModel{queries: map[[2]int][]float64{}}
	const k, v = 8, 2000
	for z := 0; z < k; z++ {
		row := make([]float64, v)
		row[z*10] = 0.5
		row[z*10+1] = 0.3
		rest := 0.2 / float64(v-2)
		for i := range row {
			if row[i] == 0 {
				row[i] = rest
			}
		}
		f.topics = append(f.topics, row)
	}
	ix := BuildIndex(f)
	res, st := ix.Query(f, 0, 0, 10, nil)
	if len(res) != 10 {
		t.Fatalf("got %d results", len(res))
	}
	if st.ItemsExamined >= v/2 {
		t.Errorf("TA examined %d of %d items; expected early termination", st.ItemsExamined, v)
	}
	bf, _ := BruteForce(f, 0, 0, 10, nil)
	assertSameResults(t, res, bf)
}

func TestTAWithZeroWeightTopics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := randomModel(rng, 6, 40)
	f.queries[[2]int{1, 1}] = []float64{0.5, 0, 0.5, 0, 0, 0}
	ix := BuildIndex(f)
	ta, _ := ix.Query(f, 1, 1, 5, nil)
	bf, _ := BruteForce(f, 1, 1, 5, nil)
	assertSameResults(t, ta, bf)
}

func TestTAAllZeroQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := randomModel(rng, 3, 10)
	f.queries[[2]int{2, 2}] = []float64{0, 0, 0}
	ix := BuildIndex(f)
	if res, _ := ix.Query(f, 2, 2, 5, nil); res != nil {
		t.Errorf("all-zero query returned %v", res)
	}
}

func TestTAExclude(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := randomModel(rng, 4, 30)
	ix := BuildIndex(f)
	excluded := map[int]bool{3: true, 7: true, 11: true}
	ex := func(v int) bool { return excluded[v] }
	ta, _ := ix.Query(f, 0, 0, 6, ex)
	bf, _ := BruteForce(f, 0, 0, 6, ex)
	assertSameResults(t, ta, bf)
	for _, r := range ta {
		if excluded[r.Item] {
			t.Fatalf("excluded item %d recommended", r.Item)
		}
	}
}

func TestTAKLargerThanCatalog(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := randomModel(rng, 3, 8)
	ix := BuildIndex(f)
	ta, _ := ix.Query(f, 0, 0, 20, nil)
	bf, _ := BruteForce(f, 0, 0, 20, nil)
	if len(ta) != 8 {
		t.Fatalf("got %d results for k > V, want 8", len(ta))
	}
	assertSameResults(t, ta, bf)
}

func TestQueryPanicsOnMismatchedIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := randomModel(rng, 3, 8)
	ix := BuildIndex(f)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched query length")
		}
	}()
	ix.QueryWeights([]float64{1, 0}, 3, nil)
}

// Property: for random models, random (possibly sparse) queries, random
// k and random exclusions, TA returns exactly the brute-force top-k.
func TestTAEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		kTopics := rng.Intn(8) + 1
		v := rng.Intn(120) + 5
		fm := randomModel(rng, kTopics, v)
		fm.queries[[2]int{0, 0}] = randomQuery(rng, kTopics, true)
		ix := BuildIndex(fm)
		k := rng.Intn(v+3) + 1
		var ex Exclude
		if rng.Float64() < 0.5 {
			banned := map[int]bool{}
			for i := 0; i < rng.Intn(5); i++ {
				banned[rng.Intn(v)] = true
			}
			ex = func(item int) bool { return banned[item] }
		}
		ta, _ := ix.Query(fm, 0, 0, k, ex)
		bf, _ := BruteForce(fm, 0, 0, k, ex)
		if len(ta) != len(bf) {
			return false
		}
		for i := range ta {
			if ta[i].Item != bf[i].Item {
				return false
			}
			if d := ta[i].Score - bf[i].Score; d > 1e-10 || d < -1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: quantized weights force heavy ties; TA must still match
// brute force exactly.
func TestTAEquivalenceWithTiesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		kTopics := rng.Intn(4) + 1
		v := rng.Intn(60) + 5
		fm := &fakeTopicModel{queries: map[[2]int][]float64{}}
		for z := 0; z < kTopics; z++ {
			row := make([]float64, v)
			var sum float64
			for i := range row {
				row[i] = float64(rng.Intn(4)) // 0..3 quantized → many ties
				sum += row[i]
			}
			if sum == 0 {
				row[0] = 1
				sum = 1
			}
			for i := range row {
				row[i] /= sum
			}
			fm.topics = append(fm.topics, row)
		}
		fm.queries[[2]int{0, 0}] = randomQuery(rng, kTopics, false)
		ix := BuildIndex(fm)
		k := rng.Intn(v) + 1
		ta, _ := ix.Query(fm, 0, 0, k, nil)
		bf, _ := BruteForce(fm, 0, 0, k, nil)
		if len(ta) != len(bf) {
			return false
		}
		for i := range ta {
			if ta[i].Item != bf[i].Item {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
