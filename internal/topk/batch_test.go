package topk

import (
	"context"
	"math/rand"
	"testing"

	"tcam/internal/faultinject"
)

// QueryBatch must mark every entry Done; Done is what distinguishes an
// abandoned query from a legitimately empty ranking.
func TestQueryBatchMarksDone(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	fm := randomModel(rng, 5, 40)
	ix := BuildIndex(fm)
	queries := []BatchQuery{{U: 0, T: 0, K: 3}, {U: 1, T: 0, K: 0}, {U: 2, T: 1, K: 5}}
	for i, br := range ix.QueryBatch(fm, queries, 2) {
		if !br.Done {
			t.Errorf("query %d not marked Done", i)
		}
	}
}

func TestQueryBatchContextPreCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	fm := randomModel(rng, 5, 40)
	ix := BuildIndex(fm)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	queries := make([]BatchQuery, 8)
	for i := range queries {
		queries[i] = BatchQuery{U: 0, T: 0, K: 3}
	}
	for i, br := range ix.QueryBatchContext(ctx, fm, queries, 1) {
		if br.Done || br.Results != nil {
			t.Errorf("query %d ran under a cancelled context: %+v", i, br)
		}
	}
}

// Cancelling mid-batch (deterministically, via the faultinject site
// fired before each query) must stop TA work at that point: with one
// worker the completed entries form exactly the prefix before the
// cancellation, and each completed entry is fully correct.
func TestQueryBatchContextCancelMidBatch(t *testing.T) {
	defer faultinject.Reset()
	rng := rand.New(rand.NewSource(23))
	fm := randomModel(rng, 5, 60)
	ix := BuildIndex(fm)
	queries := make([]BatchQuery, 10)
	for i := range queries {
		queries[i] = BatchQuery{U: i % 3, T: 0, K: 4}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// The 4th firing cancels: queries 0..2 complete, 3..9 are abandoned.
	faultinject.Set("topk.batch.query", faultinject.CancelsAfter(4, cancel))
	out := ix.QueryBatchContext(ctx, fm, queries, 1)
	for i, br := range out {
		if want := i < 3; br.Done != want {
			t.Errorf("query %d: Done = %v, want %v", i, br.Done, want)
		}
		if br.Done {
			wantRes, wantSt := ix.Query(fm, queries[i].U, queries[i].T, queries[i].K, nil)
			assertSameResults(t, br.Results, wantRes)
			if br.Stats != wantSt {
				t.Errorf("query %d: stats %+v, want %+v", i, br.Stats, wantSt)
			}
		}
	}
}
