// Package topk implements the paper's Section 4 query processing for
// temporal top-k recommendation: a brute-force ranker that scores every
// item, and the extended Threshold Algorithm (Algorithm 1, after Fagin
// et al.) that answers queries from K pre-sorted per-topic item lists,
// terminating as soon as the k-th best score provably beats every
// unseen item.
//
// TA applies to any model exposing the monotone decomposition of
// Equation (22) — S(u,t,v) = Σ_z̃ ϑ_qz̃·ϕ_z̃v with non-negative weights —
// which the model.TopicScorer interface captures. BPTF's trilinear form
// has signed factors and therefore no such decomposition, which is why
// the paper (and this package) can only rank it brute-force.
package topk

import (
	"container/heap"
	"fmt"
	"sort"

	"tcam/internal/model"
)

// Result is one recommended item with its ranking score.
type Result struct {
	Item  int
	Score float64
}

// Stats reports how much work a query did — the quantity Figure 8 and
// the TA ablation measure.
type Stats struct {
	// ItemsExamined counts distinct items whose full score was computed.
	ItemsExamined int
	// ListPops counts entries consumed from the sorted lists (TA only).
	ListPops int
}

// Exclude filters candidate items; a nil Exclude admits everything. The
// evaluation protocol uses it to keep a user's training items out of
// their recommendations.
type Exclude func(item int) bool

// BruteForce ranks every item with the model and returns the top k by
// score (ties broken by ascending item index). It uses the model's bulk
// scorer when available.
func BruteForce(r model.Recommender, u, t, k int, exclude Exclude) ([]Result, Stats) {
	st := Stats{}
	if k <= 0 {
		return nil, st
	}
	n := r.NumItems()
	scores := make([]float64, n)
	if bulk, ok := r.(model.BulkScorer); ok {
		bulk.ScoreAll(u, t, scores)
	} else {
		for v := 0; v < n; v++ {
			scores[v] = r.Score(u, t, v)
		}
	}
	st.ItemsExamined = n
	h := newResultHeap(k)
	for v := 0; v < n; v++ {
		if exclude != nil && exclude(v) {
			continue
		}
		h.offer(Result{Item: v, Score: scores[v]})
	}
	return h.sorted(), st
}

// Index holds the K sorted per-topic item lists of Section 4.2 plus a
// transposed ϕ table for O(K) full-score evaluation. Building is
// O(K·V·logV); queries are read-only and safe for concurrent use.
type Index struct {
	numTopics int
	numItems  int
	lists     [][]entry
	byItem    []float64 // V×K transposed topic weights: ϕ_zv at [v*K+z]
}

type entry struct {
	item   int32
	weight float64
}

// BuildIndex precomputes the sorted lists (and the transposed weight
// table) for every topic of ts. Zero-weight entries are kept: the lists
// must cover the catalog for the threshold bound to hold as k grows.
func BuildIndex(ts model.TopicScorer) *Index {
	k, v := ts.NumTopics(), ts.NumItems()
	ix := &Index{
		numTopics: k,
		numItems:  v,
		lists:     make([][]entry, k),
		byItem:    make([]float64, v*k),
	}
	for z := 0; z < k; z++ {
		weights := ts.TopicItems(z)
		list := make([]entry, v)
		for item := 0; item < v; item++ {
			list[item] = entry{item: int32(item), weight: weights[item]}
			ix.byItem[item*k+z] = weights[item]
		}
		sort.Slice(list, func(a, b int) bool {
			if list[a].weight != list[b].weight {
				return list[a].weight > list[b].weight
			}
			return list[a].item < list[b].item
		})
		ix.lists[z] = list
	}
	return ix
}

// NumTopics returns K, the number of sorted lists.
func (ix *Index) NumTopics() int { return ix.numTopics }

// NumItems returns the catalog size the index was built over.
func (ix *Index) NumItems() int { return ix.numItems }

// Score computes S(u,t,v) = Σ_z ϑ_z·ϕ_zv for a query-weight vector, in
// O(K) via the transposed table.
func (ix *Index) Score(query []float64, item int) float64 {
	row := ix.byItem[item*ix.numTopics : (item+1)*ix.numTopics]
	var s float64
	for z, w := range query {
		if w != 0 {
			s += w * row[z]
		}
	}
	return s
}

// Query answers the temporal top-k query (u, t) with the extended
// Threshold Algorithm. ts must be the scorer the index was built from
// (only QueryWeights is consulted). The result set and scores match
// BruteForce exactly (ties broken by ascending item index), but the
// algorithm stops after examining only as many items as the threshold
// bound requires.
func (ix *Index) Query(ts model.TopicScorer, u, t, k int, exclude Exclude) ([]Result, Stats) {
	return ix.QueryWeights(ts.QueryWeights(u, t), k, exclude)
}

// QueryWeights is Query for callers that already hold the ϑq vector
// (e.g. a server that caches per-user query vectors).
func (ix *Index) QueryWeights(query []float64, k int, exclude Exclude) ([]Result, Stats) {
	st := Stats{}
	if k <= 0 {
		return nil, st
	}
	if len(query) != ix.numTopics {
		panic(fmt.Sprintf("topk: query weights length %d, index has %d topics", len(query), ix.numTopics))
	}

	// Cursor position per topic; exhausted or zero-weight lists excluded
	// from the priority queue and the threshold.
	pos := make([]int, ix.numTopics)
	pq := &listHeap{}
	for z, w := range query {
		if w > 0 && len(ix.lists[z]) > 0 {
			heap.Push(pq, listRef{topic: z, priority: ix.Score(query, int(ix.lists[z][0].item))})
		} else {
			pos[z] = len(ix.lists[z])
		}
	}
	if pq.Len() == 0 {
		return nil, st
	}

	seen := make([]bool, ix.numItems)
	results := newResultHeap(k)
	threshold := ix.threshold(query, pos)

	for pq.Len() > 0 {
		// Early termination (Lines 18–21 of Algorithm 1): the k-th
		// result beats every unseen item's best possible score. Strict
		// inequality keeps ties exact: an unseen item could equal the
		// threshold, and the deterministic tie-break might prefer it.
		if results.Len() == k && results.min().Score > threshold {
			break
		}
		ref := heap.Pop(pq).(listRef)
		z := ref.topic
		list := ix.lists[z]
		item := int(list[pos[z]].item)
		st.ListPops++
		if !seen[item] {
			seen[item] = true
			if exclude == nil || !exclude(item) {
				st.ItemsExamined++
				results.offer(Result{Item: item, Score: ix.Score(query, item)})
			}
		}
		// Advance this list's cursor and re-queue it (Lines 28–33).
		pos[z]++
		if pos[z] < len(list) {
			ref.priority = ix.Score(query, int(list[pos[z]].item))
			heap.Push(pq, ref)
		}
		threshold = ix.threshold(query, pos)
	}
	return results.sorted(), st
}

// threshold computes S_TA (Equation 23): the maximum possible score of
// any unexamined item, aggregating each active list's current head
// weight.
func (ix *Index) threshold(query []float64, pos []int) float64 {
	var s float64
	for z, w := range query {
		if w <= 0 || pos[z] >= len(ix.lists[z]) {
			continue
		}
		s += w * ix.lists[z][pos[z]].weight
	}
	return s
}

// listRef is one sorted list in the priority queue, keyed by the full
// ranking score of its head item.
type listRef struct {
	topic    int
	priority float64
}

// listHeap is a max-heap of listRefs (ties broken by topic index for
// determinism).
type listHeap []listRef

func (h listHeap) Len() int { return len(h) }
func (h listHeap) Less(a, b int) bool {
	if h[a].priority != h[b].priority {
		return h[a].priority > h[b].priority
	}
	return h[a].topic < h[b].topic
}
func (h listHeap) Swap(a, b int)       { h[a], h[b] = h[b], h[a] }
func (h *listHeap) Push(x interface{}) { *h = append(*h, x.(listRef)) }
func (h *listHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// resultHeap keeps the best k results as a min-heap on (score, -item):
// the root is the current k-th best, evicted when something better
// arrives. Ties prefer smaller item indices, matching BruteForce.
type resultHeap struct {
	k     int
	items []Result
}

func newResultHeap(k int) *resultHeap { return &resultHeap{k: k} }

func (h *resultHeap) Len() int { return len(h.items) }
func (h *resultHeap) Less(a, b int) bool {
	if h.items[a].Score != h.items[b].Score {
		return h.items[a].Score < h.items[b].Score
	}
	return h.items[a].Item > h.items[b].Item
}
func (h *resultHeap) Swap(a, b int)      { h.items[a], h.items[b] = h.items[b], h.items[a] }
func (h *resultHeap) Push(x interface{}) { h.items = append(h.items, x.(Result)) }
func (h *resultHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	x := old[n-1]
	h.items = old[:n-1]
	return x
}

// min returns the current k-th best result. Only valid when Len() > 0.
func (h *resultHeap) min() Result { return h.items[0] }

// offer inserts r, evicting the worst element when the heap is full and
// r beats it.
func (h *resultHeap) offer(r Result) {
	if len(h.items) < h.k {
		heap.Push(h, r)
		return
	}
	worst := h.items[0]
	if r.Score > worst.Score || (r.Score == worst.Score && r.Item < worst.Item) {
		h.items[0] = r
		heap.Fix(h, 0)
	}
}

// sorted drains the heap into descending-score (then ascending-item)
// order.
func (h *resultHeap) sorted() []Result {
	out := make([]Result, len(h.items))
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(Result)
	}
	return out
}
