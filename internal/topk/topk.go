// Package topk implements the paper's Section 4 query processing for
// temporal top-k recommendation: a brute-force ranker that scores every
// item, and the extended Threshold Algorithm (Algorithm 1, after Fagin
// et al.) that answers queries from K pre-sorted per-topic item lists,
// terminating as soon as the k-th best score provably beats every
// unseen item.
//
// TA applies to any model exposing the monotone decomposition of
// Equation (22) — S(u,t,v) = Σ_z̃ ϑ_qz̃·ϕ_z̃v with non-negative weights —
// which the model.TopicScorer interface captures. BPTF's trilinear form
// has signed factors and therefore no such decomposition, which is why
// the paper (and this package) can only rank it brute-force.
//
// The serving fast path keeps steady-state queries allocation-free: a
// Searcher holds all per-query scratch (cursors, an epoch-stamped seen
// table, both heaps) and is recycled through a per-index sync.Pool, and
// QueryBatch fans query slices across workers with one pooled Searcher
// each. All paths return results bit-identical to BruteForce.
package topk

import (
	"slices"
	"sync"

	"tcam/internal/model"
)

// Result is one recommended item with its ranking score.
type Result struct {
	Item  int
	Score float64
}

// Stats reports how much work a query did — the quantity Figure 8 and
// the TA ablation measure.
type Stats struct {
	// ItemsExamined counts distinct items whose full score was computed.
	ItemsExamined int
	// ListPops counts entries consumed from the sorted lists (TA only).
	ListPops int
	// ScreenedOut counts candidates the float32 screening scan rejected
	// without an exact float64 confirm (TA only). Screened candidates
	// are provably below the k-th best at rejection time, so they never
	// affect results.
	ScreenedOut int
	// Bound is only set by the approximate query path: the maximum
	// amount by which any unreturned item's true score can exceed the
	// k-th returned score. Exact queries always report 0; an ε-budgeted
	// QueryApprox reports a value < ε.
	Bound float64
}

// Exclude filters candidate items; a nil Exclude admits everything. The
// evaluation protocol uses it to keep a user's training items out of
// their recommendations.
type Exclude func(item int) bool

// BruteForce ranks every item with the model and returns the top k by
// score (ties broken by ascending item index). It uses the model's bulk
// scorer when available.
func BruteForce(r model.Recommender, u, t, k int, exclude Exclude) ([]Result, Stats) {
	st := Stats{}
	if k <= 0 {
		return nil, st
	}
	n := r.NumItems()
	scores := make([]float64, n)
	if bulk, ok := r.(model.BulkScorer); ok {
		bulk.ScoreAll(u, t, scores)
	} else {
		for v := 0; v < n; v++ {
			scores[v] = r.Score(u, t, v)
		}
	}
	st.ItemsExamined = n
	h := resultHeap{k: k}
	for v := 0; v < n; v++ {
		if exclude != nil && exclude(v) {
			continue
		}
		h.offer(Result{Item: v, Score: scores[v]})
	}
	return h.appendSorted(make([]Result, 0, h.Len())), st
}

// Index holds the K sorted per-topic item lists of Section 4.2 plus a
// transposed ϕ table for O(K) full-score evaluation. The table is dual:
// an exact float64 copy (byItem) answers the confirm step and the
// threshold bound, and a quantized float32 copy (byItem32) feeds the
// screening scan that filters candidates at half the memory traffic.
// Building is O(K·V·logV), parallelized across topics; queries are
// read-only and safe for concurrent use.
type Index struct {
	numTopics int
	numItems  int // window size: number of items this index covers
	itemLo    int // global index of the window's first item (0 for a full index)
	lists     [][]entry
	byItem    []float64 // V×K transposed topic weights: ϕ_zv at [v*K+z]
	byItem32  []float32 // float32 quantization of byItem, same layout
	searchers sync.Pool // *Searcher scratch, recycled across queries

	// screenScale and screenEps over-approximate the worst-case error of
	// the float32 screening dot product: for any item,
	// trueScore <= float64(score32)·screenScale + screenEps. A candidate
	// is sent to the exact float64 confirm whenever its screened score
	// could still reach the current k-th best under this bound, so the
	// screen can cause extra confirms but never a missed result. See
	// DESIGN.md §12 for the derivation.
	screenScale float64
	screenEps   float64
}

type entry struct {
	item   int32
	weight float64
}

// BuildIndex precomputes the sorted lists (and the transposed weight
// table) for every topic of ts. Zero-weight entries are kept: the lists
// must cover the catalog for the threshold bound to hold as k grows.
//
// Work parallelizes in two passes: list sorting fans out one topic per
// task, and the ϕ transpose fans out over item ranges so each worker
// writes a contiguous region of byItem (a topic-major split would
// interleave writes every K entries and thrash cache lines between
// workers).
func BuildIndex(ts model.TopicScorer) *Index {
	return BuildIndexRange(ts, 0, ts.NumItems())
}

// BuildIndexRange builds an index covering only the items in [lo, hi) —
// the per-shard item window of the scatter-gather serving tier. The
// windowed index answers the same queries as a full one restricted to
// its window: results carry global item indices, Exclude callbacks
// receive global item indices, and scores are the exact full-model
// scores, so merging disjoint windows' top-k lists by (score desc, item
// asc) reproduces the monolithic top-k bit for bit (the global top-k is
// a subset of the union of per-window top-k's). Memory scales with the
// window, not the catalog: lists and both transposed tables hold hi−lo
// entries per topic.
func BuildIndexRange(ts model.TopicScorer, lo, hi int) *Index {
	if lo < 0 || hi < lo || hi > ts.NumItems() {
		panic("topk: item window out of bounds")
	}
	k, v := ts.NumTopics(), hi-lo
	ix := &Index{
		numTopics: k,
		numItems:  v,
		itemLo:    lo,
		lists:     make([][]entry, k),
		byItem:    make([]float64, v*k),
		byItem32:  make([]float32, v*k),
		// 16× the analytic bound on the f32 screening error — relative
		// term (K+8)·2⁻²⁰ vs the true ≤(K+8)·2⁻²⁴, absolute slack far
		// above any subnormal underflow — so the screen is sound with
		// wide margin and the slack costs only the occasional extra
		// exact confirm.
		screenScale: 1 + float64(k+8)*0x1p-20,
		screenEps:   1e-35,
	}
	topics := make([][]float64, k)
	for z := 0; z < k; z++ {
		topics[z] = ts.TopicItems(z)
	}
	// Entries and table rows are indexed by the local item offset within
	// the window; ascending local order is ascending global order, so
	// every tie-break below matches the full index.
	workers := model.Workers(0)
	model.ParallelRanges(k, workers, func(_, zlo, zhi int) {
		for z := zlo; z < zhi; z++ {
			weights := topics[z]
			list := make([]entry, v)
			for item := 0; item < v; item++ {
				list[item] = entry{item: int32(item), weight: weights[lo+item]}
			}
			slices.SortFunc(list, func(a, b entry) int {
				if a.weight > b.weight {
					return -1
				}
				if a.weight < b.weight {
					return 1
				}
				return int(a.item) - int(b.item)
			})
			ix.lists[z] = list
		}
	})
	model.ParallelRanges(v, workers, func(_, vlo, vhi int) {
		for item := vlo; item < vhi; item++ {
			row := ix.byItem[item*k : (item+1)*k]
			row32 := ix.byItem32[item*k : (item+1)*k]
			for z, weights := range topics {
				row[z] = weights[lo+item]
				row32[z] = float32(weights[lo+item])
			}
		}
	})
	return ix
}

// NumTopics returns K, the number of sorted lists.
func (ix *Index) NumTopics() int { return ix.numTopics }

// NumItems returns the number of items the index covers: the catalog
// size for a full index, the window size for a BuildIndexRange index.
func (ix *Index) NumItems() int { return ix.numItems }

// ItemRange returns the global [lo, hi) item window the index covers.
// A BuildIndex index reports the whole catalog.
func (ix *Index) ItemRange() (lo, hi int) { return ix.itemLo, ix.itemLo + ix.numItems }

// Score computes S(u,t,v) = Σ_z ϑ_z·ϕ_zv for a query-weight vector, in
// O(K) via the transposed table. item is a global catalog index and
// must lie inside the index's window (always true for a full index).
// The sum runs over every topic in ascending order through the unrolled
// dotOrdered kernel; weights and topic masses are non-negative (the
// Eq. 22 monotone decomposition), so including zero-weight terms adds
// exact +0s and the value is bit-identical to the historical skip-zeros
// loop.
//
//tcam:hotpath
func (ix *Index) Score(query []float64, item int) float64 {
	k := ix.numTopics
	local := item - ix.itemLo
	return dotOrdered(query, ix.byItem[local*k:(local+1)*k])
}

// score32 is the float32 screening scorer: the same dot product as
// Score, read from the quantized table with reassociated float32
// accumulation. Its value is only valid as a screen under the index's
// screenScale/screenEps error bound, never as a returned score.
//
//tcam:hotpath
func (ix *Index) score32(query []float32, item int) float32 {
	k := ix.numTopics
	return dot32(query, ix.byItem32[item*k:(item+1)*k])
}

// Query answers the temporal top-k query (u, t) with the extended
// Threshold Algorithm. ts must be the scorer the index was built from
// (only QueryWeights is consulted). The result set and scores match
// BruteForce exactly (ties broken by ascending item index), but the
// algorithm stops after examining only as many items as the threshold
// bound requires. Scratch comes from the index's Searcher pool; the
// returned slice is freshly allocated and owned by the caller.
func (ix *Index) Query(ts model.TopicScorer, u, t, k int, exclude Exclude) ([]Result, Stats) {
	s := ix.AcquireSearcher()
	res, st := s.Query(ts, u, t, k, exclude)
	out := cloneResults(res)
	s.Release()
	return out, st
}

// QueryWeights is Query for callers that already hold the ϑq vector
// (e.g. a server that caches per-user query vectors).
func (ix *Index) QueryWeights(query []float64, k int, exclude Exclude) ([]Result, Stats) {
	s := ix.AcquireSearcher()
	res, st := s.QueryWeights(query, k, exclude)
	out := cloneResults(res)
	s.Release()
	return out, st
}

// QueryApprox is Query with a latency budget expressed as a score gap:
// the TA loop stops as soon as no unseen item can beat the current k-th
// best by eps or more, and Stats.Bound reports the actual residual gap
// (always < eps). eps == 0 degenerates to the exact algorithm — results
// and stats are bit-identical to Query. Returned scores are always
// exact float64 scores; only the guarantee of having found the true
// top-k is relaxed. Opt-in: nothing on the exact serving path calls it.
func (ix *Index) QueryApprox(ts model.TopicScorer, u, t, k int, eps float64, exclude Exclude) ([]Result, Stats) {
	s := ix.AcquireSearcher()
	res, st := s.QueryApprox(ts, u, t, k, eps, exclude)
	out := cloneResults(res)
	s.Release()
	return out, st
}

// cloneResults copies a searcher-owned result slice into caller-owned
// memory (nil for an empty result, matching historical behavior).
func cloneResults(res []Result) []Result {
	if len(res) == 0 {
		return nil
	}
	out := make([]Result, len(res))
	copy(out, res)
	return out
}

// threshold computes S_TA (Equation 23) from scratch: the maximum
// possible score of any unexamined item, aggregating each active list's
// current head weight. The hot path maintains this value incrementally
// and only calls the exact recompute to confirm termination.
//
//tcam:hotpath
func (ix *Index) threshold(query []float64, pos []int) float64 {
	var s float64
	for z, w := range query {
		if w <= 0 || pos[z] >= len(ix.lists[z]) {
			continue
		}
		s += w * ix.lists[z][pos[z]].weight
	}
	return s
}

// listRef is one sorted list in the priority queue, keyed by the full
// ranking score of its head item.
type listRef struct {
	topic    int
	priority float64
}

// listHeap is a max-heap of listRefs (ties broken by topic index for
// determinism). Heap operations are hand-rolled on the concrete element
// type: container/heap would box every listRef into an interface and
// allocate on each push.
type listHeap []listRef

//tcam:hotpath
func (h listHeap) less(a, b int) bool {
	if h[a].priority > h[b].priority {
		return true
	}
	if h[a].priority < h[b].priority {
		return false
	}
	return h[a].topic < h[b].topic
}

//tcam:hotpath
func (h *listHeap) push(x listRef) {
	*h = append(*h, x)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

//tcam:hotpath
func (h *listHeap) pop() listRef {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		best := l
		if r := l + 1; r < n && s.less(r, l) {
			best = r
		}
		if !s.less(best, i) {
			break
		}
		s[i], s[best] = s[best], s[i]
		i = best
	}
	return top
}

// resultHeap keeps the best k results as a min-heap on (score, -item):
// the root is the current k-th best, evicted when something better
// arrives. Ties prefer smaller item indices, matching BruteForce. Like
// listHeap, operations are hand-rolled to stay allocation-free.
type resultHeap struct {
	k     int
	items []Result
}

// reset prepares the heap for a fresh query of size k, keeping the
// backing array.
//
//tcam:hotpath
func (h *resultHeap) reset(k int) {
	h.k = k
	h.items = h.items[:0]
}

func (h *resultHeap) Len() int { return len(h.items) }

//tcam:hotpath
func (h *resultHeap) less(a, b int) bool {
	if h.items[a].Score < h.items[b].Score {
		return true
	}
	if h.items[a].Score > h.items[b].Score {
		return false
	}
	return h.items[a].Item > h.items[b].Item
}

//tcam:hotpath
func (h *resultHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

//tcam:hotpath
func (h *resultHeap) down(i int) {
	n := len(h.items)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		best := l
		if r := l + 1; r < n && h.less(r, l) {
			best = r
		}
		if !h.less(best, i) {
			break
		}
		h.items[i], h.items[best] = h.items[best], h.items[i]
		i = best
	}
}

// min returns the current k-th best result. Only valid when Len() > 0.
//
//tcam:hotpath
func (h *resultHeap) min() Result { return h.items[0] }

// offer inserts r, evicting the worst element when the heap is full and
// r beats it.
//
//tcam:hotpath
func (h *resultHeap) offer(r Result) {
	if len(h.items) < h.k {
		h.items = append(h.items, r)
		h.up(len(h.items) - 1)
		return
	}
	worst := h.items[0]
	if r.Score > worst.Score || (r.Score >= worst.Score && r.Item < worst.Item) {
		h.items[0] = r
		h.down(0)
	}
}

// appendSorted drains the heap onto dst in descending-score (then
// ascending-item) order and returns the extended slice.
//
//tcam:hotpath
func (h *resultHeap) appendSorted(dst []Result) []Result {
	n := len(h.items)
	base := len(dst)
	dst = append(dst, h.items...) // reserve space; overwritten below
	for i := base + n - 1; i >= base; i-- {
		dst[i] = h.popMin()
	}
	return dst
}

// popMin removes and returns the worst retained result.
//
//tcam:hotpath
func (h *resultHeap) popMin() Result {
	x := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	if last > 0 {
		h.down(0)
	}
	return x
}
