package topk

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// queryModel scores items with an explicit ϑq over a fake topic model,
// so BruteForce can mirror Searcher.QueryWeights exactly.
type queryModel struct {
	f *fakeTopicModel
	q []float64
}

func (m queryModel) Name() string  { return "query" }
func (m queryModel) NumItems() int { return m.f.NumItems() }
func (m queryModel) Score(_, _, v int) float64 {
	var s float64
	for z, w := range m.q {
		s += w * m.f.topics[z][v]
	}
	return s
}

// Property (ISSUE 1 satellite): one pooled Searcher reused across many
// random queries — random topic scorers, random sparse weights, random
// excludes — must equal BruteForce exactly (items, scores, order) every
// time. Guards the epoch-stamped seen table, heap reuse, and the
// incremental-threshold confirm logic.
func TestSearcherReuseEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		kTopics := rng.Intn(8) + 1
		v := rng.Intn(120) + 5
		fm := randomModel(rng, kTopics, v)
		ix := BuildIndex(fm)
		s := ix.AcquireSearcher()
		defer s.Release()
		for round := 0; round < 12; round++ {
			q := randomQuery(rng, kTopics, true)
			k := rng.Intn(v+3) + 1
			var ex Exclude
			if rng.Float64() < 0.5 {
				banned := map[int]bool{}
				for i := 0; i < rng.Intn(6); i++ {
					banned[rng.Intn(v)] = true
				}
				ex = func(item int) bool { return banned[item] }
			}
			ta, _ := s.QueryWeights(q, k, ex)
			bf, _ := BruteForce(queryModel{fm, q}, 0, 0, k, ex)
			if len(ta) != len(bf) {
				return false
			}
			for i := range ta {
				if ta[i].Item != bf[i].Item {
					return false
				}
				if d := ta[i].Score - bf[i].Score; d > 1e-10 || d < -1e-10 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// The epoch stamp must survive wrapping around uint32: the seen table
// is cleared exactly once and queries stay correct on both sides.
func TestSearcherEpochWraparound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	fm := randomModel(rng, 4, 60)
	ix := BuildIndex(fm)
	s := ix.NewSearcher()
	s.epoch = ^uint32(0) - 2
	q := fm.QueryWeights(0, 0)
	want, _ := BruteForce(fm, 0, 0, 7, nil)
	for round := 0; round < 6; round++ {
		got, _ := s.QueryWeights(q, 7, nil)
		assertSameResults(t, got, want)
	}
	if s.epoch == 0 || s.epoch > 4 {
		t.Errorf("epoch after wraparound = %d, want small positive", s.epoch)
	}
}

// Searcher.Query must use the model.QueryWeighter fast path and still
// match the allocating Query path (itcam/ttcam both implement it; the
// fake model here does not, covering the fallback too).
func TestSearcherQueryFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	fm := randomModel(rng, 5, 40)
	ix := BuildIndex(fm)
	s := ix.AcquireSearcher()
	defer s.Release()
	got, _ := s.Query(fm, 0, 0, 6, nil)
	want, _ := BruteForce(fm, 0, 0, 6, nil)
	assertSameResults(t, got, want)
}

// QueryBatch must agree with per-query TA (and hence BruteForce) and
// align results by position.
func TestQueryBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	fm := randomModel(rng, 6, 80)
	for u := 0; u < 5; u++ {
		for tt := 0; tt < 3; tt++ {
			fm.queries[[2]int{u, tt}] = randomQuery(rng, 6, true)
		}
	}
	ix := BuildIndex(fm)
	var queries []BatchQuery
	for u := 0; u < 5; u++ {
		for tt := 0; tt < 3; tt++ {
			var ex Exclude
			if (u+tt)%2 == 0 {
				banned := u
				ex = func(item int) bool { return item == banned }
			}
			queries = append(queries, BatchQuery{U: u, T: tt, K: 1 + (u+tt)%7, Exclude: ex})
		}
	}
	batch := ix.QueryBatch(fm, queries, 3)
	if len(batch) != len(queries) {
		t.Fatalf("got %d results for %d queries", len(batch), len(queries))
	}
	for i, q := range queries {
		want, wantSt := ix.Query(fm, q.U, q.T, q.K, q.Exclude)
		assertSameResults(t, batch[i].Results, want)
		if batch[i].Stats != wantSt {
			t.Errorf("query %d: stats %+v, want %+v", i, batch[i].Stats, wantSt)
		}
	}
}

// Concurrent pooled queries must be race-free (run under -race via
// scripts/check.sh) and all return the same answer.
func TestConcurrentPooledQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	fm := randomModel(rng, 6, 200)
	ix := BuildIndex(fm)
	want, _ := BruteForce(fm, 0, 0, 10, nil)
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				got, _ := ix.Query(fm, 0, 0, 10, nil)
				if len(got) != len(want) {
					errs <- "length mismatch"
					return
				}
				for j := range got {
					if got[j].Item != want[j].Item {
						errs <- "item mismatch"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// Searcher result slices are scratch: the next query on the same
// searcher may overwrite them, but Index.Query must hand out fresh
// copies.
func TestIndexQueryReturnsOwnedResults(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	fm := randomModel(rng, 4, 50)
	ix := BuildIndex(fm)
	first, _ := ix.Query(fm, 0, 0, 5, nil)
	snapshot := append([]Result(nil), first...)
	for i := 0; i < 20; i++ {
		ix.Query(fm, 0, 0, 5, func(v int) bool { return v%2 == 0 })
	}
	for i := range first {
		if first[i] != snapshot[i] {
			t.Fatal("Index.Query result mutated by later queries")
		}
	}
}
