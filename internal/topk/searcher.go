package topk

import (
	"fmt"

	"tcam/internal/model"
)

// Searcher holds the per-query scratch of the extended Threshold
// Algorithm — topic cursors, an epoch-stamped seen table, the quantized
// query vector, the list priority queue and the result heap — so
// steady-state queries allocate nothing. A Searcher is bound to the
// Index that created it and is NOT safe for concurrent use; concurrent
// callers take one each from the index pool via AcquireSearcher.
//
// Result slices returned by a Searcher are owned by it and valid only
// until its next query or Release; callers that retain results must
// copy them (Index.Query and Index.QueryBatch do).
type Searcher struct {
	ix      *Index
	pos     []int     // per-topic cursor into the sorted lists
	seen    []uint32  // epoch stamps: seen[v] == epoch ⇔ v examined
	epoch   uint32    // current query's stamp; bumping it clears seen in O(1)
	query   []float64 // scratch for model.QueryWeighter fast path
	query32 []float32 // float32 quantization of the active ϑq vector
	pq      listHeap
	results resultHeap
	out     []Result
}

// NewSearcher returns a fresh reusable searcher bound to the index. Most
// callers should prefer AcquireSearcher, which recycles scratch through
// the index pool.
func (ix *Index) NewSearcher() *Searcher {
	return &Searcher{
		ix:      ix,
		pos:     make([]int, ix.numTopics),
		seen:    make([]uint32, ix.numItems),
		query:   make([]float64, ix.numTopics),
		query32: make([]float32, ix.numTopics),
	}
}

// AcquireSearcher takes a searcher from the index's pool, creating one
// when the pool is empty. Pair with Release.
//
//tcam:hotpath
func (ix *Index) AcquireSearcher() *Searcher {
	if s, ok := ix.searchers.Get().(*Searcher); ok {
		return s
	}
	return ix.NewSearcher()
}

// Release returns the searcher to its index's pool. The searcher (and
// any result slice it returned) must not be used afterwards.
//
//tcam:hotpath
func (s *Searcher) Release() { s.ix.searchers.Put(s) }

// Query answers the temporal top-k query (u, t), writing results into
// searcher-owned scratch. When ts implements model.QueryWeighter the ϑq
// vector is materialized into scratch NewSearcher pre-sized to the
// index's topic count, making the whole call allocation-free at steady
// state.
//
//tcam:hotpath
func (s *Searcher) Query(ts model.TopicScorer, u, t, k int, exclude Exclude) ([]Result, Stats) {
	if qw, ok := ts.(model.QueryWeighter); ok {
		//tcamvet:ignore hotpathstrict one dispatch per query, outside the item loop; scorer is polymorphic by design
		qw.QueryWeightsInto(u, t, s.query)
		return s.QueryWeights(s.query, k, exclude)
	}
	//tcamvet:ignore hotpathstrict cold fallback for scorers without the Into fast path
	return s.QueryWeights(ts.QueryWeights(u, t), k, exclude)
}

// QueryApprox is Query with an eps score-gap budget; see
// Index.QueryApprox for the contract.
//
//tcam:hotpath
func (s *Searcher) QueryApprox(ts model.TopicScorer, u, t, k int, eps float64, exclude Exclude) ([]Result, Stats) {
	if qw, ok := ts.(model.QueryWeighter); ok {
		//tcamvet:ignore hotpathstrict one dispatch per query, outside the item loop; scorer is polymorphic by design
		qw.QueryWeightsInto(u, t, s.query)
		return s.QueryWeightsApprox(s.query, k, eps, exclude)
	}
	//tcamvet:ignore hotpathstrict cold fallback for scorers without the Into fast path
	return s.QueryWeightsApprox(ts.QueryWeights(u, t), k, eps, exclude)
}

// QueryWeights runs Algorithm 1 for an explicit ϑq vector. The result
// set and scores match BruteForce exactly (ties broken by ascending
// item index); the returned slice is valid until the searcher's next
// query or Release.
//
//tcam:hotpath
func (s *Searcher) QueryWeights(query []float64, k int, exclude Exclude) ([]Result, Stats) {
	return s.run(query, k, 0, exclude)
}

// QueryWeightsApprox runs the eps-budgeted variant of Algorithm 1 for
// an explicit ϑq vector: the loop may stop while unseen items could
// still beat the k-th returned score by up to eps, reporting the actual
// residual gap in Stats.Bound. eps == 0 is bit-identical to
// QueryWeights; eps must not be negative.
//
//tcam:hotpath
func (s *Searcher) QueryWeightsApprox(query []float64, k int, eps float64, exclude Exclude) ([]Result, Stats) {
	if eps < 0 {
		panic("topk: negative epsilon for approximate query")
	}
	return s.run(query, k, eps, exclude)
}

// run is the shared TA core behind the exact and approximate entry
// points; eps == 0 is the exact algorithm.
//
// Scratch tricks keeping the loop allocation- and rescan-free without
// changing results:
//
//   - seen is a stamp table: bumping epoch invalidates every stamp at
//     once, so reuse needs no O(V) clear (except on the ~never-hit
//     uint32 wraparound).
//   - the threshold S_TA is maintained incrementally — each pop changes
//     only the popped list's head, an O(1) delta instead of the O(K)
//     resum. Floating-point drift from the running sum could terminate a
//     hair early, so the exact O(K) recompute confirms the bound before
//     the loop actually breaks; an inflated running value merely delays
//     the cheap check and never affects correctness.
//
// The float32 fast scan (see DESIGN.md §12): list priorities come from
// the quantized score32 kernel, and when the result heap is full a
// popped candidate's screened score — its priority, already computed at
// push time — is checked against the k-th best under the index's error
// bound before paying for the exact float64 score. Priorities only
// steer pop order (TA is correct under any pop order once the exact
// threshold bound holds), every score that enters the result heap comes
// from the exact float64 confirm, and the screen bound over-covers the
// f32 error, so results stay bit-identical to the pure float64 path.
//
//tcam:hotpath
func (s *Searcher) run(query []float64, k int, eps float64, exclude Exclude) ([]Result, Stats) {
	ix := s.ix
	st := Stats{}
	if k <= 0 {
		return nil, st
	}
	if len(query) != ix.numTopics {
		panic(fmt.Sprintf("topk: query weights length %d, index has %d topics", len(query), ix.numTopics))
	}

	s.epoch++
	if s.epoch == 0 { // stamp wraparound: reset the table once per 2^32 queries
		clear(s.seen)
		s.epoch = 1
	}

	q32 := s.query32
	for z, w := range query {
		q32[z] = float32(w)
	}

	// Cursor position per topic; exhausted or zero-weight lists excluded
	// from the priority queue and the threshold.
	pos := s.pos
	s.pq = s.pq[:0]
	threshold := 0.0
	for z, w := range query {
		if w > 0 && len(ix.lists[z]) > 0 {
			pos[z] = 0
			s.pq.push(listRef{topic: z, priority: float64(ix.score32(q32, int(ix.lists[z][0].item)))})
			threshold += w * ix.lists[z][0].weight
		} else {
			pos[z] = len(ix.lists[z])
		}
	}
	if len(s.pq) == 0 {
		return nil, st
	}

	s.results.reset(k)
	results := &s.results

	for len(s.pq) > 0 {
		// Early termination (Lines 18–21 of Algorithm 1): the k-th
		// result beats every unseen item's best possible score (minus
		// the eps budget in approximate mode). Strict inequality keeps
		// ties exact: an unseen item could equal the threshold, and the
		// deterministic tie-break might prefer it.
		if results.Len() == k && results.min().Score > threshold-eps {
			threshold = ix.threshold(query, pos) // exact confirm (see above)
			if results.min().Score > threshold-eps {
				if gap := threshold - results.min().Score; gap > 0 {
					st.Bound = gap // approximate stop: residual gap < eps
				}
				break
			}
		}
		ref := s.pq.pop()
		z := ref.topic
		list := ix.lists[z]
		item := int(list[pos[z]].item) // local window offset
		st.ListPops++
		if s.seen[item] != s.epoch {
			s.seen[item] = s.epoch
			// Exclude filters and returned results speak global catalog
			// indices; a full index has itemLo == 0 so this is the
			// historical behavior there.
			gitem := item + ix.itemLo
			if exclude == nil || !exclude(gitem) {
				// f32 screen: ref.priority is this item's screened score.
				// Only candidates that could still reach the k-th best
				// under the error bound pay for the exact f64 score.
				if results.Len() < k || ref.priority*ix.screenScale+ix.screenEps >= results.min().Score {
					st.ItemsExamined++
					results.offer(Result{Item: gitem, Score: ix.Score(query, gitem)})
				} else {
					st.ScreenedOut++
				}
			}
		}
		// Advance this list's cursor, fold the head change into the
		// running threshold, and re-queue it (Lines 28–33).
		w := query[z]
		threshold -= w * list[pos[z]].weight
		pos[z]++
		if pos[z] < len(list) {
			threshold += w * list[pos[z]].weight
			ref.priority = float64(ix.score32(q32, int(list[pos[z]].item)))
			s.pq.push(ref)
		}
	}
	s.out = results.appendSorted(s.out[:0])
	if len(s.out) == 0 {
		return nil, st
	}
	return s.out, st
}
