package topk

// Unrolled dot-product kernels behind Index.Score and the float32
// screening path. This file holds only straight-line kernel code: the
// scripts/check_bce.sh gate compiles it with -gcflags=-d=ssa/check_bce
// and fails on any per-element bounds check ("Found IsInBounds"). The
// loops use the slice-forward idiom — consume four elements, re-slice
// both operands by four — which the prove pass eliminates entirely;
// only the O(1) reslice checks at the loop boundaries remain.

// dotOrdered computes Σ a[i]·b[i] with a single accumulator in strictly
// ascending index order — the exact floating-point operation sequence of
// the pre-unroll scalar loop — so callers on the bit-identity path
// (Index.Score, the exact TA confirm) return unchanged values. The
// 4-wide unroll only removes loop overhead and bounds checks; it never
// reassociates the sum. b must be at least as long as a.
//
//tcam:hotpath
func dotOrdered(a, b []float64) float64 {
	b = b[:len(a)]
	var s float64
	for len(a) >= 4 && len(b) >= 4 {
		s += a[0] * b[0]
		s += a[1] * b[1]
		s += a[2] * b[2]
		s += a[3] * b[3]
		a = a[4:]
		b = b[4:]
	}
	b = b[:len(a)]
	for j, x := range a {
		s += x * b[j]
	}
	return s
}

// dot32 computes Σ a[i]·b[i] in float32 with four independent
// accumulators — the screening kernel of the f32 scan path. Unlike
// dotOrdered it reassociates freely for instruction-level parallelism:
// its result is only ever used as a screening value under the Index's
// error margin (screenScale/screenEps), never as a returned score, so
// the rounding of the partial sums cannot affect results. The reduction
// order of the four accumulators is fixed by the code, so the value is
// still deterministic for a given input. b must be at least as long as
// a.
//
//tcam:hotpath
func dot32(a, b []float32) float32 {
	b = b[:len(a)]
	var s0, s1, s2, s3 float32
	for len(a) >= 4 && len(b) >= 4 {
		s0 += a[0] * b[0]
		s1 += a[1] * b[1]
		s2 += a[2] * b[2]
		s3 += a[3] * b[3]
		a = a[4:]
		b = b[4:]
	}
	s := (s0 + s1) + (s2 + s3)
	b = b[:len(a)]
	for j, x := range a {
		s += x * b[j]
	}
	return s
}
