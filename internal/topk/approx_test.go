package topk

import (
	"math/rand"
	"sort"
	"testing"
)

// TestApproxZeroEpsBitIdentical pins the eps == 0 degenerate case: the
// approximate entry points must follow the exact code path decision for
// decision, so results AND stats are identical to QueryWeights.
func TestApproxZeroEpsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		f := randomModel(rng, 3+rng.Intn(14), 30+rng.Intn(300))
		ix := BuildIndex(f)
		s := ix.NewSearcher()
		for q := 0; q < 5; q++ {
			query := randomQuery(rng, f.NumTopics(), trial%2 == 0)
			k := 1 + rng.Intn(20)

			exact, exactStats := ix.QueryWeights(query, k, nil)
			approx, approxStats := s.QueryWeightsApprox(query, k, 0, nil)
			if len(exact) != len(approx) {
				t.Fatalf("trial %d: eps=0 length %d, exact %d", trial, len(approx), len(exact))
			}
			for i := range exact {
				if exact[i] != approx[i] { // bit-identical: exact struct equality
					t.Fatalf("trial %d rank %d: eps=0 %+v, exact %+v", trial, i, approx[i], exact[i])
				}
			}
			if approxStats != exactStats {
				t.Fatalf("trial %d: eps=0 stats %+v, exact stats %+v", trial, approxStats, exactStats)
			}
			if approxStats.Bound != 0 {
				t.Fatalf("trial %d: eps=0 reported bound %v, want 0", trial, approxStats.Bound)
			}
		}
		s.Release()
	}
}

// TestApproxBoundDominatesTrueGap is the ε>0 soundness property: for a
// randomized index and query, the k-th returned score plus the reported
// Stats.Bound must dominate the best item the approximate query missed
// (the true gap), and the bound itself must stay under eps.
func TestApproxBoundDominatesTrueGap(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 60; trial++ {
		f := randomModel(rng, 3+rng.Intn(14), 30+rng.Intn(300))
		ix := BuildIndex(f)
		query := randomQuery(rng, f.NumTopics(), trial%2 == 0)
		k := 1 + rng.Intn(20)
		eps := rng.Float64() * 0.01

		s := ix.NewSearcher()
		res, st := s.QueryWeightsApprox(query, k, eps, nil)
		if st.Bound < 0 || st.Bound >= eps+1e-15 {
			t.Fatalf("trial %d: bound %v outside [0, eps=%v)", trial, st.Bound, eps)
		}
		if len(res) == 0 {
			s.Release()
			continue
		}
		kth := res[len(res)-1].Score

		// Full exact ranking by brute force over every item.
		all := make([]Result, f.NumItems())
		for v := range all {
			all[v] = Result{Item: v, Score: ix.Score(query, v)}
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].Score != all[j].Score {
				return all[i].Score > all[j].Score
			}
			return all[i].Item < all[j].Item
		})

		// Every item not returned must score ≤ kth + Bound: the reported
		// bound dominates the true gap.
		returned := map[int]bool{}
		for _, r := range res {
			returned[r.Item] = true
		}
		for _, r := range all {
			if returned[r.Item] {
				continue
			}
			if r.Score > kth+st.Bound+1e-15 {
				t.Fatalf("trial %d (eps=%v): missed item %d scores %v, kth=%v bound=%v — true gap %v exceeds bound",
					trial, eps, r.Item, r.Score, kth, st.Bound, r.Score-kth)
			}
		}

		// Returned scores must be the items' exact scores in sorted order.
		for i := 1; i < len(res); i++ {
			prev, cur := res[i-1], res[i]
			if cur.Score > prev.Score || (cur.Score == prev.Score && cur.Item < prev.Item) {
				t.Fatalf("trial %d: approx results out of order at rank %d: %+v then %+v", trial, i, prev, cur)
			}
		}
		for _, r := range res {
			if got := ix.Score(query, r.Item); got != r.Score {
				t.Fatalf("trial %d: approx returned score %v for item %d, exact %v", trial, r.Score, r.Item, got)
			}
		}
		s.Release()
	}
}

// TestApproxNegativeEpsPanics pins the constant panic message the
// tcamvet panicfmt rule requires.
func TestApproxNegativeEpsPanics(t *testing.T) {
	f := randomModel(rand.New(rand.NewSource(13)), 4, 20)
	ix := BuildIndex(f)
	s := ix.NewSearcher()
	defer func() {
		if recover() == nil {
			t.Fatal("negative eps did not panic")
		}
	}()
	s.QueryWeightsApprox(randomQuery(rand.New(rand.NewSource(14)), 4, false), 3, -1e-9, nil)
}

// TestIndexQueryApproxMatchesSearcher checks the pooled Index wrapper
// delegates to the same code path (results equal, copies owned by the
// caller).
func TestIndexQueryApproxMatchesSearcher(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	f := randomModel(rng, 8, 200)
	ix := BuildIndex(f)
	for _, eps := range []float64{0, 1e-4, 1e-2} {
		got, gotStats := ix.QueryApprox(f, 0, 0, 10, eps, nil)
		s := ix.NewSearcher()
		want, wantStats := s.QueryApprox(f, 0, 0, 10, eps, nil)
		if len(got) != len(want) {
			t.Fatalf("eps=%v: wrapper returned %d results, searcher %d", eps, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("eps=%v rank %d: wrapper %+v, searcher %+v", eps, i, got[i], want[i])
			}
		}
		if gotStats != wantStats {
			t.Fatalf("eps=%v: wrapper stats %+v, searcher stats %+v", eps, gotStats, wantStats)
		}
		s.Release()
	}
}

// TestScreenedOutNeverChangesResults drives the float32 screen hard
// (large k, many trials) and checks the exact contract: whatever
// ScreenedOut counts, results match BruteForce exactly.
func TestScreenedOutNeverChangesResults(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	screened := 0
	for trial := 0; trial < 50; trial++ {
		f := randomModel(rng, 4+rng.Intn(12), 50+rng.Intn(500))
		ix := BuildIndex(f)
		query := randomQuery(rng, f.NumTopics(), true)
		k := 1 + rng.Intn(30)
		f.queries[[2]int{0, 0}] = query
		ta, st := ix.QueryWeights(query, k, nil)
		bf, _ := BruteForce(f, 0, 0, k, nil)
		assertSameResults(t, ta, bf)
		screened += st.ScreenedOut
	}
	// The screen should actually fire across 50 randomized trials — a
	// permanently idle screen would silently devolve to the old path.
	if screened == 0 {
		t.Log("float32 screen never fired across 50 trials (allowed, but unexpected)")
	}
}
