package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"sync/atomic"

	"tcam/internal/client"
	"tcam/internal/faultinject"
	"tcam/internal/rescache"
)

// ShardConfig describes one shard of the fleet.
type ShardConfig struct {
	// BaseURL locates the shard server, e.g. "http://10.0.0.3:8080".
	BaseURL string
	// Items is the catalog window the shard serves — reported as
	// missing when the shard is unavailable.
	Items Range
	// HTTPClient overrides the transport for this shard (default: one
	// shared client with a 30s timeout). Tests use it to wire
	// httpfault.Transport per shard.
	HTTPClient *http.Client
}

// Config parameterizes a Coordinator; zero fields take defaults.
type Config struct {
	// Shards is the fleet, one entry per item range. Required.
	Shards []ShardConfig
	// ShardTimeout is the per-shard deadline budget carved from each
	// request's context (default 2s): a straggler or black-holed shard
	// costs at most this much of the request's wall clock.
	ShardTimeout time.Duration
	// Breaker templates the per-shard circuit breakers; each shard's
	// breaker derives its jitter seed from Breaker.Seed plus the shard
	// index, so probe schedules decorrelate but stay reproducible.
	Breaker client.BreakerConfig
	// Hedger templates the per-shard latency trackers that decide when
	// a straggler deserves a backup request.
	Hedger client.HedgerConfig
	// Logger directs coordinator logging (recovered panics, shard
	// failures). Without it the coordinator is silent.
	Logger *log.Logger
	// CacheEntries enables the merged-result cache with room for about
	// this many answers (see cache.go); non-positive leaves caching
	// off, the default.
	CacheEntries int
}

// Coordinator scatter-gathers queries across a shard fleet and merges
// the partial top-k lists. It implements http.Handler with the same
// /recommend surface a monolithic tcamserver exposes, plus /healthz
// and /readyz that surface per-shard breaker state. Safe for
// concurrent use.
type Coordinator struct {
	shards  []*shardConn
	timeout time.Duration
	logger  *log.Logger
	mux     *http.ServeMux

	// cache holds merged Responses (treated as immutable once cached),
	// epoch-versioned by the observed fleet state; nil when disabled.
	cache      *rescache.Cache[*Response]
	fleetEpoch atomic.Uint64 // fleetEpochOf the latest scatter
	reqSeq     atomic.Uint64 // Recommend calls, for the passthrough cadence
}

// shardConn is the coordinator's per-shard state: transport, breaker,
// and latency tracker.
type shardConn struct {
	base    string
	items   Range
	hc      *http.Client
	breaker *client.Breaker
	hedger  *client.Hedger
}

// New validates cfg and builds a Coordinator. Shard item ranges must be
// non-empty and non-overlapping; they are kept sorted by Lo so merged
// output and missing-range reports are deterministic.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Shards) == 0 {
		return nil, errors.New("shard: at least one shard is required")
	}
	c := &Coordinator{
		timeout: cfg.ShardTimeout,
		logger:  cfg.Logger,
		mux:     http.NewServeMux(),
	}
	if c.timeout <= 0 {
		c.timeout = 2 * time.Second
	}
	if cfg.CacheEntries > 0 {
		c.cache = rescache.New[*Response](cfg.CacheEntries)
	}
	shared := &http.Client{Timeout: 30 * time.Second}
	ordered := make([]ShardConfig, len(cfg.Shards))
	copy(ordered, cfg.Shards)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Items.Lo < ordered[j].Items.Lo })
	for i, sc := range ordered {
		if sc.BaseURL == "" {
			return nil, fmt.Errorf("shard: shard %d has no BaseURL", i)
		}
		if sc.Items.Hi <= sc.Items.Lo || sc.Items.Lo < 0 {
			return nil, fmt.Errorf("shard: shard %d item range [%d,%d) is empty or negative",
				i, sc.Items.Lo, sc.Items.Hi)
		}
		if i > 0 && sc.Items.Lo < ordered[i-1].Items.Hi {
			return nil, fmt.Errorf("shard: item ranges [%d,%d) and [%d,%d) overlap",
				ordered[i-1].Items.Lo, ordered[i-1].Items.Hi, sc.Items.Lo, sc.Items.Hi)
		}
		bc := cfg.Breaker
		if bc.Seed == 0 {
			bc.Seed = 1
		}
		bc.Seed += int64(i)
		hc := sc.HTTPClient
		if hc == nil {
			hc = shared
		}
		c.shards = append(c.shards, &shardConn{
			base:    strings.TrimRight(sc.BaseURL, "/"),
			items:   sc.Items,
			hc:      hc,
			breaker: client.NewBreaker(bc),
			hedger:  client.NewHedger(cfg.Hedger),
		})
	}
	c.mux.HandleFunc("/healthz", c.handleHealth)
	c.mux.HandleFunc("/readyz", c.handleReady)
	c.mux.HandleFunc("/recommend", c.handleRecommend)
	return c, nil
}

// FleetConfigs partitions an n-item catalog across the given base URLs
// with Partition's ceil-chunk split — the deploy-time helper that keeps
// the coordinator's view and the shards' WithItemRange windows in sync.
func FleetConfigs(n int, baseURLs []string) []ShardConfig {
	ranges := Partition(n, len(baseURLs))
	out := make([]ShardConfig, len(ranges))
	for i, r := range ranges {
		out[i] = ShardConfig{BaseURL: baseURLs[i], Items: r}
	}
	return out
}

func (c *Coordinator) logf(format string, args ...interface{}) {
	if c.logger != nil {
		c.logger.Printf(format, args...)
	}
}

// ServeHTTP implements http.Handler with panic containment, mirroring
// the server's lifecycle discipline.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if v := recover(); v != nil {
			c.logf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, v, debug.Stack())
			writeJSON(w, http.StatusInternalServerError, errorResponse{Error: "internal error"})
		}
	}()
	c.mux.ServeHTTP(w, r)
}

// shardRequest is the body the coordinator POSTs to /shard/query.
type shardRequest struct {
	User    string   `json:"user"`
	Time    int64    `json:"time"`
	K       int      `json:"k"`
	Exclude []string `json:"exclude,omitempty"`
}

// userError is a shard's 404: the fleet is healthy, the user does not
// exist. It propagates as the coordinator's own 404 and never counts
// against a breaker.
type userError struct{ msg string }

func (e *userError) Error() string { return e.msg }

// errBreakerOpen marks a shard skipped without a request because its
// breaker is open.
var errBreakerOpen = errors.New("shard: circuit breaker open")

// post runs one POST /shard/query attempt against the shard.
func (sc *shardConn) post(ctx context.Context, req *shardRequest) (*partialResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("shard: encode query: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, sc.base+"/shard/query", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := sc.hc.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 64<<10))
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		msg := strings.TrimSpace(string(raw))
		if resp.StatusCode == http.StatusNotFound {
			return nil, &userError{msg: msg}
		}
		return nil, fmt.Errorf("shard %s: status %d: %s", sc.base, resp.StatusCode, msg)
	}
	var out partialResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("shard %s: decode: %w", sc.base, err)
	}
	return &out, nil
}

// query runs one shard's scatter leg: breaker admission, a deadline
// budget carved from ctx, and a hedged request — the backup fires after
// the shard's observed latency quantile, the first success wins, and
// the loser's context is cancelled. A half-open breaker admits exactly
// one un-hedged probe.
func (c *Coordinator) query(ctx context.Context, sc *shardConn, req *shardRequest) (*partialResponse, error) {
	if !sc.breaker.Allow() {
		return nil, errBreakerOpen
	}
	sctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	delay := sc.hedger.Delay()
	if sc.breaker.State() == client.BreakerHalfOpen {
		delay = -1 // the recovery probe is a single request, never doubled
	}
	start := time.Now()
	resp, _, err := client.Hedge(sctx, delay, func(actx context.Context) (*partialResponse, error) {
		return sc.post(actx, req)
	})
	if err != nil {
		var ue *userError
		if errors.As(err, &ue) {
			sc.breaker.Success() // the shard answered; the user is the problem
			return nil, err
		}
		sc.breaker.Failure()
		return nil, err
	}
	sc.hedger.Observe(time.Since(start))
	sc.breaker.Success()
	return resp, nil
}

// Recommendation is one entry of the merged payload.
type Recommendation struct {
	Item  string  `json:"item"`
	Score float64 `json:"score"`
}

// Response is the coordinator's /recommend payload — the monolithic
// server's schema plus the degradation marker. When Degraded is true
// the recommendations are exact over the surviving shards, but items
// in MissingItemRanges were not considered.
type Response struct {
	User              string           `json:"user"`
	Interval          int              `json:"interval"`
	Recommendations   []Recommendation `json:"recommendations"`
	ItemsExamined     int              `json:"items_examined"`
	Degraded          bool             `json:"degraded,omitempty"`
	MissingItemRanges []Range          `json:"missing_item_ranges,omitempty"`
}

// Recommend scatter-gathers one query across the fleet and merges the
// partial top-k lists. The returned Response is exact when every shard
// answered; degraded (with the missing ranges named) when some did;
// and the error is ErrAllShardsDown when none did. A userError-backed
// 404 from any shard propagates as-is.
func (c *Coordinator) Recommend(ctx context.Context, user string, when int64, k int, exclude []string) (*Response, error) {
	var key rescache.Key
	if c.cache != nil {
		key = c.cacheKey(user, when, k, exclude)
		// Every cachePassthroughEvery-th request scatters regardless, so
		// the observed fleet epoch can't go stale under a 100% hit rate.
		if c.reqSeq.Add(1)%cachePassthroughEvery != 0 {
			// Key.User is a hash: re-check the cached identity so a user
			// collision degrades to a miss, never a wrong answer.
			if resp, ok := c.cache.Get(c.fleetEpoch.Load(), key); ok && resp.User == user {
				return resp, nil
			}
		}
	}
	faultinject.Fire("coordinator.scatter")
	req := &shardRequest{User: user, Time: when, K: k, Exclude: exclude}
	parts := make([]*partialResponse, len(c.shards))
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	for i, sc := range c.shards {
		wg.Add(1)
		go func(i int, sc *shardConn) {
			defer wg.Done()
			parts[i], errs[i] = c.query(ctx, sc, req)
		}(i, sc)
	}
	wg.Wait()
	alive := make([]*partialResponse, 0, len(parts))
	var missing []Range
	for i, p := range parts {
		if p != nil {
			alive = append(alive, p)
			continue
		}
		var ue *userError
		if errors.As(errs[i], &ue) {
			return nil, ue
		}
		c.logf("shard %s unavailable: %v", c.shards[i].base, errs[i])
		missing = append(missing, c.shards[i].items)
	}
	if len(alive) == 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, ErrAllShardsDown
	}
	merged := mergeTopK(alive, req.k())
	resp := &Response{
		User:              user,
		Interval:          alive[0].Interval,
		Recommendations:   make([]Recommendation, 0, len(merged)),
		Degraded:          len(missing) > 0,
		MissingItemRanges: missing,
	}
	for _, p := range alive {
		resp.ItemsExamined += p.ItemsExamined
	}
	for _, res := range merged {
		resp.Recommendations = append(resp.Recommendations, Recommendation{Item: res.Name, Score: res.Score})
	}
	if c.cache != nil {
		// Advance the observed epoch, then cache the merge under the
		// missing set that actually happened (Scope was the expected
		// set for the lookup): a degraded answer can only ever be
		// served while that exact degradation is expected.
		ep := fleetEpochOf(parts)
		c.fleetEpoch.Store(ep)
		key.Scope = missingScopeOf(parts)
		c.cache.Put(ep, key, resp)
	}
	return resp, nil
}

// k resolves the effective result size the same way the shards do.
func (r *shardRequest) k() int {
	if r.K == 0 {
		return 10
	}
	return r.K
}

// ErrAllShardsDown is returned when no shard produced a partial result:
// there is nothing to serve, degraded or otherwise.
var ErrAllShardsDown = errors.New("shard: all shards unavailable")

type errorResponse struct {
	Error string `json:"error"`
}

func (c *Coordinator) handleRecommend(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "GET only"})
		return
	}
	q := r.URL.Query()
	user := q.Get("user")
	if user == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "user is required"})
		return
	}
	when, err := strconv.ParseInt(q.Get("time"), 10, 64)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "time must be an integer timestamp in dataset ticks"})
		return
	}
	k := 0
	if raw := q.Get("k"); raw != "" {
		k, err = strconv.Atoi(raw)
		if err != nil || k <= 0 || k > 1000 {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "k must be in [1,1000]"})
			return
		}
	}
	var exclude []string
	if raw := q.Get("exclude"); raw != "" {
		for _, id := range strings.Split(raw, ",") {
			if dec, err := url.QueryUnescape(id); err == nil {
				id = dec
			}
			exclude = append(exclude, id)
		}
	}
	resp, err := c.Recommend(r.Context(), user, when, k, exclude)
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, resp)
	case errors.As(err, new(*userError)):
		writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
	default:
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
	}
}

// shardHealth is one fleet entry of the coordinator's /healthz payload.
type shardHealth struct {
	BaseURL string `json:"base_url"`
	Items   Range  `json:"items"`
	Breaker string `json:"breaker"`
}

// healthResponse is the coordinator's /healthz payload.
type healthResponse struct {
	Status string          `json:"status"`
	Shards []shardHealth   `json:"shards"`
	Cache  *coordCacheBody `json:"cache,omitempty"`
}

func (c *Coordinator) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "GET only"})
		return
	}
	resp := healthResponse{Status: "ok", Shards: make([]shardHealth, len(c.shards))}
	for i, sc := range c.shards {
		resp.Shards[i] = shardHealth{BaseURL: sc.base, Items: sc.items, Breaker: sc.breaker.State().String()}
	}
	resp.Cache = c.cacheHealth()
	writeJSON(w, http.StatusOK, resp)
}

// readyResponse is the coordinator's /readyz payload.
type readyResponse struct {
	Status            string  `json:"status"`
	MissingItemRanges []Range `json:"missing_item_ranges,omitempty"`
}

// handleReady feeds breaker state to the load balancer: 200 while every
// shard's breaker admits traffic, 503 naming the unavailable item
// ranges once any breaker is open (degraded — partial answers only),
// with status "unavailable" when the whole fleet is down.
func (c *Coordinator) handleReady(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "GET only"})
		return
	}
	var open []Range
	for _, sc := range c.shards {
		if sc.breaker.State() == client.BreakerOpen {
			open = append(open, sc.items)
		}
	}
	switch {
	case len(open) == 0:
		writeJSON(w, http.StatusOK, readyResponse{Status: "ready"})
	case len(open) < len(c.shards):
		writeJSON(w, http.StatusServiceUnavailable, readyResponse{Status: "degraded", MissingItemRanges: open})
	default:
		writeJSON(w, http.StatusServiceUnavailable, readyResponse{Status: "unavailable", MissingItemRanges: open})
	}
}

func writeJSON(w http.ResponseWriter, code int, payload interface{}) {
	raw, err := json.Marshal(payload)
	if err != nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		_, _ = fmt.Fprintf(w, `{"error":%q}`, "response encoding failed: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_, _ = w.Write(raw)
}
