package shard

import (
	"context"
	"fmt"
	"testing"
)

// BenchmarkCoordinator measures one scatter-gather /recommend through
// live shard servers (real HTTP per leg) at fleet sizes 1, 2, and 4 —
// the coordinator-side cost curve BENCH_query.json tracks alongside the
// in-process topk numbers.
func BenchmarkCoordinator(b *testing.B) {
	for _, n := range []int{1, 2, 4} {
		// "=" rather than "-" before the count: bench_query.sh strips a
		// trailing -N as the GOMAXPROCS suffix when building the JSON.
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			f := newFleet(b, n, nil, nil)
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				user := fmt.Sprintf("user-%d", i%6)
				resp, err := f.c.Recommend(ctx, user, 100+int64(i%30), 10, nil)
				if err != nil {
					b.Fatal(err)
				}
				if resp.Degraded {
					b.Fatal("degraded response in benchmark")
				}
			}
		})
	}
}
