// Package shard is the fault-tolerant scatter-gather serving tier
// (DESIGN.md §14). The item catalog is partitioned into contiguous
// ranges, each served by a tcamserver in shard mode (server.
// WithItemRange); a Coordinator fans each query out to every shard,
// gathers the partial top-k lists, and merges them into exactly the
// answer the monolithic index would give — bit-identical scores, same
// tie-break order.
//
// The robustness discipline lives in the coordinator: per-shard
// deadline budgets carved from the request context, hedged retries for
// straggler shards (a backup request after the shard's observed latency
// quantile, first success wins, the loser is cancelled), a per-shard
// circuit breaker so a down shard costs nothing after it trips, and
// graceful degradation — when some shards are unavailable the merged
// result over the survivors is returned with a Degraded marker naming
// the missing item ranges, and only when every shard is down does the
// coordinator answer 503.
package shard

import "sort"

// Range is a contiguous [Lo, Hi) window of the item catalog.
type Range struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// Partition splits a catalog of n items into at most shards contiguous
// ceil-chunk ranges, the same split distem.Partition applies to users.
// Every item lands in exactly one range; when shards > n the trailing
// empty ranges are omitted.
func Partition(n, shards int) []Range {
	if n <= 0 {
		return nil
	}
	if shards < 1 {
		shards = 1
	}
	if shards > n {
		shards = n
	}
	chunk := (n + shards - 1) / shards
	out := make([]Range, 0, shards)
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		out = append(out, Range{Lo: lo, Hi: hi})
	}
	return out
}

// partialResult is one entry of a shard's partial top-k, mirroring the
// server's /shard/query result schema: the global item index is the
// merge tie-break key, the name spares the coordinator a vocabulary,
// and the score is the shard's exact float64 (Go's JSON shortest-form
// encoding round-trips it bit-for-bit).
type partialResult struct {
	Item  int     `json:"item"`
	Name  string  `json:"name"`
	Score float64 `json:"score"`
}

// partialResponse mirrors the server's /shard/query payload.
type partialResponse struct {
	User          string          `json:"user"`
	Interval      int             `json:"interval"`
	ItemLo        int             `json:"item_lo"`
	ItemHi        int             `json:"item_hi"`
	Version       uint64          `json:"version"`
	Results       []partialResult `json:"results"`
	ItemsExamined int             `json:"items_examined"`
}

// mergeTopK merges per-shard partial top-k lists into the global top-k.
// Shard windows are disjoint, so the global top-k is a subset of the
// concatenation; sorting by (score desc, item asc) — the exact order
// topk's result heap emits — and truncating to k therefore reproduces
// the monolithic answer bit-for-bit. Scores are compared with < and >
// only: equal scores fall through to the ascending-item tie-break.
func mergeTopK(partials []*partialResponse, k int) []partialResult {
	total := 0
	for _, p := range partials {
		total += len(p.Results)
	}
	merged := make([]partialResult, 0, total)
	for _, p := range partials {
		merged = append(merged, p.Results...)
	}
	sort.Slice(merged, func(i, j int) bool {
		a, b := merged[i], merged[j]
		if a.Score > b.Score {
			return true
		}
		if a.Score < b.Score {
			return false
		}
		return a.Item < b.Item
	})
	if len(merged) > k {
		merged = merged[:k]
	}
	return merged
}
