package shard

// Coordinator-side result caching (DESIGN.md §16). The coordinator
// has no snapshot of its own, so its cache epoch is derived from what
// the fleet reports: a hash of every (shard index, bundle version)
// pair observed in the latest scatter. Any shard publishing a new
// generation — or dropping out / coming back — changes the observed
// epoch, which logically invalidates every merged answer cached
// against the old fleet state.
//
// Degraded answers are additionally keyed by the missing-shard set
// (Key.Scope): a lookup expects the breaker-open set, an insert
// records the set that actually failed, so a degraded merge can never
// be served to a request that expects a healthy fleet, and vice
// versa. Because the epoch only advances when a scatter observes the
// fleet, every cachePassthroughEvery-th request skips its lookup and
// scatters unconditionally — bounding how long a republished shard
// can go unnoticed under a 100% hit rate.

import (
	"tcam/internal/client"
	"tcam/internal/rescache"
)

// cachePassthroughEvery forces one scatter per this many /recommend
// requests so the observed fleet epoch keeps refreshing even when
// everything hits.
const cachePassthroughEvery = 64

// cacheKey builds the lookup identity of one coordinator query. The
// user is hashed (the coordinator has no vocabulary); a hit therefore
// re-checks Response.User before serving. Scope carries the expected
// missing-shard set — the breaker-open shards — so degraded periods
// read their own entries.
func (c *Coordinator) cacheKey(user string, when int64, k int, exclude []string) rescache.Key {
	var exh rescache.SetHash
	for _, id := range exclude {
		exh.Add(rescache.HashString(id))
	}
	return rescache.Key{
		User:        rescache.HashString(user),
		Time:        when,
		K:           int32(k),
		NumExclude:  exh.Len(),
		ExcludeHash: exh.Sum(),
		Scope:       c.expectedMissingScope(),
	}
}

// expectedMissingScope hashes the set of shards whose breakers are
// open right now — the fleet state a fresh scatter would miss.
func (c *Coordinator) expectedMissingScope() uint64 {
	var s rescache.SetHash
	for i, sc := range c.shards {
		if sc.breaker.State() == client.BreakerOpen {
			s.Add(uint64(i))
		}
	}
	return s.Sum()
}

// fleetEpochOf folds the scatter's observed (shard index, version)
// pairs into the cache epoch. Dead shards contribute nothing here —
// their absence is the Scope's business — so a shard bouncing back at
// a new version lands in a fresh epoch.
func fleetEpochOf(parts []*partialResponse) uint64 {
	ep := uint64(0x9e3779b97f4a7c15)
	for i, p := range parts {
		if p == nil {
			continue
		}
		ep = rescache.Mix64(ep ^ rescache.Mix64(uint64(i)) ^ rescache.Mix64(p.Version))
	}
	return ep
}

// missingScopeOf hashes the shard indices that actually failed this
// scatter — the Scope a degraded merge is cached under.
func missingScopeOf(parts []*partialResponse) uint64 {
	var s rescache.SetHash
	for i, p := range parts {
		if p == nil {
			s.Add(uint64(i))
		}
	}
	return s.Sum()
}

// coordCacheBody is the "cache" sub-object of the coordinator's
// /healthz payload, mirroring the server's.
type coordCacheBody struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Stale   uint64 `json:"stale"`
	Entries int64  `json:"entries"`
	// Epoch is the fleet state hash the latest scatter observed.
	Epoch uint64 `json:"epoch"`
}

// cacheHealth renders the cache view, or nil when caching is off.
func (c *Coordinator) cacheHealth() *coordCacheBody {
	if c.cache == nil {
		return nil
	}
	ctr := c.cache.Counters()
	return &coordCacheBody{
		Hits:    ctr.Hits,
		Misses:  ctr.Misses,
		Stale:   ctr.Stale,
		Entries: ctr.Entries,
		Epoch:   c.fleetEpoch.Load(),
	}
}
