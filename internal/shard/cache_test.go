package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"tcam/internal/client"
	"tcam/internal/cuboid"
	"tcam/internal/dataset"
	"tcam/internal/faultinject"
	"tcam/internal/index"
	"tcam/internal/model/ttcam"
)

// altBundle trains a second model over the same 6×12 vocabulary as
// testBundle but different interactions, so reload-driven answer
// changes are observable.
func altBundle(tb testing.TB) *index.Bundle {
	tb.Helper()
	b := cuboid.NewBuilder(6, 3, 12)
	for u := 0; u < 6; u++ {
		for t := 0; t < 3; t++ {
			b.MustAdd(u, t, (u*3+t*2)%12, 1)
			b.MustAdd(u, t, (t*5+1)%12, 1)
		}
	}
	cfg := ttcam.DefaultConfig()
	cfg.K1, cfg.K2, cfg.MaxIters = 4, 3, 15
	m, _, err := ttcam.Train(b.Build(), cfg)
	if err != nil {
		tb.Fatal(err)
	}
	users := make([]string, 6)
	for i := range users {
		users[i] = fmt.Sprintf("user-%d", i)
	}
	items := make([]string, 12)
	for i := range items {
		items[i] = fmt.Sprintf("item-%d", i)
	}
	return index.NewTTCAM(m, dataset.TimeGrid{Origin: 100, Length: 10, Num: 3}, users, items)
}

func coordHealthCache(t *testing.T, c *Coordinator) *coordCacheBody {
	t.Helper()
	rec := httptest.NewRecorder()
	c.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	var resp healthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp.Cache
}

func scatterCount(f *fleet) int64 {
	var n int64
	for _, c := range f.counters {
		n += c.Load()
	}
	return n
}

// TestCoordinatorCacheServesHits: a repeated query is answered from
// the merged-result cache — byte-identical to the scattered answer,
// with zero shard requests.
func TestCoordinatorCacheServesHits(t *testing.T) {
	f := newFleet(t, 2, func(cfg *Config) { cfg.CacheEntries = 256 }, nil)
	ts := httptest.NewServer(f.c)
	defer ts.Close()
	get := func() string {
		t.Helper()
		resp, err := http.Get(ts.URL + "/recommend?user=user-2&time=115&k=5&exclude=item-1,item-3")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		var buf [4096]byte
		n, _ := resp.Body.Read(buf[:])
		return string(buf[:n])
	}
	first := get()
	before := scatterCount(f)
	for i := 0; i < 10; i++ {
		if got := get(); got != first {
			t.Fatalf("cached answer diverged:\ngot:  %s\nwant: %s", got, first)
		}
	}
	if after := scatterCount(f); after != before {
		t.Fatalf("hits still scattered: %d shard requests for 10 cached queries", after-before)
	}
	hc := coordHealthCache(t, f.c)
	if hc == nil || hc.Hits < 10 || hc.Entries == 0 {
		t.Fatalf("cache counters off: %+v", hc)
	}
}

// TestCoordinatorCacheDisabledByDefault: without CacheEntries every
// request scatters and /healthz carries no cache object.
func TestCoordinatorCacheDisabledByDefault(t *testing.T) {
	f := newFleet(t, 2, nil, nil)
	for i := 0; i < 3; i++ {
		if _, err := f.c.Recommend(context.Background(), "user-1", 115, 5, nil); err != nil {
			t.Fatal(err)
		}
	}
	if n := scatterCount(f); n != 6 {
		t.Fatalf("scatter count = %d, want 6 (no caching)", n)
	}
	if hc := coordHealthCache(t, f.c); hc != nil {
		t.Fatalf("cache body present without CacheEntries: %+v", hc)
	}
}

// TestCoordinatorCacheDegradedNeverServedAsHealthy: an answer merged
// while a shard was down is keyed by that missing set; once no outage
// is expected, the degraded entry is unreachable, and after recovery
// the full fleet answers exactly.
func TestCoordinatorCacheDegradedNeverServedAsHealthy(t *testing.T) {
	f := newFleet(t, 2, func(cfg *Config) { cfg.CacheEntries = 256 }, nil)
	ctx := context.Background()
	// Outage without a tripped breaker: the expected missing set stays
	// empty, so degraded merges are cached but never looked up.
	faultinject.SetErr("shard1.conn", faultinject.ErrorAlways(faultinject.ErrInjectedConn))
	d1, err := f.c.Recommend(ctx, "user-2", 115, 5, nil)
	if err != nil || !d1.Degraded {
		t.Fatalf("want degraded answer, got %+v, %v", d1, err)
	}
	before := f.counters[0].Load()
	d2, err := f.c.Recommend(ctx, "user-2", 115, 5, nil)
	if err != nil || !d2.Degraded {
		t.Fatalf("want degraded answer, got %+v, %v", d2, err)
	}
	if f.counters[0].Load() == before {
		t.Fatal("unexpected degraded cache hit: no healthy-scope lookup may reach a degraded entry")
	}
	faultinject.ClearErr("shard1.conn")
	full, err := f.c.Recommend(ctx, "user-2", 115, 5, nil)
	if err != nil || full.Degraded {
		t.Fatalf("after recovery: %+v, %v", full, err)
	}
	want := expect(f.bundle, "user-2", 115, 5, nil, nil)
	if !sameRecs(full.Recommendations, want) {
		t.Fatalf("post-recovery answer %+v != monolithic reference %+v", full.Recommendations, want)
	}
}

// TestCoordinatorCacheDegradedHitsWhileExpected: once the breaker has
// tripped, the missing set is expected, and repeated queries during
// the outage are served from the cache without hammering the
// surviving shards.
func TestCoordinatorCacheDegradedHitsWhileExpected(t *testing.T) {
	f := newFleet(t, 2, func(cfg *Config) {
		cfg.CacheEntries = 256
		cfg.Breaker = client.BreakerConfig{FailureThreshold: 1, OpenTimeout: time.Hour}
	}, nil)
	ctx := context.Background()
	faultinject.SetErr("shard1.conn", faultinject.ErrorAlways(faultinject.ErrInjectedConn))
	// First scatter fails shard1 and trips its breaker; second scatters
	// again (the expected set changed between key build and insert);
	// from the third on the degraded answer is cacheable and expected.
	d1, err := f.c.Recommend(ctx, "user-2", 115, 5, nil)
	if err != nil || !d1.Degraded {
		t.Fatalf("want degraded answer, got %+v, %v", d1, err)
	}
	if _, err := f.c.Recommend(ctx, "user-2", 115, 5, nil); err != nil {
		t.Fatal(err)
	}
	before := f.counters[0].Load()
	d3, err := f.c.Recommend(ctx, "user-2", 115, 5, nil)
	if err != nil || !d3.Degraded {
		t.Fatalf("want degraded answer, got %+v, %v", d3, err)
	}
	if f.counters[0].Load() != before {
		t.Fatal("expected-degraded repeat query still scattered")
	}
	if !sameRecs(d3.Recommendations, expect(f.bundle, "user-2", 115, 5, nil, []Range{f.ranges[1]})) {
		t.Fatalf("cached degraded answer wrong: %+v", d3.Recommendations)
	}
}

// TestCoordinatorCachePassthroughObservesReload: a shard publishing a
// new bundle changes the fleet epoch, but only a scatter can observe
// it. The periodic passthrough guarantees the switch within
// cachePassthroughEvery requests even under a 100% hit rate.
func TestCoordinatorCachePassthroughObservesReload(t *testing.T) {
	f := newFleet(t, 2, func(cfg *Config) { cfg.CacheEntries = 256 }, nil)
	ctx := context.Background()
	oldWant := expect(f.bundle, "user-2", 115, 5, nil, nil)
	alt := altBundle(t)
	newWant := expect(alt, "user-2", 115, 5, nil, nil)
	if sameRecs(oldWant, newWant) {
		t.Fatal("fixture bundles agree; reload would be invisible")
	}
	if _, err := f.c.Recommend(ctx, "user-2", 115, 5, nil); err != nil {
		t.Fatal(err) // warm the cache against the boot fleet
	}
	for i, srv := range f.servers {
		if _, err := srv.Reload(alt); err != nil {
			t.Fatalf("reload shard %d: %v", i, err)
		}
	}
	// The cached pre-reload answer may keep serving, but never past the
	// passthrough horizon, and after the flip it must never come back.
	flipped := -1
	for i := 0; i < 2*cachePassthroughEvery; i++ {
		resp, err := f.c.Recommend(ctx, "user-2", 115, 5, nil)
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case sameRecs(resp.Recommendations, newWant):
			if flipped < 0 {
				flipped = i
			}
		case sameRecs(resp.Recommendations, oldWant):
			if flipped >= 0 {
				t.Fatalf("request %d served the pre-reload answer after the epoch flipped at %d", i, flipped)
			}
		default:
			t.Fatalf("request %d: answer matches neither bundle: %+v", i, resp.Recommendations)
		}
	}
	if flipped < 0 || flipped > cachePassthroughEvery {
		t.Fatalf("reload observed at request %d, want within %d", flipped, cachePassthroughEvery)
	}
}
