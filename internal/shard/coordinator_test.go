package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tcam/internal/client"
	"tcam/internal/cuboid"
	"tcam/internal/dataset"
	"tcam/internal/faultinject"
	"tcam/internal/faultinject/httpfault"
	"tcam/internal/index"
	"tcam/internal/model/ttcam"
	"tcam/internal/server"
)

// testBundle trains the same 6-user / 3-interval / 12-item TTCAM the
// server tests serve.
func testBundle(tb testing.TB) *index.Bundle {
	tb.Helper()
	b := cuboid.NewBuilder(6, 3, 12)
	for u := 0; u < 6; u++ {
		for t := 0; t < 3; t++ {
			b.MustAdd(u, t, (u*2+t)%12, 1)
			b.MustAdd(u, t, (t*4)%12, 1)
		}
	}
	cfg := ttcam.DefaultConfig()
	cfg.K1, cfg.K2, cfg.MaxIters = 4, 3, 15
	m, _, err := ttcam.Train(b.Build(), cfg)
	if err != nil {
		tb.Fatal(err)
	}
	users := make([]string, 6)
	for i := range users {
		users[i] = fmt.Sprintf("user-%d", i)
	}
	items := make([]string, 12)
	for i := range items {
		items[i] = fmt.Sprintf("item-%d", i)
	}
	return index.NewTTCAM(m, dataset.TimeGrid{Origin: 100, Length: 10, Num: 3}, users, items)
}

// fleet is a coordinator in front of n live shard servers, with
// per-shard request counters and faultinject transports on sites
// "shard<i>.delay" / "shard<i>.conn" / "shard<i>.torn".
type fleet struct {
	c        *Coordinator
	bundle   *index.Bundle
	ranges   []Range
	counters []*atomic.Int64
	servers  []*server.Server // the shard servers, for reload-driven epoch tests
}

// newFleet spins n shard servers over Partition(12, n). mut edits the
// coordinator config before New; wrap interposes per-shard middleware
// (counters are applied outermost regardless).
func newFleet(tb testing.TB, n int, mut func(*Config), wrap func(i int, h http.Handler) http.Handler) *fleet {
	tb.Helper()
	tb.Cleanup(faultinject.Reset)
	bundle := testBundle(tb)
	f := &fleet{bundle: bundle, ranges: Partition(len(bundle.Items), n)}
	cfg := Config{
		ShardTimeout: 5 * time.Second,
		// Defaults that keep breakers and hedges out of the way unless a
		// test opts in: a huge trip threshold and a cold hedger whose
		// window never warms up.
		Breaker: client.BreakerConfig{FailureThreshold: 1 << 20},
		Hedger:  client.HedgerConfig{Default: 10 * time.Second, Window: 1 << 10, MinSamples: 1 << 10},
	}
	for i, r := range f.ranges {
		srv, err := server.New(bundle, server.WithItemRange(r.Lo, r.Hi))
		if err != nil {
			tb.Fatal(err)
		}
		f.servers = append(f.servers, srv)
		var h http.Handler = srv
		if wrap != nil {
			h = wrap(i, h)
		}
		counter := &atomic.Int64{}
		f.counters = append(f.counters, counter)
		inner := h
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			counter.Add(1)
			inner.ServeHTTP(w, r)
		}))
		tb.Cleanup(ts.Close)
		cfg.Shards = append(cfg.Shards, ShardConfig{
			BaseURL: ts.URL,
			Items:   r,
			HTTPClient: &http.Client{
				Transport: &httpfault.Transport{Site: fmt.Sprintf("shard%d", i)},
				Timeout:   30 * time.Second,
			},
		})
	}
	if mut != nil {
		mut(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	f.c = c
	return f
}

// expect computes the reference answer on a monolithic index: the top-k
// over the full catalog minus excluded names and dead shard windows.
func expect(bundle *index.Bundle, user string, when int64, k int, excludeNames []string, dead []Range) []Recommendation {
	itemIdx := make(map[string]int, len(bundle.Items))
	for v, name := range bundle.Items {
		itemIdx[name] = v
	}
	banned := make(map[int]bool)
	for _, name := range excludeNames {
		if v, ok := itemIdx[name]; ok {
			banned[v] = true
		}
	}
	exclude := func(v int) bool {
		if banned[v] {
			return true
		}
		for _, r := range dead {
			if v >= r.Lo && v < r.Hi {
				return true
			}
		}
		return false
	}
	var u int
	for i, name := range bundle.Users {
		if name == user {
			u = i
		}
	}
	if k == 0 {
		k = 10
	}
	ix := bundle.BuildIndex()
	t := bundle.Grid.IntervalOf(when)
	results, _ := ix.Query(bundle.Scorer(), u, t, k, exclude)
	out := make([]Recommendation, 0, len(results))
	for _, res := range results {
		out = append(out, Recommendation{Item: bundle.Items[res.Item], Score: res.Score})
	}
	return out
}

func sameRecs(a, b []Recommendation) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Item != b[i].Item || a[i].Score != b[i].Score {
			return false
		}
	}
	return true
}

// The tentpole invariant: for 1, 2, and 4 shards the coordinator's
// /recommend is bit-identical — items, order, and float64 scores —
// to a monolithic tcamserver's, through real HTTP on both sides.
func TestCoordinatorBitIdenticalToMonolith(t *testing.T) {
	bundle := testBundle(t)
	mono, err := server.New(bundle)
	if err != nil {
		t.Fatal(err)
	}
	monoTS := httptest.NewServer(mono)
	defer monoTS.Close()

	fetch := func(base, path string) (int, Response) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out Response
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, out
	}

	for _, n := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards-%d", n), func(t *testing.T) {
			f := newFleet(t, n, nil, nil)
			coordTS := httptest.NewServer(f.c)
			defer coordTS.Close()
			for u := 0; u < 6; u++ {
				for _, when := range []int64{100, 105, 115, 125} {
					for _, path := range []string{
						fmt.Sprintf("/recommend?user=user-%d&time=%d&k=5", u, when),
						fmt.Sprintf("/recommend?user=user-%d&time=%d", u, when),
						fmt.Sprintf("/recommend?user=user-%d&time=%d&k=12&exclude=item-0,item-7", u, when),
					} {
						wantCode, want := fetch(monoTS.URL, path)
						gotCode, got := fetch(coordTS.URL, path)
						if gotCode != wantCode || gotCode != http.StatusOK {
							t.Fatalf("%s: status %d vs monolithic %d", path, gotCode, wantCode)
						}
						if got.Degraded || len(got.MissingItemRanges) != 0 {
							t.Fatalf("%s: degraded with all shards up", path)
						}
						if got.Interval != want.Interval || !sameRecs(got.Recommendations, want.Recommendations) {
							t.Fatalf("%s: merged %+v != monolithic %+v", path, got, want)
						}
					}
				}
			}
		})
	}
}

// A shard crashing mid-scatter degrades the answer instead of failing
// it: 200, Degraded, the dead shard's window reported missing, and the
// surviving merge exact.
func TestCoordinatorShardCrashDegrades(t *testing.T) {
	f := newFleet(t, 2, nil, nil)
	faultinject.SetErr("shard1.conn", faultinject.ErrorAlways(faultinject.ErrInjectedConn))
	resp, err := f.c.Recommend(context.Background(), "user-2", 115, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded {
		t.Fatal("response not marked degraded with a shard down")
	}
	if len(resp.MissingItemRanges) != 1 || resp.MissingItemRanges[0] != f.ranges[1] {
		t.Fatalf("missing ranges = %v, want [%v]", resp.MissingItemRanges, f.ranges[1])
	}
	want := expect(f.bundle, "user-2", 115, 5, nil, []Range{f.ranges[1]})
	if !sameRecs(resp.Recommendations, want) {
		t.Fatalf("degraded merge %+v != surviving-window reference %+v", resp.Recommendations, want)
	}

	// Recovery: clear the fault and the same query is exact again.
	faultinject.ClearErr("shard1.conn")
	resp, err = f.c.Recommend(context.Background(), "user-2", 115, 5, nil)
	if err != nil || resp.Degraded {
		t.Fatalf("after recovery: err=%v degraded=%v", err, resp != nil && resp.Degraded)
	}
}

func TestCoordinatorAllShardsDown(t *testing.T) {
	f := newFleet(t, 2, nil, nil)
	faultinject.SetErr("shard0.conn", faultinject.ErrorAlways(faultinject.ErrInjectedConn))
	faultinject.SetErr("shard1.conn", faultinject.ErrorAlways(faultinject.ErrInjectedConn))
	if _, err := f.c.Recommend(context.Background(), "user-0", 100, 5, nil); !errors.Is(err, ErrAllShardsDown) {
		t.Fatalf("err = %v, want ErrAllShardsDown", err)
	}
	ts := httptest.NewServer(f.c)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/recommend?user=user-0&time=100")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 when the whole fleet is down", resp.StatusCode)
	}
}

// A torn response body (headers delivered, body cut off) is a shard
// failure like any other: degraded, not an error or a hang.
func TestCoordinatorTornResponseDegrades(t *testing.T) {
	f := newFleet(t, 2, nil, nil)
	faultinject.SetErr("shard0.torn", faultinject.ErrorAlways(faultinject.ErrInjectedTorn))
	resp, err := f.c.Recommend(context.Background(), "user-1", 105, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded || len(resp.MissingItemRanges) != 1 || resp.MissingItemRanges[0] != f.ranges[0] {
		t.Fatalf("torn shard not reported missing: %+v", resp)
	}
}

// An unknown user is a 404 from every shard — the coordinator must
// propagate it, not degrade or trip breakers.
func TestCoordinatorUnknownUser(t *testing.T) {
	f := newFleet(t, 2, nil, nil)
	ts := httptest.NewServer(f.c)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/recommend?user=nobody&time=100")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
	for i, sc := range f.c.shards {
		if sc.breaker.State() != client.BreakerClosed {
			t.Errorf("shard %d breaker = %v after a 404, want closed", i, sc.breaker.State())
		}
	}
}

// fakeClock drives breaker time by hand.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func readyStatus(t *testing.T, c *Coordinator) (int, readyResponse) {
	t.Helper()
	rec := httptest.NewRecorder()
	c.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	var out readyResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	return rec.Code, out
}

// The breaker lifecycle end to end: failures trip it, an open breaker
// short-circuits scatter legs (no request reaches the shard) and turns
// /readyz degraded, the cooldown admits one probe, and a successful
// probe closes it again.
func TestCoordinatorBreakerTripAndRecover(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1_700_000_000, 0)}
	f := newFleet(t, 2, func(cfg *Config) {
		cfg.Breaker = client.BreakerConfig{
			FailureThreshold: 2,
			OpenTimeout:      time.Second,
			JitterFrac:       -1, // exact 1s cooldown
			Now:              clock.Now,
		}
	}, nil)
	faultinject.SetErr("shard0.conn", faultinject.ErrorAlways(faultinject.ErrInjectedConn))

	ask := func() *Response {
		t.Helper()
		resp, err := f.c.Recommend(context.Background(), "user-3", 115, 5, nil)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Two failures trip the breaker.
	for i := 0; i < 2; i++ {
		if resp := ask(); !resp.Degraded {
			t.Fatalf("request %d not degraded with shard0 down", i)
		}
	}
	if st := f.c.shards[0].breaker.State(); st != client.BreakerOpen {
		t.Fatalf("breaker = %v after %d failures, want open", st, 2)
	}
	if code, ready := readyStatus(t, f.c); code != http.StatusServiceUnavailable || ready.Status != "degraded" {
		t.Fatalf("/readyz = %d %+v, want 503 degraded", code, ready)
	}

	// Open breaker: the scatter leg is skipped entirely — the shard sees
	// no request — and the fault being fixed changes nothing until the
	// cooldown elapses.
	faultinject.ClearErr("shard0.conn")
	before := f.counters[0].Load()
	if resp := ask(); !resp.Degraded {
		t.Fatal("open breaker should keep shard0's range missing")
	}
	if got := f.counters[0].Load(); got != before {
		t.Fatalf("open breaker let %d requests through", got-before)
	}

	// Cooldown elapses: one probe goes through, succeeds, and the fleet
	// is whole again.
	clock.Advance(1100 * time.Millisecond)
	if resp := ask(); resp.Degraded {
		t.Fatal("successful probe should yield a full answer")
	}
	if st := f.c.shards[0].breaker.State(); st != client.BreakerClosed {
		t.Fatalf("breaker = %v after successful probe, want closed", st)
	}
	if code, ready := readyStatus(t, f.c); code != http.StatusOK || ready.Status != "ready" {
		t.Fatalf("/readyz = %d %+v, want 200 ready", code, ready)
	}
	if f.counters[0].Load() != before+1 {
		t.Fatalf("probe made %d requests, want 1", f.counters[0].Load()-before)
	}
}

// A straggling shard triggers the hedge: the backup request wins, the
// straggler's context is cancelled, and the answer is full-fidelity.
func TestCoordinatorHedgeWinsAndCancelsStraggler(t *testing.T) {
	var shard0Queries atomic.Int64
	stragglerCancelled := make(chan struct{})
	f := newFleet(t, 2, func(cfg *Config) {
		cfg.Hedger = client.HedgerConfig{Default: 2 * time.Millisecond, Window: 64, MinSamples: 64}
	}, func(i int, h http.Handler) http.Handler {
		if i != 0 {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/shard/query" && shard0Queries.Add(1) == 1 {
				// The straggler: never answers, returns only when the
				// coordinator hangs up on it. The body must be drained
				// first — the server only watches for the client closing
				// the connection once the request body has hit EOF.
				_, _ = io.Copy(io.Discard, r.Body)
				<-r.Context().Done()
				close(stragglerCancelled)
				return
			}
			h.ServeHTTP(w, r)
		})
	})
	resp, err := f.c.Recommend(context.Background(), "user-4", 125, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Degraded {
		t.Fatalf("hedged answer degraded: %+v", resp)
	}
	want := expect(f.bundle, "user-4", 125, 5, nil, nil)
	if !sameRecs(resp.Recommendations, want) {
		t.Fatalf("hedged merge %+v != reference %+v", resp.Recommendations, want)
	}
	select {
	case <-stragglerCancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("straggler request was never cancelled")
	}
	if got := shard0Queries.Load(); got != 2 {
		t.Fatalf("shard0 saw %d queries, want 2 (primary + hedge)", got)
	}
}

// The per-shard deadline budget: a black-holed shard costs at most
// ShardTimeout, after which its range is reported missing.
func TestCoordinatorShardTimeoutBudget(t *testing.T) {
	release := make(chan struct{})
	f := newFleet(t, 2, func(cfg *Config) {
		cfg.ShardTimeout = 50 * time.Millisecond
	}, nil)
	t.Cleanup(func() { close(release) })
	faultinject.Set("shard1.delay", faultinject.Blocks(nil, release))
	start := time.Now()
	resp, err := f.c.Recommend(context.Background(), "user-0", 100, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded || len(resp.MissingItemRanges) != 1 || resp.MissingItemRanges[0] != f.ranges[1] {
		t.Fatalf("black-holed shard not reported missing: %+v", resp)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("request took %v, want roughly the 50ms shard budget", took)
	}
}

// Degraded merges still honor exclude sets — including excludes that
// point into the dead shard's window — and keep the exact tie-break
// order of the surviving windows.
func TestCoordinatorDegradedMergeRespectsExcludes(t *testing.T) {
	f := newFleet(t, 4, nil, nil)
	faultinject.SetErr("shard2.conn", faultinject.ErrorAlways(faultinject.ErrInjectedConn))
	exclude := []string{"item-1", "item-7", "item-10"} // item-7 lives in the dead [6,9) window
	resp, err := f.c.Recommend(context.Background(), "user-5", 115, 8, exclude)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded || len(resp.MissingItemRanges) != 1 || resp.MissingItemRanges[0] != f.ranges[2] {
		t.Fatalf("missing ranges = %v, want [%v]", resp.MissingItemRanges, f.ranges[2])
	}
	for _, rec := range resp.Recommendations {
		for _, banned := range exclude {
			if rec.Item == banned {
				t.Fatalf("excluded item %q in degraded merge", banned)
			}
		}
	}
	want := expect(f.bundle, "user-5", 115, 8, exclude, []Range{f.ranges[2]})
	if !sameRecs(resp.Recommendations, want) {
		t.Fatalf("degraded merge %+v != reference %+v", resp.Recommendations, want)
	}
}

func TestCoordinatorHealthListsFleet(t *testing.T) {
	f := newFleet(t, 3, nil, nil)
	rec := httptest.NewRecorder()
	f.c.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var h healthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if len(h.Shards) != 3 {
		t.Fatalf("%d shards in health, want 3", len(h.Shards))
	}
	for i, sh := range h.Shards {
		if sh.Items != f.ranges[i] || sh.Breaker != "closed" {
			t.Errorf("shard %d health = %+v", i, sh)
		}
	}
}

func TestPartition(t *testing.T) {
	cases := []struct {
		n, shards int
		want      []Range
	}{
		{12, 1, []Range{{0, 12}}},
		{12, 2, []Range{{0, 6}, {6, 12}}},
		{12, 4, []Range{{0, 3}, {3, 6}, {6, 9}, {9, 12}}},
		{10, 4, []Range{{0, 3}, {3, 6}, {6, 9}, {9, 10}}},
		{3, 5, []Range{{0, 1}, {1, 2}, {2, 3}}},
		{0, 3, nil},
		{5, 0, []Range{{0, 5}}},
	}
	for _, tc := range cases {
		got := Partition(tc.n, tc.shards)
		if len(got) != len(tc.want) {
			t.Errorf("Partition(%d,%d) = %v, want %v", tc.n, tc.shards, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("Partition(%d,%d)[%d] = %v, want %v", tc.n, tc.shards, i, got[i], tc.want[i])
			}
		}
	}
	// Every partition tiles [0, n) exactly.
	for n := 1; n <= 40; n++ {
		for shards := 1; shards <= 8; shards++ {
			ranges := Partition(n, shards)
			at := 0
			for _, r := range ranges {
				if r.Lo != at || r.Hi <= r.Lo {
					t.Fatalf("Partition(%d,%d) = %v does not tile", n, shards, ranges)
				}
				at = r.Hi
			}
			if at != n {
				t.Fatalf("Partition(%d,%d) = %v stops at %d", n, shards, ranges, at)
			}
		}
	}
}

func TestNewRejectsBadFleets(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New accepted an empty fleet")
	}
	if _, err := New(Config{Shards: []ShardConfig{{BaseURL: "", Items: Range{0, 5}}}}); err == nil {
		t.Error("New accepted a shard without a BaseURL")
	}
	if _, err := New(Config{Shards: []ShardConfig{{BaseURL: "http://a", Items: Range{3, 3}}}}); err == nil {
		t.Error("New accepted an empty item range")
	}
	if _, err := New(Config{Shards: []ShardConfig{
		{BaseURL: "http://a", Items: Range{0, 6}},
		{BaseURL: "http://b", Items: Range{4, 10}},
	}}); err == nil {
		t.Error("New accepted overlapping item ranges")
	}
}

func TestFleetConfigs(t *testing.T) {
	cfgs := FleetConfigs(10, []string{"http://a", "http://b", "http://c"})
	if len(cfgs) != 3 {
		t.Fatalf("%d configs, want 3", len(cfgs))
	}
	want := Partition(10, 3)
	for i, cfg := range cfgs {
		if cfg.Items != want[i] {
			t.Errorf("config %d items = %v, want %v", i, cfg.Items, want[i])
		}
	}
}
