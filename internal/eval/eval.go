// Package eval implements the paper's evaluation protocol
// (Section 5.3.1): temporal top-k queries are formed from every
// (user, interval) group holding at least one held-out test item, the
// user's training items in that interval are excluded from the
// candidates, and ranked lists are scored with Precision@k, NDCG@k and
// F1@k averaged over queries.
package eval

import (
	"math"
	"sort"
	"sync"

	"tcam/internal/dataset"
	"tcam/internal/model"
	"tcam/internal/topk"
)

// Query is one temporal top-k evaluation query: recommend for user U in
// interval T; Test holds the ground-truth held-out items; Train holds
// the user's training items in the same interval (excluded from
// candidates).
type Query struct {
	U, T  int
	Test  map[int]bool
	Train map[int]bool
}

// BuildQueries extracts the evaluation queries from a train/test split:
// one query per (user, interval) group with at least one test item.
// Queries are ordered by (user, interval) for determinism.
func BuildQueries(split dataset.Split) []Query {
	type key struct{ u, t int32 }
	tests := make(map[key]map[int]bool)
	for _, cell := range split.Test.Cells() {
		k := key{cell.U, cell.T}
		if tests[k] == nil {
			tests[k] = make(map[int]bool)
		}
		tests[k][int(cell.V)] = true
	}
	trains := make(map[key]map[int]bool)
	for _, cell := range split.Train.Cells() {
		k := key{cell.U, cell.T}
		if tests[k] == nil {
			continue // only needed for groups that become queries
		}
		if trains[k] == nil {
			trains[k] = make(map[int]bool)
		}
		trains[k][int(cell.V)] = true
	}
	queries := make([]Query, 0, len(tests))
	for k, test := range tests {
		queries = append(queries, Query{U: int(k.u), T: int(k.t), Test: test, Train: trains[k]})
	}
	sort.Slice(queries, func(a, b int) bool {
		if queries[a].U != queries[b].U {
			return queries[a].U < queries[b].U
		}
		return queries[a].T < queries[b].T
	})
	return queries
}

// SampleQueries deterministically thins a query list to at most n
// entries (evenly strided), trading evaluation precision for speed in
// large sweeps.
func SampleQueries(queries []Query, n int) []Query {
	if n <= 0 || len(queries) <= n {
		return queries
	}
	out := make([]Query, 0, n)
	stride := float64(len(queries)) / float64(n)
	for i := 0; i < n; i++ {
		out = append(out, queries[int(float64(i)*stride)])
	}
	return out
}

// Ranker produces the top-k items for a temporal query. The two
// implementations are brute force (any model) and TA (topic models).
type Ranker func(u, t, k int, exclude topk.Exclude) []topk.Result

// BruteForceRanker ranks with a full catalog scan of the model.
func BruteForceRanker(r model.Recommender) Ranker {
	return func(u, t, k int, exclude topk.Exclude) []topk.Result {
		res, _ := topk.BruteForce(r, u, t, k, exclude)
		return res
	}
}

// TARanker ranks with the Threshold Algorithm over a prebuilt index
// (per-query scratch comes from the index's searcher pool). Prefer
// EvaluateTA for whole evaluation runs: it batches all queries through
// Index.QueryBatch instead of paying a pool round-trip and result copy
// per query.
func TARanker(ix *topk.Index, ts model.TopicScorer) Ranker {
	return func(u, t, k int, exclude topk.Exclude) []topk.Result {
		res, _ := ix.Query(ts, u, t, k, exclude)
		return res
	}
}

// RankMetrics are the paper's three ranking metrics at one cutoff k,
// plus Recall and MRR (reciprocal rank of the first hit), which the
// paper does not plot but which make the curves easier to sanity-check.
type RankMetrics struct {
	Precision float64
	NDCG      float64
	F1        float64
	Recall    float64
	MRR       float64
}

// Curve is RankMetrics for k = 1..len(Curve); Curve[i] is the metric at
// k = i+1, the x-axis of Figures 6 and 7.
type Curve []RankMetrics

// At returns the metrics at cutoff k (1-based). It panics when k is
// outside the curve.
func (c Curve) At(k int) RankMetrics { return c[k-1] }

// Evaluate runs every query at cutoffs 1..maxK and returns the averaged
// metric curve. Queries are distributed across workers; the ranker must
// be safe for concurrent use (all models in this module are, after
// training).
func Evaluate(rank Ranker, queries []Query, maxK, workers int) Curve {
	if maxK <= 0 || len(queries) == 0 {
		return nil
	}
	sums := make([]RankMetrics, maxK)
	var mu sync.Mutex
	model.ParallelRanges(len(queries), model.Workers(workers), func(_, lo, hi int) {
		local := make([]RankMetrics, maxK)
		for i := lo; i < hi; i++ {
			q := queries[i]
			exclude := func(v int) bool { return q.Train[v] }
			res := rank(q.U, q.T, maxK, exclude)
			accumulate(local, res, q.Test, maxK)
		}
		mu.Lock()
		for k := range sums {
			sums[k].Precision += local[k].Precision
			sums[k].NDCG += local[k].NDCG
			sums[k].F1 += local[k].F1
			sums[k].Recall += local[k].Recall
			sums[k].MRR += local[k].MRR
		}
		mu.Unlock()
	})
	return averageCurve(sums, len(queries))
}

// EvaluateTA is Evaluate specialized to the Threshold Algorithm: the
// whole query set goes through Index.QueryBatch, so each worker reuses
// one pooled searcher instead of allocating per-query scratch. The
// resulting curve is identical to Evaluate(TARanker(ix, ts), ...).
func EvaluateTA(ix *topk.Index, ts model.TopicScorer, queries []Query, maxK, workers int) Curve {
	if maxK <= 0 || len(queries) == 0 {
		return nil
	}
	batch := make([]topk.BatchQuery, len(queries))
	for i, q := range queries {
		train := q.Train
		var exclude topk.Exclude
		if len(train) > 0 {
			exclude = func(v int) bool { return train[v] }
		}
		batch[i] = topk.BatchQuery{U: q.U, T: q.T, K: maxK, Exclude: exclude}
	}
	res := ix.QueryBatch(ts, batch, workers)
	sums := make([]RankMetrics, maxK)
	for i, r := range res {
		accumulate(sums, r.Results, queries[i].Test, maxK)
	}
	return averageCurve(sums, len(queries))
}

// averageCurve divides per-cutoff metric sums by the query count.
func averageCurve(sums []RankMetrics, queries int) Curve {
	n := float64(queries)
	out := make(Curve, len(sums))
	for k := range sums {
		out[k] = RankMetrics{
			Precision: sums[k].Precision / n,
			NDCG:      sums[k].NDCG / n,
			F1:        sums[k].F1 / n,
			Recall:    sums[k].Recall / n,
			MRR:       sums[k].MRR / n,
		}
	}
	return out
}

// accumulate folds one query's ranked list into the running metric sums
// for every prefix cutoff.
func accumulate(sums []RankMetrics, res []topk.Result, test map[int]bool, maxK int) {
	hits := 0
	dcg := 0.0
	firstHit := 0 // 1-based rank of the first hit, 0 = none yet
	numTest := len(test)
	for k := 1; k <= maxK; k++ {
		if k-1 < len(res) && test[res[k-1].Item] {
			hits++
			dcg += 1 / math.Log2(float64(k)+1)
			if firstHit == 0 {
				firstHit = k
			}
		}
		precision := float64(hits) / float64(k)
		recall := 0.0
		if numTest > 0 {
			recall = float64(hits) / float64(numTest)
		}
		f1 := 0.0
		if precision+recall > 0 {
			f1 = 2 * precision * recall / (precision + recall)
		}
		ndcg := 0.0
		if ideal := idcg(k, numTest); ideal > 0 {
			ndcg = dcg / ideal
		}
		sums[k-1].Precision += precision
		sums[k-1].NDCG += ndcg
		sums[k-1].F1 += f1
		sums[k-1].Recall += recall
		if firstHit > 0 {
			sums[k-1].MRR += 1 / float64(firstHit)
		}
	}
}

// idcg is the DCG of the perfect ranking: the first min(k, numTest)
// positions are all hits.
func idcg(k, numTest int) float64 {
	n := k
	if numTest < n {
		n = numTest
	}
	var s float64
	for i := 1; i <= n; i++ {
		s += 1 / math.Log2(float64(i)+1)
	}
	return s
}

// InterestDrift measures the paper's future-work "time-evolving user
// interest" diagnostic: given per-user interest distributions estimated
// on two halves of the timeline, it returns each user's cosine
// similarity between halves (1 = perfectly stable interest). Users
// missing from either half are skipped (reported as NaN).
func InterestDrift(first, second [][]float64) []float64 {
	n := len(first)
	if len(second) < n {
		n = len(second)
	}
	out := make([]float64, n)
	for u := 0; u < n; u++ {
		out[u] = cosine(first[u], second[u])
	}
	return out
}

func cosine(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return math.NaN()
	}
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na <= 0 || nb <= 0 {
		return math.NaN()
	}
	return dot / math.Sqrt(na*nb)
}

// HoldoutAccuracy is a convenience wrapper: split the cuboid 80/20 with
// the given rng-seeded split already applied, evaluate a recommender
// brute-force, and return the curve. Used by examples.
func HoldoutAccuracy(r model.Recommender, split dataset.Split, maxK int) Curve {
	return Evaluate(BruteForceRanker(r), BuildQueries(split), maxK, 0)
}
