package eval

import (
	"math"
	"testing"

	"tcam/internal/cuboid"
	"tcam/internal/dataset"
	"tcam/internal/topk"
)

func makeSplit(t *testing.T) dataset.Split {
	t.Helper()
	trainB := cuboid.NewBuilder(2, 2, 10)
	testB := cuboid.NewBuilder(2, 2, 10)
	// user 0, t 0: train {0,1}, test {2,3}
	trainB.MustAdd(0, 0, 0, 1)
	trainB.MustAdd(0, 0, 1, 1)
	testB.MustAdd(0, 0, 2, 1)
	testB.MustAdd(0, 0, 3, 1)
	// user 1, t 1: train {5}, test {6}
	trainB.MustAdd(1, 1, 5, 1)
	testB.MustAdd(1, 1, 6, 1)
	// user 1, t 0: train only (no query)
	trainB.MustAdd(1, 0, 9, 1)
	return dataset.Split{Train: trainB.Build(), Test: testB.Build()}
}

func TestBuildQueries(t *testing.T) {
	qs := BuildQueries(makeSplit(t))
	if len(qs) != 2 {
		t.Fatalf("got %d queries, want 2", len(qs))
	}
	q0 := qs[0]
	if q0.U != 0 || q0.T != 0 || !q0.Test[2] || !q0.Test[3] || !q0.Train[0] || !q0.Train[1] {
		t.Errorf("query 0 = %+v", q0)
	}
	q1 := qs[1]
	if q1.U != 1 || q1.T != 1 || !q1.Test[6] || !q1.Train[5] {
		t.Errorf("query 1 = %+v", q1)
	}
}

func TestSampleQueries(t *testing.T) {
	qs := make([]Query, 10)
	for i := range qs {
		qs[i].U = i
	}
	sampled := SampleQueries(qs, 3)
	if len(sampled) != 3 {
		t.Fatalf("sampled %d, want 3", len(sampled))
	}
	if sampled[0].U != 0 {
		t.Error("sampling should keep the first query")
	}
	if got := SampleQueries(qs, 20); len(got) != 10 {
		t.Error("oversampling should return all queries")
	}
	if got := SampleQueries(qs, 0); len(got) != 10 {
		t.Error("n<=0 should return all queries")
	}
}

// fixedRanker returns a predetermined ranking regardless of the query.
func fixedRanker(items ...int) Ranker {
	return func(u, t, k int, exclude topk.Exclude) []topk.Result {
		var out []topk.Result
		for _, v := range items {
			if exclude != nil && exclude(v) {
				continue
			}
			if len(out) == k {
				break
			}
			out = append(out, topk.Result{Item: v, Score: 1})
		}
		return out
	}
}

func TestEvaluatePerfectRanker(t *testing.T) {
	// One query, test = {2,3}; ranker returns exactly them first.
	sp := makeSplit(t)
	qs := BuildQueries(sp)[:1]
	curve := Evaluate(fixedRanker(2, 3, 7, 8), qs, 4, 1)
	if len(curve) != 4 {
		t.Fatalf("curve length %d", len(curve))
	}
	// k=1: P=1, NDCG=1, recall=1/2, F1=2*(1*0.5)/1.5=2/3.
	m1 := curve.At(1)
	if math.Abs(m1.Precision-1) > 1e-12 || math.Abs(m1.NDCG-1) > 1e-12 {
		t.Errorf("k=1 metrics = %+v", m1)
	}
	if math.Abs(m1.F1-2.0/3) > 1e-12 {
		t.Errorf("k=1 F1 = %v, want 2/3", m1.F1)
	}
	// k=2: both hit → P=1, NDCG=1, recall=1 → F1=1; MRR=1 (hit at 1).
	m2 := curve.At(2)
	if math.Abs(m2.Precision-1) > 1e-12 || math.Abs(m2.NDCG-1) > 1e-12 || math.Abs(m2.F1-1) > 1e-12 {
		t.Errorf("k=2 metrics = %+v", m2)
	}
	if math.Abs(m2.Recall-1) > 1e-12 || math.Abs(m2.MRR-1) > 1e-12 {
		t.Errorf("k=2 recall/MRR = %v/%v, want 1/1", m2.Recall, m2.MRR)
	}
	// k=4: P=0.5, recall=1, F1=2/3; NDCG=1 (IDCG capped at numTest).
	m4 := curve.At(4)
	if math.Abs(m4.Precision-0.5) > 1e-12 || math.Abs(m4.NDCG-1) > 1e-12 {
		t.Errorf("k=4 metrics = %+v", m4)
	}
}

func TestEvaluateMissRanker(t *testing.T) {
	sp := makeSplit(t)
	qs := BuildQueries(sp)[:1]
	curve := Evaluate(fixedRanker(7, 8, 9), qs, 3, 1)
	for k := 1; k <= 3; k++ {
		m := curve.At(k)
		if m.Precision != 0 || m.NDCG != 0 || m.F1 != 0 {
			t.Errorf("all-miss metrics at k=%d = %+v", k, m)
		}
	}
}

func TestEvaluateRankPositionMatters(t *testing.T) {
	sp := makeSplit(t)
	qs := BuildQueries(sp)[:1]
	hitFirst := Evaluate(fixedRanker(2, 7), qs, 2, 1).At(2)
	hitSecond := Evaluate(fixedRanker(7, 2), qs, 2, 1).At(2)
	if hitFirst.NDCG <= hitSecond.NDCG {
		t.Errorf("NDCG should reward earlier hits: first %v vs second %v", hitFirst.NDCG, hitSecond.NDCG)
	}
	if hitFirst.Precision != hitSecond.Precision {
		t.Errorf("precision should not depend on position at same k")
	}
	if math.Abs(hitFirst.MRR-1) > 1e-12 || math.Abs(hitSecond.MRR-0.5) > 1e-12 {
		t.Errorf("MRR = %v/%v, want 1 and 0.5", hitFirst.MRR, hitSecond.MRR)
	}
}

func TestEvaluateExcludesTrainItems(t *testing.T) {
	sp := makeSplit(t)
	qs := BuildQueries(sp)[:1]
	// Ranker tries to return train items 0,1 first; they must be
	// filtered so the hits at position 1-2 are the test items.
	curve := Evaluate(fixedRanker(0, 1, 2, 3), qs, 2, 1)
	if math.Abs(curve.At(2).Precision-1) > 1e-12 {
		t.Errorf("train items not excluded: P@2 = %v", curve.At(2).Precision)
	}
}

func TestEvaluateAveragesAcrossQueries(t *testing.T) {
	sp := makeSplit(t)
	qs := BuildQueries(sp)
	// Ranker hits only query 0 (items 2,3 are test for q0; item 6 for
	// q1 never returned).
	curve := Evaluate(fixedRanker(2, 3), qs, 1, 2)
	if math.Abs(curve.At(1).Precision-0.5) > 1e-12 {
		t.Errorf("P@1 = %v, want 0.5 (one of two queries hit)", curve.At(1).Precision)
	}
}

func TestEvaluateEmpty(t *testing.T) {
	if Evaluate(fixedRanker(1), nil, 5, 1) != nil {
		t.Error("no queries should yield nil curve")
	}
	sp := makeSplit(t)
	if Evaluate(fixedRanker(1), BuildQueries(sp), 0, 1) != nil {
		t.Error("maxK=0 should yield nil curve")
	}
}

func TestIDCG(t *testing.T) {
	if got := idcg(3, 10); math.Abs(got-(1+1/math.Log2(3)+1/math.Log2(4))) > 1e-12 {
		t.Errorf("idcg(3,10) = %v", got)
	}
	if got := idcg(10, 1); math.Abs(got-1) > 1e-12 {
		t.Errorf("idcg(10,1) = %v, want 1", got)
	}
	if idcg(5, 0) != 0 {
		t.Error("idcg with no test items should be 0")
	}
}

func TestInterestDrift(t *testing.T) {
	first := [][]float64{{1, 0}, {0.5, 0.5}, {0, 0}}
	second := [][]float64{{1, 0}, {0, 1}, {1, 0}}
	drift := InterestDrift(first, second)
	if math.Abs(drift[0]-1) > 1e-12 {
		t.Errorf("identical interest cosine = %v, want 1", drift[0])
	}
	if math.Abs(drift[1]-math.Sqrt(0.5)) > 1e-9 {
		t.Errorf("half-overlap cosine = %v, want %v", drift[1], math.Sqrt(0.5))
	}
	if !math.IsNaN(drift[2]) {
		t.Errorf("zero-vector cosine = %v, want NaN", drift[2])
	}
}

// miniScorer is a tiny deterministic TopicScorer for exercising the
// TA evaluation paths without training a model.
type miniScorer struct {
	topics  [][]float64 // K×V
	queries [][]float64 // (u*2+t)-indexed ϑq
}

func (m *miniScorer) Name() string               { return "mini" }
func (m *miniScorer) NumItems() int              { return len(m.topics[0]) }
func (m *miniScorer) NumTopics() int             { return len(m.topics) }
func (m *miniScorer) TopicItems(z int) []float64 { return m.topics[z] }
func (m *miniScorer) QueryWeights(u, t int) []float64 {
	return m.queries[u*2+t]
}
func (m *miniScorer) Score(u, t, v int) float64 {
	var s float64
	for z, w := range m.QueryWeights(u, t) {
		s += w * m.topics[z][v]
	}
	return s
}

// EvaluateTA (the batch serving path) must produce the exact curve of
// the per-query TARanker evaluation.
func TestEvaluateTAMatchesTARanker(t *testing.T) {
	m := &miniScorer{
		topics: [][]float64{
			{0.05, 0.30, 0.10, 0.20, 0.05, 0.10, 0.15, 0.02, 0.02, 0.01},
			{0.20, 0.02, 0.25, 0.05, 0.15, 0.03, 0.05, 0.10, 0.10, 0.05},
		},
		queries: [][]float64{
			{0.7, 0.3},
			{0.2, 0.8},
			{0.5, 0.5},
			{0.9, 0.1},
		},
	}
	ix := topk.BuildIndex(m)
	queries := BuildQueries(makeSplit(t))
	for _, workers := range []int{1, 3} {
		batch := EvaluateTA(ix, m, queries, 5, workers)
		perQuery := Evaluate(TARanker(ix, m), queries, 5, workers)
		if len(batch) != len(perQuery) {
			t.Fatalf("curve lengths %d vs %d", len(batch), len(perQuery))
		}
		for k := range batch {
			if batch[k] != perQuery[k] {
				t.Errorf("workers=%d k=%d: batch %+v != per-query %+v", workers, k+1, batch[k], perQuery[k])
			}
		}
	}
	if EvaluateTA(ix, m, nil, 5, 0) != nil {
		t.Error("no queries should yield nil curve")
	}
	if EvaluateTA(ix, m, queries, 0, 0) != nil {
		t.Error("maxK<=0 should yield nil curve")
	}
}
