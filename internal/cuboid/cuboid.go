// Package cuboid implements the paper's central data structure, the
// rating cuboid (Definition 3): a sparse N×T×V tensor whose cell
// (u, t, v) stores the rating score user u assigned to item v during time
// interval t. It also provides the user-document view (Definition 2),
// per-interval postings, aggregate statistics and gob serialization.
//
// The cuboid is stored sparsely, CSR-style, in two structure-of-arrays
// views so EM inference touches only nonzero cells — O(nnz·K) per
// iteration rather than O(N·T·V·K):
//
//   - the by-user view: parallel ts/vs/scores arrays in (U, T, V) order
//     with a userPtr row pointer, so a per-user E-step is a linear scan
//     over three contiguous slices with no index indirection;
//   - the by-interval view: parallel us/vs/scores arrays grouped by
//     interval (cells in (T, U, V) order) with a timePtr row pointer,
//     for the item-weighting pass of Section 3.3 and interval-major
//     trainers.
//
// A merged []Cell slice is kept alongside for serialization and callers
// that want whole cells; its order is exactly the by-user view's order,
// so index i means the same cell in both.
package cuboid

import (
	"fmt"
	"math"
	"sort"
)

// Cell is one nonzero entry of the rating cuboid: user U rated item V
// with score Score during time interval T. Indices are dense and
// zero-based.
type Cell struct {
	U, T, V int32
	Score   float64
}

// Cuboid is an immutable sparse rating cuboid. Build one with a Builder.
type Cuboid struct {
	numUsers     int
	numIntervals int
	numItems     int

	cells []Cell // sorted by (U, T, V), duplicates merged

	// By-user CSR view: columnar copies of cells (same order), rows cut
	// by userPtr. ts[i], vs[i], scores[i] describe cells[i].
	ts      []int32
	vs      []int32
	scores  []float64
	userPtr []int32 // len numUsers+1

	// By-interval CSR view: cells regrouped by T (within an interval the
	// order is ascending (U, V), i.e. ascending global cell index), rows
	// cut by timePtr.
	tUs     []int32
	tVs     []int32
	tScores []float64
	timePtr []int32 // len numIntervals+1
}

// Builder accumulates ratings and produces a Cuboid. Duplicate
// (u, t, v) triples are merged by summing their scores, matching the
// paper's use of usage frequency as the rating score.
type Builder struct {
	numUsers     int
	numIntervals int
	numItems     int
	cells        []Cell
}

// NewBuilder returns a Builder for a cuboid with the given fixed
// dimensions. All of Add's indices must stay below these bounds.
func NewBuilder(numUsers, numIntervals, numItems int) *Builder {
	if numUsers < 0 || numIntervals < 0 || numItems < 0 {
		panic("cuboid: negative dimension")
	}
	return &Builder{numUsers: numUsers, numIntervals: numIntervals, numItems: numItems}
}

// Add records a rating of score by user u on item v during interval t.
// It returns an error when any index is out of range or the score is not
// positive.
func (b *Builder) Add(u, t, v int, score float64) error {
	if u < 0 || u >= b.numUsers {
		return fmt.Errorf("cuboid: user %d out of range [0,%d)", u, b.numUsers)
	}
	if t < 0 || t >= b.numIntervals {
		return fmt.Errorf("cuboid: interval %d out of range [0,%d)", t, b.numIntervals)
	}
	if v < 0 || v >= b.numItems {
		return fmt.Errorf("cuboid: item %d out of range [0,%d)", v, b.numItems)
	}
	if score <= 0 {
		return fmt.Errorf("cuboid: non-positive score %v", score)
	}
	b.cells = append(b.cells, Cell{U: int32(u), T: int32(t), V: int32(v), Score: score})
	return nil
}

// MustAdd is Add for callers with already-validated indices; it panics on
// error and is used by generators and tests.
func (b *Builder) MustAdd(u, t, v int, score float64) {
	if err := b.Add(u, t, v, score); err != nil {
		//tcamvet:ignore panicfmt re-panics an Add error that already carries the "cuboid:" prefix
		panic(err)
	}
}

// Build sorts, merges and freezes the accumulated ratings into a Cuboid.
// The Builder can be reused afterwards; the built Cuboid is independent.
func (b *Builder) Build() *Cuboid {
	cells := append([]Cell(nil), b.cells...)
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].U != cells[j].U {
			return cells[i].U < cells[j].U
		}
		if cells[i].T != cells[j].T {
			return cells[i].T < cells[j].T
		}
		return cells[i].V < cells[j].V
	})
	merged := cells[:0]
	for _, c := range cells {
		n := len(merged)
		if n > 0 && merged[n-1].U == c.U && merged[n-1].T == c.T && merged[n-1].V == c.V {
			merged[n-1].Score += c.Score
			continue
		}
		merged = append(merged, c)
	}
	return fromCells(b.numUsers, b.numIntervals, b.numItems, merged)
}

// fromCells freezes a (U, T, V)-sorted, deduplicated cell slice into a
// Cuboid, building both CSR views with a count-then-fill pass: one scan
// counts row sizes, a prefix sum turns them into row pointers, and one
// more scan writes every column entry into its final slot. No slice is
// ever grown by append, so construction costs O(1) allocations of exact
// size instead of O(nnz) small reallocations.
func fromCells(numUsers, numIntervals, numItems int, cells []Cell) *Cuboid {
	nnz := len(cells)
	if nnz > math.MaxInt32 {
		panic(fmt.Sprintf("cuboid: %d cells overflow the int32 CSR row pointers", nnz))
	}
	c := &Cuboid{
		numUsers:     numUsers,
		numIntervals: numIntervals,
		numItems:     numItems,
		cells:        cells,
		ts:           make([]int32, nnz),
		vs:           make([]int32, nnz),
		scores:       make([]float64, nnz),
		userPtr:      make([]int32, numUsers+1),
		tUs:          make([]int32, nnz),
		tVs:          make([]int32, nnz),
		tScores:      make([]float64, nnz),
		timePtr:      make([]int32, numIntervals+1),
	}
	for i := range cells {
		c.userPtr[cells[i].U+1]++
		c.timePtr[cells[i].T+1]++
	}
	for u := 0; u < numUsers; u++ {
		c.userPtr[u+1] += c.userPtr[u]
	}
	for t := 0; t < numIntervals; t++ {
		c.timePtr[t+1] += c.timePtr[t]
	}
	next := make([]int32, numIntervals)
	copy(next, c.timePtr[:numIntervals])
	for i := range cells {
		cell := &cells[i]
		c.ts[i], c.vs[i], c.scores[i] = cell.T, cell.V, cell.Score
		p := next[cell.T]
		next[cell.T] = p + 1
		c.tUs[p], c.tVs[p], c.tScores[p] = cell.U, cell.V, cell.Score
	}
	return c
}

// NumUsers returns N, the user-dimension size.
func (c *Cuboid) NumUsers() int { return c.numUsers }

// NumIntervals returns T, the time-dimension size.
func (c *Cuboid) NumIntervals() int { return c.numIntervals }

// NumItems returns V, the item-dimension size.
func (c *Cuboid) NumItems() int { return c.numItems }

// NNZ returns the number of nonzero cells.
func (c *Cuboid) NNZ() int { return len(c.cells) }

// Cells returns the merged cell slice sorted by (U, T, V). Callers must
// not modify it. Index i here addresses the same cell as index i of the
// CSR view.
func (c *Cuboid) Cells() []Cell { return c.cells }

// CSR returns the by-user structure-of-arrays view: parallel interval,
// item and score columns in Cells() order. Row i of the three slices
// describes Cells()[i]; user u's rows are the contiguous range returned
// by UserSpan. Callers must not modify the slices.
//
//tcam:hotpath
func (c *Cuboid) CSR() (ts, vs []int32, scores []float64) {
	return c.ts, c.vs, c.scores
}

// UserSpan returns the half-open range [lo, hi) of user u's cells in the
// CSR view (equivalently in Cells()), in (T, V) order.
//
//tcam:hotpath
func (c *Cuboid) UserSpan(u int) (lo, hi int) {
	return int(c.userPtr[u]), int(c.userPtr[u+1])
}

// IntervalCSR returns the by-interval structure-of-arrays view: parallel
// user, item and score columns grouped by interval. Interval t's rows
// are the contiguous range returned by IntervalSpan, in ascending (U, V)
// order. Callers must not modify the slices.
//
//tcam:hotpath
func (c *Cuboid) IntervalCSR() (us, vs []int32, scores []float64) {
	return c.tUs, c.tVs, c.tScores
}

// IntervalSpan returns the half-open range [lo, hi) of interval t's
// cells in the IntervalCSR view.
//
//tcam:hotpath
func (c *Cuboid) IntervalSpan(t int) (lo, hi int) {
	return int(c.timePtr[t]), int(c.timePtr[t+1])
}

// UserDocument returns user u's rating behaviors as (item, interval)
// pairs — the user document of Definition 2.
func (c *Cuboid) UserDocument(u int) []ItemTime {
	lo, hi := c.UserSpan(u)
	doc := make([]ItemTime, hi-lo)
	for i := range doc {
		doc[i] = ItemTime{Item: int(c.vs[lo+i]), Interval: int(c.ts[lo+i])}
	}
	return doc
}

// ItemTime is one entry of a user document: item rated during interval.
type ItemTime struct {
	Item     int
	Interval int
}

// TotalScore returns the sum of all cell scores (the EM normalizing
// mass).
func (c *Cuboid) TotalScore() float64 {
	var s float64
	for _, x := range c.scores {
		s += x
	}
	return s
}

// Scaled returns a copy of the cuboid whose cell (u,t,v) carries
// Score·weight(u,t,v). Weights must be positive; non-positive weights
// drop the cell. This implements Equation (20)'s weighted cuboid C̄.
func (c *Cuboid) Scaled(weight func(cell Cell) float64) *Cuboid {
	out := make([]Cell, 0, len(c.cells))
	for _, cell := range c.cells {
		w := weight(cell)
		if w <= 0 {
			continue
		}
		cell.Score *= w
		out = append(out, cell)
	}
	return fromCells(c.numUsers, c.numIntervals, c.numItems, out)
}

// Subset returns a cuboid containing only the cells for which keep
// returns true. Dimensions are preserved.
func (c *Cuboid) Subset(keep func(cell Cell) bool) *Cuboid {
	out := make([]Cell, 0, len(c.cells))
	for _, cell := range c.cells {
		if keep(cell) {
			out = append(out, cell)
		}
	}
	return fromCells(c.numUsers, c.numIntervals, c.numItems, out)
}

// ItemsOf returns the set of distinct items user u rated during interval
// t, ascending. Used by the evaluation protocol's per-(u,t) splits. It
// reads the CSR view directly: the user's rows are (T, V)-sorted, so the
// interval's items form one contiguous, already-ascending sub-range.
func (c *Cuboid) ItemsOf(u, t int) []int {
	lo, hi := c.UserSpan(u)
	for lo < hi && int(c.ts[lo]) < t {
		lo++
	}
	end := lo
	for end < hi && int(c.ts[end]) == t {
		end++
	}
	if end == lo {
		return nil
	}
	items := make([]int, end-lo)
	for i := range items {
		items[i] = int(c.vs[lo+i])
	}
	return items
}

// ActiveIntervals returns the intervals during which user u has at least
// one rating, ascending.
func (c *Cuboid) ActiveIntervals(u int) []int {
	var out []int
	lo, hi := c.UserSpan(u)
	last := int32(-1)
	for i := lo; i < hi; i++ {
		if c.ts[i] != last {
			last = c.ts[i]
			out = append(out, int(last))
		}
	}
	return out
}
