// Package cuboid implements the paper's central data structure, the
// rating cuboid (Definition 3): a sparse N×T×V tensor whose cell
// (u, t, v) stores the rating score user u assigned to item v during time
// interval t. It also provides the user-document view (Definition 2),
// per-interval postings, aggregate statistics and gob serialization.
//
// The cuboid is stored sparsely: a flat, deduplicated cell slice plus
// posting lists by user and by interval, so EM inference touches only
// nonzero cells — O(nnz·K) per iteration rather than O(N·T·V·K).
package cuboid

import (
	"fmt"
	"sort"
)

// Cell is one nonzero entry of the rating cuboid: user U rated item V
// with score Score during time interval T. Indices are dense and
// zero-based.
type Cell struct {
	U, T, V int32
	Score   float64
}

// Cuboid is an immutable sparse rating cuboid. Build one with a Builder.
type Cuboid struct {
	numUsers     int
	numIntervals int
	numItems     int

	cells  []Cell  // sorted by (U, T, V), duplicates merged
	byUser [][]int // cell indices per user, ascending
	byTime [][]int // cell indices per interval, ascending
}

// Builder accumulates ratings and produces a Cuboid. Duplicate
// (u, t, v) triples are merged by summing their scores, matching the
// paper's use of usage frequency as the rating score.
type Builder struct {
	numUsers     int
	numIntervals int
	numItems     int
	cells        []Cell
}

// NewBuilder returns a Builder for a cuboid with the given fixed
// dimensions. All of Add's indices must stay below these bounds.
func NewBuilder(numUsers, numIntervals, numItems int) *Builder {
	if numUsers < 0 || numIntervals < 0 || numItems < 0 {
		panic("cuboid: negative dimension")
	}
	return &Builder{numUsers: numUsers, numIntervals: numIntervals, numItems: numItems}
}

// Add records a rating of score by user u on item v during interval t.
// It returns an error when any index is out of range or the score is not
// positive.
func (b *Builder) Add(u, t, v int, score float64) error {
	if u < 0 || u >= b.numUsers {
		return fmt.Errorf("cuboid: user %d out of range [0,%d)", u, b.numUsers)
	}
	if t < 0 || t >= b.numIntervals {
		return fmt.Errorf("cuboid: interval %d out of range [0,%d)", t, b.numIntervals)
	}
	if v < 0 || v >= b.numItems {
		return fmt.Errorf("cuboid: item %d out of range [0,%d)", v, b.numItems)
	}
	if score <= 0 {
		return fmt.Errorf("cuboid: non-positive score %v", score)
	}
	b.cells = append(b.cells, Cell{U: int32(u), T: int32(t), V: int32(v), Score: score})
	return nil
}

// MustAdd is Add for callers with already-validated indices; it panics on
// error and is used by generators and tests.
func (b *Builder) MustAdd(u, t, v int, score float64) {
	if err := b.Add(u, t, v, score); err != nil {
		//tcamvet:ignore panicfmt re-panics an Add error that already carries the "cuboid:" prefix
		panic(err)
	}
}

// Build sorts, merges and freezes the accumulated ratings into a Cuboid.
// The Builder can be reused afterwards; the built Cuboid is independent.
func (b *Builder) Build() *Cuboid {
	cells := append([]Cell(nil), b.cells...)
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].U != cells[j].U {
			return cells[i].U < cells[j].U
		}
		if cells[i].T != cells[j].T {
			return cells[i].T < cells[j].T
		}
		return cells[i].V < cells[j].V
	})
	merged := cells[:0]
	for _, c := range cells {
		n := len(merged)
		if n > 0 && merged[n-1].U == c.U && merged[n-1].T == c.T && merged[n-1].V == c.V {
			merged[n-1].Score += c.Score
			continue
		}
		merged = append(merged, c)
	}
	return fromCells(b.numUsers, b.numIntervals, b.numItems, merged)
}

func fromCells(numUsers, numIntervals, numItems int, cells []Cell) *Cuboid {
	c := &Cuboid{
		numUsers:     numUsers,
		numIntervals: numIntervals,
		numItems:     numItems,
		cells:        cells,
		byUser:       make([][]int, numUsers),
		byTime:       make([][]int, numIntervals),
	}
	for i, cell := range cells {
		c.byUser[cell.U] = append(c.byUser[cell.U], i)
		c.byTime[cell.T] = append(c.byTime[cell.T], i)
	}
	return c
}

// NumUsers returns N, the user-dimension size.
func (c *Cuboid) NumUsers() int { return c.numUsers }

// NumIntervals returns T, the time-dimension size.
func (c *Cuboid) NumIntervals() int { return c.numIntervals }

// NumItems returns V, the item-dimension size.
func (c *Cuboid) NumItems() int { return c.numItems }

// NNZ returns the number of nonzero cells.
func (c *Cuboid) NNZ() int { return len(c.cells) }

// Cells returns the merged cell slice sorted by (U, T, V). Callers must
// not modify it.
func (c *Cuboid) Cells() []Cell { return c.cells }

// UserCells returns the indices into Cells of user u's ratings, in
// (T, V) order. Callers must not modify the slice.
func (c *Cuboid) UserCells(u int) []int { return c.byUser[u] }

// IntervalCells returns the indices into Cells of the ratings made during
// interval t. Callers must not modify the slice.
func (c *Cuboid) IntervalCells(t int) []int { return c.byTime[t] }

// UserDocument returns user u's rating behaviors as (item, interval)
// pairs — the user document of Definition 2.
func (c *Cuboid) UserDocument(u int) []ItemTime {
	idx := c.byUser[u]
	doc := make([]ItemTime, len(idx))
	for i, ci := range idx {
		doc[i] = ItemTime{Item: int(c.cells[ci].V), Interval: int(c.cells[ci].T)}
	}
	return doc
}

// ItemTime is one entry of a user document: item rated during interval.
type ItemTime struct {
	Item     int
	Interval int
}

// TotalScore returns the sum of all cell scores (the EM normalizing
// mass).
func (c *Cuboid) TotalScore() float64 {
	var s float64
	for i := range c.cells {
		s += c.cells[i].Score
	}
	return s
}

// Scaled returns a copy of the cuboid whose cell (u,t,v) carries
// Score·weight(u,t,v). Weights must be positive; non-positive weights
// drop the cell. This implements Equation (20)'s weighted cuboid C̄.
func (c *Cuboid) Scaled(weight func(cell Cell) float64) *Cuboid {
	out := make([]Cell, 0, len(c.cells))
	for _, cell := range c.cells {
		w := weight(cell)
		if w <= 0 {
			continue
		}
		cell.Score *= w
		out = append(out, cell)
	}
	return fromCells(c.numUsers, c.numIntervals, c.numItems, out)
}

// Subset returns a cuboid containing only the cells for which keep
// returns true. Dimensions are preserved.
func (c *Cuboid) Subset(keep func(cell Cell) bool) *Cuboid {
	out := make([]Cell, 0, len(c.cells))
	for _, cell := range c.cells {
		if keep(cell) {
			out = append(out, cell)
		}
	}
	return fromCells(c.numUsers, c.numIntervals, c.numItems, out)
}

// ItemsOf returns the set of distinct items user u rated during interval
// t, ascending. Used by the evaluation protocol's per-(u,t) splits.
func (c *Cuboid) ItemsOf(u, t int) []int {
	var items []int
	for _, ci := range c.byUser[u] {
		cell := c.cells[ci]
		if int(cell.T) == t {
			items = append(items, int(cell.V))
		}
	}
	return items
}

// ActiveIntervals returns the intervals during which user u has at least
// one rating, ascending.
func (c *Cuboid) ActiveIntervals(u int) []int {
	var out []int
	last := -1
	for _, ci := range c.byUser[u] {
		t := int(c.cells[ci].T)
		if t != last {
			out = append(out, t)
			last = t
		}
	}
	return out
}
