package cuboid

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func buildSample(t *testing.T) *Cuboid {
	t.Helper()
	b := NewBuilder(3, 2, 4)
	// user 0: items 0,1 in t0; item 2 in t1
	b.MustAdd(0, 0, 0, 1)
	b.MustAdd(0, 0, 1, 2)
	b.MustAdd(0, 1, 2, 1)
	// user 1: item 0 twice in t0 (merged), item 3 in t1
	b.MustAdd(1, 0, 0, 1)
	b.MustAdd(1, 0, 0, 3)
	b.MustAdd(1, 1, 3, 1)
	// user 2: nothing
	return b.Build()
}

func TestBuilderMergesDuplicates(t *testing.T) {
	c := buildSample(t)
	if c.NNZ() != 5 {
		t.Fatalf("NNZ = %d, want 5 (duplicate merged)", c.NNZ())
	}
	for _, cell := range c.Cells() {
		if cell.U == 1 && cell.T == 0 && cell.V == 0 {
			if cell.Score != 4 {
				t.Errorf("merged score = %v, want 4", cell.Score)
			}
			return
		}
	}
	t.Fatal("merged cell not found")
}

func TestBuilderValidation(t *testing.T) {
	b := NewBuilder(2, 2, 2)
	tests := []struct {
		name       string
		u, tt, v   int
		score      float64
		wantErrSub bool
	}{
		{"ok", 0, 0, 0, 1, false},
		{"user high", 2, 0, 0, 1, true},
		{"user negative", -1, 0, 0, 1, true},
		{"interval high", 0, 2, 0, 1, true},
		{"item high", 0, 0, 2, 1, true},
		{"zero score", 0, 0, 0, 0, true},
		{"negative score", 0, 0, 0, -2, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := b.Add(tc.u, tc.tt, tc.v, tc.score)
			if (err != nil) != tc.wantErrSub {
				t.Errorf("Add error = %v, wantErr %v", err, tc.wantErrSub)
			}
		})
	}
}

func TestCellsSorted(t *testing.T) {
	c := buildSample(t)
	cells := c.Cells()
	for i := 1; i < len(cells); i++ {
		a, b := cells[i-1], cells[i]
		if a.U > b.U || (a.U == b.U && a.T > b.T) || (a.U == b.U && a.T == b.T && a.V >= b.V) {
			t.Fatalf("cells not strictly sorted at %d: %+v then %+v", i, a, b)
		}
	}
}

func TestSpans(t *testing.T) {
	c := buildSample(t)
	if lo, hi := c.UserSpan(0); hi-lo != 3 {
		t.Errorf("user 0 span [%d,%d), want 3 cells", lo, hi)
	}
	if lo, hi := c.UserSpan(2); hi != lo {
		t.Errorf("user 2 span [%d,%d), want empty", lo, hi)
	}
	if lo, hi := c.IntervalSpan(0); hi-lo != 3 {
		t.Errorf("interval 0 span [%d,%d), want 3 cells", lo, hi)
	}
	if lo, hi := c.IntervalSpan(1); hi-lo != 2 {
		t.Errorf("interval 1 span [%d,%d), want 2 cells", lo, hi)
	}
}

func TestUserDocument(t *testing.T) {
	c := buildSample(t)
	doc := c.UserDocument(0)
	want := []ItemTime{{Item: 0, Interval: 0}, {Item: 1, Interval: 0}, {Item: 2, Interval: 1}}
	if !reflect.DeepEqual(doc, want) {
		t.Errorf("UserDocument = %v, want %v", doc, want)
	}
}

func TestItemsOfAndActiveIntervals(t *testing.T) {
	c := buildSample(t)
	if got := c.ItemsOf(0, 0); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("ItemsOf(0,0) = %v, want [0 1]", got)
	}
	if got := c.ItemsOf(0, 1); !reflect.DeepEqual(got, []int{2}) {
		t.Errorf("ItemsOf(0,1) = %v, want [2]", got)
	}
	if got := c.ActiveIntervals(0); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("ActiveIntervals(0) = %v, want [0 1]", got)
	}
	if got := c.ActiveIntervals(2); got != nil {
		t.Errorf("ActiveIntervals(2) = %v, want nil", got)
	}
}

func TestScaled(t *testing.T) {
	c := buildSample(t)
	doubled := c.Scaled(func(Cell) float64 { return 2 })
	if doubled.TotalScore() != 2*c.TotalScore() {
		t.Errorf("Scaled total = %v, want %v", doubled.TotalScore(), 2*c.TotalScore())
	}
	// Zero weight drops cells.
	dropped := c.Scaled(func(cell Cell) float64 {
		if cell.T == 1 {
			return 0
		}
		return 1
	})
	if dropped.NNZ() != 3 {
		t.Errorf("Scaled with dropping NNZ = %d, want 3", dropped.NNZ())
	}
	// Original untouched.
	if c.NNZ() != 5 {
		t.Error("Scaled mutated the source cuboid")
	}
}

func TestSubset(t *testing.T) {
	c := buildSample(t)
	onlyT0 := c.Subset(func(cell Cell) bool { return cell.T == 0 })
	if onlyT0.NNZ() != 3 {
		t.Errorf("Subset NNZ = %d, want 3", onlyT0.NNZ())
	}
	if onlyT0.NumIntervals() != c.NumIntervals() {
		t.Error("Subset changed dimensions")
	}
}

func TestComputeStats(t *testing.T) {
	c := buildSample(t)
	s := ComputeStats(c)
	if s.RatedUsers != 2 {
		t.Errorf("RatedUsers = %d, want 2", s.RatedUsers)
	}
	if s.RatedItems != 4 {
		t.Errorf("RatedItems = %d, want 4", s.RatedItems)
	}
	if s.ItemUsers[0] != 2 { // item 0 rated by users 0 and 1
		t.Errorf("ItemUsers[0] = %d, want 2", s.ItemUsers[0])
	}
	if s.IntervalUsers[0] != 2 || s.IntervalUsers[1] != 2 {
		t.Errorf("IntervalUsers = %v, want [2 2]", s.IntervalUsers)
	}
	if s.TotalScore != 9 {
		t.Errorf("TotalScore = %v, want 9", s.TotalScore)
	}
}

func TestItemIntervalUsers(t *testing.T) {
	c := buildSample(t)
	iu := ItemIntervalUsers(c)
	if iu[0][0] != 2 {
		t.Errorf("Nt(v=0,t=0) = %d, want 2", iu[0][0])
	}
	if iu[1][2] != 1 {
		t.Errorf("Nt(v=2,t=1) = %d, want 1", iu[1][2])
	}
	if _, ok := iu[1][0]; ok {
		t.Error("Nt(v=0,t=1) present, want absent")
	}
}

func TestItemFrequencySeries(t *testing.T) {
	c := buildSample(t)
	series := ItemFrequencySeries(c, 0)
	if series[0] != 2 || series[1] != 0 {
		t.Errorf("series = %v, want [2 0]", series)
	}
	norm := NormalizeSeries(series)
	if norm[0] != 1 {
		t.Errorf("normalized peak = %v, want 1", norm[0])
	}
	zero := NormalizeSeries([]float64{0, 0})
	if zero[0] != 0 || zero[1] != 0 {
		t.Errorf("zero series normalized = %v, want zeros", zero)
	}
}

func TestRoundtrip(t *testing.T) {
	c := buildSample(t)
	var buf bytes.Buffer
	if err := c.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.NumUsers() != c.NumUsers() || got.NumIntervals() != c.NumIntervals() || got.NumItems() != c.NumItems() {
		t.Fatal("roundtrip changed dimensions")
	}
	if !reflect.DeepEqual(got.Cells(), c.Cells()) {
		t.Error("roundtrip changed cells")
	}
	gotLo, gotHi := got.UserSpan(1)
	wantLo, wantHi := c.UserSpan(1)
	if gotLo != wantLo || gotHi != wantHi {
		t.Error("roundtrip lost CSR row pointers")
	}
}

func TestReadRejectsUnsortedCells(t *testing.T) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	wire := struct {
		NumUsers, NumIntervals, NumItems int
		Cells                            []Cell
	}{
		NumUsers: 2, NumIntervals: 2, NumItems: 2,
		Cells: []Cell{
			{U: 1, T: 0, V: 0, Score: 1},
			{U: 0, T: 0, V: 1, Score: 1},
		},
	}
	if err := enc.Encode(&wire); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err == nil {
		t.Error("Read accepted cells out of (U,T,V) order")
	}
}

func TestReadRejectsCorruptCells(t *testing.T) {
	// Hand-craft a wire struct with an out-of-range cell via a legal
	// cuboid then larger dims... simplest: encode wire directly.
	c := buildSample(t)
	var buf bytes.Buffer
	if err := c.Write(&buf); err != nil {
		t.Fatal(err)
	}
	// Truncated stream must error.
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Error("Read accepted a truncated stream")
	}
}

// Property: for random rating sets, Build is idempotent under
// re-insertion order (sorting + merging makes it canonical) and
// roundtrips through serialization.
func TestBuildCanonicalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		const nu, nt, nv = 5, 4, 6
		type key struct{ u, t, v int }
		n := r.Intn(40) + 1
		ratings := make([]key, n)
		for i := range ratings {
			ratings[i] = key{r.Intn(nu), r.Intn(nt), r.Intn(nv)}
		}
		b1 := NewBuilder(nu, nt, nv)
		for _, k := range ratings {
			b1.MustAdd(k.u, k.t, k.v, 1)
		}
		// Shuffled insertion order.
		b2 := NewBuilder(nu, nt, nv)
		perm := rng.Perm(n)
		for _, i := range perm {
			k := ratings[i]
			b2.MustAdd(k.u, k.t, k.v, 1)
		}
		c1, c2 := b1.Build(), b2.Build()
		if !reflect.DeepEqual(c1.Cells(), c2.Cells()) {
			return false
		}
		var buf bytes.Buffer
		if err := c1.Write(&buf); err != nil {
			return false
		}
		c3, err := Read(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(c1.Cells(), c3.Cells())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: the two CSR views partition the cell set. Walking UserSpan
// for every user enumerates exactly Cells() in order (CSR index i is
// Cells() index i), and walking IntervalSpan for every interval visits
// each cell exactly once with matching coordinates — including cuboids
// with empty users and empty intervals.
func TestCSRMatchesCellsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Small dims with a low fill rate so some users and intervals
		// stay empty; occasionally build an entirely empty cuboid.
		nu, nt, nv := 2+r.Intn(7), 1+r.Intn(6), 2+r.Intn(8)
		b := NewBuilder(nu, nt, nv)
		for i := r.Intn(40); i > 0; i-- {
			b.MustAdd(r.Intn(nu), r.Intn(nt), r.Intn(nv), 1+r.Float64())
		}
		c := b.Build()
		cells := c.Cells()
		ts, vs, scores := c.CSR()
		if len(ts) != len(cells) || len(vs) != len(cells) || len(scores) != len(cells) {
			return false
		}
		// By-user view: spans are contiguous, cover [0, NNZ), and the
		// columns reproduce every cell in Cells() order.
		next := 0
		for u := 0; u < c.NumUsers(); u++ {
			lo, hi := c.UserSpan(u)
			if lo != next || hi < lo {
				return false
			}
			for i := lo; i < hi; i++ {
				cell := cells[i]
				if int(cell.U) != u || ts[i] != cell.T || vs[i] != cell.V || scores[i] != cell.Score {
					return false
				}
			}
			next = hi
		}
		if next != c.NNZ() {
			return false
		}
		// By-interval view: spans partition the cells by T, each cell
		// visited exactly once, in ascending global-cell order within an
		// interval.
		us, tvs, tscores := c.IntervalCSR()
		seen := make([]bool, c.NNZ())
		next = 0
		for tt := 0; tt < c.NumIntervals(); tt++ {
			lo, hi := c.IntervalSpan(tt)
			if lo != next || hi < lo {
				return false
			}
			prev := -1
			for i := lo; i < hi; i++ {
				// Locate the unique matching cell in the canonical slice.
				ci := -1
				for j, cell := range cells {
					if !seen[j] && cell.U == us[i] && int(cell.T) == tt && cell.V == tvs[i] && cell.Score == tscores[i] {
						ci = j
						break
					}
				}
				if ci < 0 || ci < prev {
					return false
				}
				seen[ci] = true
				prev = ci
			}
			next = hi
		}
		if next != c.NNZ() {
			return false
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Construction must stay count-then-fill: a handful of exact-size
// allocations per cuboid, not O(nnz) append growth. The bound is loose
// (a cuboid needs ~10 backing arrays plus the struct) so it only trips
// on a regression back to incremental growth.
func TestBuildAllocationBound(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	b := NewBuilder(50, 8, 60)
	for i := 0; i < 2000; i++ {
		b.MustAdd(r.Intn(50), r.Intn(8), r.Intn(60), 1+r.Float64())
	}
	base := b.Build()
	allocs := testing.AllocsPerRun(10, func() {
		fromCells(base.numUsers, base.numIntervals, base.numItems, base.cells)
	})
	if allocs > 16 {
		t.Errorf("fromCells allocates %v times per build, want <= 16 (count-then-fill regressed)", allocs)
	}
	scaledAllocs := testing.AllocsPerRun(10, func() {
		base.Scaled(func(Cell) float64 { return 2 })
	})
	if scaledAllocs > 20 {
		t.Errorf("Scaled allocates %v times, want <= 20", scaledAllocs)
	}
}
