package cuboid

// Stats summarizes a cuboid for dataset reporting (Table 2 of the paper)
// and for the item-weighting scheme (Section 3.3).
type Stats struct {
	NumUsers     int
	NumIntervals int
	NumItems     int
	NNZ          int
	TotalScore   float64

	// ItemUsers[v] is N(v): the number of distinct users who rated item
	// v across all intervals.
	ItemUsers []int
	// IntervalUsers[t] is Nt: the number of distinct active users during
	// interval t.
	IntervalUsers []int
	// RatedUsers is the number of users with at least one rating.
	RatedUsers int
	// RatedItems is the number of items with at least one rating.
	RatedItems int
}

// ComputeStats scans the cuboid once (plus per-user postings) and returns
// its aggregate statistics.
func ComputeStats(c *Cuboid) *Stats {
	s := &Stats{
		NumUsers:      c.NumUsers(),
		NumIntervals:  c.NumIntervals(),
		NumItems:      c.NumItems(),
		NNZ:           c.NNZ(),
		ItemUsers:     make([]int, c.NumItems()),
		IntervalUsers: make([]int, c.NumIntervals()),
	}
	itemSeen := make([]int32, c.NumItems()) // last user who touched item, +1
	ts, vs, scores := c.CSR()
	for u := 0; u < c.NumUsers(); u++ {
		lo, hi := c.UserSpan(u)
		if hi > lo {
			s.RatedUsers++
		}
		lastT := int32(-1)
		for i := lo; i < hi; i++ {
			s.TotalScore += scores[i]
			if itemSeen[vs[i]] != int32(u)+1 {
				itemSeen[vs[i]] = int32(u) + 1
				s.ItemUsers[vs[i]]++
			}
			if ts[i] != lastT {
				s.IntervalUsers[ts[i]]++
				lastT = ts[i]
			}
		}
	}
	for _, n := range s.ItemUsers {
		if n > 0 {
			s.RatedItems++
		}
	}
	return s
}

// ItemIntervalUsers returns Nt(v) for every (t, v): the number of
// distinct users who rated item v during interval t, as a slice of
// per-interval maps keyed by item. Only nonzero entries are present.
func ItemIntervalUsers(c *Cuboid) []map[int32]int {
	out := make([]map[int32]int, c.NumIntervals())
	// Cells are deduplicated per (u, t, v), so each cell contributes
	// exactly one distinct user to its (t, v) pair. The by-interval CSR
	// view hands each interval its items as one contiguous column range.
	_, tvs, _ := c.IntervalCSR()
	for t := range out {
		lo, hi := c.IntervalSpan(t)
		m := make(map[int32]int, hi-lo)
		for i := lo; i < hi; i++ {
			m[tvs[i]]++
		}
		out[t] = m
	}
	return out
}

// ItemFrequencySeries returns, for item v, the per-interval count of
// distinct users who rated it — the raw series behind the paper's
// Figures 2 and 5 (temporal frequency curves).
func ItemFrequencySeries(c *Cuboid, v int) []float64 {
	series := make([]float64, c.NumIntervals())
	ts, vs, _ := c.CSR()
	for i, item := range vs {
		if int(item) == v {
			series[ts[i]]++
		}
	}
	return series
}

// NormalizeSeries rescales a series so its maximum is one, as the paper's
// figures plot "normalized frequency". A zero series is returned as-is.
func NormalizeSeries(series []float64) []float64 {
	var max float64
	for _, x := range series {
		if x > max {
			max = x
		}
	}
	out := make([]float64, len(series))
	if max <= 0 {
		return out
	}
	for i, x := range series {
		out[i] = x / max
	}
	return out
}
