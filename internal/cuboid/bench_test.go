package cuboid

import (
	"math/rand"
	"testing"
)

// benchRatings returns a deterministic shuffled rating stream with
// duplicates, the worst case for Build's sort-and-merge pass.
func benchRatings(tb testing.TB) ([][3]int, int, int, int) {
	tb.Helper()
	const nu, nt, nv = 2000, 12, 2000
	rng := rand.New(rand.NewSource(7))
	ratings := make([][3]int, 0, 80000)
	for u := 0; u < nu; u++ {
		for r := 0; r < 40; r++ {
			ratings = append(ratings, [3]int{u, rng.Intn(nt), rng.Intn(nv)})
		}
	}
	rng.Shuffle(len(ratings), func(i, j int) { ratings[i], ratings[j] = ratings[j], ratings[i] })
	return ratings, nu, nt, nv
}

// BenchmarkCuboidBuild measures Builder.Build — sort, merge and the
// posting/CSR construction — on an 80k-rating stream.
func BenchmarkCuboidBuild(b *testing.B) {
	ratings, nu, nt, nv := benchRatings(b)
	bld := NewBuilder(nu, nt, nv)
	for _, r := range ratings {
		bld.MustAdd(r[0], r[1], r[2], 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var c *Cuboid
	for i := 0; i < b.N; i++ {
		c = bld.Build()
	}
	b.StopTimer()
	b.ReportMetric(float64(c.NNZ())*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
}

// BenchmarkScaled measures the weighted-cuboid rebuild of Equation (20):
// one pass applying a per-cell weight plus the index reconstruction.
func BenchmarkScaled(b *testing.B) {
	ratings, nu, nt, nv := benchRatings(b)
	bld := NewBuilder(nu, nt, nv)
	for _, r := range ratings {
		bld.MustAdd(r[0], r[1], r[2], 1)
	}
	c := bld.Build()
	b.ReportAllocs()
	b.ResetTimer()
	var out *Cuboid
	for i := 0; i < b.N; i++ {
		out = c.Scaled(func(cell Cell) float64 { return 0.5 + float64(cell.V%3) })
	}
	b.StopTimer()
	b.ReportMetric(float64(out.NNZ())*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
}

// BenchmarkSubset measures the filtering rebuild used by the evaluation
// splits.
func BenchmarkSubset(b *testing.B) {
	ratings, nu, nt, nv := benchRatings(b)
	bld := NewBuilder(nu, nt, nv)
	for _, r := range ratings {
		bld.MustAdd(r[0], r[1], r[2], 1)
	}
	c := bld.Build()
	b.ReportAllocs()
	b.ResetTimer()
	var out *Cuboid
	for i := 0; i < b.N; i++ {
		out = c.Subset(func(cell Cell) bool { return cell.T%2 == 0 })
	}
	b.StopTimer()
	b.ReportMetric(float64(out.NNZ())*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
}
