package cuboid

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
)

// cuboidWire is the gob wire format for a Cuboid. Posting lists are
// rebuilt on load rather than serialized.
type cuboidWire struct {
	NumUsers     int
	NumIntervals int
	NumItems     int
	Cells        []Cell
}

// Write serializes the cuboid to w in gob format.
func (c *Cuboid) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := gob.NewEncoder(bw)
	wire := cuboidWire{
		NumUsers:     c.numUsers,
		NumIntervals: c.numIntervals,
		NumItems:     c.numItems,
		Cells:        c.cells,
	}
	if err := enc.Encode(&wire); err != nil {
		return fmt.Errorf("cuboid: encode: %w", err)
	}
	return bw.Flush()
}

// Read deserializes a cuboid previously written with Write.
func Read(r io.Reader) (*Cuboid, error) {
	dec := gob.NewDecoder(bufio.NewReader(r))
	var wire cuboidWire
	if err := dec.Decode(&wire); err != nil {
		return nil, fmt.Errorf("cuboid: decode: %w", err)
	}
	for i, cell := range wire.Cells {
		if int(cell.U) >= wire.NumUsers || int(cell.T) >= wire.NumIntervals ||
			int(cell.V) >= wire.NumItems || cell.U < 0 || cell.T < 0 || cell.V < 0 {
			return nil, fmt.Errorf("cuboid: corrupt cell (%d,%d,%d) outside %dx%dx%d",
				cell.U, cell.T, cell.V, wire.NumUsers, wire.NumIntervals, wire.NumItems)
		}
		// The CSR row pointers require the canonical strict (U, T, V)
		// order Write always produces; reject streams that lost it.
		if i > 0 {
			p := wire.Cells[i-1]
			if p.U > cell.U || (p.U == cell.U && (p.T > cell.T || (p.T == cell.T && p.V >= cell.V))) {
				return nil, fmt.Errorf("cuboid: cells out of (U,T,V) order at index %d", i)
			}
		}
	}
	return fromCells(wire.NumUsers, wire.NumIntervals, wire.NumItems, wire.Cells), nil
}
