package cuboid

import (
	"math"
	"math/rand"
	"testing"
)

// buildRandom constructs a deterministic random cuboid for delta tests.
func buildRandom(t *testing.T, seed int64, nu, nt, nv, n int) *Cuboid {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	b := NewBuilder(nu, nt, nv)
	for i := 0; i < n; i++ {
		b.MustAdd(r.Intn(nu), r.Intn(nt), r.Intn(nv), float64(1+r.Intn(3)))
	}
	return b.Build()
}

// assertSameCuboid checks full equality: dimensions, cells, both CSR
// views and the CSR↔Cells alignment invariant.
func assertSameCuboid(t *testing.T, got, want *Cuboid) {
	t.Helper()
	if got.NumUsers() != want.NumUsers() || got.NumIntervals() != want.NumIntervals() || got.NumItems() != want.NumItems() {
		t.Fatalf("dims %d×%d×%d, want %d×%d×%d", got.NumUsers(), got.NumIntervals(), got.NumItems(),
			want.NumUsers(), want.NumIntervals(), want.NumItems())
	}
	gc, wc := got.Cells(), want.Cells()
	if len(gc) != len(wc) {
		t.Fatalf("nnz %d, want %d", len(gc), len(wc))
	}
	for i := range wc {
		if gc[i].U != wc[i].U || gc[i].T != wc[i].T || gc[i].V != wc[i].V ||
			math.Float64bits(gc[i].Score) != math.Float64bits(wc[i].Score) {
			t.Fatalf("cell %d = %+v, want %+v", i, gc[i], wc[i])
		}
	}
	gts, gvs, gsc := got.CSR()
	wts, wvs, wsc := want.CSR()
	for i := range wts {
		if gts[i] != wts[i] || gvs[i] != wvs[i] || math.Float64bits(gsc[i]) != math.Float64bits(wsc[i]) {
			t.Fatalf("by-user CSR row %d differs", i)
		}
	}
	for u := 0; u < want.NumUsers(); u++ {
		glo, ghi := got.UserSpan(u)
		wlo, whi := want.UserSpan(u)
		if glo != wlo || ghi != whi {
			t.Fatalf("UserSpan(%d) = [%d,%d), want [%d,%d)", u, glo, ghi, wlo, whi)
		}
	}
	gus, gtvs, gtsc := got.IntervalCSR()
	wus, wtvs, wtsc := want.IntervalCSR()
	for i := range wus {
		if gus[i] != wus[i] || gtvs[i] != wtvs[i] || math.Float64bits(gtsc[i]) != math.Float64bits(wtsc[i]) {
			t.Fatalf("by-interval CSR row %d differs", i)
		}
	}
	for tt := 0; tt < want.NumIntervals(); tt++ {
		glo, ghi := got.IntervalSpan(tt)
		wlo, whi := want.IntervalSpan(tt)
		if glo != wlo || ghi != whi {
			t.Fatalf("IntervalSpan(%d) = [%d,%d), want [%d,%d)", tt, glo, ghi, wlo, whi)
		}
	}
}

// ApplyDelta must agree exactly with rebuilding from scratch over the
// union of ratings — same cells, same CSR views, same score bits (all
// scores here are small integers, so addition grouping is exact).
func TestApplyDeltaMatchesRebuild(t *testing.T) {
	const nu, nt, nv = 30, 6, 40
	r := rand.New(rand.NewSource(11))
	type rating struct{ u, t, v, s int }
	var base, extra []rating
	for i := 0; i < 500; i++ {
		base = append(base, rating{r.Intn(nu), r.Intn(nt), r.Intn(nv), 1 + r.Intn(3)})
	}
	// The delta widens every dimension and overlaps existing keys.
	const nu2, nt2, nv2 = 37, 8, 51
	for i := 0; i < 300; i++ {
		extra = append(extra, rating{r.Intn(nu2), r.Intn(nt2), r.Intn(nv2), 1 + r.Intn(3)})
	}

	b := NewBuilder(nu, nt, nv)
	for _, x := range base {
		b.MustAdd(x.u, x.t, x.v, float64(x.s))
	}
	c := b.Build()
	d := NewDelta(nu2, nt2, nv2)
	for _, x := range extra {
		d.MustAdd(x.u, x.t, x.v, float64(x.s))
	}
	got, err := c.ApplyDelta(d)
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}

	full := NewBuilder(nu2, nt2, nv2)
	for _, x := range base {
		full.MustAdd(x.u, x.t, x.v, float64(x.s))
	}
	for _, x := range extra {
		full.MustAdd(x.u, x.t, x.v, float64(x.s))
	}
	assertSameCuboid(t, got, full.Build())

	// The base is untouched.
	if c.NumUsers() != nu || c.NNZ() > len(base) {
		t.Fatalf("base cuboid mutated: %d×%d×%d nnz=%d", c.NumUsers(), c.NumIntervals(), c.NumItems(), c.NNZ())
	}
}

// Chained deltas must be batching-invariant for integer scores: two
// small deltas and one combined delta yield bit-identical cuboids.
func TestApplyDeltaBatchingInvariant(t *testing.T) {
	const nu, nt, nv = 20, 5, 25
	c := buildRandom(t, 7, nu, nt, nv, 200)
	r := rand.New(rand.NewSource(8))
	type rating struct{ u, t, v, s int }
	var stream []rating
	for i := 0; i < 240; i++ {
		stream = append(stream, rating{r.Intn(nu), r.Intn(nt), r.Intn(nv), 1 + r.Intn(2)})
	}
	addAll := func(d *Delta, rs []rating) {
		for _, x := range rs {
			d.MustAdd(x.u, x.t, x.v, float64(x.s))
		}
	}
	d1 := NewDelta(nu, nt, nv)
	addAll(d1, stream[:100])
	d2 := NewDelta(nu, nt, nv)
	addAll(d2, stream[100:])
	step1, err := c.ApplyDelta(d1)
	if err != nil {
		t.Fatal(err)
	}
	twoStep, err := step1.ApplyDelta(d2)
	if err != nil {
		t.Fatal(err)
	}
	dAll := NewDelta(nu, nt, nv)
	addAll(dAll, stream)
	oneStep, err := c.ApplyDelta(dAll)
	if err != nil {
		t.Fatal(err)
	}
	assertSameCuboid(t, twoStep, oneStep)
}

func TestApplyDeltaRejectsShrink(t *testing.T) {
	c := buildRandom(t, 3, 10, 4, 12, 50)
	if _, err := c.ApplyDelta(NewDelta(9, 4, 12)); err == nil {
		t.Error("ApplyDelta accepted a user-dimension shrink")
	}
	if _, err := c.ApplyDelta(NewDelta(10, 3, 12)); err == nil {
		t.Error("ApplyDelta accepted an interval-dimension shrink")
	}
	if _, err := c.ApplyDelta(NewDelta(10, 4, 11)); err == nil {
		t.Error("ApplyDelta accepted an item-dimension shrink")
	}
}

func TestDeltaFrozenAfterApply(t *testing.T) {
	c := buildRandom(t, 3, 10, 4, 12, 50)
	d := NewDelta(10, 4, 12)
	d.MustAdd(1, 1, 1, 1)
	if _, err := c.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	if err := d.Add(2, 2, 2, 1); err == nil {
		t.Error("Add succeeded on an applied delta")
	}
}

func TestMergeCuboids(t *testing.T) {
	a := buildRandom(t, 21, 15, 4, 20, 120)
	b := buildRandom(t, 22, 18, 6, 16, 130)
	got := a.Merge(b)
	if got.NumUsers() != 18 || got.NumIntervals() != 6 || got.NumItems() != 20 {
		t.Fatalf("merged dims %d×%d×%d, want 18×6×20", got.NumUsers(), got.NumIntervals(), got.NumItems())
	}
	full := NewBuilder(18, 6, 20)
	for _, cell := range a.Cells() {
		full.MustAdd(int(cell.U), int(cell.T), int(cell.V), cell.Score)
	}
	for _, cell := range b.Cells() {
		full.MustAdd(int(cell.U), int(cell.T), int(cell.V), cell.Score)
	}
	assertSameCuboid(t, got, full.Build())
}

// --- pathological deltas (satellite: Subset/CSR coverage) ---

// An empty delta that widens dimensions: all views must stay coherent,
// with the new users/intervals present but empty.
func TestApplyDeltaEmpty(t *testing.T) {
	c := buildRandom(t, 5, 12, 4, 15, 80)
	d := NewDelta(20, 7, 22)
	got, err := c.ApplyDelta(d)
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	if got.NNZ() != c.NNZ() {
		t.Fatalf("empty delta changed nnz: %d -> %d", c.NNZ(), got.NNZ())
	}
	for u := 12; u < 20; u++ {
		if lo, hi := got.UserSpan(u); lo != hi {
			t.Fatalf("new user %d has nonempty span [%d,%d)", u, lo, hi)
		}
	}
	for tt := 4; tt < 7; tt++ {
		if lo, hi := got.IntervalSpan(tt); lo != hi {
			t.Fatalf("new interval %d has nonempty span [%d,%d)", tt, lo, hi)
		}
	}
	// Subset over the widened cuboid still round-trips every cell.
	all := got.Subset(func(Cell) bool { return true })
	assertSameCuboid(t, all, got)
	none := got.Subset(func(Cell) bool { return false })
	if none.NNZ() != 0 || none.NumUsers() != 20 || none.NumIntervals() != 7 {
		t.Fatalf("empty subset wrong: nnz=%d dims %d×%d×%d", none.NNZ(),
			none.NumUsers(), none.NumIntervals(), none.NumItems())
	}
}

// A delta that only opens a new interval: the by-interval view gains
// exactly one row, the by-user view interleaves correctly.
func TestApplyDeltaNewIntervalOnly(t *testing.T) {
	const nu, nt, nv = 10, 4, 12
	c := buildRandom(t, 6, nu, nt, nv, 60)
	d := NewDelta(nu, nt+1, nv)
	// Every user rates one item in the new interval.
	for u := 0; u < nu; u++ {
		d.MustAdd(u, nt, u%nv, 2)
	}
	got, err := c.ApplyDelta(d)
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	if got.NNZ() != c.NNZ()+nu {
		t.Fatalf("nnz = %d, want %d", got.NNZ(), c.NNZ()+nu)
	}
	lo, hi := got.IntervalSpan(nt)
	if hi-lo != nu {
		t.Fatalf("new interval span has %d cells, want %d", hi-lo, nu)
	}
	us, vs, scores := got.IntervalCSR()
	for i := lo; i < hi; i++ {
		u := int(us[i])
		if int(vs[i]) != u%nv || scores[i] != 2 {
			t.Fatalf("new-interval cell %d = (u=%d v=%d s=%v)", i, u, vs[i], scores[i])
		}
	}
	// Old intervals are untouched.
	for tt := 0; tt < nt; tt++ {
		glo, ghi := got.IntervalSpan(tt)
		wlo, whi := c.IntervalSpan(tt)
		if ghi-glo != whi-wlo {
			t.Fatalf("old interval %d count changed: %d -> %d", tt, whi-wlo, ghi-glo)
		}
	}
	// Subset to only the new interval matches a direct build.
	onlyNew := got.Subset(func(cell Cell) bool { return cell.T == nt })
	if onlyNew.NNZ() != nu {
		t.Fatalf("subset of new interval has %d cells, want %d", onlyNew.NNZ(), nu)
	}
	// Each user's span grew by exactly one and stays (T,V)-sorted.
	for u := 0; u < nu; u++ {
		glo, ghi := got.UserSpan(u)
		wlo, whi := c.UserSpan(u)
		if ghi-glo != whi-wlo+1 {
			t.Fatalf("user %d span grew by %d, want 1", u, (ghi-glo)-(whi-wlo))
		}
		ts, _, _ := got.CSR()
		for i := glo + 1; i < ghi; i++ {
			if ts[i] < ts[i-1] {
				t.Fatalf("user %d CSR rows unsorted at %d", u, i)
			}
		}
	}
}

// A delta touching every user (including brand-new ones) — the
// worst-case full-width merge.
func TestApplyDeltaTouchesEveryUser(t *testing.T) {
	const nu, nt, nv = 10, 4, 12
	c := buildRandom(t, 9, nu, nt, nv, 60)
	const nu2 = 16
	d := NewDelta(nu2, nt, nv)
	for u := 0; u < nu2; u++ {
		d.MustAdd(u, u%nt, (u*3)%nv, 1)
		d.MustAdd(u, (u+1)%nt, (u*5)%nv, 1)
	}
	got, err := c.ApplyDelta(d)
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	full := NewBuilder(nu2, nt, nv)
	for _, cell := range c.Cells() {
		full.MustAdd(int(cell.U), int(cell.T), int(cell.V), cell.Score)
	}
	for u := 0; u < nu2; u++ {
		full.MustAdd(u, u%nt, (u*3)%nv, 1)
		full.MustAdd(u, (u+1)%nt, (u*5)%nv, 1)
	}
	assertSameCuboid(t, got, full.Build())
	for u := 0; u < nu2; u++ {
		if lo, hi := got.UserSpan(u); hi <= lo {
			t.Fatalf("user %d empty after a delta that touched every user", u)
		}
	}
}

// ApplyDelta must stay count-then-fill: a frozen delta application is
// one exact-size cell merge plus the shared CSR build.
func TestApplyDeltaAllocationBound(t *testing.T) {
	c := buildRandom(t, 13, 50, 8, 60, 2000)
	d := NewDelta(55, 9, 66)
	r := rand.New(rand.NewSource(14))
	for i := 0; i < 500; i++ {
		d.MustAdd(r.Intn(55), r.Intn(9), r.Intn(66), 1)
	}
	d.freeze() // freezing (sort+dedup) is once-per-delta, not per-apply
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := c.ApplyDelta(d); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 14 {
		t.Errorf("ApplyDelta allocates %v times, want <= 14 (count-then-fill regressed)", allocs)
	}
}
