package cuboid

// Incremental extension: the streaming ingest loop grows a cuboid by
// batches of new cells (possibly widening the user/interval/item
// dimensions) without re-sorting the full cell population. ApplyDelta
// and Merge both reduce to one two-way merge of already-sorted cell
// slices — count first, then fill into exact-size allocations — so the
// rebuild stays within the same small-constant allocation budget as
// Builder.Build's fromCells path and preserves the CSR↔Cells index
// alignment every consumer relies on.

import "fmt"

// Delta is a batch of new cells destined for an existing cuboid. Its
// dimensions are those of the cuboid AFTER application, so a delta may
// widen any dimension; it must never shrink one. Duplicate (u, t, v)
// triples — within the delta or against the base cuboid — merge by
// summing scores, exactly like Builder.
type Delta struct {
	numUsers     int
	numIntervals int
	numItems     int
	cells        []Cell
	frozen       bool
}

// NewDelta returns a Delta targeting the given post-application
// dimensions.
func NewDelta(numUsers, numIntervals, numItems int) *Delta {
	if numUsers < 0 || numIntervals < 0 || numItems < 0 {
		panic("cuboid: negative dimension")
	}
	return &Delta{numUsers: numUsers, numIntervals: numIntervals, numItems: numItems}
}

// Add records a new rating cell. Indices are validated against the
// delta's (post-application) dimensions.
func (d *Delta) Add(u, t, v int, score float64) error {
	if d.frozen {
		return fmt.Errorf("cuboid: delta already applied; build a new one")
	}
	if u < 0 || u >= d.numUsers {
		return fmt.Errorf("cuboid: user %d out of range [0,%d)", u, d.numUsers)
	}
	if t < 0 || t >= d.numIntervals {
		return fmt.Errorf("cuboid: interval %d out of range [0,%d)", t, d.numIntervals)
	}
	if v < 0 || v >= d.numItems {
		return fmt.Errorf("cuboid: item %d out of range [0,%d)", v, d.numItems)
	}
	if score <= 0 {
		return fmt.Errorf("cuboid: non-positive score %v", score)
	}
	d.cells = append(d.cells, Cell{U: int32(u), T: int32(t), V: int32(v), Score: score})
	return nil
}

// MustAdd is Add for already-validated indices; it panics on error.
func (d *Delta) MustAdd(u, t, v int, score float64) {
	if err := d.Add(u, t, v, score); err != nil {
		panic(fmt.Sprintf("cuboid: MustAdd: %v", err))
	}
}

// Len returns the number of cells added so far (before merging).
func (d *Delta) Len() int { return len(d.cells) }

// freeze sorts and dedup-merges the delta's cells in place. Duplicate
// keys merge in insertion order (stable sort), so the summed score of
// a key is independent of how the stream was cut into sort runs.
func (d *Delta) freeze() {
	if d.frozen {
		return
	}
	sortCellsStable(d.cells)
	merged := d.cells[:0]
	for _, c := range d.cells {
		n := len(merged)
		if n > 0 && sameKey(merged[n-1], c) {
			merged[n-1].Score += c.Score
			continue
		}
		merged = append(merged, c)
	}
	d.cells = merged
	d.frozen = true
}

// ApplyDelta returns a new cuboid extended by the delta's cells, with
// the delta's (possibly wider) dimensions. The base cuboid is
// untouched; the delta is frozen (sorted, deduplicated) by the call
// and must not be Added to afterwards. Cells present in both merge by
// adding the delta's score onto the base's.
//
// Cost: one count pass and one fill pass over base.NNZ()+delta cells
// into exact-size allocations, then the shared fromCells CSR build —
// the same ≤14-allocation discipline as Builder.Build, independent of
// cell count.
func (c *Cuboid) ApplyDelta(d *Delta) (*Cuboid, error) {
	if d.numUsers < c.numUsers || d.numIntervals < c.numIntervals || d.numItems < c.numItems {
		return nil, fmt.Errorf("cuboid: delta dimensions %d×%d×%d shrink the cuboid's %d×%d×%d",
			d.numUsers, d.numIntervals, d.numItems, c.numUsers, c.numIntervals, c.numItems)
	}
	d.freeze()
	out := mergeCells(c.cells, d.cells)
	return fromCells(d.numUsers, d.numIntervals, d.numItems, out), nil
}

// Merge returns the union of two cuboids: dimensions are the
// element-wise maxima, cells present in both sum their scores (the
// receiver's score on the left). Both inputs are untouched.
func (c *Cuboid) Merge(o *Cuboid) *Cuboid {
	nu := c.numUsers
	if o.numUsers > nu {
		nu = o.numUsers
	}
	nt := c.numIntervals
	if o.numIntervals > nt {
		nt = o.numIntervals
	}
	nv := c.numItems
	if o.numItems > nv {
		nv = o.numItems
	}
	return fromCells(nu, nt, nv, mergeCells(c.cells, o.cells))
}

// mergeCells merges two (U, T, V)-sorted deduplicated cell slices into
// a freshly allocated sorted deduplicated slice, summing scores of
// shared keys (a's score on the left). Count-then-fill: the first walk
// sizes the union exactly, the second writes each cell into its final
// slot, so the merge costs one allocation regardless of input size.
func mergeCells(a, b []Cell) []Cell {
	n := 0
	for i, j := 0, 0; i < len(a) || j < len(b); n++ {
		switch {
		case j == len(b) || (i < len(a) && cellLess(a[i], b[j])):
			i++
		case i == len(a) || cellLess(b[j], a[i]):
			j++
		default:
			i++
			j++
		}
	}
	out := make([]Cell, n)
	k := 0
	for i, j := 0, 0; i < len(a) || j < len(b); k++ {
		switch {
		case j == len(b) || (i < len(a) && cellLess(a[i], b[j])):
			out[k] = a[i]
			i++
		case i == len(a) || cellLess(b[j], a[i]):
			out[k] = b[j]
			j++
		default:
			out[k] = a[i]
			out[k].Score += b[j].Score
			i++
			j++
		}
	}
	return out
}

// cellLess orders cells by (U, T, V), the canonical cuboid order.
func cellLess(a, b Cell) bool {
	if a.U != b.U {
		return a.U < b.U
	}
	if a.T != b.T {
		return a.T < b.T
	}
	return a.V < b.V
}

func sameKey(a, b Cell) bool { return a.U == b.U && a.T == b.T && a.V == b.V }

// sortCellsStable is an insertion-friendly stable merge sort over
// cells by (U, T, V). Stability is load-bearing: duplicate keys keep
// insertion (stream) order, so their float score sum is grouped
// left-to-right by arrival regardless of how appends were batched.
func sortCellsStable(cells []Cell) {
	if len(cells) < 2 {
		return
	}
	buf := make([]Cell, len(cells))
	copy(buf, cells)
	mergeSortCells(buf, cells)
}

// mergeSortCells sorts src into dst (both initially equal copies),
// alternating roles down the recursion — the classic allocation-free
// top-down merge sort.
func mergeSortCells(src, dst []Cell) {
	if len(src) < 2 {
		return
	}
	mid := len(src) / 2
	mergeSortCells(dst[:mid], src[:mid])
	mergeSortCells(dst[mid:], src[mid:])
	i, j := 0, mid
	for k := range dst {
		if i < mid && (j == len(src) || !cellLess(src[j], src[i])) {
			dst[k] = src[i]
			i++
		} else {
			dst[k] = src[j]
			j++
		}
	}
}
