// Package atomicfile writes files crash-safely: content goes to a
// temporary file in the destination's directory, is fsynced, and only
// then renamed over the destination. A crash (or write error) at any
// point leaves either the old file or the new one — never a torn or
// truncated artifact. The hot-reload path of the serving stack depends
// on this: a bundle being retrained in place must stay loadable until
// the very instant the complete replacement appears.
package atomicfile

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Write atomically replaces path with the bytes produced by write.
// The temporary file is created next to path (rename is only atomic
// within one filesystem) and removed on any failure.
func Write(path string, write func(io.Writer) error) (err error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomicfile: %w", err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			//tcamvet:ignore errcheck already on the error path; the close error cannot improve it
			f.Close()
			//tcamvet:ignore errcheck best-effort cleanup of the abandoned temp file
			os.Remove(tmp)
		}
	}()
	if err = write(f); err != nil {
		return err
	}
	// Sync before rename: otherwise a crash can publish a name whose
	// data blocks never reached disk, which is exactly the torn state
	// this package exists to prevent.
	if err = f.Sync(); err != nil {
		return fmt.Errorf("atomicfile: sync %s: %w", tmp, err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("atomicfile: close %s: %w", tmp, err)
	}
	if err = os.Rename(tmp, path); err != nil {
		return fmt.Errorf("atomicfile: %w", err)
	}
	return nil
}

// Append durably appends the bytes produced by write to path, creating
// the file when absent. The payload is buffered in memory first and
// issued as a single Write call on an O_APPEND descriptor, so
// concurrent appenders interleave at record granularity rather than
// byte granularity, then fsynced before Append returns. Unlike Write,
// Append does not replace the file: a crash mid-call can leave a torn
// tail, which is why every append-only consumer (the ingest log, the
// JSONL appender) frames or line-delimits its records and discards an
// incomplete final record on open.
func Append(path string, write func(io.Writer) error) error {
	var buf bytes.Buffer
	if err := write(&buf); err != nil {
		return err
	}
	if buf.Len() == 0 {
		return nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("atomicfile: %w", err)
	}
	_, werr := f.Write(buf.Bytes())
	var serr error
	if werr == nil {
		serr = f.Sync()
	}
	cerr := f.Close()
	switch {
	case werr != nil:
		return fmt.Errorf("atomicfile: append %s: %w", path, werr)
	case serr != nil:
		return fmt.Errorf("atomicfile: sync %s: %w", path, serr)
	case cerr != nil:
		return fmt.Errorf("atomicfile: close %s: %w", path, cerr)
	}
	return nil
}
