package atomicfile

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteCreatesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := Write(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "hello")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Errorf("content = %q", got)
	}
}

func TestWriteReplacesExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	for i, want := range []string{"first", "second longer payload"} {
		if err := Write(path, func(w io.Writer) error {
			_, err := io.WriteString(w, want)
			return err
		}); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != want {
			t.Errorf("round %d: content = %q, want %q", i, got, want)
		}
	}
}

// A failing writer must leave the previous file byte-identical and no
// temp debris behind — the crash-mid-save contract hot reload relies on.
func TestWriteFailurePreservesOld(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bundle.bin")
	if err := os.WriteFile(path, []byte("old good bundle"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk on fire")
	err := Write(path, func(w io.Writer) error {
		// Partially write, then fail: the partial bytes must never be
		// published under path.
		if _, err := io.WriteString(w, "new but torn"); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the writer's error", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "old good bundle" {
		t.Errorf("old file clobbered: %q", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "bundle.bin" {
			t.Errorf("temp debris left behind: %s", e.Name())
		}
	}
}

func TestWriteMissingDirFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "no", "such", "dir", "f")
	if err := Write(path, func(io.Writer) error { return nil }); err == nil {
		t.Error("Write into a missing directory succeeded")
	}
}

func TestAppendCreatesAndExtends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	for i, chunk := range []string{"one\n", "two\n", "three\n"} {
		if err := Append(path, func(w io.Writer) error {
			_, err := io.WriteString(w, chunk)
			return err
		}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "one\ntwo\nthree\n" {
		t.Errorf("content = %q", got)
	}
}

// A failing writer must leave the file untouched: the payload is fully
// buffered before the descriptor is even opened.
func TestAppendFailureLeavesFileAlone(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	if err := os.WriteFile(path, []byte("intact"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("encoder exploded")
	err := Append(path, func(w io.Writer) error {
		if _, err := io.WriteString(w, "partial"); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the writer's error", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "intact" {
		t.Errorf("file mutated on failure: %q", got)
	}
}

func TestAppendEmptyPayloadDoesNotCreate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	if err := Append(path, func(io.Writer) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("empty append created the file (stat err %v)", err)
	}
}

func TestWriteRelativePath(t *testing.T) {
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(old); err != nil {
			t.Error(err)
		}
	}()
	if err := Write("rel.txt", func(w io.Writer) error {
		_, err := fmt.Fprint(w, "ok")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat("rel.txt"); err != nil {
		t.Error(err)
	}
}
