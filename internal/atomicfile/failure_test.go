package atomicfile

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// listDir returns the directory's entry names.
func listDir(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	return names
}

// A failed rename (here: the destination is a directory) must remove
// the already-synced temp file and leave the destination untouched.
func TestWriteRenameFailureCleansTemp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "target")
	if err := os.Mkdir(path, 0o755); err != nil {
		t.Fatal(err)
	}
	marker := filepath.Join(path, "keep")
	if err := os.WriteFile(marker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := Write(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "payload")
		return err
	})
	if err == nil {
		t.Fatal("rename over a directory succeeded")
	}
	if _, err := os.Stat(marker); err != nil {
		t.Errorf("rename target damaged: %v", err)
	}
	for _, name := range listDir(t, dir) {
		if name != "target" {
			t.Errorf("temp debris left behind: %s", name)
		}
	}
}

// A sync/close failure after the copy (simulated by the writer closing
// the file underneath Write) must follow the same error path: no temp
// litter, previous file preserved.
func TestWriteSyncFailureCleansTemp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	if err := os.WriteFile(path, []byte("previous"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := Write(path, func(w io.Writer) error {
		f, ok := w.(*os.File)
		if !ok {
			t.Fatalf("writer is %T, want *os.File", w)
		}
		if _, err := io.WriteString(f, "half a payload"); err != nil {
			return err
		}
		return f.Close() // Sync on a closed file must fail, not publish
	})
	if err == nil {
		t.Fatal("Write succeeded with a closed temp file")
	}
	if !strings.Contains(err.Error(), "atomicfile:") {
		t.Errorf("error %q lacks the package prefix", err)
	}
	got, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if string(got) != "previous" {
		t.Errorf("previous file clobbered: %q", got)
	}
	for _, name := range listDir(t, dir) {
		if name != "out.bin" {
			t.Errorf("temp debris left behind: %s", name)
		}
	}
}

// Concurrent writers to the same path must each publish a complete
// payload — the survivor is one of them, never an interleaving — and
// leave no temp files.
func TestWriteConcurrentNoLitter(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "contended")
	payloads := []string{
		strings.Repeat("aaaa", 1<<10),
		strings.Repeat("bbbb", 1<<10),
		strings.Repeat("cccc", 1<<10),
		strings.Repeat("dddd", 1<<10),
	}
	var wg sync.WaitGroup
	for _, p := range payloads {
		wg.Add(1)
		go func(p string) {
			defer wg.Done()
			if err := Write(path, func(w io.Writer) error {
				_, err := io.WriteString(w, p)
				return err
			}); err != nil {
				t.Errorf("concurrent Write: %v", err)
			}
		}(p)
	}
	wg.Wait()
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ok := false
	for _, p := range payloads {
		if string(got) == p {
			ok = true
		}
	}
	if !ok {
		t.Errorf("final content (%d bytes) is not any writer's complete payload", len(got))
	}
	for _, name := range listDir(t, dir) {
		if name != "contended" {
			t.Errorf("temp debris left behind: %s", name)
		}
	}
}
