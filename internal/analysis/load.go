package analysis

import (
	"errors"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// Pkg is one parsed and type-checked package.
type Pkg struct {
	// Path is the package's import path; Module is the module path of
	// the repo it was loaded from (analyzer scoping compares the two).
	Path   string
	Module string
	Dir    string
	Fset   *token.FileSet
	Files  []*ast.File
	Types  *types.Package
	Info   *types.Info
}

// Loader discovers, parses and type-checks packages without go/packages:
// module-local import paths are resolved to directories under the module
// root and checked from source; everything else (the standard library)
// goes through go/importer's export data. Loaded packages are cached, so
// a whole-repo run type-checks each package once.
type Loader struct {
	Fset       *token.FileSet
	ModuleDir  string
	ModulePath string

	std     types.Importer
	pkgs    map[string]*Pkg
	loading map[string]bool
}

// NewLoader builds a loader for the module rooted at moduleDir (the
// directory containing go.mod).
func NewLoader(moduleDir string) (*Loader, error) {
	abs, err := filepath.Abs(moduleDir)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: reading go.mod: %w", err)
	}
	modulePath := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modulePath = strings.TrimSpace(rest)
			break
		}
	}
	if modulePath == "" {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", moduleDir)
	}
	return &Loader{
		Fset:       token.NewFileSet(),
		ModuleDir:  abs,
		ModulePath: modulePath,
		std:        importer.Default(),
		pkgs:       make(map[string]*Pkg),
		loading:    make(map[string]bool),
	}, nil
}

// FindModuleRoot walks up from dir to the nearest directory containing a
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		abs = parent
	}
}

// LoadDir loads the package in dir, which must live under the module
// root.
func (l *Loader) LoadDir(dir string) (*Pkg, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	importPath, err := l.importPathFor(abs)
	if err != nil {
		return nil, err
	}
	return l.load(abs, importPath)
}

func (l *Loader) importPathFor(absDir string) (string, error) {
	rel, err := filepath.Rel(l.ModuleDir, absDir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", absDir, l.ModuleDir)
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

func (l *Loader) load(dir, importPath string) (*Pkg, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("analysis: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	// build.ImportDir applies the release build constraints, so files
	// behind opt-in tags (e.g. tcamcheck) are analyzed the way they
	// ship: excluded. Test files are out of scope for the suite.
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: scanning %s: %w", dir, err)
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, errors.Join(typeErrs...))
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err)
	}
	p := &Pkg{
		Path:   importPath,
		Module: l.ModulePath,
		Dir:    dir,
		Fset:   l.Fset,
		Files:  files,
		Types:  tpkg,
		Info:   info,
	}
	l.pkgs[importPath] = p
	return p, nil
}

// Import implements types.Importer: module-local paths are type-checked
// from source, "unsafe" maps to the checker's built-in, and everything
// else resolves through the standard-library importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		p, err := l.load(filepath.Join(l.ModuleDir, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// ExpandPatterns resolves command-line package patterns into package
// directories. A pattern is either a directory or a directory followed
// by "/..." for a recursive walk. Walks skip testdata, vendor,
// hidden/underscore directories and nested modules (a subdirectory with
// its own go.mod belongs to another module, exactly as `go ./...`
// treats it), and keep only directories containing at least one
// buildable non-test .go file.
func ExpandPatterns(patterns []string) ([]string, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		root, recursive := strings.CutSuffix(pat, "...")
		if recursive {
			root = strings.TrimSuffix(root, "/")
			if root == "" {
				root = "."
			}
			err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != root && (name == "testdata" || name == "vendor" ||
					strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return fs.SkipDir
				}
				if path != root {
					if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
						return fs.SkipDir // nested module boundary
					}
				}
				if hasGoFiles(path) {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		if !hasGoFiles(pat) {
			return nil, fmt.Errorf("analysis: no buildable Go files in %s", pat)
		}
		add(pat)
	}
	return dirs, nil
}

// hasGoFiles reports whether dir contains at least one buildable
// non-test Go file under the default build constraints.
func hasGoFiles(dir string) bool {
	bp, err := build.ImportDir(dir, 0)
	return err == nil && len(bp.GoFiles) > 0
}
