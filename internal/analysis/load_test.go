package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeFile creates path (and its parents) with the given contents.
func writeFile(t *testing.T, path, contents string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(contents), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestExpandPatternsNoGoFilesDirect: naming a directory without
// buildable Go files directly is an error, matching the go tool's "no
// Go files in ..." behavior.
func TestExpandPatternsNoGoFilesDirect(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "README.md"), "no go here\n")
	if _, err := ExpandPatterns([]string{dir}); err == nil {
		t.Fatalf("ExpandPatterns(%q) succeeded on a Go-less directory", dir)
	}
}

// TestExpandPatternsNoGoFilesRecursive: a recursive walk over a tree
// without Go files is not an error — it just resolves to nothing.
func TestExpandPatternsNoGoFilesRecursive(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "docs", "README.md"), "still no go\n")
	dirs, err := ExpandPatterns([]string{dir + "/..."})
	if err != nil {
		t.Fatalf("ExpandPatterns recursive: %v", err)
	}
	if len(dirs) != 0 {
		t.Fatalf("ExpandPatterns resolved %v, want no directories", dirs)
	}
}

// TestExpandPatternsSkipsNestedModule: a subdirectory with its own
// go.mod is another module's territory; the walk must not cross the
// boundary (go's ./... behaves the same way).
func TestExpandPatternsSkipsNestedModule(t *testing.T) {
	root := t.TempDir()
	writeFile(t, filepath.Join(root, "go.mod"), "module outer\n\ngo 1.22\n")
	writeFile(t, filepath.Join(root, "a", "a.go"), "package a\n")
	writeFile(t, filepath.Join(root, "sub", "go.mod"), "module inner\n\ngo 1.22\n")
	writeFile(t, filepath.Join(root, "sub", "b.go"), "package b\n")
	dirs, err := ExpandPatterns([]string{root + "/..."})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{filepath.Join(root, "a")}
	if len(dirs) != 1 || dirs[0] != want[0] {
		t.Fatalf("ExpandPatterns = %v, want %v", dirs, want)
	}
}

// TestExpandPatternsRootModuleNotSkipped: only *nested* go.mod files
// stop the walk — the pattern root itself is of course a module root.
func TestExpandPatternsRootModuleNotSkipped(t *testing.T) {
	root := t.TempDir()
	writeFile(t, filepath.Join(root, "go.mod"), "module rooted\n\ngo 1.22\n")
	writeFile(t, filepath.Join(root, "a.go"), "package rooted\n")
	dirs, err := ExpandPatterns([]string{root + "/..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 1 || dirs[0] != root {
		t.Fatalf("ExpandPatterns = %v, want [%s]", dirs, root)
	}
}

// TestLoadDirOutsideModule: a directory outside the loader's module
// root has no import path under the module and must be rejected.
func TestLoadDirOutsideModule(t *testing.T) {
	moduleDir, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(moduleDir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.LoadDir(t.TempDir()); err == nil {
		t.Fatal("LoadDir accepted a directory outside the module")
	}
}

// TestLoadImportOutsideModule: a package importing a path that is
// neither standard library nor module-local cannot be resolved (the
// loader has no module cache) and must fail loudly rather than
// type-check against a phantom package.
func TestLoadImportOutsideModule(t *testing.T) {
	root := t.TempDir()
	writeFile(t, filepath.Join(root, "go.mod"), "module external\n\ngo 1.22\n")
	writeFile(t, filepath.Join(root, "p", "p.go"),
		"package p\n\nimport \"example.com/not/in/module\"\n\nvar _ = notinmodule.X\n")
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.LoadDir(filepath.Join(root, "p")); err == nil {
		t.Fatal("LoadDir type-checked a package importing outside the module")
	}
}

// TestLoaderModuleLocalImport: module-local imports resolve from source
// across package directories within the same loader.
func TestLoaderModuleLocalImport(t *testing.T) {
	root := t.TempDir()
	writeFile(t, filepath.Join(root, "go.mod"), "module local\n\ngo 1.22\n")
	writeFile(t, filepath.Join(root, "lib", "lib.go"),
		"package lib\n\n// V is exported for the importer below.\nvar V = 1\n")
	writeFile(t, filepath.Join(root, "app", "app.go"),
		"package app\n\nimport \"local/lib\"\n\nvar _ = lib.V\n")
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	p, err := l.LoadDir(filepath.Join(root, "app"))
	if err != nil {
		t.Fatalf("LoadDir with module-local import: %v", err)
	}
	if p.Path != "local/app" {
		t.Fatalf("import path = %q, want local/app", p.Path)
	}
}

// TestFindModuleRootFails: FindModuleRoot above a go.mod-less tree
// reports an error naming the start directory.
func TestFindModuleRootFails(t *testing.T) {
	dir := t.TempDir()
	if _, err := FindModuleRoot(dir); err == nil {
		t.Fatal("FindModuleRoot found a module above a temp dir")
	} else if !strings.Contains(err.Error(), "no go.mod") {
		t.Fatalf("unexpected error: %v", err)
	}
}
