package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapRange guards the repo's bit-identity invariant against Go's
// randomized map iteration order. A `for … range m` over a map in cmd/
// or internal/ is flagged whenever its body can leak the iteration
// order into observable output:
//
//   - appending to a slice — unless every appended slice is sorted in a
//     statement after the loop (the collect-then-sort idiom),
//   - writing to a file, response or any other writer (the fmt print
//     family, Write*/Encode method calls),
//   - accumulating floating-point values (float addition is not
//     associative, so the sum depends on visit order),
//   - sending on a channel.
//
// Loops that only build another map or set, delete keys, or bump
// integer counters are order-independent and pass. A loop that
// intentionally tolerates nondeterminism needs a justified
// //tcamvet:ignore maprange directive.
var MapRange = &Analyzer{
	Name: "maprange",
	Doc:  "map iteration must not leak its nondeterministic order into output",
	Run:  runMapRange,
}

func runMapRange(p *Pkg) []Diagnostic {
	if !mapRangeApplies(p) {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			// Range statements only occur inside statement lists; visiting
			// the lists (rather than the RangeStmt directly) keeps the
			// trailing statements in hand for the sorted-after exemption.
			var list []ast.Stmt
			switch n := n.(type) {
			case *ast.BlockStmt:
				list = n.List
			case *ast.CaseClause:
				list = n.Body
			case *ast.CommClause:
				list = n.Body
			default:
				return true
			}
			for i, s := range list {
				rs, ok := s.(*ast.RangeStmt)
				if !ok || !isMapType(p.Info.TypeOf(rs.X)) {
					continue
				}
				diags = append(diags, checkMapRange(p, rs, list[i+1:])...)
			}
			return true
		})
	}
	return diags
}

// mapRangeApplies scopes the check to the module root, cmd/ and
// internal/ trees; examples are demo code and exempt.
func mapRangeApplies(p *Pkg) bool {
	return p.Path == p.Module ||
		strings.HasPrefix(p.Path, p.Module+"/cmd/") ||
		strings.HasPrefix(p.Path, p.Module+"/internal/")
}

// mapRangeLeak is one order-leaking operation found in a loop body.
type mapRangeLeak struct {
	pos    token.Pos
	reason string
	// appendTo is the object the leak appends to, when the leak is an
	// append with a resolvable target; nil for every other leak kind.
	appendTo types.Object
}

// checkMapRange classifies one map-range loop. after holds the
// statements following the loop in its enclosing block, consulted for
// the collect-then-sort exemption.
func checkMapRange(p *Pkg, rs *ast.RangeStmt, after []ast.Stmt) []Diagnostic {
	leaks := collectMapRangeLeaks(p, rs.Body)
	if len(leaks) == 0 {
		return nil
	}
	// Collect-then-sort: every leak is an append to a known slice, and
	// each such slice is deterministically sorted after the loop.
	allSorted := true
	for _, l := range leaks {
		if l.appendTo == nil || !sortedAfter(p, l.appendTo, after) {
			allSorted = false
			break
		}
	}
	if allSorted {
		return nil
	}
	reasons := make([]string, 0, 2)
	seen := make(map[string]bool)
	for _, l := range leaks {
		if !seen[l.reason] {
			seen[l.reason] = true
			reasons = append(reasons, l.reason)
		}
	}
	return []Diagnostic{diag(p, rs.For, "maprange",
		"map iteration order leaks into output (%s); collect and sort keys first, or justify with //tcamvet:ignore maprange",
		strings.Join(reasons, ", "))}
}

// collectMapRangeLeaks walks a loop body for order-leaking operations.
func collectMapRangeLeaks(p *Pkg, body *ast.BlockStmt) []mapRangeLeak {
	var leaks []mapRangeLeak
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isBuiltin(p, n, "append") {
				var target types.Object
				if len(n.Args) > 0 {
					target = rootObject(p, n.Args[0])
				}
				leaks = append(leaks, mapRangeLeak{
					pos: n.Pos(), reason: "appends to a slice", appendTo: target,
				})
				return true
			}
			if isWriteCall(p, n) {
				leaks = append(leaks, mapRangeLeak{pos: n.Pos(), reason: "writes output"})
			}
		case *ast.SendStmt:
			leaks = append(leaks, mapRangeLeak{pos: n.Pos(), reason: "sends on a channel"})
		case *ast.AssignStmt:
			if accumulates(p, n, isFloat) {
				leaks = append(leaks, mapRangeLeak{pos: n.Pos(), reason: "accumulates floats"})
			} else if accumulates(p, n, isString) {
				leaks = append(leaks, mapRangeLeak{pos: n.Pos(), reason: "builds a string"})
			}
		}
		return true
	})
	return leaks
}

// isWriteCall reports calls that emit bytes in visit order: the fmt
// print family targeting a writer, and Write*/Encode/Print* methods.
func isWriteCall(p *Pkg, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if selectorPkgPath(p, sel) == "fmt" {
		switch sel.Sel.Name {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return true
		}
		return false // Sprint* is pure: leaking is the consumer's act
	}
	if _, isMethod := p.Info.Selections[sel]; !isMethod {
		return false
	}
	switch sel.Sel.Name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "WriteTo",
		"Encode", "Print", "Printf", "Println":
		return true
	}
	return false
}

// accumulates reports order-sensitive updates of a type matched by
// kind (floats: rounding depends on order; strings: the built text
// does): compound assignment (x += v and friends) and the spelled-out
// x = x + v.
func accumulates(p *Pkg, as *ast.AssignStmt, kind func(types.Type) bool) bool {
	if len(as.Lhs) != 1 {
		return false
	}
	lhs := as.Lhs[0]
	if !kind(p.Info.TypeOf(lhs)) {
		return false
	}
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		return true
	case token.ASSIGN:
		obj := rootObject(p, lhs)
		if obj == nil {
			return false
		}
		found := false
		ast.Inspect(as.Rhs[0], func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && p.Info.Uses[id] == obj {
				found = true
			}
			return !found
		})
		return found
	}
	return false
}

// sortedAfter reports whether obj (a collected slice) is passed to a
// recognized deterministic sort in one of the statements after the
// loop.
func sortedAfter(p *Pkg, obj types.Object, after []ast.Stmt) bool {
	for _, s := range after {
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := ast.Unparen(es.X).(*ast.CallExpr)
		if !ok || !isSortCall(p, call) {
			continue
		}
		if len(call.Args) > 0 && rootObject(p, call.Args[0]) == obj {
			return true
		}
	}
	return false
}

// isSortCall recognizes the deterministic stdlib sort entry points.
func isSortCall(p *Pkg, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch selectorPkgPath(p, sel) {
	case "sort":
		switch sel.Sel.Name {
		case "Sort", "Stable", "Slice", "SliceStable",
			"Strings", "Ints", "Float64s":
			return true
		}
	case "slices":
		switch sel.Sel.Name {
		case "Sort", "SortFunc", "SortStableFunc":
			return true
		}
	}
	return false
}

// rootObject resolves the base object an expression is derived from,
// unwrapping selectors, indexing, slicing, dereferences and
// single-argument wrappers (conversions, sort.Interface adapters).
func rootObject(p *Pkg, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if obj := p.Info.Uses[x]; obj != nil {
				return obj
			}
			return p.Info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.CallExpr:
			if len(x.Args) != 1 {
				return nil
			}
			e = x.Args[0]
		default:
			return nil
		}
	}
}

// isMapType reports whether t's underlying type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}
