package analysis

import (
	"go/ast"
	"go/types"
)

// GlobalRand keeps library code reproducible: every random draw must
// come from an explicitly seeded *rand.Rand, never from the shared
// package-level math/rand source (whose stream depends on whatever else
// the process has drawn, and on auto-seeding since Go 1.20).
// Constructors (rand.New, rand.NewSource, rand.NewZipf) and type names
// are fine; main packages (command entry points) are exempt.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc:  "library packages must not draw from the global math/rand source",
	Run:  runGlobalRand,
}

// globalRandFuncs are the math/rand (and v2) package-level functions
// that consume the global source.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
	// math/rand/v2 additions.
	"N": true, "IntN": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "Uint": true, "UintN": true,
	"Uint32N": true, "Uint64N": true,
}

func runGlobalRand(p *Pkg) []Diagnostic {
	if p.Types.Name() == "main" {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			path := selectorPkgPath(p, sel)
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if _, isFunc := p.Info.Uses[sel.Sel].(*types.Func); !isFunc {
				return true
			}
			if globalRandFuncs[sel.Sel.Name] {
				diags = append(diags, diag(p, sel.Pos(), "globalrand",
					"rand.%s draws from the global source; use a seeded *rand.Rand", sel.Sel.Name))
			}
			return true
		})
	}
	return diags
}
