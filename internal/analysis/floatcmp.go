package analysis

import (
	"go/ast"
	"go/token"
)

// FloatCmp forbids == and != between floating-point operands. After
// rounding, two mathematically equal expressions rarely compare equal,
// so float equality is almost always a dormant bug; where an exact
// comparison is intentional (deterministic tie-breaks, exact-zero skip
// tests) it must either be rewritten with ordered comparisons or carry
// a //tcamvet:ignore floatcmp directive explaining why exactness is
// safe. Test files are outside the suite's scope and exempt.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "no ==/!= between floating-point operands",
	Run:  runFloatCmp,
}

func runFloatCmp(p *Pkg) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if isFloat(p.Info.TypeOf(be.X)) || isFloat(p.Info.TypeOf(be.Y)) {
				diags = append(diags, diag(p, be.OpPos, "floatcmp",
					"floating-point %s comparison; use ordered comparisons or justify with //tcamvet:ignore", be.Op))
			}
			return true
		})
	}
	return diags
}
