package analysis

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// finding identifies a diagnostic by fixture line and check name; column
// and message wording are implementation detail the fixtures don't pin.
type finding struct {
	line  int
	check string
}

func (f finding) String() string { return fmt.Sprintf("line %d: %s", f.line, f.check) }

var wantMarker = regexp.MustCompile(`// want ([a-z]+)\s*$`)

// expectedFindings scans a fixture directory for `// want <check>`
// line markers.
func expectedFindings(t *testing.T, dir string) map[finding]bool {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[finding]bool)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			if m := wantMarker.FindStringSubmatch(line); m != nil {
				want[finding{line: i + 1, check: m[1]}] = true
			}
		}
	}
	return want
}

// runFixture loads testdata/src/<name> and applies one analyzer,
// comparing the (line, check) set of its surviving findings against the
// fixture's markers.
func runFixture(t *testing.T, name string, a *Analyzer) {
	t.Helper()
	moduleDir, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(moduleDir)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join("testdata", "src", name)
	p, err := l.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[finding]bool)
	for _, d := range RunPackage(p, []*Analyzer{a}) {
		if d.Check != a.Name {
			t.Errorf("unexpected %s diagnostic from the %s run: %s", d.Check, a.Name, d)
			continue
		}
		got[finding{line: d.Pos.Line, check: d.Check}] = true
	}
	want := expectedFindings(t, dir)
	if len(want) == 0 {
		t.Fatalf("fixture %s has no want markers", name)
	}
	for f := range want {
		if !got[f] {
			t.Errorf("%s: expected finding missing: %s", name, f)
		}
	}
	for f := range got {
		if !want[f] {
			t.Errorf("%s: unexpected finding: %s", name, f)
		}
	}
}

func TestHotPathFixture(t *testing.T)       { runFixture(t, "hotpath", HotPath) }
func TestHotPathStrictFixture(t *testing.T) { runFixture(t, "hotpathstrict", HotPathStrict) }
func TestFloatCmpFixture(t *testing.T)      { runFixture(t, "floatcmp", FloatCmp) }
func TestGlobalRandFixture(t *testing.T)    { runFixture(t, "globalrand", GlobalRand) }
func TestPanicFmtFixture(t *testing.T)      { runFixture(t, "panicfmt", PanicFmt) }
func TestErrCheckFixture(t *testing.T)      { runFixture(t, "errcheck", ErrCheck) }
func TestMapRangeFixture(t *testing.T)      { runFixture(t, "maprange", MapRange) }
func TestGoroutinesFixture(t *testing.T)    { runFixture(t, "goroutines", Goroutines) }
func TestCtxFlowFixture(t *testing.T)       { runFixture(t, "ctxflow", CtxFlow) }

// TestIgnoreNeedsJustification checks that a bare suppression directive
// is itself reported.
func TestIgnoreNeedsJustification(t *testing.T) {
	moduleDir, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(moduleDir)
	if err != nil {
		t.Fatal(err)
	}
	p, err := l.LoadDir(filepath.Join("testdata", "src", "badignore"))
	if err != nil {
		t.Fatal(err)
	}
	diags := RunPackage(p, All)
	var checks []string
	for _, d := range diags {
		checks = append(checks, d.Check)
	}
	sort.Strings(checks)
	if len(checks) != 1 || checks[0] != "ignore" {
		t.Fatalf("got checks %v, want exactly one \"ignore\" finding", checks)
	}
}

// TestByName rejects unknown analyzer names and resolves subsets.
func TestByName(t *testing.T) {
	subset, err := ByName("floatcmp,errcheck")
	if err != nil || len(subset) != 2 {
		t.Fatalf("ByName subset = %v, %v", subset, err)
	}
	if _, err := ByName("nosuchcheck"); err == nil {
		t.Fatal("ByName accepted an unknown check")
	}
}

// repoIgnoreBudget pins the number of justified //tcamvet:ignore
// directives in shipped (non-test, non-testdata) sources. Every
// suppression is a standing exception to a determinism or performance
// invariant; adding one is a reviewed decision, so a new directive must
// bump this constant in the same change that justifies it.
const repoIgnoreBudget = 16

// TestRepoIsClean runs the full suite — all nine analyzers — over the
// live repository; the tree must stay free of findings (satellite
// guarantee of the vet suite), and the count of justified ignores must
// not drift past the pinned budget.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-repo type-check is not a -short test")
	}
	if got := len(All); got != 9 {
		t.Errorf("registry has %d analyzers, want 9; update the suite docs and this test together", got)
	}
	moduleDir, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(moduleDir)
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := ExpandPatterns([]string{moduleDir + string(filepath.Separator) + "..."})
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(l, dirs, All)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("repo finding: %s", d)
	}

	ignores, err := countIgnoreDirectives(moduleDir)
	if err != nil {
		t.Fatal(err)
	}
	if ignores != repoIgnoreBudget {
		t.Errorf("repo carries %d //tcamvet:ignore directives, budget is %d; "+
			"if the new suppression is justified, record it in DESIGN.md §13 and bump repoIgnoreBudget",
			ignores, repoIgnoreBudget)
	}
}

// countIgnoreDirectives counts lines that begin with a //tcamvet:ignore
// directive in shipped .go files under root, skipping test files and the
// analyzer fixtures (testdata), where ignores only exercise the
// machinery.
func countIgnoreDirectives(root string) (int, error) {
	count := 0
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return fs.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, line := range strings.Split(string(data), "\n") {
			if strings.HasPrefix(strings.TrimSpace(line), ignorePrefix+" ") {
				count++
			}
		}
		return nil
	})
	return count, err
}
