package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotPath enforces the serving-layer allocation contract: a function
// annotated //tcam:hotpath may not contain
//
//   - make or new calls,
//   - map or slice composite literals,
//   - append to slices not rooted in a parameter, receiver or named
//     result (growing caller-owned scratch is amortized and allowed;
//     growing anything else allocates per call),
//   - calls into fmt,
//   - string concatenation,
//   - closures (func literals capture and escape),
//   - conversions of concrete non-pointer-shaped values to interface
//     types (boxing allocates).
//
// Arguments of panic calls are exempt: a precondition failure never
// returns, so its message formatting cannot affect steady-state cost.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "//tcam:hotpath functions must stay allocation-free",
	Run:  runHotPath,
}

const hotPathDirective = "//tcam:hotpath"

func runHotPath(p *Pkg) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotPath(fd) {
				continue
			}
			diags = append(diags, checkHotPathFunc(p, fd)...)
		}
	}
	return diags
}

// isHotPath reports whether the function's doc comment carries the
// //tcam:hotpath directive.
func isHotPath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == hotPathDirective || strings.HasPrefix(c.Text, hotPathDirective+" ") {
			return true
		}
	}
	return false
}

func checkHotPathFunc(p *Pkg, fd *ast.FuncDecl) []Diagnostic {
	name := fd.Name.Name
	owned := ownedObjects(p, fd)
	var diags []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, diag(p, pos, "hotpath", format, args...))
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isBuiltin(p, n, "panic") {
				return false // error path: never returns, cost irrelevant
			}
			switch {
			case isBuiltin(p, n, "make"):
				report(n.Pos(), "%s: make allocates in a hot path", name)
			case isBuiltin(p, n, "new"):
				report(n.Pos(), "%s: new allocates in a hot path", name)
			case isBuiltin(p, n, "append"):
				if len(n.Args) > 0 && !rootedInOwned(p, owned, n.Args[0]) {
					report(n.Pos(), "%s: append to a slice not owned by a parameter or receiver", name)
				}
			default:
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && selectorPkgPath(p, sel) == "fmt" {
					report(n.Pos(), "%s: fmt.%s call in a hot path", name, sel.Sel.Name)
				}
			}
			diags = append(diags, callBoxing(p, name, n)...)
		case *ast.CompositeLit:
			if t := p.Info.TypeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					report(n.Pos(), "%s: slice literal allocates in a hot path", name)
				case *types.Map:
					report(n.Pos(), "%s: map literal allocates in a hot path", name)
				}
			}
		case *ast.FuncLit:
			report(n.Pos(), "%s: closure in a hot path", name)
			return false
		case *ast.BinaryExpr:
			if n.Op == token.ADD && (isString(p.Info.TypeOf(n.X)) || isString(p.Info.TypeOf(n.Y))) {
				report(n.Pos(), "%s: string concatenation allocates in a hot path", name)
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(p.Info.TypeOf(n.Lhs[0])) {
				report(n.Pos(), "%s: string concatenation allocates in a hot path", name)
			}
			if n.Tok == token.ASSIGN && len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					if boxesInto(p, p.Info.TypeOf(lhs), n.Rhs[i]) {
						report(n.Rhs[i].Pos(), "%s: assignment boxes a concrete value into an interface", name)
					}
				}
			}
		case *ast.ValueSpec:
			if n.Type != nil {
				t := p.Info.TypeOf(n.Type)
				for _, v := range n.Values {
					if boxesInto(p, t, v) {
						report(v.Pos(), "%s: declaration boxes a concrete value into an interface", name)
					}
				}
			}
		case *ast.ReturnStmt:
			diags = append(diags, returnBoxing(p, name, fd, n)...)
		}
		return true
	})
	return diags
}

// ownedObjects collects the objects a hot-path function may grow:
// its receiver, parameters and named results.
func ownedObjects(p *Pkg, fd *ast.FuncDecl) map[types.Object]bool {
	owned := make(map[types.Object]bool)
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, id := range field.Names {
				if obj := p.Info.Defs[id]; obj != nil {
					owned[obj] = true
				}
			}
		}
	}
	addFields(fd.Recv)
	addFields(fd.Type.Params)
	addFields(fd.Type.Results)
	return owned
}

// rootedInOwned reports whether e is derived from an owned object —
// e.g. s.out[:0] and *h both root in their receiver.
func rootedInOwned(p *Pkg, owned map[types.Object]bool, e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return owned[p.Info.Uses[x]]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return false
		}
	}
}

// callBoxing flags arguments (and conversion operands) that box a
// concrete value into an interface.
func callBoxing(p *Pkg, name string, call *ast.CallExpr) []Diagnostic {
	var diags []Diagnostic
	tv, ok := p.Info.Types[call.Fun]
	if !ok {
		return nil
	}
	if tv.IsType() { // explicit conversion T(x)
		if len(call.Args) == 1 && boxesInto(p, tv.Type, call.Args[0]) {
			diags = append(diags, diag(p, call.Pos(),
				"hotpath", "%s: conversion boxes a concrete value into an interface", name))
		}
		return diags
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return nil
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, nothing boxes here
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if boxesInto(p, pt, arg) {
			diags = append(diags, diag(p, arg.Pos(),
				"hotpath", "%s: argument boxes a concrete value into an interface", name))
		}
	}
	return diags
}

// returnBoxing flags return values boxed into interface-typed results.
func returnBoxing(p *Pkg, name string, fd *ast.FuncDecl, ret *ast.ReturnStmt) []Diagnostic {
	fn, ok := p.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil
	}
	results := fn.Type().(*types.Signature).Results()
	if results.Len() != len(ret.Results) {
		return nil // bare return or tuple passthrough
	}
	var diags []Diagnostic
	for i, e := range ret.Results {
		if boxesInto(p, results.At(i).Type(), e) {
			diags = append(diags, diag(p, e.Pos(),
				"hotpath", "%s: return boxes a concrete value into an interface", name))
		}
	}
	return diags
}

// boxesInto reports whether assigning expression e to a destination of
// type dst converts a concrete value into an interface in a way that
// may allocate. Pointer-shaped values (pointers, maps, channels, funcs,
// unsafe.Pointer) store directly in the interface word and are exempt,
// as are nil and values already of interface type.
func boxesInto(p *Pkg, dst types.Type, e ast.Expr) bool {
	if dst == nil || !types.IsInterface(dst) {
		return false
	}
	t := p.Info.TypeOf(e)
	if t == nil || types.IsInterface(t) {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return false
	case *types.Basic:
		if u.Kind() == types.UntypedNil || u.Kind() == types.UnsafePointer {
			return false
		}
	}
	return true
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
