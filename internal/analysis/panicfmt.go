package analysis

import (
	"go/ast"
	"go/constant"
	"strings"
)

// PanicFmt constrains panics to their one sanctioned role: precondition
// checks. Every panic must carry a constant string message (directly,
// or as the constant format of fmt.Sprintf / fmt.Errorf / errors.New)
// prefixed with the package name and a colon — "topk: ...", "itcam:
// ..." — so a crash in production names its origin without a symbolized
// stack. Panics that rethrow arbitrary values need a justified
// //tcamvet:ignore. Main packages keep the constant-message requirement
// but may choose their own prefix.
var PanicFmt = &Analyzer{
	Name: "panicfmt",
	Doc:  "panics carry a constant pkg:-prefixed message",
	Run:  runPanicFmt,
}

func runPanicFmt(p *Pkg) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isBuiltin(p, call, "panic") || len(call.Args) != 1 {
				return true
			}
			msg, ok := panicMessage(p, call.Args[0])
			if !ok {
				diags = append(diags, diag(p, call.Pos(), "panicfmt",
					"panic message must be a constant string (or a fmt.Sprintf/errors.New with a constant format)"))
				return true
			}
			if p.Types.Name() == "main" {
				return true
			}
			if want := p.Types.Name() + ":"; !strings.HasPrefix(msg, want) {
				diags = append(diags, diag(p, call.Pos(), "panicfmt",
					"panic message %q must start with %q", msg, want))
			}
			return true
		})
	}
	return diags
}

// panicMessage extracts the constant message of a panic argument: a
// constant string expression, or the constant first argument of
// fmt.Sprintf, fmt.Errorf or errors.New.
func panicMessage(p *Pkg, arg ast.Expr) (string, bool) {
	if s, ok := constString(p, arg); ok {
		return s, true
	}
	call, ok := ast.Unparen(arg).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return "", false
	}
	if pkgFunc(p, call, "fmt", "Sprintf") || pkgFunc(p, call, "fmt", "Errorf") || pkgFunc(p, call, "errors", "New") {
		return constString(p, call.Args[0])
	}
	return "", false
}

func constString(p *Pkg, e ast.Expr) (string, bool) {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
