// Package panicfmt exercises the panic-message check.
package panicfmt

import "fmt"

// BadDynamic rethrows a non-constant value.
func BadDynamic(err error) {
	panic(err) // want panicfmt
}

// BadPrefix panics with a constant message missing the package prefix.
func BadPrefix() {
	panic("other: boom") // want panicfmt
}

// Good panics with a constant, prefixed message.
func Good(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("panicfmt: negative n %d", n))
	}
	return n
}

// GoodPlain panics with a plain constant string.
func GoodPlain(ok bool) {
	if !ok {
		panic("panicfmt: precondition violated")
	}
}
