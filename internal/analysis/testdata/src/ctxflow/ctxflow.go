// Package ctxflow exercises the context-propagation check (the package
// is named in the analyzer's fixture scope).
package ctxflow

import "context"

type store struct{}

func (s *store) Lookup(key string) int                             { return len(key) }
func (s *store) LookupContext(ctx context.Context, key string) int { return len(key) }

func query(key string) int                             { return len(key) }
func queryContext(ctx context.Context, key string) int { return len(key) }

func plain(key string) int { return len(key) }

// Detached mints fresh roots despite receiving a context.
func Detached(ctx context.Context) {
	_ = context.Background() // want ctxflow
	_ = context.TODO()       // want ctxflow
}

// Severed calls the context-blind siblings even though …Context
// variants exist.
func Severed(ctx context.Context, s *store) int {
	a := query("k")    // want ctxflow
	b := s.Lookup("k") // want ctxflow
	return a + b
}

// Threaded passes the received context everywhere.
func Threaded(ctx context.Context, s *store) int {
	a := queryContext(ctx, "k")
	b := s.LookupContext(ctx, "k")
	return a + plain("k") + b
}

// Derived contexts are fine: WithTimeout/WithCancel build on the
// caller's context rather than replacing it.
func Derived(ctx context.Context) context.Context {
	c, cancel := context.WithCancel(ctx)
	cancel()
	return c
}

// NoContext has no context parameter, so the contract does not apply;
// calling the blind variant here is legal.
func NoContext(s *store) int {
	return query("k") + s.Lookup("k")
}

// Justified documents intentionally detached background work.
func Justified(ctx context.Context) int {
	//tcamvet:ignore ctxflow fixture: audit write must outlive request
	return query("k")
}
