// Package globalrand exercises the seeded-randomness check.
package globalrand

import "math/rand"

// Draw consumes the shared package-level source.
func Draw() int {
	return rand.Intn(10) // want globalrand
}

// Noise consumes the shared source through a float draw.
func Noise() float64 {
	return rand.Float64() // want globalrand
}

// Seeded draws from an explicit source and is fine; the rand.New and
// rand.NewSource constructors are not draws.
func Seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}
