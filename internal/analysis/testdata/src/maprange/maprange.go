// Package maprange exercises the map-iteration-order check. The
// fixture lives under internal/, so the check applies to it.
package maprange

import (
	"fmt"
	"os"
	"sort"
)

// CollectUnsorted appends map keys without sorting: the slice order is
// whatever the runtime's iteration produced.
func CollectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want maprange
		keys = append(keys, k)
	}
	return keys
}

// CollectSorted is the sanctioned collect-then-sort idiom.
func CollectSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// CollectSortSlice sorts with sort.Slice instead of sort.Strings.
func CollectSortSlice(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// WriteEntries prints in iteration order.
func WriteEntries(m map[string]int) {
	for k, v := range m { // want maprange
		fmt.Fprintf(os.Stderr, "%s=%d\n", k, v)
	}
}

// SumFloats accumulates float64 values, so the rounding depends on
// visit order.
func SumFloats(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want maprange
		sum += v
	}
	return sum
}

// SumFloatsSpelledOut writes the accumulation as x = x + v.
func SumFloatsSpelledOut(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want maprange
		sum = sum + v
	}
	return sum
}

// BuildString concatenates in iteration order.
func BuildString(m map[string]int) string {
	s := ""
	for k := range m { // want maprange
		s += k
	}
	return s
}

// SendKeys leaks order through a channel.
func SendKeys(m map[string]int, ch chan string) {
	for k := range m { // want maprange
		ch <- k
	}
}

// BuildSet only constructs another map: order-independent.
func BuildSet(m map[string]int) map[string]bool {
	set := make(map[string]bool, len(m))
	for k := range m {
		set[k] = true
	}
	return set
}

// CountEntries bumps an integer counter: integer addition commutes.
func CountEntries(m map[string]int) int {
	n := 0
	for _, v := range m {
		if v > 0 {
			n++
		}
	}
	return n
}

// DeleteNegatives mutates the map itself, which is order-independent.
func DeleteNegatives(m map[string]int) {
	for k, v := range m {
		if v < 0 {
			delete(m, k)
		}
	}
}

// Justified documents an intentional nondeterministic drain.
func Justified(m map[string]int, ch chan string) {
	//tcamvet:ignore maprange fixture: consumer explicitly order-agnostic
	for k := range m {
		ch <- k
	}
}
