// Package goroutines exercises the join-accounting check. The fixture
// lives under internal/, so the check applies to it.
package goroutines

import "sync"

func work(i int) int { return i * i }

// FireAndForget spawns with no join anywhere in the function.
func FireAndForget() {
	go work(1) // want goroutines
}

// FireAndForgetClosure hides the spawn in a closure; still unjoined.
func FireAndForgetClosure() {
	f := func() {
		go work(2) // want goroutines
	}
	f()
}

// WaitGroupJoin is the canonical fork/join shape.
func WaitGroupJoin(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			work(i)
		}(i)
	}
	wg.Wait()
}

// ChannelJoin collects one result per spawn through a channel.
func ChannelJoin(n int) int {
	ch := make(chan int)
	for i := 0; i < n; i++ {
		go func(i int) { ch <- work(i) }(i)
	}
	total := 0
	for i := 0; i < n; i++ {
		total += <-ch
	}
	return total
}

// RangeJoin drains a channel with range, which is also a join.
func RangeJoin(n int) int {
	ch := make(chan int, n)
	for i := 0; i < n; i++ {
		go func(i int) { ch <- work(i) }(i)
	}
	close(ch)
	total := 0
	for v := range ch {
		total += v
	}
	return total
}

// SelectJoin waits through a select statement.
func SelectJoin(done chan struct{}) {
	go func() { close(done) }()
	select {
	case <-done:
	}
}

// Spawner is lifecycle code whose goroutine is joined elsewhere
// (e.g. by a Shutdown method); the annotation opts it out.
//
//tcam:spawner background loop joined by Stop
func Spawner() {
	go work(4)
}

// Justified spawns without a join but documents why.
func Justified() {
	//tcamvet:ignore goroutines fixture: process-lifetime daemon
	go work(3)
}
