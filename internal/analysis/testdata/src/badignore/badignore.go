// Package badignore exercises the malformed-suppression rule: a
// directive naming a check but no justification is itself a finding.
package badignore

// Sentinel compares floats but its suppression lacks a justification,
// so the run reports the bare directive (and suppresses the floatcmp
// finding it covers).
func Sentinel(a float64) bool {
	//tcamvet:ignore floatcmp
	return a == 0
}
