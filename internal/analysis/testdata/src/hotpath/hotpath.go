// Package hotpath exercises the //tcam:hotpath allocation rules. Each
// line carrying a `// want hotpath` marker must produce at least one
// hotpath diagnostic; unmarked lines must produce none.
package hotpath

import "fmt"

type ring struct {
	buf []int
}

var shared []int

// Grow may append to receiver-owned scratch but not allocate.
//
//tcam:hotpath
func (r *ring) Grow(n int) int {
	r.buf = append(r.buf, n)
	s := make([]int, n) // want hotpath
	return len(s)
}

// Label calls into fmt (flagged) and boxes its argument (also flagged).
//
//tcam:hotpath
func Label(n int) string {
	return fmt.Sprint(n) // want hotpath
}

// Literal builds a slice literal.
//
//tcam:hotpath
func Literal() int {
	xs := []int{1, 2, 3} // want hotpath
	return len(xs)
}

// Closure captures its environment.
//
//tcam:hotpath
func Closure(n int) int {
	f := func() int { return n } // want hotpath
	return f()
}

// Concat concatenates strings.
//
//tcam:hotpath
func Concat(a, b string) string {
	return a + b // want hotpath
}

// Box returns a boxed int.
//
//tcam:hotpath
func Box(n int) any {
	return n // want hotpath
}

// StealAppend grows a slice it does not own.
//
//tcam:hotpath
func StealAppend(n int) {
	shared = append(shared, n) // want hotpath
}

// Sum is annotated and clean: index arithmetic, range loops and struct
// access allocate nothing.
//
//tcam:hotpath
func Sum(xs []int) int {
	var s int
	for _, x := range xs {
		s += x
	}
	return s
}

// Guarded may format its panic message: the error path never returns.
//
//tcam:hotpath
func Guarded(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("hotpath: negative n %d", n))
	}
	return n * 2
}
