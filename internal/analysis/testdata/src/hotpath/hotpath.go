// Package hotpath exercises the //tcam:hotpath allocation rules. Each
// line carrying a `// want hotpath` marker must produce at least one
// hotpath diagnostic; unmarked lines must produce none.
package hotpath

import "fmt"

type ring struct {
	buf []int
}

var shared []int

// Grow may append to receiver-owned scratch but not allocate.
//
//tcam:hotpath
func (r *ring) Grow(n int) int {
	r.buf = append(r.buf, n)
	s := make([]int, n) // want hotpath
	return len(s)
}

// Label calls into fmt (flagged) and boxes its argument (also flagged).
//
//tcam:hotpath
func Label(n int) string {
	return fmt.Sprint(n) // want hotpath
}

// Literal builds a slice literal.
//
//tcam:hotpath
func Literal() int {
	xs := []int{1, 2, 3} // want hotpath
	return len(xs)
}

// Closure captures its environment.
//
//tcam:hotpath
func Closure(n int) int {
	f := func() int { return n } // want hotpath
	return f()
}

// Concat concatenates strings.
//
//tcam:hotpath
func Concat(a, b string) string {
	return a + b // want hotpath
}

// Box returns a boxed int.
//
//tcam:hotpath
func Box(n int) any {
	return n // want hotpath
}

// StealAppend grows a slice it does not own.
//
//tcam:hotpath
func StealAppend(n int) {
	shared = append(shared, n) // want hotpath
}

// Sum is annotated and clean: index arithmetic, range loops and struct
// access allocate nothing.
//
//tcam:hotpath
func Sum(xs []int) int {
	var s int
	for _, x := range xs {
		s += x
	}
	return s
}

// Guarded may format its panic message: the error path never returns.
//
//tcam:hotpath
func Guarded(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("hotpath: negative n %d", n))
	}
	return n * 2
}

// csr mimics the cuboid's structure-of-arrays layout: parallel columns
// plus a row-pointer slice.
type csr struct {
	ts, vs  []int32
	scores  []float64
	ptr     []int32
	scratch []float64
}

// Span is a clean CSR accessor: row-pointer indexing returns value
// pairs without touching the allocator.
//
//tcam:hotpath
func (c *csr) Span(u int) (int, int) {
	return int(c.ptr[u]), int(c.ptr[u+1])
}

// View is a clean multi-slice return: handing out existing backing
// arrays allocates nothing.
//
//tcam:hotpath
func (c *csr) View() ([]int32, []int32, []float64) {
	return c.ts, c.vs, c.scores
}

// ScanRow is a clean CSR row walk: span lookup, column reads and
// accumulation stay allocation-free.
//
//tcam:hotpath
func (c *csr) ScanRow(u int) float64 {
	lo, hi := c.Span(u)
	var s float64
	for i := lo; i < hi; i++ {
		s += c.scores[i] * float64(c.vs[i])
	}
	return s
}

// Gather may refill its receiver-owned scratch column, but allocating
// a fresh column per call is flagged.
//
//tcam:hotpath
func (c *csr) Gather(u int) []float64 {
	lo, hi := c.Span(u)
	fresh := make([]float64, 0, hi-lo) // want hotpath
	_ = fresh
	c.scratch = c.scratch[:0]
	for i := lo; i < hi; i++ {
		c.scratch = append(c.scratch, c.scores[i])
	}
	return c.scratch
}

// DotUnrolled is the 4-wide slice-forward unrolled kernel shape
// (internal/topk/score.go, internal/train/kernels.go): reslicing the
// operands forward by four each step and a range remainder loop are all
// view operations — clean under the hotpath rules.
//
//tcam:hotpath
func DotUnrolled(a, b []float64) float64 {
	b = b[:len(a)]
	var s float64
	for len(a) >= 4 && len(b) >= 4 {
		s += a[0] * b[0]
		s += a[1] * b[1]
		s += a[2] * b[2]
		s += a[3] * b[3]
		a = a[4:]
		b = b[4:]
	}
	b = b[:len(a)]
	for j, x := range a {
		s += x * b[j]
	}
	return s
}

// DotUnrolledLeaky is the same kernel shape with a per-call spill
// buffer: the unrolled loop stays clean, the make is flagged.
//
//tcam:hotpath
func DotUnrolledLeaky(a, b []float64) float64 {
	tmp := make([]float64, len(a)) // want hotpath
	copy(tmp, a)
	var s float64
	for len(tmp) >= 4 && len(b) >= 4 {
		s += tmp[0] * b[0]
		s += tmp[1] * b[1]
		s += tmp[2] * b[2]
		s += tmp[3] * b[3]
		tmp = tmp[4:]
		b = b[4:]
	}
	b = b[:len(tmp)]
	for j, x := range tmp {
		s += x * b[j]
	}
	return s
}

// The result-cache shapes (internal/rescache): generic methods under
// the annotation must get the same treatment as monomorphic ones — a
// clean set-scan probe stays clean, and instantiating the entry on the
// insert path is flagged like any other allocation.

type cacheEntry[V any] struct {
	key   uint64
	epoch uint64
	val   V
}

type genericCache[V any] struct {
	slots []*cacheEntry[V]
}

// Probe is the hit path: comparisons and field loads only.
//
//tcam:hotpath
func (c *genericCache[V]) Probe(epoch, key uint64) (V, bool) {
	for _, e := range c.slots {
		if e == nil || e.key != key {
			continue
		}
		if e.epoch != epoch {
			continue
		}
		return e.val, true
	}
	var zero V
	return zero, false
}

// Insert allocates the boxed entry — which is why the real cache keeps
// its insert path off the annotation; unannotated generic code stays
// out of scope.
func (c *genericCache[V]) Insert(epoch, key uint64, val V) {
	e := &cacheEntry[V]{key: key, epoch: epoch, val: val}
	c.slots[key%uint64(len(c.slots))] = e
}

// Spill allocates a type-parameter-typed scratch slice: the make rule
// must fire on generic element types too.
//
//tcam:hotpath
func (c *genericCache[V]) Spill(vals []V) int {
	tmp := make([]V, len(vals)) // want hotpath
	copy(tmp, vals)
	return len(tmp)
}
