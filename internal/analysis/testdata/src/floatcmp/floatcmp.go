// Package floatcmp exercises the float-equality check.
package floatcmp

// Equalish compares floats the forbidden way.
func Equalish(a, b float64) bool {
	return a == b // want floatcmp
}

// Different compares floats the forbidden way.
func Different(a, b float32) bool {
	return a != b // want floatcmp
}

// Justified carries a suppression with a justification and must not
// fire.
func Justified(a float64) bool {
	//tcamvet:ignore floatcmp exact sentinel comparison is the fixture's suppression case
	return a == 0
}

// Ints may compare exactly: the check is float-only.
func Ints(a, b int) bool {
	return a == b
}

// Ordered comparisons are always fine.
func Ordered(a, b float64) bool {
	return a < b
}
