// Package errcheck exercises the dropped-error check. The fixture lives
// under internal/, so the check applies to it.
package errcheck

import (
	"errors"
	"fmt"
	"os"
)

func fallible() error { return errors.New("errcheck fixture") }

// Dropped discards errors in all three statement forms.
func Dropped() {
	fallible()       // want errcheck
	defer fallible() // want errcheck
	go fallible()    // want errcheck
}

// Handled returns or visibly discards every error.
func Handled() error {
	_ = fallible()
	if err := fallible(); err != nil {
		return err
	}
	return nil
}

// Prints may drop the unactionable errors of the excluded print
// functions.
func Prints() {
	fmt.Println("fixture")
	fmt.Fprintf(os.Stderr, "fixture %d\n", 1)
}
