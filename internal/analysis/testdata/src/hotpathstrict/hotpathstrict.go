// Package hotpathstrict exercises the strict hot-path check. Only
// functions annotated //tcam:hotpath are in scope.
package hotpathstrict

import (
	"math"
	"sync"
)

type scorer interface{ Score(i int) float64 }

type table struct{ w []float64 }

func (t *table) Score(i int) float64 { return t.w[i] }

// DeferInHotPath pays a defer frame on every call.
//
//tcam:hotpath
func DeferInHotPath(mu *sync.Mutex) {
	mu.Lock()
	defer mu.Unlock() // want hotpathstrict
}

// InterfaceDispatch scores through an interface value.
//
//tcam:hotpath
func InterfaceDispatch(s scorer, n int) float64 {
	total := 0.0
	for i := 0; i < n; i++ {
		total += s.Score(i) // want hotpathstrict
	}
	return total
}

// ConcreteDispatch devirtualizes statically: the receiver is concrete.
//
//tcam:hotpath
func ConcreteDispatch(t *table, n int) float64 {
	total := 0.0
	for i := 0; i < n; i++ {
		total += t.Score(i)
	}
	return total
}

// ConstPow squares with the transcendental pow.
//
//tcam:hotpath
func ConstPow(x float64) float64 {
	return math.Pow(x, 2) // want hotpathstrict
}

// VariablePow is legitimate: the exponent is data.
//
//tcam:hotpath
func VariablePow(x, y float64) float64 {
	return math.Pow(x, y)
}

// FractionalPow is legitimate: no multiplication chain computes x^0.5.
//
//tcam:hotpath
func FractionalPow(x float64) float64 {
	return math.Pow(x, 0.5)
}

// StringCopy converts between string and []byte, copying every call.
//
//tcam:hotpath
func StringCopy(key []byte, buf []byte) int {
	s := string(key) // want hotpathstrict
	return len(s) + len(buf)
}

// ByteCopy converts the other direction.
//
//tcam:hotpath
func ByteCopy(key string) int {
	b := []byte(key) // want hotpathstrict
	return len(b)
}

// ColdPath is unannotated: the strict rules do not apply.
func ColdPath(mu *sync.Mutex, s scorer, x float64) float64 {
	mu.Lock()
	defer mu.Unlock()
	_ = []byte("cold")
	return math.Pow(x, 2) + s.Score(0)
}

// Justified keeps an interface call with an explicit justification.
//
//tcam:hotpath
func Justified(s scorer) float64 {
	//tcamvet:ignore hotpathstrict fixture: single concrete impl, devirtualized in practice
	return s.Score(0)
}
