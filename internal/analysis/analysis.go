// Package analysis implements tcamvet, the repo's static-analysis suite.
// It enforces the invariants the serving and training layers rely on but
// cannot express in the type system:
//
//   - hotpath: functions annotated //tcam:hotpath stay allocation-free
//     (no make/new, map/slice literals, appends to non-parameter slices,
//     fmt calls, string concatenation, closures, or interface boxing).
//   - floatcmp: no ==/!= between floating-point operands; exact
//     comparisons hide in tie-breaks and must be rewritten or justified.
//   - globalrand: library packages draw randomness only from an explicit
//     seeded *rand.Rand, never the package-level math/rand source, so
//     every run is reproducible.
//   - panicfmt: panics are precondition checks carrying a constant,
//     "pkg:"-prefixed message.
//   - errcheck: no error return is silently dropped in cmd/ or internal/
//     (a visible `_ =` discard is allowed).
//   - hotpathstrict: //tcam:hotpath functions additionally avoid defer,
//     interface dispatch, constant-exponent math.Pow and string ⇄ []byte
//     copies.
//   - maprange: map iteration in cmd/ and internal/ must not leak its
//     nondeterministic order into output (slices, writers, float
//     accumulators, channels); collect-then-sort passes.
//   - goroutines: every go statement in internal/ is join-accounted
//     (WaitGroup/channel in the same function, or //tcam:spawner).
//   - ctxflow: in the serving and training packages, a function that
//     receives a context must not mint context.Background()/TODO() and
//     must prefer a sibling's …Context variant when one exists.
//
// The driver is pure stdlib: packages are discovered by walking
// directories, parsed with go/parser and type-checked with go/types,
// resolving module-local imports from source and standard-library
// imports through go/importer. Findings are suppressed line-by-line with
// `//tcamvet:ignore <check> <justification>` directives; a directive
// without a justification is itself a finding.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position, the check that fired and a
// human-readable message.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

// String formats the finding in the conventional file:line:col style.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Check, d.Message)
}

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(p *Pkg) []Diagnostic
}

// All lists every analyzer in the suite, in reporting order.
var All = []*Analyzer{
	HotPath, HotPathStrict, FloatCmp, GlobalRand, PanicFmt, ErrCheck,
	MapRange, Goroutines, CtxFlow,
}

// ByName returns the analyzers matching the comma-separated list, or All
// when the list is empty. Unknown names are an error.
func ByName(list string) ([]*Analyzer, error) {
	if list == "" {
		return All, nil
	}
	var out []*Analyzer
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, a := range All {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("analysis: unknown check %q", name)
		}
	}
	return out, nil
}

// Run loads every package directory and applies the given analyzers,
// returning the surviving findings sorted by position. Suppression
// directives are honored here so every caller (CLI, tests) sees the
// same filtering.
func Run(l *Loader, dirs []string, checks []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, dir := range dirs {
		p, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		diags = append(diags, RunPackage(p, checks)...)
	}
	sortDiagnostics(diags)
	return diags, nil
}

// RunPackage applies the analyzers to one loaded package and filters the
// findings through the package's //tcamvet:ignore directives.
func RunPackage(p *Pkg, checks []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range checks {
		diags = append(diags, a.Run(p)...)
	}
	ig := collectIgnores(p)
	diags = append(diags, ig.malformed...)
	kept := diags[:0]
	for _, d := range diags {
		if !ig.suppresses(d) {
			kept = append(kept, d)
		}
	}
	return kept
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
}

// diag builds a Diagnostic at the given node position.
func diag(p *Pkg, pos token.Pos, check, format string, args ...any) Diagnostic {
	return Diagnostic{
		Pos:     p.Fset.Position(pos),
		Check:   check,
		Message: fmt.Sprintf(format, args...),
	}
}

// ignoreSet records which (file, line) pairs suppress which checks. A
// directive suppresses findings on its own line (trailing comment) and
// on the line immediately below (comment-above style).
type ignoreSet struct {
	byFileLine map[string]map[int]map[string]bool
	malformed  []Diagnostic
}

const ignorePrefix = "//tcamvet:ignore"

func collectIgnores(p *Pkg) *ignoreSet {
	ig := &ignoreSet{byFileLine: make(map[string]map[int]map[string]bool)}
	for _, f := range p.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				rest, ok := strings.CutPrefix(c.Text, ignorePrefix)
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					ig.malformed = append(ig.malformed, Diagnostic{
						Pos: pos, Check: "ignore",
						Message: "tcamvet:ignore needs a check name and a justification",
					})
					continue
				}
				if len(fields) < 2 {
					ig.malformed = append(ig.malformed, Diagnostic{
						Pos: pos, Check: "ignore",
						Message: fmt.Sprintf("tcamvet:ignore %s needs a justification after the check name", fields[0]),
					})
				}
				for _, check := range strings.Split(fields[0], ",") {
					ig.add(pos.Filename, pos.Line, check)
					ig.add(pos.Filename, pos.Line+1, check)
				}
			}
		}
	}
	return ig
}

func (ig *ignoreSet) add(file string, line int, check string) {
	lines := ig.byFileLine[file]
	if lines == nil {
		lines = make(map[int]map[string]bool)
		ig.byFileLine[file] = lines
	}
	checks := lines[line]
	if checks == nil {
		checks = make(map[string]bool)
		lines[line] = checks
	}
	checks[check] = true
}

func (ig *ignoreSet) suppresses(d Diagnostic) bool {
	return ig.byFileLine[d.Pos.Filename][d.Pos.Line][d.Check]
}

// isFloat reports whether t's underlying type is a floating-point basic
// type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// errorType is the universe error interface.
var errorType = types.Universe.Lookup("error").Type()

// isErrorType reports whether t is exactly the built-in error type.
func isErrorType(t types.Type) bool { return t != nil && types.Identical(t, errorType) }

// pkgFunc reports whether call invokes the package-level function
// pkgPath.name (resolved through the type info, so import renames and
// shadowing are handled).
func pkgFunc(p *Pkg, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	return selectorPkgPath(p, sel) == pkgPath
}

// selectorPkgPath returns the import path when sel is a qualified
// identifier (pkg.Name), or "" otherwise.
func selectorPkgPath(p *Pkg, sel *ast.SelectorExpr) string {
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

// isBuiltin reports whether call invokes the named built-in function.
func isBuiltin(p *Pkg, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := p.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}
