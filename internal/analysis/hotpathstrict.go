package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"math"
)

// HotPathStrict tightens the //tcam:hotpath contract beyond
// allocation-freedom. The base hotpath check keeps annotated functions
// out of the allocator; this one keeps them out of the slow paths the
// allocator check cannot see:
//
//   - no defer — a deferred call costs a frame record on every
//     invocation and pushes work past the hot region's end;
//   - no method calls through interface-typed values — dynamic dispatch
//     blocks inlining and the prove pass, and non-devirtualizable call
//     sites resist every downstream optimization;
//   - no math.Pow with a constant integer exponent — x*x beats the
//     transcendental implementation by two orders of magnitude;
//   - no string ⇄ []byte/[]rune conversions — each one copies, and the
//     copy allocates (interface boxing is the base check's job).
//
// A hit that is intentional (e.g. a devirtualized-in-practice
// interface) needs a justified //tcamvet:ignore hotpathstrict.
var HotPathStrict = &Analyzer{
	Name: "hotpathstrict",
	Doc:  "//tcam:hotpath functions avoid defer, interface dispatch, constant-exponent math.Pow and string copies",
	Run:  runHotPathStrict,
}

func runHotPathStrict(p *Pkg) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotPath(fd) {
				continue
			}
			diags = append(diags, checkHotPathStrictFunc(p, fd)...)
		}
	}
	return diags
}

func checkHotPathStrictFunc(p *Pkg, fd *ast.FuncDecl) []Diagnostic {
	name := fd.Name.Name
	var diags []Diagnostic
	report := func(n ast.Node, format string, args ...any) {
		diags = append(diags, diag(p, n.Pos(), "hotpathstrict", format, args...))
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			report(n, "%s: defer in a hot path; restructure so cleanup runs inline", name)
		case *ast.CallExpr:
			if isBuiltin(p, n, "panic") {
				return false // error path: never returns, cost irrelevant
			}
			if tv, ok := p.Info.Types[n.Fun]; ok && tv.IsType() {
				if len(n.Args) == 1 && copyingConversion(p, tv.Type, n.Args[0]) {
					report(n, "%s: string conversion copies in a hot path", name)
				}
				return true
			}
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if s, isSel := p.Info.Selections[sel]; isSel &&
					s.Kind() == types.MethodVal && types.IsInterface(s.Recv()) {
					report(n, "%s: method call through interface value %s.%s; use the concrete type",
						name, exprString(sel.X), sel.Sel.Name)
				}
			}
			if pkgFunc(p, n, "math", "Pow") && len(n.Args) == 2 {
				if exp, ok := constIntegerExponent(p, n.Args[1]); ok {
					report(n, "%s: math.Pow with constant exponent %g; unroll to multiplications", name, exp)
				}
			}
		}
		return true
	})
	return diags
}

// copyingConversion reports conversions between string and byte/rune
// slices, each of which copies its operand.
func copyingConversion(p *Pkg, dst types.Type, src ast.Expr) bool {
	st := p.Info.TypeOf(src)
	if st == nil {
		return false
	}
	// Constant string operands convert at compile time for
	// []byte("lit")-style initialization; still a copy at runtime, so
	// no exemption.
	return (isString(dst) && isByteOrRuneSlice(st)) ||
		(isByteOrRuneSlice(dst) && isString(st))
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// constIntegerExponent reports whether e is a compile-time constant
// whose value is a (small) integer, the pattern x*x should replace.
func constIntegerExponent(p *Pkg, e ast.Expr) (float64, bool) {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v, ok := constant.Float64Val(constant.ToFloat(tv.Value))
	//tcamvet:ignore floatcmp integrality test on a compile-time constant is exact
	if !ok || v != math.Trunc(v) {
		return 0, false
	}
	return v, true
}

// exprString renders a short receiver expression for the message.
func exprString(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	default:
		return "value"
	}
}
