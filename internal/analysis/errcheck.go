package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrCheck forbids silently dropped error returns in cmd/ and internal/
// packages: a call whose results include an error may not stand alone
// as a statement (including defer and go statements). An explicit
// `_ = f()` discard is allowed — it is visible in review and greppable —
// as are the print functions whose errors are unactionable:
// fmt.Print/Printf/Println, fmt.Fprint* to os.Stdout/os.Stderr or to an
// in-memory bytes.Buffer/strings.Builder, and methods on those two
// types (which are documented to never return a meaningful error).
var ErrCheck = &Analyzer{
	Name: "errcheck",
	Doc:  "no silently discarded error returns in cmd/ and internal/",
	Run:  runErrCheck,
}

func runErrCheck(p *Pkg) []Diagnostic {
	if !errCheckApplies(p) {
		return nil
	}
	var diags []Diagnostic
	check := func(call *ast.CallExpr, how string) {
		if name, ok := dropsError(p, call); ok {
			diags = append(diags, diag(p, call.Pos(), "errcheck",
				"%s of %s discards its error", how, name))
		}
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
					check(call, "call")
				}
			case *ast.DeferStmt:
				check(n.Call, "defer")
			case *ast.GoStmt:
				check(n.Call, "go")
			}
			return true
		})
	}
	return diags
}

// errCheckApplies scopes the check to the module root, cmd/ and
// internal/ trees; examples are demo code and exempt.
func errCheckApplies(p *Pkg) bool {
	return p.Path == p.Module ||
		strings.HasPrefix(p.Path, p.Module+"/cmd/") ||
		strings.HasPrefix(p.Path, p.Module+"/internal/")
}

// dropsError reports whether the bare call discards an error result,
// returning a printable name for the callee.
func dropsError(p *Pkg, call *ast.CallExpr) (string, bool) {
	tv, ok := p.Info.Types[call.Fun]
	if !ok || tv.IsType() {
		return "", false
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return "", false
	}
	results := sig.Results()
	hasErr := false
	for i := 0; i < results.Len(); i++ {
		if isErrorType(results.At(i).Type()) {
			hasErr = true
			break
		}
	}
	if !hasErr || errCheckExcluded(p, call) {
		return "", false
	}
	return calleeName(call), true
}

// errCheckExcluded implements the documented exclusion list.
func errCheckExcluded(p *Pkg, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if selectorPkgPath(p, sel) == "fmt" {
		switch sel.Sel.Name {
		case "Print", "Printf", "Println":
			return true
		case "Fprint", "Fprintf", "Fprintln":
			return len(call.Args) > 0 && unactionableWriter(p, call.Args[0])
		}
		return false
	}
	// Methods on in-memory writers never return a meaningful error.
	return isMemWriter(p.Info.TypeOf(sel.X))
}

// unactionableWriter reports writers whose errors carry no signal:
// the process-standard streams and in-memory buffers.
func unactionableWriter(p *Pkg, e ast.Expr) bool {
	if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok && selectorPkgPath(p, sel) == "os" {
		if sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr" {
			return true
		}
	}
	return isMemWriter(p.Info.TypeOf(e))
}

func isMemWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	full := obj.Pkg().Path() + "." + obj.Name()
	return full == "bytes.Buffer" || full == "strings.Builder"
}

// calleeName renders the called function for the message.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	default:
		return "function"
	}
}
