package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlow keeps the PR 3 cancellation path unbroken end to end in the
// request-handling packages (internal/server, internal/client,
// internal/topk, internal/train). Inside a function that receives a
// context.Context:
//
//   - context.Background() and context.TODO() are forbidden — minting a
//     fresh root silently detaches the callee from the caller's
//     deadline and cancel signal;
//   - calling a sibling (same package) function or method that has a
//     `…Context` variant without passing any context is forbidden —
//     the context-blind spelling severs propagation exactly where the
//     package went to the trouble of offering a context-aware one.
//
// Detached work that must survive the request (audit logs, background
// publication) needs a justified //tcamvet:ignore ctxflow directive.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "context-receiving functions must propagate their context",
	Run:  runCtxFlow,
}

// ctxFlowPackages are the module-relative packages under the contract:
// the serving/query path, the streaming ingest log, the long-running
// training engine and the result cache on the serving hot path.
var ctxFlowPackages = []string{
	"/internal/server",
	"/internal/ingest",
	"/internal/client",
	"/internal/topk",
	"/internal/train",
	"/internal/shard",
	"/internal/rescache",
}

func ctxFlowApplies(p *Pkg) bool {
	for _, suffix := range ctxFlowPackages {
		if p.Path == p.Module+suffix {
			return true
		}
	}
	// The analyzer's own fixture package.
	return strings.HasSuffix(p.Path, "/testdata/src/ctxflow")
}

func runCtxFlow(p *Pkg) []Diagnostic {
	if !ctxFlowApplies(p) {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !receivesContext(p, fd) {
				continue
			}
			diags = append(diags, checkCtxFlowFunc(p, fd)...)
		}
	}
	return diags
}

// receivesContext reports whether any parameter of fd has type
// context.Context.
func receivesContext(p *Pkg, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		if isContextType(p.Info.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

func checkCtxFlowFunc(p *Pkg, fd *ast.FuncDecl) []Diagnostic {
	var diags []Diagnostic
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if pkgFunc(p, call, "context", "Background") || pkgFunc(p, call, "context", "TODO") {
			diags = append(diags, diag(p, call.Pos(), "ctxflow",
				"%s receives a context but mints a fresh root here; pass the caller's context instead", name))
			return true
		}
		if variant, callee := contextVariant(p, call); variant != nil && !passesContext(p, call) {
			diags = append(diags, diag(p, call.Pos(), "ctxflow",
				"%s receives a context but calls %s without one; use %s", name, callee, variant.Name()))
		}
		return true
	})
	return diags
}

// contextVariant resolves the call's callee and, when it is a function
// or method of this package with a sibling named <name>Context that
// itself accepts a context, returns that sibling and a printable callee
// name.
func contextVariant(p *Pkg, call *ast.CallExpr) (*types.Func, string) {
	var fn *types.Func
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ = p.Info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = p.Info.Uses[fun.Sel].(*types.Func)
	}
	if fn == nil || fn.Pkg() != p.Types || strings.HasSuffix(fn.Name(), "Context") {
		return nil, ""
	}
	want := fn.Name() + "Context"
	sig := fn.Type().(*types.Signature)
	var variant *types.Func
	if recv := sig.Recv(); recv != nil {
		obj, _, _ := types.LookupFieldOrMethod(recv.Type(), true, p.Types, want)
		variant, _ = obj.(*types.Func)
	} else if obj := p.Types.Scope().Lookup(want); obj != nil {
		variant, _ = obj.(*types.Func)
	}
	if variant == nil || !acceptsContext(variant) {
		return nil, ""
	}
	return variant, calleeName(call)
}

// acceptsContext reports whether fn has a context.Context parameter.
func acceptsContext(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// passesContext reports whether any argument of the call is a
// context.Context (the callee may thread it however it likes).
func passesContext(p *Pkg, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if isContextType(p.Info.TypeOf(arg)) {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
