package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Goroutines requires every `go` statement in internal/ packages to be
// join-accounted. A goroutine whose completion nothing waits for is
// both a leak (it can outlive the work it belongs to) and a
// nondeterminism hazard (its side effects race the caller's). A go
// statement passes when its enclosing function either
//
//   - also waits on a sync.WaitGroup or receives from a channel
//     (including `range ch` and select), so the spawn is part of a
//     visible fork/join structure, or
//   - is annotated //tcam:spawner, the opt-in for server and lifecycle
//     code whose goroutines are joined elsewhere (Shutdown, drain).
//
// Anything else is a finding.
var Goroutines = &Analyzer{
	Name: "goroutines",
	Doc:  "go statements in internal/ must be join-accounted or //tcam:spawner-annotated",
	Run:  runGoroutines,
}

const spawnerDirective = "//tcam:spawner"

func runGoroutines(p *Pkg) []Diagnostic {
	if !strings.HasPrefix(p.Path, p.Module+"/internal/") {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || isSpawner(fd) {
				continue
			}
			spawns := goStatements(fd.Body)
			if len(spawns) == 0 || hasJoinEvidence(p, fd.Body) {
				continue
			}
			for _, g := range spawns {
				diags = append(diags, diag(p, g.Pos(), "goroutines",
					"%s: fire-and-forget goroutine; join it (WaitGroup/channel) or annotate the function //tcam:spawner",
					fd.Name.Name))
			}
		}
	}
	return diags
}

// isSpawner reports whether the function's doc comment carries the
// //tcam:spawner directive.
func isSpawner(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == spawnerDirective || strings.HasPrefix(c.Text, spawnerDirective+" ") {
			return true
		}
	}
	return false
}

// goStatements collects every go statement in the body, including ones
// nested in closures (the join evidence is looked for in the same
// declaration either way).
func goStatements(body *ast.BlockStmt) []*ast.GoStmt {
	var spawns []*ast.GoStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			spawns = append(spawns, g)
		}
		return true
	})
	return spawns
}

// hasJoinEvidence reports whether the body contains a fork/join
// counterpart for its go statements: a WaitGroup.Wait call, a channel
// receive, a range over a channel, or a select statement.
func hasJoinEvidence(p *Pkg, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok &&
				sel.Sel.Name == "Wait" && isWaitGroup(p.Info.TypeOf(sel.X)) {
				found = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := p.Info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.SelectStmt:
			found = true
		}
		return !found
	})
	return found
}

// isWaitGroup reports whether t (possibly behind a pointer) is
// sync.WaitGroup.
func isWaitGroup(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}
