package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"tcam/internal/core"
	"tcam/internal/datagen"
	"tcam/internal/model"
)

// ConvergenceResult records the EM training trajectory the unified
// engine exposes through its iteration hook: per-iteration
// log-likelihood, relative delta, and the E-step/M-step wall-time
// split, for each TCAM variant. The paper reports only final training
// times (Table 4); this view shows how the bound of Equation (12)
// tightens on the way there.
type ConvergenceResult struct {
	Dataset string
	Methods []MethodTrajectory
}

// MethodTrajectory is one method's observed training run.
type MethodTrajectory struct {
	Method core.Method
	Iters  []model.IterStat
	Stats  model.TrainStats
}

// Convergence trains ITCAM and TTCAM on the Digg-profile world with the
// engine's iteration hook attached and returns both trajectories.
func (r *Runner) Convergence() (*ConvergenceResult, error) {
	data, _ := r.gridWorld(datagen.Digg)
	out := &ConvergenceResult{Dataset: datagen.Digg.String()}
	for _, m := range []core.Method{core.ITCAM, core.TTCAM} {
		var iters []model.IterStat
		opts := r.trainOpts()
		opts.Hook = func(it model.IterStat) { iters = append(iters, it) }
		res, err := core.Train(m, data, opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: convergence %s: %w", m, err)
		}
		out.Methods = append(out.Methods, MethodTrajectory{Method: m, Iters: iters, Stats: res.Stats})
	}
	return out, nil
}

// Render prints one trajectory table per method.
func (c *ConvergenceResult) Render(w io.Writer) {
	fprintf(w, "EM convergence trajectories on %s\n", c.Dataset)
	for _, mt := range c.Methods {
		fprintf(w, "\n%s (stop: %s after %d iterations)\n", mt.Method, mt.Stats.StopReason, mt.Stats.Iterations())
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fprintln(tw, "iter\tlog-likelihood\trel. delta\tE-step\tM-step")
		for _, it := range mt.Iters {
			fprintf(tw, "%d\t%.4f\t%.3e\t%v\t%v\n",
				it.Iter, it.LogLikelihood, it.Delta,
				it.EStep.Round(time.Microsecond), it.MStep.Round(time.Microsecond))
		}
		flush(tw)
	}
}
