package experiments

import (
	"bytes"
	"strings"
	"testing"

	"tcam/internal/datagen"
)

// tiny returns a configuration small enough for unit tests; shape
// assertions below tolerate its noise.
func tiny() Config {
	cfg := Small()
	cfg.MaxQueries = 250
	cfg.EMIters = 12
	return cfg
}

// mid returns a configuration at the full world scale but with reduced
// training budgets — the accuracy-shape assertions need the real
// temporal structure, which the tiny worlds crowd out.
func mid() Config {
	cfg := Default()
	cfg.MaxQueries = 800
	cfg.EMIters = 20
	cfg.GibbsBurnin = 8
	cfg.GibbsKeep = 4
	return cfg
}

func TestTable2(t *testing.T) {
	r := NewRunner(tiny())
	res := r.Table2()
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(res.Rows))
	}
	byName := map[string]DatasetStatsRow{}
	for _, row := range res.Rows {
		if row.Users == 0 || row.Items == 0 || row.Ratings == 0 {
			t.Errorf("empty dataset row %+v", row)
		}
		byName[row.Name] = row
	}
	// Douban keeps the paper's 70k-item catalog regardless of scale.
	if byName["Douban Movie"].Items != 69908 {
		t.Errorf("Douban items = %d, want 69908", byName["Douban Movie"].Items)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Digg") {
		t.Error("render missing dataset names")
	}
}

func TestFigure2TopicSignatures(t *testing.T) {
	r := NewRunner(tiny())
	res, err := r.Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if res.TimePeakedness <= res.UserPeakedness {
		t.Errorf("time topic peakedness %.2f not above user topic %.2f",
			res.TimePeakedness, res.UserPeakedness)
	}
	if len(res.TimeTopicItems) != 8 || len(res.UserTopicItems) != 8 {
		t.Error("top-8 listings missing")
	}
}

func TestFigure5BurstyVsPopular(t *testing.T) {
	r := NewRunner(tiny())
	res, err := r.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if res.BurstyConcentration <= res.PopularConcentration {
		t.Errorf("bursty concentration %.3f not above popular %.3f",
			res.BurstyConcentration, res.PopularConcentration)
	}
	if res.BurstyConcentration < 0.5 {
		t.Errorf("bursty tags place only %.3f of mass near their event", res.BurstyConcentration)
	}
}

func TestFigure6DiggShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale accuracy experiment")
	}
	r := NewRunner(mid())
	res, err := r.Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != 8 {
		t.Fatalf("got %d methods, want 8", len(res.Curves))
	}
	// Headline claims on the time-sensitive dataset.
	wttcam := res.MeanNDCG("W-TTCAM")
	ttcam := res.MeanNDCG("TTCAM")
	ut := res.MeanNDCG("UT")
	ttBase := res.MeanNDCG("TT")
	bprmf := res.MeanNDCG("BPRMF")
	if wttcam <= ut || wttcam <= bprmf {
		t.Errorf("W-TTCAM (%.4f) must beat UT (%.4f) and BPRMF (%.4f) on Digg", wttcam, ut, bprmf)
	}
	if ttcam <= ut {
		t.Errorf("TTCAM (%.4f) must beat UT (%.4f) on Digg", ttcam, ut)
	}
	if ttBase <= ut {
		t.Errorf("TT (%.4f) must beat UT (%.4f) on time-sensitive data", ttBase, ut)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "NDCG@k") {
		t.Error("render missing metric blocks")
	}
}

func TestFigure7MovieLensShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale accuracy experiment")
	}
	r := NewRunner(mid())
	res, err := r.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	ut := res.MeanNDCG("UT")
	ttBase := res.MeanNDCG("TT")
	wttcam := res.MeanNDCG("W-TTCAM")
	if ut <= ttBase {
		t.Errorf("UT (%.4f) must beat TT (%.4f) on interest-driven data", ut, ttBase)
	}
	if wttcam <= ttBase {
		t.Errorf("W-TTCAM (%.4f) must beat TT (%.4f) on MovieLens", wttcam, ttBase)
	}
}

func TestTable3IntervalSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale accuracy experiment")
	}
	r := NewRunner(mid())
	res, err := r.table3Lengths([]int64{1, 3, 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"TT", "ITCAM", "TTCAM", "W-TTCAM", "BPTF", "W-ITCAM"} {
		if len(res.NDCG5[m]) != 3 {
			t.Fatalf("method %s has %d entries", m, len(res.NDCG5[m]))
		}
	}
	// The interesting shape: accuracy degrades at too-coarse
	// granularity (9 days merges distinct events on a bursty world).
	if res.NDCG5["W-TTCAM"][2] >= res.NDCG5["W-TTCAM"][1] {
		t.Errorf("W-TTCAM should lose accuracy from 3d (%.4f) to 9d (%.4f) intervals",
			res.NDCG5["W-TTCAM"][1], res.NDCG5["W-TTCAM"][2])
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "3 days") {
		t.Error("render missing interval rows")
	}
}

func TestFigure9TopicCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale accuracy experiment")
	}
	r := NewRunner(mid())
	res, err := r.figure9Grid([]int{4, 16, 48}, []int{12, 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.NDCG5) != 2 || len(res.NDCG5[0]) != 3 {
		t.Fatalf("grid shape %dx%d", len(res.NDCG5), len(res.NDCG5[0]))
	}
	// Starved K1 should underperform an adequate K1 for the larger K2.
	if res.NDCG5[1][0] >= res.NDCG5[1][2] {
		t.Errorf("K1=4 (%.4f) should trail K1=32 (%.4f)", res.NDCG5[1][0], res.NDCG5[1][2])
	}
}

func TestFigure10And11LambdaShapes(t *testing.T) {
	r := NewRunner(tiny())
	ml, err := r.Figure10()
	if err != nil {
		t.Fatal(err)
	}
	digg, err := r.Figure11()
	if err != nil {
		t.Fatal(err)
	}
	if ml.MeanLambda <= digg.MeanLambda {
		t.Errorf("mean λ MovieLens %.3f must exceed Digg %.3f", ml.MeanLambda, digg.MeanLambda)
	}
	// Paper: on Digg the temporal influence of most users exceeds 0.5.
	if share := digg.ShareAbove(0.5); share > 0.5 {
		t.Errorf("on Digg %.0f%% of users are interest-dominated; expected a minority", share*100)
	}
	if ml.TruthCorrelation <= 0 {
		t.Errorf("learned λ uncorrelated with ground truth on MovieLens: %.3f", ml.TruthCorrelation)
	}
}

func TestTable5TopicQuality(t *testing.T) {
	r := NewRunner(tiny())
	res, err := r.Table5()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows, want TT/TTCAM/W-TTCAM", len(res.Rows))
	}
	if res.Purity("W-TTCAM") < res.Purity("TT") {
		t.Errorf("item weighting must not reduce burst purity: W-TTCAM %.3f vs TT %.3f",
			res.Purity("W-TTCAM"), res.Purity("TT"))
	}
}

func TestTable7Separation(t *testing.T) {
	if testing.Short() {
		t.Skip("trains on the full Douban-like world")
	}
	r := NewRunner(mid())
	res, err := r.Table7()
	if err != nil {
		t.Fatal(err)
	}
	// Table 7's claim, as measurable contrasts: release-cohort structure
	// lives in the time topics, genre structure (relatively) in the user
	// topics. Same-label cross-family comparisons keep the chance
	// baselines equal.
	if res.TimeCohortPurity <= res.TimeGenrePurity {
		t.Errorf("time topics should be cohort-pure, not genre-pure: cohort %.3f vs genre %.3f",
			res.TimeCohortPurity, res.TimeGenrePurity)
	}
	if res.TimeCohortPurity <= res.UserCohortPurity {
		t.Errorf("time topics should concentrate release cohorts: time %.3f vs user %.3f",
			res.TimeCohortPurity, res.UserCohortPurity)
	}
	if res.UserGenrePurity <= res.TimeGenrePurity {
		t.Errorf("user topics should carry more genre structure than time topics: user %.3f vs time %.3f",
			res.UserGenrePurity, res.TimeGenrePurity)
	}
}

func TestFigure8AndTable4Efficiency(t *testing.T) {
	if testing.Short() {
		t.Skip("efficiency experiment trains on the 70k-item Douban world")
	}
	r := NewRunner(tiny())
	lat, err := r.Figure8()
	if err != nil {
		t.Fatal(err)
	}
	if len(lat) != 2 {
		t.Fatalf("got %d datasets", len(lat))
	}
	douban := lat[0]
	if douban.NumItems != 69908 {
		t.Fatalf("douban catalog %d", douban.NumItems)
	}
	// TA must examine far fewer items than the catalog on average.
	for i, ex := range douban.TAExamined {
		if ex > float64(douban.NumItems)/2 {
			t.Errorf("k=%d: TA examined %.0f of %d items", douban.Ks[i], ex, douban.NumItems)
		}
	}
	// Relative latency shape: TA must be several times under brute
	// force on the large catalog (the paper's headline; the TA/BF gap
	// is ~30-60×, so a 4× threshold stays robust under CI noise).
	if douban.MeanTA()*4 >= douban.MeanBF() {
		t.Errorf("TA (%v) not clearly faster than brute force (%v) on Douban", douban.MeanTA(), douban.MeanBF())
	}
	// BPTF's per-item scoring work is S·D vs TCAM's K; at this config
	// they are comparable, so only assert BPTF is not dramatically
	// faster (which would indicate a broken measurement).
	if douban.MeanBPTF()*2 < douban.MeanBF() {
		t.Errorf("BPTF (%v) implausibly fast vs TCAM-BF (%v)", douban.MeanBPTF(), douban.MeanBF())
	}

	tt4, err := r.Table4()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range tt4.Datasets {
		row := tt4.Times[d]
		// Training-cost order: BPRMF fastest; BPTF at least comparable
		// to TCAM (strictly slower at realistic Gibbs budgets — see
		// EXPERIMENTS.md Table 4, produced with -burnin 20 -samples 10).
		// At this test's tiny config the absolute times are milliseconds,
		// so only flag order-of-magnitude inversions.
		if row["BPRMF"] >= 3*row["TCAM"] {
			t.Errorf("%s: BPRMF training (%v) should be under TCAM (%v)", d, row["BPRMF"], row["TCAM"])
		}
		if row["BPTF"]*2 <= row["TCAM"] {
			t.Errorf("%s: BPTF training (%v) implausibly under TCAM (%v)", d, row["BPTF"], row["TCAM"])
		}
	}
}

func TestFindAndAll(t *testing.T) {
	if len(All()) != 15 {
		t.Fatalf("got %d experiments", len(All()))
	}
	if _, ok := Find("table3"); !ok {
		t.Error("Find missed table3")
	}
	if _, ok := Find("bogus"); ok {
		t.Error("Find found bogus")
	}
}

func TestConvergence(t *testing.T) {
	r := NewRunner(tiny())
	res, err := r.Convergence()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Methods) != 2 {
		t.Fatalf("got %d methods, want ITCAM and TTCAM", len(res.Methods))
	}
	for _, mt := range res.Methods {
		if len(mt.Iters) == 0 || len(mt.Iters) != mt.Stats.Iterations() {
			t.Fatalf("%s: hook saw %d iterations, stats report %d", mt.Method, len(mt.Iters), mt.Stats.Iterations())
		}
		for i, it := range mt.Iters {
			if it.Iter != i+1 {
				t.Errorf("%s: record %d has iter %d", mt.Method, i, it.Iter)
			}
			if it.LogLikelihood != mt.Stats.LogLikelihood[i] {
				t.Errorf("%s: iter %d hook LL diverges from stats trace", mt.Method, it.Iter)
			}
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "ITCAM") || !strings.Contains(out, "log-likelihood") {
		t.Error("render missing trajectory table")
	}
}

func TestWorldCaching(t *testing.T) {
	r := NewRunner(tiny())
	a := r.World(datagen.Digg)
	b := r.World(datagen.Digg)
	if a != b {
		t.Error("worlds not cached")
	}
}
