package experiments

import (
	"fmt"
	"io"
	"time"
)

// Experiment names one regenerable paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(r *Runner, w io.Writer) error
}

// All returns every experiment in paper order. Each entry runs its
// driver and renders the paper-style output to w.
func All() []Experiment {
	return []Experiment{
		{"table2", "Table 2 — basic statistics of the four data sets", func(r *Runner, w io.Writer) error {
			r.Table2().Render(w)
			return nil
		}},
		{"figure2", "Figure 2 — two types of topics (Delicious)", func(r *Runner, w io.Writer) error {
			res, err := r.Figure2()
			if err != nil {
				return err
			}
			res.Render(w)
			return nil
		}},
		{"figure5", "Figure 5 — bursty vs popular tags (Delicious)", func(r *Runner, w io.Writer) error {
			res, err := r.Figure5()
			if err != nil {
				return err
			}
			res.Render(w)
			return nil
		}},
		{"figure6", "Figure 6 — temporal accuracy on Digg", func(r *Runner, w io.Writer) error {
			res, err := r.Figure6()
			if err != nil {
				return err
			}
			res.Render(w)
			return nil
		}},
		{"figure7", "Figure 7 — temporal accuracy on MovieLens", func(r *Runner, w io.Writer) error {
			res, err := r.Figure7()
			if err != nil {
				return err
			}
			res.Render(w)
			return nil
		}},
		{"table3", "Table 3 — NDCG@5 vs time-interval length (Digg)", func(r *Runner, w io.Writer) error {
			res, err := r.Table3()
			if err != nil {
				return err
			}
			res.Render(w)
			return nil
		}},
		{"figure9", "Figure 9 — accuracy vs number of topics (Digg)", func(r *Runner, w io.Writer) error {
			res, err := r.Figure9()
			if err != nil {
				return err
			}
			res.Render(w)
			return nil
		}},
		{"figure8", "Figure 8 — online recommendation efficiency", func(r *Runner, w io.Writer) error {
			results, err := r.Figure8()
			if err != nil {
				return err
			}
			for _, res := range results {
				res.Render(w)
				fprintf(w, "\n")
			}
			return nil
		}},
		{"table4", "Table 4 — offline training time", func(r *Runner, w io.Writer) error {
			res, err := r.Table4()
			if err != nil {
				return err
			}
			res.Render(w)
			return nil
		}},
		{"figure10", "Figure 10 — temporal context influence (MovieLens)", func(r *Runner, w io.Writer) error {
			res, err := r.Figure10()
			if err != nil {
				return err
			}
			res.Render(w)
			return nil
		}},
		{"figure11", "Figure 11 — temporal context influence (Digg)", func(r *Runner, w io.Writer) error {
			res, err := r.Figure11()
			if err != nil {
				return err
			}
			res.Render(w)
			return nil
		}},
		{"table5", "Table 5 — time-oriented topic quality (Delicious)", func(r *Runner, w io.Writer) error {
			res, err := r.Table5()
			if err != nil {
				return err
			}
			res.Render(w)
			return nil
		}},
		{"table6", "Table 6 — time-oriented topic quality (Douban Movie)", func(r *Runner, w io.Writer) error {
			res, err := r.Table6()
			if err != nil {
				return err
			}
			res.Render(w)
			return nil
		}},
		{"table7", "Table 7 — user- vs time-oriented topic separation (Douban Movie)", func(r *Runner, w io.Writer) error {
			res, err := r.Table7()
			if err != nil {
				return err
			}
			res.Render(w)
			return nil
		}},
		{"convergence", "EM convergence trajectories (engine iteration hook)", func(r *Runner, w io.Writer) error {
			res, err := r.Convergence()
			if err != nil {
				return err
			}
			res.Render(w)
			return nil
		}},
	}
}

// Find returns the experiment with the given ID, or false.
func Find(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment against one Runner (so worlds are
// generated once), writing each section to w with timing footers.
func RunAll(r *Runner, w io.Writer) error {
	for _, e := range All() {
		fprintf(w, "==== %s: %s ====\n", e.ID, e.Title)
		start := time.Now()
		if err := e.Run(r, w); err != nil {
			return fmt.Errorf("experiments: %s: %w", e.ID, err)
		}
		fprintf(w, "[%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
