package experiments

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"tcam/internal/core"
	"tcam/internal/cuboid"
	"tcam/internal/datagen"
	"tcam/internal/model/tt"
	"tcam/internal/model/ttcam"
)

// TopicSignatureResult is the payload of Figure 2: the temporal
// signatures (normalized per-interval activity) of one time-oriented
// and one user-oriented topic discovered by W-TTCAM on the
// Delicious-like world, plus their top items.
type TopicSignatureResult struct {
	Dataset string
	// Normalized activity series over intervals.
	TimeTopicSeries []float64
	UserTopicSeries []float64
	// Top-8 item labels of each topic.
	TimeTopicItems []string
	UserTopicItems []string
	// Peakedness = max/mean of the raw series; a bursty time topic has
	// a far higher value than a stable interest topic.
	TimePeakedness float64
	UserPeakedness float64
}

// Figure2 reproduces "An Example of Two Types of Topics in Delicious":
// it trains W-TTCAM, picks the spikiest time-oriented topic and the
// flattest user-oriented one, and returns their temporal signatures.
func (r *Runner) Figure2() (*TopicSignatureResult, error) {
	p := datagen.Delicious
	data, _ := r.gridWorld(p)
	res, err := core.Train(core.WTTCAM, data, r.trainOpts())
	if err != nil {
		return nil, fmt.Errorf("experiments: figure2: %w", err)
	}
	m := res.Model.(*ttcam.Model)
	w := r.World(p)

	bestTime, bestTimeSeries, bestTimePeak := -1, []float64(nil), -1.0
	for x := 0; x < m.K2(); x++ {
		series := topicActivitySeries(data, m.TimeTopic(x))
		if peak := peakedness(series); peak > bestTimePeak {
			bestTime, bestTimeSeries, bestTimePeak = x, series, peak
		}
	}
	bestUser, bestUserSeries, bestUserPeak := -1, []float64(nil), -1.0
	for z := 0; z < m.K1(); z++ {
		series := topicActivitySeries(data, m.UserTopic(z))
		if peak := peakedness(series); bestUserPeak < 0 || peak < bestUserPeak {
			bestUser, bestUserSeries, bestUserPeak = z, series, peak
		}
	}
	return &TopicSignatureResult{
		Dataset:         p.String(),
		TimeTopicSeries: cuboid.NormalizeSeries(bestTimeSeries),
		UserTopicSeries: cuboid.NormalizeSeries(bestUserSeries),
		TimeTopicItems:  topItemNames(w, m.TimeTopic(bestTime), 8),
		UserTopicItems:  topItemNames(w, m.UserTopic(bestUser), 8),
		TimePeakedness:  bestTimePeak,
		UserPeakedness:  bestUserPeak,
	}, nil
}

// Render prints the two series with their top items.
func (f *TopicSignatureResult) Render(w io.Writer) {
	fprintf(w, "Two types of topics on %s\n", f.Dataset)
	fprintf(w, "time-oriented topic (peakedness %.2f): %v\n", f.TimePeakedness, f.TimeTopicItems)
	fprintf(w, "user-oriented topic (peakedness %.2f): %v\n", f.UserPeakedness, f.UserTopicItems)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fprintln(tw, "interval\ttime-oriented\tuser-oriented")
	for i := range f.TimeTopicSeries {
		fprintf(tw, "%d\t%.3f\t%.3f\n", i, f.TimeTopicSeries[i], f.UserTopicSeries[i])
	}
	flush(tw)
}

// topicActivitySeries sums the per-interval frequencies of a topic's
// top-10 items — the paper's "normalized frequency" proxy for a topic's
// temporal footprint.
func topicActivitySeries(data *cuboid.Cuboid, weights []float64) []float64 {
	top := topIndices(weights, 10)
	series := make([]float64, data.NumIntervals())
	for _, v := range top {
		for t, x := range itemSeries(data, v) {
			series[t] += x
		}
	}
	return series
}

func peakedness(series []float64) float64 {
	var max, sum float64
	for _, x := range series {
		if x > max {
			max = x
		}
		sum += x
	}
	if sum <= 0 {
		return 0
	}
	mean := sum / float64(len(series))
	return max / mean
}

// topIndices returns the indices of the n largest weights, descending.
func topIndices(weights []float64, n int) []int {
	idx := make([]int, len(weights))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if weights[idx[a]] > weights[idx[b]] {
			return true
		}
		if weights[idx[a]] < weights[idx[b]] {
			return false
		}
		return idx[a] < idx[b]
	})
	if n > len(idx) {
		n = len(idx)
	}
	return idx[:n]
}

func topItemNames(w *datagen.World, weights []float64, n int) []string {
	out := make([]string, 0, n)
	for _, v := range topIndices(weights, n) {
		out = append(out, w.Log.ItemID(v))
	}
	return out
}

// BurstySeriesItem is one curve of Figure 5.
type BurstySeriesItem struct {
	Name   string
	Bursty bool
	// Series is the normalized per-interval frequency.
	Series []float64
	// Concentration is the share of raw mass within ±3 burst widths of
	// the item's event peak (bursty items) or around the series argmax
	// (popular items).
	Concentration float64
}

// BurstySeriesResult is the payload of Figure 5: bursty event tags
// spike together while generic popular tags stay flat.
type BurstySeriesResult struct {
	Dataset string
	Items   []BurstySeriesItem
	// Mean concentration per class.
	BurstyConcentration  float64
	PopularConcentration float64
}

// Figure5 reproduces "An Example of Bursty Tags and Popular Tags" on
// the Delicious-like world, using ground truth to pick three co-bursting
// event tags and three always-popular generic tags.
func (r *Runner) Figure5() (*BurstySeriesResult, error) {
	p := datagen.Delicious
	w := r.World(p)
	data, grid := r.gridWorld(p)
	st := cuboid.ComputeStats(data)

	// The event cluster with the most rated mass.
	clusterMass := make(map[int]int)
	for v := 0; v < data.NumItems(); v++ {
		if x := w.Truth.EventCluster[v]; x >= 0 {
			clusterMass[x] += st.ItemUsers[v]
		}
	}
	bestCluster, bestMass := -1, -1
	for x, mass := range clusterMass {
		if mass > bestMass || (mass == bestMass && x < bestCluster) {
			bestCluster, bestMass = x, mass
		}
	}
	if bestCluster < 0 {
		return nil, fmt.Errorf("experiments: figure5: no event clusters in world")
	}

	pickTop := func(candidates []int, n int) []int {
		sort.Slice(candidates, func(a, b int) bool {
			if st.ItemUsers[candidates[a]] != st.ItemUsers[candidates[b]] {
				return st.ItemUsers[candidates[a]] > st.ItemUsers[candidates[b]]
			}
			return candidates[a] < candidates[b]
		})
		if n > len(candidates) {
			n = len(candidates)
		}
		return candidates[:n]
	}
	var burstyCand, genericCand []int
	for v := 0; v < data.NumItems(); v++ {
		switch {
		case w.Truth.EventCluster[v] == bestCluster:
			burstyCand = append(burstyCand, v)
		case w.Truth.GenericPopular[v]:
			genericCand = append(genericCand, v)
		}
	}
	peakInterval := grid.IntervalOf(int64(w.Truth.PeakDay[bestCluster]))
	radius := int(3*w.Config.BurstWidthDays/float64(grid.Length)) + 1

	out := &BurstySeriesResult{Dataset: p.String()}
	var burstySum, popularSum float64
	var burstyN, popularN int
	add := func(v int, bursty bool) {
		raw := itemSeries(data, v)
		center := peakInterval
		if !bursty {
			_, center = argmaxSeries(raw)
		}
		conc := concentration(raw, center, radius)
		out.Items = append(out.Items, BurstySeriesItem{
			Name:          w.Log.ItemID(v),
			Bursty:        bursty,
			Series:        cuboid.NormalizeSeries(raw),
			Concentration: conc,
		})
		if bursty {
			burstySum += conc
			burstyN++
		} else {
			popularSum += conc
			popularN++
		}
	}
	for _, v := range pickTop(burstyCand, 3) {
		add(v, true)
	}
	for _, v := range pickTop(genericCand, 3) {
		add(v, false)
	}
	if burstyN == 0 || popularN == 0 {
		return nil, fmt.Errorf("experiments: figure5: missing items (%d bursty, %d popular)", burstyN, popularN)
	}
	out.BurstyConcentration = burstySum / float64(burstyN)
	out.PopularConcentration = popularSum / float64(popularN)
	return out, nil
}

func argmaxSeries(series []float64) (float64, int) {
	best, arg := -1.0, 0
	for i, x := range series {
		if x > best {
			best, arg = x, i
		}
	}
	return best, arg
}

func concentration(series []float64, center, radius int) float64 {
	var near, total float64
	for i, x := range series {
		total += x
		if i >= center-radius && i <= center+radius {
			near += x
		}
	}
	if total <= 0 {
		return 0
	}
	return near / total
}

// Render prints the per-item concentrations and series.
func (f *BurstySeriesResult) Render(w io.Writer) {
	fprintf(w, "Bursty vs popular tags on %s (mass concentration near the event peak)\n", f.Dataset)
	fprintf(w, "mean concentration: bursty %.3f, popular %.3f\n", f.BurstyConcentration, f.PopularConcentration)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fprintln(tw, "tag\tclass\tconcentration")
	for _, item := range f.Items {
		class := "popular"
		if item.Bursty {
			class = "bursty"
		}
		fprintf(tw, "%s\t%s\t%.3f\n", item.Name, class, item.Concentration)
	}
	flush(tw)
}

// TopicQualityRow is one model's matched time-oriented topic in
// Tables 5 and 6.
type TopicQualityRow struct {
	Model    string
	TopItems []string
	// BurstPurity is the share of the top items that belong to the
	// matched ground-truth event cluster; GenericShare the share that
	// are always-popular generics (the "headline/news/world" tags the
	// paper shows crowding out event terms).
	BurstPurity  float64
	GenericShare float64
}

// TopicQualityResult is the payload of Tables 5 and 6.
type TopicQualityResult struct {
	Dataset string
	Cluster int // matched ground-truth event cluster
	Rows    []TopicQualityRow
}

// Table5 reproduces the "Michael Jackson" comparison on the
// Delicious-like world: the same real-world event as recovered by TT,
// TTCAM and W-TTCAM; item weighting should push generic tags out and
// event tags in.
func (r *Runner) Table5() (*TopicQualityResult, error) {
	return r.topicQualityOn(datagen.Delicious)
}

// Table6 reproduces the "T2007" comparison on the Douban-like world:
// time topics should collect items of one release cohort, and item
// weighting should purge long-standing popular movies.
func (r *Runner) Table6() (*TopicQualityResult, error) {
	return r.topicQualityOn(datagen.Douban)
}

func (r *Runner) topicQualityOn(p datagen.Profile) (*TopicQualityResult, error) {
	w := r.World(p)
	data, _ := r.gridWorld(p)
	st := cuboid.ComputeStats(data)

	// Matched cluster: the ground-truth event cluster with most mass.
	clusterMass := make(map[int]int)
	for v := 0; v < data.NumItems(); v++ {
		if x := w.Truth.EventCluster[v]; x >= 0 {
			clusterMass[x] += st.ItemUsers[v]
		}
	}
	bestCluster, bestMass := -1, -1
	for x, mass := range clusterMass {
		if mass > bestMass || (mass == bestMass && x < bestCluster) {
			bestCluster, bestMass = x, mass
		}
	}

	out := &TopicQualityResult{Dataset: p.String(), Cluster: bestCluster}
	const topN = 8

	appraise := func(name string, topicOf func(x int) []float64, numTopics int) {
		// Pick the topic placing the most probability mass on the
		// matched cluster's items.
		bestTopic, bestScore := -1, -1.0
		for x := 0; x < numTopics; x++ {
			weights := topicOf(x)
			var mass float64
			for v, pw := range weights {
				if w.Truth.EventCluster[v] == bestCluster {
					mass += pw
				}
			}
			if mass > bestScore {
				bestTopic, bestScore = x, mass
			}
		}
		weights := topicOf(bestTopic)
		top := topIndices(weights, topN)
		row := TopicQualityRow{Model: name}
		for _, v := range top {
			row.TopItems = append(row.TopItems, w.Log.ItemID(v))
			if w.Truth.EventCluster[v] == bestCluster {
				row.BurstPurity++
			}
			if w.Truth.GenericPopular[v] {
				row.GenericShare++
			}
		}
		row.BurstPurity /= float64(len(top))
		row.GenericShare /= float64(len(top))
		out.Rows = append(out.Rows, row)
	}

	ttRes, err := core.Train(core.TT, data, r.trainOpts())
	if err != nil {
		return nil, fmt.Errorf("experiments: topic quality TT: %w", err)
	}
	ttModel := ttRes.Model.(*tt.Model)
	appraise("TT", ttModel.Topic, ttModel.K())

	for _, m := range []core.Method{core.TTCAM, core.WTTCAM} {
		res, err := core.Train(m, data, r.trainOpts())
		if err != nil {
			return nil, fmt.Errorf("experiments: topic quality %s: %w", m, err)
		}
		tm := res.Model.(*ttcam.Model)
		appraise(string(m), tm.TimeTopic, tm.K2())
	}
	return out, nil
}

// Render prints one block per model.
func (t *TopicQualityResult) Render(w io.Writer) {
	fprintf(w, "Time-oriented topic matched to ground-truth event cluster e%02d on %s\n", t.Cluster, t.Dataset)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fprintln(tw, "model\tburst purity\tgeneric share\ttop items")
	for _, row := range t.Rows {
		fprintf(tw, "%s\t%.3f\t%.3f\t%v\n", row.Model, row.BurstPurity, row.GenericShare, row.TopItems)
	}
	flush(tw)
}

// Purity returns the burst purity of a model's row, or -1 when absent.
func (t *TopicQualityResult) Purity(model string) float64 {
	for _, row := range t.Rows {
		if row.Model == model {
			return row.BurstPurity
		}
	}
	return -1
}

// SeparationResult is the payload of Table 7: user-oriented topics
// should cluster genres while time-oriented topics cluster release
// cohorts — measured as mean purities rather than eyeballed movie
// lists.
type SeparationResult struct {
	Dataset string
	// Mean max-share purities over topics (top-10 items each).
	UserGenrePurity  float64
	UserCohortPurity float64
	TimeCohortPurity float64
	TimeGenrePurity  float64
	// Example listings, one user- and one time-oriented topic.
	ExampleUserTopic []string
	ExampleTimeTopic []string
}

// Table7 reproduces "Comparison between User-Oriented and Time-Oriented
// Topics Detected on Douban Movie" with W-TTCAM.
func (r *Runner) Table7() (*SeparationResult, error) {
	p := datagen.Douban
	w := r.World(p)
	data, _ := r.gridWorld(p)
	res, err := core.Train(core.WTTCAM, data, r.trainOpts())
	if err != nil {
		return nil, fmt.Errorf("experiments: table7: %w", err)
	}
	m := res.Model.(*ttcam.Model)
	const topN = 20

	genreOf := func(v int) int { return w.Truth.Genre[v] }
	cohortOf := func(v int) int { return w.Truth.EventCluster[v] }
	// Compare genre and cohort purity over the SAME item subset — the
	// doubly-labeled cohort items — so the two shares have the same
	// sample size and chance baseline.
	doublyLabeled := func(top []int) []int {
		out := make([]int, 0, len(top))
		for _, v := range top {
			if w.Truth.EventCluster[v] >= 0 && w.Truth.Genre[v] >= 0 {
				out = append(out, v)
			}
		}
		return out
	}

	out := &SeparationResult{Dataset: p.String()}
	var ugSum, ucSum float64
	var ugN, ucN int
	for z := 0; z < m.K1(); z++ {
		top := doublyLabeled(topIndices(m.UserTopic(z), topN))
		if p, ok := maxLabelShare(top, genreOf); ok {
			ugSum += p
			ugN++
		}
		if p, ok := maxLabelShare(top, cohortOf); ok {
			ucSum += p
			ucN++
		}
	}
	var tcSum, tgSum float64
	var tcN, tgN int
	for x := 0; x < m.K2(); x++ {
		top := doublyLabeled(topIndices(m.TimeTopic(x), topN))
		if p, ok := maxLabelShare(top, cohortOf); ok {
			tcSum += p
			tcN++
		}
		if p, ok := maxLabelShare(top, genreOf); ok {
			tgSum += p
			tgN++
		}
	}
	out.UserGenrePurity = safeDiv(ugSum, ugN)
	out.UserCohortPurity = safeDiv(ucSum, ucN)
	out.TimeCohortPurity = safeDiv(tcSum, tcN)
	out.TimeGenrePurity = safeDiv(tgSum, tgN)
	out.ExampleUserTopic = topItemNames(w, m.UserTopic(0), topN)
	out.ExampleTimeTopic = topItemNames(w, m.TimeTopic(0), topN)
	return out, nil
}

// maxLabelShare returns the largest share of a single label among the
// labeled items of top (items labeled -1 are skipped); ok is false when
// fewer than three items carry labels.
func maxLabelShare(top []int, labelOf func(v int) int) (float64, bool) {
	counts := make(map[int]int)
	labeled := 0
	for _, v := range top {
		if l := labelOf(v); l >= 0 {
			counts[l]++
			labeled++
		}
	}
	if labeled < 3 {
		return 0, false
	}
	best := 0
	for _, c := range counts {
		if c > best {
			best = c
		}
	}
	return float64(best) / float64(labeled), true
}

func safeDiv(sum float64, n int) float64 {
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Render prints the four purities plus example listings.
func (s *SeparationResult) Render(w io.Writer) {
	fprintf(w, "User- vs time-oriented topic separation on %s (W-TTCAM, top-10 items per topic)\n", s.Dataset)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fprintln(tw, "topic family\tgenre purity\trelease-cohort purity")
	fprintf(tw, "user-oriented\t%.3f\t%.3f\n", s.UserGenrePurity, s.UserCohortPurity)
	fprintf(tw, "time-oriented\t%.3f\t%.3f\n", s.TimeGenrePurity, s.TimeCohortPurity)
	flush(tw)
	fprintf(w, "example user-oriented topic: %v\n", s.ExampleUserTopic)
	fprintf(w, "example time-oriented topic: %v\n", s.ExampleTimeTopic)
}
