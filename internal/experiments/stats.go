package experiments

import (
	"io"
	"text/tabwriter"

	"tcam/internal/cuboid"
	"tcam/internal/datagen"
)

// DatasetStatsRow is one row of Table 2.
type DatasetStatsRow struct {
	Name     string
	Users    int
	Items    int
	Ratings  int
	TimeSpan int // days
}

// DatasetStatsResult is the payload of Table 2: basic statistics of the
// four synthetic worlds standing in for the paper's crawls.
type DatasetStatsResult struct {
	Rows []DatasetStatsRow
}

// Table2 generates (or reuses) all four worlds and reports their sizes.
func (r *Runner) Table2() *DatasetStatsResult {
	out := &DatasetStatsResult{}
	for _, p := range []datagen.Profile{datagen.Digg, datagen.MovieLens, datagen.Douban, datagen.Delicious} {
		w := r.World(p)
		out.Rows = append(out.Rows, DatasetStatsRow{
			Name:     p.String(),
			Users:    w.Log.NumUsers(),
			Items:    w.Log.NumItems(),
			Ratings:  w.Log.NumEvents(),
			TimeSpan: w.Config.NumDays,
		})
	}
	return out
}

// Render prints the Table 2 layout.
func (d *DatasetStatsResult) Render(w io.Writer) {
	fprintf(w, "Basic statistics of the four synthetic data sets\n")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fprintln(tw, "dataset\t# users\t# items\t# ratings\ttime span (days)")
	for _, row := range d.Rows {
		fprintf(tw, "%s\t%d\t%d\t%d\t%d\n", row.Name, row.Users, row.Items, row.Ratings, row.TimeSpan)
	}
	flush(tw)
}

// itemSeries returns the per-interval distinct-user frequency of one
// item, shared by the Figure 2/5 drivers.
func itemSeries(c *cuboid.Cuboid, v int) []float64 {
	return cuboid.ItemFrequencySeries(c, v)
}
