package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"tcam/internal/core"
	"tcam/internal/datagen"
	"tcam/internal/eval"
)

// AccuracyResult is the payload of Figures 6 and 7: one metric curve
// (k = 1..MaxK) per method on one dataset.
type AccuracyResult struct {
	Dataset string
	MaxK    int
	Curves  map[string]eval.Curve
}

// Figure6 reproduces "Temporal Accuracy on Digg" — Precision@k, NDCG@k
// and F1@k for k=1..10 across all eight methods on the Digg-like
// (time-sensitive) world.
func (r *Runner) Figure6() (*AccuracyResult, error) {
	return r.accuracyOn(datagen.Digg, core.AllMethods())
}

// Figure7 reproduces "Temporal Accuracy on MovieLens" on the
// interest-driven world.
func (r *Runner) Figure7() (*AccuracyResult, error) {
	return r.accuracyOn(datagen.MovieLens, core.AllMethods())
}

func (r *Runner) accuracyOn(p datagen.Profile, methods []core.Method) (*AccuracyResult, error) {
	const maxK = 10
	data, _ := r.gridWorld(p)
	split, queries := r.splitQueries(data)
	out := &AccuracyResult{Dataset: p.String(), MaxK: maxK, Curves: make(map[string]eval.Curve)}
	for _, m := range methods {
		res, err := core.Train(m, split.Train, r.trainOpts())
		if err != nil {
			return nil, fmt.Errorf("experiments: %s on %s: %w", m, p, err)
		}
		out.Curves[string(m)] = eval.Evaluate(eval.BruteForceRanker(res.Model), queries, maxK, r.cfg.Workers)
	}
	return out, nil
}

// Render prints the result as three paper-style blocks (one per
// metric), methods as rows and k as columns.
func (a *AccuracyResult) Render(w io.Writer) {
	fprintf(w, "Temporal Accuracy on %s (per-(u,t) 80/20 holdout)\n", a.Dataset)
	for _, metric := range []string{"Precision@k", "NDCG@k", "F1@k"} {
		fprintf(w, "\n%s\n", metric)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fprintf(tw, "method")
		for k := 1; k <= a.MaxK; k++ {
			fprintf(tw, "\tk=%d", k)
		}
		fprintln(tw)
		for _, name := range sortedMethods(a.Curves) {
			fprintf(tw, "%s", name)
			for k := 1; k <= a.MaxK; k++ {
				m := a.Curves[name].At(k)
				var v float64
				switch metric {
				case "Precision@k":
					v = m.Precision
				case "NDCG@k":
					v = m.NDCG
				default:
					v = m.F1
				}
				fprintf(tw, "\t%.4f", v)
			}
			fprintln(tw)
		}
		flush(tw)
	}
}

// MeanNDCG returns a method's NDCG averaged over k=1..MaxK, the scalar
// used for shape assertions.
func (a *AccuracyResult) MeanNDCG(method string) float64 {
	curve, ok := a.Curves[method]
	if !ok {
		return 0
	}
	var s float64
	for k := 1; k <= a.MaxK; k++ {
		s += curve.At(k).NDCG
	}
	return s / float64(a.MaxK)
}

// IntervalSweepResult is the payload of Table 3: NDCG@5 per method per
// time-interval length on the Digg-like world.
type IntervalSweepResult struct {
	Dataset string
	Lengths []int64
	// NDCG5[method][i] corresponds to Lengths[i].
	NDCG5 map[string][]float64
}

// Table3 reproduces "Performance of varying length of time interval on
// Digg dataset": the temporal methods' NDCG@5 across interval lengths
// of 1–10 days.
func (r *Runner) Table3() (*IntervalSweepResult, error) {
	return r.table3Lengths([]int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
}

// table3Lengths runs the sweep on an explicit length grid (tests and
// benches shrink it).
func (r *Runner) table3Lengths(lengths []int64) (*IntervalSweepResult, error) {
	methods := []core.Method{core.TT, core.ITCAM, core.TTCAM, core.WTTCAM, core.BPTF, core.WITCAM}
	w := r.World(datagen.Digg)
	out := &IntervalSweepResult{Dataset: w.Config.Profile.String(), Lengths: lengths, NDCG5: make(map[string][]float64)}
	for _, length := range lengths {
		data, _, err := w.Log.Grid(length)
		if err != nil {
			return nil, fmt.Errorf("experiments: table3 grid %d: %w", length, err)
		}
		split, queries := r.splitQueries(data)
		for _, m := range methods {
			res, err := core.Train(m, split.Train, r.trainOpts())
			if err != nil {
				return nil, fmt.Errorf("experiments: table3 %s @%dd: %w", m, length, err)
			}
			curve := eval.Evaluate(eval.BruteForceRanker(res.Model), queries, 5, r.cfg.Workers)
			out.NDCG5[string(m)] = append(out.NDCG5[string(m)], curve.At(5).NDCG)
		}
	}
	return out, nil
}

// Render prints the Table 3 layout: one row per interval length.
func (t *IntervalSweepResult) Render(w io.Writer) {
	fprintf(w, "NDCG@5 vs length of time interval on %s\n", t.Dataset)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	methods := make([]string, 0, len(t.NDCG5))
	for _, m := range []string{"TT", "ITCAM", "TTCAM", "W-TTCAM", "BPTF", "W-ITCAM"} {
		if _, ok := t.NDCG5[m]; ok {
			methods = append(methods, m)
		}
	}
	fprintf(tw, "interval")
	for _, m := range methods {
		fprintf(tw, "\t%s", m)
	}
	fprintln(tw)
	for i, length := range t.Lengths {
		fprintf(tw, "%d days", length)
		for _, m := range methods {
			fprintf(tw, "\t%.4f", t.NDCG5[m][i])
		}
		fprintln(tw)
	}
	flush(tw)
}

// Best returns the interval length at which a method peaks.
func (t *IntervalSweepResult) Best(method string) int64 {
	vals := t.NDCG5[method]
	best, arg := -1.0, int64(0)
	for i, v := range vals {
		if v > best {
			best, arg = v, t.Lengths[i]
		}
	}
	return arg
}

// TopicCountResult is the payload of Figure 9: W-TTCAM NDCG@5 over a
// (K1, K2) grid on the Digg-like world.
type TopicCountResult struct {
	Dataset string
	K1s     []int
	K2s     []int
	// NDCG5[i][j] is the score at K2s[i] × K1s[j].
	NDCG5 [][]float64
}

// Figure9 reproduces "Performance of varying number of topics": W-TTCAM
// accuracy as K1 sweeps 10..100 for K2 ∈ {20, 40, 60, 80}.
func (r *Runner) Figure9() (*TopicCountResult, error) {
	return r.figure9Grid([]int{10, 20, 40, 60, 80, 100}, []int{20, 40, 60, 80})
}

// figure9Grid runs the sweep on explicit K1/K2 grids (benches shrink
// them).
func (r *Runner) figure9Grid(k1s, k2s []int) (*TopicCountResult, error) {
	data, _ := r.gridWorld(datagen.Digg)
	split, queries := r.splitQueries(data)
	out := &TopicCountResult{Dataset: datagen.Digg.String(), K1s: k1s, K2s: k2s}
	for _, k2 := range k2s {
		row := make([]float64, 0, len(k1s))
		for _, k1 := range k1s {
			opts := r.trainOpts()
			opts.K1, opts.K2 = k1, k2
			res, err := core.Train(core.WTTCAM, split.Train, opts)
			if err != nil {
				return nil, fmt.Errorf("experiments: figure9 K1=%d K2=%d: %w", k1, k2, err)
			}
			curve := eval.Evaluate(eval.BruteForceRanker(res.Model), queries, 5, r.cfg.Workers)
			row = append(row, curve.At(5).NDCG)
		}
		out.NDCG5 = append(out.NDCG5, row)
	}
	return out, nil
}

// Render prints the Figure 9 series: one row per K2.
func (f *TopicCountResult) Render(w io.Writer) {
	fprintf(w, "W-TTCAM NDCG@5 vs number of user-oriented topics (K1) on %s\n", f.Dataset)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fprintf(tw, "K2 \\ K1")
	for _, k1 := range f.K1s {
		fprintf(tw, "\t%d", k1)
	}
	fprintln(tw)
	for i, k2 := range f.K2s {
		fprintf(tw, "W-TTCAM-%d", k2)
		for j := range f.K1s {
			fprintf(tw, "\t%.4f", f.NDCG5[i][j])
		}
		fprintln(tw)
	}
	flush(tw)
}
