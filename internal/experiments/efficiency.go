package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"tcam/internal/core"
	"tcam/internal/datagen"
	"tcam/internal/model"
	"tcam/internal/model/ttcam"
	"tcam/internal/topk"
)

// LatencyResult is the payload of Figure 8: average online time per
// query (and items examined) for TCAM-TA, TCAM-BF and BPTF as the
// number of recommendations grows.
type LatencyResult struct {
	Dataset  string
	NumItems int
	Ks       []int
	// Per-k average latency per query.
	TA, BF, BPTF []time.Duration
	// TABatch is the per-query latency when the same workload goes
	// through Index.QueryBatch — the serving fast path: pooled searcher
	// scratch per worker, fanned across CPUs.
	TABatch []time.Duration
	// TAExamined[i] is the mean number of items TA examined at Ks[i]
	// (the scan-saving evidence behind the latency gap).
	TAExamined []float64
}

// Figure8 reproduces "Efficiency w.r.t Online Recommendations" on the
// Douban-like (70k items) and MovieLens-like worlds: a TTCAM is trained
// once per dataset, then queried via TA and brute force, against BPTF's
// brute-force-only ranking.
func (r *Runner) Figure8() ([]*LatencyResult, error) {
	var out []*LatencyResult
	for _, p := range []datagen.Profile{datagen.Douban, datagen.MovieLens} {
		res, err := r.latencyOn(p)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

func (r *Runner) latencyOn(p datagen.Profile) (*LatencyResult, error) {
	data, _ := r.gridWorld(p)
	tcamRes, err := core.Train(core.TTCAM, data, r.trainOpts())
	if err != nil {
		return nil, fmt.Errorf("experiments: figure8 TTCAM on %s: %w", p, err)
	}
	bptfRes, err := core.Train(core.BPTF, data, r.trainOpts())
	if err != nil {
		return nil, fmt.Errorf("experiments: figure8 BPTF on %s: %w", p, err)
	}
	tm := tcamRes.Model.(*ttcam.Model)
	ix := topk.BuildIndex(tm)

	// Deterministic query workload spread across users and intervals.
	const queriesPerK = 40
	type q struct{ u, t int }
	queries := make([]q, 0, queriesPerK)
	for i := 0; i < queriesPerK; i++ {
		queries = append(queries, q{
			u: (i * 7919) % data.NumUsers(),
			t: (i * 104729) % data.NumIntervals(),
		})
	}

	out := &LatencyResult{Dataset: p.String(), NumItems: data.NumItems()}
	batch := make([]topk.BatchQuery, len(queries))
	for _, k := range []int{1, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20} {
		out.Ks = append(out.Ks, k)
		var taTotal, bfTotal, bptfTotal time.Duration
		var examined float64
		for _, qq := range queries {
			start := time.Now()
			_, st := ix.Query(tm, qq.u, qq.t, k, nil)
			taTotal += time.Since(start)
			examined += float64(st.ItemsExamined)

			start = time.Now()
			topk.BruteForce(tm, qq.u, qq.t, k, nil)
			bfTotal += time.Since(start)

			start = time.Now()
			topk.BruteForce(bptfRes.Model, qq.u, qq.t, k, nil)
			bptfTotal += time.Since(start)
		}
		// The same workload through the batch serving path.
		for i, qq := range queries {
			batch[i] = topk.BatchQuery{U: qq.u, T: qq.t, K: k}
		}
		start := time.Now()
		ix.QueryBatch(tm, batch, 0)
		batchTotal := time.Since(start)

		n := time.Duration(len(queries))
		out.TA = append(out.TA, taTotal/n)
		out.BF = append(out.BF, bfTotal/n)
		out.BPTF = append(out.BPTF, bptfTotal/n)
		out.TABatch = append(out.TABatch, batchTotal/n)
		out.TAExamined = append(out.TAExamined, examined/float64(len(queries)))
	}
	return out, nil
}

// Render prints the Figure 8 series for one dataset. The TA-batch
// column appears when the result carries it (older payloads omit it).
func (l *LatencyResult) Render(w io.Writer) {
	fprintf(w, "Online recommendation latency on %s (%d items), mean per query\n", l.Dataset, l.NumItems)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	withBatch := len(l.TABatch) == len(l.Ks)
	if withBatch {
		fprintln(tw, "k\tTCAM-TA\tTCAM-TA-batch\tTCAM-BF\tBPTF\tTA items examined")
	} else {
		fprintln(tw, "k\tTCAM-TA\tTCAM-BF\tBPTF\tTA items examined")
	}
	for i, k := range l.Ks {
		if withBatch {
			fprintf(tw, "%d\t%v\t%v\t%v\t%v\t%.0f\n", k, l.TA[i], l.TABatch[i], l.BF[i], l.BPTF[i], l.TAExamined[i])
		} else {
			fprintf(tw, "%d\t%v\t%v\t%v\t%.0f\n", k, l.TA[i], l.BF[i], l.BPTF[i], l.TAExamined[i])
		}
	}
	flush(tw)
}

// MeanTA returns the mean TA latency across the sweep, for shape
// assertions.
func (l *LatencyResult) MeanTA() time.Duration { return meanDur(l.TA) }

// MeanBF returns the mean brute-force latency across the sweep.
func (l *LatencyResult) MeanBF() time.Duration { return meanDur(l.BF) }

// MeanBPTF returns the mean BPTF latency across the sweep.
func (l *LatencyResult) MeanBPTF() time.Duration { return meanDur(l.BPTF) }

// MeanTABatch returns the mean per-query latency of the batch serving
// path across the sweep.
func (l *LatencyResult) MeanTABatch() time.Duration { return meanDur(l.TABatch) }

func meanDur(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var total time.Duration
	for _, d := range ds {
		total += d
	}
	return total / time.Duration(len(ds))
}

// TrainTimeResult is the payload of Table 4: offline training time per
// model per dataset.
type TrainTimeResult struct {
	// Times[dataset][method] is the wall-clock training duration.
	Datasets []string
	Methods  []string
	Times    map[string]map[string]time.Duration
}

// Table4 reproduces "Comparison on Model Training Time": BPRMF vs TCAM
// (TTCAM) vs BPTF on the Douban-like and MovieLens-like worlds.
func (r *Runner) Table4() (*TrainTimeResult, error) {
	methods := []core.Method{core.BPRMF, core.TTCAM, core.BPTF}
	out := &TrainTimeResult{
		Methods: []string{"BPRMF", "TCAM", "BPTF"},
		Times:   make(map[string]map[string]time.Duration),
	}
	for _, p := range []datagen.Profile{datagen.Douban, datagen.MovieLens} {
		data, _ := r.gridWorld(p)
		row := make(map[string]time.Duration)
		for i, m := range methods {
			res, err := core.Train(m, data, r.trainOpts())
			if err != nil {
				return nil, fmt.Errorf("experiments: table4 %s on %s: %w", m, p, err)
			}
			row[out.Methods[i]] = res.TrainTime
			_ = res.Model
		}
		out.Datasets = append(out.Datasets, p.String())
		out.Times[p.String()] = row
	}
	return out, nil
}

// Render prints the Table 4 layout.
func (t *TrainTimeResult) Render(w io.Writer) {
	fprintf(w, "Offline model training time\n")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fprintf(tw, "dataset")
	for _, m := range t.Methods {
		fprintf(tw, "\t%s", m)
	}
	fprintln(tw)
	for _, d := range t.Datasets {
		fprintf(tw, "%s", d)
		for _, m := range t.Methods {
			fprintf(tw, "\t%v", t.Times[d][m].Round(time.Millisecond))
		}
		fprintln(tw)
	}
	flush(tw)
}

// compile-time check that ttcam exposes the interfaces Figure 8 needs.
var _ model.TopicScorer = (*ttcam.Model)(nil)
