// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5) on the synthetic worlds of internal/datagen.
// Each driver returns a typed result — so tests and benches can assert
// the paper's qualitative shapes — and can render itself in the paper's
// row/series layout. The per-experiment index lives in DESIGN.md;
// paper-vs-measured numbers are recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"text/tabwriter"

	"tcam/internal/core"
	"tcam/internal/cuboid"
	"tcam/internal/datagen"
	"tcam/internal/dataset"
	"tcam/internal/eval"
)

// Config tunes how heavy an experiment run is. The zero value is not
// usable; start from Default() or Small().
type Config struct {
	// Seed drives world generation, splits and training.
	Seed int64
	// Scale multiplies the default world sizes (users and days);
	// Small() uses it to keep CI and benches fast.
	Scale float64
	// MaxQueries caps evaluation queries per (dataset, method); 0 means
	// all.
	MaxQueries int
	// EMIters / Factors / GibbsSweeps bound model training.
	EMIters     int
	Factors     int
	GibbsBurnin int
	GibbsKeep   int
	// K1 / K2 are the TCAM topic counts used outside the sweeps that
	// vary them.
	K1, K2 int
	// Workers caps parallelism (0 = all CPUs).
	Workers int
}

// Default returns the full-size configuration used to produce
// EXPERIMENTS.md.
func Default() Config {
	return Config{
		Seed:        1,
		Scale:       1,
		MaxQueries:  4000,
		EMIters:     40,
		Factors:     16,
		GibbsBurnin: 10,
		GibbsKeep:   6,
		K1:          60,
		K2:          40,
	}
}

// Small returns a configuration an order of magnitude lighter, for
// benches and smoke tests. The qualitative shapes still hold; absolute
// numbers are noisier.
func Small() Config {
	return Config{
		Seed:        1,
		Scale:       0.25,
		MaxQueries:  500,
		EMIters:     15,
		Factors:     8,
		GibbsBurnin: 4,
		GibbsKeep:   3,
		K1:          20,
		K2:          12,
	}
}

// Runner generates worlds lazily (one per profile, cached) and hosts
// the per-experiment drivers.
type Runner struct {
	cfg    Config
	worlds map[datagen.Profile]*datagen.World
}

// NewRunner returns a Runner over the given configuration.
func NewRunner(cfg Config) *Runner {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	return &Runner{cfg: cfg, worlds: make(map[datagen.Profile]*datagen.World)}
}

// Config returns the runner's configuration.
func (r *Runner) Config() Config { return r.cfg }

// World returns the (cached) synthetic world for a profile, scaled by
// the runner's configuration.
func (r *Runner) World(p datagen.Profile) *datagen.World {
	if w, ok := r.worlds[p]; ok {
		return w
	}
	cfg := datagen.DefaultConfig(p)
	cfg.Seed = r.cfg.Seed
	cfg.NumUsers = scaleInt(cfg.NumUsers, r.cfg.Scale, 40)
	// Days shrink more gently than users: halving the timeline already
	// crowds the event structure the temporal experiments rely on.
	dayScale := r.cfg.Scale
	if dayScale < 0.5 {
		dayScale = 0.5
	}
	cfg.NumDays = scaleInt(cfg.NumDays, dayScale, 20)
	if p != datagen.Douban {
		// Douban keeps its large catalog — that IS the experiment
		// (Figures 8 and Table 4 measure catalog-size effects).
		cfg.NumItems = scaleInt(cfg.NumItems, r.cfg.Scale, 60)
	}
	cfg.Genres = clampMin(scaleInt(cfg.Genres, r.cfg.Scale, 4), 4)
	cfg.Events = clampMin(scaleInt(cfg.Events, r.cfg.Scale, 5), 5)
	w := datagen.MustGenerate(cfg)
	r.worlds[p] = w
	return w
}

func scaleInt(n int, scale float64, min int) int {
	out := int(float64(n) * scale)
	return clampMin(out, min)
}

func clampMin(n, min int) int {
	if n < min {
		return min
	}
	return n
}

// intervalDays returns the paper's optimal interval length per profile
// (Section 5.3.2): three days for Digg, one month for the movie
// datasets, and two weeks for Delicious.
func intervalDays(p datagen.Profile) int64 {
	switch p {
	case datagen.Digg:
		return 3
	case datagen.MovieLens, datagen.Douban:
		return 30
	default:
		return 14
	}
}

// gridWorld buckets a world's log at the profile's default granularity.
func (r *Runner) gridWorld(p datagen.Profile) (*cuboid.Cuboid, dataset.TimeGrid) {
	w := r.World(p)
	c, grid, err := w.Log.Grid(intervalDays(p))
	if err != nil {
		panic(fmt.Sprintf("experiments: grid %s: %v", p, err))
	}
	return c, grid
}

// trainOpts converts the runner configuration into core training
// options.
func (r *Runner) trainOpts() core.Options {
	return core.Options{
		K1:       r.cfg.K1,
		K2:       r.cfg.K2,
		MaxIters: r.cfg.EMIters,
		Factors:  r.cfg.Factors,
		Epochs:   r.cfg.EMIters,
		Burnin:   r.cfg.GibbsBurnin,
		Samples:  r.cfg.GibbsKeep,
		Seed:     r.cfg.Seed,
		Workers:  r.cfg.Workers,
	}
}

// splitQueries produces the 80/20 per-(u,t) split and its evaluation
// queries, thinned to MaxQueries.
func (r *Runner) splitQueries(data *cuboid.Cuboid) (dataset.Split, []eval.Query) {
	rng := rand.New(rand.NewSource(r.cfg.Seed + 17))
	split := dataset.SplitPerInterval(rng, data, 0.2)
	queries := eval.SampleQueries(eval.BuildQueries(split), r.cfg.MaxQueries)
	return split, queries
}

// sortedMethods returns methods in the paper's presentation order.
func sortedMethods(curves map[string]eval.Curve) []string {
	order := map[string]int{}
	for i, m := range core.AllMethods() {
		order[string(m)] = i
	}
	names := make([]string, 0, len(curves))
	for name := range curves {
		names = append(names, name)
	}
	// Tie-break by name: methods outside the presentation order (all
	// mapping to rank 0) would otherwise keep their map-iteration
	// permutation — sort.Slice leaves tied elements in input order.
	sort.Slice(names, func(a, b int) bool {
		if order[names[a]] != order[names[b]] {
			return order[names[a]] < order[names[b]]
		}
		return names[a] < names[b]
	})
	return names
}

// fprintf writes formatted output, ignoring write errors (report
// streams are stdout or test buffers). The fprintf/fprintln/flush
// family is the package's single, visible discard point for render
// errors; renderers must route all table output through it.
func fprintf(w io.Writer, format string, args ...interface{}) {
	if w != nil {
		_, _ = fmt.Fprintf(w, format, args...)
	}
}

// fprintln is fprintln-shaped fprintf: write a line, ignore the write
// error.
func fprintln(w io.Writer, args ...interface{}) {
	if w != nil {
		_, _ = fmt.Fprintln(w, args...)
	}
}

// flush drains a renderer's tabwriter, ignoring the write error for
// the same reason fprintf does.
func flush(tw *tabwriter.Writer) { _ = tw.Flush() }
