package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"tcam/internal/eval"
)

// Render methods are exercised on hand-built results so the formatting
// paths stay covered without re-training models.

func TestAccuracyResultRender(t *testing.T) {
	res := &AccuracyResult{
		Dataset: "Digg",
		MaxK:    3,
		Curves: map[string]eval.Curve{
			"UT":      {{Precision: 0.1, NDCG: 0.2, F1: 0.1}, {Precision: 0.1, NDCG: 0.2, F1: 0.1}, {Precision: 0.1, NDCG: 0.2, F1: 0.1}},
			"W-TTCAM": {{Precision: 0.3, NDCG: 0.4, F1: 0.3}, {Precision: 0.3, NDCG: 0.4, F1: 0.3}, {Precision: 0.3, NDCG: 0.4, F1: 0.3}},
		},
	}
	var buf bytes.Buffer
	res.Render(&buf)
	out := buf.String()
	for _, want := range []string{"Precision@k", "NDCG@k", "F1@k", "W-TTCAM", "UT", "0.4000"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	if got := res.MeanNDCG("W-TTCAM"); got < 0.399 || got > 0.401 {
		t.Errorf("MeanNDCG = %v", got)
	}
	if res.MeanNDCG("missing") != 0 {
		t.Error("MeanNDCG of unknown method should be 0")
	}
}

func TestIntervalSweepRenderAndBest(t *testing.T) {
	res := &IntervalSweepResult{
		Dataset: "Digg",
		Lengths: []int64{1, 3, 9},
		NDCG5: map[string][]float64{
			"TT":      {0.1, 0.2, 0.15},
			"W-TTCAM": {0.2, 0.3, 0.25},
		},
	}
	if res.Best("W-TTCAM") != 3 {
		t.Errorf("Best = %d, want 3", res.Best("W-TTCAM"))
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "9 days") || !strings.Contains(buf.String(), "0.3000") {
		t.Error("interval sweep render incomplete")
	}
}

func TestTopicCountRender(t *testing.T) {
	res := &TopicCountResult{
		Dataset: "Digg",
		K1s:     []int{10, 20},
		K2s:     []int{20, 40},
		NDCG5:   [][]float64{{0.1, 0.2}, {0.15, 0.25}},
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "W-TTCAM-40") {
		t.Error("figure 9 render missing K2 series label")
	}
}

func TestLatencyResultRenderAndMeans(t *testing.T) {
	res := &LatencyResult{
		Dataset:    "Douban Movie",
		NumItems:   69908,
		Ks:         []int{1, 10},
		TA:         []time.Duration{time.Millisecond, 3 * time.Millisecond},
		BF:         []time.Duration{10 * time.Millisecond, 10 * time.Millisecond},
		BPTF:       []time.Duration{40 * time.Millisecond, 40 * time.Millisecond},
		TAExamined: []float64{50, 400},
	}
	if res.MeanTA() != 2*time.Millisecond || res.MeanBF() != 10*time.Millisecond || res.MeanBPTF() != 40*time.Millisecond {
		t.Errorf("means = %v/%v/%v", res.MeanTA(), res.MeanBF(), res.MeanBPTF())
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "69908") {
		t.Error("latency render missing catalog size")
	}
	if strings.Contains(buf.String(), "TCAM-TA-batch") {
		t.Error("batch column rendered without batch measurements")
	}
	if (&LatencyResult{}).MeanTA() != 0 {
		t.Error("empty mean should be 0")
	}

	// With batch timings present (e.g. payloads written after the batch
	// serving layer landed), the extra column appears and has a mean.
	res.TABatch = []time.Duration{500 * time.Microsecond, 1500 * time.Microsecond}
	if res.MeanTABatch() != time.Millisecond {
		t.Errorf("MeanTABatch = %v", res.MeanTABatch())
	}
	buf.Reset()
	res.Render(&buf)
	if !strings.Contains(buf.String(), "TCAM-TA-batch") {
		t.Error("latency render missing batch column")
	}
}

func TestTrainTimeRender(t *testing.T) {
	res := &TrainTimeResult{
		Datasets: []string{"Douban Movie"},
		Methods:  []string{"BPRMF", "TCAM", "BPTF"},
		Times: map[string]map[string]time.Duration{
			"Douban Movie": {"BPRMF": time.Second, "TCAM": 2 * time.Second, "BPTF": 9 * time.Second},
		},
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "BPTF") || !strings.Contains(buf.String(), "9s") {
		t.Error("train time render incomplete")
	}
}

func TestLambdaCDFRenderAndShare(t *testing.T) {
	res := &LambdaCDFResult{
		Dataset:     "MovieLens",
		Xs:          []float64{0, 0.5, 1},
		PersonalCDF: []float64{0, 0.2, 1},
		TemporalCDF: []float64{0, 0.8, 1},
		MeanLambda:  0.8,
		lambdas:     []float64{0.9, 0.7, 0.3},
	}
	if got := res.ShareAbove(0.5); got < 0.66 || got > 0.67 {
		t.Errorf("ShareAbove(0.5) = %v, want 2/3", got)
	}
	if (&LambdaCDFResult{}).ShareAbove(0.5) != 0 {
		t.Error("empty ShareAbove should be 0")
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "CDF personal") {
		t.Error("lambda render incomplete")
	}
}

func TestTopicQualityRenderAndPurity(t *testing.T) {
	res := &TopicQualityResult{
		Dataset: "Delicious",
		Cluster: 7,
		Rows: []TopicQualityRow{
			{Model: "TT", TopItems: []string{"a", "b"}, BurstPurity: 0.25, GenericShare: 0.5},
			{Model: "W-TTCAM", TopItems: []string{"c", "d"}, BurstPurity: 0.875, GenericShare: 0},
		},
	}
	if res.Purity("W-TTCAM") != 0.875 || res.Purity("nope") != -1 {
		t.Error("Purity lookup wrong")
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "e07") || !strings.Contains(buf.String(), "burst purity") {
		t.Error("topic quality render incomplete")
	}
}

func TestSeparationRender(t *testing.T) {
	res := &SeparationResult{
		Dataset:          "Douban Movie",
		UserGenrePurity:  0.5,
		UserCohortPurity: 0.2,
		TimeCohortPurity: 0.6,
		TimeGenrePurity:  0.15,
		ExampleUserTopic: []string{"m1"},
		ExampleTimeTopic: []string{"m2"},
	}
	var buf bytes.Buffer
	res.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "user-oriented") || !strings.Contains(out, "0.600") {
		t.Error("separation render incomplete")
	}
}

func TestPearson(t *testing.T) {
	if got := pearson([]float64{1, 2, 3}, []float64{2, 4, 6}); got < 0.999 {
		t.Errorf("perfect correlation = %v", got)
	}
	if got := pearson([]float64{1, 2, 3}, []float64{3, 2, 1}); got > -0.999 {
		t.Errorf("perfect anticorrelation = %v", got)
	}
	if pearson([]float64{1, 1}, []float64{2, 3}) != 0 {
		t.Error("degenerate variance should give 0")
	}
	if pearson(nil, nil) != 0 {
		t.Error("empty should give 0")
	}
}
