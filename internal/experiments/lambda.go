package experiments

import (
	"fmt"
	"io"
	"math"
	"text/tabwriter"

	"tcam/internal/core"
	"tcam/internal/datagen"
	"tcam/internal/model/ttcam"
	"tcam/internal/stats"
)

// LambdaCDFResult is the payload of Figures 10 and 11: the cumulative
// distributions of the learned personal-interest influence λu and the
// temporal-context influence 1−λu across users, plus the correlation
// with the generator's ground-truth λ.
type LambdaCDFResult struct {
	Dataset string
	// Xs is the CDF evaluation grid over [0, 1]; PersonalCDF[i] =
	// P(λu ≤ Xs[i]), TemporalCDF[i] = P(1−λu ≤ Xs[i]).
	Xs          []float64
	PersonalCDF []float64
	TemporalCDF []float64
	// MeanLambda is the mean learned λu; ShareAbove[p] helpers feed the
	// paper's "more than 76% of users above 0.82"-style claims.
	MeanLambda float64
	// TruthCorrelation is the Pearson correlation between learned and
	// ground-truth λu (not available to the paper — a bonus the
	// synthetic worlds make possible).
	TruthCorrelation float64

	lambdas []float64
}

// Figure10 reproduces "Temporal Context Influence Result (MovieLens)":
// λu concentrates high — movie selection is interest-driven.
func (r *Runner) Figure10() (*LambdaCDFResult, error) {
	return r.lambdaOn(datagen.MovieLens)
}

// Figure11 reproduces the Digg counterpart: λu concentrates low — news
// reading is temporal-context-driven.
func (r *Runner) Figure11() (*LambdaCDFResult, error) {
	return r.lambdaOn(datagen.Digg)
}

func (r *Runner) lambdaOn(p datagen.Profile) (*LambdaCDFResult, error) {
	data, _ := r.gridWorld(p)
	res, err := core.Train(core.WTTCAM, data, r.trainOpts())
	if err != nil {
		return nil, fmt.Errorf("experiments: lambda on %s: %w", p, err)
	}
	m := res.Model.(*ttcam.Model)
	w := r.World(p)
	lambdas := make([]float64, m.NumUsers())
	for u := range lambdas {
		lambdas[u] = m.Lambda(u)
	}
	inverse := make([]float64, len(lambdas))
	for u, l := range lambdas {
		inverse[u] = 1 - l
	}
	const points = 21
	xs, personal := stats.NewECDF(lambdas).Table(0, 1, points)
	_, temporal := stats.NewECDF(inverse).Table(0, 1, points)
	return &LambdaCDFResult{
		Dataset:          p.String(),
		Xs:               xs,
		PersonalCDF:      personal,
		TemporalCDF:      temporal,
		MeanLambda:       stats.Mean(lambdas),
		TruthCorrelation: pearson(lambdas, w.Truth.Lambda),
		lambdas:          lambdas,
	}, nil
}

// ShareAbove returns the fraction of users whose λu exceeds x.
func (l *LambdaCDFResult) ShareAbove(x float64) float64 {
	if len(l.lambdas) == 0 {
		return 0
	}
	n := 0
	for _, v := range l.lambdas {
		if v > x {
			n++
		}
	}
	return float64(n) / float64(len(l.lambdas))
}

// Render prints both CDFs side by side.
func (l *LambdaCDFResult) Render(w io.Writer) {
	fprintf(w, "Influence probability CDFs on %s (mean λu = %.3f, corr. with ground truth = %.3f)\n",
		l.Dataset, l.MeanLambda, l.TruthCorrelation)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fprintln(tw, "x\tCDF personal (λu ≤ x)\tCDF temporal (1−λu ≤ x)")
	for i, x := range l.Xs {
		fprintf(tw, "%.2f\t%.3f\t%.3f\n", x, l.PersonalCDF[i], l.TemporalCDF[i])
	}
	flush(tw)
}

// pearson returns the Pearson correlation of two equal-length samples,
// or 0 when degenerate.
func pearson(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n == 0 {
		return 0
	}
	ma, mb := stats.Mean(a[:n]), stats.Mean(b[:n])
	var cov, va, vb float64
	for i := 0; i < n; i++ {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va <= 0 || vb <= 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}
