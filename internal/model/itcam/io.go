package itcam

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
)

// wire is the gob format of a trained ITCAM.
type wire struct {
	Label        string
	NumUsers     int
	NumIntervals int
	NumItems     int
	K1           int
	Theta        []float64
	Phi          []float64
	ThetaT       []float64
	Lambda       []float64
}

// Write serializes the trained model to w in gob format.
func (m *Model) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := gob.NewEncoder(bw)
	if err := enc.Encode(&wire{
		Label:        m.label,
		NumUsers:     m.numUsers,
		NumIntervals: m.numIntervals,
		NumItems:     m.numItems,
		K1:           m.k1,
		Theta:        m.theta,
		Phi:          m.phi,
		ThetaT:       m.thetaT,
		Lambda:       m.lambda,
	}); err != nil {
		return fmt.Errorf("itcam: encode: %w", err)
	}
	return bw.Flush()
}

// Read deserializes a model written with Write, validating dimensions.
func Read(r io.Reader) (*Model, error) {
	var w wire
	if err := gob.NewDecoder(bufio.NewReader(r)).Decode(&w); err != nil {
		return nil, fmt.Errorf("itcam: decode: %w", err)
	}
	if w.NumUsers <= 0 || w.NumIntervals <= 0 || w.NumItems <= 0 || w.K1 <= 0 {
		return nil, fmt.Errorf("itcam: corrupt dimensions %d/%d/%d/K1=%d", w.NumUsers, w.NumIntervals, w.NumItems, w.K1)
	}
	if len(w.Theta) != w.NumUsers*w.K1 || len(w.Phi) != w.K1*w.NumItems ||
		len(w.ThetaT) != w.NumIntervals*w.NumItems || len(w.Lambda) != w.NumUsers {
		return nil, fmt.Errorf("itcam: parameter lengths inconsistent with dimensions")
	}
	return &Model{
		label:        w.Label,
		numUsers:     w.NumUsers,
		numIntervals: w.NumIntervals,
		numItems:     w.NumItems,
		k1:           w.K1,
		theta:        w.Theta,
		phi:          w.Phi,
		thetaT:       w.ThetaT,
		lambda:       w.Lambda,
	}, nil
}
