// Package itcam implements the item-based variant of the Temporal
// Context-Aware Mixture model (Section 3.2.1 of the paper). The
// likelihood of user u rating item v during interval t is
//
//	P(v|u,t) = λu·Σ_z P(z|θu)P(v|φz) + (1−λu)·P(v|θ't)      (Eq. 1–2)
//
// where the temporal context θ't is a multinomial directly over items —
// one per interval. Parameters are learned with the EM updates of
// Equations (4)–(11); the iteration loop — sharding, merge order,
// convergence, checkpointing — is owned by internal/train, this package
// supplies only the E/M-step math, mirroring the MapReduce
// decomposition the paper notes in Section 3.2.3.
package itcam

import (
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"tcam/internal/cuboid"
	"tcam/internal/model"
	"tcam/internal/train"
)

// maxDenseCells guards the dense T×V temporal-context table: ITCAM
// materializes one item distribution per interval, which is only
// sensible for modest catalogs (the paper's Digg and MovieLens runs).
// Beyond this size, use TTCAM.
const maxDenseCells = 64 << 20

// Config parameterizes ITCAM training.
type Config struct {
	// K1 is the number of user-oriented topics.
	K1 int
	// MaxIters bounds the EM iterations; Tol is the relative
	// log-likelihood improvement below which training stops early.
	MaxIters int
	Tol      float64
	// MaxWall optionally bounds training wall-clock time (0 = no budget).
	MaxWall time.Duration
	// Seed drives the random initialization.
	Seed int64
	// Workers caps E-step goroutines; non-positive means GOMAXPROCS. It
	// never affects the learned parameters.
	Workers int
	// Shards is the deterministic E-step shard count (0 means
	// train.DefaultShards). It fixes the floating-point summation
	// grouping: runs with equal Shards produce bit-identical parameters
	// regardless of Workers.
	Shards int
	// Smoothing is the additive epsilon applied when normalizing every
	// multinomial, keeping all generation probabilities positive.
	Smoothing float64
	// Label overrides the model name (the weighted variant reports
	// "W-ITCAM").
	Label string
	// LambdaMass optionally overrides the per-cell masses used by the
	// mixing-weight update (Equation 11), aligned with the training
	// cuboid's Cells() order. It exists as an ablation knob: training
	// topics on the weighted cuboid of Equation (20) while estimating λ
	// on the raw scores isolates the weighting scheme's effect on topic
	// quality from its effect on mixing-weight calibration (on the
	// synthetic worlds, Equation (20) applied verbatim — nil here —
	// recovers the ground-truth λ distribution best).
	LambdaMass []float64
	// Checkpoint configures periodic parameter snapshots and resume; the
	// zero value disables them.
	Checkpoint train.CheckpointConfig
	// Hook, when non-nil, observes every EM iteration.
	Hook func(model.IterStat)
}

// DefaultConfig returns the training configuration used by the
// experiment harness unless a sweep overrides it.
func DefaultConfig() Config {
	return Config{K1: 40, MaxIters: 50, Tol: 1e-5, Seed: 1, Smoothing: 1e-9}
}

func (c Config) validate(data *cuboid.Cuboid) error {
	if c.K1 <= 0 {
		return fmt.Errorf("itcam: K1 must be positive, got %d", c.K1)
	}
	if c.MaxIters <= 0 {
		return fmt.Errorf("itcam: MaxIters must be positive, got %d", c.MaxIters)
	}
	if c.Smoothing < 0 {
		return fmt.Errorf("itcam: negative smoothing %v", c.Smoothing)
	}
	if data.NNZ() == 0 {
		return errors.New("itcam: empty training cuboid")
	}
	if cells := data.NumIntervals() * data.NumItems(); cells > maxDenseCells {
		return fmt.Errorf("itcam: dense temporal context needs %d cells (max %d); use ttcam for large catalogs", cells, maxDenseCells)
	}
	if c.LambdaMass != nil && len(c.LambdaMass) != data.NNZ() {
		return fmt.Errorf("itcam: LambdaMass has %d entries for %d cells", len(c.LambdaMass), data.NNZ())
	}
	return nil
}

// engineConfig translates the model-level knobs into the engine policy.
func (c Config) engineConfig() train.Config {
	return train.Config{
		MaxIters:   c.MaxIters,
		Tol:        c.Tol,
		MaxWall:    c.MaxWall,
		Shards:     c.Shards,
		Workers:    c.Workers,
		Checkpoint: c.Checkpoint,
		Hook:       c.Hook,
	}
}

// Model is a trained ITCAM. All parameter slices are row-major.
type Model struct {
	label string

	numUsers     int
	numIntervals int
	numItems     int
	k1           int

	theta  []float64 // N×K1: P(z|θu)
	phi    []float64 // K1×V: P(v|φz)
	thetaT []float64 // T×V: P(v|θ't)
	lambda []float64 // N: λu
}

// Train fits ITCAM on the rating cuboid (or the weighted cuboid of
// Equation 20) and returns the model with its training statistics.
func Train(data *cuboid.Cuboid, cfg Config) (*Model, model.TrainStats, error) {
	var stats model.TrainStats
	tr, err := newTrainer(data, cfg)
	if err != nil {
		return nil, stats, err
	}
	stats, err = train.Run(tr, cfg.engineConfig())
	if err != nil {
		return nil, stats, err
	}
	return tr.m, stats, nil
}

// newTrainer validates the config, builds the initialized model and wires
// up the trainer state. It is the shared setup behind Train and the
// single-iteration benchmarks.
func newTrainer(data *cuboid.Cuboid, cfg Config) (*trainer, error) {
	if err := cfg.validate(data); err != nil {
		return nil, err
	}
	n, T, v := data.NumUsers(), data.NumIntervals(), data.NumItems()
	label := cfg.Label
	if label == "" {
		label = "ITCAM"
	}
	m := &Model{
		label:        label,
		numUsers:     n,
		numIntervals: T,
		numItems:     v,
		k1:           cfg.K1,
		theta:        make([]float64, n*cfg.K1),
		phi:          make([]float64, cfg.K1*v),
		thetaT:       make([]float64, T*v),
		lambda:       make([]float64, n),
	}
	m.initialize(data, cfg.Seed)

	tr := &trainer{
		m:      m,
		data:   data,
		cfg:    cfg,
		theta:  make([]float64, len(m.theta)),
		lamNum: make([]float64, n),
		lamDen: make([]float64, n),
		phiT:   make([]float64, len(m.phi)),
	}
	tr.refreshPhiT()
	return tr, nil
}

// initialize seeds θ and φ with jittered-uniform rows, θ' with the
// empirical per-interval item distribution, and λ at one half. This is
// the only place training consumes randomness; a checkpoint resume
// simply overwrites the initialized parameters, which is why resumed
// runs match uninterrupted ones bit-for-bit.
func (m *Model) initialize(data *cuboid.Cuboid, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	fillJitteredRows(rng, m.theta, m.k1)
	fillJitteredRows(rng, m.phi, m.numItems)
	for _, cell := range data.Cells() {
		m.thetaT[int(cell.T)*m.numItems+int(cell.V)] += cell.Score
	}
	model.NormalizeRows(m.thetaT, m.numItems, 1e-6)
	for u := range m.lambda {
		m.lambda[u] = 0.5
	}
}

func fillJitteredRows(rng *rand.Rand, data []float64, cols int) {
	for i := range data {
		data[i] = 1 + 0.5*rng.Float64()
	}
	model.NormalizeRows(data, cols, 0)
}

// trainer adapts the ITCAM E/M-step math to the train.Trainable
// contract. The θ and λ sufficient statistics are user-sharded — every
// shard writes a disjoint row range of one shared slab — so only the
// global φ and θ' slabs are duplicated per shard and merged.
//
// phiT is the E-step's read-side copy of φ in item-major (V×K1) layout,
// rebuilt — by bit-exact transposition — after every M-step and on
// checkpoint restore. The per-cell topic loop then reads one contiguous
// K1-length row instead of a stride-V column of m.phi, and the shard
// accumulators store their φ statistics in the same item-major layout
// so the loop's writes are contiguous too.
type trainer struct {
	m    *Model
	data *cuboid.Cuboid
	cfg  Config

	theta  []float64 // N×K1, shard s owns rows [lo, hi)
	lamNum []float64 // N
	lamDen []float64 // N
	phiT   []float64 // V×K1: transpose of m.phi
}

// refreshPhiT rebuilds the item-major φ copy from the current model
// parameters. Transposition is pure data movement, so the E-step reads
// exactly the values it would have read from m.phi.
func (tr *trainer) refreshPhiT() {
	train.Transpose(tr.phiT, tr.m.phi, tr.m.k1, tr.m.numItems)
}

// accum is one shard's sufficient-statistic set: private φ and θ' slabs
// plus the shard's slice of the shared user-dimension statistics. The φ
// slab is item-major (V×K1), mirroring trainer.phiT.
type accum struct {
	tr     *trainer
	lo, hi int

	phiT   []float64 // V×K1
	thetaT []float64 // T×V
	pz     []float64 // E-step posterior scratch, length K1
	ll     float64
}

func (tr *trainer) NumUsers() int { return tr.m.numUsers }

func (tr *trainer) NewAccum(_, lo, hi int) train.Accum {
	return &accum{
		tr:     tr,
		lo:     lo,
		hi:     hi,
		phiT:   make([]float64, len(tr.m.phi)),
		thetaT: make([]float64, len(tr.m.thetaT)),
		pz:     make([]float64, tr.m.k1),
	}
}

// Reset clears the shard's slabs and its disjoint range of the shared
// user-dimension statistics.
//
//tcam:hotpath
func (a *accum) Reset() {
	k1 := a.tr.m.k1
	train.Zero(a.tr.theta[a.lo*k1 : a.hi*k1])
	train.Zero(a.tr.lamNum[a.lo:a.hi])
	train.Zero(a.tr.lamDen[a.lo:a.hi])
	train.Zero(a.phiT)
	train.Zero(a.thetaT)
	a.ll = 0
}

// Merge folds src's global slabs into the receiver; the user-sharded
// statistics live in one shared slab and need no merging.
//
//tcam:hotpath
func (a *accum) Merge(src train.Accum) {
	s := src.(*accum)
	train.MergeInto(a.phiT, s.phiT)
	train.MergeInto(a.thetaT, s.thetaT)
	a.ll += s.ll
}

func (tr *trainer) EStep(a train.Accum) { tr.emUserRange(a.(*accum)) }

// emUserRange runs the E-step over one shard's user range [lo, hi),
// accumulating sufficient statistics into the shard's slabs. All
// scratch is pre-sized in the accumulator so the per-iteration inner
// loop never touches the allocator.
//
// The scan is a linear walk of the cuboid's CSR columns — no index
// indirection — and every slab the K1 inner loop touches (θ row, θ
// accumulator row, item-major φ row and its accumulator row, posterior
// scratch) is one contiguous K1-length block, so the whole per-cell
// working set stays cache-resident. The floating-point operations and
// their order are exactly those of the pre-CSR loop, which is what
// keeps trained parameters bit-identical.
//
//tcam:hotpath
func (tr *trainer) emUserRange(a *accum) {
	m, cfg := tr.m, tr.cfg
	k1, V := m.k1, m.numItems
	data := tr.data
	ts, vs, scores := data.CSR()
	phiT := tr.phiT
	pz := a.pz
	var ll float64
	for u := a.lo; u < a.hi; u++ {
		lam := m.lambda[u]
		thetaRow := m.theta[u*k1 : (u+1)*k1]
		thetaAcc := tr.theta[u*k1 : (u+1)*k1]
		lo, hi := data.UserSpan(u)
		for i := lo; i < hi; i++ {
			v, t, w := int(vs[i]), int(ts[i]), scores[i]

			// E-step — Equations (4) and (5).
			phiRow := phiT[v*k1 : (v+1)*k1]
			pu := train.DotInto(pz, thetaRow, phiRow)
			pt := m.thetaT[t*V+v]
			denom := lam*pu + (1-lam)*pt
			if denom <= 0 {
				denom = 1e-300
			}
			ps1 := lam * pu / denom
			ll += w * math.Log(denom)

			// Accumulate — numerators of Equations (8)–(11).
			if pu > 0 {
				scale := w * ps1 / pu
				train.AddScaledPair(thetaAcc, a.phiT[v*k1:(v+1)*k1], scale, pz)
			}
			a.thetaT[t*V+v] += w * (1 - ps1)
			lm := w
			if cfg.LambdaMass != nil {
				lm = cfg.LambdaMass[i]
			}
			tr.lamNum[u] += lm * ps1
			tr.lamDen[u] += lm
		}
	}
	a.ll = ll
}

// MStep applies Equations (8)–(11) from the merged statistics and
// returns the data log-likelihood under the parameters the iteration
// started from (the quantity EM is guaranteed not to decrease).
func (tr *trainer) MStep(merged train.Accum) float64 {
	a := merged.(*accum)
	m, cfg := tr.m, tr.cfg
	k1, V := m.k1, m.numItems
	copy(m.theta, tr.theta)
	model.NormalizeRows(m.theta, k1, cfg.Smoothing)
	train.Transpose(m.phi, a.phiT, V, k1) // item-major stats back to K1×V
	model.NormalizeRows(m.phi, V, cfg.Smoothing)
	copy(m.thetaT, a.thetaT)
	model.NormalizeRows(m.thetaT, V, cfg.Smoothing)
	for u := 0; u < m.numUsers; u++ {
		if tr.lamDen[u] > 0 {
			m.lambda[u] = train.ClampLambda(tr.lamNum[u] / tr.lamDen[u])
		}
	}
	tr.refreshPhiT()
	if model.AssertionsEnabled {
		model.AssertRowStochastic("itcam theta", m.theta, k1, 1e-9)
		model.AssertRowStochastic("itcam phi", m.phi, V, 1e-9)
		model.AssertRowStochastic("itcam thetaT", m.thetaT, V, 1e-9)
		model.AssertFiniteIn01("itcam lambda", m.lambda)
	}
	return a.ll
}

// EncodeParams snapshots the full parameter state (the model wire
// format) for the engine's checkpoints.
func (tr *trainer) EncodeParams(w io.Writer) error { return tr.m.Write(w) }

// DecodeParams restores a checkpoint snapshot into the model being
// trained, rejecting dimension mismatches against the training config.
func (tr *trainer) DecodeParams(r io.Reader) error {
	loaded, err := Read(r)
	if err != nil {
		return err
	}
	m := tr.m
	if loaded.numUsers != m.numUsers || loaded.numIntervals != m.numIntervals ||
		loaded.numItems != m.numItems || loaded.k1 != m.k1 {
		return fmt.Errorf("itcam: checkpoint dimensions %d/%d/%d/K1=%d do not match training config %d/%d/%d/K1=%d",
			loaded.numUsers, loaded.numIntervals, loaded.numItems, loaded.k1,
			m.numUsers, m.numIntervals, m.numItems, m.k1)
	}
	m.theta, m.phi, m.thetaT, m.lambda = loaded.theta, loaded.phi, loaded.thetaT, loaded.lambda
	tr.refreshPhiT()
	return nil
}

var (
	_ train.Trainable      = (*trainer)(nil)
	_ train.Checkpointable = (*trainer)(nil)
)

// Name returns the model label ("ITCAM" or "W-ITCAM").
func (m *Model) Name() string { return m.label }

// NumItems returns the item-catalog size.
func (m *Model) NumItems() int { return m.numItems }

// NumUsers returns the user count the model was trained on.
func (m *Model) NumUsers() int { return m.numUsers }

// NumIntervals returns the number of time intervals.
func (m *Model) NumIntervals() int { return m.numIntervals }

// K1 returns the number of user-oriented topics.
func (m *Model) K1() int { return m.k1 }

// Lambda returns λu, the personal-interest influence probability of
// user u (Figures 10–11 plot its distribution).
func (m *Model) Lambda(u int) float64 { return m.lambda[u] }

// UserInterest returns P(·|θu), user u's distribution over the K1
// user-oriented topics. Callers must not modify the slice.
func (m *Model) UserInterest(u int) []float64 { return m.theta[u*m.k1 : (u+1)*m.k1] }

// UserTopic returns P(·|φz), the item distribution of user-oriented
// topic z. Callers must not modify the slice.
func (m *Model) UserTopic(z int) []float64 { return m.phi[z*m.numItems : (z+1)*m.numItems] }

// TemporalContext returns P(·|θ't), the item distribution of interval
// t's temporal context. Callers must not modify the slice.
func (m *Model) TemporalContext(t int) []float64 {
	return m.thetaT[t*m.numItems : (t+1)*m.numItems]
}

// Score implements Equation (1): the likelihood that u rates v during t.
//
//tcam:hotpath
func (m *Model) Score(u, t, v int) float64 {
	var pu float64
	thetaRow := m.UserInterest(u)
	for z := 0; z < m.k1; z++ {
		pu += thetaRow[z] * m.phi[z*m.numItems+v]
	}
	lam := m.lambda[u]
	return lam*pu + (1-lam)*m.thetaT[t*m.numItems+v]
}

// ScoreAll fills scores[v] with Score(u, t, v) for every item in one
// pass over the topic matrices.
//
//tcam:hotpath
func (m *Model) ScoreAll(u, t int, scores []float64) {
	if len(scores) != m.numItems {
		panic(fmt.Sprintf("itcam: ScoreAll buffer %d, want %d", len(scores), m.numItems))
	}
	lam := m.lambda[u]
	ctx := m.TemporalContext(t)
	for v := range scores {
		scores[v] = (1 - lam) * ctx[v]
	}
	thetaRow := m.UserInterest(u)
	for z := 0; z < m.k1; z++ {
		w := lam * thetaRow[z]
		if w <= 0 {
			continue
		}
		phiRow := m.UserTopic(z)
		for v := range scores {
			scores[v] += w * phiRow[v]
		}
	}
}

// NumTopics returns the expanded topic-space size of Section 4.1. For
// ITCAM each interval's temporal context acts as one additional topic,
// so K = K1 + T.
func (m *Model) NumTopics() int { return m.k1 + m.numIntervals }

// QueryWeights returns ϑq for query (u, t): λu·θu on the user-oriented
// topics and (1−λu) on interval t's pseudo-topic, zero elsewhere.
func (m *Model) QueryWeights(u, t int) []float64 {
	out := make([]float64, m.NumTopics())
	m.QueryWeightsInto(u, t, out)
	return out
}

// QueryWeightsInto is the allocation-free form of QueryWeights: it
// overwrites every entry of out, which must have length NumTopics().
//
//tcam:hotpath
func (m *Model) QueryWeightsInto(u, t int, out []float64) {
	lam := m.lambda[u]
	thetaRow := m.UserInterest(u)
	for z := 0; z < m.k1; z++ {
		out[z] = lam * thetaRow[z]
	}
	for z := m.k1; z < len(out); z++ {
		out[z] = 0
	}
	out[m.k1+t] = 1 - lam
}

// TopicItems returns ϕ_z̃: a user-oriented topic's item distribution for
// z̃ < K1, an interval's temporal context otherwise.
//
//tcam:hotpath
func (m *Model) TopicItems(z int) []float64 {
	if z < m.k1 {
		return m.UserTopic(z)
	}
	return m.TemporalContext(z - m.k1)
}

var (
	_ model.BulkScorer    = (*Model)(nil)
	_ model.TopicScorer   = (*Model)(nil)
	_ model.QueryWeighter = (*Model)(nil)
)
