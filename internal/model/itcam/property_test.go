package itcam

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tcam/internal/cuboid"
)

func randomWorld(seed int64) *cuboid.Cuboid {
	r := rand.New(rand.NewSource(seed))
	nu, nt, nv := 4+r.Intn(10), 2+r.Intn(5), 5+r.Intn(15)
	b := cuboid.NewBuilder(nu, nt, nv)
	n := 20 + r.Intn(120)
	for i := 0; i < n; i++ {
		b.MustAdd(r.Intn(nu), r.Intn(nt), r.Intn(nv), 0.5+2*r.Float64())
	}
	return b.Build()
}

// Property: on arbitrary small worlds, EM keeps every distribution on
// the simplex and the log-likelihood non-decreasing.
func TestEMInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		data := randomWorld(seed)
		cfg := DefaultConfig()
		cfg.K1, cfg.MaxIters = 4, 8
		cfg.Seed = seed
		m, st, err := Train(data, cfg)
		if err != nil {
			return false
		}
		for i := 1; i < st.Iterations(); i++ {
			prev, cur := st.LogLikelihood[i-1], st.LogLikelihood[i]
			if cur < prev-math.Abs(prev)*1e-8-1e-8 {
				return false
			}
		}
		onSimplex := func(p []float64) bool {
			var sum float64
			for _, x := range p {
				if x < 0 || math.IsNaN(x) {
					return false
				}
				sum += x
			}
			return math.Abs(sum-1) < 1e-6
		}
		for u := 0; u < m.NumUsers(); u++ {
			if !onSimplex(m.UserInterest(u)) {
				return false
			}
		}
		for z := 0; z < m.K1(); z++ {
			if !onSimplex(m.UserTopic(z)) {
				return false
			}
		}
		for tt := 0; tt < m.NumIntervals(); tt++ {
			if !onSimplex(m.TemporalContext(tt)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: TA decomposition (QueryWeights · TopicItems) equals Score
// for random models and probes.
func TestDecompositionProperty(t *testing.T) {
	f := func(seed int64) bool {
		data := randomWorld(seed)
		cfg := DefaultConfig()
		cfg.K1, cfg.MaxIters = 3, 5
		m, _, err := Train(data, cfg)
		if err != nil {
			return false
		}
		r := rand.New(rand.NewSource(seed + 99))
		for probe := 0; probe < 10; probe++ {
			u := r.Intn(m.NumUsers())
			tt := r.Intn(m.NumIntervals())
			v := r.Intn(m.NumItems())
			w := m.QueryWeights(u, tt)
			var s float64
			for z, wz := range w {
				if wz != 0 {
					s += wz * m.TopicItems(z)[v]
				}
			}
			if math.Abs(s-m.Score(u, tt, v)) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestLambdaMassValidation(t *testing.T) {
	data := randomWorld(1)
	cfg := DefaultConfig()
	cfg.K1 = 3
	cfg.LambdaMass = []float64{1} // wrong length
	if _, _, err := Train(data, cfg); err == nil {
		t.Error("Train accepted mismatched LambdaMass")
	}
}
