package itcam

// Incremental model evolution for the streaming ingest loop: Grow
// widens the interval/item dimensions against frozen parameters,
// FitNewInterval estimates a fresh interval's temporal context from its
// ratings alone, and FoldInUsers fits new users' θu/λu by partial EM
// with every global parameter frozen. None of the three mutates the
// receiver — each returns an extended copy, so the boot model stays a
// frozen base the updater can re-derive every snapshot from.

import (
	"fmt"
	"sort"

	"tcam/internal/cuboid"
	"tcam/internal/model"
	"tcam/internal/train"
)

// FoldInConfig parameterizes FoldInUsers.
type FoldInConfig struct {
	// Iters is the number of partial-EM rounds for the new users'
	// interests and mixing weights.
	Iters int
	// Smoothing is the additive epsilon for the θ row normalization,
	// matching the batch trainer's Config.Smoothing.
	Smoothing float64
	// Shards/Workers mirror the batch trainer's knobs; neither affects
	// the folded parameters (per-user statistics live in private rows).
	Shards  int
	Workers int
}

// DefaultFoldInConfig mirrors DefaultConfig's smoothing with a short
// partial-EM budget — new users have few events, so θu converges in a
// handful of rounds.
func DefaultFoldInConfig() FoldInConfig {
	return FoldInConfig{Iters: 5, Smoothing: 1e-9}
}

// clone returns a deep copy of the model.
func (m *Model) clone() *Model {
	out := *m
	out.theta = append([]float64(nil), m.theta...)
	out.phi = append([]float64(nil), m.phi...)
	out.thetaT = append([]float64(nil), m.thetaT...)
	out.lambda = append([]float64(nil), m.lambda...)
	return &out
}

// FitNewInterval estimates the temporal context θ't of a previously
// unseen interval from its ratings alone. For ITCAM the context is a
// multinomial directly over items, so — with every other parameter
// frozen — the partial-EM update is closed-form: the smoothed empirical
// item distribution of the interval, exactly the estimator initialize
// seeds training intervals with. ratings maps dense item index (under
// a catalog of numItems ≥ the trained size, to admit items newer than
// the model) to accumulated score; out-of-range or non-positive
// entries are dropped. The returned row has length numItems.
func (m *Model) FitNewInterval(ratings map[int]float64, numItems int) []float64 {
	if numItems < m.numItems {
		numItems = m.numItems
	}
	row := make([]float64, numItems)
	// Distinct keys write distinct slots, but iterate sorted anyway so
	// nothing about the result can leak map order.
	items := make([]int, 0, len(ratings))
	for v := range ratings {
		items = append(items, v)
	}
	sort.Ints(items)
	for _, v := range items {
		if w := ratings[v]; v >= 0 && v < numItems && w > 0 {
			row[v] += w
		}
	}
	model.NormalizeRows(row, numItems, 1e-6)
	return row
}

// Grow returns a copy of the model widened to numIntervals intervals
// and numItems items. Existing topic and context rows are re-laid out
// with zero probability on the new items (a new item is only reachable
// through the temporal contexts that observed it, until a full
// retrain); newContexts supplies the θ't row of each appended interval
// in order — length numItems each, typically from FitNewInterval —
// so numIntervals must equal NumIntervals()+len(newContexts).
func (m *Model) Grow(numIntervals, numItems int, newContexts [][]float64) (*Model, error) {
	if numItems < m.numItems {
		return nil, fmt.Errorf("itcam: cannot shrink items %d -> %d", m.numItems, numItems)
	}
	if numIntervals != m.numIntervals+len(newContexts) {
		return nil, fmt.Errorf("itcam: %d intervals need %d new contexts, got %d",
			numIntervals, numIntervals-m.numIntervals, len(newContexts))
	}
	if cells := numIntervals * numItems; cells > maxDenseCells {
		return nil, fmt.Errorf("itcam: dense temporal context needs %d cells (max %d); use ttcam for large catalogs", cells, maxDenseCells)
	}
	for i, ctx := range newContexts {
		if len(ctx) != numItems {
			return nil, fmt.Errorf("itcam: new context %d has %d items, want %d", i, len(ctx), numItems)
		}
	}
	out := &Model{
		label:        m.label,
		numUsers:     m.numUsers,
		numIntervals: numIntervals,
		numItems:     numItems,
		k1:           m.k1,
		theta:        append([]float64(nil), m.theta...),
		phi:          make([]float64, m.k1*numItems),
		thetaT:       make([]float64, numIntervals*numItems),
		lambda:       append([]float64(nil), m.lambda...),
	}
	for z := 0; z < m.k1; z++ {
		copy(out.phi[z*numItems:], m.phi[z*m.numItems:(z+1)*m.numItems])
	}
	for t := 0; t < m.numIntervals; t++ {
		copy(out.thetaT[t*numItems:], m.thetaT[t*m.numItems:(t+1)*m.numItems])
	}
	for i, ctx := range newContexts {
		copy(out.thetaT[(m.numIntervals+i)*numItems:], ctx)
	}
	return out, nil
}

// FoldInUsers returns a copy of the model extended to data.NumUsers()
// users. Users [NumUsers(), data.NumUsers()) start from the uniform
// interest and λ=1/2, then run cfg.Iters rounds of partial EM over
// their own cells with φ and θ' frozen — through the same accumulator
// and shard machinery as batch training, so folding in user u is
// bit-identical to batch EM restricted to u against the same frozen
// globals. data's interval/item dimensions must match the model (Grow
// first when the stream widened them); its cells for already-trained
// users are ignored.
func (m *Model) FoldInUsers(data *cuboid.Cuboid, cfg FoldInConfig) (*Model, error) {
	if data.NumIntervals() != m.numIntervals || data.NumItems() != m.numItems {
		return nil, fmt.Errorf("itcam: fold-in cuboid is %d intervals × %d items, model has %d × %d",
			data.NumIntervals(), data.NumItems(), m.numIntervals, m.numItems)
	}
	oldN, n := m.numUsers, data.NumUsers()
	if n < oldN {
		return nil, fmt.Errorf("itcam: fold-in cuboid has %d users, model already has %d", n, oldN)
	}
	out := m.clone()
	out.numUsers = n
	theta := make([]float64, n*m.k1)
	copy(theta, out.theta)
	for i := oldN * m.k1; i < len(theta); i++ {
		theta[i] = 1 / float64(m.k1)
	}
	out.theta = theta
	lambda := make([]float64, n)
	copy(lambda, out.lambda)
	for u := oldN; u < n; u++ {
		lambda[u] = 0.5
	}
	out.lambda = lambda
	if n == oldN {
		return out, nil
	}
	tr := &trainer{
		m:      out,
		data:   data,
		cfg:    Config{K1: out.k1, MaxIters: 1, Smoothing: cfg.Smoothing},
		theta:  make([]float64, len(out.theta)),
		lamNum: make([]float64, n),
		lamDen: make([]float64, n),
		phiT:   make([]float64, len(out.phi)),
	}
	tr.refreshPhiT()
	if _, err := train.FoldIn(tr, oldN, n, train.FoldInConfig{
		Iters:   cfg.Iters,
		Shards:  cfg.Shards,
		Workers: cfg.Workers,
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// FoldStep applies the user-dimension M-step — Equations (8) and (11)
// restricted to rows [lo, hi) — leaving φ and θ' frozen, and returns
// the range's log-likelihood under the round's starting parameters.
func (tr *trainer) FoldStep(merged train.Accum, lo, hi int) float64 {
	a := merged.(*accum) // global slabs stay frozen; only ll is consumed
	m, cfg := tr.m, tr.cfg
	k1 := m.k1
	copy(m.theta[lo*k1:hi*k1], tr.theta[lo*k1:hi*k1])
	model.NormalizeRows(m.theta[lo*k1:hi*k1], k1, cfg.Smoothing)
	for u := lo; u < hi; u++ {
		if tr.lamDen[u] > 0 {
			m.lambda[u] = train.ClampLambda(tr.lamNum[u] / tr.lamDen[u])
		}
	}
	if model.AssertionsEnabled {
		model.AssertRowStochastic("itcam fold-in theta", m.theta[lo*k1:hi*k1], k1, 1e-9)
		model.AssertFiniteIn01("itcam fold-in lambda", m.lambda[lo:hi])
	}
	return a.ll
}

var _ train.UserFolder = (*trainer)(nil)
