package itcam

import (
	"encoding/gob"
	"fmt"
	"math"
	"os"
	"testing"

	"tcam/internal/cuboid"
	"tcam/internal/faultinject"
	"tcam/internal/train"
)

// engineWorld is the frozen dataset behind testdata/prerefactor_*: the
// fixtures were generated from exactly this cuboid by the pre-refactor
// trainer (per-worker sharding, Workers=2), so these tests prove the
// engine-based trainer reproduces the old arithmetic bit-for-bit.
func engineWorld(tb testing.TB) *cuboid.Cuboid {
	tb.Helper()
	b := cuboid.NewBuilder(30, 6, 25)
	for u := 0; u < 30; u++ {
		for t := 0; t < 6; t++ {
			b.MustAdd(u, t, (u*3+t*7)%25, 1+float64((u+t)%4))
			b.MustAdd(u, t, (u+t*t)%25, 1)
			if (u+t)%3 == 0 {
				b.MustAdd(u, t, (u*5+t)%25, 2)
			}
		}
	}
	return b.Build()
}

// engineConfig mirrors the fixture generator's config, with the legacy
// Workers=2 sharding expressed as Shards=2 under the engine.
func engineConfig() Config {
	cfg := DefaultConfig()
	cfg.K1, cfg.MaxIters, cfg.Tol, cfg.Seed = 7, 9, 1e-6, 11
	cfg.Shards = 2
	return cfg
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func assertSameModel(t *testing.T, label string, got, want *Model) {
	t.Helper()
	if !bitsEqual(got.theta, want.theta) {
		t.Errorf("%s: theta differs", label)
	}
	if !bitsEqual(got.phi, want.phi) {
		t.Errorf("%s: phi differs", label)
	}
	if !bitsEqual(got.thetaT, want.thetaT) {
		t.Errorf("%s: thetaT differs", label)
	}
	if !bitsEqual(got.lambda, want.lambda) {
		t.Errorf("%s: lambda differs", label)
	}
}

// TestMatchesPreRefactorFixture pins the refactor's central guarantee:
// the engine-based trainer with Shards=2 reproduces the pre-refactor
// trainer's Workers=2 run — captured in testdata before the refactor —
// bit-for-bit, parameters and log-likelihood trace alike, regardless of
// how many goroutines execute the shards.
func TestMatchesPreRefactorFixture(t *testing.T) {
	f, err := os.Open("testdata/prerefactor_model.gob")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	want, err := Read(f)
	if err != nil {
		t.Fatal(err)
	}
	lf, err := os.Open("testdata/prerefactor_ll.gob")
	if err != nil {
		t.Fatal(err)
	}
	defer lf.Close()
	var wantLL []float64
	if err := gob.NewDecoder(lf).Decode(&wantLL); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 4} {
		cfg := engineConfig()
		cfg.Workers = workers
		got, stats, err := Train(engineWorld(t), cfg)
		if err != nil {
			t.Fatal(err)
		}
		assertSameModel(t, fmt.Sprintf("workers=%d", workers), got, want)
		if !bitsEqual(stats.LogLikelihood, wantLL) {
			t.Errorf("workers=%d: LL trace differs from pre-refactor fixture", workers)
		}
	}
}

// TestWorkerCountInvariance is the property the engine's fixed-shard
// design buys: parameters depend on Shards, never on Workers.
func TestWorkerCountInvariance(t *testing.T) {
	data := engineWorld(t)
	cfg := engineConfig()
	cfg.Workers = 1
	ref, refStats, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	got, gotStats, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertSameModel(t, "workers 1 vs 8", got, ref)
	if !bitsEqual(gotStats.LogLikelihood, refStats.LogLikelihood) {
		t.Error("workers 1 vs 8: LL traces differ")
	}
}

// TestCheckpointResumeBitIdentical interrupts training at several
// checkpoint boundaries — via an injected panic right after the
// snapshot lands, the way a real crash would hit — and proves resuming
// always converges to the exact parameters of the uninterrupted run.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	defer faultinject.Reset()
	data := engineWorld(t)
	ref, refStats, err := Train(data, engineConfig())
	if err != nil {
		t.Fatal(err)
	}

	for _, killAfter := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("kill-after-%d", killAfter), func(t *testing.T) {
			dir := t.TempDir()
			cfg := engineConfig()
			cfg.Checkpoint = train.CheckpointConfig{Dir: dir, Every: 1}

			var saves int
			faultinject.Set("train.checkpoint.saved", func() {
				saves++
				if saves == killAfter {
					panic("itcam test: injected crash after checkpoint")
				}
			})
			func() {
				defer func() {
					if recover() == nil {
						t.Fatal("injected crash did not fire")
					}
				}()
				_, _, _ = Train(data, cfg)
			}()
			faultinject.Clear("train.checkpoint.saved")

			cfg.Checkpoint.Resume = true
			got, stats, err := Train(data, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if stats.ResumedAt != killAfter {
				t.Fatalf("ResumedAt = %d, want %d", stats.ResumedAt, killAfter)
			}
			assertSameModel(t, "resumed", got, ref)
			if !bitsEqual(stats.LogLikelihood, refStats.LogLikelihood) {
				t.Error("resumed LL trace differs from uninterrupted run")
			}
		})
	}
}

// TestCorruptCheckpointRejected: training must fail loudly rather than
// resume from a damaged snapshot.
func TestCorruptCheckpointRejected(t *testing.T) {
	data := engineWorld(t)
	dir := t.TempDir()
	cfg := engineConfig()
	cfg.MaxIters = 3
	cfg.Checkpoint = train.CheckpointConfig{Dir: dir, Every: 1}
	if _, _, err := Train(data, cfg); err != nil {
		t.Fatal(err)
	}
	path := dir + "/train.ckpt"
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x55
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	cfg.Checkpoint.Resume = true
	if _, _, err := Train(data, cfg); err == nil {
		t.Fatal("corrupted checkpoint resumed silently")
	}
}
