package itcam

import (
	"math"
	"math/rand"
	"testing"

	"tcam/internal/cuboid"
	"tcam/internal/model"
	"tcam/internal/train"
)

// trendWorld builds a cuboid with two user populations over two item
// groups: "interest" users always rate their own pet items regardless of
// interval; "trend" users rate whichever item is hot in the current
// interval. This is the minimal world where the λu split is observable.
func trendWorld(tb testing.TB, seed int64) *cuboid.Cuboid {
	tb.Helper()
	const (
		nUsers     = 40 // 0..19 interest-driven, 20..39 trend-driven
		nIntervals = 8
		nItems     = 40 // 0..19 stable pets, 20..39 one hot item per interval ×2
	)
	rng := rand.New(rand.NewSource(seed))
	b := cuboid.NewBuilder(nUsers, nIntervals, nItems)
	for u := 0; u < 20; u++ {
		pet := u % 10
		for t := 0; t < nIntervals; t++ {
			b.MustAdd(u, t, pet, 1)
			b.MustAdd(u, t, (pet+1)%10, 1)
			if rng.Float64() < 0.3 {
				b.MustAdd(u, t, 10+rng.Intn(10), 1)
			}
		}
	}
	for u := 20; u < 40; u++ {
		for t := 0; t < nIntervals; t++ {
			hot := 20 + t*2
			b.MustAdd(u, t, hot, 1)
			b.MustAdd(u, t, hot+1, 1)
			if rng.Float64() < 0.3 {
				b.MustAdd(u, t, rng.Intn(20), 1)
			}
		}
	}
	return b.Build()
}

func trainTrend(tb testing.TB) (*Model, model.TrainStats) {
	tb.Helper()
	cfg := DefaultConfig()
	cfg.K1 = 12
	cfg.MaxIters = 60
	cfg.Workers = 2
	m, st, err := Train(trendWorld(tb, 7), cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return m, st
}

func TestTrainValidation(t *testing.T) {
	good := trendWorld(t, 1)
	tests := []struct {
		name string
		data *cuboid.Cuboid
		mod  func(*Config)
	}{
		{"zero K1", good, func(c *Config) { c.K1 = 0 }},
		{"zero iters", good, func(c *Config) { c.MaxIters = 0 }},
		{"negative smoothing", good, func(c *Config) { c.Smoothing = -1 }},
		{"empty cuboid", cuboid.NewBuilder(2, 2, 2).Build(), nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			if tt.mod != nil {
				tt.mod(&cfg)
			}
			if _, _, err := Train(tt.data, cfg); err == nil {
				t.Error("Train accepted invalid input")
			}
		})
	}
}

func TestDenseGuard(t *testing.T) {
	b := cuboid.NewBuilder(1, 1<<14, 1<<13)
	b.MustAdd(0, 0, 0, 1)
	if _, _, err := Train(b.Build(), DefaultConfig()); err == nil {
		t.Error("Train accepted a catalog requiring an oversized dense temporal table")
	}
}

func TestLogLikelihoodMonotone(t *testing.T) {
	_, st := trainTrend(t)
	if st.Iterations() < 3 {
		t.Fatalf("only %d iterations recorded", st.Iterations())
	}
	for i := 1; i < st.Iterations(); i++ {
		prev, cur := st.LogLikelihood[i-1], st.LogLikelihood[i]
		if cur < prev-math.Abs(prev)*1e-8-1e-8 {
			t.Fatalf("log-likelihood decreased at iter %d: %v -> %v", i, prev, cur)
		}
	}
}

func TestDistributionsNormalized(t *testing.T) {
	m, _ := trainTrend(t)
	checkSimplex := func(name string, p []float64) {
		t.Helper()
		var sum float64
		for _, x := range p {
			if x < 0 {
				t.Fatalf("%s has negative entry %v", name, x)
			}
			sum += x
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("%s sums to %v", name, sum)
		}
	}
	for u := 0; u < m.NumUsers(); u++ {
		checkSimplex("theta_u", m.UserInterest(u))
	}
	for z := 0; z < m.K1(); z++ {
		checkSimplex("phi_z", m.UserTopic(z))
	}
	for tt := 0; tt < m.NumIntervals(); tt++ {
		checkSimplex("theta'_t", m.TemporalContext(tt))
	}
	for u := 0; u < m.NumUsers(); u++ {
		if l := m.Lambda(u); l < train.LambdaClamp-1e-12 || l > 1-train.LambdaClamp+1e-12 {
			t.Fatalf("lambda[%d] = %v outside clamp", u, l)
		}
	}
}

func TestLambdaSeparatesPopulations(t *testing.T) {
	m, _ := trainTrend(t)
	var interest, trend float64
	for u := 0; u < 20; u++ {
		interest += m.Lambda(u)
	}
	for u := 20; u < 40; u++ {
		trend += m.Lambda(u)
	}
	interest /= 20
	trend /= 20
	if interest <= trend {
		t.Errorf("mean λ interest-driven %v ≤ trend-driven %v; mixture not separating", interest, trend)
	}
}

func TestScoreAllMatchesScore(t *testing.T) {
	m, _ := trainTrend(t)
	scores := make([]float64, m.NumItems())
	for _, q := range [][2]int{{0, 0}, {25, 3}, {39, 7}} {
		u, tt := q[0], q[1]
		m.ScoreAll(u, tt, scores)
		for v := 0; v < m.NumItems(); v++ {
			if want := m.Score(u, tt, v); math.Abs(scores[v]-want) > 1e-12 {
				t.Fatalf("ScoreAll(%d,%d)[%d] = %v, Score = %v", u, tt, v, scores[v], want)
			}
		}
	}
}

func TestTopicDecompositionMatchesScore(t *testing.T) {
	m, _ := trainTrend(t)
	for _, q := range [][2]int{{3, 1}, {30, 5}} {
		u, tt := q[0], q[1]
		w := m.QueryWeights(u, tt)
		if len(w) != m.NumTopics() {
			t.Fatalf("QueryWeights length %d, want %d", len(w), m.NumTopics())
		}
		for v := 0; v < m.NumItems(); v += 7 {
			var s float64
			for z, wz := range w {
				if wz == 0 {
					continue
				}
				s += wz * m.TopicItems(z)[v]
			}
			if want := m.Score(u, tt, v); math.Abs(s-want) > 1e-10 {
				t.Fatalf("topic decomposition score %v != Score %v at (u=%d,t=%d,v=%d)", s, want, u, tt, v)
			}
		}
	}
}

func TestScoreAllPanicsOnBadBuffer(t *testing.T) {
	m, _ := trainTrend(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong buffer size")
		}
	}()
	m.ScoreAll(0, 0, make([]float64, 3))
}

func TestTrendUsersRankHotItems(t *testing.T) {
	m, _ := trainTrend(t)
	// For a trend-driven user, the hot pair of interval 4 must outrank a
	// random stable item in interval 4 but not in interval 0.
	hot4 := 20 + 4*2
	if m.Score(25, 4, hot4) <= m.Score(25, 4, 15) {
		t.Error("hot item of interval 4 not promoted for trend user at t=4")
	}
	if m.Score(25, 0, hot4) >= m.Score(25, 0, 20) {
		t.Error("interval-4 hot item outranks interval-0 hot item at t=0")
	}
	// For an interest-driven user, the pet item must outrank the hot one
	// even during the burst interval.
	if m.Score(0, 4, 0) <= m.Score(0, 4, hot4) {
		t.Error("pet item of interest user not promoted over hot item")
	}
}

func TestDeterministicTraining(t *testing.T) {
	cfg := DefaultConfig()
	cfg.K1 = 6
	cfg.MaxIters = 10
	data := trendWorld(t, 3)
	m1, st1, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, st2, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st1.Final() != st2.Final() {
		t.Errorf("same seed, different final LL: %v vs %v", st1.Final(), st2.Final())
	}
	for i := range m1.theta {
		if m1.theta[i] != m2.theta[i] {
			t.Fatal("same seed, different theta")
		}
	}
	// Parallel E-step must agree with single-worker within float noise.
	cfg.Workers = 4
	m4, _, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m1.phi {
		if math.Abs(m1.phi[i]-m4.phi[i]) > 1e-9 {
			t.Fatalf("parallel phi diverges at %d: %v vs %v", i, m1.phi[i], m4.phi[i])
		}
	}
}

func TestConvergenceFlag(t *testing.T) {
	cfg := DefaultConfig()
	cfg.K1 = 4
	cfg.MaxIters = 500
	cfg.Tol = 1e-7
	_, st, err := Train(trendWorld(t, 5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Error("training did not converge within 500 iterations at tol 1e-7")
	}
	if st.Iterations() >= 500 {
		t.Error("converged flag set but all iterations used")
	}
}
