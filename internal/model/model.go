// Package model defines the contracts shared by every user-behavior
// model in the TCAM reproduction — the two TCAM variants, the UT/TT
// topic baselines, BPRMF and BPTF — plus the parallel-EM machinery they
// share. Concrete models live in the subpackages.
package model

import (
	"runtime"
	"sync"
	"time"
)

// Recommender is the minimal surface the evaluation harness needs: a
// ranking score for item v given the query (u, t) of Section 4. Higher
// is better; absolute scale is model-specific.
type Recommender interface {
	// Name returns the label used in the paper's tables and figures
	// (e.g. "W-TTCAM", "BPRMF").
	Name() string
	// Score returns the ranking score S(u, t, v).
	Score(u, t, v int) float64
	// NumItems returns the item-catalog size the model was trained on.
	NumItems() int
}

// BulkScorer is an optional fast path: fill scores[v] for every item at
// once. The brute-force ranker uses it when available to avoid
// recomputing per-query state V times.
type BulkScorer interface {
	Recommender
	// ScoreAll writes S(u, t, v) into scores[v] for all v. len(scores)
	// must be NumItems().
	ScoreAll(u, t int, scores []float64)
}

// TopicScorer exposes the expanded topic space of Section 4.1, the
// interface the Threshold Algorithm needs: a query decomposes into
// non-negative per-topic weights ϑq, items carry non-negative per-topic
// weights ϕ_z̃v, and the ranking score is their inner product
// (Equation 22). Monotonicity of this form is what makes TA applicable.
type TopicScorer interface {
	Recommender
	// NumTopics returns K, the expanded topic-space dimension.
	NumTopics() int
	// QueryWeights returns ϑq for query (u, t): a non-negative vector of
	// length NumTopics(). Entries may be zero; TA skips those lists.
	QueryWeights(u, t int) []float64
	// TopicItems returns ϕ_z̃ for topic z̃: non-negative per-item weights
	// of length NumItems(). Callers must not modify the slice.
	TopicItems(z int) []float64
}

// QueryWeighter is an optional TopicScorer extension: write ϑq for
// query (u, t) into dst (length NumTopics()) instead of allocating a
// fresh vector. The serving fast path uses it to keep steady-state
// top-k queries allocation-free; both TCAM variants implement it.
type QueryWeighter interface {
	QueryWeightsInto(u, t int, dst []float64)
}

// IterStat describes one EM iteration for observability consumers:
// the per-iteration hook of the training engine, the tcamtrain
// -progress / -train-log views and the experiments convergence report.
type IterStat struct {
	// Iter is the 1-based iteration number within the whole run
	// (checkpoint-resumed runs continue the numbering).
	Iter int
	// LogLikelihood is the data log-likelihood under the parameters the
	// iteration started from.
	LogLikelihood float64
	// Delta is the relative log-likelihood improvement over the previous
	// iteration (the quantity the Tol early-stop tests); 0 on the first.
	Delta float64
	// EStep and MStep split the iteration's wall time between the
	// parallel expectation pass and the coordinator maximization.
	EStep time.Duration
	MStep time.Duration
	// Wall is the iteration's total wall time.
	Wall time.Duration
}

// Reasons a training run stopped, recorded in TrainStats.StopReason.
const (
	StopConverged = "converged"
	StopMaxIters  = "max-iters"
	StopWallClock = "wall-clock"
)

// TrainStats records an EM run: the log-likelihood after every
// iteration and why training stopped.
type TrainStats struct {
	// LogLikelihood[i] is the data log-likelihood after iteration i+1.
	LogLikelihood []float64
	// Converged is true when the relative improvement fell below the
	// tolerance before MaxIters was reached.
	Converged bool
	// Iters carries the per-iteration observability records for trainers
	// that run on the internal/train engine; legacy trainers leave it
	// nil.
	Iters []IterStat
	// StopReason is one of the Stop* constants for engine-driven runs,
	// empty otherwise.
	StopReason string
	// ResumedAt is the number of already-completed iterations restored
	// from a checkpoint (0 for uninterrupted runs).
	ResumedAt int
}

// Iterations returns the number of EM iterations actually run.
func (s TrainStats) Iterations() int { return len(s.LogLikelihood) }

// Final returns the last recorded log-likelihood, or 0 when training
// recorded none.
func (s TrainStats) Final() float64 {
	if len(s.LogLikelihood) == 0 {
		return 0
	}
	return s.LogLikelihood[len(s.LogLikelihood)-1]
}

// Workers resolves a configured worker count: non-positive means one
// worker per available CPU.
func Workers(configured int) int {
	if configured > 0 {
		return configured
	}
	return runtime.GOMAXPROCS(0)
}

// ParallelRanges splits [0, n) into contiguous chunks and runs fn once
// per chunk across the given number of workers, blocking until all
// complete. fn receives the worker index (for per-worker accumulators)
// and its [lo, hi) range. With one worker or tiny n it degenerates to a
// direct call, keeping single-threaded runs allocation-free.
func ParallelRanges(n, workers int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(worker, lo, hi int) {
			defer wg.Done()
			fn(worker, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// NormalizeRows renormalizes each length-cols row of a flat row-major
// accumulator into a probability distribution with additive smoothing
// eps, writing the result in place. A row with no mass becomes uniform.
//
//tcam:hotpath
func NormalizeRows(data []float64, cols int, eps float64) {
	if cols <= 0 {
		return
	}
	for r := 0; r*cols < len(data); r++ {
		row := data[r*cols : (r+1)*cols]
		var sum float64
		for _, x := range row {
			sum += x
		}
		denom := sum + eps*float64(cols)
		if denom <= 0 {
			u := 1.0 / float64(cols)
			for i := range row {
				row[i] = u
			}
			continue
		}
		for i := range row {
			row[i] = (row[i] + eps) / denom
		}
	}
}

// MergeSlabs element-wise sums per-worker accumulator slabs into
// slabs[0] and returns it.
//
//tcam:hotpath
func MergeSlabs(slabs [][]float64) []float64 {
	if len(slabs) == 0 {
		return nil
	}
	dst := slabs[0]
	for _, s := range slabs[1:] {
		for i, x := range s {
			dst[i] += x
		}
	}
	return dst
}
