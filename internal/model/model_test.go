package model

import (
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestWorkers(t *testing.T) {
	if Workers(4) != 4 {
		t.Error("explicit worker count not honored")
	}
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Error("default worker count below 1")
	}
}

func TestParallelRangesCoversAll(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		for _, n := range []int{0, 1, 5, 17, 64} {
			var count int64
			seen := make([]int32, n)
			ParallelRanges(n, workers, func(worker, lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
					atomic.AddInt64(&count, 1)
				}
			})
			if int(count) != n {
				t.Fatalf("workers=%d n=%d visited %d elements", workers, n, count)
			}
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("workers=%d n=%d element %d visited %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestParallelRangesWorkerIndexBounds(t *testing.T) {
	var maxWorker int64 = -1
	ParallelRanges(100, 4, func(worker, lo, hi int) {
		for {
			cur := atomic.LoadInt64(&maxWorker)
			if int64(worker) <= cur || atomic.CompareAndSwapInt64(&maxWorker, cur, int64(worker)) {
				break
			}
		}
	})
	if maxWorker >= 4 {
		t.Errorf("worker index %d out of range", maxWorker)
	}
}

func TestNormalizeRows(t *testing.T) {
	data := []float64{1, 3, 0, 0}
	NormalizeRows(data, 2, 0)
	if math.Abs(data[0]-0.25) > 1e-12 || math.Abs(data[1]-0.75) > 1e-12 {
		t.Errorf("row 0 = %v", data[:2])
	}
	// Massless row becomes uniform.
	if data[2] != 0.5 || data[3] != 0.5 {
		t.Errorf("massless row = %v, want uniform", data[2:])
	}
}

func TestNormalizeRowsSmoothing(t *testing.T) {
	data := []float64{0, 1}
	NormalizeRows(data, 2, 0.5)
	// (0+0.5)/(1+1) = 0.25, (1+0.5)/2 = 0.75
	if math.Abs(data[0]-0.25) > 1e-12 || math.Abs(data[1]-0.75) > 1e-12 {
		t.Errorf("smoothed row = %v", data)
	}
	if s := data[0] + data[1]; math.Abs(s-1) > 1e-12 {
		t.Errorf("smoothed row sums to %v", s)
	}
}

func TestMergeSlabs(t *testing.T) {
	slabs := [][]float64{{1, 2}, {10, 20}, {100, 200}}
	got := MergeSlabs(slabs)
	if got[0] != 111 || got[1] != 222 {
		t.Errorf("MergeSlabs = %v", got)
	}
	if MergeSlabs(nil) != nil {
		t.Error("MergeSlabs(nil) should be nil")
	}
}

func TestTrainStats(t *testing.T) {
	var s TrainStats
	if s.Iterations() != 0 || s.Final() != 0 {
		t.Error("zero TrainStats not zero")
	}
	s.LogLikelihood = []float64{-10, -5, -4.5}
	if s.Iterations() != 3 || s.Final() != -4.5 {
		t.Errorf("stats = %d iters final %v", s.Iterations(), s.Final())
	}
}

// Property: NormalizeRows always produces rows on the simplex for
// non-negative input and positive smoothing.
func TestNormalizeRowsSimplexProperty(t *testing.T) {
	f := func(raw []float64, colsRaw uint8) bool {
		cols := int(colsRaw%6) + 1
		rows := len(raw) / cols
		if rows == 0 {
			return true
		}
		data := make([]float64, rows*cols)
		for i := range data {
			x := raw[i]
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			data[i] = math.Abs(math.Mod(x, 1e9))
		}
		NormalizeRows(data, cols, 1e-9)
		for r := 0; r < rows; r++ {
			var sum float64
			for c := 0; c < cols; c++ {
				x := data[r*cols+c]
				if x < 0 {
					return false
				}
				sum += x
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
