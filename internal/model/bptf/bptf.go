// Package bptf implements Bayesian Probabilistic Tensor Factorization
// (Xiong et al., SDM 2010), the strongest temporal baseline in the
// paper's Section 5.2. Ratings are modeled as a three-way tensor
//
//	R(u, v, t) ≈ ⟨U_u, V_v, T_t⟩ = Σ_d U_ud·V_vd·T_td
//
// with a Gaussian likelihood of precision α, Gaussian factor priors
// governed by Normal–Wishart hyperpriors for U and V, and a first-order
// smoothness chain T_t ~ N(T_{t−1}, Λ_T⁻¹) that ties consecutive time
// factors together. All conditionals are conjugate, so inference is a
// blocked Gibbs sampler; predictions average the multilinear form over
// retained post-burn-in samples.
//
// This package is the consumer the internal/mat and internal/stats
// substrates were built for: multivariate Gaussian sampling through
// Cholesky factors, Wishart draws via the Bartlett decomposition, and
// SPD solves for the per-entity posterior means.
package bptf

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"tcam/internal/cuboid"
	"tcam/internal/mat"
	"tcam/internal/model"
	"tcam/internal/stats"
)

// Config parameterizes the BPTF Gibbs sampler.
type Config struct {
	// Factors is the latent dimensionality D.
	Factors int
	// Burnin is the number of discarded Gibbs sweeps; Samples is the
	// number of retained sweeps that form the predictive average.
	Burnin  int
	Samples int
	// Alpha0 is the initial observation precision; it is resampled from
	// its Gamma conditional every sweep.
	Alpha0 float64
	// NegativeRatio is the number of sampled zero-valued cells per
	// observed cell. BPTF is a rating-prediction model; on implicit
	// feedback (all observed scores positive) it needs explicit
	// negatives to rank unobserved items below observed ones — the
	// standard adaptation when applying rating models to top-k tasks.
	// Set 0 to disable (explicit-rating data with a meaningful scale).
	NegativeRatio float64
	Seed          int64
	// Workers is the per-entity sampling parallelism; non-positive
	// means GOMAXPROCS.
	Workers int
}

// DefaultConfig returns the harness's standard BPTF configuration.
func DefaultConfig() Config {
	return Config{Factors: 16, Burnin: 12, Samples: 8, Alpha0: 2, NegativeRatio: 3, Seed: 1}
}

func (c Config) validate(data *cuboid.Cuboid) error {
	switch {
	case c.Factors <= 0:
		return fmt.Errorf("bptf: Factors must be positive, got %d", c.Factors)
	case c.Burnin < 0:
		return fmt.Errorf("bptf: negative Burnin %d", c.Burnin)
	case c.Samples <= 0:
		return fmt.Errorf("bptf: Samples must be positive, got %d", c.Samples)
	case c.Alpha0 <= 0:
		return fmt.Errorf("bptf: Alpha0 must be positive, got %v", c.Alpha0)
	case c.NegativeRatio < 0:
		return fmt.Errorf("bptf: negative NegativeRatio %v", c.NegativeRatio)
	}
	if data.NNZ() == 0 {
		return errors.New("bptf: empty training cuboid")
	}
	return nil
}

// Model holds the retained factor samples of a fitted BPTF.
type Model struct {
	numUsers     int
	numItems     int
	numIntervals int
	factors      int

	// Retained samples, each flattened row-major (entity × factor).
	uSamples [][]float64
	vSamples [][]float64
	tSamples [][]float64
}

// Train runs the Gibbs sampler on the cuboid's observed cells, using the
// cell scores as the observed tensor values.
func Train(data *cuboid.Cuboid, cfg Config) (*Model, model.TrainStats, error) {
	var tstats model.TrainStats
	if err := cfg.validate(data); err != nil {
		return nil, tstats, err
	}
	g := newGibbsState(data, cfg)
	total := cfg.Burnin + cfg.Samples
	m := &Model{
		numUsers:     data.NumUsers(),
		numItems:     data.NumItems(),
		numIntervals: data.NumIntervals(),
		factors:      cfg.Factors,
	}
	for sweep := 0; sweep < total; sweep++ {
		g.sweep(sweep)
		tstats.LogLikelihood = append(tstats.LogLikelihood, g.logLikelihood())
		if sweep >= cfg.Burnin {
			m.uSamples = append(m.uSamples, append([]float64(nil), g.u...))
			m.vSamples = append(m.vSamples, append([]float64(nil), g.v...))
			m.tSamples = append(m.tSamples, append([]float64(nil), g.t...))
		}
	}
	tstats.Converged = true
	return m, tstats, nil
}

// Name returns "BPTF".
func (m *Model) Name() string { return "BPTF" }

// NumItems returns the item-catalog size.
func (m *Model) NumItems() int { return m.numItems }

// Factors returns the latent dimensionality.
func (m *Model) Factors() int { return m.factors }

// SampleCount returns the number of retained Gibbs samples behind the
// predictive average.
func (m *Model) SampleCount() int { return len(m.uSamples) }

// Score returns the posterior predictive mean of ⟨U_u, V_v, T_t⟩.
func (m *Model) Score(u, t, v int) float64 {
	d := m.factors
	var total float64
	for s := range m.uSamples {
		us := m.uSamples[s][u*d : (u+1)*d]
		vs := m.vSamples[s][v*d : (v+1)*d]
		ts := m.tSamples[s][t*d : (t+1)*d]
		var dot float64
		for f := 0; f < d; f++ {
			dot += us[f] * vs[f] * ts[f]
		}
		total += dot
	}
	return total / float64(len(m.uSamples))
}

// ScoreAll fills scores[v] with the predictive mean for every item. It
// reuses the per-sample element-wise product U_u∘T_t so the cost is
// O(S·V·D) — the three-vector inner product the paper blames for BPTF's
// slow online ranking.
func (m *Model) ScoreAll(u, t int, scores []float64) {
	if len(scores) != m.numItems {
		panic(fmt.Sprintf("bptf: ScoreAll buffer %d, want %d", len(scores), m.numItems))
	}
	d := m.factors
	for v := range scores {
		scores[v] = 0
	}
	w := make([]float64, d)
	for s := range m.uSamples {
		us := m.uSamples[s][u*d : (u+1)*d]
		ts := m.tSamples[s][t*d : (t+1)*d]
		for f := 0; f < d; f++ {
			w[f] = us[f] * ts[f]
		}
		vsAll := m.vSamples[s]
		for v := range scores {
			vs := vsAll[v*d : (v+1)*d]
			var dot float64
			for f := 0; f < d; f++ {
				dot += w[f] * vs[f]
			}
			scores[v] += dot
		}
	}
	inv := 1 / float64(len(m.uSamples))
	for v := range scores {
		scores[v] *= inv
	}
}

var _ model.BulkScorer = (*Model)(nil)

// hyper are the fixed Normal–Wishart hyperparameters (standard
// non-informative choices from the BPTF paper).
type hyper struct {
	mu0   mat.Vector  // prior factor mean (zero)
	beta0 float64     // prior pseudo-count
	w0    *mat.Matrix // Wishart scale (identity)
	nu0   float64     // Wishart degrees of freedom (= D)
}

// gibbsState carries everything one sweep needs. The cell slice is the
// observed data plus (optionally) sampled zero-valued negatives, with
// its own posting lists by user, item and interval.
type gibbsState struct {
	cfg   Config
	data  *cuboid.Cuboid
	cells []cuboid.Cell

	byUser [][]int
	byItem [][]int
	byTime [][]int

	d       int
	u, v, t []float64 // current factor matrices, row-major entity×factor

	muU, muV mat.Vector
	lamU     *mat.Matrix
	lamV     *mat.Matrix
	lamT     *mat.Matrix
	t0       mat.Vector // chain head T_0 (the state before interval 0)
	alpha    float64

	h   hyper
	rng *rand.Rand
}

func newGibbsState(data *cuboid.Cuboid, cfg Config) *gibbsState {
	d := cfg.Factors
	g := &gibbsState{
		cfg:   cfg,
		data:  data,
		cells: data.Cells(),
		d:     d,
		u:     make([]float64, data.NumUsers()*d),
		v:     make([]float64, data.NumItems()*d),
		t:     make([]float64, data.NumIntervals()*d),
		muU:   mat.NewVector(d),
		muV:   mat.NewVector(d),
		lamU:  mat.Identity(d),
		lamV:  mat.Identity(d),
		lamT:  mat.Identity(d),
		t0:    mat.NewVector(d),
		alpha: cfg.Alpha0,
		h:     hyper{mu0: mat.NewVector(d), beta0: 1, w0: mat.Identity(d), nu0: float64(d)},
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
	g.cells = append([]cuboid.Cell(nil), g.cells...)
	g.sampleNegatives()
	g.byUser = make([][]int, data.NumUsers())
	g.byItem = make([][]int, data.NumItems())
	g.byTime = make([][]int, data.NumIntervals())
	for i, cell := range g.cells {
		g.byUser[cell.U] = append(g.byUser[cell.U], i)
		g.byItem[cell.V] = append(g.byItem[cell.V], i)
		g.byTime[cell.T] = append(g.byTime[cell.T], i)
	}
	// Initialize factors with small Gaussian noise; time factors start
	// at one so the initial multilinear form reduces to a plain MF.
	for i := range g.u {
		g.u[i] = 0.1 * g.rng.NormFloat64()
	}
	for i := range g.v {
		g.v[i] = 0.1 * g.rng.NormFloat64()
	}
	for i := range g.t {
		g.t[i] = 1 + 0.1*g.rng.NormFloat64()
	}
	return g
}

// sampleNegatives appends NegativeRatio·nnz uniformly sampled
// unobserved (u, t, v) triples with score zero, so the Gaussian
// likelihood learns that unobserved cells sit below observed ones.
func (g *gibbsState) sampleNegatives() {
	ratio := g.cfg.NegativeRatio
	if ratio <= 0 {
		return
	}
	n := int(ratio * float64(len(g.cells)))
	if n == 0 {
		return
	}
	T, V := int64(g.data.NumIntervals()), int64(g.data.NumItems())
	observed := make(map[int64]struct{}, len(g.cells))
	for _, cell := range g.cells {
		observed[(int64(cell.U)*T+int64(cell.T))*V+int64(cell.V)] = struct{}{}
	}
	for added := 0; added < n; {
		u := g.rng.Intn(g.data.NumUsers())
		t := g.rng.Intn(g.data.NumIntervals())
		v := g.rng.Intn(g.data.NumItems())
		key := (int64(u)*T+int64(t))*V + int64(v)
		if _, ok := observed[key]; ok {
			continue
		}
		observed[key] = struct{}{}
		g.cells = append(g.cells, cuboid.Cell{U: int32(u), T: int32(t), V: int32(v), Score: 0})
		added++
	}
}

func (g *gibbsState) factor(buf []float64, idx int) []float64 {
	return buf[idx*g.d : (idx+1)*g.d]
}

// predict returns ⟨U_u, V_v, T_t⟩ under the current state.
func (g *gibbsState) predict(cell cuboid.Cell) float64 {
	us := g.factor(g.u, int(cell.U))
	vs := g.factor(g.v, int(cell.V))
	ts := g.factor(g.t, int(cell.T))
	var dot float64
	for f := 0; f < g.d; f++ {
		dot += us[f] * vs[f] * ts[f]
	}
	return dot
}

// logLikelihood returns the full Gaussian data log-likelihood under the
// current state: n/2·ln(α/2π) − α·SSE/2. The normalization term matters
// for the trace — α is resampled toward n/SSE every sweep, so the
// penalty term alone would hover near −n/2 regardless of fit.
func (g *gibbsState) logLikelihood() float64 {
	var sse float64
	for _, cell := range g.cells {
		r := cell.Score - g.predict(cell)
		sse += r * r
	}
	n := float64(len(g.cells))
	return 0.5*n*math.Log(g.alpha/(2*math.Pi)) - 0.5*g.alpha*sse
}

// sweep runs one full blocked-Gibbs pass.
func (g *gibbsState) sweep(sweepIdx int) {
	g.sampleHyperU()
	g.sampleHyperV()
	g.sampleHyperT()
	g.sampleAlpha()
	g.sampleUsers(sweepIdx)
	g.sampleItems(sweepIdx)
	g.sampleTimes()
}

// sampleNormalWishart draws (μ, Λ) from the Normal–Wishart posterior
// given the rows of a factor matrix.
func (g *gibbsState) sampleNormalWishart(factors []float64, n int) (mat.Vector, *mat.Matrix) {
	d := g.d
	mean := mat.NewVector(d)
	for i := 0; i < n; i++ {
		mean.AddTo(g.factor(factors, i))
	}
	if n > 0 {
		mean.Scale(1 / float64(n))
	}
	scatter := mat.NewMatrix(d, d)
	diff := mat.NewVector(d)
	for i := 0; i < n; i++ {
		row := g.factor(factors, i)
		for f := 0; f < d; f++ {
			diff[f] = row[f] - mean[f]
		}
		scatter.OuterAdd(1, diff, diff)
	}
	h := g.h
	betaN := h.beta0 + float64(n)
	nuN := h.nu0 + float64(n)
	muN := mat.NewVector(d)
	for f := 0; f < d; f++ {
		muN[f] = (h.beta0*h.mu0[f] + float64(n)*mean[f]) / betaN
	}
	// W_N⁻¹ = W_0⁻¹ + S + β0·n/(β0+n)·(x̄−μ0)(x̄−μ0)ᵀ, with W_0 = I.
	winv := mat.Identity(d)
	winv.AddMatrix(1, scatter)
	for f := 0; f < d; f++ {
		diff[f] = mean[f] - h.mu0[f]
	}
	winv.OuterAdd(h.beta0*float64(n)/betaN, diff, diff)
	wN, err := mat.InvertSPD(winv)
	if err != nil {
		wN = mat.Identity(d)
	}
	wChol, err := mat.CholeskyJittered(wN)
	if err != nil {
		wChol = mat.Identity(d)
	}
	lam := stats.Wishart(g.rng, nuN, wChol)
	// μ ~ N(μ_N, (β_N Λ)⁻¹): Cholesky of β_N·Λ, sample via solve.
	prec := lam.Clone()
	prec.Scale(betaN)
	mu := sampleGaussianByPrecision(g.rng, muN, prec)
	return mu, lam
}

func (g *gibbsState) sampleHyperU() {
	g.muU, g.lamU = g.sampleNormalWishart(g.u, g.data.NumUsers())
}

func (g *gibbsState) sampleHyperV() {
	g.muV, g.lamV = g.sampleNormalWishart(g.v, g.data.NumItems())
}

// sampleHyperT draws Λ_T from its Wishart conditional given the chain
// increments, then refreshes the chain head T_0.
func (g *gibbsState) sampleHyperT() {
	d := g.d
	T := g.data.NumIntervals()
	winv := mat.Identity(d)
	diff := mat.NewVector(d)
	first := g.factor(g.t, 0)
	for f := 0; f < d; f++ {
		diff[f] = first[f] - g.t0[f]
	}
	winv.OuterAdd(1, diff, diff)
	for t := 1; t < T; t++ {
		cur, prev := g.factor(g.t, t), g.factor(g.t, t-1)
		for f := 0; f < d; f++ {
			diff[f] = cur[f] - prev[f]
		}
		winv.OuterAdd(1, diff, diff)
	}
	wN, err := mat.InvertSPD(winv)
	if err != nil {
		wN = mat.Identity(d)
	}
	wChol, err := mat.CholeskyJittered(wN)
	if err != nil {
		wChol = mat.Identity(d)
	}
	g.lamT = stats.Wishart(g.rng, g.h.nu0+float64(T), wChol)

	// T_0 | T_1 ~ N((μ0+T_1)/2, (2Λ_T)⁻¹) with μ0 = 1 (the neutral time
	// factor), keeping the chain anchored.
	mean := mat.NewVector(d)
	for f := 0; f < d; f++ {
		mean[f] = (1 + first[f]) / 2
	}
	prec := g.lamT.Clone()
	prec.Scale(2)
	g.t0 = sampleGaussianByPrecision(g.rng, mean, prec)
}

// sampleAlpha draws the observation precision from its Gamma
// conditional.
func (g *gibbsState) sampleAlpha() {
	var sse float64
	for _, cell := range g.cells {
		r := cell.Score - g.predict(cell)
		sse += r * r
	}
	n := float64(len(g.cells))
	const a0, b0 = 2.0, 2.0
	g.alpha = stats.Gamma(g.rng, a0+n/2, b0+sse/2)
}

// entitySeed derives a deterministic per-entity seed so entity updates
// can run on any number of workers without changing the draw.
func (g *gibbsState) entitySeed(kind, sweep, idx int) int64 {
	h := g.cfg.Seed
	h = h*1000003 + int64(kind)
	h = h*1000003 + int64(sweep)
	h = h*1000003 + int64(idx)
	return h
}

// sampleUsers resamples every user factor from its Gaussian conditional
//
//	Λ* = Λ_U + α·Σ_obs q qᵀ,  μ* = Λ*⁻¹(Λ_U μ_U + α·Σ_obs y·q)
//
// with q = V_v ∘ T_t, parallel over users.
func (g *gibbsState) sampleUsers(sweep int) {
	workers := model.Workers(g.cfg.Workers)
	d := g.d
	model.ParallelRanges(g.data.NumUsers(), workers, func(_, lo, hi int) {
		q := mat.NewVector(d)
		for u := lo; u < hi; u++ {
			rng := rand.New(rand.NewSource(g.entitySeed(1, sweep, u)))
			prec := g.lamU.Clone()
			rhs := g.lamU.MulVec(g.muU)
			for _, ci := range g.byUser[u] {
				cell := g.cells[ci]
				vs := g.factor(g.v, int(cell.V))
				ts := g.factor(g.t, int(cell.T))
				for f := 0; f < d; f++ {
					q[f] = vs[f] * ts[f]
				}
				prec.OuterAdd(g.alpha, q, q)
				rhs.AddScaled(g.alpha*cell.Score, q)
			}
			copy(g.factor(g.u, u), sampleGaussianByPrecisionRHS(rng, rhs, prec))
		}
	})
}

// sampleItems mirrors sampleUsers with q = U_u ∘ T_t, parallel over
// items.
func (g *gibbsState) sampleItems(sweep int) {
	workers := model.Workers(g.cfg.Workers)
	d := g.d
	model.ParallelRanges(g.data.NumItems(), workers, func(_, lo, hi int) {
		q := mat.NewVector(d)
		for v := lo; v < hi; v++ {
			rng := rand.New(rand.NewSource(g.entitySeed(2, sweep, v)))
			prec := g.lamV.Clone()
			rhs := g.lamV.MulVec(g.muV)
			for _, ci := range g.byItem[v] {
				cell := g.cells[ci]
				us := g.factor(g.u, int(cell.U))
				ts := g.factor(g.t, int(cell.T))
				for f := 0; f < d; f++ {
					q[f] = us[f] * ts[f]
				}
				prec.OuterAdd(g.alpha, q, q)
				rhs.AddScaled(g.alpha*cell.Score, q)
			}
			copy(g.factor(g.v, v), sampleGaussianByPrecisionRHS(rng, rhs, prec))
		}
	})
}

// sampleTimes resamples the time chain sequentially (each T_t depends on
// its neighbors, so this block is not parallelized).
func (g *gibbsState) sampleTimes() {
	d := g.d
	T := g.data.NumIntervals()
	q := mat.NewVector(d)
	for t := 0; t < T; t++ {
		// Chain prior: neighbors T_{t−1} (or T_0 head) and T_{t+1}.
		prec := g.lamT.Clone()
		var prev mat.Vector
		if t == 0 {
			prev = g.t0
		} else {
			prev = mat.Vector(g.factor(g.t, t-1))
		}
		rhs := g.lamT.MulVec(prev)
		if t+1 < T {
			prec.AddMatrix(1, g.lamT)
			rhs.AddTo(g.lamT.MulVec(mat.Vector(g.factor(g.t, t+1))))
		}
		for _, ci := range g.byTime[t] {
			cell := g.cells[ci]
			us := g.factor(g.u, int(cell.U))
			vs := g.factor(g.v, int(cell.V))
			for f := 0; f < d; f++ {
				q[f] = us[f] * vs[f]
			}
			prec.OuterAdd(g.alpha, q, q)
			rhs.AddScaled(g.alpha*cell.Score, q)
		}
		copy(g.factor(g.t, t), sampleGaussianByPrecisionRHS(g.rng, rhs, prec))
	}
}

// sampleGaussianByPrecision draws x ~ N(mean, prec⁻¹).
func sampleGaussianByPrecision(rng *rand.Rand, mean mat.Vector, prec *mat.Matrix) mat.Vector {
	l, err := mat.CholeskyJittered(prec)
	if err != nil {
		return mean.Clone()
	}
	z := mat.NewVector(len(mean))
	for i := range z {
		z[i] = rng.NormFloat64()
	}
	// x = mean + L⁻ᵀ z has covariance (L Lᵀ)⁻¹ = prec⁻¹.
	dx := mat.SolveUpperT(l, z)
	out := mean.Clone()
	out.AddTo(dx)
	return out
}

// sampleGaussianByPrecisionRHS draws x ~ N(prec⁻¹·rhs, prec⁻¹), the
// form every per-entity conditional takes.
func sampleGaussianByPrecisionRHS(rng *rand.Rand, rhs mat.Vector, prec *mat.Matrix) mat.Vector {
	l, err := mat.CholeskyJittered(prec)
	if err != nil {
		return rhs.Clone()
	}
	mean := mat.SolveUpperT(l, mat.SolveLower(l, rhs))
	z := mat.NewVector(len(rhs))
	for i := range z {
		z[i] = rng.NormFloat64()
	}
	dx := mat.SolveUpperT(l, z)
	mean.AddTo(dx)
	return mean
}
