package bptf

import (
	"math"
	"math/rand"
	"testing"

	"tcam/internal/cuboid"
)

// ratedWorld builds a 1–5 star world with two user camps over two item
// groups, plus a temporal drift: in late intervals camp A's items gain a
// star for everyone.
func ratedWorld(tb testing.TB) *cuboid.Cuboid {
	tb.Helper()
	rng := rand.New(rand.NewSource(10))
	b := cuboid.NewBuilder(24, 4, 16)
	for u := 0; u < 24; u++ {
		loves := 0
		if u >= 12 {
			loves = 8
		}
		for t := 0; t < 4; t++ {
			for k := 0; k < 4; k++ {
				v := rng.Intn(16)
				score := 2.0
				if (v < 8) == (loves == 0) {
					score = 4.5
				}
				if t >= 2 && v < 8 {
					score += 0.5
				}
				b.MustAdd(u, t, v, score)
			}
		}
	}
	return b.Build()
}

func trainBPTF(tb testing.TB) *Model {
	tb.Helper()
	cfg := DefaultConfig()
	cfg.Factors = 6
	cfg.Burnin = 8
	cfg.Samples = 6
	cfg.Workers = 2
	cfg.NegativeRatio = 0 // explicit ratings: reconstruct, don't rank
	m, _, err := Train(ratedWorld(tb), cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

func TestTrainValidation(t *testing.T) {
	good := ratedWorld(t)
	bad := []func(*Config){
		func(c *Config) { c.Factors = 0 },
		func(c *Config) { c.Burnin = -1 },
		func(c *Config) { c.Samples = 0 },
		func(c *Config) { c.Alpha0 = 0 },
		func(c *Config) { c.NegativeRatio = -1 },
	}
	for i, mod := range bad {
		cfg := DefaultConfig()
		mod(&cfg)
		if _, _, err := Train(good, cfg); err == nil {
			t.Errorf("case %d: Train accepted invalid config", i)
		}
	}
	if _, _, err := Train(cuboid.NewBuilder(1, 1, 1).Build(), DefaultConfig()); err == nil {
		t.Error("Train accepted empty cuboid")
	}
}

func TestSampleCount(t *testing.T) {
	m := trainBPTF(t)
	if m.SampleCount() != 6 {
		t.Errorf("SampleCount = %d, want 6", m.SampleCount())
	}
}

func TestReconstructsPreferences(t *testing.T) {
	m := trainBPTF(t)
	// Camp A (users < 12) loves items < 8; camp B loves items >= 8.
	avg := func(u, lo, hi, tt int) float64 {
		var s float64
		for v := lo; v < hi; v++ {
			s += m.Score(u, tt, v)
		}
		return s / float64(hi-lo)
	}
	for _, u := range []int{0, 5, 11} {
		if avg(u, 0, 8, 1) <= avg(u, 8, 16, 1) {
			t.Errorf("camp-A user %d does not prefer camp-A items", u)
		}
	}
	for _, u := range []int{12, 18, 23} {
		if avg(u, 8, 16, 1) <= avg(u, 0, 8, 1) {
			t.Errorf("camp-B user %d does not prefer camp-B items", u)
		}
	}
}

func TestCapturesTemporalDrift(t *testing.T) {
	m := trainBPTF(t)
	// Items < 8 gain half a star in intervals 2–3 for everyone; the
	// average predicted score across users should reflect it.
	var early, late float64
	for u := 0; u < 24; u++ {
		for v := 0; v < 8; v++ {
			early += m.Score(u, 0, v) + m.Score(u, 1, v)
			late += m.Score(u, 2, v) + m.Score(u, 3, v)
		}
	}
	if late <= early {
		t.Errorf("temporal drift not captured: late %v ≤ early %v", late, early)
	}
}

func TestScoreAllMatchesScore(t *testing.T) {
	m := trainBPTF(t)
	scores := make([]float64, m.NumItems())
	for _, q := range [][2]int{{0, 0}, {13, 3}} {
		m.ScoreAll(q[0], q[1], scores)
		for v := range scores {
			if want := m.Score(q[0], q[1], v); math.Abs(scores[v]-want) > 1e-10 {
				t.Fatalf("ScoreAll(%d,%d)[%d] = %v, Score = %v", q[0], q[1], v, scores[v], want)
			}
		}
	}
}

func TestPredictionsFinite(t *testing.T) {
	m := trainBPTF(t)
	for u := 0; u < 24; u += 5 {
		for tt := 0; tt < 4; tt++ {
			for v := 0; v < 16; v += 3 {
				if s := m.Score(u, tt, v); math.IsNaN(s) || math.IsInf(s, 0) {
					t.Fatalf("Score(%d,%d,%d) = %v", u, tt, v, s)
				}
			}
		}
	}
}

func TestTrainingFitImproves(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Factors = 6
	cfg.Burnin = 10
	cfg.Samples = 5
	cfg.NegativeRatio = 0
	_, st, err := Train(ratedWorld(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The −α·SSE/2 trace is stochastic; compare the first sweep against
	// the mean of the retained sweeps (fit must improve after burn-in).
	head := st.LogLikelihood[0]
	var tail float64
	n := 0
	for _, x := range st.LogLikelihood[cfg.Burnin:] {
		tail += x
		n++
	}
	tail /= float64(n)
	if tail <= head {
		t.Errorf("Gibbs fit did not improve: first %v, post-burn-in mean %v", head, tail)
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	data := ratedWorld(t)
	cfg := DefaultConfig()
	cfg.Factors = 4
	cfg.Burnin = 2
	cfg.Samples = 2
	cfg.Workers = 1
	m1, _, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	m4, _, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for s := range m1.uSamples {
		for i := range m1.uSamples[s] {
			if math.Abs(m1.uSamples[s][i]-m4.uSamples[s][i]) > 1e-12 {
				t.Fatal("per-entity seeding broke worker-count determinism for U")
			}
		}
		for i := range m1.vSamples[s] {
			if math.Abs(m1.vSamples[s][i]-m4.vSamples[s][i]) > 1e-12 {
				t.Fatal("per-entity seeding broke worker-count determinism for V")
			}
		}
	}
}

// implicitWorld: binary feedback where camp membership decides what a
// user touches; without negative sampling BPTF cannot rank here.
func implicitWorld(tb testing.TB) *cuboid.Cuboid {
	tb.Helper()
	rng := rand.New(rand.NewSource(11))
	b := cuboid.NewBuilder(30, 3, 20)
	for u := 0; u < 30; u++ {
		base := 0
		if u >= 15 {
			base = 10
		}
		for t := 0; t < 3; t++ {
			for k := 0; k < 3; k++ {
				b.MustAdd(u, t, base+rng.Intn(10), 1)
			}
		}
	}
	return b.Build()
}

func TestNegativeSamplingEnablesImplicitRanking(tt *testing.T) {
	cfg := DefaultConfig()
	cfg.Factors = 6
	cfg.Burnin = 8
	cfg.Samples = 6
	cfg.NegativeRatio = 2
	m, _, err := Train(implicitWorld(tt), cfg)
	if err != nil {
		tt.Fatal(err)
	}
	avg := func(u, lo, hi int) float64 {
		var s float64
		for v := lo; v < hi; v++ {
			s += m.Score(u, 1, v)
		}
		return s / float64(hi-lo)
	}
	for _, u := range []int{0, 7, 14} {
		if avg(u, 0, 10) <= avg(u, 10, 20) {
			tt.Errorf("camp-A user %d does not rank camp-A items above camp-B", u)
		}
	}
	for _, u := range []int{15, 25, 29} {
		if avg(u, 10, 20) <= avg(u, 0, 10) {
			tt.Errorf("camp-B user %d does not rank camp-B items above camp-A", u)
		}
	}
}
