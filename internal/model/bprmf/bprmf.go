// Package bprmf implements the BPRMF baseline of Section 5.2: matrix
// factorization for item ranking trained with Bayesian Personalized
// Ranking (Rendle et al., UAI 2009), the optimizer MyMediaLite's BPRMF
// uses. The model learns user factors p_u, item factors q_v and item
// biases b_v by stochastic gradient ascent on
//
//	Σ_(u,i,j) ln σ(x̂_ui − x̂_uj) − reg·‖Θ‖²
//
// over bootstrap-sampled triples (user, positive item, negative item).
// Like the paper's configuration, it sees no temporal information: its
// ranking for (u, t) is the same for every t, which is precisely why
// TCAM dominates it on temporal top-k tasks.
package bprmf

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"tcam/internal/cuboid"
	"tcam/internal/model"
)

// Config parameterizes BPRMF training.
type Config struct {
	// Factors is the latent dimensionality D.
	Factors int
	// Epochs is the number of SGD sweeps; each sweep draws one triple
	// per observed (user, item) positive.
	Epochs int
	// LearnRate is the SGD step size; Reg the L2 regularization applied
	// to factors and biases.
	LearnRate float64
	Reg       float64
	// InitStd is the standard deviation of the Gaussian factor
	// initialization.
	InitStd float64
	Seed    int64
}

// DefaultConfig mirrors MyMediaLite's BPRMF defaults at a small scale.
func DefaultConfig() Config {
	return Config{Factors: 32, Epochs: 30, LearnRate: 0.05, Reg: 0.01, InitStd: 0.1, Seed: 1}
}

func (c Config) validate(data *cuboid.Cuboid) error {
	switch {
	case c.Factors <= 0:
		return fmt.Errorf("bprmf: Factors must be positive, got %d", c.Factors)
	case c.Epochs <= 0:
		return fmt.Errorf("bprmf: Epochs must be positive, got %d", c.Epochs)
	case c.LearnRate <= 0:
		return fmt.Errorf("bprmf: LearnRate must be positive, got %v", c.LearnRate)
	case c.Reg < 0:
		return fmt.Errorf("bprmf: negative regularization %v", c.Reg)
	case c.InitStd <= 0:
		return fmt.Errorf("bprmf: InitStd must be positive, got %v", c.InitStd)
	}
	if data.NNZ() == 0 {
		return errors.New("bprmf: empty training cuboid")
	}
	return nil
}

// Model is a trained BPRMF ranker.
type Model struct {
	numUsers int
	numItems int
	factors  int

	p    []float64 // N×D user factors
	q    []float64 // V×D item factors
	bias []float64 // V item biases
}

// Train fits BPRMF on the positives of the cuboid (scores are treated
// as implicit feedback: any observed cell is a positive, aggregated
// over intervals).
func Train(data *cuboid.Cuboid, cfg Config) (*Model, model.TrainStats, error) {
	var stats model.TrainStats
	if err := cfg.validate(data); err != nil {
		return nil, stats, err
	}
	n, V, d := data.NumUsers(), data.NumItems(), cfg.Factors
	m := &Model{
		numUsers: n,
		numItems: V,
		factors:  d,
		p:        make([]float64, n*d),
		q:        make([]float64, V*d),
		bias:     make([]float64, V),
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i := range m.p {
		m.p[i] = rng.NormFloat64() * cfg.InitStd
	}
	for i := range m.q {
		m.q[i] = rng.NormFloat64() * cfg.InitStd
	}

	// Positive pairs (u, v) deduplicated across intervals, plus a
	// per-user positive set for negative sampling.
	type pair struct{ u, v int32 }
	var positives []pair
	posSet := make([]map[int32]bool, n)
	_, itemCol, _ := data.CSR()
	for u := 0; u < n; u++ {
		posSet[u] = make(map[int32]bool)
		lo, hi := data.UserSpan(u)
		for _, v := range itemCol[lo:hi] {
			if !posSet[u][v] {
				posSet[u][v] = true
				positives = append(positives, pair{u: int32(u), v: v})
			}
		}
	}
	if len(positives) == 0 {
		return nil, stats, errors.New("bprmf: no positive pairs")
	}

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		var obj float64
		for step := 0; step < len(positives); step++ {
			pr := positives[rng.Intn(len(positives))]
			u, i := int(pr.u), int(pr.v)
			// Uniform negative not in the user's positive set; bail out
			// for pathological users who rated everything.
			var j int
			found := false
			for try := 0; try < 32; try++ {
				j = rng.Intn(V)
				if !posSet[u][int32(j)] {
					found = true
					break
				}
			}
			if !found {
				continue
			}
			obj += m.updateTriple(u, i, j, cfg)
		}
		stats.LogLikelihood = append(stats.LogLikelihood, obj)
	}
	return m, stats, nil
}

// updateTriple performs one BPR-Opt SGD step on (u, i, j) and returns
// the triple's contribution ln σ(x̂_uij) to the objective (pre-update).
func (m *Model) updateTriple(u, i, j int, cfg Config) float64 {
	d := m.factors
	pu := m.p[u*d : (u+1)*d]
	qi := m.q[i*d : (i+1)*d]
	qj := m.q[j*d : (j+1)*d]
	xuij := m.bias[i] - m.bias[j]
	for f := 0; f < d; f++ {
		xuij += pu[f] * (qi[f] - qj[f])
	}
	sig := 1 / (1 + math.Exp(xuij)) // σ(−x̂) = 1 − σ(x̂): the gradient scale
	lr, reg := cfg.LearnRate, cfg.Reg
	m.bias[i] += lr * (sig - reg*m.bias[i])
	m.bias[j] += lr * (-sig - reg*m.bias[j])
	for f := 0; f < d; f++ {
		puf, qif, qjf := pu[f], qi[f], qj[f]
		pu[f] += lr * (sig*(qif-qjf) - reg*puf)
		qi[f] += lr * (sig*puf - reg*qif)
		qj[f] += lr * (-sig*puf - reg*qjf)
	}
	return -math.Log1p(math.Exp(-xuij))
}

// Name returns "BPRMF".
func (m *Model) Name() string { return "BPRMF" }

// NumItems returns the item-catalog size.
func (m *Model) NumItems() int { return m.numItems }

// Factors returns the latent dimensionality.
func (m *Model) Factors() int { return m.factors }

// Score returns x̂_uv = p_u·q_v + b_v; the interval argument is ignored
// by design.
func (m *Model) Score(u, _, v int) float64 {
	d := m.factors
	pu := m.p[u*d : (u+1)*d]
	qv := m.q[v*d : (v+1)*d]
	s := m.bias[v]
	for f := 0; f < d; f++ {
		s += pu[f] * qv[f]
	}
	return s
}

// ScoreAll fills scores[v] = x̂_uv for every item.
func (m *Model) ScoreAll(u, _ int, scores []float64) {
	if len(scores) != m.numItems {
		panic(fmt.Sprintf("bprmf: ScoreAll buffer %d, want %d", len(scores), m.numItems))
	}
	d := m.factors
	pu := m.p[u*d : (u+1)*d]
	for v := range scores {
		qv := m.q[v*d : (v+1)*d]
		s := m.bias[v]
		for f := 0; f < d; f++ {
			s += pu[f] * qv[f]
		}
		scores[v] = s
	}
}

var _ model.BulkScorer = (*Model)(nil)
