package bprmf

import (
	"math"
	"math/rand"
	"testing"

	"tcam/internal/cuboid"
)

// twoCampWorld: users 0..14 rate items 0..9, users 15..29 rate items
// 10..19. Factorization must separate the camps.
func twoCampWorld(tb testing.TB) *cuboid.Cuboid {
	tb.Helper()
	rng := rand.New(rand.NewSource(8))
	b := cuboid.NewBuilder(30, 2, 20)
	for u := 0; u < 30; u++ {
		base := 0
		if u >= 15 {
			base = 10
		}
		for k := 0; k < 6; k++ {
			b.MustAdd(u, rng.Intn(2), base+rng.Intn(10), 1)
		}
	}
	return b.Build()
}

func trainBPR(tb testing.TB) *Model {
	tb.Helper()
	cfg := DefaultConfig()
	cfg.Factors = 8
	cfg.Epochs = 60
	m, _, err := Train(twoCampWorld(tb), cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

func TestTrainValidation(t *testing.T) {
	good := twoCampWorld(t)
	bad := []func(*Config){
		func(c *Config) { c.Factors = 0 },
		func(c *Config) { c.Epochs = 0 },
		func(c *Config) { c.LearnRate = 0 },
		func(c *Config) { c.Reg = -1 },
		func(c *Config) { c.InitStd = 0 },
	}
	for i, mod := range bad {
		cfg := DefaultConfig()
		mod(&cfg)
		if _, _, err := Train(good, cfg); err == nil {
			t.Errorf("case %d: Train accepted invalid config", i)
		}
	}
	if _, _, err := Train(cuboid.NewBuilder(1, 1, 1).Build(), DefaultConfig()); err == nil {
		t.Error("Train accepted empty cuboid")
	}
}

func TestCampsSeparate(t *testing.T) {
	m := trainBPR(t)
	// Average in-camp score must exceed cross-camp score for both camps.
	avg := func(u, lo, hi int) float64 {
		var s float64
		for v := lo; v < hi; v++ {
			s += m.Score(u, 0, v)
		}
		return s / float64(hi-lo)
	}
	for _, u := range []int{0, 7, 14} {
		if avg(u, 0, 10) <= avg(u, 10, 20) {
			t.Errorf("camp-A user %d prefers camp-B items", u)
		}
	}
	for _, u := range []int{15, 22, 29} {
		if avg(u, 10, 20) <= avg(u, 0, 10) {
			t.Errorf("camp-B user %d prefers camp-A items", u)
		}
	}
}

func TestScoreIgnoresTime(t *testing.T) {
	m := trainBPR(t)
	for v := 0; v < 20; v += 3 {
		if m.Score(5, 0, v) != m.Score(5, 1, v) {
			t.Fatal("BPRMF score depends on interval")
		}
	}
}

func TestScoreAllMatchesScore(t *testing.T) {
	m := trainBPR(t)
	scores := make([]float64, m.NumItems())
	m.ScoreAll(17, 0, scores)
	for v := range scores {
		if want := m.Score(17, 0, v); math.Abs(scores[v]-want) > 1e-12 {
			t.Fatalf("ScoreAll[%d] = %v, Score = %v", v, scores[v], want)
		}
	}
}

func TestObjectiveImproves(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Factors = 8
	cfg.Epochs = 40
	_, st, err := Train(twoCampWorld(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// SGD is noisy; require the mean of the last 5 epochs to beat the
	// first epoch's objective (higher = better since it's Σ ln σ).
	var tail float64
	for _, x := range st.LogLikelihood[len(st.LogLikelihood)-5:] {
		tail += x
	}
	tail /= 5
	if tail <= st.LogLikelihood[0] {
		t.Errorf("BPR objective did not improve: first %v, tail mean %v", st.LogLikelihood[0], tail)
	}
}

func TestDeterministicTraining(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Factors = 4
	cfg.Epochs = 5
	data := twoCampWorld(t)
	m1, _, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, _, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m1.p {
		if m1.p[i] != m2.p[i] {
			t.Fatal("same seed, different factors")
		}
	}
}

func TestFactorsFiniteUnderLongTraining(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Factors = 8
	cfg.Epochs = 200
	cfg.LearnRate = 0.1
	m, _, err := Train(twoCampWorld(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range m.p {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatal("user factors diverged")
		}
	}
	for _, x := range m.q {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatal("item factors diverged")
		}
	}
}
