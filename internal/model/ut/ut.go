// Package ut implements the User-Topic baseline of Section 5.2: an
// author-topic–style model in which items are generated only from user
// interests, with a fixed background distribution for smoothing:
//
//	P(v|u) = λB·P(v|θB) + (1−λB)·Σ_z P(z|θu)P(v|φz)
//
// The model ignores temporal context entirely, which is exactly why the
// paper uses it — it wins on interest-driven catalogs (MovieLens) and
// loses on time-sensitive ones (Digg).
package ut

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"tcam/internal/cuboid"
	"tcam/internal/model"
)

// Config parameterizes UT training.
type Config struct {
	// K is the number of user-oriented topics.
	K int
	// LambdaB is the fixed background mixing weight λB.
	LambdaB float64
	// MaxIters bounds EM; Tol is the early-stopping tolerance on
	// relative log-likelihood improvement.
	MaxIters int
	Tol      float64
	Seed     int64
	// Workers is the E-step parallelism; non-positive means GOMAXPROCS.
	Workers   int
	Smoothing float64
}

// DefaultConfig returns the harness's standard UT configuration.
func DefaultConfig() Config {
	return Config{K: 60, LambdaB: 0.1, MaxIters: 50, Tol: 1e-5, Seed: 1, Smoothing: 1e-9}
}

func (c Config) validate(data *cuboid.Cuboid) error {
	switch {
	case c.K <= 0:
		return fmt.Errorf("ut: K must be positive, got %d", c.K)
	case c.LambdaB < 0 || c.LambdaB >= 1:
		return fmt.Errorf("ut: LambdaB %v outside [0,1)", c.LambdaB)
	case c.MaxIters <= 0:
		return fmt.Errorf("ut: MaxIters must be positive")
	case c.Smoothing < 0:
		return fmt.Errorf("ut: negative smoothing %v", c.Smoothing)
	}
	if data.NNZ() == 0 {
		return errors.New("ut: empty training cuboid")
	}
	return nil
}

// Model is a trained user-topic model.
type Model struct {
	numUsers int
	numItems int
	k        int
	lambdaB  float64

	theta      []float64 // N×K: P(z|θu)
	phi        []float64 // K×V: P(v|φz)
	background []float64 // V: θB
}

// Train fits the user-topic model. The cuboid's time dimension is
// ignored (ratings aggregate across intervals).
func Train(data *cuboid.Cuboid, cfg Config) (*Model, model.TrainStats, error) {
	var stats model.TrainStats
	if err := cfg.validate(data); err != nil {
		return nil, stats, err
	}
	n, v := data.NumUsers(), data.NumItems()
	m := &Model{
		numUsers:   n,
		numItems:   v,
		k:          cfg.K,
		lambdaB:    cfg.LambdaB,
		theta:      make([]float64, n*cfg.K),
		phi:        make([]float64, cfg.K*v),
		background: make([]float64, v),
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	jitterRows(rng, m.theta, cfg.K)
	jitterRows(rng, m.phi, v)
	for _, cell := range data.Cells() {
		m.background[cell.V] += cell.Score
	}
	model.NormalizeRows(m.background, v, 1e-9)

	workers := model.Workers(cfg.Workers)
	thetaAcc := make([]float64, len(m.theta))
	phiW := make([][]float64, workers)
	for w := range phiW {
		phiW[w] = make([]float64, len(m.phi))
	}
	llW := make([]float64, workers)
	cells := data.Cells()
	prevLL := math.Inf(-1)
	for iter := 0; iter < cfg.MaxIters; iter++ {
		for i := range thetaAcc {
			thetaAcc[i] = 0
		}
		for _, s := range phiW {
			for i := range s {
				s[i] = 0
			}
		}
		model.ParallelRanges(n, workers, func(worker, lo, hi int) {
			phiAcc := phiW[worker]
			pz := make([]float64, cfg.K)
			var ll float64
			for u := lo; u < hi; u++ {
				thetaRow := m.theta[u*cfg.K : (u+1)*cfg.K]
				clo, chi := data.UserSpan(u)
				for ci := clo; ci < chi; ci++ {
					cell := cells[ci]
					vv, w := int(cell.V), cell.Score
					var pu float64
					for z := 0; z < cfg.K; z++ {
						p := thetaRow[z] * m.phi[z*v+vv]
						pz[z] = p
						pu += p
					}
					denom := cfg.LambdaB*m.background[vv] + (1-cfg.LambdaB)*pu
					if denom <= 0 {
						denom = 1e-300
					}
					ll += w * math.Log(denom)
					// Posterior mass of the topic path, split across z.
					if pu > 0 {
						pTopic := (1 - cfg.LambdaB) * pu / denom
						scale := w * pTopic / pu
						for z := 0; z < cfg.K; z++ {
							c := scale * pz[z]
							thetaAcc[u*cfg.K+z] += c
							phiAcc[z*v+vv] += c
						}
					}
				}
			}
			llW[worker] = ll
		})
		copy(m.theta, thetaAcc)
		model.NormalizeRows(m.theta, cfg.K, cfg.Smoothing)
		copy(m.phi, model.MergeSlabs(phiW))
		model.NormalizeRows(m.phi, v, cfg.Smoothing)

		var ll float64
		for _, x := range llW {
			ll += x
		}
		stats.LogLikelihood = append(stats.LogLikelihood, ll)
		if iter > 0 {
			if rel := math.Abs(ll-prevLL) / (math.Abs(prevLL) + 1e-12); rel < cfg.Tol {
				stats.Converged = true
				break
			}
		}
		prevLL = ll
	}
	return m, stats, nil
}

func jitterRows(rng *rand.Rand, data []float64, cols int) {
	for i := range data {
		data[i] = 1 + 0.5*rng.Float64()
	}
	model.NormalizeRows(data, cols, 0)
}

// Name returns "UT".
func (m *Model) Name() string { return "UT" }

// NumItems returns the item-catalog size.
func (m *Model) NumItems() int { return m.numItems }

// K returns the number of topics.
func (m *Model) K() int { return m.k }

// UserInterest returns P(·|θu). Callers must not modify the slice.
func (m *Model) UserInterest(u int) []float64 { return m.theta[u*m.k : (u+1)*m.k] }

// Topic returns P(·|φz). Callers must not modify the slice.
func (m *Model) Topic(z int) []float64 { return m.phi[z*m.numItems : (z+1)*m.numItems] }

// Score returns P(v|u); the interval argument is ignored by design.
func (m *Model) Score(u, _, v int) float64 {
	var pu float64
	thetaRow := m.UserInterest(u)
	for z := 0; z < m.k; z++ {
		pu += thetaRow[z] * m.phi[z*m.numItems+v]
	}
	return m.lambdaB*m.background[v] + (1-m.lambdaB)*pu
}

// ScoreAll fills scores[v] = P(v|u) for every item.
func (m *Model) ScoreAll(u, _ int, scores []float64) {
	if len(scores) != m.numItems {
		panic(fmt.Sprintf("ut: ScoreAll buffer %d, want %d", len(scores), m.numItems))
	}
	for v := range scores {
		scores[v] = m.lambdaB * m.background[v]
	}
	thetaRow := m.UserInterest(u)
	for z := 0; z < m.k; z++ {
		w := (1 - m.lambdaB) * thetaRow[z]
		if w <= 0 {
			continue
		}
		row := m.Topic(z)
		for v := range scores {
			scores[v] += w * row[v]
		}
	}
}

var _ model.BulkScorer = (*Model)(nil)
