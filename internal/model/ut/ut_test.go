package ut

import (
	"math"
	"math/rand"
	"testing"

	"tcam/internal/cuboid"
)

// interestWorld: each user sticks to a small pet-item set across all
// intervals.
func interestWorld(tb testing.TB) *cuboid.Cuboid {
	tb.Helper()
	rng := rand.New(rand.NewSource(4))
	b := cuboid.NewBuilder(30, 6, 30)
	for u := 0; u < 30; u++ {
		pet := (u % 6) * 5
		for t := 0; t < 6; t++ {
			b.MustAdd(u, t, pet, 1)
			b.MustAdd(u, t, pet+1, 1)
			if rng.Float64() < 0.3 {
				b.MustAdd(u, t, rng.Intn(30), 1)
			}
		}
	}
	return b.Build()
}

func trainUT(tb testing.TB) *Model {
	tb.Helper()
	cfg := DefaultConfig()
	cfg.K = 8
	cfg.MaxIters = 40
	cfg.Workers = 2
	m, _, err := Train(interestWorld(tb), cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

func TestTrainValidation(t *testing.T) {
	good := interestWorld(t)
	bad := []func(*Config){
		func(c *Config) { c.K = 0 },
		func(c *Config) { c.LambdaB = 1 },
		func(c *Config) { c.LambdaB = -0.1 },
		func(c *Config) { c.MaxIters = 0 },
		func(c *Config) { c.Smoothing = -1 },
	}
	for i, mod := range bad {
		cfg := DefaultConfig()
		mod(&cfg)
		if _, _, err := Train(good, cfg); err == nil {
			t.Errorf("case %d: Train accepted invalid config", i)
		}
	}
	if _, _, err := Train(cuboid.NewBuilder(1, 1, 1).Build(), DefaultConfig()); err == nil {
		t.Error("Train accepted empty cuboid")
	}
}

func TestLogLikelihoodMonotone(t *testing.T) {
	cfg := DefaultConfig()
	cfg.K = 8
	cfg.MaxIters = 40
	_, st, err := Train(interestWorld(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < st.Iterations(); i++ {
		if st.LogLikelihood[i] < st.LogLikelihood[i-1]-math.Abs(st.LogLikelihood[i-1])*1e-8 {
			t.Fatalf("LL decreased at iter %d", i)
		}
	}
}

func TestScoreIgnoresTime(t *testing.T) {
	m := trainUT(t)
	for v := 0; v < m.NumItems(); v += 5 {
		if m.Score(3, 0, v) != m.Score(3, 5, v) {
			t.Fatalf("UT score depends on interval at v=%d", v)
		}
	}
}

func TestPetItemsOutrankOthers(t *testing.T) {
	m := trainUT(t)
	// User 0's pets are items 0 and 1.
	if m.Score(0, 0, 0) <= m.Score(0, 0, 17) {
		t.Error("pet item not promoted for its user")
	}
	// User 7 (pets 5,6) should rank item 5 over item 0.
	if m.Score(7, 0, 5) <= m.Score(7, 0, 0) {
		t.Error("user 7's pet not promoted over user 0's pet")
	}
}

func TestScoreAllMatchesScore(t *testing.T) {
	m := trainUT(t)
	scores := make([]float64, m.NumItems())
	m.ScoreAll(11, 2, scores)
	for v := range scores {
		if want := m.Score(11, 2, v); math.Abs(scores[v]-want) > 1e-12 {
			t.Fatalf("ScoreAll[%d] = %v, Score = %v", v, scores[v], want)
		}
	}
}

func TestDistributionsNormalized(t *testing.T) {
	m := trainUT(t)
	sum := func(p []float64) float64 {
		var s float64
		for _, x := range p {
			s += x
		}
		return s
	}
	for z := 0; z < m.K(); z++ {
		if s := sum(m.Topic(z)); math.Abs(s-1) > 1e-6 {
			t.Fatalf("topic %d sums to %v", z, s)
		}
	}
	if s := sum(m.UserInterest(4)); math.Abs(s-1) > 1e-6 {
		t.Fatalf("interest sums to %v", s)
	}
}
