//go:build tcamcheck

package model

import (
	"fmt"
	"math"
)

// AssertionsEnabled reports whether the tcamcheck debug assertions are
// compiled in. It is a constant, so release builds (without the tag)
// dead-code-eliminate every `if model.AssertionsEnabled { ... }` block.
const AssertionsEnabled = true

// AssertRowStochastic panics unless every length-cols row of data is a
// probability distribution: finite entries in [0, 1] summing to 1
// within tol. EM M-steps call it (under the tcamcheck tag) on each
// parameter matrix they renormalize.
func AssertRowStochastic(label string, data []float64, cols int, tol float64) {
	if cols <= 0 {
		panic("model: AssertRowStochastic needs positive cols")
	}
	for r := 0; r*cols < len(data); r++ {
		row := data[r*cols : (r+1)*cols]
		var sum float64
		for i, x := range row {
			if math.IsNaN(x) || math.IsInf(x, 0) || x < 0 || x > 1 {
				panic(fmt.Sprintf("model: %s: row %d entry %d is %v, want finite in [0,1]", label, r, i, x))
			}
			sum += x
		}
		if math.Abs(sum-1) > tol {
			panic(fmt.Sprintf("model: %s: row %d sums to %v, want 1 ± %v", label, r, sum, tol))
		}
	}
}

// AssertFiniteIn01 panics unless every entry of data is finite and in
// [0, 1] — the invariant for per-user mixing weights λu.
func AssertFiniteIn01(label string, data []float64) {
	for i, x := range data {
		if math.IsNaN(x) || math.IsInf(x, 0) || x < 0 || x > 1 {
			panic(fmt.Sprintf("model: %s: entry %d is %v, want finite in [0,1]", label, i, x))
		}
	}
}
