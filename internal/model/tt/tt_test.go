package tt

import (
	"math"
	"math/rand"
	"testing"

	"tcam/internal/cuboid"
)

// trendOnlyWorld: everyone rates the per-interval hot pair, regardless
// of identity.
func trendOnlyWorld(tb testing.TB) *cuboid.Cuboid {
	tb.Helper()
	rng := rand.New(rand.NewSource(6))
	b := cuboid.NewBuilder(30, 6, 20)
	for u := 0; u < 30; u++ {
		for t := 0; t < 6; t++ {
			hot := t * 3
			b.MustAdd(u, t, hot, 1)
			if rng.Float64() < 0.6 {
				b.MustAdd(u, t, hot+1, 1)
			}
			if rng.Float64() < 0.2 {
				b.MustAdd(u, t, rng.Intn(20), 1)
			}
		}
	}
	return b.Build()
}

func trainTT(tb testing.TB) *Model {
	tb.Helper()
	cfg := DefaultConfig()
	cfg.K = 8
	cfg.MaxIters = 40
	cfg.Workers = 2
	m, _, err := Train(trendOnlyWorld(tb), cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

func TestTrainValidation(t *testing.T) {
	good := trendOnlyWorld(t)
	bad := []func(*Config){
		func(c *Config) { c.K = 0 },
		func(c *Config) { c.LambdaB = 1 },
		func(c *Config) { c.MaxIters = 0 },
		func(c *Config) { c.Smoothing = -1 },
	}
	for i, mod := range bad {
		cfg := DefaultConfig()
		mod(&cfg)
		if _, _, err := Train(good, cfg); err == nil {
			t.Errorf("case %d: Train accepted invalid config", i)
		}
	}
	if _, _, err := Train(cuboid.NewBuilder(1, 1, 1).Build(), DefaultConfig()); err == nil {
		t.Error("Train accepted empty cuboid")
	}
}

func TestLogLikelihoodMonotone(t *testing.T) {
	cfg := DefaultConfig()
	cfg.K = 8
	cfg.MaxIters = 40
	_, st, err := Train(trendOnlyWorld(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Iterations() < 2 {
		t.Fatal("too few iterations")
	}
	for i := 1; i < st.Iterations(); i++ {
		if st.LogLikelihood[i] < st.LogLikelihood[i-1]-math.Abs(st.LogLikelihood[i-1])*1e-8 {
			t.Fatalf("LL decreased at iter %d", i)
		}
	}
}

func TestScoreIgnoresUser(t *testing.T) {
	m := trainTT(t)
	for v := 0; v < m.NumItems(); v += 3 {
		if m.Score(0, 2, v) != m.Score(29, 2, v) {
			t.Fatalf("TT score depends on user at v=%d", v)
		}
	}
}

func TestHotItemsTrackIntervals(t *testing.T) {
	m := trainTT(t)
	for tt := 0; tt < 6; tt++ {
		hot := tt * 3
		other := ((tt + 3) % 6) * 3
		if m.Score(0, tt, hot) <= m.Score(0, tt, other) {
			t.Errorf("interval %d: its hot item %d not ranked above interval %d's", tt, hot, (tt+3)%6)
		}
	}
}

func TestScoreAllMatchesScore(t *testing.T) {
	m := trainTT(t)
	scores := make([]float64, m.NumItems())
	m.ScoreAll(0, 4, scores)
	for v := range scores {
		if want := m.Score(0, 4, v); math.Abs(scores[v]-want) > 1e-12 {
			t.Fatalf("ScoreAll[%d] = %v, Score = %v", v, scores[v], want)
		}
	}
}

func TestDistributionsNormalized(t *testing.T) {
	m := trainTT(t)
	sum := func(p []float64) float64 {
		var s float64
		for _, x := range p {
			s += x
		}
		return s
	}
	for x := 0; x < m.K(); x++ {
		if s := sum(m.Topic(x)); math.Abs(s-1) > 1e-6 {
			t.Fatalf("topic %d sums to %v", x, s)
		}
	}
	for tt := 0; tt < 6; tt++ {
		if s := sum(m.TemporalContext(tt)); math.Abs(s-1) > 1e-6 {
			t.Fatalf("context %d sums to %v", tt, s)
		}
	}
}
