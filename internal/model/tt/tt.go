// Package tt implements the Time-Topic baseline of Section 5.2: the
// mirror image of UT, generating items only from the temporal context
// and ignoring user identity:
//
//	P(v|t) = λB·P(v|θB) + (1−λB)·Σ_x P(x|θ't)P(v|φ'x)
//
// It wins on time-sensitive catalogs (Digg) and loses on interest-driven
// ones (MovieLens) — the asymmetry TCAM unifies.
package tt

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"tcam/internal/cuboid"
	"tcam/internal/model"
)

// Config parameterizes TT training.
type Config struct {
	// K is the number of time-oriented topics.
	K int
	// LambdaB is the fixed background mixing weight λB.
	LambdaB float64
	// MaxIters bounds EM; Tol is the early-stopping tolerance.
	MaxIters int
	Tol      float64
	Seed     int64
	// Workers is the E-step parallelism; non-positive means GOMAXPROCS.
	Workers   int
	Smoothing float64
}

// DefaultConfig returns the harness's standard TT configuration.
func DefaultConfig() Config {
	return Config{K: 40, LambdaB: 0.1, MaxIters: 50, Tol: 1e-5, Seed: 1, Smoothing: 1e-9}
}

func (c Config) validate(data *cuboid.Cuboid) error {
	switch {
	case c.K <= 0:
		return fmt.Errorf("tt: K must be positive, got %d", c.K)
	case c.LambdaB < 0 || c.LambdaB >= 1:
		return fmt.Errorf("tt: LambdaB %v outside [0,1)", c.LambdaB)
	case c.MaxIters <= 0:
		return fmt.Errorf("tt: MaxIters must be positive")
	case c.Smoothing < 0:
		return fmt.Errorf("tt: negative smoothing %v", c.Smoothing)
	}
	if data.NNZ() == 0 {
		return errors.New("tt: empty training cuboid")
	}
	return nil
}

// Model is a trained time-topic model.
type Model struct {
	numIntervals int
	numItems     int
	k            int
	lambdaB      float64

	thetaT     []float64 // T×K: P(x|θ't)
	phi        []float64 // K×V: P(v|φ'x)
	background []float64 // V: θB
}

// Train fits the time-topic model. The cuboid's user dimension is
// ignored (ratings aggregate across users); the E-step parallelizes
// over intervals.
func Train(data *cuboid.Cuboid, cfg Config) (*Model, model.TrainStats, error) {
	var stats model.TrainStats
	if err := cfg.validate(data); err != nil {
		return nil, stats, err
	}
	T, v := data.NumIntervals(), data.NumItems()
	m := &Model{
		numIntervals: T,
		numItems:     v,
		k:            cfg.K,
		lambdaB:      cfg.LambdaB,
		thetaT:       make([]float64, T*cfg.K),
		phi:          make([]float64, cfg.K*v),
		background:   make([]float64, v),
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	jitterRows(rng, m.thetaT, cfg.K)
	jitterRows(rng, m.phi, v)
	for _, cell := range data.Cells() {
		m.background[cell.V] += cell.Score
	}
	model.NormalizeRows(m.background, v, 1e-9)

	workers := model.Workers(cfg.Workers)
	thetaAcc := make([]float64, len(m.thetaT))
	phiW := make([][]float64, workers)
	for w := range phiW {
		phiW[w] = make([]float64, len(m.phi))
	}
	llW := make([]float64, workers)
	_, tvs, tscores := data.IntervalCSR()
	prevLL := math.Inf(-1)
	for iter := 0; iter < cfg.MaxIters; iter++ {
		for i := range thetaAcc {
			thetaAcc[i] = 0
		}
		for _, s := range phiW {
			for i := range s {
				s[i] = 0
			}
		}
		model.ParallelRanges(T, workers, func(worker, lo, hi int) {
			phiAcc := phiW[worker]
			px := make([]float64, cfg.K)
			var ll float64
			for t := lo; t < hi; t++ {
				thetaRow := m.thetaT[t*cfg.K : (t+1)*cfg.K]
				tlo, thi := data.IntervalSpan(t)
				for ci := tlo; ci < thi; ci++ {
					vv, w := int(tvs[ci]), tscores[ci]
					var pt float64
					for x := 0; x < cfg.K; x++ {
						p := thetaRow[x] * m.phi[x*v+vv]
						px[x] = p
						pt += p
					}
					denom := cfg.LambdaB*m.background[vv] + (1-cfg.LambdaB)*pt
					if denom <= 0 {
						denom = 1e-300
					}
					ll += w * math.Log(denom)
					if pt > 0 {
						pTopic := (1 - cfg.LambdaB) * pt / denom
						scale := w * pTopic / pt
						for x := 0; x < cfg.K; x++ {
							c := scale * px[x]
							thetaAcc[t*cfg.K+x] += c
							phiAcc[x*v+vv] += c
						}
					}
				}
			}
			llW[worker] += ll
		})
		copy(m.thetaT, thetaAcc)
		model.NormalizeRows(m.thetaT, cfg.K, cfg.Smoothing)
		copy(m.phi, model.MergeSlabs(phiW))
		model.NormalizeRows(m.phi, v, cfg.Smoothing)

		var ll float64
		for w := range llW {
			ll += llW[w]
			llW[w] = 0
		}
		stats.LogLikelihood = append(stats.LogLikelihood, ll)
		if iter > 0 {
			if rel := math.Abs(ll-prevLL) / (math.Abs(prevLL) + 1e-12); rel < cfg.Tol {
				stats.Converged = true
				break
			}
		}
		prevLL = ll
	}
	return m, stats, nil
}

func jitterRows(rng *rand.Rand, data []float64, cols int) {
	for i := range data {
		data[i] = 1 + 0.5*rng.Float64()
	}
	model.NormalizeRows(data, cols, 0)
}

// Name returns "TT".
func (m *Model) Name() string { return "TT" }

// NumItems returns the item-catalog size.
func (m *Model) NumItems() int { return m.numItems }

// K returns the number of time-oriented topics.
func (m *Model) K() int { return m.k }

// TemporalContext returns P(·|θ't). Callers must not modify the slice.
func (m *Model) TemporalContext(t int) []float64 { return m.thetaT[t*m.k : (t+1)*m.k] }

// Topic returns P(·|φ'x). Callers must not modify the slice.
func (m *Model) Topic(x int) []float64 { return m.phi[x*m.numItems : (x+1)*m.numItems] }

// Score returns P(v|t); the user argument is ignored by design.
func (m *Model) Score(_, t, v int) float64 {
	var pt float64
	thetaRow := m.TemporalContext(t)
	for x := 0; x < m.k; x++ {
		pt += thetaRow[x] * m.phi[x*m.numItems+v]
	}
	return m.lambdaB*m.background[v] + (1-m.lambdaB)*pt
}

// ScoreAll fills scores[v] = P(v|t) for every item.
func (m *Model) ScoreAll(_, t int, scores []float64) {
	if len(scores) != m.numItems {
		panic(fmt.Sprintf("tt: ScoreAll buffer %d, want %d", len(scores), m.numItems))
	}
	for v := range scores {
		scores[v] = m.lambdaB * m.background[v]
	}
	thetaRow := m.TemporalContext(t)
	for x := 0; x < m.k; x++ {
		w := (1 - m.lambdaB) * thetaRow[x]
		if w <= 0 {
			continue
		}
		row := m.Topic(x)
		for v := range scores {
			scores[v] += w * row[v]
		}
	}
}

var _ model.BulkScorer = (*Model)(nil)
