//go:build tcamcheck

package model

import (
	"math"
	"strings"
	"testing"
)

func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q, got none", want)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, want) {
			t.Fatalf("panic = %v, want message containing %q", r, want)
		}
	}()
	fn()
}

func TestAssertRowStochasticAcceptsValidRows(t *testing.T) {
	AssertRowStochastic("ok", []float64{0.25, 0.75, 0.5, 0.5}, 2, 1e-9)
}

func TestAssertRowStochasticRejectsBadSum(t *testing.T) {
	mustPanic(t, "sums to", func() {
		AssertRowStochastic("badsum", []float64{0.3, 0.3}, 2, 1e-9)
	})
}

func TestAssertRowStochasticRejectsNaN(t *testing.T) {
	mustPanic(t, "finite", func() {
		AssertRowStochastic("nan", []float64{math.NaN(), 1}, 2, 1e-9)
	})
}

func TestAssertFiniteIn01RejectsOutOfRange(t *testing.T) {
	mustPanic(t, "[0,1]", func() {
		AssertFiniteIn01("range", []float64{0.5, 1.5})
	})
}
