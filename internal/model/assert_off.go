//go:build !tcamcheck

package model

// AssertionsEnabled reports whether the tcamcheck debug assertions are
// compiled in. It is a constant, so release builds (without the tag)
// dead-code-eliminate every `if model.AssertionsEnabled { ... }` block.
const AssertionsEnabled = false

// AssertRowStochastic is a no-op without the tcamcheck build tag; see
// assert_on.go for the checked variant.
func AssertRowStochastic(label string, data []float64, cols int, tol float64) {}

// AssertFiniteIn01 is a no-op without the tcamcheck build tag; see
// assert_on.go for the checked variant.
func AssertFiniteIn01(label string, data []float64) {}
