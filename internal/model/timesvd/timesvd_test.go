package timesvd

import (
	"math"
	"math/rand"
	"testing"

	"tcam/internal/cuboid"
)

// driftWorld: two user camps with opposite tastes, plus a drift — camp
// A's items gain favor over time for everyone.
func driftWorld(tb testing.TB) *cuboid.Cuboid {
	tb.Helper()
	rng := rand.New(rand.NewSource(12))
	b := cuboid.NewBuilder(30, 6, 20)
	for u := 0; u < 30; u++ {
		loves := 0
		if u >= 15 {
			loves = 10
		}
		for t := 0; t < 6; t++ {
			for k := 0; k < 3; k++ {
				v := rng.Intn(20)
				score := 2.0
				if (v < 10) == (loves == 0) {
					score = 4.5
				}
				if v < 10 {
					score += 0.3 * float64(t) // drift up
				}
				b.MustAdd(u, t, v, score)
			}
		}
	}
	return b.Build()
}

func trainDrift(tb testing.TB) *Model {
	tb.Helper()
	cfg := DefaultConfig()
	cfg.Factors = 8
	cfg.Epochs = 60
	cfg.NegativeRatio = 0
	m, _, err := Train(driftWorld(tb), cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

func TestTrainValidation(t *testing.T) {
	good := driftWorld(t)
	bad := []func(*Config){
		func(c *Config) { c.Factors = 0 },
		func(c *Config) { c.Bins = 0 },
		func(c *Config) { c.Epochs = 0 },
		func(c *Config) { c.LearnRate = 0 },
		func(c *Config) { c.Reg = -1 },
		func(c *Config) { c.Beta = -1 },
		func(c *Config) { c.NegativeRatio = -1 },
		func(c *Config) { c.InitStd = 0 },
	}
	for i, mod := range bad {
		cfg := DefaultConfig()
		mod(&cfg)
		if _, _, err := Train(good, cfg); err == nil {
			t.Errorf("case %d: Train accepted invalid config", i)
		}
	}
	if _, _, err := Train(cuboid.NewBuilder(1, 1, 1).Build(), DefaultConfig()); err == nil {
		t.Error("Train accepted empty cuboid")
	}
}

func TestCampsSeparate(t *testing.T) {
	m := trainDrift(t)
	avg := func(u, lo, hi, tt int) float64 {
		var s float64
		for v := lo; v < hi; v++ {
			s += m.Score(u, tt, v)
		}
		return s / float64(hi-lo)
	}
	for _, u := range []int{0, 7, 14} {
		if avg(u, 0, 10, 2) <= avg(u, 10, 20, 2) {
			t.Errorf("camp-A user %d does not prefer camp-A items", u)
		}
	}
	for _, u := range []int{15, 22, 29} {
		if avg(u, 10, 20, 2) <= avg(u, 0, 10, 2) {
			t.Errorf("camp-B user %d does not prefer camp-B items", u)
		}
	}
}

func TestCapturesDrift(t *testing.T) {
	m := trainDrift(t)
	var early, late float64
	for u := 0; u < 30; u++ {
		for v := 0; v < 10; v++ {
			early += m.Score(u, 0, v)
			late += m.Score(u, 5, v)
		}
	}
	if late <= early {
		t.Errorf("upward drift not captured: late %v ≤ early %v", late, early)
	}
}

func TestTrainingErrorDecreases(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Factors = 8
	cfg.Epochs = 40
	cfg.NegativeRatio = 0
	_, st, err := Train(driftWorld(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	first, last := st.LogLikelihood[0], st.Final()
	if last <= first {
		t.Errorf("negated SSE did not improve: first %v, last %v", first, last)
	}
}

func TestScoreAllMatchesScore(t *testing.T) {
	m := trainDrift(t)
	scores := make([]float64, m.NumItems())
	for _, q := range [][2]int{{0, 0}, {20, 5}} {
		m.ScoreAll(q[0], q[1], scores)
		for v := range scores {
			if want := m.Score(q[0], q[1], v); math.Abs(scores[v]-want) > 1e-12 {
				t.Fatalf("ScoreAll(%d,%d)[%d] = %v, Score = %v", q[0], q[1], v, scores[v], want)
			}
		}
	}
}

func TestDevProperties(t *testing.T) {
	m := trainDrift(t)
	u := 0
	// dev is antisymmetric around the user's mean time and grows
	// sublinearly (beta < 1).
	mid := int(m.meanTime[u] + 0.5)
	if d := m.dev(u, mid); math.Abs(d) > 0.8 {
		t.Errorf("dev near mean time = %v, want ≈0", d)
	}
	if m.dev(u, 0) >= 0 {
		t.Error("dev before mean time should be negative")
	}
	if m.dev(u, m.numIntervals-1) <= 0 {
		t.Error("dev after mean time should be positive")
	}
}

func TestBinMapping(t *testing.T) {
	m := trainDrift(t)
	if m.bin(0) != 0 {
		t.Error("first interval should map to bin 0")
	}
	prev := -1
	for tt := 0; tt < m.numIntervals; tt++ {
		b := m.bin(tt)
		if b < prev || b < 0 || b >= m.bins {
			t.Fatalf("bin(%d) = %d not monotone within [0,%d)", tt, b, m.bins)
		}
		prev = b
	}
}

func TestImplicitRankingWithNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	b := cuboid.NewBuilder(30, 3, 20)
	for u := 0; u < 30; u++ {
		base := 0
		if u >= 15 {
			base = 10
		}
		for t := 0; t < 3; t++ {
			for k := 0; k < 3; k++ {
				b.MustAdd(u, t, base+rng.Intn(10), 1)
			}
		}
	}
	cfg := DefaultConfig()
	cfg.Factors = 8
	cfg.Epochs = 60
	cfg.NegativeRatio = 2
	m, _, err := Train(b.Build(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	avg := func(u, lo, hi int) float64 {
		var s float64
		for v := lo; v < hi; v++ {
			s += m.Score(u, 1, v)
		}
		return s / float64(hi-lo)
	}
	for _, u := range []int{0, 14} {
		if avg(u, 0, 10) <= avg(u, 10, 20) {
			t.Errorf("user %d does not rank own-camp items first", u)
		}
	}
}

func TestDeterministic(t *testing.T) {
	data := driftWorld(t)
	cfg := DefaultConfig()
	cfg.Factors = 4
	cfg.Epochs = 5
	m1, _, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, _, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m1.q {
		if m1.q[i] != m2.q[i] {
			t.Fatal("same seed, different factors")
		}
	}
}
