// Package timesvd implements timeSVD++ (Koren, KDD 2009), the
// Netflix-winning temporal matrix factorization the paper's related-work
// section positions TCAM against. It is not part of the paper's own
// comparison (Section 5.2 uses BPTF as the temporal factorization
// baseline) and is provided as an extension, wired into the harness's
// ablation benches.
//
// The implemented form follows Koren's equation (with the implicit-
// feedback |N(u)| term omitted, as is common for top-k adaptations):
//
//	r̂(u,i,t) = μ + b_u + α_u·dev_u(t) + b_i + b_{i,Bin(t)}
//	           + q_i · (p_u + α_{pu}·dev_u(t))
//
// where dev_u(t) = sign(t − t̄_u)·|t − t̄_u|^β captures each user's
// drift away from their mean rating time, b_{i,Bin(t)} is a per-item
// time-bin bias, and α terms scale the user's drift. Training is SGD on
// squared error with L2 regularization; like BPTF, implicit data gets
// uniformly sampled zero-valued negatives so ranking is meaningful.
package timesvd

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"tcam/internal/cuboid"
	"tcam/internal/model"
)

// Config parameterizes timeSVD++ training.
type Config struct {
	// Factors is the latent dimensionality.
	Factors int
	// Bins is the number of item time bins across the interval range.
	Bins int
	// Epochs, LearnRate, Reg are the SGD budget and hyperparameters.
	Epochs    int
	LearnRate float64
	Reg       float64
	// Beta is the drift exponent of dev_u(t).
	Beta float64
	// NegativeRatio adds sampled zero-valued cells per observed cell
	// for implicit data (0 disables).
	NegativeRatio float64
	InitStd       float64
	Seed          int64
}

// DefaultConfig returns Koren-style defaults at a small scale.
func DefaultConfig() Config {
	return Config{
		Factors: 16, Bins: 10, Epochs: 30,
		LearnRate: 0.005, Reg: 0.02, Beta: 0.4,
		NegativeRatio: 1, InitStd: 0.1, Seed: 1,
	}
}

func (c Config) validate(data *cuboid.Cuboid) error {
	switch {
	case c.Factors <= 0:
		return fmt.Errorf("timesvd: Factors must be positive, got %d", c.Factors)
	case c.Bins <= 0:
		return fmt.Errorf("timesvd: Bins must be positive, got %d", c.Bins)
	case c.Epochs <= 0:
		return fmt.Errorf("timesvd: Epochs must be positive, got %d", c.Epochs)
	case c.LearnRate <= 0:
		return fmt.Errorf("timesvd: LearnRate must be positive, got %v", c.LearnRate)
	case c.Reg < 0:
		return fmt.Errorf("timesvd: negative regularization %v", c.Reg)
	case c.Beta < 0:
		return fmt.Errorf("timesvd: negative Beta %v", c.Beta)
	case c.NegativeRatio < 0:
		return fmt.Errorf("timesvd: negative NegativeRatio %v", c.NegativeRatio)
	case c.InitStd <= 0:
		return fmt.Errorf("timesvd: InitStd must be positive, got %v", c.InitStd)
	}
	if data.NNZ() == 0 {
		return errors.New("timesvd: empty training cuboid")
	}
	return nil
}

// Model is a trained timeSVD++.
type Model struct {
	numUsers     int
	numItems     int
	numIntervals int
	factors      int
	bins         int
	beta         float64

	mu       float64   // global mean
	bu       []float64 // user bias
	alphaU   []float64 // user bias drift scale
	bi       []float64 // item bias
	biBin    []float64 // V×Bins item time-bin bias
	p        []float64 // N×D user factors
	alphaP   []float64 // N×D user factor drift scales
	q        []float64 // V×D item factors
	meanTime []float64 // t̄_u per user
}

// Train fits timeSVD++ on the cuboid's cells (scores as ratings, with
// sampled negatives when NegativeRatio > 0).
func Train(data *cuboid.Cuboid, cfg Config) (*Model, model.TrainStats, error) {
	var stats model.TrainStats
	if err := cfg.validate(data); err != nil {
		return nil, stats, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n, V, T, d := data.NumUsers(), data.NumItems(), data.NumIntervals(), cfg.Factors
	m := &Model{
		numUsers: n, numItems: V, numIntervals: T,
		factors: d, bins: cfg.Bins, beta: cfg.Beta,
		bu:     make([]float64, n),
		alphaU: make([]float64, n),
		bi:     make([]float64, V),
		biBin:  make([]float64, V*cfg.Bins),
		p:      make([]float64, n*d),
		alphaP: make([]float64, n*d),
		q:      make([]float64, V*d),
	}
	for i := range m.p {
		m.p[i] = rng.NormFloat64() * cfg.InitStd
	}
	for i := range m.q {
		m.q[i] = rng.NormFloat64() * cfg.InitStd
	}

	cells := buildTrainingCells(data, cfg, rng)
	m.meanTime = userMeanTimes(data, n)
	var total float64
	for _, c := range cells {
		total += c.Score
	}
	m.mu = total / float64(len(cells))

	order := make([]int, len(cells))
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var sse float64
		for _, ci := range order {
			sse += m.sgdStep(cells[ci], cfg)
		}
		// Trace the (negated) training SSE so "higher is better" like
		// the other models' traces.
		stats.LogLikelihood = append(stats.LogLikelihood, -sse)
	}
	stats.Converged = true
	return m, stats, nil
}

// buildTrainingCells copies the observed cells and appends sampled
// negatives.
func buildTrainingCells(data *cuboid.Cuboid, cfg Config, rng *rand.Rand) []cuboid.Cell {
	cells := append([]cuboid.Cell(nil), data.Cells()...)
	nNeg := int(cfg.NegativeRatio * float64(len(cells)))
	if nNeg == 0 {
		return cells
	}
	T, V := int64(data.NumIntervals()), int64(data.NumItems())
	observed := make(map[int64]struct{}, len(cells))
	for _, c := range cells {
		observed[(int64(c.U)*T+int64(c.T))*V+int64(c.V)] = struct{}{}
	}
	for added := 0; added < nNeg; {
		u := rng.Intn(data.NumUsers())
		t := rng.Intn(data.NumIntervals())
		v := rng.Intn(data.NumItems())
		key := (int64(u)*T+int64(t))*V + int64(v)
		if _, ok := observed[key]; ok {
			continue
		}
		observed[key] = struct{}{}
		cells = append(cells, cuboid.Cell{U: int32(u), T: int32(t), V: int32(v), Score: 0})
		added++
	}
	return cells
}

// userMeanTimes returns t̄_u, defaulting to the timeline midpoint for
// users with no ratings.
func userMeanTimes(data *cuboid.Cuboid, n int) []float64 {
	out := make([]float64, n)
	mid := float64(data.NumIntervals()-1) / 2
	ts, _, _ := data.CSR()
	for u := 0; u < n; u++ {
		lo, hi := data.UserSpan(u)
		if hi == lo {
			out[u] = mid
			continue
		}
		var sum float64
		for _, t := range ts[lo:hi] {
			sum += float64(t)
		}
		out[u] = sum / float64(hi-lo)
	}
	return out
}

// dev returns dev_u(t) = sign(t − t̄_u)·|t − t̄_u|^β.
func (m *Model) dev(u, t int) float64 {
	d := float64(t) - m.meanTime[u]
	switch {
	case d > 0:
		return math.Pow(d, m.beta)
	case d < 0:
		return -math.Pow(-d, m.beta)
	default:
		return 0
	}
}

// bin maps an interval onto an item time bin.
func (m *Model) bin(t int) int {
	if m.numIntervals <= 1 {
		return 0
	}
	b := t * m.bins / m.numIntervals
	if b >= m.bins {
		b = m.bins - 1
	}
	return b
}

// sgdStep performs one SGD update and returns the squared error before
// the update.
func (m *Model) sgdStep(cell cuboid.Cell, cfg Config) float64 {
	u, v, t := int(cell.U), int(cell.V), int(cell.T)
	dev := m.dev(u, t)
	bin := m.bin(t)
	d := m.factors
	pu := m.p[u*d : (u+1)*d]
	au := m.alphaP[u*d : (u+1)*d]
	qv := m.q[v*d : (v+1)*d]

	pred := m.mu + m.bu[u] + m.alphaU[u]*dev + m.bi[v] + m.biBin[v*m.bins+bin]
	for f := 0; f < d; f++ {
		pred += qv[f] * (pu[f] + au[f]*dev)
	}
	err := cell.Score - pred
	lr, reg := cfg.LearnRate, cfg.Reg
	m.bu[u] += lr * (err - reg*m.bu[u])
	m.alphaU[u] += lr * (err*dev - reg*m.alphaU[u])
	m.bi[v] += lr * (err - reg*m.bi[v])
	m.biBin[v*m.bins+bin] += lr * (err - reg*m.biBin[v*m.bins+bin])
	for f := 0; f < d; f++ {
		puf, auf, qvf := pu[f], au[f], qv[f]
		pu[f] += lr * (err*qvf - reg*puf)
		au[f] += lr * (err*qvf*dev - reg*auf)
		qv[f] += lr * (err*(puf+auf*dev) - reg*qvf)
	}
	return err * err
}

// Name returns "timeSVD++".
func (m *Model) Name() string { return "timeSVD++" }

// NumItems returns the item-catalog size.
func (m *Model) NumItems() int { return m.numItems }

// Score returns r̂(u, v, t).
func (m *Model) Score(u, t, v int) float64 {
	dev := m.dev(u, t)
	bin := m.bin(t)
	d := m.factors
	pu := m.p[u*d : (u+1)*d]
	au := m.alphaP[u*d : (u+1)*d]
	qv := m.q[v*d : (v+1)*d]
	pred := m.mu + m.bu[u] + m.alphaU[u]*dev + m.bi[v] + m.biBin[v*m.bins+bin]
	for f := 0; f < d; f++ {
		pred += qv[f] * (pu[f] + au[f]*dev)
	}
	return pred
}

// ScoreAll fills scores[v] = r̂(u, v, t) for every item.
func (m *Model) ScoreAll(u, t int, scores []float64) {
	if len(scores) != m.numItems {
		panic(fmt.Sprintf("timesvd: ScoreAll buffer %d, want %d", len(scores), m.numItems))
	}
	dev := m.dev(u, t)
	bin := m.bin(t)
	d := m.factors
	pu := m.p[u*d : (u+1)*d]
	au := m.alphaP[u*d : (u+1)*d]
	base := m.mu + m.bu[u] + m.alphaU[u]*dev
	eff := make([]float64, d)
	for f := 0; f < d; f++ {
		eff[f] = pu[f] + au[f]*dev
	}
	for v := range scores {
		qv := m.q[v*d : (v+1)*d]
		s := base + m.bi[v] + m.biBin[v*m.bins+bin]
		for f := 0; f < d; f++ {
			s += qv[f] * eff[f]
		}
		scores[v] = s
	}
}

var _ model.BulkScorer = (*Model)(nil)
