// Package ttcam implements the topic-based variant of the Temporal
// Context-Aware Mixture model (Section 3.2.2 of the paper). Unlike
// ITCAM, the temporal context of interval t is a multinomial over K2
// shared time-oriented topics, each of which is a multinomial over
// items:
//
//	P(v|θ't) = Σ_x P(v|φ'x)·P(x|θ't)                          (Eq. 12)
//
// so the full likelihood is
//
//	P(v|u,t) = λu·Σ_z P(z|θu)P(v|φz) + (1−λu)·Σ_x P(x|θ't)P(v|φ'x).
//
// Parameters are learned with the EM updates of Equations (13)–(16)
// (plus (8), (9), (11) for the user side). The iteration loop —
// sharding, merge order, convergence, checkpointing — is owned by
// internal/train; this package supplies only the E/M-step math.
//
// Two extensions beyond the paper are included, both from its future
// work list: an optional fixed background topic that absorbs noise
// (Config.Background) and incremental fitting of a new interval's
// temporal context against frozen topics (FitNewInterval).
package ttcam

import (
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"time"

	"tcam/internal/cuboid"
	"tcam/internal/model"
	"tcam/internal/train"
)

// Config parameterizes TTCAM training.
type Config struct {
	// K1 and K2 are the numbers of user-oriented and time-oriented
	// topics (the paper's defaults are 60 and 40).
	K1 int
	K2 int
	// MaxIters bounds EM; Tol is the relative log-likelihood improvement
	// under which training stops early.
	MaxIters int
	Tol      float64
	// MaxWall optionally bounds training wall-clock time (0 = no budget).
	MaxWall time.Duration
	// Seed drives the random initialization.
	Seed int64
	// Workers caps E-step goroutines; non-positive means GOMAXPROCS. It
	// never affects the learned parameters.
	Workers int
	// Shards is the deterministic E-step shard count (0 means
	// train.DefaultShards). It fixes the floating-point summation
	// grouping: runs with equal Shards produce bit-identical parameters
	// regardless of Workers.
	Shards int
	// Smoothing is the additive epsilon for every multinomial
	// normalization.
	Smoothing float64
	// Background, when positive, mixes a fixed empirical item
	// distribution θB into the likelihood with this weight:
	// P(v|u,t) = Background·θB(v) + (1−Background)·(TCAM mixture).
	// This is the noise-filtering extension the paper lists as future
	// work; 0 disables it.
	Background float64
	// Label overrides the model name (the weighted variant reports
	// "W-TTCAM").
	Label string
	// LambdaMass optionally overrides the per-cell masses used by the
	// mixing-weight update (Equation 11), aligned with the training
	// cuboid's Cells() order. It exists as an ablation knob: training
	// topics on the weighted cuboid of Equation (20) while estimating λ
	// on the raw scores isolates the weighting scheme's effect on topic
	// quality from its effect on mixing-weight calibration (on the
	// synthetic worlds, Equation (20) applied verbatim — nil here —
	// recovers the ground-truth λ distribution best).
	LambdaMass []float64
	// Checkpoint configures periodic parameter snapshots and resume; the
	// zero value disables them.
	Checkpoint train.CheckpointConfig
	// Hook, when non-nil, observes every EM iteration.
	Hook func(model.IterStat)
}

// DefaultConfig returns the paper's default topic counts (Section 5.3.2)
// with the harness's standard EM settings.
func DefaultConfig() Config {
	return Config{K1: 60, K2: 40, MaxIters: 50, Tol: 1e-5, Seed: 1, Smoothing: 1e-9}
}

func (c Config) validate(data *cuboid.Cuboid) error {
	switch {
	case c.K1 <= 0 || c.K2 <= 0:
		return fmt.Errorf("ttcam: topic counts must be positive, got K1=%d K2=%d", c.K1, c.K2)
	case c.MaxIters <= 0:
		return fmt.Errorf("ttcam: MaxIters must be positive, got %d", c.MaxIters)
	case c.Smoothing < 0:
		return fmt.Errorf("ttcam: negative smoothing %v", c.Smoothing)
	case c.Background < 0 || c.Background >= 1:
		return fmt.Errorf("ttcam: Background %v outside [0,1)", c.Background)
	}
	if data.NNZ() == 0 {
		return errors.New("ttcam: empty training cuboid")
	}
	if c.LambdaMass != nil && len(c.LambdaMass) != data.NNZ() {
		return fmt.Errorf("ttcam: LambdaMass has %d entries for %d cells", len(c.LambdaMass), data.NNZ())
	}
	return nil
}

// engineConfig translates the model-level knobs into the engine policy.
func (c Config) engineConfig() train.Config {
	return train.Config{
		MaxIters:   c.MaxIters,
		Tol:        c.Tol,
		MaxWall:    c.MaxWall,
		Shards:     c.Shards,
		Workers:    c.Workers,
		Checkpoint: c.Checkpoint,
		Hook:       c.Hook,
	}
}

// Model is a trained TTCAM. Parameter slices are row-major.
type Model struct {
	label string

	numUsers     int
	numIntervals int
	numItems     int
	k1, k2       int

	theta   []float64 // N×K1: P(z|θu)
	phi     []float64 // K1×V: P(v|φz)
	thetaTx []float64 // T×K2: P(x|θ't)
	phiX    []float64 // K2×V: P(v|φ'x)
	lambda  []float64 // N: λu

	backgroundW float64   // λB; 0 when disabled
	background  []float64 // V: θB, empirical item distribution
}

// Train fits TTCAM on the rating cuboid (or the weighted cuboid of
// Equation 20).
func Train(data *cuboid.Cuboid, cfg Config) (*Model, model.TrainStats, error) {
	var stats model.TrainStats
	tr, err := newTrainer(data, cfg)
	if err != nil {
		return nil, stats, err
	}
	stats, err = train.Run(tr, cfg.engineConfig())
	if err != nil {
		return nil, stats, err
	}
	return tr.m, stats, nil
}

// newTrainer validates the config, builds the initialized model and wires
// up the trainer state. It is the shared setup behind Train and the
// single-iteration benchmarks.
func newTrainer(data *cuboid.Cuboid, cfg Config) (*trainer, error) {
	if err := cfg.validate(data); err != nil {
		return nil, err
	}
	n, T, v := data.NumUsers(), data.NumIntervals(), data.NumItems()
	label := cfg.Label
	if label == "" {
		label = "TTCAM"
	}
	m := &Model{
		label:        label,
		numUsers:     n,
		numIntervals: T,
		numItems:     v,
		k1:           cfg.K1,
		k2:           cfg.K2,
		theta:        make([]float64, n*cfg.K1),
		phi:          make([]float64, cfg.K1*v),
		thetaTx:      make([]float64, T*cfg.K2),
		phiX:         make([]float64, cfg.K2*v),
		lambda:       make([]float64, n),
		backgroundW:  cfg.Background,
	}
	m.initialize(data, cfg.Seed)

	tr := &trainer{
		m:      m,
		data:   data,
		cfg:    cfg,
		theta:  make([]float64, len(m.theta)),
		lamNum: make([]float64, n),
		lamDen: make([]float64, n),
		phiT:   make([]float64, len(m.phi)),
		phiXT:  make([]float64, len(m.phiX)),
	}
	tr.refreshTransposes()
	return tr, nil
}

func (m *Model) initialize(data *cuboid.Cuboid, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	fillJitteredRows(rng, m.theta, m.k1)
	fillJitteredRows(rng, m.phi, m.numItems)
	fillJitteredRows(rng, m.thetaTx, m.k2)
	fillJitteredRows(rng, m.phiX, m.numItems)
	for u := range m.lambda {
		m.lambda[u] = 0.5
	}
	if m.backgroundW > 0 {
		m.background = make([]float64, m.numItems)
		for _, cell := range data.Cells() {
			m.background[cell.V] += cell.Score
		}
		model.NormalizeRows(m.background, m.numItems, 1e-9)
	}
}

func fillJitteredRows(rng *rand.Rand, data []float64, cols int) {
	for i := range data {
		data[i] = 1 + 0.5*rng.Float64()
	}
	model.NormalizeRows(data, cols, 0)
}

// trainer adapts the TTCAM E/M-step math to the train.Trainable
// contract. The θ and λ sufficient statistics are user-sharded — every
// shard writes a disjoint row range of one shared slab — so only the
// global φ, φ' and θ' slabs are duplicated per shard and merged.
//
// phiT and phiXT are the E-step's read-side copies of φ and φ' in
// item-major (V×K1 and V×K2) layout, rebuilt — by bit-exact
// transposition — after every M-step and on checkpoint restore. The
// per-cell topic loops then read one contiguous K-length row per matrix
// instead of a stride-V column, and the shard accumulators store their
// φ/φ' statistics in the same item-major layout so the loops' writes
// are contiguous too.
type trainer struct {
	m    *Model
	data *cuboid.Cuboid
	cfg  Config

	theta  []float64 // N×K1, shard s owns rows [lo, hi)
	lamNum []float64 // N
	lamDen []float64 // N
	phiT   []float64 // V×K1: transpose of m.phi
	phiXT  []float64 // V×K2: transpose of m.phiX
}

// refreshTransposes rebuilds the item-major φ/φ' copies from the current
// model parameters. Transposition is pure data movement, so the E-step
// reads exactly the values it would have read from m.phi and m.phiX.
func (tr *trainer) refreshTransposes() {
	train.Transpose(tr.phiT, tr.m.phi, tr.m.k1, tr.m.numItems)
	train.Transpose(tr.phiXT, tr.m.phiX, tr.m.k2, tr.m.numItems)
}

// accum is one shard's sufficient-statistic set: private global slabs
// plus the shard's slice of the shared user-dimension statistics. The φ
// and φ' slabs are item-major, mirroring trainer.phiT/phiXT.
type accum struct {
	tr     *trainer
	lo, hi int

	phiT    []float64 // V×K1
	phiXT   []float64 // V×K2
	thetaTx []float64 // T×K2
	pz      []float64 // user-path posterior scratch, length K1
	px      []float64 // time-path posterior scratch, length K2
	ll      float64
}

func (tr *trainer) NumUsers() int { return tr.m.numUsers }

func (tr *trainer) NewAccum(_, lo, hi int) train.Accum {
	return &accum{
		tr:      tr,
		lo:      lo,
		hi:      hi,
		phiT:    make([]float64, len(tr.m.phi)),
		phiXT:   make([]float64, len(tr.m.phiX)),
		thetaTx: make([]float64, len(tr.m.thetaTx)),
		pz:      make([]float64, tr.m.k1),
		px:      make([]float64, tr.m.k2),
	}
}

// Reset clears the shard's slabs and its disjoint range of the shared
// user-dimension statistics.
//
//tcam:hotpath
func (a *accum) Reset() {
	k1 := a.tr.m.k1
	train.Zero(a.tr.theta[a.lo*k1 : a.hi*k1])
	train.Zero(a.tr.lamNum[a.lo:a.hi])
	train.Zero(a.tr.lamDen[a.lo:a.hi])
	train.Zero(a.phiT)
	train.Zero(a.phiXT)
	train.Zero(a.thetaTx)
	a.ll = 0
}

// Merge folds src's global slabs into the receiver; the user-sharded
// statistics live in one shared slab and need no merging.
//
//tcam:hotpath
func (a *accum) Merge(src train.Accum) {
	s := src.(*accum)
	train.MergeInto(a.phiT, s.phiT)
	train.MergeInto(a.thetaTx, s.thetaTx)
	train.MergeInto(a.phiXT, s.phiXT)
	a.ll += s.ll
}

func (tr *trainer) EStep(a train.Accum) { tr.emUserRange(a.(*accum)) }

// MStep applies Equations (8)–(9), (11), (15)–(16) from the merged
// statistics and returns the log-likelihood under the pre-update
// parameters.
func (tr *trainer) MStep(merged train.Accum) float64 {
	a := merged.(*accum)
	m, cfg := tr.m, tr.cfg
	k1, k2, V := m.k1, m.k2, m.numItems
	copy(m.theta, tr.theta)
	model.NormalizeRows(m.theta, k1, cfg.Smoothing)
	train.Transpose(m.phi, a.phiT, V, k1) // item-major stats back to K1×V
	model.NormalizeRows(m.phi, V, cfg.Smoothing)
	copy(m.thetaTx, a.thetaTx)
	model.NormalizeRows(m.thetaTx, k2, cfg.Smoothing)
	train.Transpose(m.phiX, a.phiXT, V, k2) // item-major stats back to K2×V
	model.NormalizeRows(m.phiX, V, cfg.Smoothing)
	for u := 0; u < m.numUsers; u++ {
		if tr.lamDen[u] > 0 {
			m.lambda[u] = train.ClampLambda(tr.lamNum[u] / tr.lamDen[u])
		}
	}
	tr.refreshTransposes()
	if model.AssertionsEnabled {
		model.AssertRowStochastic("ttcam theta", m.theta, k1, 1e-9)
		model.AssertRowStochastic("ttcam phi", m.phi, V, 1e-9)
		model.AssertRowStochastic("ttcam thetaTx", m.thetaTx, k2, 1e-9)
		model.AssertRowStochastic("ttcam phiX", m.phiX, V, 1e-9)
		model.AssertFiniteIn01("ttcam lambda", m.lambda)
	}
	return a.ll
}

// EncodeParams snapshots the full parameter state (the model wire
// format) for the engine's checkpoints.
func (tr *trainer) EncodeParams(w io.Writer) error { return tr.m.Write(w) }

// DecodeParams restores a checkpoint snapshot into the model being
// trained, rejecting dimension mismatches against the training config.
func (tr *trainer) DecodeParams(r io.Reader) error {
	loaded, err := Read(r)
	if err != nil {
		return err
	}
	m := tr.m
	if loaded.numUsers != m.numUsers || loaded.numIntervals != m.numIntervals ||
		loaded.numItems != m.numItems || loaded.k1 != m.k1 || loaded.k2 != m.k2 {
		return fmt.Errorf("ttcam: checkpoint dimensions %d/%d/%d/K1=%d/K2=%d do not match training config %d/%d/%d/K1=%d/K2=%d",
			loaded.numUsers, loaded.numIntervals, loaded.numItems, loaded.k1, loaded.k2,
			m.numUsers, m.numIntervals, m.numItems, m.k1, m.k2)
	}
	m.theta, m.phi, m.thetaTx, m.phiX, m.lambda = loaded.theta, loaded.phi, loaded.thetaTx, loaded.phiX, loaded.lambda
	m.backgroundW, m.background = loaded.backgroundW, loaded.background
	tr.refreshTransposes()
	return nil
}

var (
	_ train.Trainable      = (*trainer)(nil)
	_ train.Checkpointable = (*trainer)(nil)
)

// emUserRange runs the E-step over one shard's user range [lo, hi),
// accumulating sufficient statistics into the shard's slabs. All
// scratch is pre-sized in the accumulator so the per-iteration inner
// loop never touches the allocator.
//
// The scan is a linear walk of the cuboid's CSR columns — no index
// indirection — and every slab the K1/K2 inner loops touch (θ and θ'
// rows, their accumulator rows, the item-major φ/φ' rows and their
// accumulator rows, posterior scratch) is one contiguous K-length
// block, so the whole per-cell working set stays cache-resident. The
// floating-point operations and their order are exactly those of the
// pre-CSR loop, which is what keeps trained parameters bit-identical.
//
//tcam:hotpath
func (tr *trainer) emUserRange(a *accum) {
	m, cfg := tr.m, tr.cfg
	k1, k2 := m.k1, m.k2
	data := tr.data
	ts, vs, scores := data.CSR()
	phiT := tr.phiT
	phiXT := tr.phiXT
	bw := m.backgroundW
	pz := a.pz
	px := a.px
	var ll float64
	for u := a.lo; u < a.hi; u++ {
		lam := m.lambda[u]
		thetaRow := m.theta[u*k1 : (u+1)*k1]
		thetaAcc := tr.theta[u*k1 : (u+1)*k1]
		lo, hi := data.UserSpan(u)
		for i := lo; i < hi; i++ {
			v, t, w := int(vs[i]), int(ts[i]), scores[i]

			// E-step — Equations (4), (5) and (13).
			phiRow := phiT[v*k1 : (v+1)*k1]
			pu := train.DotInto(pz, thetaRow, phiRow)
			thetaTxRow := m.thetaTx[t*k2 : (t+1)*k2]
			phiXRow := phiXT[v*k2 : (v+1)*k2]
			pt := train.DotInto(px, thetaTxRow, phiXRow)
			mix := lam*pu + (1-lam)*pt
			denom := mix
			var pbg float64 // posterior mass of the background path
			if bw > 0 {
				denom = bw*m.background[v] + (1-bw)*mix
				if denom <= 0 {
					denom = 1e-300
				}
				pbg = bw * m.background[v] / denom
			} else if denom <= 0 {
				denom = 1e-300
			}
			ll += w * math.Log(denom)

			// Mixture-path posteriors, discounted by the background.
			var ps1 float64
			if mix > 0 {
				ps1 = (1 - pbg) * lam * pu / mix
			}
			ps0 := (1 - pbg) - ps1

			// Accumulate numerators of Equations (8)–(9), (11),
			// (15)–(16).
			if pu > 0 && ps1 > 0 {
				train.AddScaledPair(thetaAcc, a.phiT[v*k1:(v+1)*k1], w*ps1/pu, pz)
			}
			if pt > 0 && ps0 > 0 {
				train.AddScaledPair(a.thetaTx[t*k2:(t+1)*k2], a.phiXT[v*k2:(v+1)*k2], w*ps0/pt, px)
			}
			lm := w
			if cfg.LambdaMass != nil {
				lm = cfg.LambdaMass[i]
			}
			tr.lamNum[u] += lm * ps1
			tr.lamDen[u] += lm * (ps1 + ps0)
		}
	}
	a.ll = ll
}

// FitNewInterval estimates the temporal context θ' of a previously
// unseen interval from its ratings alone, holding every other parameter
// (topics, interests, mixing weights) frozen — the partial-EM update an
// online deployment runs when a new interval opens. ratings maps item →
// accumulated score observed so far in the new interval (with the user
// unknown or mixed, the user path is dropped and only the temporal
// mixture is fit). It returns the fitted P(x|θ') vector.
func (m *Model) FitNewInterval(ratings map[int]float64, iters int) []float64 {
	k2, V := m.k2, m.numItems
	thetaNew := make([]float64, k2)
	for x := range thetaNew {
		thetaNew[x] = 1 / float64(k2)
	}
	if len(ratings) == 0 || iters <= 0 {
		return thetaNew
	}
	// Accumulate in ascending item order, not map order: float addition
	// is not associative, so iterating the map directly would make the
	// fitted θ' bits depend on the runtime's randomized iteration and
	// break fold-in bit-identity across runs.
	items := make([]int, 0, len(ratings))
	for v := range ratings {
		items = append(items, v)
	}
	sort.Ints(items)
	acc := make([]float64, k2)
	px := make([]float64, k2)
	for it := 0; it < iters; it++ {
		train.Zero(acc)
		for _, v := range items {
			w := ratings[v]
			if v < 0 || v >= V || w <= 0 {
				continue
			}
			var pt float64
			for x := 0; x < k2; x++ {
				p := thetaNew[x] * m.phiX[x*V+v]
				px[x] = p
				pt += p
			}
			if pt <= 0 {
				continue
			}
			for x := 0; x < k2; x++ {
				acc[x] += w * px[x] / pt
			}
		}
		copy(thetaNew, acc)
		model.NormalizeRows(thetaNew, k2, 1e-12)
	}
	return thetaNew
}

// Name returns the model label ("TTCAM" or "W-TTCAM").
func (m *Model) Name() string { return m.label }

// NumItems returns the item-catalog size.
func (m *Model) NumItems() int { return m.numItems }

// NumUsers returns the user count the model was trained on.
func (m *Model) NumUsers() int { return m.numUsers }

// NumIntervals returns the number of time intervals.
func (m *Model) NumIntervals() int { return m.numIntervals }

// K1 returns the number of user-oriented topics; K2 the time-oriented
// count.
func (m *Model) K1() int { return m.k1 }

// K2 returns the number of time-oriented topics.
func (m *Model) K2() int { return m.k2 }

// Lambda returns λu (Figures 10–11 plot its distribution over users).
func (m *Model) Lambda(u int) float64 { return m.lambda[u] }

// UserInterest returns P(·|θu) over user-oriented topics. Callers must
// not modify the slice.
func (m *Model) UserInterest(u int) []float64 { return m.theta[u*m.k1 : (u+1)*m.k1] }

// UserTopic returns P(·|φz), user-oriented topic z's item distribution.
func (m *Model) UserTopic(z int) []float64 { return m.phi[z*m.numItems : (z+1)*m.numItems] }

// TemporalContext returns P(·|θ't) over time-oriented topics.
func (m *Model) TemporalContext(t int) []float64 { return m.thetaTx[t*m.k2 : (t+1)*m.k2] }

// TimeTopic returns P(·|φ'x), time-oriented topic x's item distribution.
func (m *Model) TimeTopic(x int) []float64 { return m.phiX[x*m.numItems : (x+1)*m.numItems] }

// Score implements the TTCAM likelihood (Equations 1 and 12), including
// the optional background mixture.
//
//tcam:hotpath
func (m *Model) Score(u, t, v int) float64 {
	var pu float64
	thetaRow := m.UserInterest(u)
	for z := 0; z < m.k1; z++ {
		pu += thetaRow[z] * m.phi[z*m.numItems+v]
	}
	var pt float64
	ctxRow := m.TemporalContext(t)
	for x := 0; x < m.k2; x++ {
		pt += ctxRow[x] * m.phiX[x*m.numItems+v]
	}
	lam := m.lambda[u]
	mix := lam*pu + (1-lam)*pt
	if m.backgroundW > 0 {
		return m.backgroundW*m.background[v] + (1-m.backgroundW)*mix
	}
	return mix
}

// ScoreAll fills scores[v] with Score(u, t, v) for every item in one
// pass over the topic matrices. The per-topic weights and accumulation
// order are exactly those of QueryWeightsInto over TopicItems (user
// topics ascending, then time topics, then the background), so results
// stay bit-identical to the index-based scorer — without materializing
// the weight vector.
//
//tcam:hotpath
func (m *Model) ScoreAll(u, t int, scores []float64) {
	if len(scores) != m.numItems {
		panic(fmt.Sprintf("ttcam: ScoreAll buffer %d, want %d", len(scores), m.numItems))
	}
	for v := range scores {
		scores[v] = 0
	}
	lam := m.lambda[u]
	scale := 1.0
	if m.backgroundW > 0 {
		scale = 1 - m.backgroundW
	}
	thetaRow := m.UserInterest(u)
	for z := 0; z < m.k1; z++ {
		wz := scale * lam * thetaRow[z]
		if wz <= 0 {
			continue
		}
		row := m.UserTopic(z)
		for v := range scores {
			scores[v] += wz * row[v]
		}
	}
	ctxRow := m.TemporalContext(t)
	for x := 0; x < m.k2; x++ {
		wz := scale * (1 - lam) * ctxRow[x]
		if wz <= 0 {
			continue
		}
		row := m.TimeTopic(x)
		for v := range scores {
			scores[v] += wz * row[v]
		}
	}
	if m.backgroundW > 0 {
		wz := m.backgroundW
		for v := range scores {
			scores[v] += wz * m.background[v]
		}
	}
}

// NumTopics returns the expanded topic-space size K = K1 + K2 of
// Section 4.1 (plus one background pseudo-topic when enabled).
func (m *Model) NumTopics() int {
	k := m.k1 + m.k2
	if m.backgroundW > 0 {
		k++
	}
	return k
}

// QueryWeights returns ϑq = ⟨λu·θu, (1−λu)·θ't⟩ of Section 4.1 (scaled
// by 1−λB with a trailing λB background entry when enabled).
func (m *Model) QueryWeights(u, t int) []float64 {
	out := make([]float64, m.NumTopics())
	m.QueryWeightsInto(u, t, out)
	return out
}

// QueryWeightsInto is the allocation-free form of QueryWeights: it
// overwrites every entry of out, which must have length NumTopics().
//
//tcam:hotpath
func (m *Model) QueryWeightsInto(u, t int, out []float64) {
	lam := m.lambda[u]
	scale := 1.0
	if m.backgroundW > 0 {
		scale = 1 - m.backgroundW
		out[m.k1+m.k2] = m.backgroundW
	}
	thetaRow := m.UserInterest(u)
	for z := 0; z < m.k1; z++ {
		out[z] = scale * lam * thetaRow[z]
	}
	ctxRow := m.TemporalContext(t)
	for x := 0; x < m.k2; x++ {
		out[m.k1+x] = scale * (1 - lam) * ctxRow[x]
	}
}

// TopicItems returns ϕ_z̃ of Equation (21): user-oriented topics first,
// then time-oriented topics, then the optional background.
//
//tcam:hotpath
func (m *Model) TopicItems(z int) []float64 {
	switch {
	case z < m.k1:
		return m.UserTopic(z)
	case z < m.k1+m.k2:
		return m.TimeTopic(z - m.k1)
	default:
		return m.background
	}
}

var (
	_ model.BulkScorer    = (*Model)(nil)
	_ model.TopicScorer   = (*Model)(nil)
	_ model.QueryWeighter = (*Model)(nil)
)
