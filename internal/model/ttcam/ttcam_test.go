package ttcam

import (
	"math"
	"math/rand"
	"testing"

	"tcam/internal/cuboid"
	"tcam/internal/model"
)

// trendWorld mirrors the itcam test world: users 0..19 are
// interest-driven (stable pet items 0..9, plus filler 10..19), users
// 20..39 follow per-interval hot items 20..39.
func trendWorld(tb testing.TB, seed int64) *cuboid.Cuboid {
	tb.Helper()
	const (
		nUsers     = 40
		nIntervals = 8
		nItems     = 40
	)
	rng := rand.New(rand.NewSource(seed))
	b := cuboid.NewBuilder(nUsers, nIntervals, nItems)
	for u := 0; u < 20; u++ {
		pet := u % 10
		for t := 0; t < nIntervals; t++ {
			b.MustAdd(u, t, pet, 1)
			b.MustAdd(u, t, (pet+1)%10, 1)
			if rng.Float64() < 0.3 {
				b.MustAdd(u, t, 10+rng.Intn(10), 1)
			}
		}
	}
	for u := 20; u < 40; u++ {
		for t := 0; t < nIntervals; t++ {
			hot := 20 + t*2
			b.MustAdd(u, t, hot, 1)
			b.MustAdd(u, t, hot+1, 1)
			if rng.Float64() < 0.3 {
				b.MustAdd(u, t, rng.Intn(20), 1)
			}
		}
	}
	return b.Build()
}

func trainTrend(tb testing.TB, mod func(*Config)) (*Model, model.TrainStats) {
	tb.Helper()
	cfg := DefaultConfig()
	cfg.K1 = 12
	cfg.K2 = 8
	cfg.MaxIters = 60
	cfg.Workers = 2
	if mod != nil {
		mod(&cfg)
	}
	m, st, err := Train(trendWorld(tb, 7), cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return m, st
}

func TestTrainValidation(t *testing.T) {
	good := trendWorld(t, 1)
	tests := []struct {
		name string
		data *cuboid.Cuboid
		mod  func(*Config)
	}{
		{"zero K1", good, func(c *Config) { c.K1 = 0 }},
		{"zero K2", good, func(c *Config) { c.K2 = 0 }},
		{"zero iters", good, func(c *Config) { c.MaxIters = 0 }},
		{"negative smoothing", good, func(c *Config) { c.Smoothing = -1 }},
		{"background 1", good, func(c *Config) { c.Background = 1 }},
		{"negative background", good, func(c *Config) { c.Background = -0.1 }},
		{"empty cuboid", cuboid.NewBuilder(2, 2, 2).Build(), nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			if tt.mod != nil {
				tt.mod(&cfg)
			}
			if _, _, err := Train(tt.data, cfg); err == nil {
				t.Error("Train accepted invalid input")
			}
		})
	}
}

func TestLogLikelihoodMonotone(t *testing.T) {
	for _, bg := range []float64{0, 0.1} {
		_, st := trainTrend(t, func(c *Config) { c.Background = bg })
		for i := 1; i < st.Iterations(); i++ {
			prev, cur := st.LogLikelihood[i-1], st.LogLikelihood[i]
			if cur < prev-math.Abs(prev)*1e-8-1e-8 {
				t.Fatalf("bg=%v: log-likelihood decreased at iter %d: %v -> %v", bg, i, prev, cur)
			}
		}
	}
}

func TestDistributionsNormalized(t *testing.T) {
	m, _ := trainTrend(t, nil)
	checkSimplex := func(name string, p []float64) {
		t.Helper()
		var sum float64
		for _, x := range p {
			if x < 0 {
				t.Fatalf("%s has negative entry %v", name, x)
			}
			sum += x
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("%s sums to %v", name, sum)
		}
	}
	for u := 0; u < m.NumUsers(); u++ {
		checkSimplex("theta_u", m.UserInterest(u))
	}
	for z := 0; z < m.K1(); z++ {
		checkSimplex("phi_z", m.UserTopic(z))
	}
	for tt := 0; tt < m.NumIntervals(); tt++ {
		checkSimplex("theta'_t", m.TemporalContext(tt))
	}
	for x := 0; x < m.K2(); x++ {
		checkSimplex("phi'_x", m.TimeTopic(x))
	}
}

func TestLambdaSeparatesPopulations(t *testing.T) {
	m, _ := trainTrend(t, nil)
	var interest, trend float64
	for u := 0; u < 20; u++ {
		interest += m.Lambda(u)
	}
	for u := 20; u < 40; u++ {
		trend += m.Lambda(u)
	}
	if interest/20 <= trend/20 {
		t.Errorf("mean λ interest-driven %v ≤ trend-driven %v", interest/20, trend/20)
	}
}

func TestScoreAllMatchesScore(t *testing.T) {
	for _, bg := range []float64{0, 0.15} {
		m, _ := trainTrend(t, func(c *Config) { c.Background = bg })
		scores := make([]float64, m.NumItems())
		for _, q := range [][2]int{{0, 0}, {25, 3}, {39, 7}} {
			u, tt := q[0], q[1]
			m.ScoreAll(u, tt, scores)
			for v := 0; v < m.NumItems(); v++ {
				if want := m.Score(u, tt, v); math.Abs(scores[v]-want) > 1e-12 {
					t.Fatalf("bg=%v: ScoreAll(%d,%d)[%d] = %v, Score = %v", bg, u, tt, v, scores[v], want)
				}
			}
		}
	}
}

func TestTopicDecompositionMatchesScore(t *testing.T) {
	for _, bg := range []float64{0, 0.15} {
		m, _ := trainTrend(t, func(c *Config) { c.Background = bg })
		wantTopics := m.K1() + m.K2()
		if bg > 0 {
			wantTopics++
		}
		if m.NumTopics() != wantTopics {
			t.Fatalf("NumTopics = %d, want %d", m.NumTopics(), wantTopics)
		}
		for _, q := range [][2]int{{3, 1}, {30, 5}} {
			u, tt := q[0], q[1]
			w := m.QueryWeights(u, tt)
			var wsum float64
			for _, x := range w {
				wsum += x
			}
			if math.Abs(wsum-1) > 1e-9 {
				t.Fatalf("query weights sum to %v", wsum)
			}
			for v := 0; v < m.NumItems(); v += 7 {
				var s float64
				for z, wz := range w {
					if wz == 0 {
						continue
					}
					s += wz * m.TopicItems(z)[v]
				}
				if want := m.Score(u, tt, v); math.Abs(s-want) > 1e-10 {
					t.Fatalf("bg=%v: decomposition %v != Score %v at (u=%d,t=%d,v=%d)", bg, s, want, u, tt, v)
				}
			}
		}
	}
}

func TestTrendUsersRankHotItems(t *testing.T) {
	m, _ := trainTrend(t, nil)
	hot4 := 20 + 4*2
	if m.Score(25, 4, hot4) <= m.Score(25, 4, 15) {
		t.Error("hot item of interval 4 not promoted for trend user at t=4")
	}
	if m.Score(0, 4, 0) <= m.Score(0, 4, hot4) {
		t.Error("pet item of interest user not promoted over hot item")
	}
}

func TestDeterministicAndParallelConsistent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.K1, cfg.K2 = 6, 4
	cfg.MaxIters = 10
	data := trendWorld(t, 3)
	m1, st1, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, st2, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st1.Final() != st2.Final() {
		t.Errorf("same seed, different final LL: %v vs %v", st1.Final(), st2.Final())
	}
	cfg.Workers = 4
	m4, _, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m1.phiX {
		if math.Abs(m1.phiX[i]-m4.phiX[i]) > 1e-9 {
			t.Fatalf("parallel phiX diverges at %d", i)
		}
	}
	_ = m2
}

func TestFitNewInterval(t *testing.T) {
	m, _ := trainTrend(t, nil)
	// Find which time topic owns interval 4's hot pair, then feed a
	// fresh pseudo-interval containing exactly that pair: the fitted θ'
	// must concentrate on the same topic as the trained interval 4.
	hot4 := 20 + 4*2
	fitted := m.FitNewInterval(map[int]float64{hot4: 5, hot4 + 1: 5}, 30)
	var sum float64
	for _, x := range fitted {
		if x < 0 {
			t.Fatalf("fitted theta has negative entry %v", x)
		}
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("fitted theta sums to %v", sum)
	}
	bestFit := argmax(fitted)
	bestTrained := argmax(m.TemporalContext(4))
	if bestFit != bestTrained {
		t.Errorf("fitted interval picked topic %d, trained interval 4 uses %d", bestFit, bestTrained)
	}
	// Degenerate inputs return uniform.
	uniform := m.FitNewInterval(nil, 10)
	for _, x := range uniform {
		if math.Abs(x-1/float64(m.K2())) > 1e-12 {
			t.Fatalf("empty fit not uniform: %v", uniform)
		}
	}
	// Out-of-range and non-positive entries are ignored, not fatal.
	_ = m.FitNewInterval(map[int]float64{-1: 1, 10_000: 2, hot4: 0}, 5)
}

func argmax(xs []float64) int {
	best, arg := math.Inf(-1), -1
	for i, x := range xs {
		if x > best {
			best, arg = x, i
		}
	}
	return arg
}

func TestBackgroundAbsorbsPopularItems(t *testing.T) {
	// With a strong background, uniform-popular filler items should lean
	// on the background rather than consuming topic mass, so time topics
	// should concentrate more sharply (lower entropy) than without.
	entropyOf := func(p []float64) float64 {
		var h float64
		for _, x := range p {
			if x > 0 {
				h -= x * math.Log(x)
			}
		}
		return h
	}
	mPlain, _ := trainTrend(t, nil)
	mBg, _ := trainTrend(t, func(c *Config) { c.Background = 0.2 })
	var hPlain, hBg float64
	for x := 0; x < mPlain.K2(); x++ {
		hPlain += entropyOf(mPlain.TimeTopic(x))
		hBg += entropyOf(mBg.TimeTopic(x))
	}
	if hBg > hPlain*1.1 {
		t.Errorf("background topics not sharper: entropy %v vs plain %v", hBg, hPlain)
	}
}
