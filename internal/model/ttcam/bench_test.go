package ttcam

import (
	"math/rand"
	"testing"

	"tcam/internal/cuboid"
	"tcam/internal/model"
	"tcam/internal/train"
)

// benchCuboid builds the deterministic training cuboid behind the EM
// benchmarks: 2 000 users × 12 intervals × 2 000 items with ~40 ratings
// per user (≈78k nonzero cells after merging), sized so the φ/φ' slabs
// dwarf L2 and the benchmark actually exercises the memory layout.
func benchCuboid(tb testing.TB) *cuboid.Cuboid {
	tb.Helper()
	const nu, nt, nv = 2000, 12, 2000
	rng := rand.New(rand.NewSource(7))
	b := cuboid.NewBuilder(nu, nt, nv)
	for u := 0; u < nu; u++ {
		for r := 0; r < 40; r++ {
			b.MustAdd(u, rng.Intn(nt), rng.Intn(nv), 1+float64(r%3))
		}
	}
	return b.Build()
}

// benchAccums cuts the user range into train.DefaultShards contiguous
// shards exactly as the engine does, so benchmarked iterations use the
// production summation grouping.
func benchAccums(tb testing.TB, tr *trainer) []train.Accum {
	tb.Helper()
	n := tr.NumUsers()
	shards := train.DefaultShards
	if shards > n {
		shards = n
	}
	chunk := (n + shards - 1) / shards
	var accums []train.Accum
	for lo, s := 0, 0; lo < n; lo, s = lo+chunk, s+1 {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		accums = append(accums, tr.NewAccum(s, lo, hi))
	}
	return accums
}

func benchIteration(b *testing.B, cfg Config) {
	data := benchCuboid(b)
	tr, err := newTrainer(data, cfg)
	if err != nil {
		b.Fatal(err)
	}
	accums := benchAccums(b, tr)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, a := range accums {
			a.Reset()
		}
		for _, a := range accums {
			tr.EStep(a)
		}
		for j := 1; j < len(accums); j++ {
			accums[0].Merge(accums[j])
		}
		tr.MStep(accums[0])
	}
	b.StopTimer()
	b.ReportMetric(float64(data.NNZ())*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
}

// BenchmarkEMIteration measures one full EM iteration — shard resets,
// E-step scans, the ordered accumulator merge and the M-step — on the
// TTCAM trainer. Steady state must be allocation-free; the headline
// metric is cells/s (nonzero cuboid cells processed per second).
func BenchmarkEMIteration(b *testing.B) {
	cfg := DefaultConfig()
	cfg.K1, cfg.K2 = 40, 32
	benchIteration(b, cfg)
}

// BenchmarkEMIterationBackground is the same iteration with the fixed
// background topic enabled, the variant's extra per-cell branch.
func BenchmarkEMIterationBackground(b *testing.B) {
	cfg := DefaultConfig()
	cfg.K1, cfg.K2 = 40, 32
	cfg.Background = 0.1
	benchIteration(b, cfg)
}

// BenchmarkEMIterationParallel is BenchmarkEMIteration with the E-step
// shards fanned across GOMAXPROCS workers, exactly as the training
// engine's shard runner does. Run with -cpu 1,2,4,8 for the scaling
// curve recorded in BENCH_train.json; the merge and M-step stay serial,
// so the curve exposes the Amdahl ceiling of the current split.
func BenchmarkEMIterationParallel(b *testing.B) {
	data := benchCuboid(b)
	cfg := DefaultConfig()
	cfg.K1, cfg.K2 = 40, 32
	tr, err := newTrainer(data, cfg)
	if err != nil {
		b.Fatal(err)
	}
	accums := benchAccums(b, tr)
	workers := model.Workers(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, a := range accums {
			a.Reset()
		}
		model.ParallelRanges(len(accums), workers, func(_, lo, hi int) {
			for s := lo; s < hi; s++ {
				tr.EStep(accums[s])
			}
		})
		for j := 1; j < len(accums); j++ {
			accums[0].Merge(accums[j])
		}
		tr.MStep(accums[0])
	}
	b.StopTimer()
	b.ReportMetric(float64(data.NNZ())*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
}
