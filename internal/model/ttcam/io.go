package ttcam

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
)

// wire is the gob format of a trained TTCAM.
type wire struct {
	Label        string
	NumUsers     int
	NumIntervals int
	NumItems     int
	K1, K2       int
	Theta        []float64
	Phi          []float64
	ThetaTx      []float64
	PhiX         []float64
	Lambda       []float64
	BackgroundW  float64
	Background   []float64
}

// Write serializes the trained model to w in gob format.
func (m *Model) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := gob.NewEncoder(bw)
	if err := enc.Encode(&wire{
		Label:        m.label,
		NumUsers:     m.numUsers,
		NumIntervals: m.numIntervals,
		NumItems:     m.numItems,
		K1:           m.k1,
		K2:           m.k2,
		Theta:        m.theta,
		Phi:          m.phi,
		ThetaTx:      m.thetaTx,
		PhiX:         m.phiX,
		Lambda:       m.lambda,
		BackgroundW:  m.backgroundW,
		Background:   m.background,
	}); err != nil {
		return fmt.Errorf("ttcam: encode: %w", err)
	}
	return bw.Flush()
}

// Read deserializes a model written with Write, validating dimensions.
func Read(r io.Reader) (*Model, error) {
	var w wire
	if err := gob.NewDecoder(bufio.NewReader(r)).Decode(&w); err != nil {
		return nil, fmt.Errorf("ttcam: decode: %w", err)
	}
	if w.NumUsers <= 0 || w.NumIntervals <= 0 || w.NumItems <= 0 || w.K1 <= 0 || w.K2 <= 0 {
		return nil, fmt.Errorf("ttcam: corrupt dimensions %d/%d/%d/K1=%d/K2=%d",
			w.NumUsers, w.NumIntervals, w.NumItems, w.K1, w.K2)
	}
	if len(w.Theta) != w.NumUsers*w.K1 || len(w.Phi) != w.K1*w.NumItems ||
		len(w.ThetaTx) != w.NumIntervals*w.K2 || len(w.PhiX) != w.K2*w.NumItems ||
		len(w.Lambda) != w.NumUsers {
		return nil, fmt.Errorf("ttcam: parameter lengths inconsistent with dimensions")
	}
	if w.BackgroundW > 0 && len(w.Background) != w.NumItems {
		return nil, fmt.Errorf("ttcam: background length %d, want %d", len(w.Background), w.NumItems)
	}
	return &Model{
		label:        w.Label,
		numUsers:     w.NumUsers,
		numIntervals: w.NumIntervals,
		numItems:     w.NumItems,
		k1:           w.K1,
		k2:           w.K2,
		theta:        w.Theta,
		phi:          w.Phi,
		thetaTx:      w.ThetaTx,
		phiX:         w.PhiX,
		lambda:       w.Lambda,
		backgroundW:  w.BackgroundW,
		background:   w.Background,
	}, nil
}
