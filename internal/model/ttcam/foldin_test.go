package ttcam

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"strconv"
	"testing"

	"tcam/internal/cuboid"
	"tcam/internal/ingest"
)

// foldBootWorld is the frozen pre-stream dataset behind
// testdata/foldin_model.gob: the first 20 users of the engine world.
func foldBootWorld(tb testing.TB) *cuboid.Cuboid {
	tb.Helper()
	b := cuboid.NewBuilder(20, 6, 25)
	for u := 0; u < 20; u++ {
		for t := 0; t < 6; t++ {
			b.MustAdd(u, t, (u*3+t*7)%25, 1+float64((u+t)%4))
			b.MustAdd(u, t, (u+t*t)%25, 1)
			if (u+t)%3 == 0 {
				b.MustAdd(u, t, (u*5+t)%25, 2)
			}
		}
	}
	return b.Build()
}

// foldStream is the deterministic event stream that introduces users
// 20..29; IDs encode dense indices and Time is the interval directly.
func foldStream(tb testing.TB) []ingest.Record {
	tb.Helper()
	var recs []ingest.Record
	for u := 20; u < 30; u++ {
		for t := 0; t < 6; t++ {
			recs = append(recs, ingest.Record{
				User: fmt.Sprintf("u%02d", u), Item: fmt.Sprintf("v%02d", (u*3+t*7)%25),
				Time: int64(t), Score: 1 + float64((u+t)%4),
			})
			recs = append(recs, ingest.Record{
				User: fmt.Sprintf("u%02d", u), Item: fmt.Sprintf("v%02d", (u+t*t)%25),
				Time: int64(t), Score: 1,
			})
		}
	}
	return recs
}

// foldGrownWorld replays the stream through a real ingest log and
// extends the boot cuboid with ApplyDelta, as the server's updater does.
func foldGrownWorld(tb testing.TB) *cuboid.Cuboid {
	tb.Helper()
	log, err := ingest.Open(tb.TempDir())
	if err != nil {
		tb.Fatal(err)
	}
	recs := foldStream(tb)
	if _, err := log.Append(recs[:len(recs)/2]...); err != nil {
		tb.Fatal(err)
	}
	if _, err := log.Append(recs[len(recs)/2:]...); err != nil {
		tb.Fatal(err)
	}
	boot := foldBootWorld(tb)
	d := cuboid.NewDelta(30, 6, 25)
	if err := log.Replay(0, func(_ int64, r ingest.Record) error {
		u, err := strconv.Atoi(r.User[1:])
		if err != nil {
			return err
		}
		v, err := strconv.Atoi(r.Item[1:])
		if err != nil {
			return err
		}
		return d.Add(u, int(r.Time), v, r.Score)
	}); err != nil {
		tb.Fatal(err)
	}
	grown, err := boot.ApplyDelta(d)
	if err != nil {
		tb.Fatal(err)
	}
	return grown
}

func foldBootModel(tb testing.TB, background float64) *Model {
	tb.Helper()
	cfg := engineConfig()
	cfg.Background = background
	m, _, err := Train(foldBootWorld(tb), cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

func foldConfig() FoldInConfig {
	return FoldInConfig{Iters: 3, Smoothing: 1e-9, Shards: 2}
}

// extendUniform replicates FoldInUsers' initialization — test-side copy
// so the comparator cannot share code with the path under test.
func extendUniform(m *Model, n int) *Model {
	out := m.clone()
	oldN := m.numUsers
	out.numUsers = n
	theta := make([]float64, n*m.k1)
	copy(theta, m.theta)
	for i := oldN * m.k1; i < len(theta); i++ {
		theta[i] = 1 / float64(m.k1)
	}
	out.theta = theta
	lambda := make([]float64, n)
	copy(lambda, m.lambda)
	for u := oldN; u < n; u++ {
		lambda[u] = 0.5
	}
	out.lambda = lambda
	return out
}

// batchReference runs iters rounds of single-shard batch EM over ALL
// users of data starting from boot extended with uniform new rows, with
// globals frozen (updateGlobals=false, the regime fold-in must match
// bit-for-bit) or the full M-step (true, the regime it drifts from).
func batchReference(tb testing.TB, boot *Model, data *cuboid.Cuboid, iters int, updateGlobals bool) *Model {
	tb.Helper()
	n := data.NumUsers()
	m := extendUniform(boot, n)
	tr := &trainer{
		m:      m,
		data:   data,
		cfg:    Config{K1: m.k1, K2: m.k2, MaxIters: 1, Smoothing: 1e-9, Background: m.backgroundW},
		theta:  make([]float64, len(m.theta)),
		lamNum: make([]float64, n),
		lamDen: make([]float64, n),
		phiT:   make([]float64, len(m.phi)),
		phiXT:  make([]float64, len(m.phiX)),
	}
	tr.refreshTransposes()
	acc := tr.NewAccum(0, 0, n).(*accum)
	for it := 0; it < iters; it++ {
		acc.Reset()
		tr.EStep(acc)
		if updateGlobals {
			tr.MStep(acc)
		} else {
			tr.FoldStep(acc, 0, n)
		}
	}
	return m
}

// TestFoldInBitIdenticalToRestrictedBatch is the fold-in guarantee for
// TTCAM, checked for both the plain and background-mixture variants and
// across shard/worker splits.
func TestFoldInBitIdenticalToRestrictedBatch(t *testing.T) {
	for _, bg := range []float64{0, 0.1} {
		t.Run(fmt.Sprintf("background=%v", bg), func(t *testing.T) {
			boot := foldBootModel(t, bg)
			grown := foldGrownWorld(t)
			const oldN = 20
			cfg := foldConfig()
			want := batchReference(t, boot, grown, cfg.Iters, false)

			for _, shards := range []int{1, 2, 4} {
				for _, workers := range []int{1, 8} {
					cfg := cfg
					cfg.Shards, cfg.Workers = shards, workers
					got, err := boot.FoldInUsers(grown, cfg)
					if err != nil {
						t.Fatalf("FoldInUsers(shards=%d, workers=%d): %v", shards, workers, err)
					}
					label := fmt.Sprintf("shards=%d workers=%d", shards, workers)
					if !bitsEqual(got.theta[oldN*got.k1:], want.theta[oldN*want.k1:]) {
						t.Errorf("%s: folded theta rows differ from restricted batch EM", label)
					}
					if !bitsEqual(got.lambda[oldN:], want.lambda[oldN:]) {
						t.Errorf("%s: folded lambda differs from restricted batch EM", label)
					}
					if !bitsEqual(got.theta[:oldN*got.k1], boot.theta) ||
						!bitsEqual(got.lambda[:oldN], boot.lambda) ||
						!bitsEqual(got.phi, boot.phi) || !bitsEqual(got.thetaTx, boot.thetaTx) ||
						!bitsEqual(got.phiX, boot.phiX) || !bitsEqual(got.background, boot.background) {
						t.Errorf("%s: fold-in mutated frozen parameters", label)
					}
				}
			}
		})
	}
}

// TestFoldInFixture pins the stream → ingest replay → ApplyDelta →
// FoldInUsers pipeline to a committed gob fixture (background variant,
// so the fourth mixture path is exercised too). Regenerate with
// TCAM_UPDATE_FIXTURES=1.
func TestFoldInFixture(t *testing.T) {
	boot := foldBootModel(t, 0.1)
	got, err := boot.FoldInUsers(foldGrownWorld(t), foldConfig())
	if err != nil {
		t.Fatal(err)
	}
	const path = "testdata/foldin_model.gob"
	if os.Getenv("TCAM_UPDATE_FIXTURES") != "" {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := got.Write(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		t.Skip("fixture regenerated")
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	want, err := Read(f)
	if err != nil {
		t.Fatal(err)
	}
	assertSameModel(t, "fold-in fixture", got, want)
}

// TestFoldInDriftFromFullBatch: once real batch EM updates the global
// topics, the folded interests drift — nonzero but bounded.
func TestFoldInDriftFromFullBatch(t *testing.T) {
	boot := foldBootModel(t, 0)
	grown := foldGrownWorld(t)
	const oldN = 20
	cfg := foldConfig()
	folded, err := boot.FoldInUsers(grown, cfg)
	if err != nil {
		t.Fatal(err)
	}
	full := batchReference(t, boot, grown, cfg.Iters, true)

	var totalL1 float64
	k1 := folded.k1
	for u := oldN; u < folded.numUsers; u++ {
		for z := 0; z < k1; z++ {
			totalL1 += math.Abs(folded.theta[u*k1+z] - full.theta[u*k1+z])
		}
	}
	mean := totalL1 / float64(folded.numUsers-oldN)
	if mean == 0 {
		t.Error("fold-in and full batch EM agree exactly after multiple rounds; the drift metric is vacuous")
	}
	if mean > 0.5 {
		t.Errorf("mean per-user theta L1 drift %v exceeds 0.5; fold-in has diverged from batch EM", mean)
	}
	t.Logf("mean per-user theta L1 drift vs full batch EM: %.6f", mean)
}

func TestFoldInValidation(t *testing.T) {
	boot := foldBootModel(t, 0)
	cfg := foldConfig()
	if _, err := boot.FoldInUsers(cuboid.NewBuilder(30, 7, 25).Build(), cfg); err == nil {
		t.Error("FoldInUsers accepted a cuboid with mismatched intervals")
	}
	if _, err := boot.FoldInUsers(cuboid.NewBuilder(30, 6, 26).Build(), cfg); err == nil {
		t.Error("FoldInUsers accepted a cuboid with mismatched items")
	}
	if _, err := boot.FoldInUsers(cuboid.NewBuilder(10, 6, 25).Build(), cfg); err == nil {
		t.Error("FoldInUsers accepted a shrinking user dimension")
	}
	same, err := boot.FoldInUsers(foldBootWorld(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertSameModel(t, "no-op fold-in", same, boot)
	cfg.Iters = 0
	if _, err := boot.FoldInUsers(foldGrownWorld(t), cfg); err == nil {
		t.Error("FoldInUsers accepted Iters=0")
	}
}

func TestGrowAddsIntervalAndItems(t *testing.T) {
	boot := foldBootModel(t, 0.1)
	// New interval 6's context over the K2 time topics, fitted from its
	// ratings; items are capped to the trained catalog inside the fit.
	ctx := boot.FitNewInterval(map[int]float64{3: 2, 7: 1, 11: 4}, 5)
	grownM, err := boot.Grow(7, 28, [][]float64{ctx})
	if err != nil {
		t.Fatal(err)
	}
	if grownM.NumIntervals() != 7 || grownM.NumItems() != 28 || grownM.NumUsers() != boot.NumUsers() {
		t.Fatalf("grown dims %d users × %d intervals × %d items", grownM.NumUsers(), grownM.NumIntervals(), grownM.NumItems())
	}
	// Old scores are preserved bit-for-bit.
	for u := 0; u < boot.numUsers; u += 7 {
		for tt := 0; tt < 6; tt++ {
			for v := 0; v < 25; v += 5 {
				if math.Float64bits(grownM.Score(u, tt, v)) != math.Float64bits(boot.Score(u, tt, v)) {
					t.Fatalf("Score(%d,%d,%d) changed after Grow", u, tt, v)
				}
			}
		}
	}
	// The new interval scores old items through its fitted context.
	if grownM.Score(0, 6, 3) <= 0 {
		t.Error("new interval gives no mass to an item its context observed")
	}
	// TTCAM's structural limitation: a brand-new item has zero mass under
	// the frozen time topics, in every interval, until a full retrain.
	for tt := 0; tt < 7; tt++ {
		if got := grownM.Score(0, tt, 26); got != 0 {
			t.Errorf("new item scored %v in interval %d under frozen time topics", got, tt)
		}
	}
	// The grown model round-trips the wire format.
	var buf bytes.Buffer
	if err := grownM.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameModel(t, "grown round-trip", back, grownM)

	// Validation.
	if _, err := boot.Grow(7, 24, [][]float64{ctx}); err == nil {
		t.Error("Grow accepted an item shrink")
	}
	if _, err := boot.Grow(8, 28, [][]float64{ctx}); err == nil {
		t.Error("Grow accepted an interval count without matching contexts")
	}
	if _, err := boot.Grow(7, 28, [][]float64{ctx[:2]}); err == nil {
		t.Error("Grow accepted a short context row")
	}
}
