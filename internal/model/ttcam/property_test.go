package ttcam

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tcam/internal/cuboid"
)

// randomWorld builds a random small cuboid from a seed.
func randomWorld(seed int64) *cuboid.Cuboid {
	r := rand.New(rand.NewSource(seed))
	nu, nt, nv := 4+r.Intn(10), 2+r.Intn(5), 5+r.Intn(15)
	b := cuboid.NewBuilder(nu, nt, nv)
	n := 20 + r.Intn(120)
	for i := 0; i < n; i++ {
		b.MustAdd(r.Intn(nu), r.Intn(nt), r.Intn(nv), 0.5+2*r.Float64())
	}
	return b.Build()
}

// Property: on arbitrary small worlds, EM keeps every distribution on
// the simplex and the log-likelihood non-decreasing.
func TestEMInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		data := randomWorld(seed)
		cfg := DefaultConfig()
		cfg.K1, cfg.K2, cfg.MaxIters = 4, 3, 8
		cfg.Seed = seed
		m, st, err := Train(data, cfg)
		if err != nil {
			return false
		}
		for i := 1; i < st.Iterations(); i++ {
			prev, cur := st.LogLikelihood[i-1], st.LogLikelihood[i]
			if cur < prev-math.Abs(prev)*1e-8-1e-8 {
				return false
			}
		}
		onSimplex := func(p []float64) bool {
			var sum float64
			for _, x := range p {
				if x < 0 || math.IsNaN(x) {
					return false
				}
				sum += x
			}
			return math.Abs(sum-1) < 1e-6
		}
		for u := 0; u < m.NumUsers(); u++ {
			if !onSimplex(m.UserInterest(u)) {
				return false
			}
			if l := m.Lambda(u); l < 0 || l > 1 {
				return false
			}
		}
		for z := 0; z < m.K1(); z++ {
			if !onSimplex(m.UserTopic(z)) {
				return false
			}
		}
		for x := 0; x < m.K2(); x++ {
			if !onSimplex(m.TimeTopic(x)) {
				return false
			}
		}
		for tt := 0; tt < m.NumIntervals(); tt++ {
			if !onSimplex(m.TemporalContext(tt)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: scores are valid probabilities (non-negative, and summing
// over items to one for any (u, t)).
func TestScoreIsDistributionProperty(t *testing.T) {
	f := func(seed int64) bool {
		data := randomWorld(seed)
		cfg := DefaultConfig()
		cfg.K1, cfg.K2, cfg.MaxIters = 3, 3, 5
		m, _, err := Train(data, cfg)
		if err != nil {
			return false
		}
		scores := make([]float64, m.NumItems())
		for u := 0; u < m.NumUsers(); u += 3 {
			for tt := 0; tt < m.NumIntervals(); tt++ {
				m.ScoreAll(u, tt, scores)
				var sum float64
				for _, s := range scores {
					if s < 0 || math.IsNaN(s) {
						return false
					}
					sum += s
				}
				if math.Abs(sum-1) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: LambdaMass with the training scores themselves is a no-op.
func TestLambdaMassIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		data := randomWorld(seed)
		cfg := DefaultConfig()
		cfg.K1, cfg.K2, cfg.MaxIters = 3, 3, 6
		m1, _, err := Train(data, cfg)
		if err != nil {
			return false
		}
		mass := make([]float64, data.NNZ())
		for i, cell := range data.Cells() {
			mass[i] = cell.Score
		}
		cfg.LambdaMass = mass
		m2, _, err := Train(data, cfg)
		if err != nil {
			return false
		}
		for u := 0; u < m1.NumUsers(); u++ {
			if m1.Lambda(u) != m2.Lambda(u) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestLambdaMassValidation(t *testing.T) {
	data := randomWorld(1)
	cfg := DefaultConfig()
	cfg.K1, cfg.K2 = 3, 3
	cfg.LambdaMass = []float64{1, 2} // wrong length
	if _, _, err := Train(data, cfg); err == nil {
		t.Error("Train accepted mismatched LambdaMass")
	}
}
