package ttcam

// Incremental model evolution for the streaming ingest loop, mirroring
// the itcam package: Grow widens the interval/item dimensions against
// frozen parameters and FoldInUsers fits new users' θu/λu by partial
// EM with every global parameter frozen. The new-interval estimator is
// the pre-existing FitNewInterval (its fitted rows are the θ't entries
// Grow appends). Neither method mutates the receiver — each returns an
// extended copy, so the boot model stays a frozen base the updater can
// re-derive every snapshot from.

import (
	"fmt"

	"tcam/internal/cuboid"
	"tcam/internal/model"
	"tcam/internal/train"
)

// FoldInConfig parameterizes FoldInUsers.
type FoldInConfig struct {
	// Iters is the number of partial-EM rounds for the new users'
	// interests and mixing weights.
	Iters int
	// Smoothing is the additive epsilon for the θ row normalization,
	// matching the batch trainer's Config.Smoothing.
	Smoothing float64
	// Shards/Workers mirror the batch trainer's knobs; neither affects
	// the folded parameters (per-user statistics live in private rows).
	Shards  int
	Workers int
}

// DefaultFoldInConfig mirrors DefaultConfig's smoothing with a short
// partial-EM budget.
func DefaultFoldInConfig() FoldInConfig {
	return FoldInConfig{Iters: 5, Smoothing: 1e-9}
}

// clone returns a deep copy of the model.
func (m *Model) clone() *Model {
	out := *m
	out.theta = append([]float64(nil), m.theta...)
	out.phi = append([]float64(nil), m.phi...)
	out.thetaTx = append([]float64(nil), m.thetaTx...)
	out.phiX = append([]float64(nil), m.phiX...)
	out.lambda = append([]float64(nil), m.lambda...)
	if m.background != nil {
		out.background = append([]float64(nil), m.background...)
	}
	return &out
}

// Grow returns a copy of the model widened to numIntervals intervals
// and numItems items. The topic-item matrices φ, φ' (and the background
// distribution, when enabled) are re-laid out with zero probability on
// the new items — under frozen time topics a brand-new item is
// unreachable until a full retrain, which is TTCAM's structural price
// for the compact K2 contexts. newContexts supplies the θ't row of each
// appended interval in order — length K2 each, from FitNewInterval —
// so numIntervals must equal NumIntervals()+len(newContexts).
func (m *Model) Grow(numIntervals, numItems int, newContexts [][]float64) (*Model, error) {
	if numItems < m.numItems {
		return nil, fmt.Errorf("ttcam: cannot shrink items %d -> %d", m.numItems, numItems)
	}
	if numIntervals != m.numIntervals+len(newContexts) {
		return nil, fmt.Errorf("ttcam: %d intervals need %d new contexts, got %d",
			numIntervals, numIntervals-m.numIntervals, len(newContexts))
	}
	for i, ctx := range newContexts {
		if len(ctx) != m.k2 {
			return nil, fmt.Errorf("ttcam: new context %d has %d topics, want K2=%d", i, len(ctx), m.k2)
		}
	}
	out := &Model{
		label:        m.label,
		numUsers:     m.numUsers,
		numIntervals: numIntervals,
		numItems:     numItems,
		k1:           m.k1,
		k2:           m.k2,
		theta:        append([]float64(nil), m.theta...),
		phi:          make([]float64, m.k1*numItems),
		thetaTx:      make([]float64, numIntervals*m.k2),
		phiX:         make([]float64, m.k2*numItems),
		lambda:       append([]float64(nil), m.lambda...),
		backgroundW:  m.backgroundW,
	}
	for z := 0; z < m.k1; z++ {
		copy(out.phi[z*numItems:], m.phi[z*m.numItems:(z+1)*m.numItems])
	}
	for x := 0; x < m.k2; x++ {
		copy(out.phiX[x*numItems:], m.phiX[x*m.numItems:(x+1)*m.numItems])
	}
	copy(out.thetaTx, m.thetaTx)
	for i, ctx := range newContexts {
		copy(out.thetaTx[(m.numIntervals+i)*m.k2:], ctx)
	}
	if m.background != nil {
		out.background = make([]float64, numItems)
		copy(out.background, m.background)
	}
	return out, nil
}

// FoldInUsers returns a copy of the model extended to data.NumUsers()
// users. Users [NumUsers(), data.NumUsers()) start from the uniform
// interest and λ=1/2, then run cfg.Iters rounds of partial EM over
// their own cells with φ, φ' and θ' frozen — through the same
// accumulator and shard machinery as batch training, so folding in
// user u is bit-identical to batch EM restricted to u against the same
// frozen globals. data's interval/item dimensions must match the model
// (Grow first when the stream widened them); its cells for
// already-trained users are ignored.
func (m *Model) FoldInUsers(data *cuboid.Cuboid, cfg FoldInConfig) (*Model, error) {
	if data.NumIntervals() != m.numIntervals || data.NumItems() != m.numItems {
		return nil, fmt.Errorf("ttcam: fold-in cuboid is %d intervals × %d items, model has %d × %d",
			data.NumIntervals(), data.NumItems(), m.numIntervals, m.numItems)
	}
	oldN, n := m.numUsers, data.NumUsers()
	if n < oldN {
		return nil, fmt.Errorf("ttcam: fold-in cuboid has %d users, model already has %d", n, oldN)
	}
	out := m.clone()
	out.numUsers = n
	theta := make([]float64, n*m.k1)
	copy(theta, out.theta)
	for i := oldN * m.k1; i < len(theta); i++ {
		theta[i] = 1 / float64(m.k1)
	}
	out.theta = theta
	lambda := make([]float64, n)
	copy(lambda, out.lambda)
	for u := oldN; u < n; u++ {
		lambda[u] = 0.5
	}
	out.lambda = lambda
	if n == oldN {
		return out, nil
	}
	tr := &trainer{
		m:      out,
		data:   data,
		cfg:    Config{K1: out.k1, K2: out.k2, MaxIters: 1, Smoothing: cfg.Smoothing, Background: out.backgroundW},
		theta:  make([]float64, len(out.theta)),
		lamNum: make([]float64, n),
		lamDen: make([]float64, n),
		phiT:   make([]float64, len(out.phi)),
		phiXT:  make([]float64, len(out.phiX)),
	}
	tr.refreshTransposes()
	if _, err := train.FoldIn(tr, oldN, n, train.FoldInConfig{
		Iters:   cfg.Iters,
		Shards:  cfg.Shards,
		Workers: cfg.Workers,
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// FoldStep applies the user-dimension M-step — Equations (8) and (11)
// restricted to rows [lo, hi) — leaving φ, φ' and θ' frozen, and
// returns the range's log-likelihood under the round's starting
// parameters.
func (tr *trainer) FoldStep(merged train.Accum, lo, hi int) float64 {
	a := merged.(*accum) // global slabs stay frozen; only ll is consumed
	m, cfg := tr.m, tr.cfg
	k1 := m.k1
	copy(m.theta[lo*k1:hi*k1], tr.theta[lo*k1:hi*k1])
	model.NormalizeRows(m.theta[lo*k1:hi*k1], k1, cfg.Smoothing)
	for u := lo; u < hi; u++ {
		if tr.lamDen[u] > 0 {
			m.lambda[u] = train.ClampLambda(tr.lamNum[u] / tr.lamDen[u])
		}
	}
	if model.AssertionsEnabled {
		model.AssertRowStochastic("ttcam fold-in theta", m.theta[lo*k1:hi*k1], k1, 1e-9)
		model.AssertFiniteIn01("ttcam fold-in lambda", m.lambda[lo:hi])
	}
	return a.ll
}

var _ train.UserFolder = (*trainer)(nil)
