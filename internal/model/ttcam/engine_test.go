package ttcam

import (
	"encoding/gob"
	"fmt"
	"math"
	"os"
	"testing"

	"tcam/internal/cuboid"
	"tcam/internal/faultinject"
	"tcam/internal/train"
)

// engineWorld is the frozen dataset behind testdata/prerefactor_*: the
// fixtures were generated from exactly this cuboid by the pre-refactor
// trainer (per-worker sharding, Workers=2), so these tests prove the
// engine-based trainer reproduces the old arithmetic bit-for-bit.
func engineWorld(tb testing.TB) *cuboid.Cuboid {
	tb.Helper()
	b := cuboid.NewBuilder(30, 6, 25)
	for u := 0; u < 30; u++ {
		for t := 0; t < 6; t++ {
			b.MustAdd(u, t, (u*3+t*7)%25, 1+float64((u+t)%4))
			b.MustAdd(u, t, (u+t*t)%25, 1)
			if (u+t)%3 == 0 {
				b.MustAdd(u, t, (u*5+t)%25, 2)
			}
		}
	}
	return b.Build()
}

// engineConfig mirrors the fixture generator's config, with the legacy
// Workers=2 sharding expressed as Shards=2 under the engine.
func engineConfig() Config {
	cfg := DefaultConfig()
	cfg.K1, cfg.K2, cfg.MaxIters, cfg.Tol, cfg.Seed = 7, 5, 9, 1e-6, 11
	cfg.Shards = 2
	return cfg
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func assertSameModel(t *testing.T, label string, got, want *Model) {
	t.Helper()
	if !bitsEqual(got.theta, want.theta) {
		t.Errorf("%s: theta differs", label)
	}
	if !bitsEqual(got.phi, want.phi) {
		t.Errorf("%s: phi differs", label)
	}
	if !bitsEqual(got.thetaTx, want.thetaTx) {
		t.Errorf("%s: thetaTx differs", label)
	}
	if !bitsEqual(got.phiX, want.phiX) {
		t.Errorf("%s: phiX differs", label)
	}
	if !bitsEqual(got.lambda, want.lambda) {
		t.Errorf("%s: lambda differs", label)
	}
	if !bitsEqual(got.background, want.background) {
		t.Errorf("%s: background differs", label)
	}
}

func loadFixture(t *testing.T, modelPath, llPath string) (*Model, []float64) {
	t.Helper()
	f, err := os.Open(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m, err := Read(f)
	if err != nil {
		t.Fatal(err)
	}
	lf, err := os.Open(llPath)
	if err != nil {
		t.Fatal(err)
	}
	defer lf.Close()
	var ll []float64
	if err := gob.NewDecoder(lf).Decode(&ll); err != nil {
		t.Fatal(err)
	}
	return m, ll
}

// TestMatchesPreRefactorFixture pins the refactor's central guarantee
// for both the plain and background-mixture variants: the engine-based
// trainer with Shards=2 reproduces the pre-refactor trainer's Workers=2
// run bit-for-bit.
func TestMatchesPreRefactorFixture(t *testing.T) {
	for _, tc := range []struct {
		name       string
		background float64
		modelPath  string
		llPath     string
	}{
		{"plain", 0, "testdata/prerefactor_model.gob", "testdata/prerefactor_ll.gob"},
		{"background", 0.15, "testdata/prerefactor_bg_model.gob", "testdata/prerefactor_bg_ll.gob"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want, wantLL := loadFixture(t, tc.modelPath, tc.llPath)
			for _, workers := range []int{1, 4} {
				cfg := engineConfig()
				cfg.Background = tc.background
				cfg.Workers = workers
				got, stats, err := Train(engineWorld(t), cfg)
				if err != nil {
					t.Fatal(err)
				}
				assertSameModel(t, fmt.Sprintf("workers=%d", workers), got, want)
				if !bitsEqual(stats.LogLikelihood, wantLL) {
					t.Errorf("workers=%d: LL trace differs from pre-refactor fixture", workers)
				}
			}
		})
	}
}

// TestWorkerCountInvariance: parameters depend on Shards, never on
// Workers.
func TestWorkerCountInvariance(t *testing.T) {
	data := engineWorld(t)
	cfg := engineConfig()
	cfg.Workers = 1
	ref, refStats, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	got, gotStats, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertSameModel(t, "workers 1 vs 8", got, ref)
	if !bitsEqual(gotStats.LogLikelihood, refStats.LogLikelihood) {
		t.Error("workers 1 vs 8: LL traces differ")
	}
}

// TestTolStopsEarly pins the Tol early-stop the engine gives TTCAM: a
// converged run must stop before MaxIters with the converged stop
// reason, and a Tol=0 run must burn every iteration.
func TestTolStopsEarly(t *testing.T) {
	data := engineWorld(t)
	cfg := engineConfig()
	cfg.MaxIters = 400
	cfg.Tol = 1e-6
	_, stats, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Converged || stats.StopReason != "converged" {
		t.Fatalf("stats = %+v, want converged", stats)
	}
	if stats.Iterations() >= cfg.MaxIters {
		t.Fatalf("converged run burned all %d iterations", stats.Iterations())
	}

	cfg.MaxIters = 12
	cfg.Tol = 0
	_, stats, err = Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Converged || stats.Iterations() != 12 {
		t.Fatalf("Tol=0 run stopped early: %+v", stats)
	}
}

// TestCheckpointResumeBitIdentical crashes training right after a
// snapshot lands and proves resuming converges to the exact parameters
// of the uninterrupted run.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	defer faultinject.Reset()
	data := engineWorld(t)
	ref, refStats, err := Train(data, engineConfig())
	if err != nil {
		t.Fatal(err)
	}

	for _, killAfter := range []int{2, 6} {
		t.Run(fmt.Sprintf("kill-after-%d", killAfter), func(t *testing.T) {
			dir := t.TempDir()
			cfg := engineConfig()
			cfg.Checkpoint = train.CheckpointConfig{Dir: dir, Every: 2}

			var saves int
			faultinject.Set("train.checkpoint.saved", func() {
				saves++
				if saves*2 == killAfter {
					panic("ttcam test: injected crash after checkpoint")
				}
			})
			func() {
				defer func() {
					if recover() == nil {
						t.Fatal("injected crash did not fire")
					}
				}()
				_, _, _ = Train(data, cfg)
			}()
			faultinject.Clear("train.checkpoint.saved")

			cfg.Checkpoint.Resume = true
			got, stats, err := Train(data, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if stats.ResumedAt != killAfter {
				t.Fatalf("ResumedAt = %d, want %d", stats.ResumedAt, killAfter)
			}
			assertSameModel(t, "resumed", got, ref)
			if !bitsEqual(stats.LogLikelihood, refStats.LogLikelihood) {
				t.Error("resumed LL trace differs from uninterrupted run")
			}
		})
	}
}
