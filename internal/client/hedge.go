package client

import (
	"context"
	"slices"
	"sync"
	"time"
)

// HedgerConfig parameterizes a Hedger; zero fields take defaults.
type HedgerConfig struct {
	// Quantile of observed latency after which the backup request fires
	// (default 0.9: hedge the slowest ~10% of requests).
	Quantile float64
	// Window is the number of recent latency observations retained
	// (default 64).
	Window int
	// MinSamples is how many observations the window needs before the
	// quantile estimate replaces Default (default 8).
	MinSamples int
	// Default is the hedge delay used until the window warms up
	// (default 50ms).
	Default time.Duration
	// MinDelay / MaxDelay clamp the estimate (defaults 1ms / 1s), so a
	// burst of microsecond cache hits cannot make the hedger duplicate
	// every request, nor a straggler storm disable hedging entirely.
	MinDelay time.Duration
	MaxDelay time.Duration
}

// Hedger tracks a sliding window of request latencies and turns its
// configured quantile into the delay after which a straggler deserves a
// backup request. Safe for concurrent use.
type Hedger struct {
	mu   sync.Mutex
	ring []time.Duration
	n    int // observations stored (saturates at len(ring))
	idx  int // next write position

	quantile   float64
	minSamples int
	def        time.Duration
	minDelay   time.Duration
	maxDelay   time.Duration
}

// NewHedger builds a Hedger from cfg.
func NewHedger(cfg HedgerConfig) *Hedger {
	h := &Hedger{
		quantile:   cfg.Quantile,
		minSamples: cfg.MinSamples,
		def:        cfg.Default,
		minDelay:   cfg.MinDelay,
		maxDelay:   cfg.MaxDelay,
	}
	if h.quantile <= 0 || h.quantile >= 1 {
		h.quantile = 0.9
	}
	window := cfg.Window
	if window <= 0 {
		window = 64
	}
	h.ring = make([]time.Duration, window)
	if h.minSamples <= 0 {
		h.minSamples = 8
	}
	if h.minSamples > window {
		h.minSamples = window
	}
	if h.def <= 0 {
		h.def = 50 * time.Millisecond
	}
	if h.minDelay <= 0 {
		h.minDelay = time.Millisecond
	}
	if h.maxDelay <= 0 {
		h.maxDelay = time.Second
	}
	return h
}

// Observe records one successful request's latency.
func (h *Hedger) Observe(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.ring[h.idx] = d
	h.idx = (h.idx + 1) % len(h.ring)
	if h.n < len(h.ring) {
		h.n++
	}
}

// Delay returns the current hedge trigger: the configured latency
// quantile over the window, clamped to [MinDelay, MaxDelay], or Default
// while fewer than MinSamples observations exist.
func (h *Hedger) Delay() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n < h.minSamples {
		return h.def
	}
	sorted := make([]time.Duration, h.n)
	copy(sorted, h.ring[:h.n])
	slices.Sort(sorted)
	d := sorted[int(h.quantile*float64(h.n-1)+0.5)]
	if d < h.minDelay {
		d = h.minDelay
	}
	if d > h.maxDelay {
		d = h.maxDelay
	}
	return d
}

// Hedge runs call and, if it has not returned after delay, launches one
// identical backup attempt — the tail-latency discipline of "The Tail
// at Scale". The first success wins and the other attempt's context is
// cancelled immediately; an attempt that fails outright (before or
// after the hedge fires) does not win, so a fast connection error still
// waits for an in-flight sibling. A negative delay disables the backup.
//
// Returns the winning value and which attempt produced it (0 primary,
// 1 hedge). When every launched attempt fails, the first error is
// returned with attempt -1; when ctx itself ends first, its error is
// returned with attempt -1.
func Hedge[T any](ctx context.Context, delay time.Duration, call func(context.Context) (T, error)) (T, int, error) {
	type outcome struct {
		v   T
		idx int
		err error
	}
	results := make(chan outcome, 2)
	var cancels [2]context.CancelFunc
	defer func() {
		// Whatever path returns, both attempts end up cancelled: the
		// loser's work is abandoned, not leaked.
		for _, cancel := range cancels {
			if cancel != nil {
				cancel()
			}
		}
	}()
	launch := func(idx int) {
		actx, cancel := context.WithCancel(ctx)
		cancels[idx] = cancel
		go func() {
			v, err := call(actx)
			results <- outcome{v: v, idx: idx, err: err}
		}()
	}
	launch(0)
	outstanding := 1
	var timerC <-chan time.Time
	if delay >= 0 {
		timer := time.NewTimer(delay)
		defer timer.Stop()
		timerC = timer.C
	}
	var zero T
	var firstErr error
	for {
		select {
		case out := <-results:
			outstanding--
			if out.err == nil {
				return out.v, out.idx, nil
			}
			if firstErr == nil {
				firstErr = out.err
			}
			if outstanding == 0 {
				// Every launched attempt failed. If the primary failed
				// before the hedge timer there is no sibling to wait for,
				// and launching one now would be a retry — the caller's
				// policy, not Hedge's.
				return zero, -1, firstErr
			}
		case <-timerC:
			timerC = nil
			launch(1)
			outstanding++
		case <-ctx.Done():
			return zero, -1, ctx.Err()
		}
	}
}
