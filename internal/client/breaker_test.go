package client

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a hand-advanced clock for deterministic breaker tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func testBreaker(clock *fakeClock) *Breaker {
	return NewBreaker(BreakerConfig{
		FailureThreshold: 3,
		OpenTimeout:      time.Second,
		JitterFrac:       0.5,
		Seed:             42,
		Now:              clock.Now,
	})
}

func TestBreakerTripsAfterThreshold(t *testing.T) {
	clock := newFakeClock()
	b := testBreaker(clock)
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused attempt %d", i)
		}
		b.Failure()
		if b.State() != BreakerClosed {
			t.Fatalf("tripped after only %d failures", i+1)
		}
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused the third attempt")
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v after 3 consecutive failures, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted traffic before the cooldown")
	}
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	clock := newFakeClock()
	b := testBreaker(clock)
	for i := 0; i < 10; i++ { // alternating outcomes never reach the threshold
		b.Failure()
		b.Failure()
		b.Success()
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v, want closed (streak resets on success)", b.State())
	}
}

func TestBreakerHalfOpenProbeRecovers(t *testing.T) {
	clock := newFakeClock()
	b := testBreaker(clock)
	for i := 0; i < 3; i++ {
		b.Failure()
	}
	// Jitter is seeded: cooldown lies in [1s, 1.5s]. Before 1s no probe.
	clock.Advance(999 * time.Millisecond)
	if b.Allow() {
		t.Fatal("probe admitted before the base cooldown elapsed")
	}
	clock.Advance(501 * time.Millisecond) // past any jittered cooldown
	if !b.Allow() {
		t.Fatal("cooled-down breaker refused the probe")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v after probe admitted, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v after successful probe, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("recovered breaker refused traffic")
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	clock := newFakeClock()
	b := testBreaker(clock)
	for i := 0; i < 3; i++ {
		b.Failure()
	}
	clock.Advance(2 * time.Second)
	if !b.Allow() {
		t.Fatal("cooled-down breaker refused the probe")
	}
	b.Failure() // probe fails: back to open with a fresh cooldown
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v after failed probe, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("re-opened breaker admitted traffic immediately")
	}
	clock.Advance(2 * time.Second)
	if !b.Allow() {
		t.Fatal("re-opened breaker never re-admitted a probe")
	}
}

// Two breakers with the same seed and clock see identical jittered
// probe times — the determinism the fault-injection suite leans on.
func TestBreakerJitterDeterministicPerSeed(t *testing.T) {
	clockA, clockB := newFakeClock(), newFakeClock()
	a, b := testBreaker(clockA), testBreaker(clockB)
	for i := 0; i < 3; i++ {
		a.Failure()
		b.Failure()
	}
	for _, step := range []time.Duration{
		100 * time.Millisecond, 500 * time.Millisecond, 150 * time.Millisecond,
		300 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
	} {
		clockA.Advance(step)
		clockB.Advance(step)
		ga, gb := a.Allow(), b.Allow()
		if ga != gb {
			t.Fatalf("same seed diverged: Allow() = %v vs %v", ga, gb)
		}
		if ga {
			a.Failure() // probe fails, both re-open with the next jitter draw
			b.Failure()
		}
	}
}
