package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// Satellite fix 1: once the context dies mid-backoff, the loop must
// stop consuming attempts — no further request reaches the wire — and
// the error must carry both the cancellation and the last failure.
func TestCancelMidBackoffConsumesNoMoreAttempts(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	c, err := New(Config{BaseURL: ts.URL, MaxRetries: 5})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	c.sleep = func(ctx context.Context, d time.Duration) error {
		cancel() // the caller gives up while the backoff timer runs
		return ctx.Err()
	}
	_, err = c.Health(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "503") && !strings.Contains(err.Error(), "last attempt") {
		t.Errorf("err %q does not mention the failure that caused the wait", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d attempts, want 1 (no attempts after cancellation)", got)
	}
}

// The race window where the context dies in the same instant the
// backoff timer fires: a sleeper that returns nil with a dead context
// must still not buy another attempt.
func TestDeadContextAfterBackoffConsumesNoMoreAttempts(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	c, err := New(Config{BaseURL: ts.URL, MaxRetries: 5})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	c.sleep = func(context.Context, time.Duration) error {
		cancel()
		return nil // timer "won" the select, but the context is dead
	}
	if _, err := c.Health(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d attempts, want 1", got)
	}
}

// Satellite fix 2: a Retry-After hint beyond the remaining deadline is
// not slept on — the call fails immediately with the real cause instead
// of parking until the deadline kills it.
func TestRetryAfterClampedToRemainingDeadline(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "3600")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()
	c, err := New(Config{BaseURL: ts.URL, MaxRetries: 5})
	if err != nil {
		t.Fatal(err)
	}
	slept := false
	c.sleep = func(context.Context, time.Duration) error {
		slept = true
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	start := time.Now()
	_, err = c.Health(ctx)
	if err == nil {
		t.Fatal("call succeeded against a permanently shedding server")
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want the wrapped 429", err)
	}
	if !strings.Contains(err.Error(), "deadline") {
		t.Errorf("err %q does not explain the deadline clamp", err)
	}
	if slept {
		t.Error("client slept on a Retry-After it could never outlast")
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d attempts, want 1", got)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Errorf("call took %v, want an immediate failure", took)
	}
}

// A Retry-After that fits inside the deadline is still honored.
func TestRetryAfterWithinDeadlineStillHonored(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		_, _ = w.Write([]byte(`{"status":"ok"}`))
	}))
	defer ts.Close()
	c, delays := newTestClient(t, ts.URL, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	if _, err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	if len(*delays) != 1 || (*delays)[0] != time.Second {
		t.Errorf("delays = %v, want the server's 1s hint", *delays)
	}
}
