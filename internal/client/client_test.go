package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// recordingSleeper replaces the client's wait with a recorder so retry
// cadence is asserted without real delays.
func recordingSleeper(delays *[]time.Duration) func(context.Context, time.Duration) error {
	return func(ctx context.Context, d time.Duration) error {
		*delays = append(*delays, d)
		return ctx.Err()
	}
}

func newTestClient(t *testing.T, url string, cfg Config) (*Client, *[]time.Duration) {
	t.Helper()
	cfg.BaseURL = url
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var delays []time.Duration
	c.sleep = recordingSleeper(&delays)
	return c, &delays
}

func TestRecommendSuccess(t *testing.T) {
	var gotPath atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotPath.Store(r.URL.String())
		w.Header().Set("Content-Type", "application/json")
		if _, err := w.Write([]byte(`{"user":"u1","interval":3,"recommendations":[{"item":"a","score":0.5}],"items_examined":7}`)); err != nil {
			t.Error(err)
		}
	}))
	defer ts.Close()
	c, delays := newTestClient(t, ts.URL, Config{})
	res, err := c.Recommend(context.Background(), "u1", 42, 5, []string{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Interval != 3 || len(res.Recommendations) != 1 || res.Recommendations[0].Item != "a" {
		t.Errorf("result = %+v", res)
	}
	if want := "/recommend?user=u1&time=42&k=5&exclude=x,y"; gotPath.Load() != want {
		t.Errorf("path = %q, want %q", gotPath.Load(), want)
	}
	if len(*delays) != 0 {
		t.Errorf("slept %v on a clean call", *delays)
	}
}

// 429 + Retry-After must be retried after exactly the advertised delay.
func TestRetryHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "3")
			w.WriteHeader(http.StatusTooManyRequests)
			if _, err := w.Write([]byte(`{"error":"saturated"}`)); err != nil {
				t.Error(err)
			}
			return
		}
		if _, err := w.Write([]byte(`{"status":"ok","version":4}`)); err != nil {
			t.Error(err)
		}
	}))
	defer ts.Close()
	c, delays := newTestClient(t, ts.URL, Config{})
	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Version != 4 {
		t.Errorf("health = %+v", h)
	}
	if calls.Load() != 3 {
		t.Errorf("attempts = %d, want 3", calls.Load())
	}
	if len(*delays) != 2 || (*delays)[0] != 3*time.Second || (*delays)[1] != 3*time.Second {
		t.Errorf("delays = %v, want two 3s waits from Retry-After", *delays)
	}
}

// Without Retry-After, waits follow capped jittered exponential
// backoff: attempt n in [base·2ⁿ/2, base·2ⁿ], never above MaxDelay.
func TestRetryBackoffJitteredAndCapped(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	base, max := 100*time.Millisecond, 300*time.Millisecond
	c, delays := newTestClient(t, ts.URL, Config{MaxRetries: 4, BaseDelay: base, MaxDelay: max, Seed: 7})
	_, err := c.Health(context.Background())
	if err == nil {
		t.Fatal("succeeded against an always-503 server")
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Errorf("err = %v, want wrapped 503 APIError", err)
	}
	want := []time.Duration{base, 2 * base, max, max} // pre-jitter ladder
	if len(*delays) != len(want) {
		t.Fatalf("delays = %v, want %d waits", *delays, len(want))
	}
	for i, d := range *delays {
		if d < want[i]/2 || d > want[i] {
			t.Errorf("delay %d = %v, want in [%v, %v]", i, d, want[i]/2, want[i])
		}
	}
}

// The jitter stream is seeded: same seed, same delays.
func TestBackoffDeterministicPerSeed(t *testing.T) {
	mk := func(seed int64) []time.Duration {
		c, err := New(Config{BaseURL: "http://unused", Seed: seed, BaseDelay: time.Second, MaxDelay: 16 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]time.Duration, 4)
		for i := range out {
			out[i] = c.backoff(i)
		}
		return out
	}
	a, b := mk(7), mk(7)
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("seed 7 diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Non-retryable statuses fail immediately with the server's message.
func TestNoRetryOn404(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusNotFound)
		if _, err := w.Write([]byte(`{"error":"unknown user \"ghost\""}`)); err != nil {
			t.Error(err)
		}
	}))
	defer ts.Close()
	c, _ := newTestClient(t, ts.URL, Config{})
	_, err := c.Recommend(context.Background(), "ghost", 1, 5, nil)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("err = %v, want 404 APIError", err)
	}
	if !strings.Contains(apiErr.Message, "ghost") {
		t.Errorf("message = %q, want the server's error text", apiErr.Message)
	}
	if calls.Load() != 1 {
		t.Errorf("attempts = %d, want 1 (no retry on 404)", calls.Load())
	}
}

// A cancelled context aborts the retry loop during the wait.
func TestContextCancelStopsRetries(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	c, err := New(Config{BaseURL: ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	c.sleep = func(ctx context.Context, d time.Duration) error {
		cancel() // cancellation lands mid-wait
		return ctx.Err()
	}
	if _, err := c.Health(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// Transport-level failures (connection refused) are retried too.
func TestTransportErrorRetried(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	ts.Close() // nothing listens here anymore
	c, delays := newTestClient(t, ts.URL, Config{MaxRetries: 2})
	if _, err := c.Health(context.Background()); err == nil {
		t.Fatal("succeeded against a closed server")
	}
	if len(*delays) != 2 {
		t.Errorf("waited %d times, want 2 retries", len(*delays))
	}
}

func TestRecommendBatchRoundTrip(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/recommend/batch" {
			t.Errorf("got %s %s", r.Method, r.URL.Path)
		}
		if _, err := w.Write([]byte(`{"results":[{"user":"u1","recommendations":[{"item":"a","score":1}]}],"truncated":true}`)); err != nil {
			t.Error(err)
		}
	}))
	defer ts.Close()
	c, _ := newTestClient(t, ts.URL, Config{})
	res, err := c.RecommendBatch(context.Background(), []BatchQuery{{User: "u1", Time: 5, K: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || len(res.Results) != 1 || res.Results[0].Recommendations[0].Item != "a" {
		t.Errorf("batch = %+v", res)
	}
}

func TestNewValidates(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New accepted an empty BaseURL")
	}
}

// Health surfaces the cache sub-object when the target reports one,
// and leaves Cache nil when it doesn't.
func TestHealthDecodesCache(t *testing.T) {
	body := `{"status":"ok","version":2,"cache":{"hits":40,"misses":8,"stale":3,"entries":12,"epoch":2,"hot_precomputed":5}}`
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, err := w.Write([]byte(body)); err != nil {
			t.Error(err)
		}
	}))
	defer ts.Close()
	c, _ := newTestClient(t, ts.URL, Config{})
	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := CacheHealth{Hits: 40, Misses: 8, Stale: 3, Entries: 12, Epoch: 2, HotPrecomputed: 5}
	if h.Cache == nil || *h.Cache != want {
		t.Fatalf("cache = %+v, want %+v", h.Cache, want)
	}
	body = `{"status":"ok","version":2}`
	h, err = c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Cache != nil {
		t.Fatalf("cache body present without caching: %+v", h.Cache)
	}
}
