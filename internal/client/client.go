// Package client is a retrying HTTP client for the tcamserver API. It
// complements the server's load shedding: a shed (429) or unavailable
// (503) response is retried with capped, jittered exponential backoff,
// honoring the server's Retry-After hint, so a fleet of well-behaved
// clients converges instead of hammering a saturated instance.
//
// Retries are bounded, jitter comes from an explicitly seeded source
// (deterministic under test), and every wait respects the caller's
// context.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Config parameterizes a Client; zero fields take defaults.
type Config struct {
	// BaseURL locates the server, e.g. "http://localhost:8080".
	BaseURL string
	// MaxRetries bounds re-attempts after the first try (default 3, so
	// at most 4 requests per call). Negative disables retries.
	MaxRetries int
	// BaseDelay seeds the exponential backoff (default 50ms); attempt
	// n waits ~BaseDelay·2ⁿ, jittered, capped at MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps the computed backoff (default 2s). A server
	// Retry-After hint overrides the computed value.
	MaxDelay time.Duration
	// Seed makes the jitter stream reproducible (default 1).
	Seed int64
	// HTTPClient overrides the transport (default: 30s total timeout).
	HTTPClient *http.Client
}

// Client is safe for concurrent use.
type Client struct {
	base       string
	maxRetries int
	baseDelay  time.Duration
	maxDelay   time.Duration
	hc         *http.Client

	mu  sync.Mutex // guards rng
	rng *rand.Rand

	sleep func(ctx context.Context, d time.Duration) error // test seam
}

// New validates cfg and builds a Client.
func New(cfg Config) (*Client, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("client: BaseURL is required")
	}
	c := &Client{
		base:       strings.TrimRight(cfg.BaseURL, "/"),
		maxRetries: cfg.MaxRetries,
		baseDelay:  cfg.BaseDelay,
		maxDelay:   cfg.MaxDelay,
		hc:         cfg.HTTPClient,
		sleep:      sleepCtx,
	}
	if cfg.MaxRetries == 0 {
		c.maxRetries = 3
	} else if cfg.MaxRetries < 0 {
		c.maxRetries = 0
	}
	if c.baseDelay <= 0 {
		c.baseDelay = 50 * time.Millisecond
	}
	if c.maxDelay <= 0 {
		c.maxDelay = 2 * time.Second
	}
	if c.hc == nil {
		c.hc = &http.Client{Timeout: 30 * time.Second}
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	c.rng = rand.New(rand.NewSource(seed))
	return c, nil
}

// APIError is a non-success server response that was not retried away.
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("client: server returned %d: %s", e.Status, e.Message)
}

// Recommendation is one ranked item.
type Recommendation struct {
	Item  string  `json:"item"`
	Score float64 `json:"score"`
}

// ItemRange is a contiguous [Lo, Hi) window of the item catalog — the
// unit a sharded serving tier partitions by and reports missing when
// degraded.
type ItemRange struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// RecommendResult mirrors the server's /recommend payload (and one
// entry of a batch response, where a per-query failure sets Error).
// Degraded and MissingItemRanges are only set by a shard coordinator:
// the results are correct over the surviving shards, but items in the
// missing ranges were not considered.
type RecommendResult struct {
	User              string           `json:"user"`
	Interval          int              `json:"interval"`
	Recommendations   []Recommendation `json:"recommendations"`
	ItemsExamined     int              `json:"items_examined"`
	Degraded          bool             `json:"degraded,omitempty"`
	MissingItemRanges []ItemRange      `json:"missing_item_ranges,omitempty"`
	Error             string           `json:"error,omitempty"`
}

// BatchQuery is one entry of a batch request.
type BatchQuery struct {
	User    string   `json:"user"`
	Time    int64    `json:"time"`
	K       int      `json:"k,omitempty"`
	Exclude []string `json:"exclude,omitempty"`
}

// BatchResult mirrors the server's /recommend/batch payload. Truncated
// reports a batch cut short by the server's request deadline; Results
// then holds only the completed prefix.
type BatchResult struct {
	Results   []RecommendResult `json:"results"`
	Truncated bool              `json:"truncated,omitempty"`
}

// Health mirrors /healthz. ItemRange is present only when the target
// is a shard serving a window of the catalog.
type Health struct {
	Status    string     `json:"status"`
	ModelKind string     `json:"model_kind"`
	Users     int        `json:"users"`
	Items     int        `json:"items"`
	Intervals int        `json:"intervals"`
	Topics    int        `json:"topics"`
	Version   uint64     `json:"version"`
	Draining  bool       `json:"draining,omitempty"`
	ItemRange *ItemRange `json:"item_range,omitempty"`
	// Ingest is present only when the server tails an ingest log
	// (tcamserver -ingest-log): how far the serving snapshot lags the
	// durable event stream.
	Ingest *IngestHealth `json:"ingest,omitempty"`
	// Cache is present only when the target runs a result cache
	// (-cache-entries on tcamserver or the coordinator).
	Cache *CacheHealth `json:"cache,omitempty"`
}

// CacheHealth mirrors the "cache" sub-object of /healthz (DESIGN.md
// §16): lifetime hit/miss/stale-eviction counters, the live entry
// count, the epoch current lookups are keyed by, and — on servers with
// -precompute-hot — how many hot users the last publish warmed.
type CacheHealth struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Stale   uint64 `json:"stale"`
	Entries int64  `json:"entries"`
	Epoch   uint64 `json:"epoch"`
	// HotPrecomputed is absent on coordinators, which never precompute.
	HotPrecomputed uint64 `json:"hot_precomputed,omitempty"`
}

// IngestHealth mirrors the "ingest" sub-object of /healthz.
type IngestHealth struct {
	LogOffset int64 `json:"log_offset"`
	LogEnd    int64 `json:"log_end"`
	Lag       int64 `json:"lag"`
	// StalenessSeconds is the age of the serving snapshot's derivation;
	// with Lag zero the snapshot is current regardless of its age.
	StalenessSeconds float64 `json:"staleness_seconds"`
}

// Recommend fetches the temporal top-k for one user at a timestamp.
func (c *Client) Recommend(ctx context.Context, user string, when int64, k int, exclude []string) (*RecommendResult, error) {
	path := "/recommend?user=" + url.QueryEscape(user) + "&time=" + strconv.FormatInt(when, 10)
	if k > 0 {
		path += "&k=" + strconv.Itoa(k)
	}
	if len(exclude) > 0 {
		escaped := make([]string, len(exclude))
		for i, id := range exclude {
			escaped[i] = url.QueryEscape(id)
		}
		path += "&exclude=" + strings.Join(escaped, ",")
	}
	var out RecommendResult
	if err := c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// RecommendBatch answers many queries in one round trip.
func (c *Client) RecommendBatch(ctx context.Context, queries []BatchQuery) (*BatchResult, error) {
	body, err := json.Marshal(struct {
		Queries []BatchQuery `json:"queries"`
	}{queries})
	if err != nil {
		return nil, fmt.Errorf("client: encode batch: %w", err)
	}
	var out BatchResult
	if err := c.do(ctx, http.MethodPost, "/recommend/batch", body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health fetches /healthz.
func (c *Client) Health(ctx context.Context) (*Health, error) {
	var out Health
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// retryable reports the statuses worth re-attempting: shed load,
// drain/overload, and upstream gateway hiccups.
func retryable(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable,
		http.StatusBadGateway, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// do runs one logical call: attempt, and on a retryable failure wait
// (Retry-After if the server said so, jittered exponential backoff
// otherwise) and re-attempt, up to MaxRetries times.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out interface{}) error {
	var lastErr error
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
		if err != nil {
			return fmt.Errorf("client: %w", err)
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		retryAfter := time.Duration(-1)
		resp, err := c.hc.Do(req)
		switch {
		case err != nil:
			if ctx.Err() != nil {
				return ctx.Err()
			}
			lastErr = err // transport error: retryable (conn refused, reset, …)
		case resp.StatusCode == http.StatusOK:
			err := json.NewDecoder(resp.Body).Decode(out)
			drainClose(resp)
			if err != nil {
				return fmt.Errorf("client: decode %s: %w", path, err)
			}
			return nil
		default:
			apiErr := &APIError{Status: resp.StatusCode, Message: errorMessage(resp)}
			drainClose(resp)
			if !retryable(resp.StatusCode) {
				return apiErr
			}
			if ra, ok := parseRetryAfter(resp.Header.Get("Retry-After")); ok {
				retryAfter = ra
			}
			lastErr = apiErr
		}
		if attempt >= c.maxRetries {
			return fmt.Errorf("client: giving up after %d attempts: %w", attempt+1, lastErr)
		}
		delay := c.backoff(attempt)
		if retryAfter >= 0 {
			delay = retryAfter
		}
		// Honor Retry-After (and the computed backoff) only up to the
		// remaining deadline: a wait that cannot end before the caller's
		// deadline would burn wall-clock on a sleep guaranteed to be
		// cancelled. Fail now with the real cause instead.
		if deadline, ok := ctx.Deadline(); ok {
			if remaining := time.Until(deadline); delay >= remaining {
				return fmt.Errorf("client: retry delay %v exceeds the %v remaining before the deadline: %w",
					delay, remaining.Round(time.Millisecond), lastErr)
			}
		}
		if err := c.sleep(ctx, delay); err != nil {
			// Cancelled mid-backoff: stop consuming attempts and surface
			// both the cancellation and the failure that caused the wait.
			return fmt.Errorf("client: %w; last attempt: %v", err, lastErr)
		}
		if ctx.Err() != nil {
			// The context died in the same instant the backoff timer
			// fired; re-attempting with a dead context would only consume
			// budget to manufacture the same error.
			return fmt.Errorf("client: %w; last attempt: %v", ctx.Err(), lastErr)
		}
	}
}

// backoff computes the jittered exponential delay for re-attempt n:
// BaseDelay·2ⁿ capped at MaxDelay, then jittered to [d/2, d] so a
// burst of shed clients decorrelates instead of retrying in lockstep.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.baseDelay
	for i := 0; i < attempt && d < c.maxDelay; i++ {
		d *= 2
	}
	if d > c.maxDelay {
		d = c.maxDelay
	}
	c.mu.Lock()
	jittered := d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
	c.mu.Unlock()
	return jittered
}

// parseRetryAfter reads the delay-seconds form of Retry-After (the
// form tcamserver emits). The HTTP-date form is ignored.
func parseRetryAfter(h string) (time.Duration, bool) {
	if h == "" {
		return 0, false
	}
	secs, err := strconv.Atoi(h)
	if err != nil || secs < 0 {
		return 0, false
	}
	return time.Duration(secs) * time.Second, true
}

// errorMessage extracts the server's {"error": "..."} payload, falling
// back to the raw body.
func errorMessage(resp *http.Response) string {
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if err != nil {
		return resp.Status
	}
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &e) == nil && e.Error != "" {
		return e.Error
	}
	if len(raw) > 0 {
		return string(raw)
	}
	return resp.Status
}

// drainClose discards any unread body so the connection can be reused.
func drainClose(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 64<<10))
	//tcamvet:ignore errcheck close error on a fully-drained response carries no signal
	resp.Body.Close()
}

// sleepCtx waits for d or the context, whichever ends first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
