package client

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestHedgePrimaryWinsBeforeDelay(t *testing.T) {
	var launches atomic.Int64
	v, idx, err := Hedge(context.Background(), time.Hour, func(ctx context.Context) (string, error) {
		launches.Add(1)
		return "primary", nil
	})
	if err != nil || v != "primary" || idx != 0 {
		t.Fatalf("Hedge = (%q, %d, %v), want (primary, 0, nil)", v, idx, err)
	}
	if launches.Load() != 1 {
		t.Errorf("launched %d attempts, want 1 (no hedge for a fast primary)", launches.Load())
	}
}

// A straggling primary triggers the hedge; the hedge's result wins and
// the straggler's context is cancelled — observed deterministically via
// the blocked primary's ctx.Done.
func TestHedgeFiresOnStragglerAndCancelsLoser(t *testing.T) {
	primaryCancelled := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	var attempt atomic.Int64
	v, idx, err := Hedge(context.Background(), time.Millisecond, func(ctx context.Context) (string, error) {
		if attempt.Add(1) == 1 {
			// Primary: a straggler that only returns once cancelled.
			select {
			case <-ctx.Done():
				close(primaryCancelled)
				return "", ctx.Err()
			case <-release:
				return "straggler", nil
			}
		}
		return "hedge", nil
	})
	if err != nil || v != "hedge" || idx != 1 {
		t.Fatalf("Hedge = (%q, %d, %v), want (hedge, 1, nil)", v, idx, err)
	}
	select {
	case <-primaryCancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("losing attempt was never cancelled")
	}
}

// The first SUCCESS wins: a hedge that errors quickly does not beat a
// primary that eventually succeeds.
func TestHedgeErrorDoesNotBeatSlowSuccess(t *testing.T) {
	var attempt atomic.Int64
	hedgeFailed := make(chan struct{})
	v, idx, err := Hedge(context.Background(), time.Millisecond, func(ctx context.Context) (string, error) {
		if attempt.Add(1) == 1 {
			<-hedgeFailed // primary waits out the hedge's failure
			return "primary", nil
		}
		close(hedgeFailed)
		return "", errors.New("hedge lost the coin flip")
	})
	if err != nil || v != "primary" || idx != 0 {
		t.Fatalf("Hedge = (%q, %d, %v), want (primary, 0, nil)", v, idx, err)
	}
}

func TestHedgeAllAttemptsFail(t *testing.T) {
	wantErr := errors.New("shard down")
	var launches atomic.Int64
	started := make(chan struct{}, 2)
	_, idx, err := Hedge(context.Background(), 0, func(ctx context.Context) (int, error) {
		launches.Add(1)
		started <- struct{}{}
		<-started // both attempts proceed regardless of ordering
		started <- struct{}{}
		return 0, wantErr
	})
	if !errors.Is(err, wantErr) || idx != -1 {
		t.Fatalf("Hedge = (%d, %v), want (-1, the shard error)", idx, err)
	}
}

func TestHedgePrimaryFastFailureReturnsWithoutHedging(t *testing.T) {
	wantErr := errors.New("connection refused")
	var launches atomic.Int64
	_, idx, err := Hedge(context.Background(), time.Hour, func(ctx context.Context) (int, error) {
		launches.Add(1)
		return 0, wantErr
	})
	if !errors.Is(err, wantErr) || idx != -1 {
		t.Fatalf("Hedge = (%d, %v), want the primary's error", idx, err)
	}
	if launches.Load() != 1 {
		t.Errorf("launched %d attempts, want 1 (fast failure is not a straggler)", launches.Load())
	}
}

func TestHedgeNegativeDelayDisablesBackup(t *testing.T) {
	var launches atomic.Int64
	release := make(chan struct{})
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(release)
	}()
	v, idx, err := Hedge(context.Background(), -1, func(ctx context.Context) (string, error) {
		launches.Add(1)
		<-release
		return "only", nil
	})
	if err != nil || v != "only" || idx != 0 {
		t.Fatalf("Hedge = (%q, %d, %v)", v, idx, err)
	}
	if launches.Load() != 1 {
		t.Errorf("launched %d attempts with hedging disabled", launches.Load())
	}
}

func TestHedgeContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	entered := make(chan struct{})
	go func() {
		<-entered
		cancel()
	}()
	_, idx, err := Hedge(ctx, time.Hour, func(ctx context.Context) (int, error) {
		entered <- struct{}{}
		<-ctx.Done()
		return 0, ctx.Err()
	})
	if !errors.Is(err, context.Canceled) || idx != -1 {
		t.Fatalf("Hedge = (%d, %v), want the caller's cancellation", idx, err)
	}
}

func TestHedgerQuantileDelay(t *testing.T) {
	h := NewHedger(HedgerConfig{Quantile: 0.9, Window: 10, MinSamples: 5, Default: 123 * time.Millisecond})
	if d := h.Delay(); d != 123*time.Millisecond {
		t.Fatalf("cold Delay() = %v, want the default", d)
	}
	for i := 1; i <= 10; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	// p90 over 1..10ms lands on the 9th/10th observation.
	if d := h.Delay(); d < 8*time.Millisecond || d > 10*time.Millisecond {
		t.Fatalf("warm Delay() = %v, want ~9ms", d)
	}
	// The window slides: flood with large latencies and the delay rises.
	for i := 0; i < 10; i++ {
		h.Observe(500 * time.Millisecond)
	}
	if d := h.Delay(); d != 500*time.Millisecond {
		t.Fatalf("Delay() = %v after the window slid, want 500ms", d)
	}
}

func TestHedgerClamps(t *testing.T) {
	h := NewHedger(HedgerConfig{Window: 4, MinSamples: 2, MinDelay: 10 * time.Millisecond, MaxDelay: 100 * time.Millisecond})
	for i := 0; i < 4; i++ {
		h.Observe(time.Microsecond)
	}
	if d := h.Delay(); d != 10*time.Millisecond {
		t.Fatalf("Delay() = %v, want the 10ms floor", d)
	}
	for i := 0; i < 4; i++ {
		h.Observe(time.Minute)
	}
	if d := h.Delay(); d != 100*time.Millisecond {
		t.Fatalf("Delay() = %v, want the 100ms ceiling", d)
	}
}
