package client

import (
	"math/rand"
	"sync"
	"time"
)

// BreakerState is the circuit breaker's position: Closed (traffic
// flows), Open (traffic short-circuits to immediate failure), or
// HalfOpen (one probe in flight decides which way to settle).
type BreakerState int

// The three breaker states.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String names the state for health payloads and logs.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerConfig parameterizes a Breaker; zero fields take defaults.
type BreakerConfig struct {
	// FailureThreshold is the number of consecutive failures that trips
	// a closed breaker open (default 5).
	FailureThreshold int
	// OpenTimeout is the base cooldown an open breaker waits before
	// admitting a half-open probe (default 1s).
	OpenTimeout time.Duration
	// JitterFrac spreads the cooldown to [OpenTimeout,
	// OpenTimeout·(1+JitterFrac)] so a fleet of coordinators does not
	// probe a recovering shard in lockstep (default 0.2; 0 disables —
	// set a negative Seed-less config only in tests that pin times).
	JitterFrac float64
	// Seed makes the jitter stream reproducible (default 1).
	Seed int64
	// Now overrides the clock — the determinism seam for breaker tests
	// (default time.Now).
	Now func() time.Time
}

// Breaker is a per-target circuit breaker: consecutive failures trip it
// open, a cooled-down breaker admits exactly one half-open probe, and
// the probe's outcome either closes it or re-opens it with a fresh
// (jittered, deterministic) cooldown. Safe for concurrent use.
//
// The caller drives it: Allow before attempting, then exactly one of
// Success or Failure per allowed attempt.
type Breaker struct {
	mu       sync.Mutex
	state    BreakerState
	failures int       // consecutive failures while closed
	probeAt  time.Time // when an open breaker admits its next probe
	probing  bool      // a half-open probe is in flight

	threshold   int
	openTimeout time.Duration
	jitterFrac  float64
	rng         *rand.Rand
	now         func() time.Time
}

// NewBreaker builds a Breaker from cfg.
func NewBreaker(cfg BreakerConfig) *Breaker {
	b := &Breaker{
		threshold:   cfg.FailureThreshold,
		openTimeout: cfg.OpenTimeout,
		jitterFrac:  cfg.JitterFrac,
		now:         cfg.Now,
	}
	if b.threshold <= 0 {
		b.threshold = 5
	}
	if b.openTimeout <= 0 {
		b.openTimeout = time.Second
	}
	switch {
	case cfg.JitterFrac < 0: // explicit "no jitter" (deterministic tests)
		b.jitterFrac = 0
	case cfg.JitterFrac > 0:
		b.jitterFrac = cfg.JitterFrac
	default:
		b.jitterFrac = 0.2
	}
	if b.now == nil {
		b.now = time.Now
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	b.rng = rand.New(rand.NewSource(seed))
	return b
}

// Allow reports whether an attempt may proceed, transitioning a
// cooled-down open breaker to half-open (and claiming the single probe
// slot) as a side effect. A false return must not be followed by
// Success or Failure.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Before(b.probeAt) {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	default: // half-open: one probe at a time
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success records a successful attempt: the breaker closes and the
// consecutive-failure count resets.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.failures = 0
	b.probing = false
}

// Failure records a failed attempt. A half-open probe failure re-opens
// the breaker with a fresh jittered cooldown; enough consecutive
// closed-state failures trip it.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.trip()
	case BreakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.trip()
		}
	}
	// Open: a straggling failure from before the trip changes nothing.
}

// trip opens the breaker and schedules the next probe. The jitter draw
// comes from the breaker's seeded stream, so a test (and a replay) sees
// the same probe times. Callers hold mu.
func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.failures = 0
	b.probing = false
	cooldown := b.openTimeout
	if b.jitterFrac > 0 {
		cooldown += time.Duration(b.jitterFrac * b.rng.Float64() * float64(b.openTimeout))
	}
	b.probeAt = b.now().Add(cooldown)
}

// State reports the breaker's current position without transitioning
// it (an open breaker past its cooldown still reads Open until an
// Allow claims the probe).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
