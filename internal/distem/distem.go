// Package distem demonstrates the paper's Section 3.2.3 scalability
// claim: "EM algorithms can be easily expressed in MapReduce, so the
// inference procedure of TCAM can be naturally decomposed for parallel
// processing". It implements TTCAM training as explicit MapReduce
// rounds — user-sharded mappers that emit partial sufficient statistics
// against broadcast parameters, a reducer that merges them, and a
// coordinator M-step — and is verified (in tests) to reproduce the
// in-process trainer's parameters to floating-point tolerance.
//
// The package is deliberately structured like a distributed job even
// though it runs in one process: mappers only see their shard's cells
// plus the broadcast Params, communicate nothing but SufficientStats,
// and could be moved across machine boundaries behind an encoder
// without touching the math.
package distem

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"tcam/internal/cuboid"
	"tcam/internal/model"
)

// lambdaClamp matches the in-process trainer's bound.
const lambdaClamp = 0.01

// Config parameterizes a distributed TTCAM training job. It mirrors
// ttcam.Config; Shards is the number of mappers.
type Config struct {
	K1, K2    int
	MaxIters  int
	Seed      int64
	Smoothing float64
	Shards    int
}

// DefaultConfig returns a 4-shard job with the usual EM settings.
func DefaultConfig() Config {
	return Config{K1: 60, K2: 40, MaxIters: 50, Seed: 1, Smoothing: 1e-9, Shards: 4}
}

// Params is the broadcast state of a round: the full TTCAM parameter
// set. In a real deployment this is what the coordinator ships to every
// mapper at the start of a round.
type Params struct {
	NumUsers, NumIntervals, NumItems int
	K1, K2                           int

	Theta   []float64 // N×K1
	Phi     []float64 // K1×V
	ThetaTx []float64 // T×K2
	PhiX    []float64 // K2×V
	Lambda  []float64 // N
}

// SufficientStats is a mapper's output: the partial E-step numerators
// for its user shard. Reduce merges them by element-wise addition.
type SufficientStats struct {
	Theta   []float64
	Phi     []float64
	ThetaTx []float64
	PhiX    []float64
	LamNum  []float64
	LamDen  []float64
	LogL    float64
}

func newStats(p *Params) *SufficientStats {
	return &SufficientStats{
		Theta:   make([]float64, len(p.Theta)),
		Phi:     make([]float64, len(p.Phi)),
		ThetaTx: make([]float64, len(p.ThetaTx)),
		PhiX:    make([]float64, len(p.PhiX)),
		LamNum:  make([]float64, len(p.Lambda)),
		LamDen:  make([]float64, len(p.Lambda)),
	}
}

// Shard is one mapper's slice of the data: a contiguous user range and
// the cells belonging to it.
type Shard struct {
	UserLo, UserHi int // [lo, hi)
	Cells          []cuboid.Cell
}

// Partition splits the cuboid into contiguous user-range shards. Cells
// inside a shard keep their global (U, T, V) coordinates.
func Partition(c *cuboid.Cuboid, shards int) []Shard {
	if shards < 1 {
		shards = 1
	}
	n := c.NumUsers()
	if shards > n {
		shards = n
	}
	out := make([]Shard, 0, shards)
	chunk := (n + shards - 1) / shards
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		sh := Shard{UserLo: lo, UserHi: hi}
		for u := lo; u < hi; u++ {
			for _, ci := range c.UserCells(u) {
				sh.Cells = append(sh.Cells, c.Cells()[ci])
			}
		}
		out = append(out, sh)
	}
	return out
}

// MapShard runs the E-step over one shard against the broadcast params
// — Equations (4), (5) and (13) — and returns the shard's partial
// sufficient statistics (numerators of Equations (8)–(9), (11),
// (15)–(16)).
func MapShard(sh Shard, p *Params) *SufficientStats {
	out := newStats(p)
	k1, k2, V := p.K1, p.K2, p.NumItems
	pz := make([]float64, k1)
	px := make([]float64, k2)
	for _, cell := range sh.Cells {
		u, t, v, w := int(cell.U), int(cell.T), int(cell.V), cell.Score
		lam := p.Lambda[u]
		thetaRow := p.Theta[u*k1 : (u+1)*k1]
		var pu float64
		for z := 0; z < k1; z++ {
			q := thetaRow[z] * p.Phi[z*V+v]
			pz[z] = q
			pu += q
		}
		ctxRow := p.ThetaTx[t*k2 : (t+1)*k2]
		var pt float64
		for x := 0; x < k2; x++ {
			q := ctxRow[x] * p.PhiX[x*V+v]
			px[x] = q
			pt += q
		}
		denom := lam*pu + (1-lam)*pt
		if denom <= 0 {
			denom = 1e-300
		}
		out.LogL += w * math.Log(denom)
		ps1 := lam * pu / denom
		ps0 := 1 - ps1
		if pu > 0 && ps1 > 0 {
			scale := w * ps1 / pu
			for z := 0; z < k1; z++ {
				c := scale * pz[z]
				out.Theta[u*k1+z] += c
				out.Phi[z*V+v] += c
			}
		}
		if pt > 0 && ps0 > 0 {
			scale := w * ps0 / pt
			for x := 0; x < k2; x++ {
				c := scale * px[x]
				out.ThetaTx[t*k2+x] += c
				out.PhiX[x*V+v] += c
			}
		}
		out.LamNum[u] += w * ps1
		out.LamDen[u] += w
	}
	return out
}

// Reduce merges partial statistics in shard order (deterministic
// summation order, so runs are reproducible for a fixed shard count).
func Reduce(parts []*SufficientStats) (*SufficientStats, error) {
	if len(parts) == 0 {
		return nil, errors.New("distem: nothing to reduce")
	}
	out := parts[0]
	for _, p := range parts[1:] {
		addInto(out.Theta, p.Theta)
		addInto(out.Phi, p.Phi)
		addInto(out.ThetaTx, p.ThetaTx)
		addInto(out.PhiX, p.PhiX)
		addInto(out.LamNum, p.LamNum)
		addInto(out.LamDen, p.LamDen)
		out.LogL += p.LogL
	}
	return out, nil
}

func addInto(dst, src []float64) {
	for i, x := range src {
		dst[i] += x
	}
}

// MStep turns reduced statistics into the next round's parameters —
// the coordinator side of Equations (8)–(11), (15)–(16).
func MStep(p *Params, s *SufficientStats, smoothing float64) {
	copy(p.Theta, s.Theta)
	model.NormalizeRows(p.Theta, p.K1, smoothing)
	copy(p.Phi, s.Phi)
	model.NormalizeRows(p.Phi, p.NumItems, smoothing)
	copy(p.ThetaTx, s.ThetaTx)
	model.NormalizeRows(p.ThetaTx, p.K2, smoothing)
	copy(p.PhiX, s.PhiX)
	model.NormalizeRows(p.PhiX, p.NumItems, smoothing)
	for u := range p.Lambda {
		if s.LamDen[u] > 0 {
			l := s.LamNum[u] / s.LamDen[u]
			if l < lambdaClamp {
				l = lambdaClamp
			}
			if l > 1-lambdaClamp {
				l = 1 - lambdaClamp
			}
			p.Lambda[u] = l
		}
	}
}

// InitParams builds the round-zero broadcast parameters with the same
// jittered-uniform initialization (and RNG draw order) as the
// in-process trainer, so both converge to identical parameters.
func InitParams(c *cuboid.Cuboid, cfg Config) *Params {
	p := &Params{
		NumUsers:     c.NumUsers(),
		NumIntervals: c.NumIntervals(),
		NumItems:     c.NumItems(),
		K1:           cfg.K1,
		K2:           cfg.K2,
		Theta:        make([]float64, c.NumUsers()*cfg.K1),
		Phi:          make([]float64, cfg.K1*c.NumItems()),
		ThetaTx:      make([]float64, c.NumIntervals()*cfg.K2),
		PhiX:         make([]float64, cfg.K2*c.NumItems()),
		Lambda:       make([]float64, c.NumUsers()),
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	jitter := func(data []float64, cols int) {
		for i := range data {
			data[i] = 1 + 0.5*rng.Float64()
		}
		model.NormalizeRows(data, cols, 0)
	}
	jitter(p.Theta, cfg.K1)
	jitter(p.Phi, c.NumItems())
	jitter(p.ThetaTx, cfg.K2)
	jitter(p.PhiX, c.NumItems())
	for u := range p.Lambda {
		p.Lambda[u] = 0.5
	}
	return p
}

// Train runs the full MapReduce EM job: Partition once, then
// MaxIters rounds of broadcast → map (mappers run concurrently) →
// reduce → M-step. It returns the final parameters and the per-round
// log-likelihood trace.
func Train(c *cuboid.Cuboid, cfg Config) (*Params, model.TrainStats, error) {
	var stats model.TrainStats
	if cfg.K1 <= 0 || cfg.K2 <= 0 || cfg.MaxIters <= 0 {
		return nil, stats, fmt.Errorf("distem: invalid config K1=%d K2=%d iters=%d", cfg.K1, cfg.K2, cfg.MaxIters)
	}
	if c.NNZ() == 0 {
		return nil, stats, errors.New("distem: empty training cuboid")
	}
	shards := Partition(c, cfg.Shards)
	p := InitParams(c, cfg)
	for iter := 0; iter < cfg.MaxIters; iter++ {
		parts := make([]*SufficientStats, len(shards))
		var wg sync.WaitGroup
		for i := range shards {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				parts[i] = MapShard(shards[i], p)
			}(i)
		}
		wg.Wait()
		merged, err := Reduce(parts)
		if err != nil {
			return nil, stats, err
		}
		MStep(p, merged, cfg.Smoothing)
		stats.LogLikelihood = append(stats.LogLikelihood, merged.LogL)
	}
	return p, stats, nil
}

// Score evaluates the TTCAM likelihood under the trained parameters
// (Equations 1 and 12), so distributed results can be compared against
// the in-process model's ranking directly.
func (p *Params) Score(u, t, v int) float64 {
	var pu float64
	thetaRow := p.Theta[u*p.K1 : (u+1)*p.K1]
	for z := 0; z < p.K1; z++ {
		pu += thetaRow[z] * p.Phi[z*p.NumItems+v]
	}
	var pt float64
	ctxRow := p.ThetaTx[t*p.K2 : (t+1)*p.K2]
	for x := 0; x < p.K2; x++ {
		pt += ctxRow[x] * p.PhiX[x*p.NumItems+v]
	}
	lam := p.Lambda[u]
	return lam*pu + (1-lam)*pt
}
