// Package distem demonstrates the paper's Section 3.2.3 scalability
// claim: "EM algorithms can be easily expressed in MapReduce, so the
// inference procedure of TCAM can be naturally decomposed for parallel
// processing". It implements TTCAM training as explicit MapReduce
// rounds — user-sharded mappers that emit partial sufficient statistics
// against broadcast parameters, a reducer that merges them, and a
// coordinator M-step — and is verified (in tests) to reproduce the
// in-process trainer's parameters to floating-point tolerance.
//
// The package is deliberately structured like a distributed job even
// though it runs in one process: mappers only see their shard's cells
// plus the broadcast Params, communicate nothing but SufficientStats,
// and could be moved across machine boundaries behind an encoder
// without touching the math.
//
// The coordinator itself is the internal/train engine: distem's shards
// are the engine's shards, its reducer is the engine's ordered
// accumulator merge, and the clamp bound comes from the same package
// the in-process trainers use — none of that arithmetic is declared
// here, so it can never drift from the single-process path.
package distem

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"tcam/internal/cuboid"
	"tcam/internal/model"
	"tcam/internal/train"
)

// Config parameterizes a distributed TTCAM training job. It mirrors
// ttcam.Config; Shards is the number of mappers.
type Config struct {
	K1, K2    int
	MaxIters  int
	Seed      int64
	Smoothing float64
	Shards    int
	// Tol is the engine's relative log-likelihood early stop. The zero
	// default keeps the job's historical fixed-round semantics: every
	// round runs.
	Tol float64
	// MaxWall optionally bounds the job's wall-clock time (0 = no budget).
	MaxWall time.Duration
	// Workers caps concurrent mappers; non-positive means GOMAXPROCS.
	// Parameters never depend on it — only Shards fixes the arithmetic.
	Workers int
	// Checkpoint configures coordinator-side parameter snapshots and
	// resume; the zero value disables them.
	Checkpoint train.CheckpointConfig
	// Hook, when non-nil, observes every completed round.
	Hook func(model.IterStat)
}

// DefaultConfig returns a 4-shard job with the usual EM settings.
func DefaultConfig() Config {
	return Config{K1: 60, K2: 40, MaxIters: 50, Seed: 1, Smoothing: 1e-9, Shards: 4}
}

// Params is the broadcast state of a round: the full TTCAM parameter
// set. In a real deployment this is what the coordinator ships to every
// mapper at the start of a round.
type Params struct {
	NumUsers, NumIntervals, NumItems int
	K1, K2                           int

	Theta   []float64 // N×K1
	Phi     []float64 // K1×V
	ThetaTx []float64 // T×K2
	PhiX    []float64 // K2×V
	Lambda  []float64 // N
}

// SufficientStats is a mapper's output: the partial E-step numerators
// for its user shard. Reduce merges them by element-wise addition.
type SufficientStats struct {
	Theta   []float64
	Phi     []float64
	ThetaTx []float64
	PhiX    []float64
	LamNum  []float64
	LamDen  []float64
	LogL    float64
}

func newStats(p *Params) *SufficientStats {
	return &SufficientStats{
		Theta:   make([]float64, len(p.Theta)),
		Phi:     make([]float64, len(p.Phi)),
		ThetaTx: make([]float64, len(p.ThetaTx)),
		PhiX:    make([]float64, len(p.PhiX)),
		LamNum:  make([]float64, len(p.Lambda)),
		LamDen:  make([]float64, len(p.Lambda)),
	}
}

// Shard is one mapper's slice of the data: a contiguous user range and
// the cells belonging to it. Because the cuboid stores cells sorted by
// (U, T, V), a user range is one contiguous cell range, so a shard is a
// set of zero-copy windows into the cuboid's CSR arrays rather than a
// copied-out cell list.
type Shard struct {
	UserLo, UserHi int // [lo, hi)
	// Cells is the shard's window of the canonical cell slice — what a
	// real deployment would ship to the mapper's machine.
	Cells []cuboid.Cell
	// Columnar views aligned with Cells, plus row pointers rebased so
	// userPtr[u-UserLo] is the first cell of user u within the windows.
	ts, vs  []int32
	scores  []float64
	userPtr []int32
}

// Partition splits the cuboid into contiguous user-range shards. Cells
// inside a shard keep their global (U, T, V) coordinates; no cell data
// is copied — every shard aliases the cuboid's CSR storage.
func Partition(c *cuboid.Cuboid, shards int) []Shard {
	if shards < 1 {
		shards = 1
	}
	n := c.NumUsers()
	if shards > n {
		shards = n
	}
	cells := c.Cells()
	ts, vs, scores := c.CSR()
	out := make([]Shard, 0, shards)
	chunk := (n + shards - 1) / shards
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		cellLo, _ := c.UserSpan(lo)
		_, cellHi := c.UserSpan(hi - 1)
		ptr := make([]int32, hi-lo+1)
		for u := lo; u < hi; u++ {
			_, e := c.UserSpan(u)
			ptr[u-lo+1] = int32(e - cellLo)
		}
		out = append(out, Shard{
			UserLo:  lo,
			UserHi:  hi,
			Cells:   cells[cellLo:cellHi],
			ts:      ts[cellLo:cellHi],
			vs:      vs[cellLo:cellHi],
			scores:  scores[cellLo:cellHi],
			userPtr: ptr,
		})
	}
	return out
}

// MapShard runs the E-step over one shard against the broadcast params
// — Equations (4), (5) and (13) — and returns the shard's partial
// sufficient statistics (numerators of Equations (8)–(9), (11),
// (15)–(16)).
func MapShard(sh Shard, p *Params) *SufficientStats {
	out := newStats(p)
	mapShardInto(sh, p, out)
	return out
}

// mapShardInto accumulates one shard's E-step statistics into out,
// which the caller has zeroed. The scan walks the shard's CSR column
// windows user by user — the user loop hoists the λ, θ row and θ
// accumulator row lookups out of the per-cell loop; the per-cell
// floating-point operations and their order match the old cell-struct
// walk exactly, so mapper output is bit-identical.
func mapShardInto(sh Shard, p *Params, out *SufficientStats) {
	k1, k2, V := p.K1, p.K2, p.NumItems
	pz := make([]float64, k1)
	px := make([]float64, k2)
	ts, vs, scores := sh.ts, sh.vs, sh.scores
	for u := sh.UserLo; u < sh.UserHi; u++ {
		lo, hi := int(sh.userPtr[u-sh.UserLo]), int(sh.userPtr[u-sh.UserLo+1])
		if lo == hi {
			continue
		}
		lam := p.Lambda[u]
		thetaRow := p.Theta[u*k1 : (u+1)*k1]
		thetaAcc := out.Theta[u*k1 : (u+1)*k1]
		for i := lo; i < hi; i++ {
			t, v, w := int(ts[i]), int(vs[i]), scores[i]
			var pu float64
			for z := 0; z < k1; z++ {
				q := thetaRow[z] * p.Phi[z*V+v]
				pz[z] = q
				pu += q
			}
			ctxRow := p.ThetaTx[t*k2 : (t+1)*k2]
			var pt float64
			for x := 0; x < k2; x++ {
				q := ctxRow[x] * p.PhiX[x*V+v]
				px[x] = q
				pt += q
			}
			denom := lam*pu + (1-lam)*pt
			if denom <= 0 {
				denom = 1e-300
			}
			out.LogL += w * math.Log(denom)
			ps1 := lam * pu / denom
			ps0 := 1 - ps1
			if pu > 0 && ps1 > 0 {
				scale := w * ps1 / pu
				for z := 0; z < k1; z++ {
					c := scale * pz[z]
					thetaAcc[z] += c
					out.Phi[z*V+v] += c
				}
			}
			if pt > 0 && ps0 > 0 {
				scale := w * ps0 / pt
				for x := 0; x < k2; x++ {
					c := scale * px[x]
					out.ThetaTx[t*k2+x] += c
					out.PhiX[x*V+v] += c
				}
			}
			out.LamNum[u] += w * ps1
			out.LamDen[u] += w
		}
	}
}

// Reduce merges partial statistics in shard order (deterministic
// summation order, so runs are reproducible for a fixed shard count).
// The element-wise arithmetic is the engine's MergeInto — the same
// primitive the in-process trainers merge with.
func Reduce(parts []*SufficientStats) (*SufficientStats, error) {
	if len(parts) == 0 {
		return nil, errors.New("distem: nothing to reduce")
	}
	out := parts[0]
	for _, p := range parts[1:] {
		mergeStats(out, p)
	}
	return out, nil
}

func mergeStats(dst, src *SufficientStats) {
	train.MergeInto(dst.Theta, src.Theta)
	train.MergeInto(dst.Phi, src.Phi)
	train.MergeInto(dst.ThetaTx, src.ThetaTx)
	train.MergeInto(dst.PhiX, src.PhiX)
	train.MergeInto(dst.LamNum, src.LamNum)
	train.MergeInto(dst.LamDen, src.LamDen)
	dst.LogL += src.LogL
}

// MStep turns reduced statistics into the next round's parameters —
// the coordinator side of Equations (8)–(11), (15)–(16).
func MStep(p *Params, s *SufficientStats, smoothing float64) {
	copy(p.Theta, s.Theta)
	model.NormalizeRows(p.Theta, p.K1, smoothing)
	copy(p.Phi, s.Phi)
	model.NormalizeRows(p.Phi, p.NumItems, smoothing)
	copy(p.ThetaTx, s.ThetaTx)
	model.NormalizeRows(p.ThetaTx, p.K2, smoothing)
	copy(p.PhiX, s.PhiX)
	model.NormalizeRows(p.PhiX, p.NumItems, smoothing)
	for u := range p.Lambda {
		if s.LamDen[u] > 0 {
			p.Lambda[u] = train.ClampLambda(s.LamNum[u] / s.LamDen[u])
		}
	}
}

// InitParams builds the round-zero broadcast parameters with the same
// jittered-uniform initialization (and RNG draw order) as the
// in-process trainer, so both converge to identical parameters.
func InitParams(c *cuboid.Cuboid, cfg Config) *Params {
	p := &Params{
		NumUsers:     c.NumUsers(),
		NumIntervals: c.NumIntervals(),
		NumItems:     c.NumItems(),
		K1:           cfg.K1,
		K2:           cfg.K2,
		Theta:        make([]float64, c.NumUsers()*cfg.K1),
		Phi:          make([]float64, cfg.K1*c.NumItems()),
		ThetaTx:      make([]float64, c.NumIntervals()*cfg.K2),
		PhiX:         make([]float64, cfg.K2*c.NumItems()),
		Lambda:       make([]float64, c.NumUsers()),
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	jitter := func(data []float64, cols int) {
		for i := range data {
			data[i] = 1 + 0.5*rng.Float64()
		}
		model.NormalizeRows(data, cols, 0)
	}
	jitter(p.Theta, cfg.K1)
	jitter(p.Phi, c.NumItems())
	jitter(p.ThetaTx, cfg.K2)
	jitter(p.PhiX, c.NumItems())
	for u := range p.Lambda {
		p.Lambda[u] = 0.5
	}
	return p
}

// job adapts the MapReduce round structure to the train engine: each
// engine shard is one mapper, EStep is the map phase, the engine's
// ordered accumulator merge is the reduce phase, and MStep is the
// coordinator update.
type job struct {
	p      *Params
	cfg    Config
	shards []Shard
}

// jobAccum is one mapper's output slot, reused across rounds.
type jobAccum struct {
	j     *job
	shard int
	stats *SufficientStats
}

func (j *job) NumUsers() int { return j.p.NumUsers }

func (j *job) NewAccum(shard, lo, hi int) train.Accum {
	sh := j.shards[shard]
	if sh.UserLo != lo || sh.UserHi != hi {
		panic("distem: engine shard ranges diverge from Partition")
	}
	return &jobAccum{j: j, shard: shard, stats: newStats(j.p)}
}

func (a *jobAccum) Reset() {
	train.Zero(a.stats.Theta)
	train.Zero(a.stats.Phi)
	train.Zero(a.stats.ThetaTx)
	train.Zero(a.stats.PhiX)
	train.Zero(a.stats.LamNum)
	train.Zero(a.stats.LamDen)
	a.stats.LogL = 0
}

func (a *jobAccum) Merge(src train.Accum) {
	mergeStats(a.stats, src.(*jobAccum).stats)
}

func (j *job) EStep(acc train.Accum) {
	a := acc.(*jobAccum)
	mapShardInto(j.shards[a.shard], j.p, a.stats)
}

func (j *job) MStep(merged train.Accum) float64 {
	a := merged.(*jobAccum)
	MStep(j.p, a.stats, j.cfg.Smoothing)
	return a.stats.LogL
}

// EncodeParams snapshots the broadcast parameter set for the engine's
// checkpoints.
func (j *job) EncodeParams(w io.Writer) error { return j.p.Encode(w) }

// DecodeParams restores a checkpoint into the broadcast state, rejecting
// dimension mismatches against the job config.
func (j *job) DecodeParams(r io.Reader) error {
	loaded, err := DecodeParams(r)
	if err != nil {
		return err
	}
	p := j.p
	if loaded.NumUsers != p.NumUsers || loaded.NumIntervals != p.NumIntervals ||
		loaded.NumItems != p.NumItems || loaded.K1 != p.K1 || loaded.K2 != p.K2 {
		return fmt.Errorf("distem: checkpoint dimensions %d/%d/%d/K1=%d/K2=%d do not match job config %d/%d/%d/K1=%d/K2=%d",
			loaded.NumUsers, loaded.NumIntervals, loaded.NumItems, loaded.K1, loaded.K2,
			p.NumUsers, p.NumIntervals, p.NumItems, p.K1, p.K2)
	}
	p.Theta, p.Phi, p.ThetaTx, p.PhiX, p.Lambda = loaded.Theta, loaded.Phi, loaded.ThetaTx, loaded.PhiX, loaded.Lambda
	return nil
}

var (
	_ train.Trainable      = (*job)(nil)
	_ train.Checkpointable = (*job)(nil)
)

// Encode writes the broadcast parameter set to w in gob format — the
// coordinator's checkpoint payload, and what a real deployment would
// ship to mappers.
func (p *Params) Encode(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(p); err != nil {
		return fmt.Errorf("distem: encode params: %w", err)
	}
	return nil
}

// DecodeParams reads a parameter set written with Encode, validating
// dimensions.
func DecodeParams(r io.Reader) (*Params, error) {
	var p Params
	if err := gob.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("distem: decode params: %w", err)
	}
	if p.NumUsers <= 0 || p.NumIntervals <= 0 || p.NumItems <= 0 || p.K1 <= 0 || p.K2 <= 0 {
		return nil, fmt.Errorf("distem: corrupt dimensions %d/%d/%d/K1=%d/K2=%d",
			p.NumUsers, p.NumIntervals, p.NumItems, p.K1, p.K2)
	}
	if len(p.Theta) != p.NumUsers*p.K1 || len(p.Phi) != p.K1*p.NumItems ||
		len(p.ThetaTx) != p.NumIntervals*p.K2 || len(p.PhiX) != p.K2*p.NumItems ||
		len(p.Lambda) != p.NumUsers {
		return nil, errors.New("distem: parameter lengths inconsistent with dimensions")
	}
	return &p, nil
}

// Train runs the full MapReduce EM job on the engine: Partition once,
// then rounds of broadcast → map (mappers run concurrently) → ordered
// reduce → M-step until the engine's convergence policy stops. It
// returns the final parameters and the per-round statistics.
func Train(c *cuboid.Cuboid, cfg Config) (*Params, model.TrainStats, error) {
	var stats model.TrainStats
	if cfg.K1 <= 0 || cfg.K2 <= 0 || cfg.MaxIters <= 0 {
		return nil, stats, fmt.Errorf("distem: invalid config K1=%d K2=%d iters=%d", cfg.K1, cfg.K2, cfg.MaxIters)
	}
	if c.NNZ() == 0 {
		return nil, stats, errors.New("distem: empty training cuboid")
	}
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	p := InitParams(c, cfg)
	j := &job{p: p, cfg: cfg, shards: Partition(c, shards)}
	stats, err := train.Run(j, train.Config{
		MaxIters:   cfg.MaxIters,
		Tol:        cfg.Tol,
		MaxWall:    cfg.MaxWall,
		Shards:     shards,
		Workers:    cfg.Workers,
		Checkpoint: cfg.Checkpoint,
		Hook:       cfg.Hook,
	})
	if err != nil {
		return nil, stats, err
	}
	return p, stats, nil
}

// Score evaluates the TTCAM likelihood under the trained parameters
// (Equations 1 and 12), so distributed results can be compared against
// the in-process model's ranking directly.
func (p *Params) Score(u, t, v int) float64 {
	var pu float64
	thetaRow := p.Theta[u*p.K1 : (u+1)*p.K1]
	for z := 0; z < p.K1; z++ {
		pu += thetaRow[z] * p.Phi[z*p.NumItems+v]
	}
	var pt float64
	ctxRow := p.ThetaTx[t*p.K2 : (t+1)*p.K2]
	for x := 0; x < p.K2; x++ {
		pt += ctxRow[x] * p.PhiX[x*p.NumItems+v]
	}
	lam := p.Lambda[u]
	return lam*pu + (1-lam)*pt
}
