package distem

import (
	"math"
	"math/rand"
	"testing"

	"tcam/internal/cuboid"
	"tcam/internal/faultinject"
	"tcam/internal/model/ttcam"
	"tcam/internal/train"
)

func world(tb testing.TB) *cuboid.Cuboid {
	tb.Helper()
	rng := rand.New(rand.NewSource(21))
	b := cuboid.NewBuilder(25, 5, 30)
	for u := 0; u < 25; u++ {
		for t := 0; t < 5; t++ {
			b.MustAdd(u, t, (u+t*3)%30, 1)
			if rng.Float64() < 0.6 {
				b.MustAdd(u, t, rng.Intn(30), 1+rng.Float64())
			}
		}
	}
	return b.Build()
}

func TestPartitionCoversAllCells(t *testing.T) {
	c := world(t)
	for _, shards := range []int{1, 3, 7, 100} {
		parts := Partition(c, shards)
		total := 0
		lastHi := 0
		for _, sh := range parts {
			if sh.UserLo != lastHi {
				t.Fatalf("shards=%d: gap at user %d", shards, lastHi)
			}
			lastHi = sh.UserHi
			total += len(sh.Cells)
			for _, cell := range sh.Cells {
				if int(cell.U) < sh.UserLo || int(cell.U) >= sh.UserHi {
					t.Fatalf("cell for user %d in shard [%d,%d)", cell.U, sh.UserLo, sh.UserHi)
				}
			}
		}
		if lastHi != c.NumUsers() {
			t.Fatalf("shards=%d: users uncovered after %d", shards, lastHi)
		}
		if total != c.NNZ() {
			t.Fatalf("shards=%d: %d cells partitioned, want %d", shards, total, c.NNZ())
		}
	}
}

// The headline claim of Section 3.2.3: the MapReduce decomposition
// produces the same model as the in-process trainer.
func TestMatchesInProcessTrainer(t *testing.T) {
	c := world(t)
	dcfg := DefaultConfig()
	dcfg.K1, dcfg.K2, dcfg.MaxIters, dcfg.Shards = 6, 4, 12, 5
	params, dstats, err := Train(c, dcfg)
	if err != nil {
		t.Fatal(err)
	}

	tcfg := ttcam.DefaultConfig()
	tcfg.K1, tcfg.K2, tcfg.MaxIters = 6, 4, 12
	tcfg.Tol = 0 // run all iterations, like the MapReduce job
	tcfg.Workers = 1
	m, tstats, err := ttcam.Train(c, tcfg)
	if err != nil {
		t.Fatal(err)
	}

	if dstats.Iterations() != tstats.Iterations() {
		t.Fatalf("iteration counts differ: %d vs %d", dstats.Iterations(), tstats.Iterations())
	}
	for i := range dstats.LogLikelihood {
		if math.Abs(dstats.LogLikelihood[i]-tstats.LogLikelihood[i]) > 1e-6 {
			t.Fatalf("round %d LL differs: %v vs %v", i, dstats.LogLikelihood[i], tstats.LogLikelihood[i])
		}
	}
	for u := 0; u < c.NumUsers(); u++ {
		if math.Abs(params.Lambda[u]-m.Lambda(u)) > 1e-9 {
			t.Fatalf("lambda[%d] differs: %v vs %v", u, params.Lambda[u], m.Lambda(u))
		}
	}
	// Rankings must agree: compare scores on a probe grid.
	for u := 0; u < c.NumUsers(); u += 4 {
		for tt := 0; tt < c.NumIntervals(); tt++ {
			for v := 0; v < c.NumItems(); v += 7 {
				a, b := params.Score(u, tt, v), m.Score(u, tt, v)
				if math.Abs(a-b) > 1e-9 {
					t.Fatalf("score(%d,%d,%d) differs: %v vs %v", u, tt, v, a, b)
				}
			}
		}
	}
}

func TestShardCountInvariance(t *testing.T) {
	c := world(t)
	base := DefaultConfig()
	base.K1, base.K2, base.MaxIters = 5, 3, 8
	var ref *Params
	for _, shards := range []int{1, 2, 6} {
		cfg := base
		cfg.Shards = shards
		p, _, err := Train(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = p
			continue
		}
		for i := range p.Phi {
			if math.Abs(p.Phi[i]-ref.Phi[i]) > 1e-9 {
				t.Fatalf("shards=%d: phi[%d] differs from single-shard run", shards, i)
			}
		}
	}
}

func TestLogLikelihoodMonotone(t *testing.T) {
	c := world(t)
	cfg := DefaultConfig()
	cfg.K1, cfg.K2, cfg.MaxIters = 5, 3, 15
	_, st, err := Train(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < st.Iterations(); i++ {
		if st.LogLikelihood[i] < st.LogLikelihood[i-1]-math.Abs(st.LogLikelihood[i-1])*1e-8 {
			t.Fatalf("LL decreased at round %d", i)
		}
	}
}

func TestTrainValidation(t *testing.T) {
	c := world(t)
	bad := []Config{
		{K1: 0, K2: 3, MaxIters: 5, Shards: 2},
		{K1: 3, K2: 0, MaxIters: 5, Shards: 2},
		{K1: 3, K2: 3, MaxIters: 0, Shards: 2},
	}
	for i, cfg := range bad {
		if _, _, err := Train(c, cfg); err == nil {
			t.Errorf("case %d: Train accepted invalid config", i)
		}
	}
	empty := cuboid.NewBuilder(2, 2, 2).Build()
	if _, _, err := Train(empty, DefaultConfig()); err == nil {
		t.Error("Train accepted empty cuboid")
	}
}

func TestReduceEmpty(t *testing.T) {
	if _, err := Reduce(nil); err == nil {
		t.Error("Reduce accepted empty input")
	}
}

// TestCheckpointResumeBitIdentical proves the coordinator inherits the
// engine's crash-recovery guarantee: kill the job right after a
// snapshot, resume, and land on the exact parameters of an
// uninterrupted run.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	defer faultinject.Reset()
	c := world(t)
	base := DefaultConfig()
	base.K1, base.K2, base.MaxIters, base.Shards = 5, 3, 10, 3

	ref, refStats, err := Train(c, base)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	cfg := base
	cfg.Checkpoint = train.CheckpointConfig{Dir: dir, Every: 1}
	var saves int
	faultinject.Set("train.checkpoint.saved", func() {
		saves++
		if saves == 4 {
			panic("distem test: injected crash after checkpoint")
		}
	})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("injected crash did not fire")
			}
		}()
		_, _, _ = Train(c, cfg)
	}()
	faultinject.Clear("train.checkpoint.saved")

	cfg.Checkpoint.Resume = true
	got, gotStats, err := Train(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if gotStats.ResumedAt != 4 {
		t.Fatalf("ResumedAt = %d, want 4", gotStats.ResumedAt)
	}
	for label, pair := range map[string][2][]float64{
		"theta":   {got.Theta, ref.Theta},
		"phi":     {got.Phi, ref.Phi},
		"thetaTx": {got.ThetaTx, ref.ThetaTx},
		"phiX":    {got.PhiX, ref.PhiX},
		"lambda":  {got.Lambda, ref.Lambda},
	} {
		if len(pair[0]) != len(pair[1]) {
			t.Fatalf("%s: length mismatch", label)
		}
		for i := range pair[0] {
			if math.Float64bits(pair[0][i]) != math.Float64bits(pair[1][i]) {
				t.Fatalf("%s[%d]: resumed run differs from uninterrupted run", label, i)
			}
		}
	}
	if len(gotStats.LogLikelihood) != len(refStats.LogLikelihood) {
		t.Fatalf("LL trace lengths differ: %d vs %d", len(gotStats.LogLikelihood), len(refStats.LogLikelihood))
	}
	for i := range gotStats.LogLikelihood {
		if math.Float64bits(gotStats.LogLikelihood[i]) != math.Float64bits(refStats.LogLikelihood[i]) {
			t.Fatalf("LL[%d] differs after resume", i)
		}
	}
}
