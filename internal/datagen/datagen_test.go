package datagen

import (
	"math"
	"strings"
	"testing"

	"tcam/internal/cuboid"
	"tcam/internal/stats"
)

// tinyConfig returns a fast configuration for unit tests.
func tinyConfig(p Profile) Config {
	cfg := DefaultConfig(p)
	cfg.NumUsers = 60
	cfg.NumItems = 120
	cfg.NumDays = 30
	cfg.Genres = 4
	cfg.Events = 5
	return cfg
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := tinyConfig(Digg)
	a := MustGenerate(cfg)
	b := MustGenerate(cfg)
	if a.Log.NumEvents() != b.Log.NumEvents() {
		t.Fatalf("same seed produced %d vs %d events", a.Log.NumEvents(), b.Log.NumEvents())
	}
	for i, ea := range a.Log.Events() {
		eb := b.Log.Events()[i]
		if ea != eb {
			t.Fatalf("event %d differs: %+v vs %+v", i, ea, eb)
		}
	}
	cfg.Seed = 2
	c := MustGenerate(cfg)
	if c.Log.NumEvents() == a.Log.NumEvents() {
		// Event counts could coincide; compare a prefix of events too.
		same := true
		for i := 0; i < 10 && i < a.Log.NumEvents(); i++ {
			if a.Log.Events()[i] != c.Log.Events()[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical logs")
		}
	}
}

func TestGenerateProfiles(t *testing.T) {
	for _, p := range []Profile{Digg, MovieLens, Douban, Delicious} {
		t.Run(p.String(), func(t *testing.T) {
			cfg := tinyConfig(p)
			w := MustGenerate(cfg)
			if w.Log.NumEvents() == 0 {
				t.Fatal("no events generated")
			}
			if w.Log.NumItems() != cfg.NumItems {
				t.Fatalf("interned %d items, want %d", w.Log.NumItems(), cfg.NumItems)
			}
			if w.Log.NumUsers() != cfg.NumUsers {
				t.Fatalf("interned %d users, want %d", w.Log.NumUsers(), cfg.NumUsers)
			}
			for _, e := range w.Log.Events() {
				if e.Time < 0 || e.Time >= int64(cfg.NumDays) {
					t.Fatalf("event time %d outside [0,%d)", e.Time, cfg.NumDays)
				}
				if cfg.Stars {
					if e.Score < 1 || e.Score > 5 {
						t.Fatalf("star score %v outside [1,5]", e.Score)
					}
				} else if e.Score != 1 {
					t.Fatalf("implicit score %v, want 1", e.Score)
				}
			}
		})
	}
}

func TestGroundTruthConsistency(t *testing.T) {
	w := MustGenerate(tinyConfig(Delicious))
	truth, cfg := w.Truth, w.Config
	for v := 0; v < cfg.NumItems; v++ {
		if truth.GenericPopular[v] {
			if truth.Bursty[v] {
				t.Errorf("item %d both generic and bursty", v)
			}
			continue
		}
		if truth.EventCluster[v] >= 0 && !truth.Bursty[v] {
			t.Errorf("item %d in event cluster but not bursty", v)
		}
		if truth.EventCluster[v] < 0 && truth.Genre[v] < 0 {
			t.Errorf("item %d owned by nothing", v)
		}
		if truth.ReleaseDay[v] < 0 || truth.ReleaseDay[v] >= cfg.NumDays {
			t.Errorf("item %d release day %d outside range", v, truth.ReleaseDay[v])
		}
	}
	for u := 0; u < cfg.NumUsers; u++ {
		if truth.Lambda[u] <= 0 || truth.Lambda[u] >= 1 {
			t.Errorf("lambda[%d] = %v outside (0,1)", u, truth.Lambda[u])
		}
		if math.Abs(truth.UserInterest[u].Sum()-1) > 1e-9 {
			t.Errorf("user %d interest sums to %v", u, truth.UserInterest[u].Sum())
		}
	}
	for x, peak := range truth.PeakDay {
		if peak < 0 || peak >= cfg.NumDays {
			t.Errorf("event %d peak day %d outside range", x, peak)
		}
	}
}

func TestItemNamesEncodeTruth(t *testing.T) {
	w := MustGenerate(tinyConfig(Digg))
	for v := 0; v < w.Config.NumItems; v++ {
		name := w.Log.ItemID(v)
		switch {
		case w.Truth.GenericPopular[v]:
			if !strings.Contains(name, "generic") {
				t.Errorf("generic item named %q", name)
			}
		case w.Truth.EventCluster[v] >= 0:
			if !strings.Contains(name, "-e") {
				t.Errorf("event item named %q", name)
			}
		default:
			if !strings.Contains(name, "-g") {
				t.Errorf("stable item named %q", name)
			}
		}
	}
}

func TestLambdaMeansDifferByProfile(t *testing.T) {
	digg := MustGenerate(tinyConfig(Digg))
	ml := MustGenerate(tinyConfig(MovieLens))
	if stats.Mean(digg.Truth.Lambda) >= stats.Mean(ml.Truth.Lambda) {
		t.Errorf("mean lambda Digg %v should be below MovieLens %v",
			stats.Mean(digg.Truth.Lambda), stats.Mean(ml.Truth.Lambda))
	}
}

// Event items must actually be temporally concentrated around their
// cluster's peak, and stable items must not — the structural property
// Figures 2 and 5 rely on.
func TestBurstyItemsConcentrateNearPeak(t *testing.T) {
	cfg := tinyConfig(Digg)
	cfg.NumUsers = 300 // denser log for stable per-item series
	w := MustGenerate(cfg)
	c, _, err := w.Log.Grid(1)
	if err != nil {
		t.Fatal(err)
	}
	st := cuboid.ComputeStats(c)
	nearPeakMass := func(v int, peak int, radius int) float64 {
		series := cuboid.ItemFrequencySeries(c, v)
		var near, total float64
		for d, x := range series {
			total += x
			if d >= peak-radius && d <= peak+radius {
				near += x
			}
		}
		if total == 0 {
			return -1
		}
		return near / total
	}
	var burstyShare, stableShare []float64
	for v := 0; v < cfg.NumItems; v++ {
		if st.ItemUsers[v] < 5 {
			continue
		}
		if x := w.Truth.EventCluster[v]; x >= 0 {
			if s := nearPeakMass(v, w.Truth.PeakDay[x], int(3*cfg.BurstWidthDays)); s >= 0 {
				burstyShare = append(burstyShare, s)
			}
		} else if !w.Truth.GenericPopular[v] {
			// Compare against mass near the middle of the timeline with
			// the same radius.
			if s := nearPeakMass(v, cfg.NumDays/2, int(3*cfg.BurstWidthDays)); s >= 0 {
				stableShare = append(stableShare, s)
			}
		}
	}
	if len(burstyShare) < 10 || len(stableShare) < 5 {
		t.Fatalf("too few measurable items: %d bursty, %d stable", len(burstyShare), len(stableShare))
	}
	// The ±3σ window spans a large share of the tiny test timeline, so
	// stable items accrue sizable incidental mass; require a clear gap
	// rather than a fixed multiple.
	if stats.Mean(burstyShare) < 1.25*stats.Mean(stableShare) {
		t.Errorf("bursty concentration %v not clearly above stable %v",
			stats.Mean(burstyShare), stats.Mean(stableShare))
	}
	if stats.Mean(burstyShare) < 0.7 {
		t.Errorf("bursty items only place %v of mass near their peak", stats.Mean(burstyShare))
	}
}

func TestValidate(t *testing.T) {
	mod := func(f func(*Config)) Config {
		cfg := DefaultConfig(Digg)
		f(&cfg)
		return cfg
	}
	tests := []struct {
		name string
		cfg  Config
	}{
		{"zero users", mod(func(c *Config) { c.NumUsers = 0 })},
		{"zero genres", mod(func(c *Config) { c.Genres = 0 })},
		{"lambda 1", mod(func(c *Config) { c.MeanLambda = 1 })},
		{"neg conc", mod(func(c *Config) { c.LambdaConc = 0 })},
		{"event frac", mod(func(c *Config) { c.EventItemFrac = 1.5 })},
		{"active prob", mod(func(c *Config) { c.ActiveDayProb = 0 })},
		{"rate", mod(func(c *Config) { c.EventsPerActiveDay = 0 })},
		{"noise", mod(func(c *Config) { c.NoiseFrac = 1 })},
		{"alpha", mod(func(c *Config) { c.InterestAlpha = 0 })},
		{"burst width", mod(func(c *Config) { c.BurstWidthDays = 0 })},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Generate(tt.cfg); err == nil {
				t.Error("Generate accepted an invalid config")
			}
		})
	}
	if err := DefaultConfig(Digg).Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestProfileString(t *testing.T) {
	want := map[Profile]string{Digg: "Digg", MovieLens: "MovieLens", Douban: "Douban Movie", Delicious: "Delicious", Profile(99): "unknown"}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("Profile(%d).String() = %q, want %q", p, p.String(), s)
		}
	}
}
