package datagen

// Query-load synthesis for serving benchmarks: real social traffic is
// head-heavy, so the stream of (user, time, k, exclude) tuples a
// benchmark fires at tcamserver or the shard coordinator should be
// Zipf-skewed too — a few hot users dominate, most of the long tail
// appears rarely, and exclude lists re-mention the popular items.

import (
	"fmt"
	"math/rand"

	"tcam/internal/stats"
)

// QueryLoadConfig parameterizes a synthetic query stream; zero fields
// take defaults where noted.
type QueryLoadConfig struct {
	// Queries is the stream length. Required.
	Queries int
	// Users is the user-catalog size. Required. User u's request rate
	// follows rank u+1 under a Zipf law: user 0 is the hottest.
	Users int
	// Items is the item-catalog size. Required when MaxExclude > 0;
	// exclude entries are Zipf-skewed the same way (item 0 hottest).
	Items int
	// UserExponent is the Zipf exponent of user popularity (default
	// 1.1; larger = more head-heavy, 0 < s).
	UserExponent float64
	// ItemExponent is the Zipf exponent of exclude-list items (default
	// 1.1).
	ItemExponent float64
	// TimeMin/TimeMax bound the uniform timestamp draw, inclusive
	// (default both zero: every query at t=0).
	TimeMin, TimeMax int64
	// K is the top-k per query (default 10).
	K int
	// MaxExclude bounds the per-query exclude-list length, drawn
	// uniformly from [0, MaxExclude] without duplicates (default 0).
	MaxExclude int
	// Seed makes the stream reproducible (default 1).
	Seed int64
}

// Query is one synthetic request: indices into the user/item catalogs,
// so callers can format names however their serving tier expects.
type Query struct {
	User    int
	Time    int64
	K       int
	Exclude []int
}

// GenerateQueries synthesizes a Zipf-skewed query load. The same
// config always yields the same stream.
func GenerateQueries(cfg QueryLoadConfig) ([]Query, error) {
	if cfg.Queries <= 0 {
		return nil, fmt.Errorf("datagen: Queries must be positive, got %d", cfg.Queries)
	}
	if cfg.Users <= 0 {
		return nil, fmt.Errorf("datagen: Users must be positive, got %d", cfg.Users)
	}
	if cfg.MaxExclude < 0 {
		return nil, fmt.Errorf("datagen: MaxExclude must be non-negative, got %d", cfg.MaxExclude)
	}
	if cfg.MaxExclude > 0 && cfg.Items <= cfg.MaxExclude {
		return nil, fmt.Errorf("datagen: Items (%d) must exceed MaxExclude (%d)", cfg.Items, cfg.MaxExclude)
	}
	if cfg.TimeMax < cfg.TimeMin {
		return nil, fmt.Errorf("datagen: TimeMax %d before TimeMin %d", cfg.TimeMax, cfg.TimeMin)
	}
	userExp := cfg.UserExponent
	if userExp <= 0 {
		userExp = 1.1
	}
	itemExp := cfg.ItemExponent
	if itemExp <= 0 {
		itemExp = 1.1
	}
	k := cfg.K
	if k <= 0 {
		k = 10
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))
	users := zipfSampler(cfg.Users, userExp)
	var items itemSampler
	if cfg.MaxExclude > 0 {
		items = zipfSampler(cfg.Items, itemExp)
	}
	span := cfg.TimeMax - cfg.TimeMin
	out := make([]Query, cfg.Queries)
	for i := range out {
		u, _ := users.sample(rng)
		q := Query{User: u, Time: cfg.TimeMin, K: k}
		if span > 0 {
			q.Time += rng.Int63n(span + 1)
		}
		if cfg.MaxExclude > 0 {
			want := rng.Intn(cfg.MaxExclude + 1)
			seen := make(map[int]bool, want)
			for len(q.Exclude) < want {
				v, _ := items.sample(rng)
				if seen[v] {
					continue // hot items repeat often; keep the list a set
				}
				seen[v] = true
				q.Exclude = append(q.Exclude, v)
			}
		}
		out[i] = q
	}
	return out, nil
}

// zipfSampler builds a rank-ordered Zipf sampler over [0, n): index 0
// is the most popular.
func zipfSampler(n int, exponent float64) itemSampler {
	ranks := make([]int, n)
	for i := range ranks {
		ranks[i] = i
	}
	return newItemSampler(ranks, stats.Zipf(n, exponent))
}
