package datagen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"tcam/internal/dataset"
	"tcam/internal/stats"
)

// assignItems gives every item its ground-truth genre, event cluster,
// burstiness flag and release day, and places the temporal-process
// peaks across the timeline.
func assignItems(cfg Config, rng *rand.Rand, truth *GroundTruth) {
	// Spread process peaks evenly with jitter so the timeline is covered.
	for x := 0; x < cfg.Events; x++ {
		center := (float64(x) + 0.5) * float64(cfg.NumDays) / float64(cfg.Events)
		jitter := (rng.Float64() - 0.5) * float64(cfg.NumDays) / float64(cfg.Events) * 0.4
		peak := int(center + jitter)
		if peak < 0 {
			peak = 0
		}
		if peak >= cfg.NumDays {
			peak = cfg.NumDays - 1
		}
		truth.PeakDay[x] = peak
	}
	for v := 0; v < cfg.NumItems; v++ {
		truth.Genre[v] = -1
		truth.EventCluster[v] = -1
		switch {
		case rng.Float64() < cfg.GenericPopularFrac:
			truth.GenericPopular[v] = true
			truth.Genre[v] = rng.Intn(cfg.Genres)
			truth.ReleaseDay[v] = 0
		case rng.Float64() < cfg.EventItemFrac:
			x := rng.Intn(cfg.Events)
			truth.EventCluster[v] = x
			truth.Bursty[v] = true
			if cfg.CohortStyle {
				// Cohort items (movies) also belong to a genre and are
				// released shortly before their cohort wave peaks.
				truth.Genre[v] = rng.Intn(cfg.Genres)
			}
			rel := truth.PeakDay[x] - int(rng.Float64()*cfg.BurstWidthDays)
			if rel < 0 {
				rel = 0
			}
			truth.ReleaseDay[v] = rel
		default:
			truth.Genre[v] = rng.Intn(cfg.Genres)
			// Stable items enter early so they are available all along.
			truth.ReleaseDay[v] = rng.Intn(cfg.NumDays/3 + 1)
		}
	}
}

// indexItems inverts the per-item assignments into member lists per
// genre, per event cluster, and the generic-popular list.
func indexItems(cfg Config, truth *GroundTruth) (genreItems, eventItems [][]int, genericItems []int) {
	genreItems = make([][]int, cfg.Genres)
	eventItems = make([][]int, cfg.Events)
	for v := 0; v < cfg.NumItems; v++ {
		if truth.GenericPopular[v] {
			genericItems = append(genericItems, v)
			continue
		}
		if g := truth.Genre[v]; g >= 0 {
			genreItems[g] = append(genreItems[g], v)
		}
		if x := truth.EventCluster[v]; x >= 0 {
			eventItems[x] = append(eventItems[x], v)
		}
	}
	return genreItems, eventItems, genericItems
}

// itemPrefix returns the item-name prefix of a profile.
func itemPrefix(p Profile) string {
	switch p {
	case Digg:
		return "story"
	case MovieLens, Douban:
		return "movie"
	case Delicious:
		return "tag"
	default:
		return "item"
	}
}

// ItemName renders the self-describing identifier of item v, encoding
// its ground-truth genre (gNN), event cluster (eNN) and generic flag —
// the synthetic counterpart of the tag/movie names in Tables 5–7.
func ItemName(cfg Config, truth *GroundTruth, v int) string {
	prefix := itemPrefix(cfg.Profile)
	switch {
	case truth.GenericPopular[v]:
		return fmt.Sprintf("%s-generic-%04d", prefix, v)
	case truth.EventCluster[v] >= 0 && truth.Genre[v] >= 0:
		return fmt.Sprintf("%s-g%02d-e%02d-%05d", prefix, truth.Genre[v], truth.EventCluster[v], v)
	case truth.EventCluster[v] >= 0:
		return fmt.Sprintf("%s-e%02d-%05d", prefix, truth.EventCluster[v], v)
	default:
		return fmt.Sprintf("%s-g%02d-%05d", prefix, truth.Genre[v], v)
	}
}

// internItems registers every item with the log in index order so dense
// item indices in the log match ground-truth indices.
func internItems(cfg Config, log *dataset.Interactions, truth *GroundTruth) {
	for v := 0; v < cfg.NumItems; v++ {
		if got := log.InternItem(ItemName(cfg, truth, v)); got != v {
			panic(fmt.Sprintf("datagen: item interning drift %d != %d", got, v))
		}
	}
}

// itemSampler draws items from a fixed discrete distribution in
// O(log n) via a cumulative table.
type itemSampler struct {
	items []int
	cum   []float64
}

func newItemSampler(items []int, weights []float64) itemSampler {
	cum := make([]float64, len(weights))
	var total float64
	for i, w := range weights {
		total += w
		cum[i] = total
	}
	return itemSampler{items: items, cum: cum}
}

// sample draws one member item; ok is false for an empty sampler.
func (s itemSampler) sample(rng *rand.Rand) (int, bool) {
	if len(s.items) == 0 {
		return 0, false
	}
	total := s.cum[len(s.cum)-1]
	if total <= 0 {
		return s.items[rng.Intn(len(s.items))], true
	}
	u := rng.Float64() * total
	i := sort.SearchFloat64s(s.cum, u)
	if i >= len(s.items) {
		i = len(s.items) - 1
	}
	return s.items[i], true
}

// topicDistributions builds one Zipf-skewed item sampler per topic,
// with a random within-topic popularity order.
func topicDistributions(cfg Config, rng *rand.Rand, membership [][]int) []itemSampler {
	out := make([]itemSampler, len(membership))
	for k, members := range membership {
		if len(members) == 0 {
			out[k] = itemSampler{}
			continue
		}
		shuffled := append([]int(nil), members...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		out[k] = newItemSampler(shuffled, stats.Zipf(len(shuffled), cfg.TopicSkew))
	}
	return out
}

// promoteGenerics mixes the always-popular generic items into every
// temporal process with a fixed mass share, reproducing the Figure 5
// situation where generic tags ride along with every event.
func promoteGenerics(cfg Config, eventDist []itemSampler, genericItems []int) {
	if len(genericItems) == 0 || cfg.GenericShare <= 0 {
		return
	}
	genericShare := cfg.GenericShare
	for x := range eventDist {
		s := &eventDist[x]
		if len(s.items) == 0 {
			continue
		}
		topicMass := s.cum[len(s.cum)-1]
		extra := topicMass * genericShare / (1 - genericShare) / float64(len(genericItems))
		items := append(append([]int(nil), s.items...), genericItems...)
		weights := make([]float64, len(items))
		prev := 0.0
		for i := range s.items {
			weights[i] = s.cum[i] - prev
			prev = s.cum[i]
		}
		for i := range genericItems {
			weights[len(s.items)+i] = extra
		}
		*s = newItemSampler(items, weights)
	}
}

// eventPrevalence returns, for every day, the mixture over temporal
// processes active that day. Bursty processes use a symmetric Gaussian
// envelope of width BurstWidthDays; cohort processes rise sharply at
// release and decay slowly (asymmetric envelope), like a movie season.
func eventPrevalence(cfg Config, truth *GroundTruth) [][]float64 {
	out := make([][]float64, cfg.NumDays)
	for d := range out {
		row := make([]float64, cfg.Events)
		var total float64
		for x := 0; x < cfg.Events; x++ {
			dist := float64(d - truth.PeakDay[x])
			var amp float64
			if cfg.CohortStyle {
				left, right := cfg.BurstWidthDays*0.5, cfg.BurstWidthDays*2.5
				if dist < 0 {
					amp = math.Exp(-0.5 * dist * dist / (left * left))
				} else {
					amp = math.Exp(-0.5 * dist * dist / (right * right))
				}
			} else {
				w := cfg.BurstWidthDays
				amp = math.Exp(-0.5 * dist * dist / (w * w))
			}
			row[x] = amp
			total += amp
		}
		if total <= 1e-12 {
			for x := range row {
				row[x] = 1 / float64(cfg.Events)
			}
		} else {
			for x := range row {
				row[x] /= total
			}
		}
		out[d] = row
	}
	return out
}

// starScore draws a 1–5 rating with the mildly positive skew real rating
// sites show.
func starScore(rng *rand.Rand) float64 {
	return float64(1 + stats.Categorical(rng, []float64{0.05, 0.10, 0.25, 0.35, 0.25}))
}

// emitEvents walks users × days and emits the interaction log following
// the TCAM generative story: coin λu; heads → genre draw from the user's
// interest, tails → draw from the day's temporal mixture.
func emitEvents(cfg Config, rng *rand.Rand, w *World,
	genreDist, eventDist []itemSampler, prevalence [][]float64) {
	truth := w.Truth
	for u := 0; u < cfg.NumUsers; u++ {
		userID := fmt.Sprintf("u%05d", u)
		if got := w.Log.InternUser(userID); got != u {
			panic(fmt.Sprintf("datagen: user interning drift %d != %d", got, u))
		}
		for d := 0; d < cfg.NumDays; d++ {
			if rng.Float64() >= cfg.ActiveDayProb {
				continue
			}
			n := stats.Poisson(rng, cfg.EventsPerActiveDay)
			for e := 0; e < n; e++ {
				v, ok := drawItem(cfg, rng, u, d, truth, genreDist, eventDist, prevalence)
				if !ok {
					continue
				}
				score := 1.0
				if cfg.Stars {
					score = starScore(rng)
				}
				if err := w.Log.Add(userID, ItemName(cfg, truth, v), int64(d), score); err != nil {
					//tcamvet:ignore panicfmt re-panics a Log.Add error that already carries the "dataset:" prefix
					panic(err)
				}
			}
		}
	}
}

func drawItem(cfg Config, rng *rand.Rand, u, d int, truth *GroundTruth,
	genreDist, eventDist []itemSampler, prevalence [][]float64) (int, bool) {
	if rng.Float64() < cfg.NoiseFrac {
		return rng.Intn(cfg.NumItems), true
	}
	if rng.Float64() < truth.Lambda[u] {
		z := stats.Categorical(rng, truth.UserInterest[u])
		if v, ok := genreDist[z].sample(rng); ok {
			return v, true
		}
		return rng.Intn(cfg.NumItems), true
	}
	x := stats.Categorical(rng, prevalence[d])
	if v, ok := eventDist[x].sample(rng); ok {
		return v, true
	}
	return rng.Intn(cfg.NumItems), true
}
