// Package datagen synthesizes social-media interaction logs with the
// causal structure TCAM posits, replacing the paper's four crawled
// datasets (Digg, MovieLens, Douban Movie, Delicious), which are not
// redistributable. Each generated world carries its ground truth —
// per-user mixing weights, item genres, event clusters, release days —
// so the qualitative claims of Tables 5–7 become measurable purity
// numbers instead of eyeballed tag lists.
//
// The generative process mirrors the paper's Figure 1: every user u has
// an intrinsic-interest distribution over ground-truth genres and a
// mixing weight λu ~ Beta; every day, each active user emits events that
// are drawn either from a genre (probability λu) or from whichever
// time-oriented process is hot that day (probability 1−λu). Profiles
// differ in the Beta mean (news readers are context-driven, movie
// watchers interest-driven), in how the temporal process is shaped
// (short bursty events vs. long release-cohort waves), and in catalog
// size — exactly the properties the paper's cross-dataset findings rest
// on.
package datagen

import (
	"fmt"
	"math/rand"

	"tcam/internal/dataset"
	"tcam/internal/mat"
	"tcam/internal/stats"
)

// Profile selects one of the four dataset archetypes from the paper's
// Table 2.
type Profile int

const (
	// Digg models a social news aggregator: short-lived stories, low
	// personal-interest influence, strongly bursty temporal context.
	Digg Profile = iota
	// MovieLens models a movie rating site: stable genre-driven taste,
	// high personal-interest influence, release-cohort temporal waves,
	// 1–5 star ratings.
	MovieLens
	// Douban models Douban Movie: like MovieLens but with a much larger
	// item catalog, used by the paper for the efficiency experiments.
	Douban
	// Delicious models a collaborative tagging system: a stable
	// technology-tag core plus event-driven co-bursting tag clusters and
	// a handful of always-popular generic tags.
	Delicious
)

// String returns the dataset name used in the paper.
func (p Profile) String() string {
	switch p {
	case Digg:
		return "Digg"
	case MovieLens:
		return "MovieLens"
	case Douban:
		return "Douban Movie"
	case Delicious:
		return "Delicious"
	default:
		return "unknown"
	}
}

// Config parameterizes a synthetic world. DefaultConfig fills in the
// per-profile values from Section 2 of DESIGN.md; zero fields in a
// hand-built Config are rejected by Generate.
type Config struct {
	Profile Profile
	Seed    int64

	NumUsers int
	NumItems int
	NumDays  int

	// Genres is the number of ground-truth user-oriented topics; every
	// stable item belongs to one.
	Genres int
	// Events is the number of ground-truth time-oriented processes:
	// bursty event clusters (Digg, Delicious) or release cohorts
	// (MovieLens, Douban).
	Events int

	// MeanLambda is the Beta mean of the personal-interest influence
	// probability λu; LambdaConc is the Beta concentration (a+b).
	MeanLambda float64
	LambdaConc float64

	// EventItemFrac is the fraction of the catalog owned by temporal
	// processes rather than (only) genres.
	EventItemFrac float64
	// GenericPopularFrac is the fraction of items that are
	// always-popular generics (the "news"/"health" tags of Figure 5);
	// they get extra mass in every temporal process and in the
	// background.
	GenericPopularFrac float64
	// GenericShare is the share of every temporal process's draw mass
	// diverted to the generic items — the long-standing-popular noise
	// the item-weighting scheme exists to filter.
	GenericShare float64
	// BurstWidthDays is the standard deviation of a bursty event's
	// temporal envelope; CohortStyle switches the temporal processes to
	// long release-cohort waves instead of short bursts.
	BurstWidthDays float64
	CohortStyle    bool

	// ActiveDayProb is the probability a user is active on a given day;
	// EventsPerActiveDay is the Poisson mean of events an active user
	// emits that day.
	ActiveDayProb      float64
	EventsPerActiveDay float64

	// NoiseFrac is the probability an event is uniform background noise
	// instead of topic-driven.
	NoiseFrac float64

	// Stars switches scores from implicit 1s to explicit 1–5 ratings.
	Stars bool

	// TopicSkew is the Zipf exponent of the within-topic item
	// popularity distributions.
	TopicSkew float64
	// InterestAlpha is the symmetric Dirichlet concentration of user
	// interest distributions (small = focused users).
	InterestAlpha float64
}

// DefaultConfig returns the standard configuration of a profile at the
// default (laptop) scale. The experiment harness scales NumUsers /
// NumItems / NumDays with flags when needed.
func DefaultConfig(p Profile) Config {
	c := Config{
		Profile:            p,
		Seed:               1,
		TopicSkew:          1.05,
		InterestAlpha:      0.25,
		NoiseFrac:          0.05,
		GenericPopularFrac: 0.02,
		GenericShare:       0.35,
	}
	switch p {
	case Digg:
		c.NumUsers, c.NumItems, c.NumDays = 4000, 2000, 90
		c.Genres, c.Events = 64, 150
		c.MeanLambda, c.LambdaConc = 0.30, 2.5
		c.EventItemFrac = 0.75
		c.BurstWidthDays = 3.0
		c.ActiveDayProb, c.EventsPerActiveDay = 0.03, 16.0
		c.GenericPopularFrac = 0.02
		c.GenericShare = 0.30
	case MovieLens:
		c.NumUsers, c.NumItems, c.NumDays = 3000, 2400, 720
		c.Genres, c.Events = 48, 24
		c.MeanLambda, c.LambdaConc = 0.85, 4
		c.GenericShare = 0.15
		c.EventItemFrac = 0.55
		c.CohortStyle = true
		c.BurstWidthDays = 45
		c.ActiveDayProb, c.EventsPerActiveDay = 0.012, 10.0
		c.Stars = true
	case Douban:
		c.NumUsers, c.NumItems, c.NumDays = 2400, 69908, 720
		c.Genres, c.Events = 24, 24
		c.GenericShare = 0.15
		c.InterestAlpha = 0.08
		c.MeanLambda, c.LambdaConc = 0.80, 8
		c.EventItemFrac = 0.55
		c.CohortStyle = true
		c.BurstWidthDays = 45
		c.ActiveDayProb, c.EventsPerActiveDay = 0.05, 8.0
		c.Stars = true
	case Delicious:
		c.NumUsers, c.NumItems, c.NumDays = 1500, 2000, 330
		c.Genres, c.Events = 64, 80
		c.MeanLambda, c.LambdaConc = 0.50, 6
		c.EventItemFrac = 0.45
		c.BurstWidthDays = 4.0
		c.ActiveDayProb, c.EventsPerActiveDay = 0.08, 4.0
		c.GenericPopularFrac = 0.02
	}
	return c
}

// GroundTruth is the hidden state behind a generated world, used by the
// experiment harness to score topic quality without a human in the loop.
type GroundTruth struct {
	// Lambda[u] is the true personal-interest influence probability of
	// user u (Figures 10–11 check the learned CDF against its shape).
	Lambda []float64
	// Genre[v] is the ground-truth user-oriented topic of item v, or -1
	// for items owned purely by a temporal process.
	Genre []int
	// EventCluster[v] is the ground-truth temporal process of item v,
	// or -1 for stable items.
	EventCluster []int
	// Bursty[v] marks items whose popularity is concentrated around one
	// temporal process peak.
	Bursty []bool
	// GenericPopular[v] marks always-popular generic items.
	GenericPopular []bool
	// ReleaseDay[v] is the day item v entered the catalog.
	ReleaseDay []int
	// PeakDay[x] is the day temporal process x peaks.
	PeakDay []int
	// UserInterest[u] is the true interest distribution of user u over
	// genres.
	UserInterest []mat.Vector
}

// World bundles a generated interaction log with its configuration and
// ground truth.
type World struct {
	Config Config
	Log    *dataset.Interactions
	Truth  *GroundTruth
}

// Validate reports the first configuration error, or nil.
func (c Config) Validate() error {
	switch {
	case c.NumUsers <= 0 || c.NumItems <= 0 || c.NumDays <= 0:
		return fmt.Errorf("datagen: dimensions must be positive, got %dx%dx%d days", c.NumUsers, c.NumItems, c.NumDays)
	case c.Genres <= 0 || c.Events <= 0:
		return fmt.Errorf("datagen: need positive topic counts, got genres=%d events=%d", c.Genres, c.Events)
	case c.MeanLambda <= 0 || c.MeanLambda >= 1:
		return fmt.Errorf("datagen: MeanLambda %v outside (0,1)", c.MeanLambda)
	case c.LambdaConc <= 0:
		return fmt.Errorf("datagen: LambdaConc must be positive")
	case c.EventItemFrac < 0 || c.EventItemFrac > 1:
		return fmt.Errorf("datagen: EventItemFrac %v outside [0,1]", c.EventItemFrac)
	case c.ActiveDayProb <= 0 || c.ActiveDayProb > 1:
		return fmt.Errorf("datagen: ActiveDayProb %v outside (0,1]", c.ActiveDayProb)
	case c.EventsPerActiveDay <= 0:
		return fmt.Errorf("datagen: EventsPerActiveDay must be positive")
	case c.NoiseFrac < 0 || c.NoiseFrac >= 1:
		return fmt.Errorf("datagen: NoiseFrac %v outside [0,1)", c.NoiseFrac)
	case c.TopicSkew < 0:
		return fmt.Errorf("datagen: TopicSkew must be non-negative")
	case c.InterestAlpha <= 0:
		return fmt.Errorf("datagen: InterestAlpha must be positive")
	case c.BurstWidthDays <= 0:
		return fmt.Errorf("datagen: BurstWidthDays must be positive")
	case c.GenericShare < 0 || c.GenericShare >= 1:
		return fmt.Errorf("datagen: GenericShare %v outside [0,1)", c.GenericShare)
	}
	return nil
}

// Generate synthesizes a world from the configuration. The result is a
// pure function of the Config (including Seed).
func Generate(cfg Config) (*World, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &World{Config: cfg, Log: dataset.New()}
	truth := &GroundTruth{
		Lambda:         make([]float64, cfg.NumUsers),
		Genre:          make([]int, cfg.NumItems),
		EventCluster:   make([]int, cfg.NumItems),
		Bursty:         make([]bool, cfg.NumItems),
		GenericPopular: make([]bool, cfg.NumItems),
		ReleaseDay:     make([]int, cfg.NumItems),
		PeakDay:        make([]int, cfg.Events),
		UserInterest:   make([]mat.Vector, cfg.NumUsers),
	}
	w.Truth = truth

	assignItems(cfg, rng, truth)
	genreItems, eventItems, genericItems := indexItems(cfg, truth)
	internItems(cfg, w.Log, truth)

	genreDist := topicDistributions(cfg, rng, genreItems)
	eventDist := topicDistributions(cfg, rng, eventItems)
	promoteGenerics(cfg, eventDist, genericItems)

	// Temporal prevalence of each event process on each day, normalized
	// per day so a hot day is a proper mixture over processes.
	prevalence := eventPrevalence(cfg, truth)

	// Per-user latent state.
	alphaB := cfg.MeanLambda * cfg.LambdaConc
	betaB := (1 - cfg.MeanLambda) * cfg.LambdaConc
	for u := 0; u < cfg.NumUsers; u++ {
		truth.Lambda[u] = stats.Beta(rng, alphaB, betaB)
		truth.UserInterest[u] = stats.SymmetricDirichlet(rng, cfg.Genres, cfg.InterestAlpha)
	}

	emitEvents(cfg, rng, w, genreDist, eventDist, prevalence)
	return w, nil
}

// MustGenerate is Generate that panics on configuration errors; for
// tests and examples with hardcoded configs.
func MustGenerate(cfg Config) *World {
	w, err := Generate(cfg)
	if err != nil {
		//tcamvet:ignore panicfmt re-panics a Generate error that already carries the "datagen:" prefix
		panic(err)
	}
	return w
}
