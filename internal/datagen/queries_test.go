package datagen

import (
	"reflect"
	"testing"
)

func TestGenerateQueriesDeterministicPerSeed(t *testing.T) {
	cfg := QueryLoadConfig{
		Queries: 200, Users: 50, Items: 100,
		TimeMin: 100, TimeMax: 500, K: 5, MaxExclude: 4, Seed: 7,
	}
	a, err := GenerateQueries(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateQueries(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different streams")
	}
	cfg.Seed = 8
	c, err := GenerateQueries(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestGenerateQueriesZipfSkew(t *testing.T) {
	queries, err := GenerateQueries(QueryLoadConfig{
		Queries: 5000, Users: 100, UserExponent: 1.2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 100)
	for _, q := range queries {
		counts[q.User]++
	}
	// Under a Zipf law the hottest user dwarfs the uniform share (50)
	// and the head outweighs the tail.
	if counts[0] < 200 {
		t.Errorf("hottest user got %d of 5000 queries; stream looks uniform", counts[0])
	}
	head, tail := 0, 0
	for u, c := range counts {
		if u < 10 {
			head += c
		} else {
			tail += c
		}
	}
	if head <= tail {
		t.Errorf("top-10 users got %d queries vs %d for the other 90; no skew", head, tail)
	}
}

func TestGenerateQueriesBoundsAndDefaults(t *testing.T) {
	queries, err := GenerateQueries(QueryLoadConfig{
		Queries: 500, Users: 20, Items: 30,
		TimeMin: 10, TimeMax: 20, MaxExclude: 5, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	sawExclude := false
	for _, q := range queries {
		if q.User < 0 || q.User >= 20 {
			t.Fatalf("user %d out of range", q.User)
		}
		if q.Time < 10 || q.Time > 20 {
			t.Fatalf("time %d outside [10,20]", q.Time)
		}
		if q.K != 10 {
			t.Fatalf("k = %d, want the default 10", q.K)
		}
		if len(q.Exclude) > 5 {
			t.Fatalf("exclude list of %d exceeds MaxExclude", len(q.Exclude))
		}
		seen := make(map[int]bool)
		for _, v := range q.Exclude {
			if v < 0 || v >= 30 {
				t.Fatalf("exclude item %d out of range", v)
			}
			if seen[v] {
				t.Fatalf("duplicate exclude item %d", v)
			}
			seen[v] = true
			sawExclude = true
		}
	}
	if !sawExclude {
		t.Error("no query carried an exclude list")
	}
}

func TestGenerateQueriesValidation(t *testing.T) {
	bad := []QueryLoadConfig{
		{Queries: 0, Users: 10},
		{Queries: 10, Users: 0},
		{Queries: 10, Users: 10, MaxExclude: -1},
		{Queries: 10, Users: 10, MaxExclude: 5, Items: 5},
		{Queries: 10, Users: 10, TimeMin: 5, TimeMax: 1},
	}
	for i, cfg := range bad {
		if _, err := GenerateQueries(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}
