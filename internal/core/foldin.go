package core

// Fold-in facade: the registry-level entry point the streaming loop
// uses to extend an already-trained model to new users without a
// retrain, mirroring Train's dispatch. Only the TCAM family supports
// fold-in — its per-user parameters are separable from the frozen
// globals; the baselines (UT/TT/BPRMF/BPTF/timeSVD++) would need a
// full refit and are rejected.

import (
	"fmt"

	"tcam/internal/cuboid"
	"tcam/internal/model"
	"tcam/internal/model/itcam"
	"tcam/internal/model/ttcam"
	"tcam/internal/weighting"
)

// FoldIn extends a model trained by Train(method, ...) to
// data.NumUsers() users by partial EM against frozen globals. data's
// interval/item dimensions must match the trained model; weighted
// methods apply the Section 3.3 item-weighting to data first, exactly
// as Train does. Options reuses the training knobs: MaxIters bounds
// the partial-EM rounds (0 keeps the fold-in default), Shards/Workers
// thread through unchanged. The input model is not mutated.
func FoldIn(method Method, rec model.Recommender, data *cuboid.Cuboid, opts Options) (model.Recommender, error) {
	tdata := data
	if method.Weighted() {
		tdata = weighting.WeightCuboid(data)
	}
	switch method {
	case ITCAM, WITCAM:
		m, ok := rec.(*itcam.Model)
		if !ok {
			return nil, fmt.Errorf("core: fold-in %s wants *itcam.Model, got %T", method, rec)
		}
		cfg := itcam.DefaultFoldInConfig()
		if opts.MaxIters > 0 {
			cfg.Iters = opts.MaxIters
		}
		cfg.Shards, cfg.Workers = opts.Shards, opts.Workers
		return m.FoldInUsers(tdata, cfg)
	case TTCAM, WTTCAM:
		m, ok := rec.(*ttcam.Model)
		if !ok {
			return nil, fmt.Errorf("core: fold-in %s wants *ttcam.Model, got %T", method, rec)
		}
		cfg := ttcam.DefaultFoldInConfig()
		if opts.MaxIters > 0 {
			cfg.Iters = opts.MaxIters
		}
		cfg.Shards, cfg.Workers = opts.Shards, opts.Workers
		return m.FoldInUsers(tdata, cfg)
	default:
		return nil, fmt.Errorf("core: method %s does not support fold-in", method)
	}
}
