// Package core provides the unified model registry the experiment
// harness and CLI tools drive: every method compared in the paper's
// Section 5 — UT, TT, ITCAM, TTCAM, their item-weighted variants
// W-ITCAM / W-TTCAM, BPRMF and BPTF — is trainable through one entry
// point with one option set, so sweeps and head-to-head tables stay
// honest (same data, same seeds, same budgets).
package core

import (
	"fmt"
	"time"

	"tcam/internal/cuboid"
	"tcam/internal/model"
	"tcam/internal/model/bprmf"
	"tcam/internal/model/bptf"
	"tcam/internal/model/itcam"
	"tcam/internal/model/timesvd"
	"tcam/internal/model/tt"
	"tcam/internal/model/ttcam"
	"tcam/internal/model/ut"
	"tcam/internal/train"
	"tcam/internal/weighting"
)

// Method names a trainable model, matching the labels in the paper's
// figures.
type Method string

// The eight methods of Section 5.2.
const (
	UT     Method = "UT"
	TT     Method = "TT"
	ITCAM  Method = "ITCAM"
	TTCAM  Method = "TTCAM"
	WITCAM Method = "W-ITCAM"
	WTTCAM Method = "W-TTCAM"
	BPRMF  Method = "BPRMF"
	BPTF   Method = "BPTF"
)

// TimeSVD is the timeSVD++ extension (Koren, KDD 2009) — discussed in
// the paper's related work but not part of its comparison; see
// ExtensionMethods.
const TimeSVD Method = "timeSVD++"

// AllMethods lists every method in the paper's comparison order.
func AllMethods() []Method {
	return []Method{UT, TT, ITCAM, TTCAM, WITCAM, WTTCAM, BPRMF, BPTF}
}

// ExtensionMethods lists the additional models implemented beyond the
// paper's comparison.
func ExtensionMethods() []Method {
	return []Method{TimeSVD}
}

// ParseMethod resolves a method name (case-sensitive, as printed in the
// paper), including the extension methods.
func ParseMethod(s string) (Method, error) {
	for _, m := range append(AllMethods(), ExtensionMethods()...) {
		if string(m) == s {
			return m, nil
		}
	}
	return "", fmt.Errorf("core: unknown method %q (want one of %v)", s, AllMethods())
}

// Weighted reports whether the method trains on the item-weighted
// cuboid of Equation (20).
func (m Method) Weighted() bool { return m == WITCAM || m == WTTCAM }

// Temporal reports whether the method uses the time dimension at all.
func (m Method) Temporal() bool { return m != UT && m != BPRMF }

// Options is the shared training configuration. Zero values fall back
// to each model's defaults.
type Options struct {
	// K1 and K2 are the topic counts for the TCAM family (K1 also
	// drives UT's topic count, K2 TT's).
	K1, K2 int
	// MaxIters bounds EM training; Factors / Epochs configure the
	// factorization baselines; Burnin / Samples the BPTF Gibbs chain.
	MaxIters int
	Factors  int
	Epochs   int
	Burnin   int
	Samples  int
	// Background is the TTCAM background-topic weight extension (0
	// disables it, as in the paper).
	Background float64
	Seed       int64
	Workers    int
	// Tol overrides the relative log-likelihood early-stop tolerance of
	// the EM methods (UT, TT and the TCAM family): 0 keeps each model's
	// default, a negative value disables the early stop so every
	// iteration runs.
	Tol float64
	// Shards fixes the EM summation grouping for the TCAM family (0 =
	// engine default). Runs with equal Shards are bit-identical
	// regardless of Workers.
	Shards int
	// MaxWall bounds TCAM-family training wall-clock time (0 = none).
	MaxWall time.Duration
	// CheckpointDir enables TCAM-family training checkpoints in the
	// directory, snapshotting every CheckpointEvery iterations
	// (CheckpointEvery <= 0 means every iteration); Resume restores the
	// latest snapshot before training. Methods outside the TCAM family
	// reject these options.
	CheckpointDir   string
	CheckpointEvery int
	Resume          bool
	// Hook, when non-nil, observes every TCAM-family EM iteration.
	Hook func(model.IterStat)
}

// tolOf resolves the Options.Tol override against a model default.
func tolOf(opts Options, def float64) float64 {
	switch {
	case opts.Tol > 0:
		return opts.Tol
	case opts.Tol < 0:
		return 0
	default:
		return def
	}
}

// checkpointOf translates the flat checkpoint options into the engine
// config.
func checkpointOf(opts Options) train.CheckpointConfig {
	return train.CheckpointConfig{Dir: opts.CheckpointDir, Every: opts.CheckpointEvery, Resume: opts.Resume}
}

// Result bundles a trained model with its statistics and wall-clock
// training time (Table 4's measurement).
type Result struct {
	Method    Method
	Model     model.Recommender
	Stats     model.TrainStats
	TrainTime time.Duration
}

// TopicScorer returns the trained model as a TopicScorer when the
// method supports the Section 4 decomposition, or nil (BPRMF/BPTF/UT/TT
// have no non-negative topic decomposition registered for TA).
func (r Result) TopicScorer() model.TopicScorer {
	if ts, ok := r.Model.(model.TopicScorer); ok {
		return ts
	}
	return nil
}

// Train fits the named method on the cuboid. Weighted methods apply the
// Section 3.3 item-weighting scheme internally; callers always pass the
// raw cuboid.
func Train(method Method, data *cuboid.Cuboid, opts Options) (Result, error) {
	res := Result{Method: method}
	if (opts.CheckpointDir != "" || opts.Resume) && method != ITCAM && method != WITCAM &&
		method != TTCAM && method != WTTCAM {
		return res, fmt.Errorf("core: method %s does not support checkpointing", method)
	}
	tdata := data
	if method.Weighted() {
		tdata = weighting.WeightCuboid(data)
	}
	start := time.Now()
	var err error
	switch method {
	case UT:
		cfg := ut.DefaultConfig()
		if opts.K1 > 0 {
			cfg.K = opts.K1
		}
		if opts.MaxIters > 0 {
			cfg.MaxIters = opts.MaxIters
		}
		cfg.Tol = tolOf(opts, cfg.Tol)
		cfg.Seed, cfg.Workers = seedOf(opts), opts.Workers
		res.Model, res.Stats, err = ut.Train(tdata, cfg)
	case TT:
		cfg := tt.DefaultConfig()
		if opts.K2 > 0 {
			cfg.K = opts.K2
		}
		if opts.MaxIters > 0 {
			cfg.MaxIters = opts.MaxIters
		}
		cfg.Tol = tolOf(opts, cfg.Tol)
		cfg.Seed, cfg.Workers = seedOf(opts), opts.Workers
		res.Model, res.Stats, err = tt.Train(tdata, cfg)
	case ITCAM, WITCAM:
		cfg := itcam.DefaultConfig()
		if opts.K1 > 0 {
			cfg.K1 = opts.K1
		}
		if opts.MaxIters > 0 {
			cfg.MaxIters = opts.MaxIters
		}
		cfg.Tol = tolOf(opts, cfg.Tol)
		cfg.MaxWall, cfg.Shards = opts.MaxWall, opts.Shards
		cfg.Checkpoint, cfg.Hook = checkpointOf(opts), opts.Hook
		cfg.Seed, cfg.Workers = seedOf(opts), opts.Workers
		cfg.Label = string(method)
		res.Model, res.Stats, err = itcam.Train(tdata, cfg)
	case TTCAM, WTTCAM:
		cfg := ttcam.DefaultConfig()
		if opts.K1 > 0 {
			cfg.K1 = opts.K1
		}
		if opts.K2 > 0 {
			cfg.K2 = opts.K2
		}
		if opts.MaxIters > 0 {
			cfg.MaxIters = opts.MaxIters
		}
		cfg.Tol = tolOf(opts, cfg.Tol)
		cfg.MaxWall, cfg.Shards = opts.MaxWall, opts.Shards
		cfg.Checkpoint, cfg.Hook = checkpointOf(opts), opts.Hook
		cfg.Background = opts.Background
		cfg.Seed, cfg.Workers = seedOf(opts), opts.Workers
		cfg.Label = string(method)
		res.Model, res.Stats, err = ttcam.Train(tdata, cfg)
	case BPRMF:
		cfg := bprmf.DefaultConfig()
		if opts.Factors > 0 {
			cfg.Factors = opts.Factors
		}
		if opts.Epochs > 0 {
			cfg.Epochs = opts.Epochs
		}
		cfg.Seed = seedOf(opts)
		res.Model, res.Stats, err = bprmf.Train(tdata, cfg)
	case TimeSVD:
		cfg := timesvd.DefaultConfig()
		if opts.Factors > 0 {
			cfg.Factors = opts.Factors
		}
		if opts.Epochs > 0 {
			cfg.Epochs = opts.Epochs
		}
		cfg.Seed = seedOf(opts)
		res.Model, res.Stats, err = timesvd.Train(tdata, cfg)
	case BPTF:
		cfg := bptf.DefaultConfig()
		if opts.Factors > 0 {
			cfg.Factors = opts.Factors
		}
		if opts.Burnin > 0 {
			cfg.Burnin = opts.Burnin
		}
		if opts.Samples > 0 {
			cfg.Samples = opts.Samples
		}
		cfg.Seed, cfg.Workers = seedOf(opts), opts.Workers
		res.Model, res.Stats, err = bptf.Train(tdata, cfg)
	default:
		return res, fmt.Errorf("core: unknown method %q", method)
	}
	res.TrainTime = time.Since(start)
	if err != nil {
		return res, fmt.Errorf("core: train %s: %w", method, err)
	}
	return res, nil
}

func seedOf(opts Options) int64 {
	if opts.Seed != 0 {
		return opts.Seed
	}
	return 1
}
