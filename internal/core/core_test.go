package core

import (
	"math/rand"
	"testing"

	"tcam/internal/cuboid"
	"tcam/internal/model"
)

func smallWorld(tb testing.TB) *cuboid.Cuboid {
	tb.Helper()
	rng := rand.New(rand.NewSource(3))
	b := cuboid.NewBuilder(20, 4, 25)
	for u := 0; u < 20; u++ {
		for t := 0; t < 4; t++ {
			b.MustAdd(u, t, (u+t)%25, 1)
			b.MustAdd(u, t, rng.Intn(25), 1)
		}
	}
	return b.Build()
}

func fastOpts() Options {
	return Options{K1: 5, K2: 4, MaxIters: 5, Factors: 4, Epochs: 5, Burnin: 2, Samples: 2, Seed: 1, Workers: 2}
}

func TestTrainAllMethods(t *testing.T) {
	data := smallWorld(t)
	for _, m := range AllMethods() {
		m := m
		t.Run(string(m), func(t *testing.T) {
			res, err := Train(m, data, fastOpts())
			if err != nil {
				t.Fatal(err)
			}
			if res.Model == nil {
				t.Fatal("nil model")
			}
			if res.Model.Name() != string(m) && m != WITCAM && m != WTTCAM {
				t.Errorf("model name %q, method %q", res.Model.Name(), m)
			}
			if res.Model.NumItems() != 25 {
				t.Errorf("NumItems = %d", res.Model.NumItems())
			}
			if res.TrainTime <= 0 {
				t.Error("train time not recorded")
			}
			// Every model must produce a usable score.
			_ = res.Model.Score(0, 0, 0)
		})
	}
}

func TestWeightedVariantsDiffer(t *testing.T) {
	data := smallWorld(t)
	plain, err := Train(TTCAM, data, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := Train(WTTCAM, data, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if weighted.Model.Name() != "W-TTCAM" {
		t.Errorf("weighted label = %q", weighted.Model.Name())
	}
	same := true
	for v := 0; v < 25; v++ {
		if plain.Model.Score(0, 0, v) != weighted.Model.Score(0, 0, v) {
			same = false
			break
		}
	}
	if same {
		t.Error("weighted training produced identical scores; weighting had no effect")
	}
}

func TestTopicScorerAvailability(t *testing.T) {
	data := smallWorld(t)
	hasTA := map[Method]bool{ITCAM: true, TTCAM: true, WITCAM: true, WTTCAM: true}
	for _, m := range AllMethods() {
		res, err := Train(m, data, fastOpts())
		if err != nil {
			t.Fatal(err)
		}
		if got := res.TopicScorer() != nil; got != hasTA[m] {
			t.Errorf("%s: TopicScorer available = %v, want %v", m, got, hasTA[m])
		}
	}
}

func TestParseMethod(t *testing.T) {
	for _, m := range AllMethods() {
		got, err := ParseMethod(string(m))
		if err != nil || got != m {
			t.Errorf("ParseMethod(%q) = %v, %v", m, got, err)
		}
	}
	if _, err := ParseMethod("nope"); err == nil {
		t.Error("ParseMethod accepted an unknown method")
	}
}

func TestMethodPredicates(t *testing.T) {
	if !WITCAM.Weighted() || !WTTCAM.Weighted() || TTCAM.Weighted() {
		t.Error("Weighted predicate wrong")
	}
	if UT.Temporal() || BPRMF.Temporal() || !TT.Temporal() || !BPTF.Temporal() {
		t.Error("Temporal predicate wrong")
	}
}

func TestTrainUnknownMethod(t *testing.T) {
	if _, err := Train(Method("bogus"), smallWorld(t), fastOpts()); err == nil {
		t.Error("Train accepted an unknown method")
	}
}

var _ model.Recommender = (*mockRec)(nil)

type mockRec struct{}

func (mockRec) Name() string              { return "mock" }
func (mockRec) Score(u, t, v int) float64 { return 0 }
func (mockRec) NumItems() int             { return 0 }

func TestTopicScorerNilForPlainRecommender(t *testing.T) {
	r := Result{Model: mockRec{}}
	if r.TopicScorer() != nil {
		t.Error("plain recommender should not expose a TopicScorer")
	}
}

func TestTimeSVDExtension(t *testing.T) {
	data := smallWorld(t)
	res, err := Train(TimeSVD, data, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Model.Name() != "timeSVD++" {
		t.Errorf("name = %q", res.Model.Name())
	}
	if res.TopicScorer() != nil {
		t.Error("timeSVD++ has no topic decomposition; TA must not apply")
	}
	if got, err := ParseMethod("timeSVD++"); err != nil || got != TimeSVD {
		t.Errorf("ParseMethod(timeSVD++) = %v, %v", got, err)
	}
	if len(ExtensionMethods()) != 1 {
		t.Errorf("ExtensionMethods = %v", ExtensionMethods())
	}
}
