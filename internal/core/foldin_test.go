package core

import (
	"testing"

	"tcam/internal/cuboid"
	"tcam/internal/model"
	"tcam/internal/model/itcam"
	"tcam/internal/model/ttcam"
)

// numUsers reads the user count off the concrete TCAM models (the
// Recommender interface intentionally has no NumUsers — only the TCAM
// family grows).
func numUsers(tb testing.TB, rec model.Recommender) int {
	tb.Helper()
	switch v := rec.(type) {
	case *itcam.Model:
		return v.NumUsers()
	case *ttcam.Model:
		return v.NumUsers()
	}
	tb.Fatalf("not a TCAM model: %T", rec)
	return 0
}

// grownWorld is smallWorld plus 5 new users (rows 20..24) with their
// own events, the shape FoldIn extends a trained model onto.
func grownWorld(tb testing.TB) *cuboid.Cuboid {
	tb.Helper()
	base := smallWorld(tb)
	d := cuboid.NewDelta(25, 4, 25)
	for u := 20; u < 25; u++ {
		for t := 0; t < 4; t++ {
			if err := d.Add(u, t, (u*3+t)%25, 1+float64((u+t)%3)); err != nil {
				tb.Fatal(err)
			}
		}
	}
	grown, err := base.ApplyDelta(d)
	if err != nil {
		tb.Fatal(err)
	}
	return grown
}

// TestFoldInAllMethods: the TCAM family folds in the new users (old
// scores preserved bit-for-bit, new users scoreable); every baseline
// is rejected with a clear error.
func TestFoldInAllMethods(t *testing.T) {
	boot := smallWorld(t)
	grown := grownWorld(t)
	for _, m := range AllMethods() {
		m := m
		t.Run(string(m), func(t *testing.T) {
			res, err := Train(m, boot, fastOpts())
			if err != nil {
				t.Fatal(err)
			}
			folded, err := FoldIn(m, res.Model, grown, fastOpts())
			isTCAM := m == ITCAM || m == WITCAM || m == TTCAM || m == WTTCAM
			if !isTCAM {
				if err == nil {
					t.Fatalf("FoldIn(%s) accepted a non-TCAM method", m)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if n := numUsers(t, folded); n != 25 {
				t.Fatalf("folded NumUsers = %d, want 25", n)
			}
			// Frozen base: existing users score exactly as before.
			for _, u := range []int{0, 7, 19} {
				if got, want := folded.Score(u, 2, 3), res.Model.Score(u, 2, 3); got != want {
					t.Errorf("user %d score changed across fold-in: %v != %v", u, got, want)
				}
			}
			// The input model is not mutated.
			if n := numUsers(t, res.Model); n != 20 {
				t.Errorf("FoldIn mutated its input: NumUsers = %d", n)
			}
			// New users produce usable, finite scores.
			if s := folded.Score(22, 1, (22*3+1)%25); s <= 0 {
				t.Errorf("folded-in user scores %v, want > 0", s)
			}
		})
	}
}

// TestFoldInTypeMismatch: handing FoldIn a model from another method is
// an error, not a panic or silent garbage.
func TestFoldInTypeMismatch(t *testing.T) {
	boot := smallWorld(t)
	grown := grownWorld(t)
	res, err := Train(TTCAM, boot, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FoldIn(ITCAM, res.Model, grown, fastOpts()); err == nil {
		t.Error("FoldIn(ITCAM) accepted a *ttcam.Model")
	}
}
