package weighting

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tcam/internal/cuboid"
)

// buildScenario creates a cuboid with a deliberately popular item, a
// salient item and a bursty item:
//
//	item 0 ("popular"): rated by all 4 users in both intervals
//	item 1 ("salient"): rated by a single user once
//	item 2 ("bursty"):  rated by 3 users, all during interval 1
func buildScenario(t *testing.T) *cuboid.Cuboid {
	t.Helper()
	b := cuboid.NewBuilder(4, 2, 3)
	for u := 0; u < 4; u++ {
		b.MustAdd(u, 0, 0, 1)
		b.MustAdd(u, 1, 0, 1)
	}
	b.MustAdd(0, 0, 1, 1)
	for u := 1; u < 4; u++ {
		b.MustAdd(u, 1, 2, 1)
	}
	return b.Build()
}

func TestIUFOrdering(t *testing.T) {
	s := New(buildScenario(t), Combined)
	// Popular item rated by everyone → iuf = log(4/4) = 0.
	if got := s.IUF(0); got != 0 {
		t.Errorf("iuf(popular) = %v, want 0", got)
	}
	// Salient item rated by 1 of 4 users → log 4.
	if got := s.IUF(1); math.Abs(got-math.Log(4)) > 1e-12 {
		t.Errorf("iuf(salient) = %v, want log4", got)
	}
	if s.IUF(1) <= s.IUF(2) || s.IUF(2) <= s.IUF(0) {
		t.Errorf("iuf ordering violated: salient=%v bursty=%v popular=%v",
			s.IUF(1), s.IUF(2), s.IUF(0))
	}
}

func TestIUFUnratedItem(t *testing.T) {
	b := cuboid.NewBuilder(3, 1, 2)
	b.MustAdd(0, 0, 0, 1)
	s := New(b.Build(), Combined)
	if got := s.IUF(1); math.Abs(got-math.Log(1)) > 1e-12 && got <= 0 {
		t.Errorf("iuf(unrated) = %v, want log(N) > 0", got)
	}
}

func TestBurstDegree(t *testing.T) {
	s := New(buildScenario(t), Combined)
	// Popular item: share in each interval equals overall share → B = 1.
	if got := s.Burst(0, 0); math.Abs(got-1) > 1e-12 {
		t.Errorf("B(popular, t0) = %v, want 1", got)
	}
	if got := s.Burst(0, 1); math.Abs(got-1) > 1e-12 {
		t.Errorf("B(popular, t1) = %v, want 1", got)
	}
	// Bursty item: all its 3 raters in interval 1 (4 active users there),
	// overall 3 of 4 → B = (3/4)·(4/3) = 1 in its burst interval, 0 away.
	if got := s.Burst(2, 0); got != 0 {
		t.Errorf("B(bursty, t0) = %v, want 0", got)
	}
	if got := s.Burst(2, 1); math.Abs(got-1) > 1e-12 {
		t.Errorf("B(bursty, t1) = %v, want 1", got)
	}
	// Burstiness must exceed the popular item's when normalized per
	// interval presence: bursty concentrates all mass in one interval.
	if s.Burst(2, 1) < s.Burst(0, 1) {
		t.Error("bursty item not promoted over popular in its burst interval")
	}
}

func TestBurstSharper(t *testing.T) {
	// An item rated by 2 of 2 active users in a quiet interval, but only
	// 2 of 6 users overall, must have B > 1 (over-represented).
	b := cuboid.NewBuilder(6, 2, 2)
	for u := 0; u < 6; u++ {
		b.MustAdd(u, 0, 0, 1)
	}
	b.MustAdd(0, 1, 1, 1)
	b.MustAdd(1, 1, 1, 1)
	s := New(b.Build(), Combined)
	if got := s.Burst(1, 1); got <= 1 {
		t.Errorf("B(over-represented) = %v, want > 1", got)
	}
}

func TestWeightModes(t *testing.T) {
	c := buildScenario(t)
	iufOnly := New(c, IUFOnly)
	burstOnly := New(c, BurstOnly)
	combined := New(c, Combined)
	v, tt := 2, 1
	wantCombined := iufOnly.IUF(v) * burstOnly.Burst(v, tt)
	if got := combined.Weight(v, tt); math.Abs(got-wantCombined) > 1e-12 {
		t.Errorf("combined weight = %v, want %v", got, wantCombined)
	}
	if got := iufOnly.Weight(v, tt); math.Abs(got-iufOnly.IUF(v)) > 1e-12 {
		t.Errorf("iuf-only weight = %v, want %v", got, iufOnly.IUF(v))
	}
	if got := burstOnly.Weight(v, tt); math.Abs(got-burstOnly.Burst(v, tt)) > 1e-12 {
		t.Errorf("burst-only weight = %v, want %v", got, burstOnly.Burst(v, tt))
	}
}

func TestWeightFloorKeepsCells(t *testing.T) {
	c := buildScenario(t)
	weighted := WeightCuboid(c)
	// The popular item has weight 0 raw (iuf=0) but must survive at the
	// floor, so no observed rating disappears.
	if weighted.NNZ() != c.NNZ() {
		t.Errorf("weighted NNZ = %d, want %d (floor must keep cells)", weighted.NNZ(), c.NNZ())
	}
}

func TestApplyDemotesPopularPromotesBursty(t *testing.T) {
	c := buildScenario(t)
	weighted := WeightCuboid(c)
	var popularMass, burstyMass float64
	for _, cell := range weighted.Cells() {
		switch cell.V {
		case 0:
			popularMass += cell.Score
		case 2:
			burstyMass += cell.Score
		}
	}
	// Raw masses: popular 8, bursty 3. After weighting the bursty item
	// must dominate.
	if burstyMass <= popularMass {
		t.Errorf("weighted mass: bursty %v ≤ popular %v; weighting failed to invert", burstyMass, popularMass)
	}
}

func TestModeString(t *testing.T) {
	if Combined.String() != "iuf×burst" || IUFOnly.String() != "iuf-only" ||
		BurstOnly.String() != "burst-only" || Mode(99).String() != "unknown" {
		t.Error("Mode.String labels wrong")
	}
}

// Property: weights are always positive and finite, and iuf is
// non-increasing in item popularity.
func TestWeightPositiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		const nu, nt, nv = 8, 4, 10
		b := cuboid.NewBuilder(nu, nt, nv)
		for i := 0; i < 100; i++ {
			b.MustAdd(r.Intn(nu), r.Intn(nt), r.Intn(nv), 1)
		}
		c := b.Build()
		s := New(c, Combined)
		for _, cell := range c.Cells() {
			w := s.Weight(int(cell.V), int(cell.T))
			if w <= 0 || math.IsInf(w, 0) || math.IsNaN(w) {
				return false
			}
		}
		// iuf monotone in N(v).
		st := cuboid.ComputeStats(c)
		for a := 0; a < nv; a++ {
			for bb := 0; bb < nv; bb++ {
				if st.ItemUsers[a] > 0 && st.ItemUsers[bb] > 0 &&
					st.ItemUsers[a] < st.ItemUsers[bb] && s.IUF(a) < s.IUF(bb) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the burst degrees of an item across intervals, weighted by
// interval activity shares, average to 1 — mass is conserved
// (Σ_t (Nt/N)·B(v,t) = Σ_t Nt(v)/N(v) = 1 when each rater rates in one
// interval; ≥ 1 in general because users can recur across intervals).
func TestBurstMassProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		const nu, nt, nv = 10, 5, 6
		b := cuboid.NewBuilder(nu, nt, nv)
		for i := 0; i < 80; i++ {
			b.MustAdd(r.Intn(nu), r.Intn(nt), r.Intn(nv), 1)
		}
		c := b.Build()
		s := New(c, Combined)
		st := cuboid.ComputeStats(c)
		for v := 0; v < nv; v++ {
			if st.ItemUsers[v] == 0 {
				continue
			}
			var mass float64
			for tt := 0; tt < nt; tt++ {
				mass += float64(st.IntervalUsers[tt]) / float64(st.RatedUsers) * s.Burst(v, tt)
			}
			if mass < 1-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
