// Package weighting implements the paper's item-weighting scheme
// (Section 3.3): inverse user frequency iuf(v) = log(N / N(v))
// (Equation 17), the bursty degree B(v,t) = (Nt(v)/Nt)·(N/N(v))
// (Equation 18), their product w(v,t) (Equation 19), and the weighted
// rating cuboid C̄[u,t,v] = C[u,t,v]·w(v,t) (Equation 20) on which the
// W-ITCAM and W-TTCAM variants are trained.
//
// The scheme demotes long-standing popular items — which convey little
// about either a user's intrinsic interest or a moment's public attention
// — and promotes salient (rarely rated) and bursty (interval-concentrated)
// items, improving the quality of both topic families.
package weighting

import (
	"math"

	"tcam/internal/cuboid"
)

// Mode selects which factors of Equation (19) the scheme applies. The
// paper uses Combined; the other modes exist for the ablation study.
type Mode int

const (
	// Combined applies w(v,t) = iuf(v) × B(v,t) — Equation (19).
	Combined Mode = iota
	// IUFOnly applies only the inverse-user-frequency factor.
	IUFOnly
	// BurstOnly applies only the bursty-degree factor.
	BurstOnly
)

// String returns the ablation label of the mode.
func (m Mode) String() string {
	switch m {
	case Combined:
		return "iuf×burst"
	case IUFOnly:
		return "iuf-only"
	case BurstOnly:
		return "burst-only"
	default:
		return "unknown"
	}
}

// Scheme holds the precomputed per-item and per-(item, interval)
// statistics needed to weight a cuboid.
type Scheme struct {
	mode Mode

	n         float64         // total users with ≥1 rating
	itemUsers []int           // N(v)
	intUsers  []int           // Nt
	ntv       []map[int32]int // Nt(v) per interval
}

// New precomputes the weighting statistics of c under the given mode.
func New(c *cuboid.Cuboid, mode Mode) *Scheme {
	st := cuboid.ComputeStats(c)
	return &Scheme{
		mode:      mode,
		n:         float64(st.RatedUsers),
		itemUsers: st.ItemUsers,
		intUsers:  st.IntervalUsers,
		ntv:       cuboid.ItemIntervalUsers(c),
	}
}

// IUF returns the inverse user frequency of item v — Equation (17). An
// item rated by every user gets 0; an unrated item gets log N (its
// hypothetical first rating would be maximally salient).
func (s *Scheme) IUF(v int) float64 {
	nv := float64(s.itemUsers[v])
	if nv <= 0 {
		nv = 1
	}
	iuf := math.Log(s.n / nv)
	if iuf < 0 {
		return 0
	}
	return iuf
}

// Burst returns the bursty degree B(v, t) of item v during interval t —
// Equation (18). A value above 1 means v attracted a larger share of the
// interval's active users than its overall share; an item never rated in
// t gets 0.
func (s *Scheme) Burst(v, t int) float64 {
	ntv := float64(s.ntv[t][int32(v)])
	if ntv <= 0 {
		return 0
	}
	nt := float64(s.intUsers[t])
	nv := float64(s.itemUsers[v])
	if nt <= 0 || nv <= 0 {
		return 0
	}
	return (ntv / nt) * (s.n / nv)
}

// Weight returns w(v, t) under the scheme's mode — Equation (19) for
// Combined. Weights are clamped at a small positive floor when the raw
// factor vanishes but the cell exists, so observed ratings are demoted
// rather than silently deleted.
func (s *Scheme) Weight(v, t int) float64 {
	const floor = 1e-6
	var w float64
	switch s.mode {
	case IUFOnly:
		w = s.IUF(v)
	case BurstOnly:
		w = s.Burst(v, t)
	default:
		w = s.IUF(v) * s.Burst(v, t)
	}
	if w < floor {
		return floor
	}
	return w
}

// Apply returns the weighted cuboid C̄ of Equation (20):
// C̄[u,t,v] = C[u,t,v]·w(v,t). The source cuboid is not modified.
func (s *Scheme) Apply(c *cuboid.Cuboid) *cuboid.Cuboid {
	return c.Scaled(func(cell cuboid.Cell) float64 {
		return s.Weight(int(cell.V), int(cell.T))
	})
}

// WeightCuboid is the one-call convenience: build the Combined scheme on
// c and return the weighted cuboid of Equation (20).
func WeightCuboid(c *cuboid.Cuboid) *cuboid.Cuboid {
	return New(c, Combined).Apply(c)
}
