package mat

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, element (i,j) at Data[i*Cols+j]
}

// NewMatrix returns a zero-initialized Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add accumulates v into element (i, j).
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Row returns row i as a Vector sharing storage with m.
func (m *Matrix) Row(i int) Vector { return Vector(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Fill sets every element of m to c.
func (m *Matrix) Fill(c float64) {
	for i := range m.Data {
		m.Data[i] = c
	}
}

// Scale multiplies every element of m by alpha.
func (m *Matrix) Scale(alpha float64) {
	for i := range m.Data {
		m.Data[i] *= alpha
	}
}

// AddMatrix accumulates alpha*b into m element-wise. It panics when the
// shapes differ.
func (m *Matrix) AddMatrix(alpha float64, b *Matrix) {
	m.checkSameShape(b)
	for i, x := range b.Data {
		m.Data[i] += alpha * x
	}
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Mul returns the matrix product m·b. It panics when the inner dimensions
// differ.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("mat: Mul shape mismatch %dx%d · %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			//tcamvet:ignore floatcmp exact-zero sparse skip; entries may be negative so an ordered test would change results
			if a == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Add(i, j, a*b.At(k, j))
			}
		}
	}
	return out
}

// MulVec returns m·v as a new vector. It panics when dimensions differ.
func (m *Matrix) MulVec(v Vector) Vector {
	checkLen(m.Cols, len(v))
	out := NewVector(m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Row(i).Dot(v)
	}
	return out
}

// OuterAdd accumulates alpha * (u ⊗ w) into m. It panics when dimensions
// differ from the shape of m.
func (m *Matrix) OuterAdd(alpha float64, u, w Vector) {
	checkLen(m.Rows, len(u))
	checkLen(m.Cols, len(w))
	for i, ui := range u {
		//tcamvet:ignore floatcmp exact-zero sparse skip; entries may be negative so an ordered test would change results
		if ui == 0 {
			continue
		}
		row := m.Row(i)
		row.AddScaled(alpha*ui, w)
	}
}

// SymmetrizeUpper copies the strict upper triangle onto the lower one,
// enforcing exact symmetry after accumulation round-off.
func (m *Matrix) SymmetrizeUpper() {
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			avg := 0.5 * (m.At(i, j) + m.At(j, i))
			m.Set(i, j, avg)
			m.Set(j, i, avg)
		}
	}
}

// MaxAbsDiff returns the largest absolute element-wise difference between
// m and b. It panics when shapes differ.
func (m *Matrix) MaxAbsDiff(b *Matrix) float64 {
	m.checkSameShape(b)
	var worst float64
	for i, x := range m.Data {
		if d := math.Abs(x - b.Data[i]); d > worst {
			worst = d
		}
	}
	return worst
}

func (m *Matrix) checkSameShape(b *Matrix) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic(fmt.Sprintf("mat: shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
}
