package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVectorDot(t *testing.T) {
	tests := []struct {
		name string
		v, w Vector
		want float64
	}{
		{"empty", Vector{}, Vector{}, 0},
		{"ones", Vector{1, 1, 1}, Vector{1, 1, 1}, 3},
		{"mixed", Vector{1, -2, 3}, Vector{4, 5, -6}, 4 - 10 - 18},
		{"zeros", Vector{0, 0}, Vector{9, 9}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.v.Dot(tt.w); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Dot = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestVectorDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Vector{1, 2}.Dot(Vector{1})
}

func TestVectorNormalize(t *testing.T) {
	v := Vector{1, 2, 3, 4}
	sum := v.Normalize()
	if !almostEqual(sum, 10, 1e-12) {
		t.Errorf("Normalize returned sum %v, want 10", sum)
	}
	if !almostEqual(v.Sum(), 1, 1e-12) {
		t.Errorf("after Normalize, Sum = %v, want 1", v.Sum())
	}
	if !almostEqual(v[3], 0.4, 1e-12) {
		t.Errorf("v[3] = %v, want 0.4", v[3])
	}
}

func TestVectorNormalizeDegenerate(t *testing.T) {
	for _, v := range []Vector{{0, 0, 0}, {math.NaN(), 1, 1}} {
		v.Normalize()
		for i, x := range v {
			if !almostEqual(x, 1.0/3, 1e-12) {
				t.Errorf("degenerate Normalize: v[%d] = %v, want uniform 1/3", i, x)
			}
		}
	}
}

func TestVectorMax(t *testing.T) {
	v := Vector{3, 9, -1, 9, 2}
	best, arg := v.Max()
	if best != 9 || arg != 1 {
		t.Errorf("Max = (%v,%d), want (9,1) (first max wins)", best, arg)
	}
}

func TestVectorAddScaled(t *testing.T) {
	v := Vector{1, 2}
	v.AddScaled(2, Vector{10, 20})
	if v[0] != 21 || v[1] != 42 {
		t.Errorf("AddScaled = %v, want [21 42]", v)
	}
}

func TestVectorCloneIsIndependent(t *testing.T) {
	v := Vector{1, 2, 3}
	w := v.Clone()
	w[0] = 99
	if v[0] != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestVectorCosine(t *testing.T) {
	a := Vector{1, 0}
	b := Vector{0, 1}
	if got := a.Cosine(b); !almostEqual(got, 0, 1e-12) {
		t.Errorf("orthogonal Cosine = %v, want 0", got)
	}
	if got := a.Cosine(a); !almostEqual(got, 1, 1e-12) {
		t.Errorf("self Cosine = %v, want 1", got)
	}
	if got := a.Cosine(Vector{0, 0}); got != 0 {
		t.Errorf("Cosine with zero vector = %v, want 0", got)
	}
}

// Property: Normalize always yields a probability vector for non-empty
// inputs, regardless of the (finite, possibly negative-sum) raw values.
func TestVectorNormalizeProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		v := make(Vector, len(raw))
		for i, x := range raw {
			if math.IsInf(x, 0) || math.IsNaN(x) {
				x = 0
			}
			v[i] = math.Abs(math.Mod(x, 1e6))
		}
		v.Normalize()
		return almostEqual(v.Sum(), 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Dot is symmetric and bilinear in the first argument.
func TestVectorDotSymmetryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(n uint8) bool {
		m := int(n%16) + 1
		v, w := NewVector(m), NewVector(m)
		for i := 0; i < m; i++ {
			v[i], w[i] = rng.NormFloat64(), rng.NormFloat64()
		}
		return almostEqual(v.Dot(w), w.Dot(v), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
