package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned by Cholesky when the input matrix is
// not (numerically) symmetric positive definite.
var ErrNotPositiveDefinite = errors.New("mat: matrix is not positive definite")

// Cholesky computes the lower-triangular factor L of a symmetric positive
// definite matrix a, such that L·Lᵀ = a. Only the lower triangle of a is
// read. The returned matrix has zeros above the diagonal.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("mat: Cholesky of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			ljk := l.At(j, k)
			d -= ljk * ljk
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotPositiveDefinite
		}
		d = math.Sqrt(d)
		l.Set(j, j, d)
		inv := 1.0 / d
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s*inv)
		}
	}
	return l, nil
}

// CholeskyJittered calls Cholesky, retrying with a progressively larger
// diagonal jitter when the matrix is numerically indefinite. This is the
// standard stabilization for Gibbs-sampled precision matrices. It returns
// an error only when even a large jitter fails.
func CholeskyJittered(a *Matrix) (*Matrix, error) {
	l, err := Cholesky(a)
	if err == nil {
		return l, nil
	}
	work := a.Clone()
	jitter := 1e-10
	for try := 0; try < 12; try++ {
		for i := 0; i < work.Rows; i++ {
			work.Add(i, i, jitter)
		}
		if l, err = Cholesky(work); err == nil {
			return l, nil
		}
		jitter *= 10
	}
	return nil, err
}

// SolveLower solves L·x = b for x where L is lower triangular (forward
// substitution). b is not modified.
func SolveLower(l *Matrix, b Vector) Vector {
	n := l.Rows
	checkLen(n, len(b))
	x := NewVector(n)
	for i := 0; i < n; i++ {
		s := b[i]
		row := l.Row(i)
		for k := 0; k < i; k++ {
			s -= row[k] * x[k]
		}
		x[i] = s / row[i]
	}
	return x
}

// SolveUpperT solves Lᵀ·x = b for x where L is lower triangular (backward
// substitution on the implicit transpose). b is not modified.
func SolveUpperT(l *Matrix, b Vector) Vector {
	n := l.Rows
	checkLen(n, len(b))
	x := NewVector(n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}

// SolveSPD solves a·x = b for symmetric positive definite a via Cholesky.
func SolveSPD(a *Matrix, b Vector) (Vector, error) {
	l, err := CholeskyJittered(a)
	if err != nil {
		return nil, err
	}
	return SolveUpperT(l, SolveLower(l, b)), nil
}

// InvertSPD returns the inverse of a symmetric positive definite matrix.
func InvertSPD(a *Matrix) (*Matrix, error) {
	l, err := CholeskyJittered(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	inv := NewMatrix(n, n)
	e := NewVector(n)
	for j := 0; j < n; j++ {
		e.Fill(0)
		e[j] = 1
		col := SolveUpperT(l, SolveLower(l, e))
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	inv.SymmetrizeUpper()
	return inv, nil
}
