// Package mat provides the dense linear-algebra substrate used by the
// TCAM reproduction: vectors, row-major matrices, Cholesky factorization
// and triangular solves.
//
// Go's standard library has no numeric linear algebra, and the module is
// built offline with stdlib only, so the operations needed by the BPTF
// Gibbs sampler (multivariate Gaussian sampling, precision-matrix solves)
// and by the EM initializers are implemented here from scratch. The
// package favors clarity and predictable allocation behavior over raw
// BLAS-level speed: factor dimensions in the paper's models are small
// (tens), while the data dimension (millions of ratings) is handled by
// streaming code in the model packages.
package mat

import (
	"fmt"
	"math"
)

// Vector is a dense float64 vector. The zero value is an empty vector.
type Vector []float64

// NewVector returns a zero-initialized vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Len returns the number of elements in v.
func (v Vector) Len() int { return len(v) }

// Fill sets every element of v to c.
func (v Vector) Fill(c float64) {
	for i := range v {
		v[i] = c
	}
}

// AddTo accumulates w into v element-wise. It panics if lengths differ.
func (v Vector) AddTo(w Vector) {
	checkLen(len(v), len(w))
	for i, x := range w {
		v[i] += x
	}
}

// AddScaled accumulates alpha*w into v element-wise.
func (v Vector) AddScaled(alpha float64, w Vector) {
	checkLen(len(v), len(w))
	for i, x := range w {
		v[i] += alpha * x
	}
}

// Scale multiplies every element of v by alpha.
func (v Vector) Scale(alpha float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// Dot returns the inner product of v and w. It panics if lengths differ.
func (v Vector) Dot(w Vector) float64 {
	checkLen(len(v), len(w))
	var s float64
	for i, x := range v {
		s += x * w[i]
	}
	return s
}

// Sum returns the sum of the elements of v.
func (v Vector) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func (v Vector) Norm2() float64 { return math.Sqrt(v.Dot(v)) }

// Max returns the largest element of v and its index. It panics on an
// empty vector.
func (v Vector) Max() (float64, int) {
	if len(v) == 0 {
		panic("mat: Max of empty vector")
	}
	best, arg := v[0], 0
	for i, x := range v[1:] {
		if x > best {
			best, arg = x, i+1
		}
	}
	return best, arg
}

// Normalize rescales v in place so its elements sum to one. If the sum is
// not positive, v is set to the uniform distribution. It returns the
// original sum, which callers can use to detect degenerate inputs.
func (v Vector) Normalize() float64 {
	s := v.Sum()
	if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		u := 1.0 / float64(len(v))
		for i := range v {
			v[i] = u
		}
		return s
	}
	inv := 1.0 / s
	for i := range v {
		v[i] *= inv
	}
	return s
}

// Cosine returns the cosine similarity of v and w, or 0 when either has
// zero norm.
func (v Vector) Cosine(w Vector) float64 {
	nv, nw := v.Norm2(), w.Norm2()
	if nv <= 0 || nw <= 0 {
		return 0
	}
	return v.Dot(w) / (nv * nw)
}

func checkLen(a, b int) {
	if a != b {
		panic(fmt.Sprintf("mat: length mismatch %d != %d", a, b))
	}
}
