package mat

import (
	"math/rand"
	"testing"
)

func TestMatrixMul(t *testing.T) {
	a := NewMatrix(2, 3)
	copy(a.Data, []float64{1, 2, 3, 4, 5, 6})
	b := NewMatrix(3, 2)
	copy(b.Data, []float64{7, 8, 9, 10, 11, 12})
	c := a.Mul(b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if !almostEqual(c.Data[i], w, 1e-12) {
			t.Errorf("Mul Data[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
}

func TestMatrixMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := NewMatrix(4, 4)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	got := a.Mul(Identity(4))
	if d := got.MaxAbsDiff(a); d > 1e-12 {
		t.Errorf("A·I differs from A by %v", d)
	}
}

func TestMatrixMulVec(t *testing.T) {
	a := NewMatrix(2, 2)
	copy(a.Data, []float64{1, 2, 3, 4})
	got := a.MulVec(Vector{5, 6})
	if got[0] != 17 || got[1] != 39 {
		t.Errorf("MulVec = %v, want [17 39]", got)
	}
}

func TestMatrixTranspose(t *testing.T) {
	a := NewMatrix(2, 3)
	copy(a.Data, []float64{1, 2, 3, 4, 5, 6})
	at := a.T()
	if at.Rows != 3 || at.Cols != 2 {
		t.Fatalf("T shape = %dx%d, want 3x2", at.Rows, at.Cols)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Errorf("T mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMatrixRowSharesStorage(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Row(1)[0] = 42
	if a.At(1, 0) != 42 {
		t.Error("Row does not share storage")
	}
}

func TestMatrixOuterAdd(t *testing.T) {
	m := NewMatrix(2, 2)
	m.OuterAdd(2, Vector{1, 3}, Vector{5, 7})
	want := []float64{10, 14, 30, 42}
	for i, w := range want {
		if m.Data[i] != w {
			t.Errorf("OuterAdd Data[%d] = %v, want %v", i, m.Data[i], w)
		}
	}
}

func TestMatrixSymmetrizeUpper(t *testing.T) {
	m := NewMatrix(2, 2)
	copy(m.Data, []float64{1, 4, 2, 1})
	m.SymmetrizeUpper()
	if m.At(0, 1) != 3 || m.At(1, 0) != 3 {
		t.Errorf("SymmetrizeUpper off-diagonals = (%v,%v), want (3,3)", m.At(0, 1), m.At(1, 0))
	}
}

func TestMatrixMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on inner-dimension mismatch")
		}
	}()
	NewMatrix(2, 3).Mul(NewMatrix(2, 3))
}

func randSPD(rng *rand.Rand, n int) *Matrix {
	// A = Bᵀ·B + n·I is SPD for any B.
	b := NewMatrix(n, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	a := b.T().Mul(b)
	for i := 0; i < n; i++ {
		a.Add(i, i, float64(n))
	}
	return a
}

func TestCholeskyReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 3, 5, 8, 16} {
		a := randSPD(rng, n)
		l, err := Cholesky(a)
		if err != nil {
			t.Fatalf("n=%d: Cholesky: %v", n, err)
		}
		recon := l.Mul(l.T())
		if d := recon.MaxAbsDiff(a); d > 1e-8 {
			t.Errorf("n=%d: L·Lᵀ differs from A by %v", n, d)
		}
		// Strict upper triangle must be zero.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if l.At(i, j) != 0 {
					t.Errorf("n=%d: L(%d,%d) = %v, want 0", n, i, j, l.At(i, j))
				}
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewMatrix(2, 2)
	copy(a.Data, []float64{1, 2, 2, 1}) // eigenvalues 3 and -1
	if _, err := Cholesky(a); err == nil {
		t.Error("Cholesky accepted an indefinite matrix")
	}
}

func TestCholeskyRejectsNonSquare(t *testing.T) {
	if _, err := Cholesky(NewMatrix(2, 3)); err == nil {
		t.Error("Cholesky accepted a non-square matrix")
	}
}

func TestCholeskyJitteredRecoversSemidefinite(t *testing.T) {
	// Rank-deficient PSD matrix: outer product of a single vector.
	a := NewMatrix(3, 3)
	a.OuterAdd(1, Vector{1, 2, 3}, Vector{1, 2, 3})
	l, err := CholeskyJittered(a)
	if err != nil {
		t.Fatalf("CholeskyJittered: %v", err)
	}
	if d := l.Mul(l.T()).MaxAbsDiff(a); d > 1e-4 {
		t.Errorf("jittered reconstruction off by %v", d)
	}
}

func TestSolveSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 4, 9} {
		a := randSPD(rng, n)
		want := NewVector(n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := a.MulVec(want)
		got, err := SolveSPD(a, b)
		if err != nil {
			t.Fatalf("n=%d: SolveSPD: %v", n, err)
		}
		for i := range want {
			if !almostEqual(got[i], want[i], 1e-7) {
				t.Errorf("n=%d: x[%d] = %v, want %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestInvertSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randSPD(rng, 6)
	inv, err := InvertSPD(a)
	if err != nil {
		t.Fatalf("InvertSPD: %v", err)
	}
	if d := a.Mul(inv).MaxAbsDiff(Identity(6)); d > 1e-8 {
		t.Errorf("A·A⁻¹ differs from I by %v", d)
	}
}

func TestSolveLowerUpper(t *testing.T) {
	l := NewMatrix(2, 2)
	copy(l.Data, []float64{2, 0, 1, 3})
	x := SolveLower(l, Vector{4, 7})
	if !almostEqual(x[0], 2, 1e-12) || !almostEqual(x[1], 5.0/3, 1e-12) {
		t.Errorf("SolveLower = %v", x)
	}
	y := SolveUpperT(l, Vector{4, 6})
	// Lᵀ = [[2,1],[0,3]]; y2 = 2, y1 = (4-2)/2 = 1.
	if !almostEqual(y[1], 2, 1e-12) || !almostEqual(y[0], 1, 1e-12) {
		t.Errorf("SolveUpperT = %v", y)
	}
}
