package index

import (
	"bytes"
	"fmt"
	"math"
	"path/filepath"
	"testing"

	"tcam/internal/cuboid"
	"tcam/internal/dataset"
	"tcam/internal/model/itcam"
	"tcam/internal/model/ttcam"
	"tcam/internal/topk"
)

func trainedModels(tb testing.TB) (*itcam.Model, *ttcam.Model, dataset.TimeGrid, []string, []string) {
	tb.Helper()
	b := cuboid.NewBuilder(6, 3, 12)
	for u := 0; u < 6; u++ {
		for t := 0; t < 3; t++ {
			b.MustAdd(u, t, (u*2+t)%12, 1)
			b.MustAdd(u, t, (u*2+t+5)%12, 1)
		}
	}
	data := b.Build()
	icfg := itcam.DefaultConfig()
	icfg.K1, icfg.MaxIters = 4, 10
	im, _, err := itcam.Train(data, icfg)
	if err != nil {
		tb.Fatal(err)
	}
	tcfg := ttcam.DefaultConfig()
	tcfg.K1, tcfg.K2, tcfg.MaxIters = 4, 3, 10
	tm, _, err := ttcam.Train(data, tcfg)
	if err != nil {
		tb.Fatal(err)
	}
	users := make([]string, 6)
	for i := range users {
		users[i] = fmt.Sprintf("u%d", i)
	}
	items := make([]string, 12)
	for i := range items {
		items[i] = fmt.Sprintf("v%d", i)
	}
	grid := dataset.TimeGrid{Origin: 0, Length: 10, Num: 3}
	return im, tm, grid, users, items
}

func TestBundleRoundtripTTCAM(t *testing.T) {
	_, tm, grid, users, items := trainedModels(t)
	b := NewTTCAM(tm, grid, users, items)
	var buf bytes.Buffer
	if err := b.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != KindTTCAM || got.TTCAM == nil {
		t.Fatalf("roundtrip kind = %v", got.Kind)
	}
	// Scores must survive the roundtrip bit-for-bit.
	for u := 0; u < 6; u++ {
		for v := 0; v < 12; v += 3 {
			if a, bb := tm.Score(u, 1, v), got.TTCAM.Score(u, 1, v); a != bb {
				t.Fatalf("score drift after roundtrip at (%d,%d): %v vs %v", u, v, a, bb)
			}
		}
	}
	if got.Grid != grid || len(got.Users) != 6 || got.Items[3] != "v3" {
		t.Error("metadata mangled in roundtrip")
	}
}

func TestBundleRoundtripITCAM(t *testing.T) {
	im, _, grid, users, items := trainedModels(t)
	b := NewITCAM(im, grid, users, items)
	path := filepath.Join(t.TempDir(), "bundle.gob")
	if err := b.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != KindITCAM || got.ITCAM == nil {
		t.Fatalf("roundtrip kind = %v", got.Kind)
	}
	if a, bb := im.Score(2, 2, 7), got.ITCAM.Score(2, 2, 7); math.Abs(a-bb) > 0 {
		t.Errorf("score drift: %v vs %v", a, bb)
	}
}

func TestBundleIndexMatchesBruteForce(t *testing.T) {
	_, tm, grid, users, items := trainedModels(t)
	b := NewTTCAM(tm, grid, users, items)
	ix := b.BuildIndex()
	ta, _ := ix.Query(tm, 1, 1, 5, nil)
	bf, _ := topk.BruteForce(tm, 1, 1, 5, nil)
	for i := range ta {
		if ta[i].Item != bf[i].Item {
			t.Fatalf("bundle index disagrees with brute force at rank %d", i)
		}
	}
}

func TestValidateCatchesMismatches(t *testing.T) {
	_, tm, grid, users, items := trainedModels(t)
	tests := []struct {
		name string
		mod  func(*Bundle)
	}{
		{"missing model", func(b *Bundle) { b.TTCAM = nil; b.Kind = "bogus" }},
		{"item count", func(b *Bundle) { b.Items = b.Items[:3] }},
		{"user count", func(b *Bundle) { b.Users = append(b.Users, "extra") }},
		{"grid intervals", func(b *Bundle) { b.Grid.Num = 99 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			b := NewTTCAM(tm, grid, append([]string(nil), users...), append([]string(nil), items...))
			tt.mod(b)
			if err := b.Validate(); err == nil {
				t.Error("Validate accepted a broken bundle")
			}
			var buf bytes.Buffer
			if err := b.Write(&buf); err == nil {
				t.Error("Write accepted a broken bundle")
			}
		})
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a bundle"))); err == nil {
		t.Error("Read accepted garbage")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("Load accepted a missing file")
	}
}

func TestModelIOValidation(t *testing.T) {
	// Truncated model payloads must fail cleanly.
	im, tm, _, _, _ := trainedModels(t)
	var buf bytes.Buffer
	if err := im.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := itcam.Read(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Error("itcam.Read accepted a truncated stream")
	}
	buf.Reset()
	if err := tm.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ttcam.Read(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Error("ttcam.Read accepted a truncated stream")
	}
}
