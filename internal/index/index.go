// Package index packages everything an online recommender deployment
// needs into one artifact: the trained TCAM model, the time grid that
// maps wall-clock time onto training intervals, and the user/item
// vocabularies. cmd/tcamtrain writes a bundle; cmd/tcamquery and
// cmd/tcamserver load it and rebuild the Section 4.2 sorted-list index
// (rebuilding is O(K·V·logV), far cheaper than training, so the lists
// themselves are not serialized).
package index

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"tcam/internal/atomicfile"
	"tcam/internal/dataset"
	"tcam/internal/model"
	"tcam/internal/model/itcam"
	"tcam/internal/model/ttcam"
	"tcam/internal/topk"
)

// Kind names the model family inside a bundle.
type Kind string

// The model kinds a bundle can carry.
const (
	KindITCAM Kind = "itcam"
	KindTTCAM Kind = "ttcam"
)

// Bundle is a self-contained deployment artifact.
type Bundle struct {
	Kind  Kind
	ITCAM *itcam.Model
	TTCAM *ttcam.Model

	Grid  dataset.TimeGrid
	Users []string
	Items []string
}

// NewTTCAM assembles a bundle around a trained TTCAM.
func NewTTCAM(m *ttcam.Model, grid dataset.TimeGrid, users, items []string) *Bundle {
	return &Bundle{Kind: KindTTCAM, TTCAM: m, Grid: grid, Users: users, Items: items}
}

// NewITCAM assembles a bundle around a trained ITCAM.
func NewITCAM(m *itcam.Model, grid dataset.TimeGrid, users, items []string) *Bundle {
	return &Bundle{Kind: KindITCAM, ITCAM: m, Grid: grid, Users: users, Items: items}
}

// Scorer returns the bundle's model behind the TopicScorer interface.
func (b *Bundle) Scorer() model.TopicScorer {
	switch b.Kind {
	case KindITCAM:
		return b.ITCAM
	case KindTTCAM:
		return b.TTCAM
	default:
		return nil
	}
}

// BuildIndex precomputes the TA sorted lists for the bundle's model.
func (b *Bundle) BuildIndex() *topk.Index {
	return topk.BuildIndex(b.Scorer())
}

// Validate reports the first inconsistency between the model and the
// bundle metadata, or nil.
func (b *Bundle) Validate() error {
	s := b.Scorer()
	if s == nil {
		return fmt.Errorf("index: bundle kind %q has no model", b.Kind)
	}
	if len(b.Items) != s.NumItems() {
		return fmt.Errorf("index: %d item names for a %d-item model", len(b.Items), s.NumItems())
	}
	var users, intervals int
	switch b.Kind {
	case KindITCAM:
		users, intervals = b.ITCAM.NumUsers(), b.ITCAM.NumIntervals()
	case KindTTCAM:
		users, intervals = b.TTCAM.NumUsers(), b.TTCAM.NumIntervals()
	}
	if len(b.Users) != users {
		return fmt.Errorf("index: %d user names for a %d-user model", len(b.Users), users)
	}
	if b.Grid.Num != intervals {
		return fmt.Errorf("index: grid has %d intervals, model %d", b.Grid.Num, intervals)
	}
	return nil
}

// fileWire is the single gob message holding the whole bundle. The
// model payload is embedded as bytes: gob decoders read ahead, so two
// decoders cannot safely share one stream.
type fileWire struct {
	Kind  Kind
	Grid  dataset.TimeGrid
	Users []string
	Items []string
	Model []byte
}

// Write serializes the bundle to w.
func (b *Bundle) Write(w io.Writer) error {
	if err := b.Validate(); err != nil {
		return err
	}
	var payload bytes.Buffer
	var err error
	switch b.Kind {
	case KindITCAM:
		err = b.ITCAM.Write(&payload)
	case KindTTCAM:
		err = b.TTCAM.Write(&payload)
	}
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	enc := gob.NewEncoder(bw)
	if err := enc.Encode(&fileWire{
		Kind: b.Kind, Grid: b.Grid, Users: b.Users, Items: b.Items, Model: payload.Bytes(),
	}); err != nil {
		return fmt.Errorf("index: encode: %w", err)
	}
	return bw.Flush()
}

// Read deserializes a bundle written with Write.
func Read(r io.Reader) (*Bundle, error) {
	var w fileWire
	if err := gob.NewDecoder(bufio.NewReader(r)).Decode(&w); err != nil {
		return nil, fmt.Errorf("index: decode: %w", err)
	}
	b := &Bundle{Kind: w.Kind, Grid: w.Grid, Users: w.Users, Items: w.Items}
	var err error
	switch w.Kind {
	case KindITCAM:
		b.ITCAM, err = itcam.Read(bytes.NewReader(w.Model))
	case KindTTCAM:
		b.TTCAM, err = ttcam.Read(bytes.NewReader(w.Model))
	default:
		return nil, fmt.Errorf("index: unknown bundle kind %q", w.Kind)
	}
	if err != nil {
		return nil, err
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return b, nil
}

// Save writes the bundle to path crash-safely: the bytes land in a
// temp file that is synced and renamed over path, so an existing bundle
// (possibly being served and hot-reloaded) is never left torn by a
// crash mid-save.
func (b *Bundle) Save(path string) error {
	return atomicfile.Write(path, b.Write)
}

// Load reads a bundle from path.
func Load(path string) (*Bundle, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("index: %w", err)
	}
	//tcamvet:ignore errcheck close error on a read-only file carries no signal
	defer f.Close()
	return Read(f)
}
