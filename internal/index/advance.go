package index

// Advance is the bundle-level fold-in facade behind the streaming
// ingest loop: it derives a fresh serving bundle from a frozen boot
// bundle plus the stream state accumulated since boot — grown
// vocabularies, a grown time grid, and the stream's cuboid — without
// touching any trained parameter of existing users. The composition is
//
//	new-interval θ′ estimation (FitNewInterval, one row per interval
//	the stream opened)  →  Grow (re-layout over the wider interval and
//	item dimensions)    →  FoldInUsers (partial EM for the new users
//	against every global frozen).
//
// Because each step is deterministic and starts from the immutable
// boot bundle, the advanced bundle is a pure function of (boot, stream
// state): replaying the same log prefix after a crash re-derives a
// bit-identical artifact, which is what makes the updater's publish
// loop idempotent.

import (
	"fmt"

	"tcam/internal/cuboid"
	"tcam/internal/dataset"
	"tcam/internal/model/itcam"
	"tcam/internal/model/ttcam"
)

// AdvanceConfig parameterizes Bundle.Advance.
type AdvanceConfig struct {
	// FoldIters is the number of partial-EM rounds for new users'
	// interests (θu) and mixing weights (λu).
	FoldIters int
	// FitIters is the number of partial-EM rounds for a new interval's
	// temporal context under TTCAM (ITCAM's estimator is closed-form
	// and ignores it).
	FitIters int
	// Smoothing is the additive epsilon for the folded θ rows.
	Smoothing float64
	// Shards/Workers mirror the batch trainer's knobs; neither affects
	// the folded parameters.
	Shards  int
	Workers int
}

// DefaultAdvanceConfig mirrors the models' fold-in defaults.
func DefaultAdvanceConfig() AdvanceConfig {
	return AdvanceConfig{FoldIters: 5, FitIters: 20, Smoothing: 1e-9}
}

// Advance derives a grown bundle from the (frozen) receiver. stream
// holds only events observed since boot, with dimensions equal to the
// grown vocabularies — cells of already-trained users contribute only
// to new-interval contexts, never to their own frozen parameters.
// users/items must extend the boot vocabularies in place (boot names
// as a prefix, stream arrivals appended), and grid must extend the
// boot grid to stream.NumIntervals() intervals. The receiver is not
// mutated.
func (b *Bundle) Advance(stream *cuboid.Cuboid, grid dataset.TimeGrid, users, items []string, cfg AdvanceConfig) (*Bundle, error) {
	if len(users) != stream.NumUsers() || len(items) != stream.NumItems() {
		return nil, fmt.Errorf("index: advance vocabularies (%d users, %d items) disagree with the stream cuboid (%d × %d)",
			len(users), len(items), stream.NumUsers(), stream.NumItems())
	}
	if grid.Num != stream.NumIntervals() {
		return nil, fmt.Errorf("index: advance grid has %d intervals, stream cuboid %d", grid.Num, stream.NumIntervals())
	}
	if len(users) < len(b.Users) || len(items) < len(b.Items) {
		return nil, fmt.Errorf("index: advance cannot shrink vocabularies (%d -> %d users, %d -> %d items)",
			len(b.Users), len(users), len(b.Items), len(items))
	}
	for u, name := range b.Users {
		if users[u] != name {
			return nil, fmt.Errorf("index: advance user vocabulary is not a boot extension (index %d: %q != %q)", u, users[u], name)
		}
	}
	for v, name := range b.Items {
		if items[v] != name {
			return nil, fmt.Errorf("index: advance item vocabulary is not a boot extension (index %d: %q != %q)", v, items[v], name)
		}
	}

	out := &Bundle{Kind: b.Kind, Grid: grid, Users: users, Items: items}
	switch b.Kind {
	case KindITCAM:
		m := b.ITCAM
		contexts := make([][]float64, 0, grid.Num-m.NumIntervals())
		for t := m.NumIntervals(); t < grid.Num; t++ {
			contexts = append(contexts, m.FitNewInterval(intervalRatings(stream, t), len(items)))
		}
		grown, err := m.Grow(grid.Num, len(items), contexts)
		if err != nil {
			return nil, err
		}
		out.ITCAM, err = grown.FoldInUsers(stream, itcam.FoldInConfig{
			Iters: cfg.FoldIters, Smoothing: cfg.Smoothing, Shards: cfg.Shards, Workers: cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
	case KindTTCAM:
		m := b.TTCAM
		contexts := make([][]float64, 0, grid.Num-m.NumIntervals())
		for t := m.NumIntervals(); t < grid.Num; t++ {
			contexts = append(contexts, m.FitNewInterval(intervalRatings(stream, t), cfg.FitIters))
		}
		grown, err := m.Grow(grid.Num, len(items), contexts)
		if err != nil {
			return nil, err
		}
		out.TTCAM, err = grown.FoldInUsers(stream, ttcam.FoldInConfig{
			Iters: cfg.FoldIters, Smoothing: cfg.Smoothing, Shards: cfg.Shards, Workers: cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("index: bundle kind %q cannot advance", b.Kind)
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// intervalRatings aggregates interval t's stream events into the
// item → total-score map FitNewInterval estimates a context from. The
// by-interval CSR view makes this one contiguous scan.
func intervalRatings(c *cuboid.Cuboid, t int) map[int]float64 {
	_, vs, scores := c.IntervalCSR()
	lo, hi := c.IntervalSpan(t)
	r := make(map[int]float64, hi-lo)
	for i := lo; i < hi; i++ {
		r[int(vs[i])] += scores[i]
	}
	return r
}
