package faultinject

import (
	"errors"
	"testing"
)

func TestClearErrDisarms(t *testing.T) {
	defer Reset()
	SetErr("x.conn", ErrorAlways(ErrInjectedConn))
	if err := FireErr("x.conn"); !errors.Is(err, ErrInjectedConn) {
		t.Fatalf("armed FireErr = %v", err)
	}
	ClearErr("x.conn")
	if err := FireErr("x.conn"); err != nil {
		t.Fatalf("cleared FireErr = %v, want nil", err)
	}
	if armed.Load() {
		t.Fatal("armed flag still set after the last hook was cleared")
	}
}

func TestErrorsNExhausts(t *testing.T) {
	hook := ErrorsN(2, ErrInjectedConn)
	for i := 0; i < 2; i++ {
		if err := hook(); !errors.Is(err, ErrInjectedConn) {
			t.Fatalf("call %d = %v, want injected error", i, err)
		}
	}
	if err := hook(); err != nil {
		t.Fatalf("exhausted hook = %v, want nil", err)
	}
}
