package httpfault_test

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"tcam/internal/faultinject"
	"tcam/internal/faultinject/httpfault"
)

func transportClient(site string) (*httptest.Server, *http.Client) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(`{"ok":true,"payload":"0123456789"}`))
	}))
	hc := &http.Client{Transport: &httpfault.Transport{Site: site}}
	return ts, hc
}

func TestTransportPassthroughWhenUnarmed(t *testing.T) {
	ts, hc := transportClient("net.test")
	defer ts.Close()
	resp, err := hc.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil || len(body) == 0 {
		t.Fatalf("clean read failed: %v (%d bytes)", err, len(body))
	}
}

func TestTransportInjectsConnectionErrors(t *testing.T) {
	defer faultinject.Reset()
	ts, hc := transportClient("net.conn")
	defer ts.Close()
	faultinject.SetErr("net.conn.conn", faultinject.ErrorsN(2, faultinject.ErrInjectedConn))
	for i := 0; i < 2; i++ {
		if _, err := hc.Get(ts.URL); !errors.Is(err, faultinject.ErrInjectedConn) {
			t.Fatalf("attempt %d: err = %v, want injected connection error", i, err)
		}
	}
	// Third attempt: ErrorsN exhausted, request goes through.
	resp, err := hc.Get(ts.URL)
	if err != nil {
		t.Fatalf("recovered attempt failed: %v", err)
	}
	_ = resp.Body.Close()
}

func TestTransportTearsResponseBody(t *testing.T) {
	defer faultinject.Reset()
	ts, hc := transportClient("net.torn")
	defer ts.Close()
	faultinject.SetErr("net.torn.torn", faultinject.ErrorAlways(faultinject.ErrInjectedTorn))
	resp, err := hc.Get(ts.URL)
	if err != nil {
		t.Fatalf("headers should arrive before the tear: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if !errors.Is(err, faultinject.ErrInjectedTorn) {
		t.Fatalf("read err = %v (got %d bytes), want torn-response error", err, len(body))
	}
	if len(body) != 1 {
		t.Fatalf("torn body let %d bytes through, want exactly 1", len(body))
	}
}

func TestTransportInjectsLatency(t *testing.T) {
	defer faultinject.Reset()
	ts, hc := transportClient("net.slow")
	defer ts.Close()
	const delay = 30 * time.Millisecond
	faultinject.Set("net.slow.delay", faultinject.Sleeps(delay))
	start := time.Now()
	resp, err := hc.Get(ts.URL)
	if err != nil {
		t.Fatalf("slow-then-succeed request failed: %v", err)
	}
	_ = resp.Body.Close()
	if took := time.Since(start); took < delay {
		t.Fatalf("request returned after %v, want >= %v", took, delay)
	}
}
