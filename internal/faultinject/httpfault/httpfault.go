// Package httpfault adapts the faultinject hook registry to the HTTP
// layer: an http.RoundTripper that turns armed hooks into connection
// errors, injected latency, and torn (mid-body) response failures. The
// shard coordinator tests thread Transport into their HTTP stacks, so
// the scatter-gather robustness suite (breaker trips, hedged
// stragglers, degraded merges) is a deterministic function of which
// hooks a test arms.
//
// It is a separate package so that importing faultinject — which the
// training and model packages do for their own hook sites — does not
// link net/http into every binary.
package httpfault

import (
	"io"
	"net/http"

	"tcam/internal/faultinject"
)

// Transport wraps an http.RoundTripper with fault-injection points
// keyed off Site. Per request, in order:
//
//	Site+".delay"  Fire hook — inject latency (Sleeps) or park the
//	               request (Blocks); a slow-then-succeed straggler is
//	               Sleeps past the hedge trigger.
//	Site+".conn"   FireErr hook — non-nil aborts before the wire, the
//	               shape of a refused/reset connection.
//	Site+".torn"   FireErr hook — non-nil lets the response headers
//	               through but fails the body mid-read, the shape of a
//	               connection dropped inside the payload.
//
// With nothing armed each point costs one atomic load.
type Transport struct {
	Site string
	Base http.RoundTripper // nil means http.DefaultTransport
}

// RoundTrip implements http.RoundTripper with the Site's fault points.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	faultinject.Fire(t.Site + ".delay")
	if err := faultinject.FireErr(t.Site + ".conn"); err != nil {
		return nil, err
	}
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	resp, err := base.RoundTrip(req)
	if err != nil || resp == nil {
		return resp, err
	}
	if terr := faultinject.FireErr(t.Site + ".torn"); terr != nil {
		resp.Body = &tornBody{rc: resp.Body, remain: 1, err: terr}
	}
	return resp, err
}

// tornBody lets remain bytes through and then fails every Read — a
// response whose connection died inside the payload. Close still closes
// the underlying body so the transport can reclaim the connection.
type tornBody struct {
	rc     io.ReadCloser
	remain int
	err    error
}

func (b *tornBody) Read(p []byte) (int, error) {
	if b.remain <= 0 {
		return 0, b.err
	}
	if len(p) > b.remain {
		p = p[:b.remain]
	}
	n, err := b.rc.Read(p)
	b.remain -= n
	if err != nil {
		return n, err
	}
	return n, nil
}

func (b *tornBody) Close() error { return b.rc.Close() }
