// Package faultinject provides deterministic, test-only fault hooks for
// the serving stack. Production code marks interesting points with
// Fire("site"); tests arm a hook at a site to inject latency, a panic,
// or a context cancellation at exactly that point, which turns
// fault-tolerance claims ("an injected panic yields one 500 and the
// server keeps serving") into ordinary deterministic tests.
//
// When no hook is armed, Fire is a single atomic load — cheap enough to
// leave compiled into release binaries, and nothing in this package can
// trigger without a test explicitly arming it.
package faultinject

import (
	"sync"
	"sync/atomic"
	"time"
)

var (
	// armed short-circuits Fire when no hooks are registered, keeping
	// the instrumented paths at one atomic load in production.
	armed atomic.Bool

	mu    sync.Mutex
	hooks map[string]func()
)

// Fire invokes the hook armed at site, if any. Call it at the points a
// fault should be injectable; with nothing armed it costs one atomic
// load.
func Fire(site string) {
	if !armed.Load() {
		return
	}
	mu.Lock()
	fn := hooks[site]
	mu.Unlock()
	if fn != nil {
		fn()
	}
}

// Set arms fn at site, replacing any previous hook there. fn runs on
// the goroutine that calls Fire. Tests should pair Set with a deferred
// Reset.
func Set(site string, fn func()) {
	mu.Lock()
	defer mu.Unlock()
	if hooks == nil {
		hooks = make(map[string]func())
	}
	hooks[site] = fn
	armed.Store(true)
}

// Clear disarms the hook at site.
func Clear(site string) {
	mu.Lock()
	defer mu.Unlock()
	delete(hooks, site)
	maybeDisarm()
}

// Reset disarms every hook of both kinds (plain and error-returning);
// defer it from any test that calls Set or SetErr.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	hooks = nil
	errHooks = nil
	armed.Store(false)
}

// maybeDisarm drops the armed fast-path flag once no hook of either
// registry remains. Callers hold mu.
func maybeDisarm() {
	if len(hooks) == 0 && len(errHooks) == 0 {
		armed.Store(false)
	}
}

// Panics returns a hook that panics with a constant message. Use it to
// prove panic containment: the injected panic is indistinguishable from
// a handler bug to the recovery middleware.
func Panics() func() {
	return func() { panic("faultinject: injected panic") }
}

// Sleeps returns a hook that blocks for d — injected latency for
// timeout and drain tests.
func Sleeps(d time.Duration) func() {
	return func() { time.Sleep(d) }
}

// CancelsAfter returns a hook that calls cancel on its n-th firing
// (1-based) and passes through otherwise — a deterministic way to
// cancel a context mid-batch.
func CancelsAfter(n int64, cancel func()) func() {
	var calls atomic.Int64
	return func() {
		if calls.Add(1) == n {
			cancel()
		}
	}
}

// FailsOnce returns a hook that invokes fail only on its first firing.
// Use with Panics() to prove a single fault does not take the process
// down: Set(site, FailsOnce(Panics())).
func FailsOnce(fail func()) func() {
	var done atomic.Bool
	return func() {
		if done.CompareAndSwap(false, true) {
			fail()
		}
	}
}

// Blocks returns a hook that signals entry on entered (if non-nil) and
// then blocks until release is closed — the building block for
// "request in flight" tests: park a request inside the handler, poke
// the server (drain, saturate, reload), then release.
func Blocks(entered chan<- struct{}, release <-chan struct{}) func() {
	return func() {
		if entered != nil {
			entered <- struct{}{}
		}
		<-release
	}
}
