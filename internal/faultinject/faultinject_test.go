package faultinject

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestFireUnarmedIsNoop(t *testing.T) {
	Reset()
	Fire("nowhere") // must not panic or block
}

func TestSetFireClear(t *testing.T) {
	defer Reset()
	calls := 0
	Set("site-a", func() { calls++ })
	Fire("site-a")
	Fire("site-a")
	Fire("site-b") // unarmed site: no-op
	if calls != 2 {
		t.Errorf("calls = %d, want 2", calls)
	}
	Clear("site-a")
	Fire("site-a")
	if calls != 2 {
		t.Errorf("calls after Clear = %d, want 2", calls)
	}
}

func TestResetDisarms(t *testing.T) {
	Set("x", func() { t.Error("hook fired after Reset") })
	Reset()
	Fire("x")
	if armed.Load() {
		t.Error("still armed after Reset")
	}
}

func TestPanics(t *testing.T) {
	defer Reset()
	Set("boom", Panics())
	defer func() {
		if recover() == nil {
			t.Error("injected panic did not propagate")
		}
	}()
	Fire("boom")
}

func TestFailsOncePanicsExactlyOnce(t *testing.T) {
	defer Reset()
	Set("boom", FailsOnce(Panics()))
	panicked := func() (p bool) {
		defer func() { p = recover() != nil }()
		Fire("boom")
		return false
	}
	if !panicked() {
		t.Error("first Fire did not panic")
	}
	if panicked() {
		t.Error("second Fire panicked; want pass-through")
	}
}

func TestCancelsAfter(t *testing.T) {
	defer Reset()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	Set("step", CancelsAfter(3, cancel))
	for i := 1; i <= 3; i++ {
		if ctx.Err() != nil {
			t.Fatalf("cancelled after %d firings, want 3", i-1)
		}
		Fire("step")
	}
	if ctx.Err() == nil {
		t.Error("not cancelled after 3 firings")
	}
}

func TestSleeps(t *testing.T) {
	defer Reset()
	Set("slow", Sleeps(10*time.Millisecond))
	start := time.Now()
	Fire("slow")
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Errorf("slept %v, want >= 10ms", d)
	}
}

func TestBlocks(t *testing.T) {
	defer Reset()
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	Set("park", Blocks(entered, release))
	done := make(chan struct{})
	go func() {
		Fire("park")
		close(done)
	}()
	<-entered
	select {
	case <-done:
		t.Fatal("hook returned before release")
	default:
	}
	close(release)
	<-done
}

// Concurrent Fire/Set/Clear must be race-clean: the serving stack fires
// hooks from request goroutines while tests arm and disarm them.
func TestConcurrentFireAndSet(t *testing.T) {
	defer Reset()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				Fire("contended")
			}
		}()
	}
	for i := 0; i < 100; i++ {
		Set("contended", func() {})
		Clear("contended")
	}
	wg.Wait()
}
