package faultinject

// Error-returning fault hooks: sites where the injected failure is an
// error value the production code path must handle (a refused
// connection, a torn response) rather than a side effect. The
// httpfault subpackage adapts these to the HTTP layer; it lives apart
// so this package — imported by the training and model code for plain
// hook sites — never links net/http.

import (
	"errors"
	"sync/atomic"
)

// errHooks shares faultinject.mu with the plain hook registry so the
// armed fast-path flag has one consistent view of both.
var errHooks map[string]func() error

// SetErr arms an error-returning hook at site: FireErr(site) returns
// whatever fn returns. Tests should pair SetErr with a deferred Reset.
func SetErr(site string, fn func() error) {
	mu.Lock()
	defer mu.Unlock()
	if errHooks == nil {
		errHooks = make(map[string]func() error)
	}
	errHooks[site] = fn
	armed.Store(true)
}

// FireErr invokes the error hook armed at site, returning nil when
// nothing is armed (the production case: one atomic load).
func FireErr(site string) error {
	if !armed.Load() {
		return nil
	}
	mu.Lock()
	fn := errHooks[site]
	mu.Unlock()
	if fn == nil {
		return nil
	}
	return fn()
}

// ClearErr disarms the error hook at site.
func ClearErr(site string) {
	mu.Lock()
	defer mu.Unlock()
	delete(errHooks, site)
	maybeDisarm()
}

// ErrorsN returns an error hook whose first n firings return err and
// the rest nil — "the connection fails n times, then recovers", the
// exact shape a circuit-breaker recovery test needs.
func ErrorsN(n int64, err error) func() error {
	var calls atomic.Int64
	return func() error {
		if calls.Add(1) <= n {
			return err
		}
		return nil
	}
}

// ErrorAlways returns an error hook that always fails — a shard that is
// down and stays down.
func ErrorAlways(err error) func() error {
	return func() error { return err }
}

// ErrInjectedConn is the default error identity tests can match when
// arming .conn hooks (see httpfault.Transport) with ErrorAlways/ErrorsN.
var ErrInjectedConn = errors.New("faultinject: injected connection error")

// ErrInjectedTorn is the mid-body read error produced by .torn hooks.
var ErrInjectedTorn = errors.New("faultinject: injected torn response")
