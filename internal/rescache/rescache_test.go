package rescache

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func TestPutGetRoundTrip(t *testing.T) {
	c := New[int](64)
	k := Key{User: 7, Time: 11, K: 10}
	if _, ok := c.Get(1, k); ok {
		t.Fatal("hit on an empty cache")
	}
	c.Put(1, k, 42)
	v, ok := c.Get(1, k)
	if !ok || v != 42 {
		t.Fatalf("Get = %d, %v; want 42, true", v, ok)
	}
	// A differing field anywhere in the key is a different entry.
	for _, other := range []Key{
		{User: 8, Time: 11, K: 10},
		{User: 7, Time: 12, K: 10},
		{User: 7, Time: 11, K: 9},
		{User: 7, Time: 11, K: 10, NumExclude: 1},
		{User: 7, Time: 11, K: 10, ExcludeHash: 3},
		{User: 7, Time: 11, K: 10, Scope: 5},
	} {
		if _, ok := c.Get(1, other); ok {
			t.Fatalf("key %+v hit entry stored under %+v", other, k)
		}
	}
}

func TestEpochMismatchIsMissAndReclaims(t *testing.T) {
	c := New[int](64)
	k := Key{User: 1, Time: 2, K: 3}
	c.Put(1, k, 10)
	if got := c.Counters().Entries; got != 1 {
		t.Fatalf("entries = %d, want 1", got)
	}
	if _, ok := c.Get(2, k); ok {
		t.Fatal("epoch-2 lookup hit an epoch-1 entry")
	}
	ctr := c.Counters()
	if ctr.Entries != 0 {
		t.Fatalf("stale entry not reclaimed: entries = %d", ctr.Entries)
	}
	if ctr.Stale != 1 || ctr.Misses != 1 || ctr.Hits != 0 {
		t.Fatalf("counters = %+v, want stale 1, misses 1, hits 0", ctr)
	}
	// The old epoch is gone for good: re-publish at the new epoch works.
	c.Put(2, k, 20)
	if v, ok := c.Get(2, k); !ok || v != 20 {
		t.Fatalf("Get after republish = %d, %v; want 20, true", v, ok)
	}
}

func TestSameKeyReplacesInPlace(t *testing.T) {
	c := New[int](64)
	k := Key{User: 5}
	c.Put(1, k, 1)
	c.Put(1, k, 2)
	c.Put(2, k, 3) // new epoch overwrites rather than duplicating
	if got := c.Counters().Entries; got != 1 {
		t.Fatalf("entries = %d after 3 same-key puts, want 1", got)
	}
	if v, ok := c.Get(2, k); !ok || v != 3 {
		t.Fatalf("Get = %d, %v; want 3, true", v, ok)
	}
}

func TestCapacityBounded(t *testing.T) {
	c := New[int](64)
	cap := c.Capacity()
	for i := 0; i < 10*cap; i++ {
		c.Put(1, Key{User: uint64(i)}, i)
	}
	if got := c.Counters().Entries; got > int64(cap) {
		t.Fatalf("entries = %d exceeds capacity %d", got, cap)
	}
	// A full set still accepts fresh keys by evicting a live victim.
	k := Key{User: 1 << 40}
	c.Put(1, k, 7)
	if v, ok := c.Get(1, k); !ok || v != 7 {
		t.Fatalf("insert into full cache lost: %d, %v", v, ok)
	}
}

// TestPropertyHitsAreExact drives a random workload over random epochs
// against a model map: every hit must return exactly the value the
// model says was last Put for that (epoch, key). Misses are always
// allowed (eviction); wrong values never.
func TestPropertyHitsAreExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := New[string](256)
	model := map[uint64]map[Key]string{}
	val := func(epoch uint64, k Key) string {
		return fmt.Sprintf("%d/%d/%d/%d", epoch, k.User, k.Time, k.K)
	}
	for i := 0; i < 20000; i++ {
		epoch := uint64(1 + rng.Intn(3))
		k := Key{
			User:  uint64(rng.Intn(40)),
			Time:  int64(rng.Intn(4)),
			K:     int32(1 + rng.Intn(3)),
			Scope: uint64(rng.Intn(2)),
		}
		if rng.Intn(2) == 0 {
			if model[epoch] == nil {
				model[epoch] = map[Key]string{}
			}
			model[epoch][k] = val(epoch, k)
			c.Put(epoch, k, model[epoch][k])
		} else if got, ok := c.Get(epoch, k); ok {
			want, stored := model[epoch][k]
			if !stored {
				t.Fatalf("hit for (%d, %+v) that was never Put", epoch, k)
			}
			if got != want {
				t.Fatalf("hit value %q, want %q", got, want)
			}
		}
	}
	ctr := c.Counters()
	if ctr.Hits == 0 {
		t.Fatal("property test exercised no hits")
	}
}

// TestConcurrentEpochsNeverCross hammers the cache from writers on two
// epochs and readers on both; a reader must never see a value tagged
// with the other epoch. Run under -race this is also the data-race
// proof for the lock-free slots.
func TestConcurrentEpochsNeverCross(t *testing.T) {
	type tagged struct{ epoch uint64 }
	c := New[tagged](128)
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 5000; i++ {
				epoch := uint64(1 + rng.Intn(2))
				k := Key{User: uint64(rng.Intn(32))}
				if rng.Intn(2) == 0 {
					c.Put(epoch, k, tagged{epoch: epoch})
				} else if v, ok := c.Get(epoch, k); ok && v.epoch != epoch {
					select {
					case errs <- fmt.Sprintf("epoch %d lookup returned epoch %d value", epoch, v.epoch):
					default:
					}
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

func TestSetHashOrderIndependentDuplicateSensitive(t *testing.T) {
	sum := func(xs ...uint64) uint64 {
		var s SetHash
		for _, x := range xs {
			s.Add(x)
		}
		return s.Sum()
	}
	if sum(1, 2, 3) != sum(3, 1, 2) {
		t.Fatal("SetHash is order-dependent")
	}
	if sum(1, 2) == sum(1, 3) {
		t.Fatal("SetHash ignores membership")
	}
	// XOR alone would collapse {a,a,b} to {b}; the folded sum must not.
	if sum(1, 1, 2) == sum(2) || sum(1, 1, 2) == sum(2, 3, 3) {
		t.Fatal("SetHash cancels duplicates")
	}
	var empty SetHash
	if empty.Sum() != 0 || empty.Len() != 0 {
		t.Fatal("empty SetHash must sum to 0")
	}
}

func TestHashStringStable(t *testing.T) {
	// FNV-1a reference values: workload files and servers must agree
	// across processes and releases.
	if got := HashString(""); got != 0xcbf29ce484222325 {
		t.Fatalf("HashString(\"\") = %#x", got)
	}
	if got := HashString("a"); got != 0xaf63dc4c8601ec8c {
		t.Fatalf("HashString(\"a\") = %#x", got)
	}
	if HashString("user-1") == HashString("user-2") {
		t.Fatal("distinct users collided")
	}
}

func TestHotTrackerTopRanksSkew(t *testing.T) {
	tr := NewHotTracker(1024)
	names := make([]string, 50)
	for i := range names {
		names[i] = fmt.Sprintf("user-%02d", i)
	}
	// user-03 hottest, then user-07, then user-01; everyone else cold.
	for i := 0; i < 30; i++ {
		tr.Observe(HashString("user-03"))
	}
	for i := 0; i < 20; i++ {
		tr.Observe(HashString("user-07"))
	}
	for i := 0; i < 10; i++ {
		tr.Observe(HashString("user-01"))
	}
	got := tr.Top(names, 3)
	want := []int{3, 7, 1}
	if len(got) != len(want) {
		t.Fatalf("Top = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Top = %v, want %v", got, want)
		}
	}
	// Never-seen users are not padded in, even with room for them.
	if got := tr.Top(names, 10); len(got) != 3 {
		t.Fatalf("Top padded unseen users: %v", got)
	}
}

func TestHotTrackerCountNeverUnderestimates(t *testing.T) {
	tr := NewHotTracker(64) // tiny: force collisions
	rng := rand.New(rand.NewSource(2))
	exact := map[string]uint32{}
	for i := 0; i < 2000; i++ {
		name := fmt.Sprintf("u%03d", rng.Intn(300))
		exact[name]++
		tr.Observe(HashString(name))
	}
	for name, want := range exact {
		if got := tr.Count(HashString(name)); got < want {
			t.Fatalf("Count(%s) = %d underestimates exact %d", name, got, want)
		}
	}
}

func TestHotTrackerDecayHalves(t *testing.T) {
	tr := NewHotTracker(1024)
	h := HashString("user-a")
	for i := 0; i < 9; i++ {
		tr.Observe(h)
	}
	tr.Decay()
	if got := tr.Count(h); got != 4 {
		t.Fatalf("Count after decay = %d, want 4", got)
	}
	tr.Decay()
	tr.Decay()
	if got := tr.Count(h); got != 1 {
		t.Fatalf("Count after three decays = %d, want 1", got)
	}
	names := []string{"user-a"}
	tr.Decay() // 1 → 0: fades out entirely
	if got := tr.Top(names, 1); len(got) != 0 {
		t.Fatalf("fully-decayed user still ranked: %v", got)
	}
}
