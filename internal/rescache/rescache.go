// Package rescache is the epoch-versioned top-k result cache behind
// the serving tier (DESIGN.md §16). It maps a query identity
// (user, t, k, exclude-set hash, scope) to an arbitrary immutable
// value, versioned by the serving snapshot's epoch: a publish bumps
// the epoch, which invalidates every cached entry logically in O(1) —
// stale entries are rejected by an epoch compare on lookup and lazily
// reclaimed, never scanned.
//
// The cache is a fixed-capacity, set-associative array of atomic
// entry pointers. Entries are immutable once published, so a lookup
// is two loads and a compare — no locks, no allocation — and an
// insert is a single CAS. Capacity never grows: under pressure an
// insert evicts within its own set, preferring same-key, then empty,
// then stale slots, and only then a live victim. The design borrows
// the epoch-stamped-membership trick from the server's excludeSet
// (O(1) invalidation by version bump instead of O(n) clears) and
// applies it cache-wide.
package rescache

import "sync/atomic"

// ways is the set associativity: an insert can only displace one of
// the `ways` slots its key hashes to, which bounds eviction scans and
// keeps hot keys from fighting over a single slot.
const ways = 4

// Key identifies one cached query. All fields participate in equality,
// so two queries collide only when every component — including the
// exclude-set hash, its cardinality, and the caller-defined scope —
// matches. User is the caller's user identity (a dense index for the
// in-process server, a hashed name for the coordinator); Scope
// distinguishes result universes that share a user/time/k triple, such
// as the coordinator's degraded missing-shard set, so a degraded
// answer can never be served as a healthy one.
type Key struct {
	User        uint64
	Time        int64
	K           int32
	NumExclude  int32
	ExcludeHash uint64
	Scope       uint64
}

// hash mixes every key field into the slot-selection hash.
//
//tcam:hotpath
func (k Key) hash() uint64 {
	h := Mix64(k.User)
	h = Mix64(h ^ uint64(k.Time))
	h = Mix64(h ^ uint64(uint32(k.K))<<32 ^ uint64(uint32(k.NumExclude)))
	h = Mix64(h ^ k.ExcludeHash)
	return Mix64(h ^ k.Scope)
}

// entry is one immutable published (epoch, key, value) binding.
type entry[V any] struct {
	key   Key
	epoch uint64
	val   V
}

// Cache is a fixed-capacity, epoch-versioned result cache. The zero
// value is not usable; construct with New. All methods are safe for
// concurrent use.
type Cache[V any] struct {
	slots []atomic.Pointer[entry[V]] // sets*ways, set-major
	mask  uint64                     // set count - 1 (power of two)
	tick  atomic.Uint64              // rotating victim cursor for full sets

	hits    atomic.Uint64
	misses  atomic.Uint64
	stale   atomic.Uint64 // misses caused by an epoch mismatch
	entries atomic.Int64  // live slots (any epoch), ≤ Capacity
}

// New builds a cache holding at most `capacity` entries (rounded up to
// a power-of-two multiple of the associativity, minimum one set).
func New[V any](capacity int) *Cache[V] {
	sets := 1
	for sets*ways < capacity {
		sets <<= 1
	}
	return &Cache[V]{
		slots: make([]atomic.Pointer[entry[V]], sets*ways),
		mask:  uint64(sets - 1),
	}
}

// Capacity is the fixed slot count; the cache never holds more.
func (c *Cache[V]) Capacity() int { return len(c.slots) }

// Get returns the value cached for key at exactly the given epoch. An
// entry from any other epoch is a miss: it is counted as stale,
// cleared lazily (one CAS, no scans), and never returned — this is the
// whole invalidation story, there is no flush. The boolean reports a
// hit. Get performs no allocation.
//
//tcam:hotpath
func (c *Cache[V]) Get(epoch uint64, key Key) (V, bool) {
	base := (key.hash() & c.mask) * ways
	for i := uint64(0); i < ways; i++ {
		slot := &c.slots[base+i]
		e := slot.Load()
		if e == nil || e.key != key {
			continue
		}
		if e.epoch != epoch {
			// A previous generation's answer. Reclaim the slot so the
			// set regains capacity, then keep scanning — a later way
			// may hold this key at the live epoch.
			if slot.CompareAndSwap(e, nil) {
				c.entries.Add(-1)
			}
			c.stale.Add(1)
			continue
		}
		c.hits.Add(1)
		return e.val, true
	}
	c.misses.Add(1)
	var zero V
	return zero, false
}

// Put publishes a value for key at the given epoch. Victim preference
// inside the key's set: a slot already holding this key (any epoch),
// then an empty slot, then any stale slot, then a rotating live
// victim. Racing writers resolve by CAS — the loser simply drops its
// insert, which keeps the entries accounting exact.
func (c *Cache[V]) Put(epoch uint64, key Key, val V) {
	e := &entry[V]{key: key, epoch: epoch, val: val}
	base := (key.hash() & c.mask) * ways
	var victim *atomic.Pointer[entry[V]]
	var old *entry[V]
	rank := 0 // 0 none, 1 live victim, 2 stale, 3 empty, 4 same key
	for i := uint64(0); i < ways; i++ {
		slot := &c.slots[base+i]
		cur := slot.Load()
		switch {
		case cur != nil && cur.key == key:
			victim, old, rank = slot, cur, 4
		case cur == nil && rank < 3:
			victim, old, rank = slot, cur, 3
		case cur != nil && cur.epoch != epoch && rank < 2:
			victim, old, rank = slot, cur, 2
		case rank < 1:
			victim, old, rank = slot, cur, 1
		}
		if rank == 4 {
			break // same key always replaces in place: no duplicates
		}
	}
	if rank == 1 {
		// Every slot is live this epoch: rotate the victim so one hot
		// set degrades to round-robin instead of pinning slot 0.
		slot := &c.slots[base+c.tick.Add(1)%ways]
		victim, old = slot, slot.Load()
	}
	if victim.CompareAndSwap(old, e) && old == nil {
		c.entries.Add(1)
	}
}

// Counters is a point-in-time view of cache effectiveness.
type Counters struct {
	Hits    uint64 // lookups answered from the cache
	Misses  uint64 // lookups that fell through (Stale ⊆ Misses)
	Stale   uint64 // misses caused by an epoch mismatch
	Entries int64  // live slots right now, any epoch
}

// Counters snapshots the hit/miss accounting. Reads are individually
// atomic (the struct is not a consistent cut, which monitoring does
// not need).
func (c *Cache[V]) Counters() Counters {
	return Counters{
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
		Stale:   c.stale.Load(),
		Entries: c.entries.Load(),
	}
}

// Mix64 is the splitmix64 finalizer: a cheap, statistically strong
// 64-bit mixer used for slot selection and set hashing.
//
//tcam:hotpath
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// HashString is FNV-1a over the string's bytes — allocation-free (no
// []byte conversion) and stable across processes, so workload files
// and servers agree on user identities.
//
//tcam:hotpath
func HashString(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// SetHash accumulates an order-independent, duplicate-sensitive hash
// of a set of 64-bit elements: XOR of mixed elements (commutative)
// folded with their mixed sum (so {a,a,b} and {b,c,c} cannot collide
// by XOR self-cancellation). Use one accumulator per exclude list and
// store Sum/Len in the Key.
type SetHash struct {
	xor uint64
	sum uint64
	n   int32
}

// Add folds one element into the set hash.
//
//tcam:hotpath
func (s *SetHash) Add(x uint64) {
	m := Mix64(x)
	s.xor ^= m
	s.sum += m
	s.n++
}

// Sum is the accumulated order-independent hash; zero for the empty set.
//
//tcam:hotpath
func (s *SetHash) Sum() uint64 {
	if s.n == 0 {
		return 0
	}
	return s.xor ^ Mix64(s.sum)
}

// Len is the number of elements folded in.
//
//tcam:hotpath
func (s *SetHash) Len() int32 { return s.n }
