package rescache

import "testing"

// BenchmarkCacheHit is the contract benchmark for the serving tier:
// a lookup that hits must be allocation-free (bench_smoke.sh gates
// 0 allocs/op on it) and orders of magnitude cheaper than the ~32µs
// TA search it short-circuits.
func BenchmarkCacheHit(b *testing.B) {
	c := New[[]int](1 << 10)
	k := Key{User: 42, Time: 7, K: 10}
	c.Put(3, k, []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, ok := c.Get(3, k)
		if !ok || len(v) != 10 {
			b.Fatal("unexpected miss")
		}
	}
}

func BenchmarkCacheMiss(b *testing.B) {
	c := New[[]int](1 << 10)
	k := Key{User: 42, Time: 7, K: 10}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get(3, k); ok {
			b.Fatal("unexpected hit")
		}
	}
}

func BenchmarkCachePut(b *testing.B) {
	c := New[[]int](1 << 10)
	val := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Put(1, Key{User: uint64(i & 4095)}, val)
	}
}

func BenchmarkHotObserve(b *testing.B) {
	tr := NewHotTracker(1 << 14)
	h := HashString("user-00042")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Observe(h)
	}
}
