package rescache

import (
	"sort"
	"sync/atomic"
)

// HotTracker is a depth-2 count-min sketch over user identities: the
// serve path folds one Observe per request (two atomic increments, no
// allocation, no locks), and publish time asks for the N hottest users
// to precompute. Counts are upper bounds — hash collisions only ever
// inflate — which is the right bias for a precompute heuristic: a
// falsely-hot user costs one wasted warm entry, a falsely-cold hot
// user merely misses once.
type HotTracker struct {
	row0 []atomic.Uint32
	row1 []atomic.Uint32
	mask uint64
}

// minTrackerWidth keeps degenerate configurations honest; real servers
// want thousands of counters (a few KB).
const minTrackerWidth = 64

// NewHotTracker builds a sketch with `width` counters per row, rounded
// up to a power of two.
func NewHotTracker(width int) *HotTracker {
	w := minTrackerWidth
	for w < width {
		w <<= 1
	}
	return &HotTracker{
		row0: make([]atomic.Uint32, w),
		row1: make([]atomic.Uint32, w),
		mask: uint64(w - 1),
	}
}

// Observe records one request for the user identified by hash h
// (HashString of the user ID). Safe for concurrent use from the serve
// path.
//
//tcam:hotpath
func (t *HotTracker) Observe(h uint64) {
	t.row0[h&t.mask].Add(1)
	t.row1[Mix64(h)&t.mask].Add(1)
}

// Count returns the sketch's estimate (an upper bound) of how many
// times h was observed since the last decay.
//
//tcam:hotpath
func (t *HotTracker) Count(h uint64) uint32 {
	a := t.row0[h&t.mask].Load()
	b := t.row1[Mix64(h)&t.mask].Load()
	if b < a {
		return b
	}
	return a
}

// Top returns the indices of the hottest users among names, hottest
// first, at most n, skipping users the sketch never saw. Ties break by
// index ascending so the precompute set is deterministic for a given
// traffic history. This is a publish-time scan over the user
// vocabulary, not a serve-path operation.
func (t *HotTracker) Top(names []string, n int) []int {
	if n <= 0 {
		return nil
	}
	type hot struct {
		u int
		c uint32
	}
	ranked := make([]hot, 0, len(names))
	for u, name := range names {
		if c := t.Count(HashString(name)); c > 0 {
			ranked = append(ranked, hot{u: u, c: c})
		}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].c != ranked[j].c {
			return ranked[i].c > ranked[j].c
		}
		return ranked[i].u < ranked[j].u
	})
	if n > len(ranked) {
		n = len(ranked)
	}
	out := make([]int, n)
	for i := range out {
		out[i] = ranked[i].u
	}
	return out
}

// Decay halves every counter. Called once per publish, it turns the
// sketch into an exponentially-weighted window: recent traffic
// dominates, a user hot last week but silent since fades in a few
// publishes, and counters cannot saturate.
func (t *HotTracker) Decay() {
	for i := range t.row0 {
		halve(&t.row0[i])
		halve(&t.row1[i])
	}
}

// halve atomically divides one counter by two, tolerating concurrent
// Observe increments (the loser of a race retries).
func halve(c *atomic.Uint32) {
	for {
		v := c.Load()
		if v == 0 {
			return
		}
		if c.CompareAndSwap(v, v/2) {
			return
		}
	}
}
