package server

// Tests for the streaming ingest updater (DESIGN.md §15): snapshot
// generations published as the log grows, /healthz ingest reporting,
// fault-injected cycle failures, and kill-and-resume republishing a
// bit-identical bundle.

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"testing"

	"tcam/internal/faultinject"
	"tcam/internal/index"
	"tcam/internal/ingest"
)

// updaterFixture is one server + updater pair over a shared log dir.
func updaterFixture(tb testing.TB, dir string) (*Server, *Updater) {
	tb.Helper()
	boot := makeBundle(tb, 6, 12)
	srv, err := New(boot)
	if err != nil {
		tb.Fatal(err)
	}
	lg, err := ingest.Open(dir)
	if err != nil {
		tb.Fatal(err)
	}
	cfg := UpdaterConfig{Advance: index.DefaultAdvanceConfig()}
	cfg.Advance.FoldIters = 3
	up, err := NewUpdater(srv, lg, boot, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return srv, up
}

func appendEvents(tb testing.TB, dir string, recs ...ingest.Record) {
	tb.Helper()
	lg, err := ingest.Open(dir)
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := lg.Append(recs...); err != nil {
		tb.Fatal(err)
	}
}

func healthOf(t *testing.T, srv *Server) healthResponse {
	t.Helper()
	w := serveHTTP(srv, http.MethodGet, "/healthz", "")
	if w.Code != http.StatusOK {
		t.Fatalf("/healthz = %d", w.Code)
	}
	var h healthResponse
	if err := json.Unmarshal(w.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	return h
}

// snapshotBytes serializes the serving bundle, the bit-exact identity
// tests compare.
func snapshotBytes(t *testing.T, srv *Server) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := srv.snapshot().bundle.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestUpdaterPublishesGrowingGenerations drives the updater through
// three published generations while the user base, the catalog and the
// time grid all grow, checking the serving surface after each.
func TestUpdaterPublishesGrowingGenerations(t *testing.T) {
	dir := t.TempDir()
	srv, up := updaterFixture(t, dir)

	// Empty log: nothing to publish.
	if published, err := up.Step(); err != nil || published {
		t.Fatalf("Step on empty log = (%v, %v), want (false, nil)", published, err)
	}
	if h := healthOf(t, srv); h.Version != 1 || h.Ingest == nil || h.Ingest.Lag != 0 {
		t.Fatalf("boot health = %+v", h)
	}

	// Generation 2: a brand-new user rates existing items.
	appendEvents(t, dir,
		ingest.Record{User: "user-late", Item: "item-3", Time: 105, Score: 2},
		ingest.Record{User: "user-late", Item: "item-7", Time: 115, Score: 1},
	)
	if published, err := up.Step(); err != nil || !published {
		t.Fatalf("Step = (%v, %v), want (true, nil)", published, err)
	}
	h := healthOf(t, srv)
	if h.Version != 2 || h.Users != 7 || h.Items != 12 || h.Intervals != 3 {
		t.Fatalf("generation 2 health = %+v", h)
	}
	if h.Ingest == nil || h.Ingest.LogOffset != 2 || h.Ingest.Lag != 0 {
		t.Fatalf("generation 2 ingest = %+v", h.Ingest)
	}
	w := serveHTTP(srv, http.MethodGet, "/recommend?user=user-late&time=105&k=3", "")
	if w.Code != http.StatusOK {
		t.Fatalf("/recommend for folded-in user = %d: %s", w.Code, w.Body.String())
	}

	// Generation 3: a new item and a new interval (time 151 is past the
	// boot grid's last edge, opening intervals 3..5).
	appendEvents(t, dir,
		ingest.Record{User: "user-2", Item: "item-new", Time: 151, Score: 3},
		ingest.Record{User: "user-late", Item: "item-3", Time: 153, Score: 1},
	)
	if published, err := up.Step(); err != nil || !published {
		t.Fatalf("Step = (%v, %v), want (true, nil)", published, err)
	}
	h = healthOf(t, srv)
	if h.Version != 3 || h.Users != 7 || h.Items != 13 || h.Intervals != 6 {
		t.Fatalf("generation 3 health = %+v", h)
	}

	// Generation 4: more events for an already-folded user refine their
	// interests (re-derived from the frozen boot + full stream).
	appendEvents(t, dir, ingest.Record{User: "user-late", Item: "item-1", Time: 125, Score: 4})
	if published, err := up.Step(); err != nil || !published {
		t.Fatal("fourth generation did not publish")
	}
	if h = healthOf(t, srv); h.Version != 4 || h.Ingest.LogOffset != 5 {
		t.Fatalf("generation 4 health = %+v ingest=%+v", h, h.Ingest)
	}
	// Queries at a streamed interval work end to end.
	w = serveHTTP(srv, http.MethodGet, "/recommend?user=user-2&time=151&k=3", "")
	if w.Code != http.StatusOK {
		t.Fatalf("/recommend at streamed interval = %d: %s", w.Code, w.Body.String())
	}
}

// TestUpdaterStepFailureKeepsServing: a fault-injected cycle publishes
// nothing, leaves the serving snapshot intact, and the next cycle
// consumes the same records successfully.
func TestUpdaterStepFailureKeepsServing(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	srv, up := updaterFixture(t, dir)
	appendEvents(t, dir, ingest.Record{User: "user-late", Item: "item-2", Time: 101, Score: 1})

	injected := errors.New("injected fold failure")
	faultinject.SetErr("updater.fold", faultinject.ErrorsN(1, injected))
	if _, err := up.Step(); !errors.Is(err, injected) {
		t.Fatalf("Step error = %v, want injected", err)
	}
	if h := healthOf(t, srv); h.Version != 1 || h.Users != 6 {
		t.Fatalf("failed cycle mutated serving state: %+v", h)
	}
	if published, err := up.Step(); err != nil || !published {
		t.Fatalf("retry Step = (%v, %v), want (true, nil)", published, err)
	}
	if h := healthOf(t, srv); h.Version != 2 || h.Users != 7 {
		t.Fatalf("retry did not publish: %+v", h)
	}
	// The same applies to a failure at the publish site.
	appendEvents(t, dir, ingest.Record{User: "user-late", Item: "item-2", Time: 111, Score: 1})
	faultinject.SetErr("updater.publish", faultinject.ErrorsN(1, injected))
	if _, err := up.Step(); !errors.Is(err, injected) {
		t.Fatalf("Step error = %v, want injected", err)
	}
	if published, err := up.Step(); err != nil || !published {
		t.Fatalf("publish retry Step = (%v, %v), want (true, nil)", published, err)
	}
}

// TestUpdaterKillAndResume is the crash-recovery acceptance test: a
// process killed mid-cycle loses no events, because a fresh process
// over the same log directory replays from offset zero and re-derives
// — bit for bit — the same bundle the dead one would have published
// (only the in-process version counter differs).
func TestUpdaterKillAndResume(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	srvA, upA := updaterFixture(t, dir)

	appendEvents(t, dir,
		ingest.Record{User: "user-late", Item: "item-3", Time: 105, Score: 2},
		ingest.Record{User: "user-later", Item: "item-new", Time: 141, Score: 1},
	)
	if _, err := upA.Step(); err != nil {
		t.Fatal(err)
	}

	// More events arrive; the process dies mid-fold (fault injected),
	// having published nothing for them.
	appendEvents(t, dir, ingest.Record{User: "user-late", Item: "item-new", Time: 142, Score: 5})
	injected := errors.New("injected crash")
	faultinject.SetErr("updater.fold", faultinject.ErrorsN(1, injected))
	if _, err := upA.Step(); !errors.Is(err, injected) {
		t.Fatalf("Step error = %v, want injected crash", err)
	}
	faultinject.Reset()

	// "Restart": a fresh server + updater over the same directory.
	srvB, upB := updaterFixture(t, dir)
	if published, err := upB.Step(); err != nil || !published {
		t.Fatalf("resume Step = (%v, %v), want (true, nil)", published, err)
	}

	// The survivor retries and publishes; both processes must now serve
	// byte-identical bundles covering every appended event.
	if published, err := upA.Step(); err != nil || !published {
		t.Fatalf("survivor Step = (%v, %v), want (true, nil)", published, err)
	}
	if upA.Offset() != 3 || upB.Offset() != 3 {
		t.Fatalf("offsets after resume: survivor %d, restarted %d, want 3", upA.Offset(), upB.Offset())
	}
	a, b := snapshotBytes(t, srvA), snapshotBytes(t, srvB)
	if !bytes.Equal(a, b) {
		t.Fatal("restarted updater published a different bundle than the survivor")
	}
}

// TestUpdaterDeterministicAcrossBatching: whether events arrive in one
// batch or dribble in across many cycles, the final published bundle
// is identical — the pure-function-of-log-prefix invariant.
func TestUpdaterDeterministicAcrossBatching(t *testing.T) {
	recs := []ingest.Record{
		{User: "user-late", Item: "item-3", Time: 105, Score: 2},
		{User: "user-later", Item: "item-new", Time: 141, Score: 1},
		{User: "user-late", Item: "item-1", Time: 118, Score: 3},
		{User: "user-0", Item: "item-new", Time: 144, Score: 2},
	}
	dirOne, dirMany := t.TempDir(), t.TempDir()

	srvOne, upOne := updaterFixture(t, dirOne)
	appendEvents(t, dirOne, recs...)
	if _, err := upOne.Step(); err != nil {
		t.Fatal(err)
	}

	srvMany, upMany := updaterFixture(t, dirMany)
	for _, r := range recs {
		appendEvents(t, dirMany, r)
		if _, err := upMany.Step(); err != nil {
			t.Fatal(err)
		}
	}

	if !bytes.Equal(snapshotBytes(t, srvOne), snapshotBytes(t, srvMany)) {
		t.Fatal("published bundle depends on event batching")
	}
}

// TestUpdaterValidation: NewUpdater rejects a bundle that fails
// validation rather than tailing a log it can never advance from.
func TestUpdaterValidation(t *testing.T) {
	boot := makeBundle(t, 4, 8)
	srv, err := New(boot)
	if err != nil {
		t.Fatal(err)
	}
	lg, err := ingest.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	broken := *boot
	broken.Users = boot.Users[:2]
	if _, err := NewUpdater(srv, lg, &broken, UpdaterConfig{}); err == nil {
		t.Fatal("NewUpdater accepted an invalid boot bundle")
	}
	up, err := NewUpdater(srv, lg, boot, UpdaterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if up.cfg.Interval != DefaultUpdaterInterval || up.cfg.Advance.FoldIters == 0 {
		t.Fatalf("zero config not defaulted: %+v", up.cfg)
	}
}
