package server

// Result-cache layer (DESIGN.md §16): an epoch-versioned rescache in
// front of the TA search, plus hot-user precomputation at publish
// time. The cache key is the query identity (dense user index,
// interval, k, deduplicated exclude-set hash); the epoch is the
// snapshot version, so Reload's atomic pointer swap is also the whole
// cache invalidation — stale entries die by epoch compare, never by
// scanning. Cached values are deep copies of the searcher's results,
// so a hit renders the byte-identical response the TA would have
// produced without touching the index.

import (
	"time"

	"tcam/internal/faultinject"
	"tcam/internal/rescache"
	"tcam/internal/topk"
)

// PrecomputeK is the k precomputed for hot users at publish time —
// the serving default, so default-shaped traffic hits immediately on
// a fresh epoch.
const PrecomputeK = 10

// hotTrackerWidth is the per-row counter count of the hot-user
// sketch: 16K counters ≈ 128KB for both rows, comfortably above any
// realistic hot set.
const hotTrackerWidth = 1 << 14

// cachedTopK is one cached answer: the ranked items and the stats the
// response surfaces, frozen at insert time.
type cachedTopK struct {
	results       []topk.Result
	itemsExamined int
}

// newCachedTopK deep-copies a searcher-owned result slice into an
// immutable cache value (the searcher recycles its slice on Release).
func newCachedTopK(results []topk.Result, st topk.Stats) cachedTopK {
	cp := make([]topk.Result, len(results))
	copy(cp, results)
	return cachedTopK{results: cp, itemsExamined: st.ItemsExamined}
}

// WithCache enables the epoch-versioned result cache with capacity
// for roughly `entries` answers (rounded up; see rescache.New). A
// non-positive value leaves caching off, the default.
func WithCache(entries int) Option {
	return func(s *Server) {
		if entries > 0 {
			s.cache = rescache.New[cachedTopK](entries)
			s.hot = rescache.NewHotTracker(hotTrackerWidth)
		}
	}
}

// WithHotPrecompute asks each publish to precompute top-PrecomputeK
// for the n hottest users (serve-path traffic ranked by the
// frequency sketch, seeded from the ingest log when an updater is
// attached) before the snapshot goes live, so hot users never miss
// even on a fresh epoch. Requires WithCache; without it the option is
// inert.
func WithHotPrecompute(n int) Option {
	return func(s *Server) { s.precomputeHot = n }
}

// topkKey builds the cache identity of one /recommend-shaped query.
// u is the dense user index (exact, no hash collisions); exh must
// have been fed the deduplicated resolved exclude item indices.
//
//tcam:hotpath
func topkKey(u int, t int, k int, exh *rescache.SetHash) rescache.Key {
	return rescache.Key{
		User:        uint64(u),
		Time:        int64(t),
		K:           int32(k),
		NumExclude:  exh.Len(),
		ExcludeHash: exh.Sum(),
	}
}

// precompute warms a not-yet-published snapshot's epoch with the top
// answers of the hottest users. Called between newSnapshot and the
// atomic store, so by the time any request can reference the new
// epoch its hot entries already exist. A faultinject abort leaves a
// partial warm set — harmless, the remainder simply miss into the TA
// — and never blocks the publish itself.
func (s *Server) precompute(sn *snapshot) {
	if s.cache == nil || s.precomputeHot <= 0 {
		return
	}
	start := time.Now()
	hot := s.hot.Top(sn.bundle.Users, s.precomputeHot)
	t := sn.bundle.Grid.Num - 1 // the live interval: where read traffic lands
	done := 0
	if len(hot) > 0 {
		var exh rescache.SetHash
		sr := sn.idx.AcquireSearcher()
		for _, u := range hot {
			if err := faultinject.FireErr("server.precompute"); err != nil {
				s.logf("precompute aborted after %d of %d hot users: %v", done, len(hot), err)
				break
			}
			results, st := sr.Query(sn.bundle.Scorer(), u, t, PrecomputeK, nil)
			s.cache.Put(sn.version, topkKey(u, t, PrecomputeK, &exh), newCachedTopK(results, st))
			done++
		}
		sr.Release()
	}
	s.hotPrecomputed.Store(uint64(done))
	s.hot.Decay() // publish cadence turns the sketch into a sliding window
	if done > 0 {
		s.logf("precomputed top-%d for %d hot users in %s (epoch %d)",
			PrecomputeK, done, time.Since(start), sn.version)
	}
}

// cacheHealthBody is the "cache" sub-object of the /healthz payload.
type cacheHealthBody struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Stale   uint64 `json:"stale"`
	Entries int64  `json:"entries"`
	// Epoch is the live snapshot version — the only epoch a lookup can
	// hit; everything older is logically invalidated.
	Epoch uint64 `json:"epoch"`
	// HotPrecomputed counts the hot users warmed by the latest publish.
	HotPrecomputed uint64 `json:"hot_precomputed"`
}

// cacheHealth renders the cache view, or nil when caching is off.
func (s *Server) cacheHealth(sn *snapshot) *cacheHealthBody {
	if s.cache == nil {
		return nil
	}
	ctr := s.cache.Counters()
	return &cacheHealthBody{
		Hits:           ctr.Hits,
		Misses:         ctr.Misses,
		Stale:          ctr.Stale,
		Entries:        ctr.Entries,
		Epoch:          sn.version,
		HotPrecomputed: s.hotPrecomputed.Load(),
	}
}

// batchCacheState carries one batch entry's cache bookkeeping between
// the parse pass (lookup) and the render pass (insert on miss).
type batchCacheState struct {
	key rescache.Key
	val cachedTopK
	hit bool
}
