package server

// Cache-path benchmarks (DESIGN.md §16): a repeated single query on the
// hit path, Zipf-driven end-to-end runs in three phases — uncached
// baseline ("cold": every query pays the Threshold Algorithm), warmed
// steady state, and a multi-epoch run that republishes mid-stream with
// hot-user precompute — plus the publish-time precompute cost itself.
// The Zipf benchmarks report their observed cache hit rate via
// b.ReportMetric as "hit_rate" (and the epoch count as "epochs"), which
// scripts/bench_query.sh folds into BENCH_query.json.

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"tcam/internal/datagen"
	"tcam/internal/rescache"
)

// zipfRequests synthesizes a skewed query stream over a users×items
// catalog shaped like makeBundle's, pre-rendered into HTTP requests so
// the benchmark loop measures serving, not workload formatting.
func zipfRequests(b *testing.B, n, users, items int) []*http.Request {
	b.Helper()
	queries, err := datagen.GenerateQueries(datagen.QueryLoadConfig{
		Queries:      n,
		Users:        users,
		Items:        items,
		UserExponent: 1.2,
		TimeMin:      100, // makeBundle's grid: Origin 100, Length 10, Num 3
		TimeMax:      129,
		K:            10,
		MaxExclude:   2,
		Seed:         1,
	})
	if err != nil {
		b.Fatal(err)
	}
	reqs := make([]*http.Request, n)
	for i, q := range queries {
		target := fmt.Sprintf("/recommend?user=user-%d&time=%d&k=%d", q.User, q.Time, q.K)
		if len(q.Exclude) > 0 {
			ids := make([]string, len(q.Exclude))
			for j, v := range q.Exclude {
				ids[j] = fmt.Sprintf("item-%d", v)
			}
			target += "&exclude=" + strings.Join(ids, ",")
		}
		reqs[i] = httptest.NewRequest(http.MethodGet, target, nil)
	}
	return reqs
}

const (
	zipfBenchUsers   = 96
	zipfBenchItems   = 64
	zipfBenchQueries = 4096
)

// runZipf drives the request stream through the server b.N times
// (wrapping), reporting the hit rate observed inside the timed window.
func runZipf(b *testing.B, srv *Server, reqs []*http.Request) {
	b.Helper()
	var before rescache.Counters
	if srv.cache != nil {
		before = srv.cache.Counters()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, reqs[i%len(reqs)])
		if w.Code != http.StatusOK {
			b.Fatalf("status %d: %s", w.Code, w.Body.String())
		}
	}
	b.StopTimer()
	if srv.cache != nil {
		after := srv.cache.Counters()
		if total := (after.Hits - before.Hits) + (after.Misses - before.Misses); total > 0 {
			b.ReportMetric(float64(after.Hits-before.Hits)/float64(total), "hit_rate")
		}
	}
}

// BenchmarkServerRecommendCacheHit is the single-query hit path: the
// same request served from the epoch-versioned cache every iteration.
func BenchmarkServerRecommendCacheHit(b *testing.B) {
	bundle := makeBundle(b, 6, 12)
	srv, err := New(bundle, WithCache(1024))
	if err != nil {
		b.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodGet, "/recommend?user=user-2&time=115&k=4", nil)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req) // prime the entry
	if w.Code != http.StatusOK {
		b.Fatalf("status %d", w.Code)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("status %d", w.Code)
		}
	}
	b.StopTimer()
	ctr := srv.cache.Counters()
	if ctr.Hits == 0 || ctr.Misses > 1 {
		b.Fatalf("hit path not exercised: %+v", ctr)
	}
}

// BenchmarkServerZipfUncached is the cold baseline: the same Zipf
// stream with no cache, every query paying the full TA scan.
func BenchmarkServerZipfUncached(b *testing.B) {
	srv, err := New(makeBundle(b, zipfBenchUsers, zipfBenchItems))
	if err != nil {
		b.Fatal(err)
	}
	runZipf(b, srv, zipfRequests(b, zipfBenchQueries, zipfBenchUsers, zipfBenchItems))
}

// BenchmarkServerZipfCacheWarm is the steady state: cache enabled and
// pre-warmed by one full pass over the stream, so the timed window
// sees the long-run hit rate of the skewed workload.
func BenchmarkServerZipfCacheWarm(b *testing.B) {
	srv, err := New(makeBundle(b, zipfBenchUsers, zipfBenchItems), WithCache(1<<14))
	if err != nil {
		b.Fatal(err)
	}
	reqs := zipfRequests(b, zipfBenchQueries, zipfBenchUsers, zipfBenchItems)
	for _, req := range reqs {
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("warmup status %d", w.Code)
		}
	}
	runZipf(b, srv, reqs)
}

// BenchmarkServerZipfCacheEpochs spans snapshot epochs: the stream runs
// warm, but every 1024 queries the server republishes (precomputing the
// 16 hottest users), so the measured window includes epoch flips, the
// refill misses they cause, and the precompute that softens them.
func BenchmarkServerZipfCacheEpochs(b *testing.B) {
	bundle := makeBundle(b, zipfBenchUsers, zipfBenchItems)
	srv, err := New(bundle, WithCache(1<<14), WithHotPrecompute(16))
	if err != nil {
		b.Fatal(err)
	}
	reqs := zipfRequests(b, zipfBenchQueries, zipfBenchUsers, zipfBenchItems)
	for _, req := range reqs[:1024] {
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("warmup status %d", w.Code)
		}
	}
	const reloadEvery = 1024
	epochs := 1
	before := srv.cache.Counters()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 && i%reloadEvery == 0 {
			if _, err := srv.Reload(bundle); err != nil {
				b.Fatal(err)
			}
			epochs++
		}
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, reqs[i%len(reqs)])
		if w.Code != http.StatusOK {
			b.Fatalf("status %d", w.Code)
		}
	}
	b.StopTimer()
	after := srv.cache.Counters()
	if total := (after.Hits - before.Hits) + (after.Misses - before.Misses); total > 0 {
		b.ReportMetric(float64(after.Hits-before.Hits)/float64(total), "hit_rate")
	}
	b.ReportMetric(float64(epochs), "epochs")
}

// BenchmarkReloadPrecompute is the publish-time cost of warming the 16
// hottest users: one Reload per iteration on a server whose hot
// tracker has seen the Zipf stream.
func BenchmarkReloadPrecompute(b *testing.B) {
	bundle := makeBundle(b, zipfBenchUsers, zipfBenchItems)
	srv, err := New(bundle, WithCache(1<<14), WithHotPrecompute(16))
	if err != nil {
		b.Fatal(err)
	}
	// Pre-hash the stream's users once; each iteration re-seeds the hot
	// tracker off the clock, because every publish decays the sketch and
	// back-to-back reloads with no traffic would age it to empty.
	queries, err := datagen.GenerateQueries(datagen.QueryLoadConfig{
		Queries: 2048, Users: zipfBenchUsers, UserExponent: 1.2, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	hashes := make([]uint64, len(queries))
	for i, q := range queries {
		hashes[i] = rescache.HashString(fmt.Sprintf("user-%d", q.User))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for _, h := range hashes {
			srv.hot.Observe(h)
		}
		b.StartTimer()
		if _, err := srv.Reload(bundle); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if srv.hotPrecomputed.Load() != 16 {
		b.Fatalf("last publish precomputed %d users, want 16", srv.hotPrecomputed.Load())
	}
}
