package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// shardServer builds a testServer bundle served over the [lo, hi) item
// window.
func shardServer(t *testing.T, lo, hi int) (*Server, func(path string, body interface{}) (*http.Response, []byte)) {
	t.Helper()
	_, bundle := testServer(t)
	srv, err := New(bundle, WithItemRange(lo, hi))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	post := func(path string, body interface{}) (*http.Response, []byte) {
		t.Helper()
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf [1 << 16]byte
		n, _ := resp.Body.Read(buf[:])
		return resp, buf[:n]
	}
	return srv, post
}

func TestWithItemRangeRejectsBadWindows(t *testing.T) {
	_, bundle := testServer(t)
	for _, w := range [][2]int{{-1, 5}, {4, 4}, {8, 4}, {0, 13}} {
		if _, err := New(bundle, WithItemRange(w[0], w[1])); err == nil {
			t.Errorf("New accepted item window %v over a 12-item catalog", w)
		}
	}
	if _, err := New(bundle, WithItemRange(0, 12)); err != nil {
		t.Errorf("New rejected the full-catalog window: %v", err)
	}
}

// A shard's /shard/query must return exactly the monolithic results
// restricted to its window: same global item indices, bit-identical
// scores (they survive the JSON round trip), and the window + version
// metadata a coordinator merges by.
func TestShardQueryMatchesMonolithicWindow(t *testing.T) {
	mono, bundle := testServer(t)
	sn := mono.snapshot()
	_, post := shardServer(t, 4, 12)

	req := shardQueryRequest{User: "user-3", Time: 115, K: 6}
	resp, body := post("/shard/query", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got shardQueryResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.ItemLo != 4 || got.ItemHi != 12 || got.Version != 1 || got.Interval != 1 {
		t.Fatalf("metadata = %+v, want window [4,12) version 1 interval 1", got)
	}

	// Reference: the monolithic index with items outside [4,12) excluded.
	u := sn.userIdx["user-3"]
	want, _ := sn.idx.Query(bundle.Scorer(), u, got.Interval, 6, func(v int) bool { return v < 4 })
	if len(got.Results) != len(want) {
		t.Fatalf("got %d results, want %d", len(got.Results), len(want))
	}
	for i, res := range got.Results {
		if res.Item != want[i].Item || res.Score != want[i].Score {
			t.Errorf("result %d = {%d %q %v}, want {%d %v}",
				i, res.Item, res.Name, res.Score, want[i].Item, want[i].Score)
		}
		if res.Name != bundle.Items[want[i].Item] {
			t.Errorf("result %d name = %q, want %q", i, res.Name, bundle.Items[want[i].Item])
		}
	}
}

func TestShardQueryHonorsExcludes(t *testing.T) {
	_, post := shardServer(t, 0, 6)
	req := shardQueryRequest{User: "user-1", Time: 105, K: 10}
	_, body := post("/shard/query", req)
	var full shardQueryResponse
	if err := json.Unmarshal(body, &full); err != nil {
		t.Fatal(err)
	}
	if len(full.Results) == 0 {
		t.Fatal("window [0,6) returned no results")
	}
	banned := full.Results[0].Name
	req.Exclude = []string{banned}
	_, body = post("/shard/query", req)
	var filtered shardQueryResponse
	if err := json.Unmarshal(body, &filtered); err != nil {
		t.Fatal(err)
	}
	for _, res := range filtered.Results {
		if res.Name == banned {
			t.Fatalf("excluded item %q still in results", banned)
		}
	}
}

func TestShardQueryErrors(t *testing.T) {
	_, post := shardServer(t, 0, 6)
	if resp, _ := post("/shard/query", shardQueryRequest{User: "nobody", Time: 100}); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown user: status %d, want 404", resp.StatusCode)
	}
	if resp, _ := post("/shard/query", shardQueryRequest{User: "user-0", Time: 100, K: 5000}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized k: status %d, want 400", resp.StatusCode)
	}
}

func TestShardHealthReportsWindowAndReloadKeepsIt(t *testing.T) {
	srv, post := shardServer(t, 4, 12)
	resp, body := post("/shard/query", shardQueryRequest{User: "user-0", Time: 100})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("shard query: status %d: %s", resp.StatusCode, body)
	}

	_, hbody := get(t, srv, "/healthz")
	var h healthResponse
	if err := json.Unmarshal(hbody, &h); err != nil {
		t.Fatal(err)
	}
	if h.ItemRange == nil || h.ItemRange.Lo != 4 || h.ItemRange.Hi != 12 {
		t.Fatalf("health item_range = %+v, want [4,12)", h.ItemRange)
	}

	// A hot reload must rebuild the same window.
	_, bundle := testServer(t)
	if _, err := srv.Reload(bundle); err != nil {
		t.Fatal(err)
	}
	if lo, hi := srv.snapshot().idx.ItemRange(); lo != 4 || hi != 12 {
		t.Fatalf("post-reload index window = [%d,%d), want [4,12)", lo, hi)
	}

	// Monolithic mode reports no window at all.
	mono, _ := testServer(t)
	_, mbody := get(t, mono, "/healthz")
	var mh healthResponse
	if err := json.Unmarshal(mbody, &mh); err != nil {
		t.Fatal(err)
	}
	if mh.ItemRange != nil {
		t.Fatalf("monolithic health item_range = %+v, want absent", mh.ItemRange)
	}
}
