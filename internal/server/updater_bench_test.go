package server

// Streaming-loop benchmarks (ISSUE 9): fold-in latency (one updater
// cycle over a freshly appended event, including the Advance re-derive)
// and snapshot publish latency (the atomic swap alone), snapshotted
// into BENCH_ingest.json by scripts/bench_ingest.sh.

import (
	"fmt"
	"testing"

	"tcam/internal/ingest"
)

// BenchmarkUpdaterStep measures one full ingest cycle: refresh the log,
// replay one new event, re-derive the grown bundle from boot, and
// publish. This is the serving-lag floor per event at batch size 1.
func BenchmarkUpdaterStep(b *testing.B) {
	dir := b.TempDir()
	_, up := updaterFixture(b, dir)
	producer, err := ingest.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := ingest.Record{
			User:  fmt.Sprintf("late-%03d", i%256),
			Item:  fmt.Sprintf("item-%d", i%12),
			Time:  100 + int64(i%30),
			Score: 1,
		}
		if _, err := producer.Append(rec); err != nil {
			b.Fatal(err)
		}
		if published, err := up.Step(); err != nil || !published {
			b.Fatalf("Step = (%v, %v)", published, err)
		}
	}
}

// BenchmarkSnapshotPublish isolates the publish end: validating and
// atomically swapping an already-built bundle into the serving path.
func BenchmarkSnapshotPublish(b *testing.B) {
	boot := makeBundle(b, 6, 12)
	srv, err := New(boot)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.Reload(boot); err != nil {
			b.Fatal(err)
		}
	}
}
