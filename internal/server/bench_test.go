package server

// Serving-layer benchmarks (ISSUE 1): end-to-end handler latency and
// allocation pressure via httptest, for the single and batch endpoints.

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"
)

func BenchmarkServerRecommend(b *testing.B) {
	srv, _ := testServer(b)
	req := httptest.NewRequest(http.MethodGet, "/recommend?user=user-2&time=115&k=4", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("status %d", w.Code)
		}
	}
}

func BenchmarkServerRecommendExclude(b *testing.B) {
	srv, _ := testServer(b)
	req := httptest.NewRequest(http.MethodGet, "/recommend?user=user-2&time=115&k=4&exclude=item-1,item-5,item-9", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("status %d", w.Code)
		}
	}
}

func BenchmarkServerRecommendBatch(b *testing.B) {
	srv, _ := testServer(b)
	var body bytes.Buffer
	body.WriteString(`{"queries":[`)
	for i := 0; i < 32; i++ {
		if i > 0 {
			body.WriteByte(',')
		}
		user := []byte{'0' + byte(i%6)}
		body.WriteString(`{"user":"user-`)
		body.Write(user)
		body.WriteString(`","time":115,"k":4}`)
	}
	body.WriteString(`]}`)
	raw := body.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/recommend/batch", bytes.NewReader(raw))
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("status %d", w.Code)
		}
	}
}
