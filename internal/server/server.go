// Package server exposes a trained TCAM bundle as an HTTP JSON API —
// the online-deployment surface of the paper's Section 4: temporal
// top-k queries answered by the Threshold Algorithm over the
// precomputed per-topic index.
//
// Endpoints:
//
//	GET  /healthz                  liveness + model metadata + bundle version
//	GET  /readyz                   readiness (503 while draining)
//	GET  /recommend?user=&time=&k= temporal top-k for a user at a time
//	POST /recommend/batch          many top-k queries in one request
//	POST /admin/reload             hot-swap the bundle from the configured source
//	GET  /topics/{z}?n=            top items of an expanded topic
//	GET  /users/{id}/lambda        the user's learned mixing weight
//
// The serving state (bundle, TA index, vocabularies, pooled scratch)
// lives in an immutable snapshot behind an atomic pointer, so a hot
// reload swaps everything at once while in-flight requests keep the
// view they started with. Request handling is wrapped in panic
// recovery and bounded by per-endpoint in-flight limiters; see
// lifecycle.go and DESIGN.md §9.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"tcam/internal/faultinject"
	"tcam/internal/index"
	"tcam/internal/rescache"
	"tcam/internal/topk"
)

// maxBatchQueries bounds one /recommend/batch request.
const maxBatchQueries = 1024

// maxBatchBody bounds the /recommend/batch request body in bytes;
// maxBatchQueries limits the parsed count, this limits what the JSON
// decoder will even read.
const maxBatchBody = 8 << 20

// snapshot is one immutable generation of serving state. Handlers load
// it once per request; Reload publishes a fresh one atomically, so no
// request ever sees a half-swapped bundle/index/vocabulary mix.
type snapshot struct {
	bundle   *index.Bundle
	idx      *topk.Index
	userIdx  map[string]int
	itemIdx  map[string]int
	excludes sync.Pool // *excludeSet scratch for /recommend filtering
	version  uint64    // 1 for the boot bundle, +1 per reload
}

// newSnapshot builds one serving generation. A non-empty item window
// [lo, hi) builds the TA index over just that slice of the catalog —
// shard mode — while vocabularies stay global so queries speak global
// item names; lo == hi == 0 builds the full monolithic index.
func newSnapshot(b *index.Bundle, version uint64, lo, hi int) *snapshot {
	sn := &snapshot{
		bundle:  b,
		userIdx: make(map[string]int, len(b.Users)),
		itemIdx: make(map[string]int, len(b.Items)),
		version: version,
	}
	if lo == 0 && hi == 0 {
		sn.idx = b.BuildIndex()
	} else {
		sn.idx = topk.BuildIndexRange(b.Scorer(), lo, hi)
	}
	for u, name := range b.Users {
		sn.userIdx[name] = u
	}
	for v, name := range b.Items {
		sn.itemIdx[name] = v
	}
	return sn
}

// New builds a Server (and its TA index) from a bundle. Options
// configure the lifecycle layer: in-flight limits, the reload source,
// the logger.
func New(b *index.Bundle, opts ...Option) (*Server, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	s := &Server{mux: http.NewServeMux()}
	s.recLimit.max = DefaultMaxInflight
	s.batchLimit.max = DefaultMaxInflightBatch
	for _, opt := range opts {
		opt(s)
	}
	if err := s.validateWindow(b); err != nil {
		return nil, err
	}
	s.snap.Store(newSnapshot(b, 1, s.itemLo, s.itemHi))
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/readyz", s.handleReady)
	s.mux.HandleFunc("/recommend", s.handleRecommend)
	s.mux.HandleFunc("/recommend/batch", s.handleRecommendBatch)
	s.mux.HandleFunc("/shard/query", s.handleShardQuery)
	s.mux.HandleFunc("/admin/reload", s.handleAdminReload)
	s.mux.HandleFunc("/topics/", s.handleTopic)
	s.mux.HandleFunc("/users/", s.handleUser)
	return s, nil
}

// snapshot returns the current serving generation.
func (s *Server) snapshot() *snapshot { return s.snap.Load() }

// healthResponse is the /healthz payload. ItemRange is present only in
// shard mode, where it names the [lo, hi) window of the catalog this
// instance indexes.
type healthResponse struct {
	Status    string            `json:"status"`
	ModelKind string            `json:"model_kind"`
	Users     int               `json:"users"`
	Items     int               `json:"items"`
	Intervals int               `json:"intervals"`
	Topics    int               `json:"topics"`
	Version   uint64            `json:"version"`
	Draining  bool              `json:"draining,omitempty"`
	ItemRange *itemRangeBody    `json:"item_range,omitempty"`
	Ingest    *ingestHealthBody `json:"ingest,omitempty"`
	Cache     *cacheHealthBody  `json:"cache,omitempty"`
}

// itemRangeBody is a contiguous [Lo, Hi) catalog window in JSON form.
type itemRangeBody struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	sn := s.snapshot()
	resp := healthResponse{
		Status:    "ok",
		ModelKind: string(sn.bundle.Kind),
		Users:     len(sn.bundle.Users),
		Items:     len(sn.bundle.Items),
		Intervals: sn.bundle.Grid.Num,
		Topics:    sn.bundle.Scorer().NumTopics(),
		Version:   sn.version,
		Draining:  s.draining.Load(),
	}
	if s.itemLo != 0 || s.itemHi != 0 {
		resp.ItemRange = &itemRangeBody{Lo: s.itemLo, Hi: s.itemHi}
	}
	resp.Ingest = s.ingestHealth(time.Now())
	resp.Cache = s.cacheHealth(sn)
	writeJSON(w, http.StatusOK, resp)
}

// recommendation is one entry of the /recommend payload.
type recommendation struct {
	Item  string  `json:"item"`
	Score float64 `json:"score"`
}

// recommendResponse is the /recommend payload (and one entry of the
// /recommend/batch payload, where a per-query failure sets Error).
type recommendResponse struct {
	User            string           `json:"user"`
	Interval        int              `json:"interval"`
	Recommendations []recommendation `json:"recommendations"`
	ItemsExamined   int              `json:"items_examined"`
	Error           string           `json:"error,omitempty"`
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if !s.recLimit.tryAcquire() {
		shedLoad(w, "recommend capacity saturated")
		return
	}
	defer s.recLimit.release()
	faultinject.Fire("server.recommend")
	if r.Context().Err() != nil {
		httpError(w, http.StatusServiceUnavailable, "request cancelled")
		return
	}
	sn := s.snapshot()
	q := r.URL.Query()
	userID := q.Get("user")
	u, ok := sn.userIdx[userID]
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown user %q", userID))
		return
	}
	when, err := strconv.ParseInt(q.Get("time"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "time must be an integer timestamp in dataset ticks")
		return
	}
	k := 10
	if raw := q.Get("k"); raw != "" {
		k, err = strconv.Atoi(raw)
		if err != nil || k <= 0 || k > 1000 {
			httpError(w, http.StatusBadRequest, "k must be in [1,1000]")
			return
		}
	}
	var exclude topk.Exclude
	var exh rescache.SetHash
	if raw := q.Get("exclude"); raw != "" {
		ex := sn.acquireExclude()
		defer sn.excludes.Put(ex)
		for raw != "" {
			var id string
			id, raw, _ = strings.Cut(raw, ",")
			// Deduplicate while resolving so the set hash is canonical:
			// ?exclude=a,a,b and ?exclude=b,a share one cache entry.
			if v, ok := sn.itemIdx[id]; ok && !ex.has(v) {
				ex.add(v)
				exh.Add(uint64(v))
			}
		}
		exclude = ex.has
	}
	t := sn.bundle.Grid.IntervalOf(when)
	if s.hot != nil {
		s.hot.Observe(rescache.HashString(userID))
	}
	key := topkKey(u, t, k, &exh)
	if s.cache != nil {
		if v, ok := s.cache.Get(sn.version, key); ok {
			s.writeTopK(w, sn, userID, t, v.results, v.itemsExamined)
			return
		}
	}
	// Render the response before Release: the pooled searcher owns the
	// result slice, which saves the copy Index.Query would make.
	sr := sn.idx.AcquireSearcher()
	results, st := sr.Query(sn.bundle.Scorer(), u, t, k, exclude)
	if s.cache != nil {
		s.cache.Put(sn.version, key, newCachedTopK(results, st))
	}
	s.writeTopK(w, sn, userID, t, results, st.ItemsExamined)
	sr.Release()
}

// writeTopK renders one /recommend payload from a ranked result slice
// — the shared tail of the cached and computed paths, so a hit is
// byte-identical to the response the TA search would have written.
func (s *Server) writeTopK(w http.ResponseWriter, sn *snapshot, userID string, t int, results []topk.Result, itemsExamined int) {
	recs := recsPool.Get().(*[]recommendation)
	resp := recommendResponse{User: userID, Interval: t, ItemsExamined: itemsExamined}
	resp.Recommendations = (*recs)[:0]
	for _, res := range results {
		resp.Recommendations = append(resp.Recommendations, recommendation{
			Item:  sn.bundle.Items[res.Item],
			Score: res.Score,
		})
	}
	writeJSON(w, http.StatusOK, resp)
	*recs = resp.Recommendations[:0]
	recsPool.Put(recs)
}

// batchQuery is one entry of the /recommend/batch request body.
type batchQuery struct {
	User    string   `json:"user"`
	Time    int64    `json:"time"`
	K       int      `json:"k"`
	Exclude []string `json:"exclude,omitempty"`
}

// batchRequest is the /recommend/batch request body.
type batchRequest struct {
	Queries []batchQuery `json:"queries"`
}

// batchReqPool recycles decoded batch requests; encoding/json reuses
// the Queries backing array when its capacity suffices, so steady-state
// batches skip the per-entry slice growth.
var batchReqPool = sync.Pool{New: func() interface{} { return new(batchRequest) }}

// batchResponse is the /recommend/batch payload; Results aligns with
// the request's Queries by position. When the request's context is
// cancelled mid-batch, Truncated is true and Results holds only the
// longest fully-answered prefix.
type batchResponse struct {
	Results   []recommendResponse `json:"results"`
	Truncated bool                `json:"truncated,omitempty"`
}

// handleRecommendBatch answers many temporal top-k queries in one POST,
// fanning them across CPUs with Index.QueryBatchContext (pooled
// searcher scratch per worker, cooperative cancellation between
// queries). Invalid entries fail individually via their Error field;
// the batch itself only fails on malformed JSON or size. A cancelled
// request returns the completed prefix with "truncated": true, or 503
// when nothing completed.
func (s *Server) handleRecommendBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if !s.batchLimit.tryAcquire() {
		shedLoad(w, "batch capacity saturated")
		return
	}
	defer s.batchLimit.release()
	req := batchReqPool.Get().(*batchRequest)
	defer func() {
		// Drop per-entry pointers so pooled capacity doesn't pin strings.
		for i := range req.Queries {
			req.Queries[i] = batchQuery{}
		}
		req.Queries = req.Queries[:0]
		batchReqPool.Put(req)
	}()
	r.Body = http.MaxBytesReader(w, r.Body, maxBatchBody)
	if err := json.NewDecoder(r.Body).Decode(req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("batch body exceeds %d bytes", tooBig.Limit))
			return
		}
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad batch body: %v", err))
		return
	}
	if len(req.Queries) == 0 {
		httpError(w, http.StatusBadRequest, "batch needs at least one query")
		return
	}
	if len(req.Queries) > maxBatchQueries {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("batch limited to %d queries", maxBatchQueries))
		return
	}
	faultinject.Fire("server.batch")
	sn := s.snapshot()
	resp := batchResponse{Results: make([]recommendResponse, len(req.Queries))}
	queries := make([]topk.BatchQuery, len(req.Queries))
	var cstate []batchCacheState
	if s.cache != nil {
		cstate = make([]batchCacheState, len(req.Queries))
	}
	for i, q := range req.Queries {
		out := &resp.Results[i]
		out.User = q.User
		u, ok := sn.userIdx[q.User]
		if !ok {
			out.Error = fmt.Sprintf("unknown user %q", q.User)
			continue // zero-value BatchQuery: K=0 ranks nothing
		}
		k := q.K
		if k == 0 {
			k = 10
		}
		if k < 0 || k > 1000 {
			out.Error = "k must be in [1,1000]"
			continue
		}
		var exclude topk.Exclude
		var exh rescache.SetHash
		if len(q.Exclude) > 0 {
			banned := make(map[int]bool, len(q.Exclude))
			for _, id := range q.Exclude {
				if v, ok := sn.itemIdx[id]; ok && !banned[v] {
					banned[v] = true
					exh.Add(uint64(v))
				}
			}
			exclude = func(v int) bool { return banned[v] }
		}
		out.Interval = sn.bundle.Grid.IntervalOf(q.Time)
		if s.hot != nil {
			s.hot.Observe(rescache.HashString(q.User))
		}
		if cstate != nil {
			cstate[i].key = topkKey(u, out.Interval, k, &exh)
			if v, ok := s.cache.Get(sn.version, cstate[i].key); ok {
				cstate[i].val, cstate[i].hit = v, true
				continue // cached: the zero-value BatchQuery skips the TA
			}
		}
		queries[i] = topk.BatchQuery{U: u, T: out.Interval, K: k, Exclude: exclude}
	}
	batch := sn.idx.QueryBatchContext(r.Context(), sn.bundle.Scorer(), queries, 0)
	// One arena backs every query's Recommendations: a single sized
	// allocation (plus capped windows so a stray append can't alias a
	// neighbour) instead of one grown slice per query.
	total := 0
	for i, br := range batch {
		if cstate != nil && cstate[i].hit {
			total += len(cstate[i].val.results)
			continue
		}
		total += len(br.Results)
	}
	arena := make([]recommendation, 0, total)
	for i, br := range batch {
		out := &resp.Results[i]
		if out.Error != "" {
			continue
		}
		results, examined := br.Results, br.Stats.ItemsExamined
		if cstate != nil {
			if cstate[i].hit {
				results, examined = cstate[i].val.results, cstate[i].val.itemsExamined
			} else if br.Done {
				// Done guards against caching the empty answer of a
				// query the cancelled batch never ran.
				s.cache.Put(sn.version, cstate[i].key, newCachedTopK(br.Results, br.Stats))
			}
		}
		out.ItemsExamined = examined
		start := len(arena)
		for _, res := range results {
			arena = append(arena, recommendation{
				Item:  sn.bundle.Items[res.Item],
				Score: res.Score,
			})
		}
		out.Recommendations = arena[start:len(arena):len(arena)]
	}
	if r.Context().Err() != nil {
		// Cancelled mid-batch: keep the longest fully-answered prefix.
		done := 0
		for done < len(batch) && batch[done].Done {
			done++
		}
		if done == 0 {
			httpError(w, http.StatusServiceUnavailable, "request cancelled")
			return
		}
		resp.Results = resp.Results[:done]
		resp.Truncated = true
	}
	writeJSON(w, http.StatusOK, resp)
}

// topicResponse is the /topics/{z} payload.
type topicResponse struct {
	Topic    int              `json:"topic"`
	Kind     string           `json:"kind"`
	TopItems []recommendation `json:"top_items"`
}

func (s *Server) handleTopic(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	sn := s.snapshot()
	raw := strings.TrimPrefix(r.URL.Path, "/topics/")
	z, err := strconv.Atoi(raw)
	scorer := sn.bundle.Scorer()
	if err != nil || z < 0 || z >= scorer.NumTopics() {
		httpError(w, http.StatusNotFound, fmt.Sprintf("topic must be in [0,%d)", scorer.NumTopics()))
		return
	}
	n := 10
	if rawN := r.URL.Query().Get("n"); rawN != "" {
		n, err = strconv.Atoi(rawN)
		if err != nil || n <= 0 || n > 1000 {
			httpError(w, http.StatusBadRequest, "n must be in [1,1000]")
			return
		}
	}
	weights := scorer.TopicItems(z)
	top, _ := topk.BruteForce(weightModel{weights}, 0, 0, n, nil)
	resp := topicResponse{Topic: z, Kind: sn.topicKind(z)}
	for _, res := range top {
		resp.TopItems = append(resp.TopItems, recommendation{Item: sn.bundle.Items[res.Item], Score: res.Score})
	}
	writeJSON(w, http.StatusOK, resp)
}

// topicKind labels an expanded-topic index as user- or time-oriented.
func (sn *snapshot) topicKind(z int) string {
	switch sn.bundle.Kind {
	case index.KindTTCAM:
		if z < sn.bundle.TTCAM.K1() {
			return "user-oriented"
		}
		if z < sn.bundle.TTCAM.K1()+sn.bundle.TTCAM.K2() {
			return "time-oriented"
		}
		return "background"
	default:
		if z < sn.bundle.ITCAM.K1() {
			return "user-oriented"
		}
		return "interval-context"
	}
}

// lambdaResponse is the /users/{id}/lambda payload.
type lambdaResponse struct {
	User string `json:"user"`
	// Lambda is the personal-interest influence probability λu; the
	// temporal-context influence is 1−λu.
	Lambda float64 `json:"lambda"`
}

func (s *Server) handleUser(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	sn := s.snapshot()
	rest := strings.TrimPrefix(r.URL.Path, "/users/")
	parts := strings.Split(rest, "/")
	if len(parts) != 2 || parts[1] != "lambda" {
		httpError(w, http.StatusNotFound, "want /users/{id}/lambda")
		return
	}
	u, ok := sn.userIdx[parts[0]]
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown user %q", parts[0]))
		return
	}
	var lambda float64
	switch sn.bundle.Kind {
	case index.KindTTCAM:
		lambda = sn.bundle.TTCAM.Lambda(u)
	default:
		lambda = sn.bundle.ITCAM.Lambda(u)
	}
	writeJSON(w, http.StatusOK, lambdaResponse{User: parts[0], Lambda: lambda})
}

// excludeSet is a reusable catalog-sized exclusion filter. Membership is
// an epoch stamp, so recycling it for the next request is an O(1) epoch
// bump instead of an O(V) clear or a fresh per-request map.
type excludeSet struct {
	stamp []uint32
	epoch uint32
}

//tcam:hotpath
func (e *excludeSet) add(v int) { e.stamp[v] = e.epoch }

//tcam:hotpath
func (e *excludeSet) has(v int) bool { return e.stamp[v] == e.epoch }

// acquireExclude takes an empty exclude set from the snapshot's pool;
// return it with sn.excludes.Put once the query no longer holds it.
// The pool lives on the snapshot because the scratch is sized to the
// catalog, which a reload may change.
func (sn *snapshot) acquireExclude() *excludeSet {
	if e, ok := sn.excludes.Get().(*excludeSet); ok {
		e.epoch++
		if e.epoch == 0 { // stamp wraparound: reset once per 2^32 uses
			clear(e.stamp)
			e.epoch = 1
		}
		return e
	}
	return &excludeSet{stamp: make([]uint32, len(sn.bundle.Items)), epoch: 1}
}

// weightModel ranks a bare weight vector through the topk machinery.
type weightModel struct{ weights []float64 }

func (m weightModel) Name() string              { return "topic" }
func (m weightModel) NumItems() int             { return len(m.weights) }
func (m weightModel) Score(_, _, v int) float64 { return m.weights[v] }

type errorResponse struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorResponse{Error: msg})
}

// shedLoad rejects an over-capacity request with 429 and a Retry-After
// hint, the tail-at-scale alternative to queueing unboundedly.
func shedLoad(w http.ResponseWriter, msg string) {
	w.Header().Set("Retry-After", "1")
	httpError(w, http.StatusTooManyRequests, msg)
}

// jsonScratch is pooled response-encoding scratch: the buffer and its
// bound encoder are reused across requests, so steady-state responses
// cost zero encoder/buffer allocations (the encoder's internal state is
// reused too). Buffers that ballooned on a large response are dropped
// rather than pooled so one /topics?n=1000 burst can't pin memory.
type jsonScratch struct {
	buf bytes.Buffer
	enc *json.Encoder
}

// maxPooledEncodeBuf caps the buffer size returned to the encode pool.
const maxPooledEncodeBuf = 64 << 10

var encodePool = sync.Pool{New: func() interface{} {
	s := &jsonScratch{}
	s.enc = json.NewEncoder(&s.buf)
	return s
}}

func writeJSON(w http.ResponseWriter, code int, payload interface{}) {
	s := encodePool.Get().(*jsonScratch)
	s.buf.Reset()
	if err := s.enc.Encode(payload); err != nil {
		// Encoding failed before anything hit the wire; report it whole.
		encodePool.Put(s)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		_, _ = fmt.Fprintf(w, `{"error":%q}`, "response encoding failed: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_, _ = w.Write(s.buf.Bytes())
	if s.buf.Cap() <= maxPooledEncodeBuf {
		encodePool.Put(s)
	}
}

// recsPool recycles the recommendation slices backing /recommend and
// /recommend/batch payloads; writeJSON is synchronous, so handlers can
// return the slice right after it.
var recsPool = sync.Pool{New: func() interface{} {
	s := make([]recommendation, 0, 64)
	return &s
}}
