// Package server exposes a trained TCAM bundle as an HTTP JSON API —
// the online-deployment surface of the paper's Section 4: temporal
// top-k queries answered by the Threshold Algorithm over the
// precomputed per-topic index.
//
// Endpoints:
//
//	GET  /healthz                  liveness + model metadata
//	GET  /recommend?user=&time=&k= temporal top-k for a user at a time
//	POST /recommend/batch          many top-k queries in one request
//	GET  /topics/{z}?n=            top items of an expanded topic
//	GET  /users/{id}/lambda        the user's learned mixing weight
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"tcam/internal/index"
	"tcam/internal/topk"
)

// maxBatchQueries bounds one /recommend/batch request.
const maxBatchQueries = 1024

// Server routes recommendation traffic onto a loaded bundle. It is safe
// for concurrent use.
type Server struct {
	bundle   *index.Bundle
	idx      *topk.Index
	userIdx  map[string]int
	itemIdx  map[string]int
	excludes sync.Pool // *excludeSet scratch for /recommend filtering
	mux      *http.ServeMux
}

// New builds a Server (and its TA index) from a bundle.
func New(b *index.Bundle) (*Server, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	s := &Server{
		bundle:  b,
		idx:     b.BuildIndex(),
		userIdx: make(map[string]int, len(b.Users)),
		itemIdx: make(map[string]int, len(b.Items)),
		mux:     http.NewServeMux(),
	}
	for u, name := range b.Users {
		s.userIdx[name] = u
	}
	for v, name := range b.Items {
		s.itemIdx[name] = v
	}
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/recommend", s.handleRecommend)
	s.mux.HandleFunc("/recommend/batch", s.handleRecommendBatch)
	s.mux.HandleFunc("/topics/", s.handleTopic)
	s.mux.HandleFunc("/users/", s.handleUser)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// healthResponse is the /healthz payload.
type healthResponse struct {
	Status    string `json:"status"`
	ModelKind string `json:"model_kind"`
	Users     int    `json:"users"`
	Items     int    `json:"items"`
	Intervals int    `json:"intervals"`
	Topics    int    `json:"topics"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, healthResponse{
		Status:    "ok",
		ModelKind: string(s.bundle.Kind),
		Users:     len(s.bundle.Users),
		Items:     len(s.bundle.Items),
		Intervals: s.bundle.Grid.Num,
		Topics:    s.bundle.Scorer().NumTopics(),
	})
}

// recommendation is one entry of the /recommend payload.
type recommendation struct {
	Item  string  `json:"item"`
	Score float64 `json:"score"`
}

// recommendResponse is the /recommend payload (and one entry of the
// /recommend/batch payload, where a per-query failure sets Error).
type recommendResponse struct {
	User            string           `json:"user"`
	Interval        int              `json:"interval"`
	Recommendations []recommendation `json:"recommendations"`
	ItemsExamined   int              `json:"items_examined"`
	Error           string           `json:"error,omitempty"`
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	q := r.URL.Query()
	userID := q.Get("user")
	u, ok := s.userIdx[userID]
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown user %q", userID))
		return
	}
	when, err := strconv.ParseInt(q.Get("time"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "time must be an integer timestamp in dataset ticks")
		return
	}
	k := 10
	if raw := q.Get("k"); raw != "" {
		k, err = strconv.Atoi(raw)
		if err != nil || k <= 0 || k > 1000 {
			httpError(w, http.StatusBadRequest, "k must be in [1,1000]")
			return
		}
	}
	var exclude topk.Exclude
	if raw := q.Get("exclude"); raw != "" {
		ex := s.acquireExclude()
		defer s.excludes.Put(ex)
		for raw != "" {
			var id string
			id, raw, _ = strings.Cut(raw, ",")
			if v, ok := s.itemIdx[id]; ok {
				ex.add(v)
			}
		}
		exclude = ex.has
	}
	t := s.bundle.Grid.IntervalOf(when)
	// Build the response before Release: the pooled searcher owns the
	// result slice, which saves the copy Index.Query would make.
	sr := s.idx.AcquireSearcher()
	results, st := sr.Query(s.bundle.Scorer(), u, t, k, exclude)
	resp := recommendResponse{User: userID, Interval: t, ItemsExamined: st.ItemsExamined}
	for _, res := range results {
		resp.Recommendations = append(resp.Recommendations, recommendation{
			Item:  s.bundle.Items[res.Item],
			Score: res.Score,
		})
	}
	sr.Release()
	writeJSON(w, http.StatusOK, resp)
}

// batchQuery is one entry of the /recommend/batch request body.
type batchQuery struct {
	User    string   `json:"user"`
	Time    int64    `json:"time"`
	K       int      `json:"k"`
	Exclude []string `json:"exclude,omitempty"`
}

// batchRequest is the /recommend/batch request body.
type batchRequest struct {
	Queries []batchQuery `json:"queries"`
}

// batchResponse is the /recommend/batch payload; Results aligns with
// the request's Queries by position.
type batchResponse struct {
	Results []recommendResponse `json:"results"`
}

// handleRecommendBatch answers many temporal top-k queries in one POST,
// fanning them across CPUs with Index.QueryBatch (pooled searcher
// scratch per worker). Invalid entries fail individually via their
// Error field; the batch itself only fails on malformed JSON or size.
func (s *Server) handleRecommendBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad batch body: %v", err))
		return
	}
	if len(req.Queries) == 0 {
		httpError(w, http.StatusBadRequest, "batch needs at least one query")
		return
	}
	if len(req.Queries) > maxBatchQueries {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("batch limited to %d queries", maxBatchQueries))
		return
	}
	resp := batchResponse{Results: make([]recommendResponse, len(req.Queries))}
	queries := make([]topk.BatchQuery, len(req.Queries))
	for i, q := range req.Queries {
		out := &resp.Results[i]
		out.User = q.User
		u, ok := s.userIdx[q.User]
		if !ok {
			out.Error = fmt.Sprintf("unknown user %q", q.User)
			continue // zero-value BatchQuery: K=0 ranks nothing
		}
		k := q.K
		if k == 0 {
			k = 10
		}
		if k < 0 || k > 1000 {
			out.Error = "k must be in [1,1000]"
			continue
		}
		var exclude topk.Exclude
		if len(q.Exclude) > 0 {
			banned := make(map[int]bool, len(q.Exclude))
			for _, id := range q.Exclude {
				if v, ok := s.itemIdx[id]; ok {
					banned[v] = true
				}
			}
			exclude = func(v int) bool { return banned[v] }
		}
		out.Interval = s.bundle.Grid.IntervalOf(q.Time)
		queries[i] = topk.BatchQuery{U: u, T: out.Interval, K: k, Exclude: exclude}
	}
	for i, br := range s.idx.QueryBatch(s.bundle.Scorer(), queries, 0) {
		out := &resp.Results[i]
		if out.Error != "" {
			continue
		}
		out.ItemsExamined = br.Stats.ItemsExamined
		for _, res := range br.Results {
			out.Recommendations = append(out.Recommendations, recommendation{
				Item:  s.bundle.Items[res.Item],
				Score: res.Score,
			})
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// topicResponse is the /topics/{z} payload.
type topicResponse struct {
	Topic    int              `json:"topic"`
	Kind     string           `json:"kind"`
	TopItems []recommendation `json:"top_items"`
}

func (s *Server) handleTopic(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	raw := strings.TrimPrefix(r.URL.Path, "/topics/")
	z, err := strconv.Atoi(raw)
	scorer := s.bundle.Scorer()
	if err != nil || z < 0 || z >= scorer.NumTopics() {
		httpError(w, http.StatusNotFound, fmt.Sprintf("topic must be in [0,%d)", scorer.NumTopics()))
		return
	}
	n := 10
	if rawN := r.URL.Query().Get("n"); rawN != "" {
		n, err = strconv.Atoi(rawN)
		if err != nil || n <= 0 || n > 1000 {
			httpError(w, http.StatusBadRequest, "n must be in [1,1000]")
			return
		}
	}
	weights := scorer.TopicItems(z)
	top, _ := topk.BruteForce(weightModel{weights}, 0, 0, n, nil)
	resp := topicResponse{Topic: z, Kind: s.topicKind(z)}
	for _, res := range top {
		resp.TopItems = append(resp.TopItems, recommendation{Item: s.bundle.Items[res.Item], Score: res.Score})
	}
	writeJSON(w, http.StatusOK, resp)
}

// topicKind labels an expanded-topic index as user- or time-oriented.
func (s *Server) topicKind(z int) string {
	switch s.bundle.Kind {
	case index.KindTTCAM:
		if z < s.bundle.TTCAM.K1() {
			return "user-oriented"
		}
		if z < s.bundle.TTCAM.K1()+s.bundle.TTCAM.K2() {
			return "time-oriented"
		}
		return "background"
	default:
		if z < s.bundle.ITCAM.K1() {
			return "user-oriented"
		}
		return "interval-context"
	}
}

// lambdaResponse is the /users/{id}/lambda payload.
type lambdaResponse struct {
	User string `json:"user"`
	// Lambda is the personal-interest influence probability λu; the
	// temporal-context influence is 1−λu.
	Lambda float64 `json:"lambda"`
}

func (s *Server) handleUser(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/users/")
	parts := strings.Split(rest, "/")
	if len(parts) != 2 || parts[1] != "lambda" {
		httpError(w, http.StatusNotFound, "want /users/{id}/lambda")
		return
	}
	u, ok := s.userIdx[parts[0]]
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown user %q", parts[0]))
		return
	}
	var lambda float64
	switch s.bundle.Kind {
	case index.KindTTCAM:
		lambda = s.bundle.TTCAM.Lambda(u)
	default:
		lambda = s.bundle.ITCAM.Lambda(u)
	}
	writeJSON(w, http.StatusOK, lambdaResponse{User: parts[0], Lambda: lambda})
}

// excludeSet is a reusable catalog-sized exclusion filter. Membership is
// an epoch stamp, so recycling it for the next request is an O(1) epoch
// bump instead of an O(V) clear or a fresh per-request map.
type excludeSet struct {
	stamp []uint32
	epoch uint32
}

//tcam:hotpath
func (e *excludeSet) add(v int) { e.stamp[v] = e.epoch }

//tcam:hotpath
func (e *excludeSet) has(v int) bool { return e.stamp[v] == e.epoch }

// acquireExclude takes an empty exclude set from the pool; return it
// with s.excludes.Put once the query no longer holds it.
func (s *Server) acquireExclude() *excludeSet {
	if e, ok := s.excludes.Get().(*excludeSet); ok {
		e.epoch++
		if e.epoch == 0 { // stamp wraparound: reset once per 2^32 uses
			clear(e.stamp)
			e.epoch = 1
		}
		return e
	}
	return &excludeSet{stamp: make([]uint32, len(s.bundle.Items)), epoch: 1}
}

// weightModel ranks a bare weight vector through the topk machinery.
type weightModel struct{ weights []float64 }

func (m weightModel) Name() string              { return "topic" }
func (m weightModel) NumItems() int             { return len(m.weights) }
func (m weightModel) Score(_, _, v int) float64 { return m.weights[v] }

type errorResponse struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorResponse{Error: msg})
}

func writeJSON(w http.ResponseWriter, code int, payload interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(payload)
}
