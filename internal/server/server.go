// Package server exposes a trained TCAM bundle as an HTTP JSON API —
// the online-deployment surface of the paper's Section 4: temporal
// top-k queries answered by the Threshold Algorithm over the
// precomputed per-topic index.
//
// Endpoints:
//
//	GET /healthz                  liveness + model metadata
//	GET /recommend?user=&time=&k= temporal top-k for a user at a time
//	GET /topics/{z}?n=            top items of an expanded topic
//	GET /users/{id}/lambda        the user's learned mixing weight
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"tcam/internal/index"
	"tcam/internal/topk"
)

// Server routes recommendation traffic onto a loaded bundle. It is safe
// for concurrent use.
type Server struct {
	bundle  *index.Bundle
	idx     *topk.Index
	userIdx map[string]int
	mux     *http.ServeMux
}

// New builds a Server (and its TA index) from a bundle.
func New(b *index.Bundle) (*Server, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	s := &Server{
		bundle:  b,
		idx:     b.BuildIndex(),
		userIdx: make(map[string]int, len(b.Users)),
		mux:     http.NewServeMux(),
	}
	for u, name := range b.Users {
		s.userIdx[name] = u
	}
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/recommend", s.handleRecommend)
	s.mux.HandleFunc("/topics/", s.handleTopic)
	s.mux.HandleFunc("/users/", s.handleUser)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// healthResponse is the /healthz payload.
type healthResponse struct {
	Status    string `json:"status"`
	ModelKind string `json:"model_kind"`
	Users     int    `json:"users"`
	Items     int    `json:"items"`
	Intervals int    `json:"intervals"`
	Topics    int    `json:"topics"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, healthResponse{
		Status:    "ok",
		ModelKind: string(s.bundle.Kind),
		Users:     len(s.bundle.Users),
		Items:     len(s.bundle.Items),
		Intervals: s.bundle.Grid.Num,
		Topics:    s.bundle.Scorer().NumTopics(),
	})
}

// recommendation is one entry of the /recommend payload.
type recommendation struct {
	Item  string  `json:"item"`
	Score float64 `json:"score"`
}

// recommendResponse is the /recommend payload.
type recommendResponse struct {
	User            string           `json:"user"`
	Interval        int              `json:"interval"`
	Recommendations []recommendation `json:"recommendations"`
	ItemsExamined   int              `json:"items_examined"`
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	q := r.URL.Query()
	userID := q.Get("user")
	u, ok := s.userIdx[userID]
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown user %q", userID))
		return
	}
	when, err := strconv.ParseInt(q.Get("time"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "time must be an integer timestamp in dataset ticks")
		return
	}
	k := 10
	if raw := q.Get("k"); raw != "" {
		k, err = strconv.Atoi(raw)
		if err != nil || k <= 0 || k > 1000 {
			httpError(w, http.StatusBadRequest, "k must be in [1,1000]")
			return
		}
	}
	var exclude topk.Exclude
	if raw := q.Get("exclude"); raw != "" {
		banned := map[int]bool{}
		itemIdx := s.itemIndex()
		for _, id := range strings.Split(raw, ",") {
			if v, ok := itemIdx[id]; ok {
				banned[v] = true
			}
		}
		exclude = func(v int) bool { return banned[v] }
	}
	t := s.bundle.Grid.IntervalOf(when)
	results, st := s.idx.Query(s.bundle.Scorer(), u, t, k, exclude)
	resp := recommendResponse{User: userID, Interval: t, ItemsExamined: st.ItemsExamined}
	for _, res := range results {
		resp.Recommendations = append(resp.Recommendations, recommendation{
			Item:  s.bundle.Items[res.Item],
			Score: res.Score,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// topicResponse is the /topics/{z} payload.
type topicResponse struct {
	Topic    int              `json:"topic"`
	Kind     string           `json:"kind"`
	TopItems []recommendation `json:"top_items"`
}

func (s *Server) handleTopic(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	raw := strings.TrimPrefix(r.URL.Path, "/topics/")
	z, err := strconv.Atoi(raw)
	scorer := s.bundle.Scorer()
	if err != nil || z < 0 || z >= scorer.NumTopics() {
		httpError(w, http.StatusNotFound, fmt.Sprintf("topic must be in [0,%d)", scorer.NumTopics()))
		return
	}
	n := 10
	if rawN := r.URL.Query().Get("n"); rawN != "" {
		n, err = strconv.Atoi(rawN)
		if err != nil || n <= 0 || n > 1000 {
			httpError(w, http.StatusBadRequest, "n must be in [1,1000]")
			return
		}
	}
	weights := scorer.TopicItems(z)
	top, _ := topk.BruteForce(weightModel{weights}, 0, 0, n, nil)
	resp := topicResponse{Topic: z, Kind: s.topicKind(z)}
	for _, res := range top {
		resp.TopItems = append(resp.TopItems, recommendation{Item: s.bundle.Items[res.Item], Score: res.Score})
	}
	writeJSON(w, http.StatusOK, resp)
}

// topicKind labels an expanded-topic index as user- or time-oriented.
func (s *Server) topicKind(z int) string {
	switch s.bundle.Kind {
	case index.KindTTCAM:
		if z < s.bundle.TTCAM.K1() {
			return "user-oriented"
		}
		if z < s.bundle.TTCAM.K1()+s.bundle.TTCAM.K2() {
			return "time-oriented"
		}
		return "background"
	default:
		if z < s.bundle.ITCAM.K1() {
			return "user-oriented"
		}
		return "interval-context"
	}
}

// lambdaResponse is the /users/{id}/lambda payload.
type lambdaResponse struct {
	User string `json:"user"`
	// Lambda is the personal-interest influence probability λu; the
	// temporal-context influence is 1−λu.
	Lambda float64 `json:"lambda"`
}

func (s *Server) handleUser(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/users/")
	parts := strings.Split(rest, "/")
	if len(parts) != 2 || parts[1] != "lambda" {
		httpError(w, http.StatusNotFound, "want /users/{id}/lambda")
		return
	}
	u, ok := s.userIdx[parts[0]]
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown user %q", parts[0]))
		return
	}
	var lambda float64
	switch s.bundle.Kind {
	case index.KindTTCAM:
		lambda = s.bundle.TTCAM.Lambda(u)
	default:
		lambda = s.bundle.ITCAM.Lambda(u)
	}
	writeJSON(w, http.StatusOK, lambdaResponse{User: parts[0], Lambda: lambda})
}

// itemIndex lazily materializes the item-ID lookup (only the exclude
// parameter needs it).
func (s *Server) itemIndex() map[string]int {
	idx := make(map[string]int, len(s.bundle.Items))
	for v, name := range s.bundle.Items {
		idx[name] = v
	}
	return idx
}

// weightModel ranks a bare weight vector through the topk machinery.
type weightModel struct{ weights []float64 }

func (m weightModel) Name() string              { return "topic" }
func (m weightModel) NumItems() int             { return len(m.weights) }
func (m weightModel) Score(_, _, v int) float64 { return m.weights[v] }

type errorResponse struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorResponse{Error: msg})
}

func writeJSON(w http.ResponseWriter, code int, payload interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(payload)
}
