package server

// Updater is the fold-in end of the streaming ingest loop (DESIGN.md
// §15): it tails an append-only ingest log, grows the vocabularies and
// time grid as unseen users/items/intervals arrive, re-derives a grown
// bundle from the frozen boot bundle via index.Advance, and publishes
// it through the server's atomic snapshot swap — so the server keeps
// answering queries on a consistent generation while the next one is
// built off to the side.
//
// Determinism and crash safety come from one invariant: the published
// bundle is a pure function of (boot bundle, log prefix). The updater
// keeps no authoritative state of its own — vocabularies are interned
// in log order, the stream cuboid is rebuilt from replayed records,
// and every cycle re-derives the model from the immutable boot bundle
// rather than mutating the previous generation. A process that crashes
// and reopens the same log replays from offset zero and republishes a
// bit-identical artifact (only the snapshot version counter, which
// counts in-process reloads, can differ).

import (
	"context"
	"time"

	"tcam/internal/cuboid"
	"tcam/internal/dataset"
	"tcam/internal/faultinject"
	"tcam/internal/index"
	"tcam/internal/ingest"
	"tcam/internal/rescache"
)

// DefaultUpdaterInterval is Run's poll period when the config leaves
// Interval at zero.
const DefaultUpdaterInterval = time.Second

// UpdaterConfig parameterizes an Updater.
type UpdaterConfig struct {
	// Interval is Run's log poll period (0 means
	// DefaultUpdaterInterval).
	Interval time.Duration
	// Advance configures the fold-in composition; the zero value takes
	// index.DefaultAdvanceConfig.
	Advance index.AdvanceConfig
}

// Updater tails one ingest log on behalf of one Server. Not safe for
// concurrent use: Step and Run must not overlap (Run simply loops over
// Step, and tests drive Step directly for determinism).
type Updater struct {
	srv  *Server
	log  *ingest.Log
	boot *index.Bundle
	cfg  UpdaterConfig

	// Grown vocabularies: the boot names as a prefix, stream arrivals
	// appended in log order (which makes the dense indices a pure
	// function of the log prefix).
	users, items     []string
	userIdx, itemIdx map[string]int

	grid   dataset.TimeGrid // boot grid, Num grown as intervals open
	stream *cuboid.Cuboid   // events since boot (never boot cells)
	offset int64            // next log record to consume
}

// NewUpdater attaches an updater for lg to srv. boot must be the
// bundle srv was built from: it is the frozen base every published
// generation is re-derived from. The log is consumed from offset zero
// on every attach — restart recovery is a full deterministic replay.
func NewUpdater(srv *Server, lg *ingest.Log, boot *index.Bundle, cfg UpdaterConfig) (*Updater, error) {
	if err := boot.Validate(); err != nil {
		return nil, err
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultUpdaterInterval
	}
	if cfg.Advance == (index.AdvanceConfig{}) {
		cfg.Advance = index.DefaultAdvanceConfig()
	}
	u := &Updater{
		srv:     srv,
		log:     lg,
		boot:    boot,
		cfg:     cfg,
		users:   append([]string(nil), boot.Users...),
		items:   append([]string(nil), boot.Items...),
		userIdx: make(map[string]int, len(boot.Users)),
		itemIdx: make(map[string]int, len(boot.Items)),
		grid:    boot.Grid,
		stream:  cuboid.NewBuilder(len(boot.Users), boot.Grid.Num, len(boot.Items)).Build(),
	}
	for i, name := range u.users {
		u.userIdx[name] = i
	}
	for i, name := range u.items {
		u.itemIdx[name] = i
	}
	srv.ingestStat.Store(&ingestStatus{end: lg.End(), publishedAt: time.Now()})
	return u, nil
}

// intervalOf maps an event time onto the grown grid WITHOUT the upper
// clamp dataset.TimeGrid.IntervalOf applies: an event past the last
// known interval opens a new one instead of folding into the old edge.
// Times before the grid origin still clamp to interval zero.
func (u *Updater) intervalOf(when int64) int {
	g := u.grid
	if g.Length <= 0 || when < g.Origin {
		return 0
	}
	return int((when - g.Origin) / g.Length)
}

// Step runs one ingest cycle: consume every record appended since the
// last cycle, extend the stream cuboid, re-derive a grown bundle from
// the boot bundle, and publish it. It reports whether a new generation
// was published. A failed cycle publishes nothing and leaves the
// consumed offset where it was — the next Step retries the same
// records (vocabulary interning is idempotent, so a half-failed cycle
// cannot skew indices).
func (u *Updater) Step() (bool, error) {
	end, err := u.log.Refresh() // pick up records appended by the producer process
	if err != nil {
		return false, err
	}
	if end == u.offset {
		u.refreshStatus(end, time.Time{})
		return false, nil
	}
	if err := faultinject.FireErr("updater.fold"); err != nil {
		return false, err
	}
	type event struct {
		u, t, v int
		score   float64
	}
	var evs []event
	numT := u.grid.Num
	if err := u.log.Replay(u.offset, func(_ int64, r ingest.Record) error {
		ui, ok := u.userIdx[r.User]
		if !ok {
			ui = len(u.users)
			u.userIdx[r.User] = ui
			u.users = append(u.users, r.User)
		}
		vi, ok := u.itemIdx[r.Item]
		if !ok {
			vi = len(u.items)
			u.itemIdx[r.Item] = vi
			u.items = append(u.items, r.Item)
		}
		t := u.intervalOf(r.Time)
		if t >= numT {
			numT = t + 1
		}
		if u.srv.hot != nil {
			// Seed the hot-user sketch from the event stream: users who
			// act also read, so publish-time precompute has a ranking
			// even before serve traffic arrives.
			u.srv.hot.Observe(rescache.HashString(r.User))
		}
		evs = append(evs, event{u: ui, t: t, v: vi, score: r.Score})
		return nil
	}); err != nil {
		return false, err
	}
	d := cuboid.NewDelta(len(u.users), numT, len(u.items))
	for _, e := range evs {
		if err := d.Add(e.u, e.t, e.v, e.score); err != nil {
			return false, err
		}
	}
	stream, err := u.stream.ApplyDelta(d)
	if err != nil {
		return false, err
	}
	grid := u.grid
	grid.Num = numT
	bundle, err := u.boot.Advance(stream, grid, u.users, u.items, u.cfg.Advance)
	if err != nil {
		return false, err
	}
	if err := faultinject.FireErr("updater.publish"); err != nil {
		return false, err
	}
	if _, err := u.srv.Reload(bundle); err != nil {
		return false, err
	}
	u.stream, u.grid, u.offset = stream, grid, end
	u.refreshStatus(u.log.End(), time.Now())
	return true, nil
}

// Offset returns the log offset the serving snapshot reflects.
func (u *Updater) Offset() int64 { return u.offset }

// refreshStatus publishes the ingest view /healthz reports. A zero
// publishedAt keeps the previous publish time (the cycle consumed
// nothing).
func (u *Updater) refreshStatus(end int64, publishedAt time.Time) {
	prev := u.srv.ingestStat.Load()
	st := &ingestStatus{offset: u.offset, end: end, publishedAt: publishedAt}
	if publishedAt.IsZero() && prev != nil {
		st.publishedAt = prev.publishedAt
	}
	u.srv.ingestStat.Store(st)
}

// Run steps the updater every Interval until ctx is cancelled. It
// blocks; the caller owns the goroutine it runs on and is responsible
// for joining it (cmd/tcamserver closes a done channel around it). A
// failed step is logged and retried on the next tick — transient
// faults never kill the loop.
func (u *Updater) Run(ctx context.Context) {
	ticker := time.NewTicker(u.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			if published, err := u.Step(); err != nil {
				u.srv.logf("ingest: step failed (will retry): %v", err)
			} else if published {
				u.srv.logf("ingest: published snapshot at log offset %d (%d users, %d items, %d intervals)",
					u.offset, len(u.users), len(u.items), u.grid.Num)
			}
		}
	}
}

// ingestStatus is the updater's view /healthz exposes, swapped
// atomically so the handler never sees a half-updated triple.
type ingestStatus struct {
	offset      int64     // log records reflected by the serving snapshot
	end         int64     // durable log end as of the last cycle
	publishedAt time.Time // when the serving snapshot was derived
}

// ingestHealthBody is the "ingest" sub-object of the /healthz payload.
type ingestHealthBody struct {
	LogOffset int64 `json:"log_offset"`
	LogEnd    int64 `json:"log_end"`
	// Lag is how many durable records the serving snapshot is behind.
	Lag int64 `json:"lag"`
	// StalenessSeconds is the age of the serving snapshot's derivation;
	// with Lag zero the snapshot is current regardless of its age.
	StalenessSeconds float64 `json:"staleness_seconds"`
}

// ingestHealth renders the current status, or nil when no updater is
// attached.
func (s *Server) ingestHealth(now time.Time) *ingestHealthBody {
	st := s.ingestStat.Load()
	if st == nil {
		return nil
	}
	return &ingestHealthBody{
		LogOffset:        st.offset,
		LogEnd:           st.end,
		Lag:              st.end - st.offset,
		StalenessSeconds: now.Sub(st.publishedAt).Seconds(),
	}
}
