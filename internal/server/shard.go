package server

// The shard-facing query surface (DESIGN.md §14). A coordinator
// scatter-gathers POST /shard/query across the shard fleet and merges
// the partial top-k lists; each response therefore carries global item
// indices (the merge tie-break key), item names (so the coordinator
// needs no vocabulary of its own), exact float64 scores (Go's JSON
// shortest-representation round-trip keeps them bit-identical), and the
// shard's item window + bundle version (so the coordinator can detect
// overlap, gaps, or mixed-generation fleets).

import (
	"encoding/json"
	"fmt"
	"net/http"

	"tcam/internal/faultinject"
	"tcam/internal/topk"
)

// maxShardBody bounds the /shard/query request body in bytes.
const maxShardBody = 1 << 20

// shardQueryRequest is the POST /shard/query body.
type shardQueryRequest struct {
	User string `json:"user"`
	Time int64  `json:"time"`
	K    int    `json:"k"`
	// Exclude lists global item names to filter, same as /recommend.
	Exclude []string `json:"exclude,omitempty"`
}

// shardResult is one entry of a partial top-k: the global item index
// carries the tie-break identity, the name spares the coordinator a
// vocabulary, and the score is the exact float64 the TA computed.
type shardResult struct {
	Item  int     `json:"item"`
	Name  string  `json:"name"`
	Score float64 `json:"score"`
}

// shardQueryResponse is the /shard/query payload.
type shardQueryResponse struct {
	User          string        `json:"user"`
	Interval      int           `json:"interval"`
	ItemLo        int           `json:"item_lo"`
	ItemHi        int           `json:"item_hi"`
	Version       uint64        `json:"version"`
	Results       []shardResult `json:"results"`
	ItemsExamined int           `json:"items_examined"`
}

// handleShardQuery answers one partial top-k over this instance's item
// window. It also works in monolithic mode (the window is then the full
// catalog), so a one-shard "fleet" is just a plain server.
func (s *Server) handleShardQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if !s.recLimit.tryAcquire() {
		shedLoad(w, "shard query capacity saturated")
		return
	}
	defer s.recLimit.release()
	faultinject.Fire("server.shard")
	if r.Context().Err() != nil {
		httpError(w, http.StatusServiceUnavailable, "request cancelled")
		return
	}
	var req shardQueryRequest
	r.Body = http.MaxBytesReader(w, r.Body, maxShardBody)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad shard query body: %v", err))
		return
	}
	sn := s.snapshot()
	u, ok := sn.userIdx[req.User]
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown user %q", req.User))
		return
	}
	k := req.K
	if k == 0 {
		k = 10
	}
	if k < 0 || k > 1000 {
		httpError(w, http.StatusBadRequest, "k must be in [1,1000]")
		return
	}
	var exclude topk.Exclude
	if len(req.Exclude) > 0 {
		ex := sn.acquireExclude()
		defer sn.excludes.Put(ex)
		for _, id := range req.Exclude {
			if v, ok := sn.itemIdx[id]; ok {
				ex.add(v)
			}
		}
		exclude = ex.has
	}
	t := sn.bundle.Grid.IntervalOf(req.Time)
	lo, hi := sn.idx.ItemRange()
	sr := sn.idx.AcquireSearcher()
	results, st := sr.Query(sn.bundle.Scorer(), u, t, k, exclude)
	resp := shardQueryResponse{
		User:          req.User,
		Interval:      t,
		ItemLo:        lo,
		ItemHi:        hi,
		Version:       sn.version,
		Results:       make([]shardResult, 0, len(results)),
		ItemsExamined: st.ItemsExamined,
	}
	for _, res := range results {
		resp.Results = append(resp.Results, shardResult{
			Item:  res.Item,
			Name:  sn.bundle.Items[res.Item],
			Score: res.Score,
		})
	}
	sr.Release()
	writeJSON(w, http.StatusOK, resp)
}
