package server

// Lifecycle and fault-tolerance layer (DESIGN.md §9): panic recovery,
// bounded in-flight admission control, drain-aware readiness, and
// atomic hot reload of the serving snapshot.

import (
	"fmt"
	"log"
	"net/http"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"tcam/internal/index"
	"tcam/internal/rescache"
)

// Default per-endpoint in-flight budgets. The single-query endpoint is
// microseconds of TA work, so its budget is mostly a safety valve; a
// batch pins every CPU for its whole duration, so its budget is small.
const (
	DefaultMaxInflight      = 1024
	DefaultMaxInflightBatch = 64
)

// Server routes recommendation traffic onto the current serving
// snapshot. It is safe for concurrent use, including concurrent
// Reload.
type Server struct {
	snap       atomic.Pointer[snapshot]
	draining   atomic.Bool
	recLimit   inflightLimiter
	batchLimit inflightLimiter

	// itemLo/itemHi is the shard item window; both zero means the full
	// catalog (monolithic mode). Immutable after New, so reloads keep
	// serving the same partition.
	itemLo, itemHi int

	// ingestStat is the attached Updater's view for /healthz; nil until
	// an updater attaches (updater.go).
	ingestStat atomic.Pointer[ingestStatus]

	// cache is the epoch-versioned result cache (cache.go); nil unless
	// WithCache enabled it. hot tracks request frequency per user for
	// publish-time precomputation; it is non-nil exactly when cache is.
	cache          *rescache.Cache[cachedTopK]
	hot            *rescache.HotTracker
	precomputeHot  int           // hottest users warmed per publish
	hotPrecomputed atomic.Uint64 // users actually warmed by the latest publish

	reloadMu sync.Mutex // serializes Reload/ReloadFromSource
	reload   func() (*index.Bundle, error)
	logger   *log.Logger

	mux *http.ServeMux
}

// Option configures the lifecycle layer at construction.
type Option func(*Server)

// WithLimits bounds concurrent in-flight requests per endpoint:
// recommend for /recommend, batch for /recommend/batch. Requests over
// budget are shed with 429 + Retry-After instead of queueing. A
// non-positive value means unlimited.
func WithLimits(recommend, batch int) Option {
	return func(s *Server) {
		s.recLimit.max = int64(recommend)
		s.batchLimit.max = int64(batch)
	}
}

// WithReloader installs the bundle source /admin/reload and
// ReloadFromSource pull from — typically a closure re-reading the
// bundle path the server booted with.
func WithReloader(load func() (*index.Bundle, error)) Option {
	return func(s *Server) { s.reload = load }
}

// WithLogger directs lifecycle logging (recovered panics, reloads).
// Without it the server is silent.
func WithLogger(l *log.Logger) Option {
	return func(s *Server) { s.logger = l }
}

// WithItemRange puts the server in shard mode: the TA index covers only
// catalog items in [lo, hi), while vocabularies stay global so queries
// and responses speak global item names and indices. /shard/query
// serves the partial top-k a coordinator merges, /healthz reports the
// window, and hot reloads rebuild the same window. New rejects a window
// that is empty or outside the bundle's catalog.
func WithItemRange(lo, hi int) Option {
	return func(s *Server) {
		s.itemLo = lo
		s.itemHi = hi
	}
}

// validateWindow checks the configured shard window against a bundle's
// catalog. The zero window (monolithic mode) is always valid.
func (s *Server) validateWindow(b *index.Bundle) error {
	if s.itemLo == 0 && s.itemHi == 0 {
		return nil
	}
	if s.itemLo < 0 || s.itemHi <= s.itemLo || s.itemHi > len(b.Items) {
		return fmt.Errorf("server: item window [%d,%d) invalid for a %d-item catalog",
			s.itemLo, s.itemHi, len(b.Items))
	}
	return nil
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.logger != nil {
		s.logger.Printf(format, args...)
	}
}

// ServeHTTP implements http.Handler: panic containment around the
// routed handler. A panicking handler produces one logged 500 (when
// nothing has been written yet) and never takes the process down.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	cw := &containedWriter{ResponseWriter: w}
	defer func() {
		if v := recover(); v != nil {
			s.logf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, v, debug.Stack())
			if !cw.wrote {
				httpError(cw, http.StatusInternalServerError, "internal error")
			}
		}
	}()
	s.mux.ServeHTTP(cw, r)
}

// containedWriter tracks whether a handler wrote anything, so panic
// recovery knows if a 500 can still be delivered on the connection.
type containedWriter struct {
	http.ResponseWriter
	wrote bool
}

func (w *containedWriter) WriteHeader(code int) {
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *containedWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// inflightLimiter bounds concurrent requests with a plain counter — no
// queue, by design: under overload the cheapest correct behavior is an
// immediate shed the client can back off from (429 + Retry-After), not
// an unbounded queue that converts overload into latency for everyone.
type inflightLimiter struct {
	max int64
	cur atomic.Int64
}

// tryAcquire claims an in-flight slot, reporting false when the budget
// is exhausted. Pair with release. On the recommend fast path, so it
// must stay allocation-free.
//
//tcam:hotpath
func (l *inflightLimiter) tryAcquire() bool {
	if l.max <= 0 {
		return true
	}
	if l.cur.Add(1) > l.max {
		l.cur.Add(-1)
		return false
	}
	return true
}

// release returns a slot claimed by a successful tryAcquire.
//
//tcam:hotpath
func (l *inflightLimiter) release() {
	if l.max > 0 {
		l.cur.Add(-1)
	}
}

// StartDrain flips the server to draining: /readyz starts answering 503
// so load balancers stop sending traffic, while /healthz stays 200 and
// in-flight (and even newly arriving) requests are still served. Call
// it before http.Server.Shutdown so the fleet deregisters the instance
// ahead of the listener closing.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// readyResponse is the /readyz payload.
type readyResponse struct {
	Status  string `json:"status"`
	Version uint64 `json:"version"`
}

// handleReady is the readiness probe: 200 while serving, 503 once
// draining. Liveness (/healthz) deliberately stays 200 during drain —
// the process is healthy, it just no longer wants new traffic.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	resp := readyResponse{Status: "ready", Version: s.snapshot().version}
	if s.draining.Load() {
		resp.Status = "draining"
		writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// Reload atomically swaps in a new bundle: the TA index and
// vocabularies are rebuilt off to the side and published in one atomic
// pointer store, so queries in flight finish on the old snapshot and
// the next request sees the new one. Retraining therefore never
// requires downtime.
func (s *Server) Reload(b *index.Bundle) (uint64, error) {
	if err := b.Validate(); err != nil {
		return 0, err
	}
	if err := s.validateWindow(b); err != nil {
		return 0, err // new catalog no longer covers this shard's window
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	sn := newSnapshot(b, s.snap.Load().version+1, s.itemLo, s.itemHi)
	// Warm the new epoch before it goes live: a request can only name
	// this version once the store below publishes it, so hot users find
	// their answers already cached on their first post-publish hit.
	s.precompute(sn)
	s.snap.Store(sn)
	s.logf("reloaded bundle: version %d, %d users, %d items", sn.version, len(b.Users), len(b.Items))
	return sn.version, nil
}

// ReloadFromSource pulls a fresh bundle from the WithReloader source
// and swaps it in. The SIGHUP handler and /admin/reload both land
// here; a load or validation failure leaves the current snapshot
// serving untouched.
func (s *Server) ReloadFromSource() (uint64, error) {
	if s.reload == nil {
		return 0, errNoReloader
	}
	b, err := s.reload()
	if err != nil {
		s.logf("reload failed, keeping current bundle: %v", err)
		return 0, err
	}
	return s.Reload(b)
}

// errNoReloader distinguishes "reload unsupported" (501) from a failed
// reload (500).
var errNoReloader = errNoReloaderType{}

type errNoReloaderType struct{}

func (errNoReloaderType) Error() string { return "server: no reload source configured" }

// reloadResponse is the /admin/reload payload.
type reloadResponse struct {
	Status  string `json:"status"`
	Version uint64 `json:"version"`
}

// handleAdminReload hot-swaps the bundle from the configured source.
// POST-only: reloading is a mutation. Failures keep the old bundle and
// report 500 (or 501 when no source is configured).
func (s *Server) handleAdminReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	version, err := s.ReloadFromSource()
	if err == errNoReloader {
		httpError(w, http.StatusNotImplemented, err.Error())
		return
	}
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, reloadResponse{Status: "reloaded", Version: version})
}
