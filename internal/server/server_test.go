package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"tcam/internal/cuboid"
	"tcam/internal/dataset"
	"tcam/internal/index"
	"tcam/internal/model/ttcam"
)

func testServer(tb testing.TB) (*Server, *index.Bundle) {
	tb.Helper()
	b := cuboid.NewBuilder(6, 3, 12)
	for u := 0; u < 6; u++ {
		for t := 0; t < 3; t++ {
			b.MustAdd(u, t, (u*2+t)%12, 1)
			b.MustAdd(u, t, (t*4)%12, 1)
		}
	}
	cfg := ttcam.DefaultConfig()
	cfg.K1, cfg.K2, cfg.MaxIters = 4, 3, 15
	m, _, err := ttcam.Train(b.Build(), cfg)
	if err != nil {
		tb.Fatal(err)
	}
	users := make([]string, 6)
	for i := range users {
		users[i] = fmt.Sprintf("user-%d", i)
	}
	items := make([]string, 12)
	for i := range items {
		items[i] = fmt.Sprintf("item-%d", i)
	}
	bundle := index.NewTTCAM(m, dataset.TimeGrid{Origin: 100, Length: 10, Num: 3}, users, items)
	srv, err := New(bundle)
	if err != nil {
		tb.Fatal(err)
	}
	return srv, bundle
}

func get(t *testing.T, srv *Server, path string) (*http.Response, []byte) {
	t.Helper()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf [1 << 16]byte
	n, _ := resp.Body.Read(buf[:])
	return resp, buf[:n]
}

func TestHealthz(t *testing.T) {
	srv, _ := testServer(t)
	resp, body := get(t, srv, "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var h healthResponse
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Users != 6 || h.Items != 12 || h.Intervals != 3 || h.Topics != 7 {
		t.Errorf("health = %+v", h)
	}
}

func TestRecommend(t *testing.T) {
	srv, _ := testServer(t)
	resp, body := get(t, srv, "/recommend?user=user-2&time=115&k=4")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var r recommendResponse
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatal(err)
	}
	if r.Interval != 1 {
		t.Errorf("interval = %d, want 1 (time 115 on grid origin 100/len 10)", r.Interval)
	}
	if len(r.Recommendations) != 4 {
		t.Fatalf("got %d recommendations", len(r.Recommendations))
	}
	for i := 1; i < len(r.Recommendations); i++ {
		if r.Recommendations[i].Score > r.Recommendations[i-1].Score {
			t.Error("recommendations not sorted")
		}
	}
	if r.ItemsExamined <= 0 {
		t.Error("items examined not reported")
	}
}

func TestRecommendExclude(t *testing.T) {
	srv, _ := testServer(t)
	_, body := get(t, srv, "/recommend?user=user-2&time=115&k=3")
	var base recommendResponse
	if err := json.Unmarshal(body, &base); err != nil {
		t.Fatal(err)
	}
	first := base.Recommendations[0].Item
	_, body = get(t, srv, "/recommend?user=user-2&time=115&k=3&exclude="+first+",bogus")
	var filtered recommendResponse
	if err := json.Unmarshal(body, &filtered); err != nil {
		t.Fatal(err)
	}
	for _, rec := range filtered.Recommendations {
		if rec.Item == first {
			t.Error("excluded item recommended")
		}
	}
}

func TestRecommendErrors(t *testing.T) {
	srv, _ := testServer(t)
	tests := []struct {
		path string
		code int
	}{
		{"/recommend?user=nobody&time=1", http.StatusNotFound},
		{"/recommend?user=user-1&time=abc", http.StatusBadRequest},
		{"/recommend?user=user-1&time=1&k=0", http.StatusBadRequest},
		{"/recommend?user=user-1&time=1&k=99999", http.StatusBadRequest},
	}
	for _, tt := range tests {
		resp, _ := get(t, srv, tt.path)
		if resp.StatusCode != tt.code {
			t.Errorf("%s: status %d, want %d", tt.path, resp.StatusCode, tt.code)
		}
	}
}

func TestTopics(t *testing.T) {
	srv, _ := testServer(t)
	resp, body := get(t, srv, "/topics/0?n=3")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var tr topicResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Kind != "user-oriented" || len(tr.TopItems) != 3 {
		t.Errorf("topic response = %+v", tr)
	}
	resp, body = get(t, srv, "/topics/5")
	var tr2 topicResponse
	if err := json.Unmarshal(body, &tr2); err != nil {
		t.Fatal(err)
	}
	if tr2.Kind != "time-oriented" {
		t.Errorf("topic 5 kind = %q (K1=4)", tr2.Kind)
	}
	if resp, _ := get(t, srv, "/topics/99"); resp.StatusCode != http.StatusNotFound {
		t.Error("out-of-range topic accepted")
	}
	if resp, _ := get(t, srv, "/topics/abc"); resp.StatusCode != http.StatusNotFound {
		t.Error("non-numeric topic accepted")
	}
}

func TestUserLambda(t *testing.T) {
	srv, bundle := testServer(t)
	resp, body := get(t, srv, "/users/user-3/lambda")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var lr lambdaResponse
	if err := json.Unmarshal(body, &lr); err != nil {
		t.Fatal(err)
	}
	if lr.Lambda != bundle.TTCAM.Lambda(3) {
		t.Errorf("lambda = %v, want %v", lr.Lambda, bundle.TTCAM.Lambda(3))
	}
	if resp, _ := get(t, srv, "/users/nobody/lambda"); resp.StatusCode != http.StatusNotFound {
		t.Error("unknown user accepted")
	}
	if resp, _ := get(t, srv, "/users/user-3/other"); resp.StatusCode != http.StatusNotFound {
		t.Error("unknown subresource accepted")
	}
}

func TestMethodNotAllowed(t *testing.T) {
	srv, _ := testServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	for _, path := range []string{"/healthz", "/recommend", "/topics/0", "/users/user-1/lambda"} {
		resp, err := http.Post(ts.URL+path, "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST %s: status %d, want 405", path, resp.StatusCode)
		}
	}
}

func TestNewRejectsBrokenBundle(t *testing.T) {
	_, bundle := testServer(t)
	bundle.Items = bundle.Items[:2]
	if _, err := New(bundle); err == nil {
		t.Error("New accepted a broken bundle")
	}
}
