package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"tcam/internal/cuboid"
	"tcam/internal/dataset"
	"tcam/internal/index"
	"tcam/internal/model/ttcam"
)

func testServer(tb testing.TB) (*Server, *index.Bundle) {
	tb.Helper()
	b := cuboid.NewBuilder(6, 3, 12)
	for u := 0; u < 6; u++ {
		for t := 0; t < 3; t++ {
			b.MustAdd(u, t, (u*2+t)%12, 1)
			b.MustAdd(u, t, (t*4)%12, 1)
		}
	}
	cfg := ttcam.DefaultConfig()
	cfg.K1, cfg.K2, cfg.MaxIters = 4, 3, 15
	m, _, err := ttcam.Train(b.Build(), cfg)
	if err != nil {
		tb.Fatal(err)
	}
	users := make([]string, 6)
	for i := range users {
		users[i] = fmt.Sprintf("user-%d", i)
	}
	items := make([]string, 12)
	for i := range items {
		items[i] = fmt.Sprintf("item-%d", i)
	}
	bundle := index.NewTTCAM(m, dataset.TimeGrid{Origin: 100, Length: 10, Num: 3}, users, items)
	srv, err := New(bundle)
	if err != nil {
		tb.Fatal(err)
	}
	return srv, bundle
}

func get(t *testing.T, srv *Server, path string) (*http.Response, []byte) {
	t.Helper()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf [1 << 16]byte
	n, _ := resp.Body.Read(buf[:])
	return resp, buf[:n]
}

func TestHealthz(t *testing.T) {
	srv, _ := testServer(t)
	resp, body := get(t, srv, "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var h healthResponse
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Users != 6 || h.Items != 12 || h.Intervals != 3 || h.Topics != 7 {
		t.Errorf("health = %+v", h)
	}
}

func TestRecommend(t *testing.T) {
	srv, _ := testServer(t)
	resp, body := get(t, srv, "/recommend?user=user-2&time=115&k=4")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var r recommendResponse
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatal(err)
	}
	if r.Interval != 1 {
		t.Errorf("interval = %d, want 1 (time 115 on grid origin 100/len 10)", r.Interval)
	}
	if len(r.Recommendations) != 4 {
		t.Fatalf("got %d recommendations", len(r.Recommendations))
	}
	for i := 1; i < len(r.Recommendations); i++ {
		if r.Recommendations[i].Score > r.Recommendations[i-1].Score {
			t.Error("recommendations not sorted")
		}
	}
	if r.ItemsExamined <= 0 {
		t.Error("items examined not reported")
	}
}

func TestRecommendExclude(t *testing.T) {
	srv, _ := testServer(t)
	_, body := get(t, srv, "/recommend?user=user-2&time=115&k=3")
	var base recommendResponse
	if err := json.Unmarshal(body, &base); err != nil {
		t.Fatal(err)
	}
	first := base.Recommendations[0].Item
	_, body = get(t, srv, "/recommend?user=user-2&time=115&k=3&exclude="+first+",bogus")
	var filtered recommendResponse
	if err := json.Unmarshal(body, &filtered); err != nil {
		t.Fatal(err)
	}
	for _, rec := range filtered.Recommendations {
		if rec.Item == first {
			t.Error("excluded item recommended")
		}
	}
}

// The exclude filter's pooled scratch must behave identically across
// many sequential requests (epoch stamping, not per-request maps).
func TestRecommendExcludeReusedScratch(t *testing.T) {
	srv, _ := testServer(t)
	_, body := get(t, srv, "/recommend?user=user-2&time=115&k=3")
	var base recommendResponse
	if err := json.Unmarshal(body, &base); err != nil {
		t.Fatal(err)
	}
	first := base.Recommendations[0].Item
	second := base.Recommendations[1].Item
	for i := 0; i < 5; i++ {
		// Alternate exclusion sets: a stale stamp from the previous
		// request must never leak into the next one.
		_, body = get(t, srv, "/recommend?user=user-2&time=115&k=3&exclude="+first)
		var r1 recommendResponse
		if err := json.Unmarshal(body, &r1); err != nil {
			t.Fatal(err)
		}
		for _, rec := range r1.Recommendations {
			if rec.Item == first {
				t.Fatalf("round %d: excluded %s recommended", i, first)
			}
		}
		if r1.Recommendations[0].Item != second {
			t.Fatalf("round %d: excluding %s should promote %s, got %s",
				i, first, second, r1.Recommendations[0].Item)
		}
		_, body = get(t, srv, "/recommend?user=user-2&time=115&k=3&exclude="+second)
		var r2 recommendResponse
		if err := json.Unmarshal(body, &r2); err != nil {
			t.Fatal(err)
		}
		if r2.Recommendations[0].Item != first {
			t.Fatalf("round %d: excluding %s should keep %s first, got %s",
				i, second, first, r2.Recommendations[0].Item)
		}
	}
}

func postJSON(t *testing.T, srv *Server, path, body string) (*http.Response, []byte) {
	t.Helper()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf [1 << 16]byte
	n, _ := resp.Body.Read(buf[:])
	return resp, buf[:n]
}

func TestRecommendBatch(t *testing.T) {
	srv, _ := testServer(t)
	// Single-endpoint answers are the ground truth for the batch path.
	_, body := get(t, srv, "/recommend?user=user-2&time=115&k=4")
	var single recommendResponse
	if err := json.Unmarshal(body, &single); err != nil {
		t.Fatal(err)
	}

	resp, body := postJSON(t, srv, "/recommend/batch",
		`{"queries":[
			{"user":"user-2","time":115,"k":4},
			{"user":"nobody","time":115,"k":4},
			{"user":"user-0","time":100},
			{"user":"user-2","time":115,"k":4,"exclude":["`+single.Recommendations[0].Item+`"]}
		]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var batch batchResponse
	if err := json.Unmarshal(body, &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != 4 {
		t.Fatalf("got %d results", len(batch.Results))
	}
	// Entry 0 must equal the single endpoint bit-for-bit.
	r0 := batch.Results[0]
	if r0.Error != "" || r0.Interval != single.Interval || len(r0.Recommendations) != len(single.Recommendations) {
		t.Fatalf("batch[0] = %+v, want %+v", r0, single)
	}
	for i := range r0.Recommendations {
		if r0.Recommendations[i] != single.Recommendations[i] {
			t.Errorf("batch[0][%d] = %+v, single %+v", i, r0.Recommendations[i], single.Recommendations[i])
		}
	}
	// Entry 1 fails individually without sinking the batch.
	if batch.Results[1].Error == "" || len(batch.Results[1].Recommendations) != 0 {
		t.Errorf("batch[1] = %+v, want per-query error", batch.Results[1])
	}
	// Entry 2 uses the default k.
	if batch.Results[2].Error != "" || len(batch.Results[2].Recommendations) != 10 {
		t.Errorf("batch[2] = %+v, want 10 default recommendations", batch.Results[2])
	}
	// Entry 3 respects its exclusion.
	for _, rec := range batch.Results[3].Recommendations {
		if rec.Item == single.Recommendations[0].Item {
			t.Error("batch exclusion ignored")
		}
	}
}

func TestRecommendBatchErrors(t *testing.T) {
	srv, _ := testServer(t)
	if resp, _ := get(t, srv, "/recommend/batch"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET batch: status %d, want 405", resp.StatusCode)
	}
	if resp, _ := postJSON(t, srv, "/recommend/batch", "{broken"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400", resp.StatusCode)
	}
	if resp, _ := postJSON(t, srv, "/recommend/batch", `{"queries":[]}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400", resp.StatusCode)
	}
	var sb strings.Builder
	sb.WriteString(`{"queries":[`)
	for i := 0; i <= maxBatchQueries; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(`{"user":"user-1","time":1}`)
	}
	sb.WriteString(`]}`)
	if resp, _ := postJSON(t, srv, "/recommend/batch", sb.String()); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized batch: status %d, want 400", resp.StatusCode)
	}
	resp, body := postJSON(t, srv, "/recommend/batch", `{"queries":[{"user":"user-1","time":1,"k":-3}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var batch batchResponse
	if err := json.Unmarshal(body, &batch); err != nil {
		t.Fatal(err)
	}
	if batch.Results[0].Error == "" {
		t.Error("negative k accepted")
	}
}

func TestRecommendErrors(t *testing.T) {
	srv, _ := testServer(t)
	tests := []struct {
		path string
		code int
	}{
		{"/recommend?user=nobody&time=1", http.StatusNotFound},
		{"/recommend?user=user-1&time=abc", http.StatusBadRequest},
		{"/recommend?user=user-1&time=1&k=0", http.StatusBadRequest},
		{"/recommend?user=user-1&time=1&k=99999", http.StatusBadRequest},
	}
	for _, tt := range tests {
		resp, _ := get(t, srv, tt.path)
		if resp.StatusCode != tt.code {
			t.Errorf("%s: status %d, want %d", tt.path, resp.StatusCode, tt.code)
		}
	}
}

func TestTopics(t *testing.T) {
	srv, _ := testServer(t)
	resp, body := get(t, srv, "/topics/0?n=3")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var tr topicResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Kind != "user-oriented" || len(tr.TopItems) != 3 {
		t.Errorf("topic response = %+v", tr)
	}
	resp, body = get(t, srv, "/topics/5")
	var tr2 topicResponse
	if err := json.Unmarshal(body, &tr2); err != nil {
		t.Fatal(err)
	}
	if tr2.Kind != "time-oriented" {
		t.Errorf("topic 5 kind = %q (K1=4)", tr2.Kind)
	}
	if resp, _ := get(t, srv, "/topics/99"); resp.StatusCode != http.StatusNotFound {
		t.Error("out-of-range topic accepted")
	}
	if resp, _ := get(t, srv, "/topics/abc"); resp.StatusCode != http.StatusNotFound {
		t.Error("non-numeric topic accepted")
	}
}

func TestUserLambda(t *testing.T) {
	srv, bundle := testServer(t)
	resp, body := get(t, srv, "/users/user-3/lambda")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var lr lambdaResponse
	if err := json.Unmarshal(body, &lr); err != nil {
		t.Fatal(err)
	}
	if lr.Lambda != bundle.TTCAM.Lambda(3) {
		t.Errorf("lambda = %v, want %v", lr.Lambda, bundle.TTCAM.Lambda(3))
	}
	if resp, _ := get(t, srv, "/users/nobody/lambda"); resp.StatusCode != http.StatusNotFound {
		t.Error("unknown user accepted")
	}
	if resp, _ := get(t, srv, "/users/user-3/other"); resp.StatusCode != http.StatusNotFound {
		t.Error("unknown subresource accepted")
	}
}

func TestMethodNotAllowed(t *testing.T) {
	srv, _ := testServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	for _, path := range []string{"/healthz", "/recommend", "/topics/0", "/users/user-1/lambda"} {
		resp, err := http.Post(ts.URL+path, "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST %s: status %d, want 405", path, resp.StatusCode)
		}
	}
}

func TestNewRejectsBrokenBundle(t *testing.T) {
	_, bundle := testServer(t)
	bundle.Items = bundle.Items[:2]
	if _, err := New(bundle); err == nil {
		t.Error("New accepted a broken bundle")
	}
}
