package server

// Tests for the lifecycle and fault-tolerance layer (DESIGN.md §9):
// graceful drain, hot reload under concurrent load, panic containment,
// admission control, deadline propagation, and body-size bounds. Run
// under -race via scripts/check.sh.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"tcam/internal/cuboid"
	"tcam/internal/dataset"
	"tcam/internal/faultinject"
	"tcam/internal/index"
	"tcam/internal/model/ttcam"
)

// makeBundle trains a tiny TTCAM bundle with the given catalog shape.
func makeBundle(tb testing.TB, users, items int) *index.Bundle {
	tb.Helper()
	b := cuboid.NewBuilder(users, 3, items)
	for u := 0; u < users; u++ {
		for t := 0; t < 3; t++ {
			b.MustAdd(u, t, (u*2+t)%items, 1)
			b.MustAdd(u, t, (t*4)%items, 1)
		}
	}
	cfg := ttcam.DefaultConfig()
	cfg.K1, cfg.K2, cfg.MaxIters = 4, 3, 15
	m, _, err := ttcam.Train(b.Build(), cfg)
	if err != nil {
		tb.Fatal(err)
	}
	names := func(prefix string, n int) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = fmt.Sprintf("%s-%d", prefix, i)
		}
		return out
	}
	return index.NewTTCAM(m, dataset.TimeGrid{Origin: 100, Length: 10, Num: 3},
		names("user", users), names("item", items))
}

func serveHTTP(srv *Server, method, target string, body string) *httptest.ResponseRecorder {
	var req *http.Request
	if body == "" {
		req = httptest.NewRequest(method, target, nil)
	} else {
		req = httptest.NewRequest(method, target, strings.NewReader(body))
	}
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	return w
}

// Graceful shutdown: an in-flight request parked inside the handler
// must complete with 200 while /readyz flips to 503 and /healthz stays
// 200; http.Server.Shutdown returns within the drain deadline once the
// request finishes.
func TestGracefulShutdownDrainsInflight(t *testing.T) {
	defer faultinject.Reset()
	srv, err := New(makeBundle(t, 6, 12))
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	faultinject.Set("server.recommend", faultinject.Blocks(entered, release))

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	inflight := make(chan int, 1)
	go func() {
		resp, err := http.Get(base + "/recommend?user=user-2&time=115&k=3")
		if err != nil {
			inflight <- -1
			return
		}
		defer resp.Body.Close()
		inflight <- resp.StatusCode
	}()
	<-entered // the request is now inside the handler

	srv.StartDrain()
	faultinject.Clear("server.recommend") // probes below must not park
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz while draining: status %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !h.Draining {
		t.Errorf("/healthz while draining: status %d draining %v, want 200 true", resp.StatusCode, h.Draining)
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- hs.Shutdown(shutdownCtx) }()
	close(release) // let the in-flight request finish inside the drain window
	if code := <-inflight; code != http.StatusOK {
		t.Errorf("in-flight request during drain: status %d, want 200", code)
	}
	if err := <-shutdownDone; err != nil {
		t.Errorf("Shutdown: %v (drain deadline exceeded?)", err)
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		t.Errorf("Serve returned %v, want ErrServerClosed", err)
	}
}

// Hot reload under sustained concurrent queries must drop zero
// requests: every query lands on a complete snapshot, old or new.
// Alternating catalog sizes stresses the snapshot-owned exclude pool
// (a stale pool entry sized to the wrong catalog would panic or
// misfilter). Run under -race.
func TestReloadWhileQuerying(t *testing.T) {
	small, big := makeBundle(t, 6, 12), makeBundle(t, 6, 9)
	srv, err := New(small)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	failures := make(chan string, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				w := serveHTTP(srv, http.MethodGet,
					fmt.Sprintf("/recommend?user=user-%d&time=115&k=3&exclude=item-0,item-5", g+1), "")
				if w.Code != http.StatusOK {
					select {
					case failures <- fmt.Sprintf("goroutine %d iter %d: status %d: %s", g, i, w.Code, w.Body.String()):
					default:
					}
					return
				}
			}
		}(g)
	}
	for i := 0; i < 20; i++ {
		b := small
		if i%2 == 0 {
			b = big
		}
		if _, err := srv.Reload(b); err != nil {
			t.Fatalf("reload %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	close(failures)
	for f := range failures {
		t.Error(f)
	}
	// 1 boot + 20 reloads, visible in /healthz.
	w := serveHTTP(srv, http.MethodGet, "/healthz", "")
	var h healthResponse
	if err := json.Unmarshal(w.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Version != 21 {
		t.Errorf("version = %d, want 21", h.Version)
	}
}

// An injected handler panic must produce exactly one logged 500 and
// leave the server serving.
func TestPanicContainment(t *testing.T) {
	defer faultinject.Reset()
	var logBuf bytes.Buffer
	srv, err := New(makeBundle(t, 6, 12), WithLogger(log.New(&logBuf, "", 0)))
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Set("server.recommend", faultinject.FailsOnce(faultinject.Panics()))
	if w := serveHTTP(srv, http.MethodGet, "/recommend?user=user-2&time=115&k=3", ""); w.Code != http.StatusInternalServerError {
		t.Errorf("panicking request: status %d, want 500", w.Code)
	}
	if !strings.Contains(logBuf.String(), "panic serving GET /recommend") {
		t.Errorf("panic not logged: %q", logBuf.String())
	}
	for i := 0; i < 3; i++ {
		if w := serveHTTP(srv, http.MethodGet, "/recommend?user=user-2&time=115&k=3", ""); w.Code != http.StatusOK {
			t.Fatalf("request %d after panic: status %d, want 200", i, w.Code)
		}
	}
}

// Saturating the /recommend in-flight budget sheds with 429 +
// Retry-After; freed slots serve again.
func TestLimiterSaturationSheds(t *testing.T) {
	defer faultinject.Reset()
	srv, err := New(makeBundle(t, 6, 12), WithLimits(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{}, 2)
	release := make(chan struct{})
	faultinject.Set("server.recommend", faultinject.Blocks(entered, release))
	var wg sync.WaitGroup
	codes := make(chan int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			codes <- serveHTTP(srv, http.MethodGet, "/recommend?user=user-1&time=115&k=3", "").Code
		}()
	}
	<-entered
	<-entered // both budget slots are now held inside the handler
	w := serveHTTP(srv, http.MethodGet, "/recommend?user=user-2&time=115&k=3", "")
	if w.Code != http.StatusTooManyRequests {
		t.Errorf("over-budget request: status %d, want 429", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	close(release)
	wg.Wait()
	close(codes)
	for code := range codes {
		if code != http.StatusOK {
			t.Errorf("parked request: status %d, want 200", code)
		}
	}
	faultinject.Reset()
	if w := serveHTTP(srv, http.MethodGet, "/recommend?user=user-2&time=115&k=3", ""); w.Code != http.StatusOK {
		t.Errorf("after release: status %d, want 200", w.Code)
	}
}

// The batch endpoint has its own budget: a parked batch must not block
// /recommend, and a second batch is shed.
func TestBatchLimiterIndependent(t *testing.T) {
	defer faultinject.Reset()
	srv, err := New(makeBundle(t, 6, 12), WithLimits(8, 1))
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	faultinject.Set("server.batch", faultinject.Blocks(entered, release))
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if w := serveHTTP(srv, http.MethodPost, "/recommend/batch",
			`{"queries":[{"user":"user-1","time":115,"k":3}]}`); w.Code != http.StatusOK {
			t.Errorf("parked batch: status %d, want 200", w.Code)
		}
	}()
	<-entered
	if w := serveHTTP(srv, http.MethodPost, "/recommend/batch",
		`{"queries":[{"user":"user-1","time":115,"k":3}]}`); w.Code != http.StatusTooManyRequests {
		t.Errorf("second batch: status %d, want 429", w.Code)
	}
	if w := serveHTTP(srv, http.MethodGet, "/recommend?user=user-2&time=115&k=3", ""); w.Code != http.StatusOK {
		t.Errorf("/recommend while batch saturated: status %d, want 200", w.Code)
	}
	close(release)
	wg.Wait()
}

// A request whose context is cancelled before TA work starts gets 503.
func TestRecommendCancelledContext(t *testing.T) {
	defer faultinject.Reset()
	srv, err := New(makeBundle(t, 6, 12))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	faultinject.Set("server.recommend", func() { cancel() })
	req := httptest.NewRequest(http.MethodGet, "/recommend?user=user-2&time=115&k=3", nil).WithContext(ctx)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusServiceUnavailable {
		t.Errorf("cancelled request: status %d, want 503", w.Code)
	}
}

// Cancellation mid-batch returns the completed prefix with the
// truncated marker; completed entries are bit-identical to the single
// endpoint's answers.
func TestBatchCancelledMidwayTruncates(t *testing.T) {
	defer faultinject.Reset()
	old := runtime.GOMAXPROCS(1) // one batch worker: deterministic prefix
	defer runtime.GOMAXPROCS(old)
	srv, err := New(makeBundle(t, 6, 12))
	if err != nil {
		t.Fatal(err)
	}
	want := serveHTTP(srv, http.MethodGet, "/recommend?user=user-1&time=115&k=3", "")
	var single recommendResponse
	if err := json.Unmarshal(want.Body.Bytes(), &single); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Firing 3 lands before query index 2: two queries complete.
	faultinject.Set("topk.batch.query", faultinject.CancelsAfter(3, cancel))
	var body strings.Builder
	body.WriteString(`{"queries":[`)
	for i := 0; i < 6; i++ {
		if i > 0 {
			body.WriteByte(',')
		}
		body.WriteString(`{"user":"user-1","time":115,"k":3}`)
	}
	body.WriteString(`]}`)
	req := httptest.NewRequest(http.MethodPost, "/recommend/batch", strings.NewReader(body.String())).WithContext(ctx)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp batchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Truncated {
		t.Error("response not marked truncated")
	}
	if len(resp.Results) != 2 {
		t.Fatalf("got %d results, want the 2-query prefix", len(resp.Results))
	}
	for i, r := range resp.Results {
		if len(r.Recommendations) != len(single.Recommendations) {
			t.Fatalf("result %d: %d recommendations, want %d", i, len(r.Recommendations), len(single.Recommendations))
		}
		for j := range r.Recommendations {
			if r.Recommendations[j] != single.Recommendations[j] {
				t.Errorf("result %d[%d] = %+v, single %+v", i, j, r.Recommendations[j], single.Recommendations[j])
			}
		}
	}
}

// A batch cancelled before any query completes returns 503.
func TestBatchCancelledImmediatelyIs503(t *testing.T) {
	defer faultinject.Reset()
	srv, err := New(makeBundle(t, 6, 12))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	faultinject.Set("server.batch", func() { cancel() })
	req := httptest.NewRequest(http.MethodPost, "/recommend/batch",
		strings.NewReader(`{"queries":[{"user":"user-1","time":115,"k":3}]}`)).WithContext(ctx)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusServiceUnavailable {
		t.Errorf("status %d, want 503", w.Code)
	}
}

// Oversized batch bodies are rejected with 413 before JSON decoding
// buffers them.
func TestBatchBodyTooLarge(t *testing.T) {
	srv, err := New(makeBundle(t, 6, 12))
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	body.WriteString(`{"queries":[{"user":"`)
	body.Write(bytes.Repeat([]byte("x"), maxBatchBody+1))
	body.WriteString(`","time":1}]}`)
	w := serveHTTP(srv, http.MethodPost, "/recommend/batch", body.String())
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("status %d, want 413", w.Code)
	}
}

// /admin/reload: 501 without a source, version bump with one, 500 (and
// the old snapshot kept) when the source fails.
func TestAdminReload(t *testing.T) {
	b := makeBundle(t, 6, 12)
	srv, err := New(b)
	if err != nil {
		t.Fatal(err)
	}
	if w := serveHTTP(srv, http.MethodPost, "/admin/reload", ""); w.Code != http.StatusNotImplemented {
		t.Errorf("no reloader: status %d, want 501", w.Code)
	}
	if w := serveHTTP(srv, http.MethodGet, "/admin/reload", ""); w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET reload: status %d, want 405", w.Code)
	}

	fail := false
	srv2, err := New(b, WithReloader(func() (*index.Bundle, error) {
		if fail {
			return nil, fmt.Errorf("bundle file torn")
		}
		return b, nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	w := serveHTTP(srv2, http.MethodPost, "/admin/reload", "")
	if w.Code != http.StatusOK {
		t.Fatalf("reload: status %d: %s", w.Code, w.Body.String())
	}
	var rr reloadResponse
	if err := json.Unmarshal(w.Body.Bytes(), &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Version != 2 {
		t.Errorf("version = %d, want 2", rr.Version)
	}
	fail = true
	if w := serveHTTP(srv2, http.MethodPost, "/admin/reload", ""); w.Code != http.StatusInternalServerError {
		t.Errorf("failing reload: status %d, want 500", w.Code)
	}
	if v := srv2.snapshot().version; v != 2 {
		t.Errorf("failed reload moved the snapshot: version %d", v)
	}
	if w := serveHTTP(srv2, http.MethodGet, "/recommend?user=user-2&time=115&k=3", ""); w.Code != http.StatusOK {
		t.Errorf("serving after failed reload: status %d", w.Code)
	}
}

// Reload must reject a broken bundle and keep serving the old one.
func TestReloadRejectsBrokenBundle(t *testing.T) {
	srv, err := New(makeBundle(t, 6, 12))
	if err != nil {
		t.Fatal(err)
	}
	broken := makeBundle(t, 6, 12)
	broken.Items = broken.Items[:3]
	if _, err := srv.Reload(broken); err == nil {
		t.Error("Reload accepted a broken bundle")
	}
	if w := serveHTTP(srv, http.MethodGet, "/recommend?user=user-2&time=115&k=3", ""); w.Code != http.StatusOK {
		t.Errorf("serving after rejected reload: status %d", w.Code)
	}
}

// /readyz is 200 with the current version before any drain.
func TestReadyz(t *testing.T) {
	srv, err := New(makeBundle(t, 6, 12))
	if err != nil {
		t.Fatal(err)
	}
	w := serveHTTP(srv, http.MethodGet, "/readyz", "")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	var rr readyResponse
	if err := json.Unmarshal(w.Body.Bytes(), &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Status != "ready" || rr.Version != 1 {
		t.Errorf("readyz = %+v", rr)
	}
	if srv.Draining() {
		t.Error("Draining() true before StartDrain")
	}
}
