package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"testing"

	"tcam/internal/faultinject"
	"tcam/internal/index"
	"tcam/internal/ingest"
)

// cachedPair builds two servers over the same bundle: one with the
// result cache on, one plain — the reference for bit-identity checks.
func cachedPair(tb testing.TB, b *index.Bundle, opts ...Option) (cached, plain *Server) {
	tb.Helper()
	cached, err := New(b, append([]Option{WithCache(1024)}, opts...)...)
	if err != nil {
		tb.Fatal(err)
	}
	plain, err = New(b)
	if err != nil {
		tb.Fatal(err)
	}
	return cached, plain
}

func healthCache(t *testing.T, srv *Server) *cacheHealthBody {
	t.Helper()
	w := serveHTTP(srv, http.MethodGet, "/healthz", "")
	if w.Code != http.StatusOK {
		t.Fatalf("healthz = %d: %s", w.Code, w.Body.String())
	}
	var resp healthResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp.Cache
}

// TestCacheHitBitIdentical is the tentpole property test: under a
// random workload (users, times, k, exclude lists — including
// duplicates and unknown items) and across two snapshot epochs, every
// response from the cached server must be byte-identical to the
// uncached server's, whether it came from the TA or the cache.
func TestCacheHitBitIdentical(t *testing.T) {
	bundles := []*index.Bundle{makeBundle(t, 6, 12), makeBundle(t, 6, 10)}
	cached, plain := cachedPair(t, bundles[0])
	rng := rand.New(rand.NewSource(7))
	items := []string{"item-0", "item-3", "item-7", "item-9", "item-3", "item-404"}
	for epoch, b := range bundles {
		if epoch > 0 {
			if _, err := cached.Reload(b); err != nil {
				t.Fatal(err)
			}
			if _, err := plain.Reload(b); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 400; i++ {
			target := fmt.Sprintf("/recommend?user=user-%d&time=%d&k=%d",
				rng.Intn(6), 95+rng.Intn(40), 1+rng.Intn(11))
			if n := rng.Intn(4); n > 0 {
				target += "&exclude="
				for j := 0; j < n; j++ {
					if j > 0 {
						target += ","
					}
					target += items[rng.Intn(len(items))]
				}
			}
			want := serveHTTP(plain, http.MethodGet, target, "")
			got := serveHTTP(cached, http.MethodGet, target, "")
			if got.Code != want.Code || got.Body.String() != want.Body.String() {
				t.Fatalf("epoch %d: %s diverged:\ncached: %d %s\nplain:  %d %s",
					epoch+1, target, got.Code, got.Body.String(), want.Code, want.Body.String())
			}
		}
	}
	hc := healthCache(t, cached)
	if hc == nil || hc.Hits == 0 {
		t.Fatalf("workload produced no cache hits: %+v", hc)
	}
	if hc.Epoch != 2 {
		t.Fatalf("cache epoch = %d, want 2", hc.Epoch)
	}
}

// TestBatchCacheBitIdentical repeats the property through the batch
// endpoint, with intra-batch duplicates so hits and misses share one
// request, plus cross-traffic from the single-query endpoint.
func TestBatchCacheBitIdentical(t *testing.T) {
	cached, plain := cachedPair(t, makeBundle(t, 6, 12))
	body := `{"queries":[
		{"user":"user-2","time":115,"k":4},
		{"user":"user-2","time":115,"k":4},
		{"user":"nobody","time":115,"k":4},
		{"user":"user-3","time":115,"k":4,"exclude":["item-1","item-1","item-2"]},
		{"user":"user-3","time":115,"k":4,"exclude":["item-2","item-1"]},
		{"user":"user-2","time":115,"k":5}
	]}`
	// Warm user-2 k=4 through the single endpoint first: single and
	// batch paths must share entries, not shadow each other.
	single := serveHTTP(cached, http.MethodGet, "/recommend?user=user-2&time=115&k=4", "")
	if single.Code != http.StatusOK {
		t.Fatalf("warm query failed: %d", single.Code)
	}
	for round := 0; round < 3; round++ {
		want := serveHTTP(plain, http.MethodPost, "/recommend/batch", body)
		got := serveHTTP(cached, http.MethodPost, "/recommend/batch", body)
		if got.Code != want.Code || got.Body.String() != want.Body.String() {
			t.Fatalf("round %d batch diverged:\ncached: %s\nplain:  %s",
				round, got.Body.String(), want.Body.String())
		}
	}
	hc := healthCache(t, cached)
	if hc.Hits == 0 {
		t.Fatal("batch workload produced no cache hits")
	}
}

// TestCacheEpochInvalidation proves a publish logically flushes the
// cache: an answer cached against the old bundle must never surface
// once a new bundle is live, even for the exact same query.
func TestCacheEpochInvalidation(t *testing.T) {
	oldB, newB := makeBundle(t, 6, 12), makeBundle(t, 6, 10)
	cached, _ := cachedPair(t, oldB)
	ref, err := New(newB)
	if err != nil {
		t.Fatal(err)
	}
	const target = "/recommend?user=user-1&time=115&k=5"
	before := serveHTTP(cached, http.MethodGet, target, "")
	serveHTTP(cached, http.MethodGet, target, "") // ensure it is cached
	if _, err := cached.Reload(newB); err != nil {
		t.Fatal(err)
	}
	after := serveHTTP(cached, http.MethodGet, target, "")
	want := serveHTTP(ref, http.MethodGet, target, "")
	if after.Body.String() != want.Body.String() {
		t.Fatalf("post-publish answer is not the new bundle's:\ngot:  %s\nwant: %s",
			after.Body.String(), want.Body.String())
	}
	if after.Body.String() == before.Body.String() {
		t.Fatal("fixture bundles answer identically; invalidation unproven")
	}
	hc := healthCache(t, cached)
	if hc.Stale == 0 {
		t.Fatalf("stale counter did not move: %+v", hc)
	}
}

// TestConcurrentQueryDuringPublish hammers the cached server from
// reader goroutines while publishes alternate between two bundles
// with different answers. Every response must match one of the two
// uncached references exactly — a cross-epoch cache entry would
// produce a third, mixed answer. Run under -race this also proves the
// cache wiring is data-race free.
func TestConcurrentQueryDuringPublish(t *testing.T) {
	bundleA, bundleB := makeBundle(t, 6, 12), makeBundle(t, 6, 10)
	cached, refA := cachedPair(t, bundleA)
	refB, err := New(bundleB)
	if err != nil {
		t.Fatal(err)
	}
	targets := make([]string, 6)
	wantA := make([]string, len(targets))
	wantB := make([]string, len(targets))
	for u := range targets {
		targets[u] = fmt.Sprintf("/recommend?user=user-%d&time=115&k=5", u)
		wantA[u] = serveHTTP(refA, http.MethodGet, targets[u], "").Body.String()
		wantB[u] = serveHTTP(refB, http.MethodGet, targets[u], "").Body.String()
		if wantA[u] == wantB[u] {
			t.Fatalf("user-%d: fixture bundles agree; cross-epoch mixing would be invisible", u)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan string, 4)
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				u := rng.Intn(len(targets))
				got := serveHTTP(cached, http.MethodGet, targets[u], "").Body.String()
				if got != wantA[u] && got != wantB[u] {
					select {
					case errs <- fmt.Sprintf("user-%d: cross-epoch answer %s", u, got):
					default:
					}
					return
				}
			}
		}(int64(w))
	}
	for i := 0; i < 30; i++ {
		b := bundleA
		if i%2 == 0 {
			b = bundleB
		}
		if _, err := cached.Reload(b); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

// TestPrecomputeWarmsFreshEpoch: after serve traffic concentrates on
// two users, a publish precomputes their default-shaped answers, so
// their first queries on the fresh epoch hit without ever missing.
func TestPrecomputeWarmsFreshEpoch(t *testing.T) {
	b := makeBundle(t, 6, 12)
	srv, err := New(b, WithCache(1024), WithHotPrecompute(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		serveHTTP(srv, http.MethodGet, "/recommend?user=user-1&time=115", "")
		serveHTTP(srv, http.MethodGet, "/recommend?user=user-4&time=115", "")
	}
	serveHTTP(srv, http.MethodGet, "/recommend?user=user-0&time=115", "")
	if _, err := srv.Reload(b); err != nil {
		t.Fatal(err)
	}
	hc := healthCache(t, srv)
	if hc.HotPrecomputed != 2 {
		t.Fatalf("hot_precomputed = %d, want 2", hc.HotPrecomputed)
	}
	misses := hc.Misses
	// The live interval is Grid.Num-1 = 2, i.e. times in [120, 130);
	// k defaults to 10 = PrecomputeK. Both hot users must hit cold.
	for _, u := range []int{1, 4} {
		w := serveHTTP(srv, http.MethodGet, fmt.Sprintf("/recommend?user=user-%d&time=125", u), "")
		if w.Code != http.StatusOK {
			t.Fatalf("user-%d fresh-epoch query = %d", u, w.Code)
		}
	}
	hc = healthCache(t, srv)
	if hc.Misses != misses {
		t.Fatalf("precomputed users missed on the fresh epoch: misses %d → %d", misses, hc.Misses)
	}
	if hc.Hits < 2 {
		t.Fatalf("hits = %d, want ≥ 2", hc.Hits)
	}
}

// TestPrecomputeKilledFallsThrough: a fault in the precompute loop
// aborts warming but must not corrupt the publish — the new epoch
// serves bit-identical answers, cold.
func TestPrecomputeKilledFallsThrough(t *testing.T) {
	b := makeBundle(t, 6, 12)
	srv, err := New(b, WithCache(1024), WithHotPrecompute(4))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		serveHTTP(srv, http.MethodGet, "/recommend?user=user-2&time=115", "")
	}
	faultinject.SetErr("server.precompute", faultinject.ErrorAlways(errors.New("injected: precompute killed")))
	defer faultinject.ClearErr("server.precompute")
	if _, err := srv.Reload(b); err != nil {
		t.Fatalf("a killed precompute must not fail the publish: %v", err)
	}
	hc := healthCache(t, srv)
	if hc.HotPrecomputed != 0 {
		t.Fatalf("hot_precomputed = %d after kill, want 0", hc.HotPrecomputed)
	}
	const target = "/recommend?user=user-2&time=125"
	got := serveHTTP(srv, http.MethodGet, target, "")
	want := serveHTTP(ref, http.MethodGet, target, "")
	if got.Code != http.StatusOK || got.Body.String() != want.Body.String() {
		t.Fatalf("post-kill serving diverged: %d %s", got.Code, got.Body.String())
	}
}

// TestHealthzCacheAbsentWhenDisabled keeps the /healthz contract: no
// cache configured, no cache object.
func TestHealthzCacheAbsentWhenDisabled(t *testing.T) {
	srv, _ := testServer(t)
	if hc := healthCache(t, srv); hc != nil {
		t.Fatalf("cache body present without WithCache: %+v", hc)
	}
}

// TestUpdaterSeedsHotTracker: with zero serve traffic, an ingest
// cycle alone must rank users for precompute — the sketch is seeded
// from the replayed log records.
func TestUpdaterSeedsHotTracker(t *testing.T) {
	dir := t.TempDir()
	boot := makeBundle(t, 6, 12)
	srv, err := New(boot, WithCache(1024), WithHotPrecompute(1))
	if err != nil {
		t.Fatal(err)
	}
	lg, err := ingest.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := UpdaterConfig{Advance: index.DefaultAdvanceConfig()}
	cfg.Advance.FoldIters = 3
	up, err := NewUpdater(srv, lg, boot, cfg)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]ingest.Record, 0, 6)
	for i := 0; i < 5; i++ {
		recs = append(recs, ingest.Record{User: "user-3", Item: "item-1", Time: 125, Score: 1})
	}
	recs = append(recs, ingest.Record{User: "user-0", Item: "item-2", Time: 125, Score: 1})
	if _, err := lg.Append(recs...); err != nil {
		t.Fatal(err)
	}
	published, err := up.Step()
	if err != nil {
		t.Fatal(err)
	}
	if !published {
		t.Fatal("step published nothing")
	}
	hc := healthCache(t, srv)
	if hc.HotPrecomputed != 1 {
		t.Fatalf("hot_precomputed = %d, want 1 (seeded from the log)", hc.HotPrecomputed)
	}
	misses := hc.Misses
	if w := serveHTTP(srv, http.MethodGet, "/recommend?user=user-3&time=125", ""); w.Code != http.StatusOK {
		t.Fatalf("hot user query = %d", w.Code)
	}
	if hc = healthCache(t, srv); hc.Misses != misses || hc.Hits == 0 {
		t.Fatalf("log-seeded hot user missed: %+v", hc)
	}
}
