package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tcam/internal/mat"
)

func TestGammaMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tests := []struct{ shape, rate float64 }{
		{0.5, 1}, {1, 2}, {3, 1}, {9, 3}, {50, 10},
	}
	const n = 30000
	for _, tt := range tests {
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			x := Gamma(rng, tt.shape, tt.rate)
			if x < 0 {
				t.Fatalf("Gamma(%v,%v) produced negative sample %v", tt.shape, tt.rate, x)
			}
			sum += x
			sumSq += x * x
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		wantMean := tt.shape / tt.rate
		wantVar := tt.shape / (tt.rate * tt.rate)
		if math.Abs(mean-wantMean) > 0.05*wantMean+0.01 {
			t.Errorf("Gamma(%v,%v) mean = %v, want ≈%v", tt.shape, tt.rate, mean, wantMean)
		}
		if math.Abs(variance-wantVar) > 0.15*wantVar+0.02 {
			t.Errorf("Gamma(%v,%v) var = %v, want ≈%v", tt.shape, tt.rate, variance, wantVar)
		}
	}
}

func TestGammaPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive shape")
		}
	}()
	Gamma(rand.New(rand.NewSource(1)), 0, 1)
}

func TestBetaRangeAndMean(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		x := Beta(rng, 2, 5)
		if x < 0 || x > 1 {
			t.Fatalf("Beta sample %v outside [0,1]", x)
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-2.0/7) > 0.01 {
		t.Errorf("Beta(2,5) mean = %v, want ≈%v", mean, 2.0/7)
	}
}

func TestDirichletSimplex(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	alpha := []float64{0.5, 2, 1, 4}
	for trial := 0; trial < 50; trial++ {
		p := Dirichlet(rng, alpha)
		if math.Abs(p.Sum()-1) > 1e-9 {
			t.Fatalf("Dirichlet sample sums to %v", p.Sum())
		}
		for _, x := range p {
			if x < 0 {
				t.Fatalf("Dirichlet produced negative coordinate %v", x)
			}
		}
	}
}

func TestSymmetricDirichletConcentration(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Very small alpha concentrates mass on few coordinates; large alpha
	// approaches uniform. Compare entropies.
	hSparse := Entropy(SymmetricDirichlet(rng, 50, 0.01))
	hDense := Entropy(SymmetricDirichlet(rng, 50, 100))
	if hSparse >= hDense {
		t.Errorf("entropy(alpha=0.01)=%v should be below entropy(alpha=100)=%v", hSparse, hDense)
	}
}

func TestPoissonMean(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, mean := range []float64{0.5, 3, 20, 200} {
		const n = 20000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(Poisson(rng, mean))
		}
		got := sum / n
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Errorf("Poisson(%v) mean = %v", mean, got)
		}
	}
	if Poisson(rng, 0) != 0 || Poisson(rng, -1) != 0 {
		t.Error("Poisson with non-positive mean should return 0")
	}
}

func TestCategoricalFrequencies(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	weights := []float64{1, 0, 3, 6}
	counts := make([]int, len(weights))
	const n = 50000
	for i := 0; i < n; i++ {
		counts[Categorical(rng, weights)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight category sampled %d times", counts[1])
	}
	for i, w := range weights {
		want := w / 10
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("category %d frequency = %v, want ≈%v", i, got, want)
		}
	}
}

func TestCategoricalZeroMassUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	counts := make([]int, 4)
	for i := 0; i < 4000; i++ {
		counts[Categorical(rng, []float64{0, 0, 0, 0})]++
	}
	for i, c := range counts {
		if c < 700 {
			t.Errorf("zero-mass fallback category %d drawn only %d/4000 times", i, c)
		}
	}
}

func TestZipf(t *testing.T) {
	p := Zipf(100, 1.0)
	if math.Abs(p.Sum()-1) > 1e-9 {
		t.Fatalf("Zipf sums to %v", p.Sum())
	}
	for i := 1; i < len(p); i++ {
		if p[i] > p[i-1] {
			t.Fatalf("Zipf not monotone at %d", i)
		}
	}
	if math.Abs(p[0]/p[1]-2) > 1e-9 {
		t.Errorf("Zipf(s=1) head ratio = %v, want 2", p[0]/p[1])
	}
}

func TestMultivariateNormalMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	// Covariance [[4,1],[1,2]].
	cov := mat.NewMatrix(2, 2)
	copy(cov.Data, []float64{4, 1, 1, 2})
	l, err := mat.Cholesky(cov)
	if err != nil {
		t.Fatal(err)
	}
	mean := mat.Vector{1, -2}
	const n = 40000
	var m0, m1, c01, v0, v1 float64
	for i := 0; i < n; i++ {
		x := MultivariateNormal(rng, mean, l)
		m0 += x[0]
		m1 += x[1]
		d0, d1 := x[0]-1, x[1]+2
		c01 += d0 * d1
		v0 += d0 * d0
		v1 += d1 * d1
	}
	m0 /= n
	m1 /= n
	if math.Abs(m0-1) > 0.05 || math.Abs(m1+2) > 0.05 {
		t.Errorf("MVN mean = (%v,%v), want (1,-2)", m0, m1)
	}
	if math.Abs(v0/n-4) > 0.2 || math.Abs(v1/n-2) > 0.15 || math.Abs(c01/n-1) > 0.1 {
		t.Errorf("MVN cov = [[%v,%v],[.,%v]], want [[4,1],[1,2]]", v0/n, c01/n, v1/n)
	}
}

func TestWishartExpectation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	// E[W] = df · Scale.
	scale := mat.NewMatrix(2, 2)
	copy(scale.Data, []float64{1, 0.3, 0.3, 0.5})
	l, err := mat.Cholesky(scale)
	if err != nil {
		t.Fatal(err)
	}
	df := 7.0
	sum := mat.NewMatrix(2, 2)
	const n = 5000
	for i := 0; i < n; i++ {
		w := Wishart(rng, df, l)
		sum.AddMatrix(1, w)
	}
	sum.Scale(1.0 / n)
	want := scale.Clone()
	want.Scale(df)
	if d := sum.MaxAbsDiff(want); d > 0.15 {
		t.Errorf("Wishart mean off by %v from df·Scale", d)
	}
}

func TestWishartPanicsBelowDimension(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when df < dimension")
		}
	}()
	Wishart(rand.New(rand.NewSource(1)), 1, mat.Identity(3))
}

func TestSampleWithoutReplacement(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	got := SampleWithoutReplacement(rng, 10, 5)
	if len(got) != 5 {
		t.Fatalf("len = %d, want 5", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if v < 0 || v >= 10 {
			t.Errorf("sample %d out of range", v)
		}
		if seen[v] {
			t.Errorf("duplicate sample %d", v)
		}
		seen[v] = true
	}
}

// Property: Dirichlet samples always lie on the probability simplex for
// any positive concentration vector.
func TestDirichletSimplexProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(dims uint8, conc uint16) bool {
		n := int(dims%20) + 1
		alpha := make([]float64, n)
		for i := range alpha {
			alpha[i] = 0.01 + float64(conc%1000)/100
		}
		p := Dirichlet(rng, alpha)
		if math.Abs(p.Sum()-1) > 1e-9 {
			return false
		}
		for _, x := range p {
			if x < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
