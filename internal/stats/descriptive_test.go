package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanVarianceStdDev(t *testing.T) {
	tests := []struct {
		name     string
		xs       []float64
		mean, sd float64
	}{
		{"empty", nil, 0, 0},
		{"single", []float64{5}, 5, 0},
		{"pair", []float64{2, 4}, 3, 1},
		{"spread", []float64{1, 2, 3, 4, 5}, 3, math.Sqrt(2)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.xs); math.Abs(got-tt.mean) > 1e-12 {
				t.Errorf("Mean = %v, want %v", got, tt.mean)
			}
			if got := StdDev(tt.xs); math.Abs(got-tt.sd) > 1e-12 {
				t.Errorf("StdDev = %v, want %v", got, tt.sd)
			}
		})
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{10, 0, 20, 30, 40} // unsorted on purpose
	tests := []struct{ q, want float64 }{
		{0, 0}, {0.25, 10}, {0.5, 20}, {0.75, 30}, {1, 40}, {0.125, 5},
	}
	for _, tt := range tests {
		if got := Quantile(xs, tt.q); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("Quantile of empty slice should be 0")
	}
	// Input must not be mutated.
	if xs[0] != 10 {
		t.Error("Quantile mutated its input")
	}
}

func TestEntropy(t *testing.T) {
	if got := Entropy([]float64{1, 0, 0}); got != 0 {
		t.Errorf("point-mass entropy = %v, want 0", got)
	}
	if got := Entropy([]float64{0.5, 0.5}); math.Abs(got-math.Ln2) > 1e-12 {
		t.Errorf("fair-coin entropy = %v, want ln2", got)
	}
	// Unnormalized input is renormalized.
	if got := Entropy([]float64{2, 2}); math.Abs(got-math.Ln2) > 1e-12 {
		t.Errorf("unnormalized entropy = %v, want ln2", got)
	}
	if got := Entropy([]float64{0, 0}); got != 0 {
		t.Errorf("zero-mass entropy = %v, want 0", got)
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	tests := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {9, 1},
	}
	for _, tt := range tests {
		if got := e.At(tt.x); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("ECDF.At(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
	xs, ys := e.Table(0, 4, 5)
	if len(xs) != 5 || len(ys) != 5 {
		t.Fatalf("Table lengths = %d,%d", len(xs), len(ys))
	}
	if ys[0] != 0 || ys[4] != 1 {
		t.Errorf("Table endpoints = %v..%v, want 0..1", ys[0], ys[4])
	}
}

// Property: an ECDF is monotone non-decreasing and bounded in [0,1].
func TestECDFMonotoneProperty(t *testing.T) {
	f := func(sample []float64, probes []float64) bool {
		clean := make([]float64, 0, len(sample))
		for _, x := range sample {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		e := NewECDF(clean)
		prev := -1.0
		xs := append([]float64(nil), probes...)
		for i := range xs {
			if math.IsNaN(xs[i]) || math.IsInf(xs[i], 0) {
				xs[i] = 0
			}
		}
		sortFloats(xs)
		for _, x := range xs {
			y := e.At(x)
			if y < prev-1e-12 || y < 0 || y > 1 {
				return false
			}
			prev = y
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
