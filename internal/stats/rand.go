// Package stats provides the probability and statistics substrate for the
// TCAM reproduction: random samplers (Gamma, Beta, Dirichlet, Poisson,
// Zipf, categorical, multivariate Gaussian, Wishart), descriptive
// statistics, empirical CDFs and entropy. Everything is deterministic
// given an explicit *rand.Rand, which the experiment harness seeds so
// every paper artifact regenerates bit-for-bit.
package stats

import (
	"math"
	"math/rand"
	"sort"

	"tcam/internal/mat"
)

// Gamma draws one sample from a Gamma(shape, rate) distribution (mean =
// shape/rate) using the Marsaglia–Tsang method, with the standard boost
// for shape < 1. It panics when shape or rate are not positive.
func Gamma(rng *rand.Rand, shape, rate float64) float64 {
	if shape <= 0 || rate <= 0 {
		panic("stats: Gamma requires positive shape and rate")
	}
	if shape < 1 {
		// Boosting: G(a) = G(a+1) · U^{1/a}.
		u := rng.Float64()
		for u <= 0 {
			u = rng.Float64()
		}
		return Gamma(rng, shape+1, rate) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v / rate
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v / rate
		}
	}
}

// Beta draws one sample from a Beta(a, b) distribution.
func Beta(rng *rand.Rand, a, b float64) float64 {
	x := Gamma(rng, a, 1)
	y := Gamma(rng, b, 1)
	return x / (x + y)
}

// Dirichlet draws one sample from a symmetric-or-not Dirichlet
// distribution with concentration vector alpha. The result sums to one.
func Dirichlet(rng *rand.Rand, alpha []float64) mat.Vector {
	out := mat.NewVector(len(alpha))
	for i, a := range alpha {
		out[i] = Gamma(rng, a, 1)
	}
	out.Normalize()
	return out
}

// SymmetricDirichlet draws a Dirichlet sample of dimension n with every
// concentration parameter equal to alpha.
func SymmetricDirichlet(rng *rand.Rand, n int, alpha float64) mat.Vector {
	out := mat.NewVector(n)
	for i := range out {
		out[i] = Gamma(rng, alpha, 1)
	}
	out.Normalize()
	return out
}

// Poisson draws one sample from a Poisson distribution with the given
// mean, using Knuth's method for small means and a normal approximation
// (rounded, clamped at zero) for large ones.
func Poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		n := int(math.Round(mean + math.Sqrt(mean)*rng.NormFloat64()))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Categorical draws an index in [0, len(weights)) with probability
// proportional to weights[i]. Weights need not be normalized; negative
// weights are treated as zero. When the total mass is zero it returns a
// uniform draw.
func Categorical(rng *rand.Rand, weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return rng.Intn(len(weights))
	}
	u := rng.Float64() * total
	var cum float64
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		cum += w
		if u < cum {
			return i
		}
	}
	return len(weights) - 1
}

// Zipf returns an n-element probability vector p[i] ∝ 1/(i+1)^s, the
// standard popularity skew for social-media item catalogs.
func Zipf(n int, s float64) mat.Vector {
	p := mat.NewVector(n)
	for i := range p {
		p[i] = 1 / math.Pow(float64(i+1), s)
	}
	p.Normalize()
	return p
}

// MultivariateNormal draws one sample from N(mean, covChol·covCholᵀ)
// where covChol is the lower Cholesky factor of the covariance matrix.
func MultivariateNormal(rng *rand.Rand, mean mat.Vector, covChol *mat.Matrix) mat.Vector {
	n := len(mean)
	z := mat.NewVector(n)
	for i := range z {
		z[i] = rng.NormFloat64()
	}
	out := mean.Clone()
	for i := 0; i < n; i++ {
		row := covChol.Row(i)
		var s float64
		for k := 0; k <= i; k++ {
			s += row[k] * z[k]
		}
		out[i] += s
	}
	return out
}

// Wishart draws one sample from a Wishart distribution with the given
// degrees of freedom and scale matrix, using the Bartlett decomposition.
// scaleChol is the lower Cholesky factor of the scale matrix. The degrees
// of freedom must be at least the dimension.
func Wishart(rng *rand.Rand, df float64, scaleChol *mat.Matrix) *mat.Matrix {
	n := scaleChol.Rows
	if df < float64(n) {
		panic("stats: Wishart degrees of freedom below dimension")
	}
	// Bartlett: A lower-triangular with A(i,i) ~ sqrt(chi2(df-i)) and
	// A(i,j) ~ N(0,1) for j < i. Then W = L·A·Aᵀ·Lᵀ.
	a := mat.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, math.Sqrt(ChiSquared(rng, df-float64(i))))
		for j := 0; j < i; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
	}
	la := scaleChol.Mul(a)
	w := la.Mul(la.T())
	w.SymmetrizeUpper()
	return w
}

// ChiSquared draws one sample from a chi-squared distribution with k
// degrees of freedom (k need not be an integer).
func ChiSquared(rng *rand.Rand, k float64) float64 {
	return Gamma(rng, k/2, 0.5)
}

// Shuffle permutes the first n integers and returns them, a convenience
// wrapper used by the fold splitters.
func Shuffle(rng *rand.Rand, n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	rng.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	return idx
}

// SampleWithoutReplacement returns k distinct integers drawn uniformly
// from [0, n). It panics when k > n.
func SampleWithoutReplacement(rng *rand.Rand, n, k int) []int {
	if k > n {
		panic("stats: sample size exceeds population")
	}
	idx := Shuffle(rng, n)[:k]
	out := make([]int, k)
	copy(out, idx)
	sort.Ints(out)
	return out
}
