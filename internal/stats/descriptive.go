package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than two
// samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Entropy returns the Shannon entropy (natural log) of a probability
// vector. Zero entries contribute zero; the vector need not be exactly
// normalized — it is renormalized internally.
func Entropy(p []float64) float64 {
	var total float64
	for _, x := range p {
		if x > 0 {
			total += x
		}
	}
	if total <= 0 {
		return 0
	}
	var h float64
	for _, x := range p {
		if x <= 0 {
			continue
		}
		q := x / total
		h -= q * math.Log(q)
	}
	return h
}

// ECDF is an empirical cumulative distribution function over a fixed
// sample, supporting both evaluation and tabulation.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from a sample. The input is copied.
func NewECDF(sample []float64) *ECDF {
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// At returns P(X ≤ x) under the empirical distribution.
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	n := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(n) / float64(len(e.sorted))
}

// Len returns the sample size behind the ECDF.
func (e *ECDF) Len() int { return len(e.sorted) }

// Table evaluates the ECDF on a uniform grid of points spanning [lo, hi]
// and returns (xs, ys), the series form used by the figure drivers.
func (e *ECDF) Table(lo, hi float64, points int) (xs, ys []float64) {
	if points < 2 {
		points = 2
	}
	xs = make([]float64, points)
	ys = make([]float64, points)
	step := (hi - lo) / float64(points-1)
	for i := range xs {
		xs[i] = lo + float64(i)*step
		ys[i] = e.At(xs[i])
	}
	return xs, ys
}
