package dataset

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"

	"tcam/internal/atomicfile"
)

// jsonlRecord is the on-disk JSONL representation of one interaction,
// with string identifiers so logs are self-describing.
type jsonlRecord struct {
	User  string  `json:"user"`
	Item  string  `json:"item"`
	Time  int64   `json:"time"`
	Score float64 `json:"score"`
}

// WriteJSONL streams the log to w as one JSON object per line.
func (d *Interactions) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range d.events {
		rec := jsonlRecord{User: d.userIDs[e.User], Item: d.itemIDs[e.Item], Time: e.Time, Score: e.Score}
		if err := enc.Encode(&rec); err != nil {
			return fmt.Errorf("dataset: write jsonl: %w", err)
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a log produced by WriteJSONL (or any conforming JSONL
// stream). Malformed lines abort with an error naming the line number.
func ReadJSONL(r io.Reader) (*Interactions, error) {
	d := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec jsonlRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("dataset: jsonl line %d: %w", line, err)
		}
		if rec.User == "" || rec.Item == "" {
			return nil, fmt.Errorf("dataset: jsonl line %d: empty user or item", line)
		}
		if err := d.Add(rec.User, rec.Item, rec.Time, rec.Score); err != nil {
			return nil, fmt.Errorf("dataset: jsonl line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: read jsonl: %w", err)
	}
	return d, nil
}

// WriteCSV streams the log to w as "user,item,time,score" rows with a
// header.
func (d *Interactions) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"user", "item", "time", "score"}); err != nil {
		return fmt.Errorf("dataset: write csv header: %w", err)
	}
	for _, e := range d.events {
		row := []string{
			d.userIDs[e.User],
			d.itemIDs[e.Item],
			strconv.FormatInt(e.Time, 10),
			strconv.FormatFloat(e.Score, 'g', -1, 64),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("dataset: write csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a log produced by WriteCSV. The header row is required.
func ReadCSV(r io.Reader) (*Interactions, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 4
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: read csv header: %w", err)
	}
	if header[0] != "user" || header[1] != "item" || header[2] != "time" || header[3] != "score" {
		return nil, fmt.Errorf("dataset: unexpected csv header %v", header)
	}
	d := New()
	for {
		row, err := cr.Read()
		if err == io.EOF {
			return d, nil
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: read csv: %w", err)
		}
		t, err := strconv.ParseInt(row[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: csv time %q: %w", row[2], err)
		}
		score, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: csv score %q: %w", row[3], err)
		}
		if err := d.Add(row[0], row[1], t, score); err != nil {
			return nil, err
		}
	}
}

// SaveJSONLFile writes the log to path crash-safely (temp file in the
// same directory, sync, rename), so an interrupted save never corrupts
// an existing log.
func (d *Interactions) SaveJSONLFile(path string) error {
	return atomicfile.Write(path, d.WriteJSONL)
}

// AppendJSONLFile appends events[from:] to path without rewriting the
// existing contents, so a long-lived producer can emit a growing log
// incrementally instead of atomically replacing the whole file per
// flush. It returns the new high-water mark (NumEvents) to pass as from
// on the next call:
//
//	n, _ := d.AppendJSONLFile(path, n) // flush everything added since last flush
//
// Each call lands as a single O_APPEND write, so concurrent appenders
// to one file interleave at line granularity, never mid-record. Unlike
// SaveJSONLFile this is not crash-atomic — a torn final line is the
// crash signature — which is the trade for never rewriting; readers
// needing crash-safe framing should consume an ingest.Log instead.
func (d *Interactions) AppendJSONLFile(path string, from int) (int, error) {
	n := len(d.events)
	if from < 0 || from > n {
		return from, fmt.Errorf("dataset: append from %d outside [0, %d]", from, n)
	}
	if from == n {
		return n, nil
	}
	err := atomicfile.Append(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		for _, e := range d.events[from:n] {
			rec := jsonlRecord{User: d.userIDs[e.User], Item: d.itemIDs[e.Item], Time: e.Time, Score: e.Score}
			if err := enc.Encode(&rec); err != nil {
				return fmt.Errorf("dataset: append jsonl: %w", err)
			}
		}
		return nil
	})
	if err != nil {
		return from, err
	}
	return n, nil
}

// LoadJSONLFile reads a log from path.
func LoadJSONLFile(path string) (*Interactions, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	//tcamvet:ignore errcheck close error on a read-only file carries no signal
	defer f.Close()
	return ReadJSONL(f)
}
