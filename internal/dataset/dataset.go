// Package dataset provides the ingestion layer between raw social-media
// interaction logs and the rating cuboid: string-ID interning, time
// gridding at a configurable interval length (the paper's Section 5.3.3
// sweeps this), JSONL/CSV persistence, and the evaluation protocol's
// per-(user, interval) train/test splits and k-fold cross validation
// (Section 5.3.1).
package dataset

import (
	"fmt"
	"math/rand"
	"sort"

	"tcam/internal/cuboid"
)

// Event is one raw interaction: a user acted on an item at an absolute
// time (ticks; the unit is up to the producer — the synthetic generators
// use days) with a rating score.
type Event struct {
	User  int     `json:"user"`
	Item  int     `json:"item"`
	Time  int64   `json:"time"`
	Score float64 `json:"score"`
}

// Interactions is an interaction log with interned user and item
// identifiers. The zero value is not usable; construct with New.
type Interactions struct {
	userIDs  []string
	itemIDs  []string
	userIdx  map[string]int
	itemIdx  map[string]int
	events   []Event
	timeSpan bool
	minTime  int64
	maxTime  int64
}

// New returns an empty interaction log.
func New() *Interactions {
	return &Interactions{
		userIdx: make(map[string]int),
		itemIdx: make(map[string]int),
	}
}

// InternUser returns the dense index for userID, assigning one on first
// sight.
func (d *Interactions) InternUser(userID string) int {
	if i, ok := d.userIdx[userID]; ok {
		return i
	}
	i := len(d.userIDs)
	d.userIDs = append(d.userIDs, userID)
	d.userIdx[userID] = i
	return i
}

// InternItem returns the dense index for itemID, assigning one on first
// sight.
func (d *Interactions) InternItem(itemID string) int {
	if i, ok := d.itemIdx[itemID]; ok {
		return i
	}
	i := len(d.itemIDs)
	d.itemIDs = append(d.itemIDs, itemID)
	d.itemIdx[itemID] = i
	return i
}

// Add records an interaction by string identifiers. Scores must be
// positive.
func (d *Interactions) Add(userID, itemID string, time int64, score float64) error {
	if score <= 0 {
		return fmt.Errorf("dataset: non-positive score %v for %s/%s", score, userID, itemID)
	}
	d.addEvent(Event{User: d.InternUser(userID), Item: d.InternItem(itemID), Time: time, Score: score})
	return nil
}

func (d *Interactions) addEvent(e Event) {
	if !d.timeSpan {
		d.minTime, d.maxTime, d.timeSpan = e.Time, e.Time, true
	} else {
		if e.Time < d.minTime {
			d.minTime = e.Time
		}
		if e.Time > d.maxTime {
			d.maxTime = e.Time
		}
	}
	d.events = append(d.events, e)
}

// NumUsers returns the number of interned users.
func (d *Interactions) NumUsers() int { return len(d.userIDs) }

// NumItems returns the number of interned items.
func (d *Interactions) NumItems() int { return len(d.itemIDs) }

// NumEvents returns the number of recorded interactions.
func (d *Interactions) NumEvents() int { return len(d.events) }

// Events returns the raw event slice in insertion order. Callers must
// not modify it.
func (d *Interactions) Events() []Event { return d.events }

// UserID returns the string identifier of dense user index u.
func (d *Interactions) UserID(u int) string { return d.userIDs[u] }

// ItemID returns the string identifier of dense item index v.
func (d *Interactions) ItemID(v int) string { return d.itemIDs[v] }

// LookupItem returns the dense index of itemID and whether it is known.
func (d *Interactions) LookupItem(itemID string) (int, bool) {
	i, ok := d.itemIdx[itemID]
	return i, ok
}

// LookupUser returns the dense index of userID and whether it is known.
func (d *Interactions) LookupUser(userID string) (int, bool) {
	i, ok := d.userIdx[userID]
	return i, ok
}

// TimeSpan returns the [min, max] event times. ok is false when the log
// is empty.
func (d *Interactions) TimeSpan() (min, max int64, ok bool) {
	return d.minTime, d.maxTime, d.timeSpan
}

// TimeGrid maps absolute event times onto dense interval indices of a
// fixed length. It is produced by Grid and persisted alongside models so
// online queries can translate wall-clock time into an interval.
type TimeGrid struct {
	Origin int64 // time of the left edge of interval 0
	Length int64 // interval length in time ticks
	Num    int   // number of intervals
}

// IntervalOf returns the interval index containing time, clamped into
// [0, Num).
func (g TimeGrid) IntervalOf(time int64) int {
	if g.Length <= 0 || g.Num <= 0 {
		return 0
	}
	i := int((time - g.Origin) / g.Length)
	if i < 0 {
		return 0
	}
	if i >= g.Num {
		return g.Num - 1
	}
	return i
}

// Grid buckets the log's events into intervals of the given length and
// returns the resulting rating cuboid plus the grid. Scores of repeated
// (user, interval, item) interactions accumulate, matching the paper's
// frequency-as-score convention. intervalLen must be positive and the
// log non-empty.
func (d *Interactions) Grid(intervalLen int64) (*cuboid.Cuboid, TimeGrid, error) {
	if intervalLen <= 0 {
		return nil, TimeGrid{}, fmt.Errorf("dataset: non-positive interval length %d", intervalLen)
	}
	if len(d.events) == 0 {
		return nil, TimeGrid{}, fmt.Errorf("dataset: cannot grid an empty log")
	}
	num := int((d.maxTime-d.minTime)/intervalLen) + 1
	grid := TimeGrid{Origin: d.minTime, Length: intervalLen, Num: num}
	b := cuboid.NewBuilder(len(d.userIDs), num, len(d.itemIDs))
	for _, e := range d.events {
		if err := b.Add(e.User, grid.IntervalOf(e.Time), e.Item, e.Score); err != nil {
			return nil, TimeGrid{}, err
		}
	}
	return b.Build(), grid, nil
}

// Split holds a train/test partition of a cuboid under the paper's
// protocol: within every (user, interval) group the user's items are
// split randomly, so the test set asks "which of the items u rated in t
// were held out".
type Split struct {
	Train *cuboid.Cuboid
	Test  *cuboid.Cuboid
}

// SplitPerInterval partitions c into train/test with the given test
// fraction inside every (user, interval) group, as in Section 5.3.1
// (80%/20% in the paper). Groups too small to yield a test item stay
// fully in train. The split is deterministic for a given rng state.
func SplitPerInterval(rng *rand.Rand, c *cuboid.Cuboid, testFrac float64) Split {
	if testFrac < 0 || testFrac >= 1 {
		panic(fmt.Sprintf("dataset: test fraction %v outside [0,1)", testFrac))
	}
	inTest := make([]bool, c.NNZ())
	forEachGroup(c, func(lo, hi int) {
		n := hi - lo
		k := int(float64(n) * testFrac)
		if k == 0 {
			return
		}
		perm := rng.Perm(n)
		for i := 0; i < k; i++ {
			inTest[lo+perm[i]] = true
		}
	})
	return splitByFlag(c, inTest)
}

func splitByFlag(c *cuboid.Cuboid, inTest []bool) Split {
	cells := c.Cells()
	trainB := cuboid.NewBuilder(c.NumUsers(), c.NumIntervals(), c.NumItems())
	testB := cuboid.NewBuilder(c.NumUsers(), c.NumIntervals(), c.NumItems())
	for i, cell := range cells {
		dst := trainB
		if inTest[i] {
			dst = testB
		}
		dst.MustAdd(int(cell.U), int(cell.T), int(cell.V), cell.Score)
	}
	return Split{Train: trainB.Build(), Test: testB.Build()}
}

// forEachGroup invokes fn once per (user, interval) group with the
// group's cell-index range [lo, hi). Cells() is sorted by (U, T, V), so
// every group is a contiguous run of the CSR row for its user.
func forEachGroup(c *cuboid.Cuboid, fn func(lo, hi int)) {
	ts, _, _ := c.CSR()
	for u := 0; u < c.NumUsers(); u++ {
		ulo, uhi := c.UserSpan(u)
		start := ulo
		for i := ulo + 1; i <= uhi; i++ {
			if i == uhi || ts[i] != ts[start] {
				fn(start, i)
				start = i
			}
		}
	}
}

// KFolds returns a k-fold cross-validation partition of c under the
// per-(user, interval) protocol: each group's items are dealt round-robin
// (after a shuffle) into k folds; fold i's Test is its share and Train is
// everything else. Groups with fewer than k items contribute test cells
// to only some folds. k must be at least 2.
func KFolds(rng *rand.Rand, c *cuboid.Cuboid, k int) []Split {
	if k < 2 {
		panic("dataset: k-fold requires k >= 2")
	}
	fold := make([]int, c.NNZ())
	forEachGroup(c, func(lo, hi int) {
		perm := rng.Perm(hi - lo)
		for i, p := range perm {
			fold[lo+p] = i % k
		}
	})
	splits := make([]Split, k)
	for f := 0; f < k; f++ {
		inTest := make([]bool, c.NNZ())
		for i := range inTest {
			inTest[i] = fold[i] == f
		}
		splits[f] = splitByFlag(c, inTest)
	}
	return splits
}

// SortedItemIDs returns all interned item identifiers, sorted — a
// stable vocabulary listing used by reports and tests.
func (d *Interactions) SortedItemIDs() []string {
	out := append([]string(nil), d.itemIDs...)
	sort.Strings(out)
	return out
}
