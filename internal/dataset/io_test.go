package dataset

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestJSONLRoundtrip(t *testing.T) {
	d := sampleLog(t)
	var buf bytes.Buffer
	if err := d.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameLog(t, d, got)
}

func TestCSVRoundtrip(t *testing.T) {
	d := sampleLog(t)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameLog(t, d, got)
}

func assertSameLog(t *testing.T, want, got *Interactions) {
	t.Helper()
	if got.NumUsers() != want.NumUsers() || got.NumItems() != want.NumItems() || got.NumEvents() != want.NumEvents() {
		t.Fatalf("roundtrip counts = (%d,%d,%d), want (%d,%d,%d)",
			got.NumUsers(), got.NumItems(), got.NumEvents(),
			want.NumUsers(), want.NumItems(), want.NumEvents())
	}
	for i, e := range want.Events() {
		g := got.Events()[i]
		if want.UserID(e.User) != got.UserID(g.User) || want.ItemID(e.Item) != got.ItemID(g.Item) ||
			e.Time != g.Time || e.Score != g.Score {
			t.Fatalf("event %d differs: %+v vs %+v", i, e, g)
		}
	}
}

func TestReadJSONLErrors(t *testing.T) {
	tests := []struct {
		name  string
		input string
	}{
		{"malformed json", "{not json\n"},
		{"empty user", `{"user":"","item":"x","time":1,"score":1}` + "\n"},
		{"bad score", `{"user":"u","item":"x","time":1,"score":0}` + "\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadJSONL(strings.NewReader(tt.input)); err == nil {
				t.Error("ReadJSONL accepted malformed input")
			}
		})
	}
	// Blank lines are tolerated.
	d, err := ReadJSONL(strings.NewReader("\n" + `{"user":"u","item":"x","time":1,"score":1}` + "\n\n"))
	if err != nil || d.NumEvents() != 1 {
		t.Errorf("blank-line tolerance: events=%d err=%v", d.NumEvents(), err)
	}
}

func TestReadCSVErrors(t *testing.T) {
	tests := []struct {
		name  string
		input string
	}{
		{"wrong header", "a,b,c,d\n"},
		{"bad time", "user,item,time,score\nu,x,zzz,1\n"},
		{"bad score", "user,item,time,score\nu,x,1,abc\n"},
		{"zero score", "user,item,time,score\nu,x,1,0\n"},
		{"empty", ""},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(tt.input)); err == nil {
				t.Error("ReadCSV accepted malformed input")
			}
		})
	}
}

func TestJSONLFileRoundtrip(t *testing.T) {
	d := sampleLog(t)
	path := filepath.Join(t.TempDir(), "log.jsonl")
	if err := d.SaveJSONLFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadJSONLFile(path)
	if err != nil {
		t.Fatal(err)
	}
	assertSameLog(t, d, got)
	if _, err := LoadJSONLFile(filepath.Join(t.TempDir(), "missing.jsonl")); err == nil {
		t.Error("LoadJSONLFile accepted a missing file")
	}
}

// TestAppendJSONLFile: incremental flushes of a growing log accumulate
// into the same file SaveJSONLFile would have written whole.
func TestAppendJSONLFile(t *testing.T) {
	d := sampleLog(t)
	path := filepath.Join(t.TempDir(), "log.jsonl")

	mark, err := d.AppendJSONLFile(path, 0)
	if err != nil || mark != d.NumEvents() {
		t.Fatalf("AppendJSONLFile = (%d, %v), want (%d, nil)", mark, err, d.NumEvents())
	}
	// Nothing new: a no-op, file untouched.
	if mark, err = d.AppendJSONLFile(path, mark); err != nil || mark != d.NumEvents() {
		t.Fatalf("no-op append = (%d, %v)", mark, err)
	}
	// The producer keeps logging; only the suffix is written.
	if err := d.Add("late-user", "late-item", 99, 2); err != nil {
		t.Fatal(err)
	}
	if mark, err = d.AppendJSONLFile(path, mark); err != nil || mark != d.NumEvents() {
		t.Fatalf("suffix append = (%d, %v)", mark, err)
	}

	got, err := LoadJSONLFile(path)
	if err != nil {
		t.Fatal(err)
	}
	assertSameLog(t, d, got)

	// Out-of-range marks are rejected rather than silently clamped.
	if _, err := d.AppendJSONLFile(path, -1); err == nil {
		t.Error("negative from accepted")
	}
	if _, err := d.AppendJSONLFile(path, d.NumEvents()+1); err == nil {
		t.Error("from past the end accepted")
	}
}

// TestAppendJSONLFileConcurrent: several producers appending to one
// file interleave at line granularity — every record survives intact
// and the merged log parses cleanly.
func TestAppendJSONLFileConcurrent(t *testing.T) {
	const producers, perProducer = 8, 25
	path := filepath.Join(t.TempDir(), "log.jsonl")

	var wg sync.WaitGroup
	errs := make([]error, producers)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			d := New()
			mark := 0
			for i := 0; i < perProducer; i++ {
				user := fmt.Sprintf("user-%d", p)
				item := fmt.Sprintf("item-%d-%d", p, i)
				if err := d.Add(user, item, int64(i), float64(p+1)); err != nil {
					errs[p] = err
					return
				}
				// Flush every few events so appends from different
				// producers genuinely interleave.
				if i%3 == 2 {
					var err error
					if mark, err = d.AppendJSONLFile(path, mark); err != nil {
						errs[p] = err
						return
					}
				}
			}
			if _, err := d.AppendJSONLFile(path, mark); err != nil {
				errs[p] = err
			}
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			t.Fatalf("producer %d: %v", p, err)
		}
	}

	got, err := LoadJSONLFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumEvents() != producers*perProducer {
		t.Fatalf("merged log has %d events, want %d", got.NumEvents(), producers*perProducer)
	}
	perUser := make(map[string]int)
	for _, e := range got.Events() {
		perUser[got.UserID(e.User)]++
	}
	for p := 0; p < producers; p++ {
		if n := perUser[fmt.Sprintf("user-%d", p)]; n != perProducer {
			t.Errorf("user-%d has %d events, want %d", p, n, perProducer)
		}
	}
}
