package dataset

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestJSONLRoundtrip(t *testing.T) {
	d := sampleLog(t)
	var buf bytes.Buffer
	if err := d.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameLog(t, d, got)
}

func TestCSVRoundtrip(t *testing.T) {
	d := sampleLog(t)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameLog(t, d, got)
}

func assertSameLog(t *testing.T, want, got *Interactions) {
	t.Helper()
	if got.NumUsers() != want.NumUsers() || got.NumItems() != want.NumItems() || got.NumEvents() != want.NumEvents() {
		t.Fatalf("roundtrip counts = (%d,%d,%d), want (%d,%d,%d)",
			got.NumUsers(), got.NumItems(), got.NumEvents(),
			want.NumUsers(), want.NumItems(), want.NumEvents())
	}
	for i, e := range want.Events() {
		g := got.Events()[i]
		if want.UserID(e.User) != got.UserID(g.User) || want.ItemID(e.Item) != got.ItemID(g.Item) ||
			e.Time != g.Time || e.Score != g.Score {
			t.Fatalf("event %d differs: %+v vs %+v", i, e, g)
		}
	}
}

func TestReadJSONLErrors(t *testing.T) {
	tests := []struct {
		name  string
		input string
	}{
		{"malformed json", "{not json\n"},
		{"empty user", `{"user":"","item":"x","time":1,"score":1}` + "\n"},
		{"bad score", `{"user":"u","item":"x","time":1,"score":0}` + "\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadJSONL(strings.NewReader(tt.input)); err == nil {
				t.Error("ReadJSONL accepted malformed input")
			}
		})
	}
	// Blank lines are tolerated.
	d, err := ReadJSONL(strings.NewReader("\n" + `{"user":"u","item":"x","time":1,"score":1}` + "\n\n"))
	if err != nil || d.NumEvents() != 1 {
		t.Errorf("blank-line tolerance: events=%d err=%v", d.NumEvents(), err)
	}
}

func TestReadCSVErrors(t *testing.T) {
	tests := []struct {
		name  string
		input string
	}{
		{"wrong header", "a,b,c,d\n"},
		{"bad time", "user,item,time,score\nu,x,zzz,1\n"},
		{"bad score", "user,item,time,score\nu,x,1,abc\n"},
		{"zero score", "user,item,time,score\nu,x,1,0\n"},
		{"empty", ""},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(tt.input)); err == nil {
				t.Error("ReadCSV accepted malformed input")
			}
		})
	}
}

func TestJSONLFileRoundtrip(t *testing.T) {
	d := sampleLog(t)
	path := filepath.Join(t.TempDir(), "log.jsonl")
	if err := d.SaveJSONLFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadJSONLFile(path)
	if err != nil {
		t.Fatal(err)
	}
	assertSameLog(t, d, got)
	if _, err := LoadJSONLFile(filepath.Join(t.TempDir(), "missing.jsonl")); err == nil {
		t.Error("LoadJSONLFile accepted a missing file")
	}
}
