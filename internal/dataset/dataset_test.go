package dataset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"tcam/internal/cuboid"
)

func sampleLog(t *testing.T) *Interactions {
	t.Helper()
	d := New()
	add := func(u, v string, tm int64) {
		t.Helper()
		if err := d.Add(u, v, tm, 1); err != nil {
			t.Fatal(err)
		}
	}
	add("alice", "flu", 0)
	add("alice", "news", 5)
	add("bob", "flu", 12)
	add("bob", "news", 12)
	add("carol", "swineflu", 25)
	add("alice", "flu", 25) // second rating by alice on flu, later interval
	return d
}

func TestInterning(t *testing.T) {
	d := sampleLog(t)
	if d.NumUsers() != 3 || d.NumItems() != 3 || d.NumEvents() != 6 {
		t.Fatalf("counts = (%d,%d,%d), want (3,3,6)", d.NumUsers(), d.NumItems(), d.NumEvents())
	}
	if d.UserID(0) != "alice" || d.ItemID(2) != "swineflu" {
		t.Error("interning order not insertion order")
	}
	if i, ok := d.LookupItem("news"); !ok || i != 1 {
		t.Errorf("LookupItem(news) = (%d,%v)", i, ok)
	}
	if _, ok := d.LookupUser("mallory"); ok {
		t.Error("LookupUser found an unknown user")
	}
	if got := d.SortedItemIDs(); !reflect.DeepEqual(got, []string{"flu", "news", "swineflu"}) {
		t.Errorf("SortedItemIDs = %v", got)
	}
}

func TestAddRejectsNonPositiveScore(t *testing.T) {
	d := New()
	if err := d.Add("u", "v", 0, 0); err == nil {
		t.Error("Add accepted zero score")
	}
	if err := d.Add("u", "v", 0, -1); err == nil {
		t.Error("Add accepted negative score")
	}
}

func TestTimeSpan(t *testing.T) {
	d := sampleLog(t)
	min, max, ok := d.TimeSpan()
	if !ok || min != 0 || max != 25 {
		t.Errorf("TimeSpan = (%d,%d,%v), want (0,25,true)", min, max, ok)
	}
	if _, _, ok := New().TimeSpan(); ok {
		t.Error("empty log reports a time span")
	}
}

func TestGrid(t *testing.T) {
	d := sampleLog(t)
	c, grid, err := d.Grid(10)
	if err != nil {
		t.Fatal(err)
	}
	if grid.Num != 3 {
		t.Fatalf("grid.Num = %d, want 3 (times 0..25, length 10)", grid.Num)
	}
	if c.NumIntervals() != 3 || c.NumUsers() != 3 || c.NumItems() != 3 {
		t.Fatalf("cuboid dims = %dx%dx%d", c.NumUsers(), c.NumIntervals(), c.NumItems())
	}
	// alice/flu: once in interval 0 and once in interval 2 — two cells.
	if got := c.ItemsOf(0, 0); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("alice interval-0 items = %v, want [0 1]", got)
	}
	if got := c.ItemsOf(0, 2); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("alice interval-2 items = %v, want [0]", got)
	}
}

func TestGridErrors(t *testing.T) {
	if _, _, err := New().Grid(10); err == nil {
		t.Error("Grid accepted an empty log")
	}
	d := sampleLog(t)
	if _, _, err := d.Grid(0); err == nil {
		t.Error("Grid accepted zero interval length")
	}
}

func TestIntervalOfClamps(t *testing.T) {
	g := TimeGrid{Origin: 100, Length: 10, Num: 5}
	tests := []struct {
		time int64
		want int
	}{
		{100, 0}, {109, 0}, {110, 1}, {149, 4}, {999, 4}, {50, 0},
	}
	for _, tt := range tests {
		if got := g.IntervalOf(tt.time); got != tt.want {
			t.Errorf("IntervalOf(%d) = %d, want %d", tt.time, got, tt.want)
		}
	}
	if (TimeGrid{}).IntervalOf(5) != 0 {
		t.Error("zero grid should clamp to 0")
	}
}

func TestSplitPerInterval(t *testing.T) {
	// A user with 10 items in one interval: expect exactly 2 in test at
	// 20%.
	b := cuboid.NewBuilder(1, 1, 10)
	for v := 0; v < 10; v++ {
		b.MustAdd(0, 0, v, 1)
	}
	c := b.Build()
	sp := SplitPerInterval(rand.New(rand.NewSource(1)), c, 0.2)
	if sp.Test.NNZ() != 2 || sp.Train.NNZ() != 8 {
		t.Errorf("split sizes = train %d / test %d, want 8/2", sp.Train.NNZ(), sp.Test.NNZ())
	}
}

func TestSplitSmallGroupsStayInTrain(t *testing.T) {
	b := cuboid.NewBuilder(2, 2, 3)
	b.MustAdd(0, 0, 0, 1) // singleton groups
	b.MustAdd(0, 1, 1, 1)
	b.MustAdd(1, 0, 2, 1)
	c := b.Build()
	sp := SplitPerInterval(rand.New(rand.NewSource(1)), c, 0.2)
	if sp.Test.NNZ() != 0 || sp.Train.NNZ() != 3 {
		t.Errorf("singleton groups leaked into test: train %d / test %d", sp.Train.NNZ(), sp.Test.NNZ())
	}
}

func TestSplitPanicsOnBadFraction(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for testFrac = 1")
		}
	}()
	b := cuboid.NewBuilder(1, 1, 1)
	b.MustAdd(0, 0, 0, 1)
	SplitPerInterval(rand.New(rand.NewSource(1)), b.Build(), 1)
}

func TestKFoldsPartition(t *testing.T) {
	b := cuboid.NewBuilder(3, 2, 12)
	rng := rand.New(rand.NewSource(9))
	for u := 0; u < 3; u++ {
		for tt := 0; tt < 2; tt++ {
			for v := 0; v < 12; v++ {
				if rng.Float64() < 0.7 {
					b.MustAdd(u, tt, v, 1)
				}
			}
		}
	}
	c := b.Build()
	folds := KFolds(rand.New(rand.NewSource(2)), c, 5)
	if len(folds) != 5 {
		t.Fatalf("len(folds) = %d", len(folds))
	}
	totalTest := 0
	for i, f := range folds {
		if f.Train.NNZ()+f.Test.NNZ() != c.NNZ() {
			t.Errorf("fold %d does not partition: %d + %d != %d", i, f.Train.NNZ(), f.Test.NNZ(), c.NNZ())
		}
		totalTest += f.Test.NNZ()
	}
	// Every cell lands in test exactly once across the k folds.
	if totalTest != c.NNZ() {
		t.Errorf("test cells across folds = %d, want %d", totalTest, c.NNZ())
	}
}

func TestKFoldsPanicsOnK1(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k = 1")
		}
	}()
	b := cuboid.NewBuilder(1, 1, 1)
	b.MustAdd(0, 0, 0, 1)
	KFolds(rand.New(rand.NewSource(1)), b.Build(), 1)
}

// Property: every split preserves cell multiset and never puts a
// (u,t,v) cell in both halves.
func TestSplitPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := cuboid.NewBuilder(5, 4, 8)
		for i := 0; i < 90; i++ {
			b.MustAdd(r.Intn(5), r.Intn(4), r.Intn(8), 1)
		}
		c := b.Build()
		sp := SplitPerInterval(r, c, 0.25)
		if sp.Train.NNZ()+sp.Test.NNZ() != c.NNZ() {
			return false
		}
		// No overlap: a (u,t,v) present in test must be absent in train.
		seen := map[[3]int32]bool{}
		for _, cell := range sp.Test.Cells() {
			seen[[3]int32{cell.U, cell.T, cell.V}] = true
		}
		for _, cell := range sp.Train.Cells() {
			if seen[[3]int32{cell.U, cell.T, cell.V}] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
