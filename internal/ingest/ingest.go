// Package ingest is the append-only, crash-safe event log that feeds
// the streaming fold-in loop. Interactions arrive as Records, are
// framed with a CRC and appended durably to segment files, and are
// replayed in exactly the order they were appended — the log, not the
// in-memory model, is the source of truth for everything learned after
// the boot bundle was trained.
//
// Layout: a log is a directory of segment files named
// seg-<first-record-offset>.log. Offsets are record sequence numbers
// (the first record ever appended is offset 0), so a segment's name
// states which prefix of the log precedes it. Appends go to the
// highest-named segment through atomicfile.Append — one buffered write
// plus fsync per batch — and roll to a new segment once the active one
// exceeds the size limit.
//
// Frame format (little-endian):
//
//	[4-byte payload length][payload: JSON Record][4-byte IEEE CRC32 of payload]
//
// Crash recovery: a crash mid-append can tear only the final frames of
// the highest-named segment, because appends are strictly sequential.
// Open therefore truncates any invalid tail of the last segment and
// resumes appending after the surviving prefix; an invalid frame in
// any earlier segment cannot be explained by a torn append and is
// reported as corruption. Replay is deterministic: same directory
// contents, same records in the same order with the same offsets.
//
// Single writer, many readers: one process (or handle) appends; any
// number of others tail the same directory by calling Refresh to pick
// up newly durable records and Replay to read them. Refresh never
// truncates — a partial trailing frame may be the writer's in-flight
// append and simply stays invisible until it completes.
package ingest

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"tcam/internal/atomicfile"
	"tcam/internal/faultinject"
)

// DefaultSegmentBytes is the segment-roll threshold used by Open.
const DefaultSegmentBytes = 4 << 20

const (
	segPrefix  = "seg-"
	segSuffix  = ".log"
	frameHdr   = 4 // payload length
	frameCRC   = 4
	maxPayload = 1 << 20 // sanity bound: no event record is a megabyte
)

// Record is one interaction event: user rated (or re-rated) item at
// Time with Score. IDs are the external string identifiers; the dense
// index mapping is owned by whoever consumes the log, because the
// mapping depends on which prefix has been consumed.
type Record struct {
	User  string  `json:"user"`
	Item  string  `json:"item"`
	Time  int64   `json:"time"`
	Score float64 `json:"score"`
}

func (r Record) validate() error {
	if r.User == "" || r.Item == "" {
		return fmt.Errorf("ingest: record needs non-empty user and item, got user=%q item=%q", r.User, r.Item)
	}
	if !(r.Score > 0) {
		return fmt.Errorf("ingest: record score must be positive, got %v", r.Score)
	}
	return nil
}

// Log is an open event log. It is safe for concurrent use: appends are
// serialized under a mutex, and Replay reads immutable on-disk
// prefixes.
type Log struct {
	dir      string
	maxBytes int64

	mu       sync.Mutex
	end      int64  // offset of the next record to be appended
	segBase  int64  // offset of the active segment's first record
	segBytes int64  // bytes currently in the active segment
	buf      []byte // frame staging buffer, reused across Appends
}

// Open opens (creating if needed) the log directory with the default
// segment size.
func Open(dir string) (*Log, error) { return OpenLimit(dir, DefaultSegmentBytes) }

// OpenLimit is Open with an explicit segment-roll threshold in bytes.
// It scans every segment, verifies frame CRCs, truncates a torn tail on
// the last segment, and positions the log to append after the highest
// surviving record.
func OpenLimit(dir string, maxSegmentBytes int64) (*Log, error) {
	if maxSegmentBytes <= 0 {
		return nil, fmt.Errorf("ingest: segment size must be positive, got %d", maxSegmentBytes)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ingest: %w", err)
	}
	bases, err := segmentBases(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, maxBytes: maxSegmentBytes}
	for i, base := range bases {
		if base != l.end {
			return nil, fmt.Errorf("ingest: segment %s starts at offset %d but the preceding segments end at %d",
				segName(base), base, l.end)
		}
		last := i == len(bases)-1
		n, size, err := l.recoverSegment(base, last)
		if err != nil {
			return nil, err
		}
		l.end = base + n
		if last {
			l.segBase = base
			l.segBytes = size
		}
	}
	return l, nil
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// End returns the offset one past the last appended record — the
// offset Replay would need to see only future records.
func (l *Log) End() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.end
}

// Append durably appends recs in order and returns the new end offset.
// The whole batch is written as one atomicfile.Append call: after a
// crash either a prefix of the batch survives (torn frames are
// discarded on the next Open) or all of it does.
func (l *Log) Append(recs ...Record) (int64, error) {
	for _, r := range recs {
		if err := r.validate(); err != nil {
			return 0, err
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(recs) == 0 {
		return l.end, nil
	}
	if err := faultinject.FireErr("ingest.append"); err != nil {
		return l.end, err
	}
	if l.segBytes >= l.maxBytes {
		l.segBase = l.end
		l.segBytes = 0
	}
	l.buf = l.buf[:0]
	for _, r := range recs {
		payload, err := json.Marshal(r)
		if err != nil {
			return l.end, fmt.Errorf("ingest: encode record: %w", err)
		}
		l.buf = appendFrame(l.buf, payload)
	}
	path := filepath.Join(l.dir, segName(l.segBase))
	if err := atomicfile.Append(path, func(w io.Writer) error {
		_, err := w.Write(l.buf)
		return err
	}); err != nil {
		// The on-disk state is unknown (a prefix may have landed); reopen
		// to find out rather than guessing. Callers should treat the Log
		// as poisoned and re-Open after an append error.
		return l.end, err
	}
	l.segBytes += int64(len(l.buf))
	l.end += int64(len(recs))
	return l.end, nil
}

// Replay invokes fn for every record with offset >= from, in offset
// order, stopping early when fn returns an error. It reads the
// immutable prefix present when Replay starts; records appended
// concurrently may or may not be seen.
func (l *Log) Replay(from int64, fn func(off int64, rec Record) error) error {
	bases, err := segmentBases(l.dir)
	if err != nil {
		return err
	}
	l.mu.Lock()
	end := l.end
	l.mu.Unlock()
	next := int64(0)
	for i, base := range bases {
		if base != next {
			return fmt.Errorf("ingest: segment %s starts at offset %d but the preceding segments end at %d",
				segName(base), base, next)
		}
		// Skip whole segments below from: the next segment's base bounds
		// this one's record count.
		if i+1 < len(bases) && bases[i+1] <= from {
			next = bases[i+1]
			continue
		}
		n, err := l.replaySegment(base, end, from, fn)
		if err != nil {
			return err
		}
		next = base + n
	}
	return nil
}

// replaySegment scans one segment, calling fn for records at or past
// from, bounded by end (records beyond the opened end are a concurrent
// append's tail and are ignored). It returns the record count scanned.
func (l *Log) replaySegment(base, end, from int64, fn func(off int64, rec Record) error) (int64, error) {
	data, err := os.ReadFile(filepath.Join(l.dir, segName(base)))
	if err != nil {
		return 0, fmt.Errorf("ingest: %w", err)
	}
	var n int64
	pos := 0
	for pos < len(data) {
		off := base + n
		if off >= end {
			break
		}
		payload, nextPos, ok := readFrame(data, pos)
		if !ok {
			return 0, fmt.Errorf("ingest: %s: invalid frame at byte %d (offset %d)", segName(base), pos, off)
		}
		if off >= from {
			var rec Record
			if err := json.Unmarshal(payload, &rec); err != nil {
				return 0, fmt.Errorf("ingest: %s: decode record at offset %d: %w", segName(base), off, err)
			}
			if err := fn(off, rec); err != nil {
				return 0, err
			}
		}
		n++
		pos = nextPos
	}
	return n, nil
}

// Refresh re-scans the directory for records appended through other
// handles — typically another process: a producer appends while the
// serving process tails — and advances End past every complete frame
// found, returning the new end. Unlike Open it never truncates: an
// incomplete trailing frame on the last segment may be a live writer's
// in-flight append, so it is simply not visible until a later Refresh.
// An invalid frame anywhere else is corruption, as in Open.
func (l *Log) Refresh() (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	bases, err := segmentBases(l.dir)
	if err != nil {
		return 0, err
	}
	var end, segBase, segBytes int64
	for i, base := range bases {
		if base != end {
			return 0, fmt.Errorf("ingest: segment %s starts at offset %d but the preceding segments end at %d",
				segName(base), base, end)
		}
		last := i == len(bases)-1
		n, size, _, err := scanSegment(l.dir, base, last)
		if err != nil {
			return 0, err
		}
		end = base + n
		if last {
			segBase, segBytes = base, size
		}
	}
	if end < l.end {
		return 0, fmt.Errorf("ingest: refresh found end %d below the known end %d (log rewritten underneath us?)", end, l.end)
	}
	l.end, l.segBase, l.segBytes = end, segBase, segBytes
	return end, nil
}

// recoverSegment validates one segment at Open time, returning its
// record count and surviving byte size. On the last segment a torn
// tail — any suffix that does not parse as complete, CRC-valid frames —
// is truncated away; anywhere else it is corruption.
func (l *Log) recoverSegment(base int64, last bool) (records, size int64, err error) {
	n, size, torn, err := scanSegment(l.dir, base, last)
	if err != nil {
		return 0, 0, err
	}
	if torn {
		// Torn append: nothing can follow a tear, truncate and resume.
		path := filepath.Join(l.dir, segName(base))
		if err := os.Truncate(path, size); err != nil {
			return 0, 0, fmt.Errorf("ingest: truncate torn tail of %s: %w", segName(base), err)
		}
	}
	return n, size, nil
}

// scanSegment counts the complete, CRC-valid frames of one segment
// without modifying it. torn reports a trailing non-frame suffix on the
// last segment (size excludes it); the same suffix on any earlier
// segment is corruption.
func scanSegment(dir string, base int64, last bool) (records, size int64, torn bool, err error) {
	data, err := os.ReadFile(filepath.Join(dir, segName(base)))
	if err != nil {
		return 0, 0, false, fmt.Errorf("ingest: %w", err)
	}
	var n int64
	pos := 0
	for pos < len(data) {
		_, next, ok := readFrame(data, pos)
		if !ok {
			if !last {
				return 0, 0, false, fmt.Errorf("ingest: %s: corrupt frame at byte %d (mid-log corruption, refusing to open)",
					segName(base), pos)
			}
			return n, int64(pos), true, nil
		}
		n++
		pos = next
	}
	return n, int64(pos), false, nil
}

// appendFrame encodes one payload frame onto buf.
func appendFrame(buf, payload []byte) []byte {
	var hdr [frameHdr]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	buf = append(buf, hdr[:]...)
	buf = append(buf, payload...)
	var crc [frameCRC]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	return append(buf, crc[:]...)
}

// readFrame decodes the frame starting at pos, returning its payload
// and the next frame's position. ok is false when the bytes at pos do
// not form a complete, CRC-valid frame.
func readFrame(data []byte, pos int) (payload []byte, next int, ok bool) {
	if pos+frameHdr > len(data) {
		return nil, 0, false
	}
	n := int(binary.LittleEndian.Uint32(data[pos : pos+frameHdr]))
	if n <= 0 || n > maxPayload {
		return nil, 0, false
	}
	end := pos + frameHdr + n + frameCRC
	if end > len(data) {
		return nil, 0, false
	}
	payload = data[pos+frameHdr : pos+frameHdr+n]
	want := binary.LittleEndian.Uint32(data[pos+frameHdr+n : end])
	if crc32.ChecksumIEEE(payload) != want {
		return nil, 0, false
	}
	return payload, end, true
}

// segName formats the segment file name for a first-record offset.
func segName(base int64) string {
	return fmt.Sprintf("%s%016d%s", segPrefix, base, segSuffix)
}

// segmentBases lists the first-record offsets of every segment in dir,
// ascending.
func segmentBases(dir string) ([]int64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("ingest: %w", err)
	}
	var bases []int64
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		base, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), 10, 64)
		if err != nil || base < 0 {
			return nil, fmt.Errorf("ingest: segment name %q does not encode an offset", name)
		}
		bases = append(bases, base)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	return bases, nil
}
