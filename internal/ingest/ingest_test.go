package ingest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"tcam/internal/faultinject"
)

func rec(i int) Record {
	return Record{
		User:  fmt.Sprintf("u%03d", i%7),
		Item:  fmt.Sprintf("v%03d", i%11),
		Time:  int64(i),
		Score: 1 + float64(i%3),
	}
}

func collect(t *testing.T, l *Log, from int64) []Record {
	t.Helper()
	var out []Record
	want := from
	if err := l.Replay(from, func(off int64, r Record) error {
		if off != want {
			t.Fatalf("replay offset %d, want %d", off, want)
		}
		want++
		out = append(out, r)
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if l.End() != 0 {
		t.Fatalf("fresh log End = %d, want 0", l.End())
	}
	var want []Record
	for i := 0; i < 25; i++ {
		want = append(want, rec(i))
	}
	end, err := l.Append(want[:10]...)
	if err != nil || end != 10 {
		t.Fatalf("Append = %d, %v; want 10, nil", end, err)
	}
	end, err = l.Append(want[10:]...)
	if err != nil || end != 25 {
		t.Fatalf("Append = %d, %v; want 25, nil", end, err)
	}
	got := collect(t, l, 0)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if tail := collect(t, l, 20); len(tail) != 5 || tail[0] != want[20] {
		t.Fatalf("Replay(20) returned %d records starting %+v", len(tail), tail[0])
	}
}

func TestReopenResumesOffsets(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := l.Append(rec(0), rec(1), rec(2)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	l2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if l2.End() != 3 {
		t.Fatalf("reopened End = %d, want 3", l2.End())
	}
	if _, err := l2.Append(rec(3)); err != nil {
		t.Fatalf("Append after reopen: %v", err)
	}
	got := collect(t, l2, 0)
	if len(got) != 4 || got[3] != rec(3) {
		t.Fatalf("after reopen got %d records, last %+v", len(got), got[len(got)-1])
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLimit(dir, 128) // tiny segments force rotation
	if err != nil {
		t.Fatalf("OpenLimit: %v", err)
	}
	const n = 40
	for i := 0; i < n; i++ {
		if _, err := l.Append(rec(i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	bases, err := segmentBases(dir)
	if err != nil {
		t.Fatalf("segmentBases: %v", err)
	}
	if len(bases) < 3 {
		t.Fatalf("expected >=3 segments after %d tiny appends, got %d", n, len(bases))
	}
	if got := collect(t, l, 0); len(got) != n {
		t.Fatalf("replayed %d records across segments, want %d", len(got), n)
	}
	// Replay from an offset inside a later segment.
	mid := int64(n / 2)
	if got := collect(t, l, mid); len(got) != n-int(mid) || got[0] != rec(int(mid)) {
		t.Fatalf("Replay(%d) wrong: %d records, first %+v", mid, len(got), got[0])
	}
	// Reopen sees the same content.
	l2, err := OpenLimit(dir, 128)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if l2.End() != n {
		t.Fatalf("reopened End = %d, want %d", l2.End(), n)
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := l.Append(rec(0), rec(1), rec(2)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	// Simulate a crash mid-append: a partial frame lands at the tail.
	path := filepath.Join(dir, segName(0))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatalf("open segment: %v", err)
	}
	var torn [7]byte
	binary.LittleEndian.PutUint32(torn[:4], 400) // length promises more bytes than exist
	if _, err := f.Write(torn[:]); err != nil {
		t.Fatalf("write torn tail: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	l2, err := Open(dir)
	if err != nil {
		t.Fatalf("Open after torn tail: %v", err)
	}
	if l2.End() != 3 {
		t.Fatalf("End after recovery = %d, want 3", l2.End())
	}
	// The torn bytes are gone: appends resume cleanly.
	if _, err := l2.Append(rec(3)); err != nil {
		t.Fatalf("Append after recovery: %v", err)
	}
	got := collect(t, l2, 0)
	if len(got) != 4 || got[3] != rec(3) {
		t.Fatalf("after recovery got %d records, last %+v", len(got), got[len(got)-1])
	}
}

func TestMidLogCorruptionRefusesOpen(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLimit(dir, 64) // force at least two segments
	if err != nil {
		t.Fatalf("OpenLimit: %v", err)
	}
	for i := 0; i < 10; i++ {
		if _, err := l.Append(rec(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	bases, err := segmentBases(dir)
	if err != nil || len(bases) < 2 {
		t.Fatalf("need >=2 segments, got %d (err %v)", len(bases), err)
	}
	// Flip a byte in the FIRST segment: not explicable by a torn append.
	path := filepath.Join(dir, segName(bases[0]))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	data[frameHdr+2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := OpenLimit(dir, 64); err == nil {
		t.Fatal("Open accepted mid-log corruption")
	}
}

func TestAppendValidation(t *testing.T) {
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for _, bad := range []Record{
		{User: "", Item: "v", Time: 1, Score: 1},
		{User: "u", Item: "", Time: 1, Score: 1},
		{User: "u", Item: "v", Time: 1, Score: 0},
		{User: "u", Item: "v", Time: 1, Score: -2},
	} {
		if _, err := l.Append(bad); err == nil {
			t.Fatalf("Append accepted invalid record %+v", bad)
		}
	}
	if l.End() != 0 {
		t.Fatalf("failed appends advanced End to %d", l.End())
	}
}

func TestAppendFaultInjection(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := l.Append(rec(0)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	injected := errors.New("disk on fire")
	faultinject.SetErr("ingest.append", faultinject.ErrorsN(1, injected))
	if _, err := l.Append(rec(1)); !errors.Is(err, injected) {
		t.Fatalf("Append under fault = %v, want injected error", err)
	}
	if l.End() != 1 {
		t.Fatalf("failed append advanced End to %d", l.End())
	}
	// The hook fails once; the retry lands and nothing was lost or doubled.
	if _, err := l.Append(rec(1)); err != nil {
		t.Fatalf("Append retry: %v", err)
	}
	got := collect(t, l, 0)
	if len(got) != 2 || got[0] != rec(0) || got[1] != rec(1) {
		t.Fatalf("after fault+retry got %v", got)
	}
}

func TestConcurrentAppends(t *testing.T) {
	l, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const workers, per = 8, 20
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := l.Append(rec(w*per + i)); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	if l.End() != workers*per {
		t.Fatalf("End = %d, want %d", l.End(), workers*per)
	}
	seen := make(map[int64]bool)
	if err := l.Replay(0, func(off int64, r Record) error {
		if seen[off] {
			return fmt.Errorf("offset %d replayed twice", off)
		}
		seen[off] = true
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(seen) != workers*per {
		t.Fatalf("replayed %d records, want %d", len(seen), workers*per)
	}
}

// TestRefreshSeesExternalAppends: a tailing reader handle picks up
// records appended through a separate writer handle (the producer /
// server process split) only after Refresh.
func TestRefreshSeesExternalAppends(t *testing.T) {
	dir := t.TempDir()
	writer, err := Open(dir)
	if err != nil {
		t.Fatalf("Open writer: %v", err)
	}
	reader, err := Open(dir)
	if err != nil {
		t.Fatalf("Open reader: %v", err)
	}
	if _, err := writer.Append(rec(0), rec(1), rec(2)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if got := reader.End(); got != 0 {
		t.Fatalf("reader End before Refresh = %d, want 0 (stale view)", got)
	}
	end, err := reader.Refresh()
	if err != nil || end != 3 {
		t.Fatalf("Refresh = (%d, %v), want (3, nil)", end, err)
	}
	if got := collect(t, reader, 0); len(got) != 3 {
		t.Fatalf("replay after Refresh saw %d records, want 3", len(got))
	}
	// Refresh also repositions the reader's own append cursor.
	if _, err := reader.Append(rec(3)); err != nil {
		t.Fatalf("Append after Refresh: %v", err)
	}
	if _, err := writer.Refresh(); err != nil {
		t.Fatalf("writer Refresh: %v", err)
	}
	if got := collect(t, writer, 0); len(got) != 4 {
		t.Fatalf("writer replay saw %d records, want 4", len(got))
	}
}

// TestRefreshLeavesInFlightTailAlone: an incomplete trailing frame — a
// live writer's in-flight append — is invisible to Refresh but NOT
// truncated, so the writer can complete it.
func TestRefreshLeavesInFlightTailAlone(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := l.Append(rec(0), rec(1)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	// Hand-write a partial frame: a header claiming 400 payload bytes
	// with only 3 present.
	path := filepath.Join(dir, segName(0))
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	partial := make([]byte, frameHdr+3)
	binary.LittleEndian.PutUint32(partial, 400)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(partial); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	end, err := l.Refresh()
	if err != nil || end != 2 {
		t.Fatalf("Refresh = (%d, %v), want (2, nil)", end, err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(full)+len(partial) {
		t.Fatalf("Refresh changed the segment size: %d -> %d bytes", len(full)+len(partial), len(after))
	}
	if got := collect(t, l, 0); len(got) != 2 {
		t.Fatalf("replay saw %d records, want 2", len(got))
	}
}

// TestRefreshRejectsRewrittenLog: a directory whose durable prefix
// shrank under a live handle is not a log anymore.
func TestRefreshRejectsRewrittenLog(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := l.Append(rec(0), rec(1)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := os.Remove(filepath.Join(dir, segName(0))); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Refresh(); err == nil {
		t.Fatal("Refresh accepted a log whose records vanished")
	}
}
