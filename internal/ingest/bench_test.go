package ingest

// Ingest-log benchmarks (ISSUE 9): append throughput (the producer
// side) and replay throughput (the fold-in side), snapshotted into
// BENCH_ingest.json by scripts/bench_ingest.sh. Both report events/s
// via the events metric so the JSON carries rates, not just ns/op.

import (
	"fmt"
	"testing"
)

func benchRecord(i int) Record {
	return Record{
		User:  fmt.Sprintf("user-%04d", i%512),
		Item:  fmt.Sprintf("item-%05d", i%4096),
		Time:  int64(i),
		Score: float64(i%5) + 1,
	}
}

// BenchmarkAppend measures single-record durable appends — the worst
// case for a producer, one fsync per event.
func BenchmarkAppend(b *testing.B) {
	lg, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lg.Append(benchRecord(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkAppendBatch amortizes the fsync over 128-record batches,
// the shape tcamgen -stream and real producers use.
func BenchmarkAppendBatch(b *testing.B) {
	const batch = 128
	lg, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	recs := make([]Record, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range recs {
			recs[j] = benchRecord(i*batch + j)
		}
		if _, err := lg.Append(recs...); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkReplay measures a full deterministic replay of a 16k-event
// log — the cost a restarting updater pays before its first publish.
func BenchmarkReplay(b *testing.B) {
	const n = 16384
	dir := b.TempDir()
	lg, err := Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	recs := make([]Record, 256)
	for lo := 0; lo < n; lo += len(recs) {
		for j := range recs {
			recs[j] = benchRecord(lo + j)
		}
		if _, err := lg.Append(recs...); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		if err := lg.Replay(0, func(_ int64, _ Record) error {
			count++
			return nil
		}); err != nil {
			b.Fatal(err)
		}
		if count != n {
			b.Fatalf("replayed %d records, want %d", count, n)
		}
	}
	b.ReportMetric(float64(b.N*n)/b.Elapsed().Seconds(), "events/s")
}
