// Package train is the unified EM training engine behind every TCAM
// trainer: the in-process ITCAM and TTCAM fitters and the distem
// MapReduce coordinator all run their iteration loop through Run. The
// engine owns everything the model variants used to hand-roll
// separately:
//
//   - the iteration driver — deterministic user-range sharding, a worker
//     pool executing shards, and an ordered accumulator merge, so the
//     learned parameters are bit-identical for any worker count;
//   - one convergence policy — MaxIters, a relative log-likelihood
//     tolerance, and an optional wall-clock budget — applied uniformly
//     to every variant;
//   - checkpoint/resume — full parameter snapshots through
//     internal/atomicfile that resume to parameters bit-identical to an
//     uninterrupted run;
//   - observability — per-iteration IterStat records (log-likelihood,
//     delta, E/M-step wall-time split) fed to TrainStats and an optional
//     streaming hook.
//
// Determinism contract: the number of shards — not the number of
// workers — fixes the floating-point summation grouping. Shards are
// contiguous user ranges cut with the same arithmetic for a given
// (users, shards) pair, each shard owns its own accumulator, and merge
// always folds shard s+1 into shard s's accumulator in ascending order.
// Workers only decide how many goroutines execute the shards; results
// never depend on it, nor on OS scheduling.
package train

import (
	"errors"
	"fmt"
	"math"
	"time"

	"tcam/internal/model"
)

// DefaultShards is the deterministic E-step shard count used when a
// config leaves Shards at zero. It is a fixed constant — not GOMAXPROCS
// — so default-config training runs reproduce bit-for-bit across
// machines of any size.
const DefaultShards = 8

// LambdaClamp keeps learned mixing weights away from the degenerate
// endpoints, where one mixture component could never recover mass. It
// is the single shared bound: the in-process trainers and the distem
// MapReduce reducer all clamp through ClampLambda, so the bound cannot
// drift between them.
const LambdaClamp = 0.01

// ClampLambda bounds a mixing weight to [LambdaClamp, 1-LambdaClamp].
func ClampLambda(x float64) float64 {
	if x < LambdaClamp {
		return LambdaClamp
	}
	if x > 1-LambdaClamp {
		return 1 - LambdaClamp
	}
	return x
}

// MergeInto folds one accumulator slab into another by element-wise
// addition. It is the engine's single merge primitive: every ordered
// accumulator merge — the in-process trainers' and distem's reducer —
// goes through it, so the summation arithmetic cannot drift between
// trainers. dst and src must have equal length.
//
//tcam:hotpath
func MergeInto(dst, src []float64) {
	if len(dst) != len(src) {
		panic("train: MergeInto slab length mismatch")
	}
	for i, x := range src {
		dst[i] += x
	}
}

// Zero clears an accumulator slab in place.
//
//tcam:hotpath
func Zero(s []float64) {
	for i := range s {
		s[i] = 0
	}
}

// Transpose writes the rows×cols row-major matrix src into dst as its
// cols×rows transpose: dst[c*rows+r] = src[r*cols+c]. It is pure data
// movement — no arithmetic — so round-tripping a slab through it is
// bit-exact. The trainers use it to keep an item-major copy of the
// topic-item matrices: the E-step then reads and accumulates one
// contiguous K-length row per cell instead of a stride-V column, which
// is what keeps the θ/ϕ accumulator rows cache-resident.
//
//tcam:hotpath
func Transpose(dst, src []float64, rows, cols int) {
	if len(dst) != len(src) || len(src) != rows*cols {
		panic("train: Transpose dimension mismatch")
	}
	for r := 0; r < rows; r++ {
		row := src[r*cols : (r+1)*cols]
		for c, x := range row {
			dst[c*rows+r] = x
		}
	}
}

// Accum is one shard's sufficient-statistic slab set. The engine resets
// every accumulator at the start of an iteration, runs the E-step into
// each, then merges them in ascending shard order.
type Accum interface {
	// Reset clears the accumulator for the next iteration. Reset calls
	// are sequential (never concurrent with each other or the E-step).
	Reset()
	// Merge folds src into the receiver by element-wise addition. The
	// engine calls it in ascending shard order, which fixes the
	// floating-point summation grouping.
	Merge(src Accum)
}

// Trainable is the model-specific half of the EM loop: the engine owns
// iteration order, sharding, merging, convergence and checkpoints; the
// model owns the math.
type Trainable interface {
	// NumUsers returns the size of the sharding dimension.
	NumUsers() int
	// NewAccum allocates the accumulator for shard (its user range is
	// [lo, hi)). Called once per shard before the first iteration, in
	// ascending shard order.
	NewAccum(shard, lo, hi int) Accum
	// EStep scans the accumulator's user range, adding sufficient
	// statistics (and the range's log-likelihood term) into it. Calls
	// for different shards may run concurrently.
	EStep(a Accum)
	// MStep consumes the merged accumulator, updates the model
	// parameters in place, and returns the data log-likelihood under the
	// parameters the iteration started from (the quantity EM never
	// decreases).
	MStep(merged Accum) float64
}

// Config is the engine-level training policy shared by every trainer.
type Config struct {
	// MaxIters bounds the EM iterations; it must be positive.
	MaxIters int
	// Tol is the relative log-likelihood improvement under which
	// training stops early; 0 disables the early stop (the run always
	// burns MaxIters), negative is invalid.
	Tol float64
	// MaxWall optionally bounds the run's wall-clock time; after any
	// iteration that exceeds it the engine checkpoints (when enabled)
	// and stops with StopReason "wall-clock". 0 means no budget.
	MaxWall time.Duration
	// Shards is the deterministic user-range shard count (0 means
	// DefaultShards). It — not Workers — fixes the floating-point
	// summation grouping, so two runs agree bit-for-bit exactly when
	// their shard counts agree.
	Shards int
	// Workers caps E-step goroutines; non-positive means GOMAXPROCS.
	// Worker count never affects the learned parameters.
	Workers int
	// Checkpoint configures periodic parameter snapshots; the zero
	// value disables them.
	Checkpoint CheckpointConfig
	// Hook, when non-nil, observes every iteration from the coordinator
	// goroutine (safe to write to files or channels without locking).
	Hook func(model.IterStat)
}

func (c Config) validate() error {
	if c.MaxIters <= 0 {
		return fmt.Errorf("train: MaxIters must be positive, got %d", c.MaxIters)
	}
	if c.Tol < 0 {
		return fmt.Errorf("train: negative Tol %v", c.Tol)
	}
	if c.MaxWall < 0 {
		return fmt.Errorf("train: negative MaxWall %v", c.MaxWall)
	}
	return c.Checkpoint.validate()
}

// shardCount resolves the configured shard count against n users,
// mirroring model.ParallelRanges' clamping so a legacy Workers=S run is
// reproduced exactly by Shards=S.
func shardCount(configured, n int) int {
	s := configured
	if s <= 0 {
		s = DefaultShards
	}
	if s > n {
		s = n
	}
	if s < 1 {
		s = 1
	}
	return s
}

// shardRange is one contiguous user range [Lo, Hi).
type shardRange struct{ Lo, Hi int }

// shardRanges cuts [0, n) into at most shards contiguous ranges using
// ceil(n/shards) chunks — the same arithmetic model.ParallelRanges used
// for its worker split, so shard boundaries (and therefore summation
// grouping) depend only on (n, shards).
func shardRanges(n, shards int) []shardRange {
	shards = shardCount(shards, n)
	if n <= 0 {
		return nil
	}
	chunk := (n + shards - 1) / shards
	out := make([]shardRange, 0, shards)
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		out = append(out, shardRange{Lo: lo, Hi: hi})
	}
	return out
}

// Run executes the EM loop for t under cfg and returns the training
// statistics. When checkpointing is configured, t must also implement
// Checkpointable; with Checkpoint.Resume set, Run restores the latest
// snapshot (if one exists) and continues from it, producing parameters
// bit-identical to an uninterrupted run.
func Run(t Trainable, cfg Config) (model.TrainStats, error) {
	var stats model.TrainStats
	if err := cfg.validate(); err != nil {
		return stats, err
	}
	n := t.NumUsers()
	if n <= 0 {
		return stats, errors.New("train: no users to shard")
	}

	cp, err := newCheckpointer(t, cfg.Checkpoint)
	if err != nil {
		return stats, err
	}
	startIter := 0
	prevLL := math.Inf(-1)
	if cp != nil && cfg.Checkpoint.Resume {
		snap, ok, err := cp.load()
		if err != nil {
			return stats, err
		}
		if ok {
			startIter = snap.Iter
			prevLL = snap.PrevLL
			stats = snap.Stats
			stats.ResumedAt = snap.Iter
		}
	}

	ranges := shardRanges(n, cfg.Shards)
	accums := make([]Accum, len(ranges))
	for i, r := range ranges {
		accums[i] = t.NewAccum(i, r.Lo, r.Hi)
	}
	workers := model.Workers(cfg.Workers)
	if workers > len(accums) {
		workers = len(accums)
	}

	start := time.Now()
	for iter := startIter; iter < cfg.MaxIters; iter++ {
		eStart := time.Now()
		for _, a := range accums {
			a.Reset()
		}
		runShards(t, accums, workers)
		for i := 1; i < len(accums); i++ {
			accums[0].Merge(accums[i])
		}
		eDur := time.Since(eStart)

		mStart := time.Now()
		ll := t.MStep(accums[0])
		mDur := time.Since(mStart)

		var rel float64
		if iter > 0 {
			rel = math.Abs(ll-prevLL) / (math.Abs(prevLL) + 1e-12)
		}
		it := model.IterStat{
			Iter:          iter + 1,
			LogLikelihood: ll,
			Delta:         rel,
			EStep:         eDur,
			MStep:         mDur,
			Wall:          eDur + mDur,
		}
		stats.LogLikelihood = append(stats.LogLikelihood, ll)
		stats.Iters = append(stats.Iters, it)
		if cfg.Hook != nil {
			cfg.Hook(it)
		}
		if iter > 0 && rel < cfg.Tol {
			stats.Converged = true
			stats.StopReason = model.StopConverged
			break
		}
		prevLL = ll
		if cp != nil && (iter+1)%cp.every == 0 {
			if err := cp.save(iter+1, prevLL, stats); err != nil {
				return stats, err
			}
		}
		if cfg.MaxWall > 0 && time.Since(start) >= cfg.MaxWall {
			stats.StopReason = model.StopWallClock
			break
		}
	}
	if stats.StopReason == "" {
		stats.StopReason = model.StopMaxIters
	}
	return stats, nil
}

// eStepper is the E-step surface shared by batch training (Trainable)
// and fold-in (UserFolder): runShards only needs this much.
type eStepper interface {
	EStep(a Accum)
}

// runShards executes the E-step of every accumulator across the worker
// pool. Each shard writes only its own accumulator (plus disjoint
// user-sharded rows of any state the Trainable shares between them), so
// execution order is irrelevant; determinism comes from the ordered
// merge afterwards.
func runShards(t eStepper, accums []Accum, workers int) {
	if len(accums) == 0 {
		return
	}
	if workers <= 1 || len(accums) == 1 {
		for _, a := range accums {
			t.EStep(a)
		}
		return
	}
	model.ParallelRanges(len(accums), workers, func(_, lo, hi int) {
		for s := lo; s < hi; s++ {
			t.EStep(accums[s])
		}
	})
}
