package train

import (
	"encoding/gob"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"tcam/internal/model"
)

// fakeAccum sums the values of its user range.
type fakeAccum struct {
	lo, hi int
	sum    float64
}

func (a *fakeAccum) Reset() { a.sum = 0 }
func (a *fakeAccum) Merge(src Accum) {
	a.sum += src.(*fakeAccum).sum
}

// fakeModel is a deterministic Trainable: each E-step sums per-user
// values, each M-step advances an iteration counter that drives a
// converging log-likelihood sequence ll_k = -100/k. It checkpoints the
// counter, so resume equivalence is observable.
type fakeModel struct {
	users int
	vals  []float64
	// steps counts applied M-steps; it is the full mutable state.
	steps int
	// lastMerged records what the M-step saw, for sharding assertions.
	lastMerged float64
}

func newFakeModel(users int) *fakeModel {
	m := &fakeModel{users: users, vals: make([]float64, users)}
	for u := range m.vals {
		m.vals[u] = float64(u%7) + 0.25
	}
	return m
}

func (m *fakeModel) NumUsers() int { return m.users }
func (m *fakeModel) NewAccum(_, lo, hi int) Accum {
	return &fakeAccum{lo: lo, hi: hi}
}
func (m *fakeModel) EStep(a Accum) {
	acc := a.(*fakeAccum)
	for u := acc.lo; u < acc.hi; u++ {
		acc.sum += m.vals[u]
	}
}
func (m *fakeModel) MStep(merged Accum) float64 {
	m.lastMerged = merged.(*fakeAccum).sum
	m.steps++
	return -100.0 / float64(m.steps)
}

func (m *fakeModel) EncodeParams(w io.Writer) error {
	return gob.NewEncoder(w).Encode(m.steps)
}
func (m *fakeModel) DecodeParams(r io.Reader) error {
	return gob.NewDecoder(r).Decode(&m.steps)
}

// slowModel burns wall time per iteration so the budget trips.
type slowModel struct{ fakeModel }

func (m *slowModel) MStep(merged Accum) float64 {
	time.Sleep(5 * time.Millisecond)
	return m.fakeModel.MStep(merged)
}

// plainModel is a Trainable without checkpoint support.
type plainModel struct{ fakeModel }

func (m *plainModel) EncodeParams() {} // shadow away the interface

func TestShardRanges(t *testing.T) {
	cases := []struct {
		n, shards int
		want      []shardRange
	}{
		{10, 3, []shardRange{{0, 4}, {4, 8}, {8, 10}}},
		{10, 4, []shardRange{{0, 3}, {3, 6}, {6, 9}, {9, 10}}},
		{3, 8, []shardRange{{0, 1}, {1, 2}, {2, 3}}},
		{5, 1, []shardRange{{0, 5}}},
		{0, 4, nil},
		{16, 0, []shardRange{{0, 2}, {2, 4}, {4, 6}, {6, 8}, {8, 10}, {10, 12}, {12, 14}, {14, 16}}},
	}
	for _, c := range cases {
		got := shardRanges(c.n, c.shards)
		if len(got) != len(c.want) {
			t.Fatalf("shardRanges(%d, %d) = %v, want %v", c.n, c.shards, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("shardRanges(%d, %d) = %v, want %v", c.n, c.shards, got, c.want)
			}
		}
	}
}

// Shard boundaries must reproduce the legacy per-worker split: for any
// (n, s), shardRanges(n, s) is exactly the ranges ParallelRanges hands
// to s workers.
func TestShardRangesMatchParallelRanges(t *testing.T) {
	for _, n := range []int{1, 2, 7, 30, 100, 1000} {
		for _, s := range []int{1, 2, 3, 4, 8, 16} {
			var mu sync.Mutex
			var legacy []shardRange
			model.ParallelRanges(n, s, func(_, lo, hi int) {
				mu.Lock()
				legacy = append(legacy, shardRange{lo, hi})
				mu.Unlock()
			})
			// ParallelRanges runs workers concurrently; order by Lo.
			for i := 0; i < len(legacy); i++ {
				for j := i + 1; j < len(legacy); j++ {
					if legacy[j].Lo < legacy[i].Lo {
						legacy[i], legacy[j] = legacy[j], legacy[i]
					}
				}
			}
			got := shardRanges(n, s)
			if len(got) != len(legacy) {
				t.Fatalf("n=%d s=%d: engine %v vs legacy %v", n, s, got, legacy)
			}
			for i := range got {
				if got[i] != legacy[i] {
					t.Fatalf("n=%d s=%d: engine %v vs legacy %v", n, s, got, legacy)
				}
			}
		}
	}
}

func TestRunMaxIters(t *testing.T) {
	m := newFakeModel(30)
	stats, err := Run(m, Config{MaxIters: 5, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Iterations() != 5 || stats.Converged || stats.StopReason != model.StopMaxIters {
		t.Fatalf("stats = %+v, want 5 max-iters iterations", stats)
	}
	if len(stats.Iters) != 5 {
		t.Fatalf("len(Iters) = %d, want 5", len(stats.Iters))
	}
	for i, it := range stats.Iters {
		if it.Iter != i+1 {
			t.Fatalf("Iters[%d].Iter = %d, want %d", i, it.Iter, i+1)
		}
		if it.LogLikelihood != stats.LogLikelihood[i] {
			t.Fatalf("Iters[%d] LL mismatch", i)
		}
	}
	// Every shard's partial sum must have arrived at the M-step.
	var want float64
	for _, v := range m.vals {
		want += v
	}
	if math.Abs(m.lastMerged-want) > 1e-9 {
		t.Fatalf("merged sum %v, want %v", m.lastMerged, want)
	}
}

func TestRunConverges(t *testing.T) {
	m := newFakeModel(30)
	stats, err := Run(m, Config{MaxIters: 100, Tol: 0.2, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Converged || stats.StopReason != model.StopConverged {
		t.Fatalf("stats = %+v, want converged", stats)
	}
	if stats.Iterations() >= 100 {
		t.Fatalf("converged run burned all %d iterations", stats.Iterations())
	}
	last := stats.Iters[len(stats.Iters)-1]
	if last.Delta >= 0.2 {
		t.Fatalf("final Delta %v not under Tol", last.Delta)
	}
}

func TestRunHookOrder(t *testing.T) {
	m := newFakeModel(10)
	var seen []int
	_, err := Run(m, Config{MaxIters: 4, Hook: func(it model.IterStat) {
		seen = append(seen, it.Iter)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 4 {
		t.Fatalf("hook fired %d times, want 4", len(seen))
	}
	for i, v := range seen {
		if v != i+1 {
			t.Fatalf("hook order %v", seen)
		}
	}
}

func TestRunWallClockBudget(t *testing.T) {
	m := &slowModel{*newFakeModel(10)}
	stats, err := Run(m, Config{MaxIters: 1000, MaxWall: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if stats.StopReason != model.StopWallClock {
		t.Fatalf("StopReason = %q, want wall-clock", stats.StopReason)
	}
	if stats.Iterations() >= 1000 {
		t.Fatal("wall-clock budget never tripped")
	}
}

func TestRunValidation(t *testing.T) {
	m := newFakeModel(10)
	for name, cfg := range map[string]Config{
		"zero iters":         {MaxIters: 0},
		"negative tol":       {MaxIters: 1, Tol: -1},
		"negative wall":      {MaxIters: 1, MaxWall: -time.Second},
		"resume without dir": {MaxIters: 1, Checkpoint: CheckpointConfig{Resume: true}},
	} {
		if _, err := Run(m, cfg); err == nil {
			t.Errorf("%s: Run accepted invalid config", name)
		}
	}
	if _, err := Run(newFakeModel(0), Config{MaxIters: 1}); err == nil {
		t.Error("Run accepted zero users")
	}
}

func TestCheckpointRequiresCheckpointable(t *testing.T) {
	m := &plainModel{*newFakeModel(10)}
	_, err := Run(m, Config{MaxIters: 1, Checkpoint: CheckpointConfig{Dir: t.TempDir()}})
	if err == nil || !strings.Contains(err.Error(), "checkpoint") {
		t.Fatalf("err = %v, want checkpoint-support error", err)
	}
}

func TestCheckpointResumeBitIdentical(t *testing.T) {
	// Uninterrupted reference run.
	ref := newFakeModel(30)
	refStats, err := Run(ref, Config{MaxIters: 10, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: stop after 4 iterations (snapshot lands at 3),
	// then resume in a fresh model to the same horizon.
	dir := t.TempDir()
	first := newFakeModel(30)
	if _, err := Run(first, Config{MaxIters: 4, Shards: 3,
		Checkpoint: CheckpointConfig{Dir: dir, Every: 3}}); err != nil {
		t.Fatal(err)
	}
	resumed := newFakeModel(30)
	gotStats, err := Run(resumed, Config{MaxIters: 10, Shards: 3,
		Checkpoint: CheckpointConfig{Dir: dir, Every: 3, Resume: true}})
	if err != nil {
		t.Fatal(err)
	}
	if gotStats.ResumedAt != 3 {
		t.Fatalf("ResumedAt = %d, want 3", gotStats.ResumedAt)
	}
	if resumed.steps != ref.steps {
		t.Fatalf("resumed state %d, reference %d", resumed.steps, ref.steps)
	}
	if len(gotStats.LogLikelihood) != len(refStats.LogLikelihood) {
		t.Fatalf("LL trace lengths %d vs %d", len(gotStats.LogLikelihood), len(refStats.LogLikelihood))
	}
	for i := range refStats.LogLikelihood {
		if math.Float64bits(gotStats.LogLikelihood[i]) != math.Float64bits(refStats.LogLikelihood[i]) {
			t.Fatalf("LL[%d]: resumed %v vs reference %v", i, gotStats.LogLikelihood[i], refStats.LogLikelihood[i])
		}
	}
	for i := range refStats.Iters {
		if gotStats.Iters[i].Iter != refStats.Iters[i].Iter ||
			math.Float64bits(gotStats.Iters[i].Delta) != math.Float64bits(refStats.Iters[i].Delta) {
			t.Fatalf("Iters[%d]: resumed %+v vs reference %+v", i, gotStats.Iters[i], refStats.Iters[i])
		}
	}
}

func TestResumeWithoutSnapshotStartsFresh(t *testing.T) {
	m := newFakeModel(10)
	stats, err := Run(m, Config{MaxIters: 3,
		Checkpoint: CheckpointConfig{Dir: t.TempDir(), Resume: true}})
	if err != nil {
		t.Fatal(err)
	}
	if stats.ResumedAt != 0 || stats.Iterations() != 3 {
		t.Fatalf("stats = %+v, want fresh 3-iteration run", stats)
	}
}

func TestCorruptCheckpointFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	m := newFakeModel(10)
	if _, err := Run(m, Config{MaxIters: 2,
		Checkpoint: CheckpointConfig{Dir: dir, Every: 1}}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, checkpointFileName)

	t.Run("garbage", func(t *testing.T) {
		if err := os.WriteFile(path, []byte("not a checkpoint"), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := Run(newFakeModel(10), Config{MaxIters: 4,
			Checkpoint: CheckpointConfig{Dir: dir, Resume: true}})
		if err == nil || !strings.Contains(err.Error(), "corrupt") {
			t.Fatalf("err = %v, want corrupt-checkpoint error", err)
		}
	})

	t.Run("truncated", func(t *testing.T) {
		m := newFakeModel(10)
		if _, err := Run(m, Config{MaxIters: 2,
			Checkpoint: CheckpointConfig{Dir: dir, Every: 1}}); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
			t.Fatal(err)
		}
		_, err = Run(newFakeModel(10), Config{MaxIters: 4,
			Checkpoint: CheckpointConfig{Dir: dir, Resume: true}})
		if err == nil {
			t.Fatal("truncated checkpoint resumed silently")
		}
	})

	t.Run("bit flip", func(t *testing.T) {
		m := newFakeModel(10)
		if _, err := Run(m, Config{MaxIters: 2,
			Checkpoint: CheckpointConfig{Dir: dir, Every: 1}}); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)-3] ^= 0xff
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err = Run(newFakeModel(10), Config{MaxIters: 4,
			Checkpoint: CheckpointConfig{Dir: dir, Resume: true}})
		if err == nil {
			t.Fatal("bit-flipped checkpoint resumed silently")
		}
	})
}

func TestWorkerCountInvariance(t *testing.T) {
	results := make([]float64, 0, 3)
	for _, workers := range []int{1, 3, 8} {
		m := newFakeModel(100)
		if _, err := Run(m, Config{MaxIters: 3, Shards: 8, Workers: workers}); err != nil {
			t.Fatal(err)
		}
		results = append(results, m.lastMerged)
	}
	for i := 1; i < len(results); i++ {
		if math.Float64bits(results[i]) != math.Float64bits(results[0]) {
			t.Fatalf("workers changed the merged sum: %v", results)
		}
	}
}

func TestClampLambda(t *testing.T) {
	for _, c := range []struct{ in, want float64 }{
		{-1, LambdaClamp}, {0, LambdaClamp}, {0.005, LambdaClamp},
		{0.5, 0.5}, {0.995, 1 - LambdaClamp}, {2, 1 - LambdaClamp},
	} {
		if got := ClampLambda(c.in); got != c.want {
			t.Errorf("ClampLambda(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMergeInto(t *testing.T) {
	dst := []float64{1, 2, 3}
	MergeInto(dst, []float64{10, 20, 30})
	if dst[0] != 11 || dst[1] != 22 || dst[2] != 33 {
		t.Fatalf("MergeInto = %v", dst)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	MergeInto(dst, []float64{1})
}

func TestZero(t *testing.T) {
	s := []float64{1, 2, 3}
	Zero(s)
	for _, x := range s {
		if x != 0 {
			t.Fatalf("Zero left %v", s)
		}
	}
}
