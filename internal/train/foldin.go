package train

// Fold-in: the partial-EM mode behind streaming ingestion. New users
// arrive after a model was batch-trained; their interests θu and mixing
// weights λu are fit against the frozen global parameters (topics,
// temporal contexts) by iterating only the E-step over the new user
// range plus the user-dimension M-step. Because the engine's E-step
// statistics for user u depend only on the frozen globals and u's own
// cells, and the user-dimension M-step is row-independent, folding in
// user u is bit-identical to running batch EM restricted to u with the
// globals held fixed — the property the fold-in fixture tests pin down.
//
// The driver below deliberately reuses the exact accumulator/shard
// machinery of Run: the same shardRanges arithmetic, the same
// NewAccum/Reset/EStep/Merge cycle in the same ascending merge order,
// executed by the same worker pool. Fold-in is not a second EM
// implementation; it is the batch engine pointed at a sub-range with
// the global M-step replaced by a user-range one.

import (
	"errors"
	"fmt"

	"tcam/internal/model"
)

// UserFolder is the model-side contract of fold-in. NewAccum and EStep
// are shared verbatim with Trainable; FoldStep replaces MStep and must
// update only the user-dimension parameters (θ rows, λ entries) of
// [lo, hi), leaving every global parameter frozen. It returns the
// range's data log-likelihood under the parameters the round started
// from.
type UserFolder interface {
	NewAccum(shard, lo, hi int) Accum
	EStep(a Accum)
	FoldStep(merged Accum, lo, hi int) float64
}

// FoldInConfig parameterizes FoldIn; zero Shards/Workers take the same
// defaults as batch training, so a fold-in run groups its floating-
// point sums exactly like a batch run with the same shard count.
type FoldInConfig struct {
	// Iters is the number of partial-EM rounds; it must be positive.
	Iters int
	// Shards fixes the summation grouping of the E-step over the folded
	// range (0 means DefaultShards). It does not affect θ/λ results —
	// their statistics live in per-user rows — only the discarded
	// global-slab sums and the reported log-likelihood.
	Shards int
	// Workers caps E-step goroutines; non-positive means GOMAXPROCS.
	Workers int
}

// FoldIn runs cfg.Iters rounds of partial EM over the user range
// [lo, hi) and returns the per-round log-likelihoods of that range.
func FoldIn(f UserFolder, lo, hi int, cfg FoldInConfig) ([]float64, error) {
	if cfg.Iters <= 0 {
		return nil, fmt.Errorf("train: fold-in Iters must be positive, got %d", cfg.Iters)
	}
	if lo < 0 || hi < lo {
		return nil, fmt.Errorf("train: invalid fold-in user range [%d,%d)", lo, hi)
	}
	if hi == lo {
		return nil, errors.New("train: empty fold-in user range")
	}
	ranges := shardRanges(hi-lo, cfg.Shards)
	accums := make([]Accum, len(ranges))
	for i, r := range ranges {
		accums[i] = f.NewAccum(i, lo+r.Lo, lo+r.Hi)
	}
	workers := model.Workers(cfg.Workers)
	if workers > len(accums) {
		workers = len(accums)
	}
	lls := make([]float64, 0, cfg.Iters)
	for iter := 0; iter < cfg.Iters; iter++ {
		for _, a := range accums {
			a.Reset()
		}
		runShards(f, accums, workers)
		for i := 1; i < len(accums); i++ {
			accums[0].Merge(accums[i])
		}
		lls = append(lls, f.FoldStep(accums[0], lo, hi))
	}
	return lls, nil
}
