package train

// Unrolled EM slab kernels. The itcam/ttcam E-steps spend nearly all
// their time in two K-length loops per rated cell: the posterior dot
// product (Equations 4/5/13) and the paired sufficient-statistic
// accumulation (Equations 8/9/15/16). Both are extracted here as
// 4-wide manually unrolled, bounds-check-eliminated kernels.
//
// This file holds only straight-line kernel code: scripts/check_bce.sh
// compiles it with -gcflags=-d=ssa/check_bce and fails on any
// per-element bounds check ("Found IsInBounds"). The loops use the
// slice-forward idiom — consume four elements, re-slice every operand
// by four — which the prove pass eliminates entirely; only the O(1)
// reslice checks at the loop boundaries remain.
//
// Bit-identity contract: trained parameters are pinned by pre-refactor
// gob fixtures, so neither kernel may reassociate floating-point sums.
// DotInto keeps a single accumulator in ascending index order — the
// exact operation sequence of the scalar loop it replaced — and
// AddScaledPair is purely elementwise (no cross-iteration dependence at
// all), so unrolling cannot change either one's results.

// DotInto computes dst[i] = a[i]·b[i] and returns Σ dst[i], accumulated
// in strictly ascending index order. All three slices must have equal
// length.
//
//tcam:hotpath
func DotInto(dst, a, b []float64) float64 {
	if len(a) != len(dst) || len(b) != len(dst) {
		panic("train: DotInto length mismatch")
	}
	var s float64
	for len(dst) >= 4 && len(a) >= 4 && len(b) >= 4 {
		p0 := a[0] * b[0]
		dst[0] = p0
		s += p0
		p1 := a[1] * b[1]
		dst[1] = p1
		s += p1
		p2 := a[2] * b[2]
		dst[2] = p2
		s += p2
		p3 := a[3] * b[3]
		dst[3] = p3
		s += p3
		dst = dst[4:]
		a = a[4:]
		b = b[4:]
	}
	a = a[:len(dst)]
	b = b[:len(dst)]
	for j := range dst {
		p := a[j] * b[j]
		dst[j] = p
		s += p
	}
	return s
}

// AddScaledPair adds scale·src[i] into both dst1[i] and dst2[i],
// computing each product exactly once (the E-step adds the same
// posterior mass to the θ and ϕ statistics). All three slices must have
// equal length.
//
//tcam:hotpath
func AddScaledPair(dst1, dst2 []float64, scale float64, src []float64) {
	if len(dst1) != len(src) || len(dst2) != len(src) {
		panic("train: AddScaledPair length mismatch")
	}
	for len(src) >= 4 && len(dst1) >= 4 && len(dst2) >= 4 {
		c0 := scale * src[0]
		dst1[0] += c0
		dst2[0] += c0
		c1 := scale * src[1]
		dst1[1] += c1
		dst2[1] += c1
		c2 := scale * src[2]
		dst1[2] += c2
		dst2[2] += c2
		c3 := scale * src[3]
		dst1[3] += c3
		dst2[3] += c3
		src = src[4:]
		dst1 = dst1[4:]
		dst2 = dst2[4:]
	}
	dst1 = dst1[:len(src)]
	dst2 = dst2[:len(src)]
	for j, x := range src {
		c := scale * x
		dst1[j] += c
		dst2[j] += c
	}
}
