package train

import (
	"math/rand"
	"testing"
)

// naiveDotInto is the scalar loop DotInto replaced; the kernel must
// match it bit for bit (same accumulator, same order).
func naiveDotInto(dst, a, b []float64) float64 {
	var s float64
	for i := range dst {
		p := a[i] * b[i]
		dst[i] = p
		s += p
	}
	return s
}

func naiveAddScaledPair(dst1, dst2 []float64, scale float64, src []float64) {
	for i, x := range src {
		c := scale * x
		dst1[i] += c
		dst2[i] += c
	}
}

func randSlice(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	return s
}

// TestDotIntoMatchesNaive sweeps every length through the unroll
// remainder (0..17) plus larger sizes: sums and per-element products
// must be bit-identical to the scalar loop — the EM fixture contract.
func TestDotIntoMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	lengths := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17, 31, 64, 100, 1023}
	for _, n := range lengths {
		a, b := randSlice(rng, n), randSlice(rng, n)
		got, want := make([]float64, n), make([]float64, n)
		gs := DotInto(got, a, b)
		ws := naiveDotInto(want, a, b)
		if gs != ws {
			t.Fatalf("n=%d: DotInto sum %v, naive %v", n, gs, ws)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: dst[%d] = %v, naive %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestAddScaledPairMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	lengths := []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 16, 17, 63, 100}
	for _, n := range lengths {
		src := randSlice(rng, n)
		scale := rng.NormFloat64()
		g1, g2 := randSlice(rng, n), randSlice(rng, n)
		w1, w2 := append([]float64(nil), g1...), append([]float64(nil), g2...)
		AddScaledPair(g1, g2, scale, src)
		naiveAddScaledPair(w1, w2, scale, src)
		for i := 0; i < n; i++ {
			if g1[i] != w1[i] || g2[i] != w2[i] {
				t.Fatalf("n=%d i=%d: got (%v,%v), naive (%v,%v)", n, i, g1[i], g2[i], w1[i], w2[i])
			}
		}
	}
}

func TestDotIntoLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	DotInto(make([]float64, 3), make([]float64, 4), make([]float64, 3))
}

func TestAddScaledPairLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	AddScaledPair(make([]float64, 3), make([]float64, 4), 1, make([]float64, 3))
}

func TestKernelsAllocFree(t *testing.T) {
	a, b, dst := randSlice(rand.New(rand.NewSource(3)), 64), randSlice(rand.New(rand.NewSource(4)), 64), make([]float64, 64)
	if n := testing.AllocsPerRun(100, func() {
		DotInto(dst, a, b)
		AddScaledPair(dst, a, 0.5, b)
	}); n != 0 {
		t.Fatalf("kernels allocate %v times per run, want 0", n)
	}
}
