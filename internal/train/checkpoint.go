package train

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"

	"tcam/internal/atomicfile"
	"tcam/internal/faultinject"
	"tcam/internal/model"
)

// CheckpointConfig enables periodic training snapshots. Every Every
// iterations the engine writes the full parameter state plus the
// (RNG-free) iteration metadata — completed-iteration count, the
// previous log-likelihood the convergence test needs, and the stats
// trace so far — through internal/atomicfile, so a crash at any point
// leaves either the previous snapshot or the new one, never a torn
// file.
type CheckpointConfig struct {
	// Dir is the checkpoint directory (created if missing). Empty
	// disables checkpointing.
	Dir string
	// Every is the snapshot period in iterations; non-positive means 1.
	Every int
	// Resume restores the latest snapshot in Dir before training. A
	// missing snapshot starts a fresh run (the first run of a resumable
	// job); a corrupt or truncated one is a hard error — the engine
	// never trains from garbage.
	Resume bool
}

func (c CheckpointConfig) validate() error {
	if c.Dir == "" && c.Resume {
		return errors.New("train: Checkpoint.Resume requires Checkpoint.Dir")
	}
	return nil
}

// Checkpointable is the snapshot surface a Trainable must offer for
// checkpointing: encode the full mutable parameter state, and restore
// exactly what EncodeParams wrote. Both must round-trip float64 values
// bit-exactly (gob does), because resumed runs are required to match
// uninterrupted ones bit-for-bit.
type Checkpointable interface {
	EncodeParams(w io.Writer) error
	DecodeParams(r io.Reader) error
}

// checkpointFileName is the single snapshot file inside Checkpoint.Dir;
// saves atomically replace it.
const checkpointFileName = "train.ckpt"

const (
	checkpointMagic   = "tcam-train-checkpoint"
	checkpointVersion = 1
)

// checkpointFile is the on-disk snapshot layout. Params is the model's
// own encoding (opaque to the engine) guarded by a CRC so silent
// corruption fails loudly rather than resuming from garbage; gob itself
// catches truncation.
type checkpointFile struct {
	Magic   string
	Version int
	// Iter is the number of completed iterations; PrevLL the
	// log-likelihood the next iteration's convergence test compares
	// against.
	Iter   int
	PrevLL float64
	Stats  model.TrainStats
	Params []byte
	CRC    uint32
}

// checkpointer binds a Checkpointable to its snapshot file.
type checkpointer struct {
	cp    Checkpointable
	path  string
	every int
}

// newCheckpointer returns nil when checkpointing is disabled, and an
// error when it is requested but t cannot snapshot.
func newCheckpointer(t Trainable, cfg CheckpointConfig) (*checkpointer, error) {
	if cfg.Dir == "" {
		return nil, nil
	}
	cp, ok := t.(Checkpointable)
	if !ok {
		return nil, fmt.Errorf("train: %T does not support checkpointing", t)
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("train: checkpoint dir: %w", err)
	}
	every := cfg.Every
	if every <= 0 {
		every = 1
	}
	return &checkpointer{cp: cp, path: filepath.Join(cfg.Dir, checkpointFileName), every: every}, nil
}

// save snapshots the parameter state after iter completed iterations.
func (c *checkpointer) save(iter int, prevLL float64, stats model.TrainStats) error {
	faultinject.Fire("train.checkpoint.save")
	var params bytes.Buffer
	if err := c.cp.EncodeParams(&params); err != nil {
		return fmt.Errorf("train: checkpoint encode: %w", err)
	}
	snap := checkpointFile{
		Magic:   checkpointMagic,
		Version: checkpointVersion,
		Iter:    iter,
		PrevLL:  prevLL,
		Stats:   stats,
		Params:  params.Bytes(),
		CRC:     crc32.ChecksumIEEE(params.Bytes()),
	}
	err := atomicfile.Write(c.path, func(w io.Writer) error {
		if err := gob.NewEncoder(w).Encode(&snap); err != nil {
			return fmt.Errorf("train: checkpoint write: %w", err)
		}
		return nil
	})
	if err != nil {
		return err
	}
	faultinject.Fire("train.checkpoint.saved")
	return nil
}

// load restores the latest snapshot. ok is false (with a nil error)
// when no snapshot exists yet; any unreadable, corrupt or truncated
// snapshot is an error.
func (c *checkpointer) load() (snap checkpointFile, ok bool, err error) {
	f, err := os.Open(c.path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return snap, false, nil
		}
		return snap, false, fmt.Errorf("train: checkpoint open: %w", err)
	}
	defer func() {
		//tcamvet:ignore errcheck read-only file; the decode error already reflects any failure
		f.Close()
	}()
	if err := gob.NewDecoder(f).Decode(&snap); err != nil {
		return snap, false, fmt.Errorf("train: checkpoint %s corrupt: %w", c.path, err)
	}
	if snap.Magic != checkpointMagic || snap.Version != checkpointVersion {
		return snap, false, fmt.Errorf("train: checkpoint %s has unknown format %q v%d", c.path, snap.Magic, snap.Version)
	}
	if got := crc32.ChecksumIEEE(snap.Params); got != snap.CRC {
		return snap, false, fmt.Errorf("train: checkpoint %s parameter checksum mismatch (corrupt file)", c.path)
	}
	if snap.Iter <= 0 {
		return snap, false, fmt.Errorf("train: checkpoint %s records %d completed iterations", c.path, snap.Iter)
	}
	if err := c.cp.DecodeParams(bytes.NewReader(snap.Params)); err != nil {
		return snap, false, fmt.Errorf("train: checkpoint restore: %w", err)
	}
	return snap, true, nil
}
